package d2dhb

import (
	"testing"
	"time"
)

func TestFacadeSimulation(t *testing.T) {
	profile := StandardHeartbeat()
	sim, err := PairScenario(Options{Seed: 1, Duration: 3 * profile.Period}, profile, 1, 1, 8)
	if err != nil {
		t.Fatalf("PairScenario: %v", err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TotalL3Messages == 0 || rep.Deliveries == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	ue, ok := rep.Device("ue-01")
	if !ok || ue.UE.SentViaD2D == 0 {
		t.Fatal("UE did not forward via D2D")
	}
}

func TestFacadeOriginalVsScheme(t *testing.T) {
	profile := StandardHeartbeat()
	horizon := 5 * profile.Period

	scheme, err := PairScenario(Options{Seed: 2, Duration: horizon}, profile, 1, 1, 8)
	if err != nil {
		t.Fatalf("PairScenario: %v", err)
	}
	schemeRep, err := scheme.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	orig, err := OriginalScenario(Options{Seed: 2, Duration: horizon}, profile, 1, 1)
	if err != nil {
		t.Fatalf("OriginalScenario: %v", err)
	}
	origRep, err := orig.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if schemeRep.TotalL3Messages >= origRep.TotalL3Messages {
		t.Fatalf("scheme L3 %d not below original %d",
			schemeRep.TotalL3Messages, origRep.TotalL3Messages)
	}
}

func TestFacadeProfiles(t *testing.T) {
	apps := Apps()
	if len(apps) != 4 {
		t.Fatalf("apps = %d, want 4", len(apps))
	}
	if WeChat().Period != 270*time.Second {
		t.Fatal("WeChat period wrong")
	}
	if err := DefaultEnergyModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestFacadeRealStack(t *testing.T) {
	srv := NewServer()
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Shutdown()

	relay, err := NewRelayAgent(RelayAgentConfig{
		ID: "r", App: "std", Period: 100 * time.Millisecond,
		Expiry: 200 * time.Millisecond, Pad: 54, Capacity: 4,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := relay.Start("127.0.0.1:0", srv.Addr()); err != nil {
		t.Fatalf("relay: %v", err)
	}
	defer relay.Shutdown()

	ue, err := NewUEClient(UEClientConfig{
		ID: "u", App: "std", Period: 100 * time.Millisecond,
		Expiry: 200 * time.Millisecond, Pad: 54,
		RelayAddr: relay.Addr(), ServerAddr: srv.Addr(),
	})
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := ue.Start(); err != nil {
		t.Fatalf("ue: %v", err)
	}
	defer ue.Shutdown()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().HeartbeatsRelayed >= 1 && srv.Online("u", time.Now()) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("end-to-end relaying never completed: server %+v, ue %+v",
		srv.Stats(), ue.Stats())
}

func TestFacadeCrowdAndMobility(t *testing.T) {
	profile := StandardHeartbeat()
	sim, err := CrowdScenario(Options{Seed: 4, Duration: 2 * profile.Period},
		profile, 2, 10, 80, 8)
	if err != nil {
		t.Fatalf("CrowdScenario: %v", err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Devices) != 12 {
		t.Fatalf("devices = %d, want 12", len(rep.Devices))
	}

	// Geometry wrappers.
	area := SquareArea(50)
	walk, err := NewRandomWaypoint(area, Point{X: 25, Y: 25}, 0.5, 1.5, time.Second, 1)
	if err != nil {
		t.Fatalf("NewRandomWaypoint: %v", err)
	}
	if !area.Contains(walk.Pos(time.Minute)) {
		t.Fatal("walk escaped area")
	}
	var mob Mobility = Line{From: Point{}, To: Point{X: 10}, Speed: 1}
	if got := mob.Pos(5 * time.Second); got.X != 5 {
		t.Fatalf("line pos = %v", got)
	}
	mob = Orbit{Radius: 2}
	if got := mob.Pos(0); got.X != 2 {
		t.Fatalf("orbit pos = %v", got)
	}
	mob = Static{P: Point{X: 1}}
	if got := mob.Pos(time.Hour); got.X != 1 {
		t.Fatalf("static pos = %v", got)
	}
}

func TestFacadeConstants(t *testing.T) {
	if PolicyNagle == PolicyImmediate || WiFiDirect == Bluetooth || Bluetooth == LTEDirect {
		t.Fatal("facade constants collide")
	}
	if QQ().Size != 378 || WhatsApp().Size != 66 || Facebook().Size != 100 {
		t.Fatal("profile re-exports wrong")
	}
}
