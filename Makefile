# Development targets for d2dhb. Everything is stdlib-only Go; no external
# tools beyond the Go toolchain are required.

GO ?= go

.PHONY: all build vet lint test race bench bench-json bench-gate repro examples load chaos cluster-smoke fuzz cover fmt clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full static-analysis gate: go vet, gofmt cleanliness, and the project
# suite (cmd/d2dvet) enforcing determinism, lock/IO hygiene, concurrency
# shutdown/leak discipline and wire-protocol invariants. -unused-allows
# also fails the build on stale //lint:allow directives, so suppressions
# cannot outlive the finding they justified.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) run ./cmd/d2dvet -unused-allows ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark iteration per experiment: the reproduction harness.
bench:
	$(GO) test -run XXX -bench=. -benchmem .

# Bench trajectory: kernel ns/event + allocs/event, scan latency at 1k/10k
# devices, per-figure wall time, the city short preset and the tile-sharded
# parallel city runs (core ladder with a cross-core digest-equality check),
# written to BENCH_<rev>.json for revision-over-revision comparison. Use
# CITY_PRESET=day for the 24h headline run; CITY_PARALLEL=short|day|none
# trims the parallel section. d2dbench refuses to overwrite an existing
# (committed) baseline; pass FORCE=1 to regenerate one.
CITY_PRESET ?= short
CITY_PARALLEL ?= both
BENCH_FORCE := $(if $(FORCE),-force,)
bench-json:
	$(GO) run ./cmd/d2dbench -json -city $(CITY_PRESET) -city-parallel $(CITY_PARALLEL) $(BENCH_FORCE) \
		-rev $$(git rev-parse --short HEAD 2>/dev/null || echo dev)

# Bench regression gate: rerun the trajectory into .bench/ and diff it
# against the most recently committed BENCH_*.json baseline with per-metric
# thresholds + noise floors (internal/benchcmp). Non-zero exit on
# regression; this is CI's bench job.
bench-gate:
	@base=""; \
	for f in $$(git log --pretty=format: --name-only -- 'BENCH_*.json' | grep . ; ls -t BENCH_*.json 2>/dev/null); do \
		if [ -f "$$f" ]; then base=$$f; break; fi; \
	done; \
	if [ -z "$$base" ]; then echo "bench-gate: no committed BENCH_*.json baseline"; exit 1; fi; \
	echo "bench-gate: baseline $$base"; \
	mkdir -p .bench; \
	$(GO) run ./cmd/d2dbench -json -city $(CITY_PRESET) -city-parallel $(CITY_PARALLEL) -rev ci -out .bench -force && \
	$(GO) run ./cmd/d2dbench -diff-json .bench/diff.json -compare "$$base" .bench/BENCH_ci.json

# Print every paper table/figure with paper-vs-measured comparisons.
repro:
	$(GO) run ./cmd/d2dbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crowd
	$(GO) run ./examples/mobility
	$(GO) run ./examples/multiapp
	$(GO) run ./examples/liveproto

# Short open-loop capacity run against the real stack over loopback.
load:
	$(GO) run ./cmd/d2dload -ues 1000 -relays 2 -duration 5s -speedup 200

# Chaos suite: the fault-injection layer plus the real stack driven through
# scripted failure scenarios, race-checked — including the rolling-restart
# cycle over a live 3-shard cluster and the record/replay parity loop.
chaos:
	$(GO) test -race -count=1 -v ./internal/faultnet
	$(GO) test -race -count=1 -v -run 'Chaos|Fallback|Backoff' ./internal/relaynet
	$(GO) test -race -count=1 -v -run 'Chaos' ./internal/loadgen

# Cluster smoke: 3-shard d2dcluster, /readyz drain gating, trunked load
# through the router with a shard hard-killed mid-run; asserts zero lost
# heartbeats and an advanced ring epoch.
cluster-smoke:
	scripts/cluster_smoke.sh

# Coverage-guided fuzz smoke: the wire-format decoder, the event kernel
# checked against its container/heap reference model, and the trace codec
# (decode must error or round-trip bit-identically).
fuzz:
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=30s ./internal/hbproto
	$(GO) test -fuzz=FuzzFrameReaderStream -fuzztime=30s ./internal/hbproto
	$(GO) test -fuzz=FuzzKernelVsHeapModel -fuzztime=30s ./internal/simtime
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/rec
	$(GO) test -fuzz=FuzzTileMergeVsSequential -fuzztime=30s ./internal/experiments

# Coverage gate: writes the module coverprofile (CI uploads coverage.out and
# the -func summary as artifacts) and fails if a gated package drops below
# the floor its test suite established. Floors trail the measured values
# (sched 98.3%, relaynet 86.6%, cluster 78.2%, loadgen 80.5%) slightly so
# unrelated churn doesn't flap the gate; raise them when the suites grow.
# rec (94.5%), benchcmp (98.9%) and lint (89.6%) carry the ISSUE-mandated
# ≥85% floors. simtime (95.6%) and geo (87.5%) gate the tile-sharding
# kernel (TileGroup/Agenda/TileGrid); trace (92.0%) gates the keyed merge.
COVER_FLOORS := internal/sched:95 internal/relaynet:82 internal/cluster:74 internal/loadgen:76 internal/rec:90 internal/benchcmp:95 internal/lint:85 internal/simtime:92 internal/geo:84 internal/trace:88

cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@set -e; for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./$$pkg | \
			awk '{for(i=1;i<=NF;i++) if($$i=="coverage:"){sub(/%/,"",$$(i+1)); print $$(i+1)}}'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; exit 1; fi; \
		echo "$$pkg coverage $$pct% (floor $$floor%)"; \
		if [ "$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p+0 >= f+0) ? 1 : 0}')" != 1 ]; then \
			echo "FAIL: $$pkg coverage $$pct% fell below the $$floor% floor"; exit 1; \
		fi; \
	done

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
