# Development targets for d2dhb. Everything is stdlib-only Go; no external
# tools beyond the Go toolchain are required.

GO ?= go

.PHONY: all build vet lint test race bench repro examples load chaos fuzz fmt clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full static-analysis gate: go vet, gofmt cleanliness, and the project
# suite (cmd/d2dvet) enforcing determinism, lock/IO hygiene and
# wire-protocol invariants.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) run ./cmd/d2dvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark iteration per experiment: the reproduction harness.
bench:
	$(GO) test -run XXX -bench=. -benchmem .

# Print every paper table/figure with paper-vs-measured comparisons.
repro:
	$(GO) run ./cmd/d2dbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crowd
	$(GO) run ./examples/mobility
	$(GO) run ./examples/multiapp
	$(GO) run ./examples/liveproto

# Short open-loop capacity run against the real stack over loopback.
load:
	$(GO) run ./cmd/d2dload -ues 1000 -relays 2 -duration 5s -speedup 200

# Chaos suite: the fault-injection layer plus the real stack driven through
# scripted failure scenarios, race-checked.
chaos:
	$(GO) test -race -count=1 -v ./internal/faultnet
	$(GO) test -race -count=1 -v -run 'Chaos|Fallback|Backoff' ./internal/relaynet

# 30-second coverage-guided fuzz smoke on the wire-format decoder.
fuzz:
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=30s ./internal/hbproto

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
