package d2dhb_test

import (
	"fmt"

	"d2dhb"
)

// ExamplePairScenario runs the paper's canonical setup — one relay and one
// UE a meter apart — and reports what the framework saved.
func ExamplePairScenario() {
	profile := d2dhb.StandardHeartbeat()
	opts := d2dhb.Options{Seed: 1, Duration: 5 * profile.Period}

	scheme, err := d2dhb.PairScenario(opts, profile, 1, 1, 8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	schemeRep, err := scheme.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	original, err := d2dhb.OriginalScenario(opts, profile, 1, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	originalRep, err := original.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	ue, _ := schemeRep.Device("ue-01")
	fmt.Printf("forwarded over D2D: %d\n", ue.UE.SentViaD2D)
	fmt.Printf("UE cellular transmissions: %d\n", ue.RRC.Transmissions)
	fmt.Printf("signaling: %d vs %d layer-3 messages\n",
		schemeRep.TotalL3Messages, originalRep.TotalL3Messages)
	// Output:
	// forwarded over D2D: 5
	// UE cellular transmissions: 0
	// signaling: 37 vs 85 layer-3 messages
}

// ExampleNewSimulation builds a custom topology: a relay that dies mid-run
// and a UE that recovers through the feedback fallback.
func ExampleNewSimulation() {
	profile := d2dhb.StandardHeartbeat()
	sim, err := d2dhb.NewSimulation(d2dhb.Options{Seed: 2, Duration: 3 * profile.Period})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	relay, err := sim.AddRelay(d2dhb.RelaySpec{ID: "relay", Profile: profile, Capacity: 8})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ue, err := sim.AddUE(d2dhb.UESpec{
		ID: "ue", Profile: profile,
		Mobility:    d2dhb.Static{P: d2dhb.Point{X: 1}},
		StartOffset: 20 * 1e9, // 20 s
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Kill the relay before its first flush.
	if _, err := sim.Scheduler().At(30*1e9, relay.Stop); err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := sim.Run(); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := ue.Stats()
	fmt.Printf("forwarded: %d, fallback resends: %d\n", st.SentViaD2D, st.FallbackResends)
	// Output:
	// forwarded: 1, fallback resends: 1
}

// ExampleAppProfile shows the measured IM app parameters the workloads use.
func ExampleAppProfile() {
	for _, p := range d2dhb.Apps() {
		fmt.Printf("%s: every %v, %d bytes\n", p.Name, p.Period, p.Size)
	}
	// Output:
	// WeChat: every 4m30s, 74 bytes
	// WhatsApp: every 4m0s, 66 bytes
	// QQ: every 5m0s, 378 bytes
	// Facebook: every 5m0s, 100 bytes
}
