package d2dhb

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (Section V). Each one runs the corresponding experiment and
// reports its headline quantity via b.ReportMetric, so `go test -bench=.`
// doubles as the reproduction harness; `cmd/d2dbench` prints the full
// tables. Ablation benchmarks cover the design choices called out in
// DESIGN.md §5.

import (
	"bytes"
	"testing"
	"time"

	"d2dhb/internal/experiments"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/hbproto"
	"d2dhb/internal/sched"
	"d2dhb/internal/trace"
)

// BenchmarkTable1HeartbeatProportions regenerates Table I: the heartbeat
// share of each popular app's message stream.
func BenchmarkTable1HeartbeatProportions(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		maxErr = 0
		for _, row := range res.Rows {
			if row.AbsErr > maxErr {
				maxErr = row.AbsErr
			}
		}
	}
	b.ReportMetric(maxErr*100, "max-share-err-%")
}

// BenchmarkFig6D2DCurrentTrace regenerates Fig. 6: the instant-current
// trace of one D2D transfer.
func BenchmarkFig6D2DCurrentTrace(b *testing.B) {
	var charge float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6(DefaultEnergyModel())
		charge = float64(res.Charge)
	}
	b.ReportMetric(charge, "µAh")
}

// BenchmarkFig7CellularCurrentTrace regenerates Fig. 7: the instant-current
// trace of one cellular transfer with its RRC tail.
func BenchmarkFig7CellularCurrentTrace(b *testing.B) {
	var charge float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(DefaultEnergyModel())
		charge = float64(res.Charge)
	}
	b.ReportMetric(charge, "µAh")
}

// BenchmarkTable3PhaseEnergy regenerates Table III: per-phase energy for UE
// and relay on one forwarded heartbeat.
func BenchmarkTable3PhaseEnergy(b *testing.B) {
	var ueTotal float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		ueTotal = res.UEDiscovery + res.UEConnection + res.UEForwarding
	}
	b.ReportMetric(ueTotal, "ue-first-period-µAh")
}

// BenchmarkFig8EnergyVsTransmissions regenerates Fig. 8: UE, relay and
// original-system energy over 0..8 forwarded heartbeats.
func BenchmarkFig8EnergyVsTransmissions(b *testing.B) {
	var ueAt8 float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.EnergyVsTransmissions(experiments.DefaultSeed, 8)
		if err != nil {
			b.Fatal(err)
		}
		ueAt8 = c.UE[8]
	}
	b.ReportMetric(ueAt8, "ue-µAh-at-k8")
}

// BenchmarkFig9SavedEnergy regenerates Fig. 9: saved energy percentages for
// the whole system and the UE.
func BenchmarkFig9SavedEnergy(b *testing.B) {
	var sysAt7, ueAt1 float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.EnergyVsTransmissions(experiments.DefaultSeed, 7)
		if err != nil {
			b.Fatal(err)
		}
		sysAt7 = c.SavedSystemPct[7] * 100
		ueAt1 = c.SavedUEPct[1] * 100
	}
	b.ReportMetric(sysAt7, "system-saving-%-at-k7")
	b.ReportMetric(ueAt1, "ue-saving-%-at-k1")
}

// BenchmarkFig10RelayMultiUE regenerates Fig. 10: relay energy with
// 1/3/5/7 connected UEs.
func BenchmarkFig10RelayMultiUE(b *testing.B) {
	var relay7 float64
	for i := 0; i < b.N; i++ {
		m, err := experiments.RelayMultiUE(experiments.DefaultSeed, 7)
		if err != nil {
			b.Fatal(err)
		}
		relay7 = m.RelayE[7][len(m.K)-1]
	}
	b.ReportMetric(relay7, "relay-µAh-7ues-k7")
}

// BenchmarkFig11WastedToSavedRatio regenerates Fig. 11: the ratio of relay
// energy wasted to UE energy saved.
func BenchmarkFig11WastedToSavedRatio(b *testing.B) {
	var first, last float64
	for i := 0; i < b.N; i++ {
		m, err := experiments.RelayMultiUE(experiments.DefaultSeed, 7)
		if err != nil {
			b.Fatal(err)
		}
		first = m.Ratio[1][0]
		last = m.Ratio[7][len(m.K)-1]
	}
	b.ReportMetric(first, "ratio-%-1ue-k1")
	b.ReportMetric(last, "ratio-%-7ues-k7")
}

// BenchmarkTable4ReceiveEnergy regenerates Table IV: relay receive energy
// versus the number of connected UEs.
func BenchmarkTable4ReceiveEnergy(b *testing.B) {
	var at7 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		at7 = res.Measured[6]
	}
	b.ReportMetric(at7, "recv-µAh-7ues")
}

// BenchmarkFig12DistanceSweep regenerates Fig. 12: energy at 1..15 m
// communication distances.
func BenchmarkFig12DistanceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DistanceSweep(experiments.DefaultSeed, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13MessageSizeSweep regenerates Fig. 13: energy at 1×..5× the
// standard heartbeat size.
func BenchmarkFig13MessageSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MessageSizeSweep(experiments.DefaultSeed, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15Layer3Messages regenerates Fig. 15: layer-3 signaling of
// the relay versus the original system, and the headline saving.
func BenchmarkFig15Layer3Messages(b *testing.B) {
	var pair, trio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(experiments.DefaultSeed, 10)
		if err != nil {
			b.Fatal(err)
		}
		pair = res.PairSaving1UE * 100
		trio = res.TrioSaving2UEs * 100
	}
	b.ReportMetric(pair, "pair-saving-%")
	b.ReportMetric(trio, "trio-saving-%")
}

// BenchmarkAblationSchedulerPolicies compares Algorithm 1 against the
// immediate, fixed-delay and period-aligned baselines.
func BenchmarkAblationSchedulerPolicies(b *testing.B) {
	var nagleOnTime float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.PolicyAblation(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == sched.KindNagle {
				nagleOnTime = r.OnTimeRate * 100
			}
		}
	}
	b.ReportMetric(nagleOnTime, "nagle-on-time-%")
}

// BenchmarkAblationD2DTechnique compares Wi-Fi Direct against Bluetooth.
func BenchmarkAblationD2DTechnique(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TechniqueAblation(experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrejudgment compares matching with and without the
// distance/capacity prejudgment.
func BenchmarkAblationPrejudgment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.PrejudgmentAblation(experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFeedback compares delivery with and without the
// feedback/fallback mechanism under relay failure.
func BenchmarkAblationFeedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.FeedbackAblation(experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCapacity sweeps the relay collection capacity M.
func BenchmarkAblationCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.CapacityAblation(experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCoverage compares crowd coverage across Bluetooth,
// Wi-Fi Direct and LTE Direct.
func BenchmarkAblationCoverage(b *testing.B) {
	var lteMatched float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.CoverageAblation(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		lteMatched = float64(rows[len(rows)-1].MatchedUEs)
	}
	b.ReportMetric(lteMatched, "lte-direct-matched-ues")
}

// BenchmarkAblationExpiryFactor sweeps the per-message expiry factor.
func BenchmarkAblationExpiryFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.ExpiryFactorAblation(experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeriodicExtension measures the conclusion's proposed extension:
// relaying diagnostics and advertisement refreshes alongside heartbeats.
func BenchmarkPeriodicExtension(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.PeriodicExtension(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		saving = res.AllPeriodicSaving * 100
	}
	b.ReportMetric(saving, "all-periodic-saving-%")
}

// BenchmarkRelayIncentive quantifies relay credits earned against battery
// burned across UE counts.
func BenchmarkRelayIncentive(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Incentive(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		rate = rows[len(rows)-1].CreditsPerBatteryPercent
	}
	b.ReportMetric(rate, "credits-per-battery-%-7ues")
}

// BenchmarkRelayDensitySweep measures how the framework's savings scale
// with relay participation.
func BenchmarkRelayDensitySweep(b *testing.B) {
	var l3 float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.RelayDensitySweep(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		l3 = rows[len(rows)-1].L3Saving * 100
	}
	b.ReportMetric(l3, "l3-saving-%-16relays")
}

// BenchmarkStormSweep regenerates the operator-side motivation: control-
// channel overload vs crowd density, with and without the framework.
func BenchmarkStormSweep(b *testing.B) {
	var origPeak, schemePeak float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.StormSweep(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		origPeak = last.PeakUtilOriginal * 100
		schemePeak = last.PeakUtilScheme * 100
	}
	b.ReportMetric(origPeak, "orig-peak-util-%-200ues")
	b.ReportMetric(schemePeak, "scheme-peak-util-%-200ues")
}

// BenchmarkIntroBatteryShare regenerates the Section I motivating claim:
// one IM app's heartbeats burn "at least 6%" of the battery per day over
// cellular, versus a fraction of that through a relay.
func BenchmarkIntroBatteryShare(b *testing.B) {
	var orig, ue float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.BatteryShare(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		orig = res.OriginalDailyShare * 100
		ue = res.UEDailyShare * 100
	}
	b.ReportMetric(orig, "original-%-per-day")
	b.ReportMetric(ue, "ue-%-per-day")
}

// BenchmarkSchedulerCollect micro-benchmarks Algorithm 1's hot path.
func BenchmarkSchedulerCollect(b *testing.B) {
	profile := hbmsg.StandardHeartbeat()
	n, err := sched.NewNagle(64, profile.Period)
	if err != nil {
		b.Fatal(err)
	}
	n.StartPeriod(0)
	hb := profile.Heartbeat("ue", 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if flush, _ := n.Collect(hb, 0); flush {
			n.Flush(0)
			n.StartPeriod(0)
		}
	}
}

// BenchmarkCrowdSimulation measures full-system simulation throughput: 5
// relays and 50 UEs over two heartbeat periods.
func BenchmarkCrowdSimulation(b *testing.B) {
	profile := StandardHeartbeat()
	for i := 0; i < b.N; i++ {
		sim, err := CrowdScenario(Options{Seed: int64(i + 1), Duration: 2 * profile.Period},
			profile, 5, 50, 100, 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayByPolicy quantifies the forwarding-delay/signaling tradeoff
// across scheduling policies.
func BenchmarkDelayByPolicy(b *testing.B) {
	var nagleMean float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.DelayByPolicy(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == sched.KindNagle {
				nagleMean = r.Relayed.MeanMs / 1000
			}
		}
	}
	b.ReportMetric(nagleMean, "nagle-mean-delay-s")
}

// BenchmarkCalibrationSensitivity sweeps the cellular-energy calibration
// ±50 % and reports the headline savings' robustness.
func BenchmarkCalibrationSensitivity(b *testing.B) {
	var lowest float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.CalibrationSensitivity(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		lowest = rows[0].SystemSavingK7 * 100
	}
	b.ReportMetric(lowest, "system-saving-%-at-lowest-Ecell")
}

// BenchmarkProtoRoundTrip measures hbproto encode+decode of a typical
// 8-message batch.
func BenchmarkProtoRoundTrip(b *testing.B) {
	batch := &hbproto.Batch{Relay: "relay-1"}
	for i := 0; i < 8; i++ {
		batch.HBs = append(batch.HBs, hbproto.Heartbeat{
			Src: "ue-01", Seq: uint64(i), App: "WeChat",
			Origin: time.UnixMilli(1_700_000_000_000), Expiry: 270 * time.Second, Pad: 74,
		})
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := hbproto.WriteFrame(&buf, batch); err != nil {
			b.Fatal(err)
		}
		if _, err := hbproto.ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceAnalyze measures delay analysis over a 10k-event stream.
func BenchmarkTraceAnalyze(b *testing.B) {
	events := make([]trace.Event, 0, 10_000)
	for i := 0; i < 5_000; i++ {
		seq := uint64(i)
		events = append(events,
			trace.Event{AtMs: int64(i) * 100, Device: "ue", Kind: trace.KindGenerated, Seq: seq},
			trace.Event{AtMs: int64(i)*100 + 50, Device: "ue", Kind: trace.KindDelivery, Seq: seq, Peer: "relay", OnTime: true},
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := trace.Analyze(events)
		if a.Total.Count != 5_000 {
			b.Fatalf("count = %d", a.Total.Count)
		}
	}
}

// BenchmarkCityScale is the macro-benchmark behind the "city day in
// wall-clock minutes" figure: 10k mixed-mobility devices through the full
// framework for two heartbeat periods (the short preset; `make bench-json`
// records the day run). b.N iterations rebuild and rerun the whole city.
func BenchmarkCityScale(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		_, stats, err := experiments.RunCity(experiments.CityShort())
		if err != nil {
			b.Fatal(err)
		}
		events = stats.Events
	}
	b.ReportMetric(float64(events), "events")
}
