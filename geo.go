package d2dhb

import (
	"time"

	"d2dhb/internal/geo"
)

// Geometry and mobility types, re-exported so scenarios can be built
// without reaching into internal packages.
type (
	// Point is a position on the simulation plane, in meters.
	Point = geo.Point
	// Mobility yields a device's position as a function of virtual time.
	Mobility = geo.Mobility
	// Static is a Mobility that never moves.
	Static = geo.Static
	// Line moves from one point toward another at constant speed.
	Line = geo.Line
	// Orbit circles a center at fixed radius — handy for exact distance
	// control.
	Orbit = geo.Orbit
	// Area is an axis-aligned rectangle describing the simulation area.
	Area = geo.Rect
)

// SquareArea returns a side×side area anchored at the origin.
func SquareArea(sideM float64) Area { return geo.Square(sideM) }

// NewRandomWaypoint builds the classic random-waypoint mobility model:
// walk to a uniform destination at a uniform speed in [minSpeed, maxSpeed]
// m/s, pause, repeat.
func NewRandomWaypoint(area Area, start Point, minSpeed, maxSpeed float64, pause time.Duration, seed int64) (Mobility, error) {
	return geo.NewRandomWaypoint(area, start, minSpeed, maxSpeed, pause, seed)
}
