// Multiapp: phones run several IM apps at once (Table I), each with its
// own heartbeat period and expiry. One relay serves four multi-app UEs; the
// example shows per-app aggregation, the relay's incentive credits, and the
// daily battery arithmetic behind the paper's "6% of battery" motivation.
package main

import (
	"fmt"
	"os"
	"time"

	"d2dhb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multiapp:", err)
		os.Exit(1)
	}
}

func run() error {
	const day = 24 * time.Hour
	opts := d2dhb.Options{Seed: 11, Duration: day}
	sim, err := d2dhb.NewSimulation(opts)
	if err != nil {
		return err
	}
	relay, err := sim.AddRelay(d2dhb.RelaySpec{
		ID: "relay", Profile: d2dhb.StandardHeartbeat(), Capacity: 16,
	})
	if err != nil {
		return err
	}
	// Four UEs, each running WeChat + WhatsApp + QQ.
	for i := 0; i < 4; i++ {
		if _, err := sim.AddUE(d2dhb.UESpec{
			ID:            d2dhb.DeviceID(fmt.Sprintf("ue-%d", i+1)),
			Profile:       d2dhb.WeChat(),
			ExtraProfiles: []d2dhb.AppProfile{d2dhb.WhatsApp(), d2dhb.QQ()},
			Mobility:      d2dhb.Orbit{Radius: 2, Phase: float64(i)},
			StartOffset:   time.Duration(20+7*i) * time.Second,
		}); err != nil {
			return err
		}
	}
	rep, err := sim.Run()
	if err != nil {
		return err
	}

	var forwarded, generated int
	for _, d := range rep.Devices {
		if d.UE != nil {
			forwarded += d.UE.SentViaD2D
			generated += d.UE.Generated
		}
	}
	relayRep, _ := rep.Device("relay")
	fmt.Printf("24 h, 4 UEs × 3 apps (WeChat+WhatsApp+QQ) through one relay\n")
	fmt.Printf("heartbeats: %d generated, %d forwarded over D2D (%d aggregated transmissions)\n",
		generated, forwarded, relayRep.Relay.Flushes)
	fmt.Printf("relay: %d credits earned, %.0f µAh spent\n",
		relay.Stats().Credits, float64(relayRep.Total))

	for _, d := range rep.Devices {
		if d.UE == nil {
			continue
		}
		fmt.Printf("%s: %.0f µAh/day, availability %.1f%%\n",
			d.ID, float64(d.Total), d.Availability*100)
	}
	fmt.Printf("deliveries: %d (%d late)\n", rep.Deliveries, rep.LateDeliveries)
	return nil
}
