// Liveproto: run the real networked stack — presence server, relay agent
// and three UE clients — over loopback TCP with sped-up heartbeat periods,
// then print what each component observed. This is the same code path the
// d2dserver/d2drelay/d2due daemons run, compressed into one process.
package main

import (
	"fmt"
	"os"
	"time"

	"d2dhb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "liveproto:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		period = 200 * time.Millisecond // sped-up WeChat-style period
		expiry = 300 * time.Millisecond
	)

	server := d2dhb.NewServer()
	if err := server.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer server.Shutdown()
	fmt.Println("server:", server.Addr())

	relay, err := d2dhb.NewRelayAgent(d2dhb.RelayAgentConfig{
		ID: "relay-1", App: "demo", Period: period, Expiry: expiry, Pad: 54, Capacity: 8,
	})
	if err != nil {
		return err
	}
	if err := relay.Start("127.0.0.1:0", server.Addr()); err != nil {
		return err
	}
	defer relay.Shutdown()
	fmt.Println("relay: ", relay.Addr())

	ues := make([]*d2dhb.UEClient, 0, 3)
	for i := 1; i <= 3; i++ {
		ue, err := d2dhb.NewUEClient(d2dhb.UEClientConfig{
			ID: fmt.Sprintf("ue-%d", i), App: "demo",
			Period: period, Expiry: expiry, Pad: 54,
			RelayAddr: relay.Addr(), ServerAddr: server.Addr(),
		})
		if err != nil {
			return err
		}
		if err := ue.Start(); err != nil {
			return err
		}
		defer ue.Shutdown()
		ues = append(ues, ue)
	}

	// Let a handful of periods elapse.
	time.Sleep(10 * period)

	st := server.Stats()
	fmt.Printf("server: %d relayed + %d direct heartbeats in %d batches, %d online now\n",
		st.HeartbeatsRelayed, st.HeartbeatsDirect, st.Batches, server.OnlineCount(time.Now()))
	rs := relay.Stats()
	fmt.Printf("relay:  collected %d, flushed %d batches, %d feedbacks, %d credits earned\n",
		rs.Collected, rs.Flushes, rs.FeedbacksSent, rs.Credits)
	for i, ue := range ues {
		us := ue.Stats()
		fmt.Printf("ue-%d:   %d generated, %d via relay, %d direct, %d acks, %d fallbacks\n",
			i+1, us.Generated, us.ViaRelay, us.Direct, us.FeedbackAcks, us.FallbackResends)
	}
	if st.Batches == 0 {
		return fmt.Errorf("no aggregation happened")
	}
	fmt.Println("ok: heartbeats aggregated through the relay with feedback to every UE")
	return nil
}
