// Crowd: the signaling-storm scenario that motivates the paper — a dense
// square full of phones running WeChat-like apps. A handful of volunteer
// relays collect heartbeats from dozens of UEs; the example reports how
// much control-channel traffic the base station is spared.
package main

import (
	"fmt"
	"os"

	"d2dhb"
)

const (
	numRelays = 6
	numUEs    = 60
	sideM     = 120.0
	periods   = 4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crowd:", err)
		os.Exit(1)
	}
}

func run() error {
	profile := d2dhb.WeChat()
	opts := d2dhb.Options{Seed: 7, Duration: periods * profile.Period}

	scheme, err := d2dhb.CrowdScenario(opts, profile, numRelays, numUEs, sideM, 8)
	if err != nil {
		return err
	}
	schemeRep, err := scheme.Run()
	if err != nil {
		return err
	}

	opts.DisableD2D = true
	original, err := d2dhb.CrowdScenario(opts, profile, numRelays, numUEs, sideM, 8)
	if err != nil {
		return err
	}
	originalRep, err := original.Run()
	if err != nil {
		return err
	}

	var forwarded, direct, fallbacks, matched int
	for _, d := range schemeRep.Devices {
		if d.UE == nil {
			continue
		}
		forwarded += d.UE.SentViaD2D
		direct += d.UE.DirectCellular
		fallbacks += d.UE.FallbackResends
		if d.UE.Matches > 0 {
			matched++
		}
	}
	fmt.Printf("crowd: %d relays + %d UEs in a %.0f m square, %d WeChat periods\n",
		numRelays, numUEs, sideM, periods)
	fmt.Printf("UEs matched to a relay: %d/%d\n", matched, numUEs)
	fmt.Printf("heartbeats: %d forwarded over D2D, %d direct cellular, %d fallback resends\n",
		forwarded, direct, fallbacks)

	saving := 1 - float64(schemeRep.TotalL3Messages)/float64(originalRep.TotalL3Messages)
	fmt.Printf("control-channel load: %d vs %d layer-3 messages (%.1f%% saved)\n",
		schemeRep.TotalL3Messages, originalRep.TotalL3Messages, saving*100)
	fmt.Printf("deliveries: %d (%d late)\n", schemeRep.Deliveries, schemeRep.LateDeliveries)
	return nil
}
