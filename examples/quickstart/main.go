// Quickstart: simulate one relay and one UE one meter apart for eight
// heartbeat periods — the paper's canonical setup — and print the
// signaling and energy savings against the original system.
package main

import (
	"fmt"
	"os"

	"d2dhb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	profile := d2dhb.StandardHeartbeat()
	opts := d2dhb.Options{Seed: 1, Duration: 8 * profile.Period}

	// The D2D relaying scheme: the UE forwards heartbeats to the relay
	// over Wi-Fi Direct; the relay batches them with its own heartbeat.
	scheme, err := d2dhb.PairScenario(opts, profile, 1 /* UEs */, 1 /* meter */, 8 /* capacity M */)
	if err != nil {
		return err
	}
	schemeRep, err := scheme.Run()
	if err != nil {
		return err
	}

	// The original system: both devices send every heartbeat themselves.
	original, err := d2dhb.OriginalScenario(opts, profile, 1, 1)
	if err != nil {
		return err
	}
	originalRep, err := original.Run()
	if err != nil {
		return err
	}

	ue, _ := schemeRep.Device("ue-01")
	relay, _ := schemeRep.Device("relay")
	fmt.Printf("UE forwarded %d heartbeats over D2D, received %d feedback acks\n",
		ue.UE.SentViaD2D, ue.UE.AcksReceived)
	fmt.Printf("relay collected %d heartbeats into %d cellular connections (credits earned: %d)\n",
		relay.Relay.Collected, relay.Relay.Flushes, relay.Relay.Credits)

	l3Saving := 1 - float64(schemeRep.TotalL3Messages)/float64(originalRep.TotalL3Messages)
	eSaving := 1 - float64(schemeRep.TotalEnergy())/float64(originalRep.TotalEnergy())
	fmt.Printf("signaling: %d vs %d layer-3 messages (%.1f%% saved)\n",
		schemeRep.TotalL3Messages, originalRep.TotalL3Messages, l3Saving*100)
	fmt.Printf("energy:    %.0f vs %.0f µAh (%.1f%% saved)\n",
		float64(schemeRep.TotalEnergy()), float64(originalRep.TotalEnergy()), eSaving*100)
	fmt.Printf("deliveries: %d (%d late)\n", schemeRep.Deliveries, schemeRep.LateDeliveries)
	return nil
}
