// Mobility: stress the framework's failure handling. UEs wander through a
// square under random-waypoint mobility, links break as distances exceed
// the Wi-Fi Direct range, one relay dies mid-run, and the feedback
// mechanism recovers every stranded heartbeat via cellular fallback.
package main

import (
	"fmt"
	"os"
	"time"

	"d2dhb"
)

const (
	sideM   = 80.0
	numUEs  = 12
	periods = 6
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mobility:", err)
		os.Exit(1)
	}
}

func run() error {
	profile := d2dhb.StandardHeartbeat()
	opts := d2dhb.Options{Seed: 3, Duration: periods * profile.Period}
	sim, err := d2dhb.NewSimulation(opts)
	if err != nil {
		return err
	}

	// Two static relays at opposite corners of the walkable area.
	relayA, err := sim.AddRelay(d2dhb.RelaySpec{
		ID: "relay-a", Profile: profile, Capacity: 8,
		Mobility: d2dhb.Static{P: d2dhb.Point{X: 20, Y: 20}},
	})
	if err != nil {
		return err
	}
	if _, err := sim.AddRelay(d2dhb.RelaySpec{
		ID: "relay-b", Profile: profile, Capacity: 8,
		Mobility: d2dhb.Static{P: d2dhb.Point{X: 60, Y: 60}},
	}); err != nil {
		return err
	}

	// Wandering UEs.
	area := d2dhb.SquareArea(sideM)
	for i := 0; i < numUEs; i++ {
		start := d2dhb.Point{X: float64(10 + 5*i%60), Y: float64(15 + 7*i%60)}
		walk, err := d2dhb.NewRandomWaypoint(area, start, 0.5, 1.5, 30*time.Second, int64(100+i))
		if err != nil {
			return err
		}
		if _, err := sim.AddUE(d2dhb.UESpec{
			ID:          d2dhb.DeviceID(fmt.Sprintf("ue-%02d", i+1)),
			Profile:     profile,
			Mobility:    walk,
			StartOffset: time.Duration(i+1) * 7 * time.Second,
		}); err != nil {
			return err
		}
	}

	// Relay A dies halfway through: its pending heartbeats are lost and
	// the connected UEs must fall back.
	if _, err := sim.Scheduler().At(opts.Duration/2, relayA.Stop); err != nil {
		return err
	}

	rep, err := sim.Run()
	if err != nil {
		return err
	}

	var forwarded, direct, fallbacks, linkFailures int
	for _, d := range rep.Devices {
		if d.UE == nil {
			continue
		}
		forwarded += d.UE.SentViaD2D
		direct += d.UE.DirectCellular
		fallbacks += d.UE.FallbackResends
		linkFailures += d.UE.D2DSendFailures
	}
	fmt.Printf("mobility run: %d UEs wandering a %.0f m square for %d periods; relay-a killed at half-time\n",
		numUEs, sideM, periods)
	fmt.Printf("heartbeats: %d via D2D, %d direct, %d link failures, %d feedback fallbacks\n",
		forwarded, direct, linkFailures, fallbacks)
	fmt.Printf("deliveries: %d total, %d late — every generated heartbeat eventually reached the server\n",
		rep.Deliveries, rep.LateDeliveries)
	fmt.Printf("signaling: %d layer-3 messages across all devices\n", rep.TotalL3Messages)
	return nil
}
