#!/bin/sh
# cluster_smoke.sh — end-to-end smoke for the presence cluster: launch a
# 3-shard d2dcluster, verify /readyz drain gating on a shard's control
# plane, offer a trunked d2dload fleet through the router, hard-kill one
# shard mid-run, and assert the run finishes with zero lost heartbeats
# (every heartbeat acknowledged, directly or via the fallback resend path)
# while the ring epoch advanced past the eviction.
#
# Usage: scripts/cluster_smoke.sh  (from the repo root; CI runs it as-is)
# Env:   SMOKE_PORT  router/admin port (default 7710)
set -eu

PORT="${SMOKE_PORT:-7710}"
ROUTER="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
CLUSTER_PID=""

cleanup() {
    [ -n "$CLUSTER_PID" ] && kill "$CLUSTER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "cluster_smoke: FAIL: $*" >&2
    [ -f "$WORK/cluster.log" ] && sed 's/^/  cluster| /' "$WORK/cluster.log" >&2
    [ -f "$WORK/load.log" ] && tail -30 "$WORK/load.log" | sed 's/^/  load| /' >&2
    exit 1
}

# HTTP helpers on top of go so the script needs no curl/jq.
go build -o "$WORK/" ./cmd/d2dcluster ./cmd/d2dload
cat > "$WORK/http.go" <<'EOF'
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
)

func main() {
	method, url := os.Args[1], os.Args[2]
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%d %s", resp.StatusCode, body)
}
EOF
http() { go run "$WORK/http.go" "$1" "$2"; }

echo "cluster_smoke: starting 3-shard cluster on $ROUTER"
"$WORK/d2dcluster" -shards 3 -router "$ROUTER" -health 100ms -failures 2 -settle 300ms \
    > "$WORK/cluster.log" 2>&1 &
CLUSTER_PID=$!

# Wait for the control plane.
i=0
until http GET "http://$ROUTER/admin/status" | grep -q '"epoch":1'; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "router did not come up on $ROUTER"
    sleep 0.2
done

# Drain gating: flip a shard's draining flag through its node agent and
# the readiness probe must go 503 (load balancers stop sending new conns),
# then recover when the flag clears.
SHARD0_HTTP=$(http GET "http://$ROUTER/cluster/config" |
    sed -n 's/.*"id":"shard-0","addr":"[^"]*","http":"\([^"]*\)".*/\1/p')
[ -n "$SHARD0_HTTP" ] || fail "could not parse shard-0 HTTP endpoint from config"
case "$(http GET "$SHARD0_HTTP/readyz")" in 200*) ;; *) fail "shard-0 not ready at start" ;; esac
http POST "$SHARD0_HTTP/cluster/draining?v=true" > /dev/null
case "$(http GET "$SHARD0_HTTP/readyz")" in 503*) ;; *) fail "/readyz stayed ready while draining" ;; esac
http POST "$SHARD0_HTTP/cluster/draining?v=false" > /dev/null
case "$(http GET "$SHARD0_HTTP/readyz")" in 200*) ;; *) fail "/readyz did not recover after drain flag cleared" ;; esac
echo "cluster_smoke: /readyz drain gating OK"

echo "cluster_smoke: offering trunked load, killing shard-1 mid-run"
"$WORK/d2dload" -ues 2000 -trunks 4 -relays 0 -cluster "$ROUTER" \
    -duration 6s -speedup 200 -timeout 1s -report 0 -json "$WORK/load.json" \
    > "$WORK/load.log" 2>&1 &
LOAD_PID=$!

sleep 2
case "$(http POST "http://$ROUTER/admin/kill?id=shard-1")" in
    200*) ;;
    *) fail "admin kill rejected" ;;
esac

wait "$LOAD_PID" || fail "d2dload exited non-zero"

# Assertions on the final report.
field() { sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "$WORK/load.json" | head -1; }
SENT=$(field sent)
ACKED=$(field acked)
TIMEOUTS=$(field timeouts)
EPOCH=$(field clusterEpoch)
[ -n "$SENT" ] && [ "$SENT" -gt 0 ] || fail "no heartbeats sent (sent=$SENT)"
[ -n "$ACKED" ] && [ "$ACKED" -gt 0 ] || fail "no heartbeats acked (acked=$ACKED)"
[ "$TIMEOUTS" = 0 ] || fail "lost heartbeats across the shard kill: timeouts=$TIMEOUTS"
[ -n "$EPOCH" ] && [ "$EPOCH" -ge 2 ] || fail "ring epoch did not advance past the eviction (epoch=$EPOCH)"

echo "cluster_smoke: PASS — sent=$SENT acked=$ACKED timeouts=0 epoch=$EPOCH"
