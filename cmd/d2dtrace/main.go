// Command d2dtrace analyzes a JSONL event trace produced by
// `d2dsim -trace`: event counts, generation→delivery delay distributions
// per path (relayed vs direct), and late deliveries.
//
// Usage:
//
//	d2dsim -periods 8 -trace run.jsonl
//	d2dtrace run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"d2dhb/internal/metrics"
	"d2dhb/internal/trace"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: d2dtrace <trace.jsonl>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "d2dtrace:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() // read-only: nothing buffered to lose
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	a := trace.Analyze(events)

	counts := metrics.NewTable("Event counts", "kind", "count")
	kinds := make([]string, 0, len(a.KindCounts))
	for k := range a.KindCounts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		counts.AddRow(k, fmt.Sprintf("%d", a.KindCounts[trace.Kind(k)]))
	}
	fmt.Println(counts)

	delays := metrics.NewTable("Generation→delivery delay",
		"path", "n", "mean (ms)", "p50 (ms)", "p95 (ms)", "max (ms)")
	addRow := func(name string, d trace.DelayStats) {
		delays.AddRow(name, fmt.Sprintf("%d", d.Count), metrics.F(d.MeanMs),
			metrics.F(d.P50Ms), metrics.F(d.P95Ms), metrics.F(d.MaxMs))
	}
	addRow("all", a.Total)
	addRow("relayed", a.Relayed)
	addRow("direct", a.Direct)
	fmt.Println(delays)

	fmt.Printf("late deliveries: %d\n", a.LateDeliveries)
	return nil
}
