package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAnalyzesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	content := `{"atMs":0,"device":"u","kind":"hb-generated","seq":1}
{"atMs":500,"device":"u","kind":"d2d-send","seq":1}
{"atMs":9000,"device":"u","kind":"delivery","seq":1,"peer":"relay","onTime":true}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run(path); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsMissingAndGarbage(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("junk\n"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run(path); err == nil {
		t.Fatal("garbage accepted")
	}
}
