package main

import (
	"os"
	"path/filepath"
	"testing"

	"d2dhb/internal/experiments"
)

func TestRunSingleExperiments(t *testing.T) {
	// Exercise every -only branch that runs quickly; the heavyweight
	// sweeps are covered by the experiments package tests.
	for _, only := range []string{"table1", "fig6", "fig7", "table3", "fig13", "battery"} {
		only := only
		t.Run(only, func(t *testing.T) {
			if err := run(experiments.DefaultSeed, false, only, ""); err != nil {
				t.Fatalf("run(%s): %v", only, err)
			}
		})
	}
}

func TestRunCSVMode(t *testing.T) {
	if err := run(experiments.DefaultSeed, true, "fig6", ""); err != nil {
		t.Fatalf("run csv: %v", err)
	}
}

func TestRunWritesCSVFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(experiments.DefaultSeed, false, "fig12", dir); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig12.csv"))
	if err != nil {
		t.Fatalf("read csv: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("empty csv written")
	}
}
