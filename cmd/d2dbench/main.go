// Command d2dbench regenerates every table and figure of the paper's
// evaluation section and prints paper-vs-measured comparisons.
//
// Usage:
//
//	d2dbench [-seed N] [-csv] [-out dir]
//	         [-only table1|fig6|fig7|table3|fig8|fig9|fig10|fig11|table4|fig12|fig13|fig15|
//	                density|storm|battery|extension|seeds|sensitivity|delay|incentive|ablations]
//	d2dbench -json [-rev id] [-city short|day|none] [-city-parallel short|day|both|none] [-out dir] [-force]
//	d2dbench [-diff-json out.json] -compare OLD.json NEW.json
//
// With -json the command runs the bench trajectory instead — kernel
// steady-state cost, scan latency, per-figure wall time and the city-scale
// macro-run — and writes BENCH_<rev>.json (see `make bench-json`). It
// refuses to overwrite an existing report (a committed baseline) unless
// -force is given.
//
// With -compare the command diffs two such reports and exits non-zero when
// NEW regresses against OLD past the per-metric thresholds of
// internal/benchcmp — the CI regression gate (`make bench-gate`).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"d2dhb/internal/energy"
	"d2dhb/internal/experiments"
	"d2dhb/internal/metrics"
)

func main() {
	var (
		seed     = flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
		csv      = flag.Bool("csv", false, "emit current traces as CSV instead of summaries")
		only     = flag.String("only", "", "run a single experiment (e.g. fig8, table3, ablations)")
		out      = flag.String("out", "", "also write every table/figure as CSV files into this directory")
		jsonMode = flag.Bool("json", false, "run the bench trajectory and write BENCH_<rev>.json")
		rev      = flag.String("rev", "dev", "revision label for the BENCH_<rev>.json file name")
		city     = flag.String("city", "short", "city preset for -json: short, day or none")
		cityPar  = flag.String("city-parallel", "both", "parallel city presets for -json: short, day, both or none")
		force    = flag.Bool("force", false, "with -json, overwrite an existing BENCH_<rev>.json baseline")
		parity   = flag.String("parity-trace", "internal/loadgen/testdata/corpus/trunked_cluster_3shard.d2dr",
			"with -json, trace file for the live_path parity summary (\"none\" skips it)")
		compare  = flag.Bool("compare", false, "compare two bench reports: d2dbench -compare OLD.json NEW.json")
		diffJSON = flag.String("diff-json", "", "with -compare, also write the machine-readable diff to this file")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: d2dbench [-diff-json out.json] -compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *diffJSON); err != nil {
			fmt.Fprintln(os.Stderr, "d2dbench:", err)
			os.Exit(1)
		}
		return
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "d2dbench:", err)
			os.Exit(1)
		}
	}
	if *jsonMode {
		if err := runBench(*seed, *rev, strings.ToLower(*city), strings.ToLower(*cityPar), *parity, *out, *force); err != nil {
			fmt.Fprintln(os.Stderr, "d2dbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*seed, *csv, strings.ToLower(*only), *out); err != nil {
		fmt.Fprintln(os.Stderr, "d2dbench:", err)
		os.Exit(1)
	}
}

func run(seed int64, csv bool, only, outDir string) error {
	want := func(name string) bool { return only == "" || only == name }
	model := energy.DefaultModel()
	save := func(name, content string) error {
		if outDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(outDir, name+".csv"), []byte(content), 0o644)
	}

	if want("table1") {
		res, err := experiments.Table1(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table)
		if err := save("table1", res.Table.CSV()); err != nil {
			return err
		}
	}
	if want("fig6") {
		res := experiments.Fig6(model)
		if csv {
			fmt.Println(res.Trace.CSV())
		} else {
			fmt.Println(res.Summary())
		}
		if err := save("fig6", res.Trace.CSV()); err != nil {
			return err
		}
	}
	if want("fig7") {
		res := experiments.Fig7(model)
		if csv {
			fmt.Println(res.Trace.CSV())
		} else {
			fmt.Println(res.Summary())
		}
		if err := save("fig7", res.Trace.CSV()); err != nil {
			return err
		}
	}
	if want("table3") {
		res, err := experiments.Table3(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table)
		if err := save("table3", res.Table.CSV()); err != nil {
			return err
		}
	}
	if want("fig8") || want("fig9") {
		curves, err := experiments.EnergyVsTransmissions(seed, 8)
		if err != nil {
			return err
		}
		if want("fig8") {
			f, err := curves.Fig8()
			if err != nil {
				return err
			}
			printFigure(f, csv)
			if err := save("fig8", f.Table().CSV()); err != nil {
				return err
			}
		}
		if want("fig9") {
			f, err := curves.Fig9()
			if err != nil {
				return err
			}
			printFigure(f, csv)
			if err := save("fig9", f.Table().CSV()); err != nil {
				return err
			}
			fmt.Printf("headline: UE saving at k=1 = %.1f%% (paper ≈55%%); system saving at k=7 = %.1f%% (paper ≈36%%)\n\n",
				curves.SavedUEPct[1]*100, curves.SavedSystemPct[7]*100)
		}
	}
	if want("fig10") || want("fig11") {
		multi, err := experiments.RelayMultiUE(seed, 7)
		if err != nil {
			return err
		}
		if want("fig10") {
			f, err := multi.Fig10()
			if err != nil {
				return err
			}
			printFigure(f, csv)
			if err := save("fig10", f.Table().CSV()); err != nil {
				return err
			}
		}
		if want("fig11") {
			f, err := multi.Fig11()
			if err != nil {
				return err
			}
			printFigure(f, csv)
			if err := save("fig11", f.Table().CSV()); err != nil {
				return err
			}
			fmt.Printf("headline: ratio drops from %.1f%% (1 UE, k=1) to %.1f%% (7 UEs, k=7); paper: ≈97%% → ≈5%%\n\n",
				multi.Ratio[1][0], multi.Ratio[7][len(multi.K)-1])
		}
	}
	if want("table4") {
		res, err := experiments.Table4(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table)
		if err := save("table4", res.Table.CSV()); err != nil {
			return err
		}
	}
	if want("fig12") {
		f, err := experiments.DistanceSweep(seed, 3)
		if err != nil {
			return err
		}
		printFigure(f, csv)
		if err := save("fig12", f.Table().CSV()); err != nil {
			return err
		}
	}
	if want("fig13") {
		f, err := experiments.MessageSizeSweep(seed, 3)
		if err != nil {
			return err
		}
		printFigure(f, csv)
		if err := save("fig13", f.Table().CSV()); err != nil {
			return err
		}
	}
	if want("fig15") {
		res, err := experiments.Fig15(seed, 10)
		if err != nil {
			return err
		}
		f, err := res.Figure()
		if err != nil {
			return err
		}
		printFigure(f, csv)
		if err := save("fig15", f.Table().CSV()); err != nil {
			return err
		}
		fmt.Printf("headline: pair saving %.1f%% (paper: about 50%% worst case); trio saving %.1f%% (paper: more than 50%%)\n\n",
			res.PairSaving1UE*100, res.TrioSaving2UEs*100)
	}
	if want("density") {
		_, t, err := experiments.RelayDensitySweep(seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if want("storm") {
		_, t, err := experiments.StormSweep(seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if want("battery") {
		res, err := experiments.BatteryShare(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table)
	}
	if want("extension") {
		res, err := experiments.PeriodicExtension(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table)
	}
	if want("seeds") {
		res, err := experiments.SeedSweep(seed, 5)
		if err != nil {
			return err
		}
		fmt.Println(res.Table)
	}
	if want("sensitivity") {
		_, t, err := experiments.CalibrationSensitivity(seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if want("delay") {
		_, t, err := experiments.DelayByPolicy(seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if want("incentive") {
		_, t, err := experiments.Incentive(seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if want("ablations") {
		type ablation func(int64) (*metrics.Table, error)
		ablations := []ablation{
			func(s int64) (*metrics.Table, error) { _, t, err := experiments.PolicyAblation(s); return t, err },
			func(s int64) (*metrics.Table, error) { _, t, err := experiments.TechniqueAblation(s); return t, err },
			func(s int64) (*metrics.Table, error) { _, t, err := experiments.PrejudgmentAblation(s); return t, err },
			func(s int64) (*metrics.Table, error) { _, t, err := experiments.FeedbackAblation(s); return t, err },
			func(s int64) (*metrics.Table, error) { _, t, err := experiments.CapacityAblation(s); return t, err },
			func(s int64) (*metrics.Table, error) { _, t, err := experiments.CoverageAblation(s); return t, err },
			func(s int64) (*metrics.Table, error) { _, t, err := experiments.ExpiryFactorAblation(s); return t, err },
		}
		for _, ab := range ablations {
			t, err := ab(seed)
			if err != nil {
				return err
			}
			fmt.Println(t)
		}
	}
	return nil
}

func printFigure(f *metrics.Figure, csv bool) {
	if csv {
		fmt.Println(f.Table().CSV())
		return
	}
	fmt.Println(f)
}
