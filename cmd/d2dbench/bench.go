package main

// The -json mode is the bench-trajectory harness: it measures the kernel's
// per-event cost, discovery scan latency at population scale, the wall time
// of every paper figure, and the city-scale macro-run, then writes the
// numbers to BENCH_<rev>.json so successive revisions can be compared
// (`make bench-json`). Wall-clock measurement is deliberately confined to
// this command: the simulation layers deal only in virtual time.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"d2dhb/internal/benchcmp"
	"d2dhb/internal/d2d"
	"d2dhb/internal/energy"
	"d2dhb/internal/experiments"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/hbproto"
	"d2dhb/internal/loadgen"
	"d2dhb/internal/radio"
	"d2dhb/internal/rec"
	"d2dhb/internal/simtime"
)

// runBench executes the whole trajectory and writes BENCH_<rev>.json into
// outDir (current directory when empty). An existing report for the same
// revision is a committed baseline and is never overwritten without force.
func runBench(seed int64, rev, cityPreset, cityParPreset, parityTrace, outDir string, force bool) error {
	path := filepath.Join(outDir, fmt.Sprintf("BENCH_%s.json", rev))
	if !force {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("bench: %s already exists (a committed baseline?) — re-run with -force to overwrite", path)
		}
	}

	rep := benchcmp.Report{
		Revision:  rev,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}

	fmt.Fprintf(os.Stderr, "bench: kernel steady state...\n")
	rep.Kernel = benchKernel(2_000_000)

	for _, n := range []int{1_000, 10_000} {
		fmt.Fprintf(os.Stderr, "bench: scan at %d devices...\n", n)
		rep.Scans = append(rep.Scans, benchScan(n))
	}

	figures := []struct {
		name string
		run  func() error
	}{
		{"table1", func() error { _, err := experiments.Table1(seed); return err }},
		{"fig6+fig7", func() error {
			model := energy.DefaultModel()
			experiments.Fig6(model)
			experiments.Fig7(model)
			return nil
		}},
		{"table3", func() error { _, err := experiments.Table3(seed); return err }},
		{"fig8+fig9", func() error { _, err := experiments.EnergyVsTransmissions(seed, 8); return err }},
		{"fig10+fig11", func() error { _, err := experiments.RelayMultiUE(seed, 7); return err }},
		{"table4", func() error { _, err := experiments.Table4(seed); return err }},
		{"fig12", func() error { _, err := experiments.DistanceSweep(seed, 3); return err }},
		{"fig13", func() error { _, err := experiments.MessageSizeSweep(seed, 3); return err }},
		{"fig15", func() error { _, err := experiments.Fig15(seed, 10); return err }},
		{"density", func() error { _, _, err := experiments.RelayDensitySweep(seed); return err }},
		{"storm", func() error { _, _, err := experiments.StormSweep(seed); return err }},
	}
	for _, f := range figures {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", f.name)
		start := time.Now()
		if err := f.run(); err != nil {
			return fmt.Errorf("bench %s: %w", f.name, err)
		}
		rep.Figures = append(rep.Figures, benchcmp.FigureTime{
			Name:   f.name,
			WallMs: float64(time.Since(start).Microseconds()) / 1000,
		})
	}

	if cityPreset != "none" {
		var cfg experiments.CityConfig
		switch cityPreset {
		case "short":
			cfg = experiments.CityShort()
		case "day":
			cfg = experiments.CityDay()
		default:
			return fmt.Errorf("bench: unknown city preset %q (short|day|none)", cityPreset)
		}
		fmt.Fprintf(os.Stderr, "bench: city %s (%d devices, %v simulated)...\n",
			cityPreset, cfg.Devices, cfg.Duration)
		start := time.Now()
		_, stats, err := experiments.RunCity(cfg)
		if err != nil {
			return fmt.Errorf("bench city: %w", err)
		}
		wall := time.Since(start)
		rep.City = &benchcmp.CityBench{
			Preset:       cityPreset,
			Devices:      stats.Devices,
			SimSeconds:   stats.SimSeconds,
			Events:       stats.Events,
			WallMs:       float64(wall.Microseconds()) / 1000,
			EventsPerSec: float64(stats.Events) / wall.Seconds(),
			L3Messages:   stats.L3Messages,
			Deliveries:   stats.Deliveries,
			OnTimeRate:   stats.OnTimeRate,
		}
	}

	if cityParPreset != "none" {
		points, err := benchCityParallel(cityParPreset)
		if err != nil {
			return err
		}
		rep.CityParallel = points
	}

	fmt.Fprintf(os.Stderr, "bench: live wire path...\n")
	rep.LivePath = benchLivePath(parityTrace)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Println(path)
	fmt.Printf("kernel: %.1f ns/event, %.2f allocs/event, %.0f events/sec\n",
		rep.Kernel.NsPerEvent, rep.Kernel.AllocsPerEvent, rep.Kernel.EventsPerSec)
	for _, sc := range rep.Scans {
		fmt.Printf("scan@%d: %.1f µs\n", sc.Devices, sc.NsPerScan/1000)
	}
	if rep.City != nil {
		fmt.Printf("city-%s: %d devices, %.0f sim-s in %.1f wall-s (%.0f events/sec)\n",
			rep.City.Preset, rep.City.Devices, rep.City.SimSeconds,
			rep.City.WallMs/1000, rep.City.EventsPerSec)
	}
	for _, p := range rep.CityParallel {
		fmt.Printf("city_parallel-%s: %d devices, %d tiles, %d cores: %.0f sim-s in %.1f wall-s (%.0f events/sec)\n",
			p.Preset, p.Devices, p.Tiles, p.Cores, p.SimSeconds, p.WallMs/1000, p.EventsPerSec)
	}
	if lp := rep.LivePath; lp != nil {
		fmt.Printf("live_path: hb %.0f/%.0f ns enc/dec (%.2f/%.2f allocs), batch-%d %.0f/%.0f ns (%.2f/%.2f allocs)\n",
			lp.EncodeHeartbeatNs, lp.DecodeHeartbeatNs, lp.EncodeHeartbeatAllocs, lp.DecodeHeartbeatAllocs,
			lp.BatchEntries, lp.EncodeBatchNs, lp.DecodeBatchNs, lp.EncodeBatchAllocs, lp.DecodeBatchAllocs)
		if p := lp.Parity; p != nil {
			fmt.Printf("live_path parity: sim %.4f vs live %.4f delivery (gap %.4f, sim digest %s)\n",
				p.SimDeliveryRatio, p.LiveDeliveryRatio, p.DeliveryGap, p.SimDigest)
		}
	}
	return nil
}

// benchLivePath measures the zero-allocation wire path: per-frame cost of
// the pooled append-encoder and the streaming decoder for a single
// heartbeat and a liveBatchEntries-heartbeat batch, plus — when the corpus
// trace is readable — the record/replay parity summary (the same trace
// through the deterministic sim and the live loopback stack). A missing
// trace skips the parity block with a note instead of failing the whole
// trajectory, so the codec numbers still land in stripped checkouts.
func benchLivePath(parityTrace string) *benchcmp.LivePathBench {
	const liveBatchEntries = 32
	origin := time.Now()
	hb := &hbproto.Heartbeat{
		Src: "bench-ue-0001", Seq: 42, App: "WeChat",
		Origin: origin, Expiry: 270 * time.Second, Pad: 54,
	}
	batch := &hbproto.Batch{Relay: "bench-relay-01", HBs: make([]hbproto.Heartbeat, liveBatchEntries)}
	for i := range batch.HBs {
		batch.HBs[i] = hbproto.Heartbeat{
			Src: fmt.Sprintf("bench-ue-%04d", i), Seq: uint64(i + 1), App: "WeChat",
			Origin: origin, Expiry: 270 * time.Second, Pad: 54,
		}
	}

	lp := &benchcmp.LivePathBench{BatchEntries: liveBatchEntries}
	lp.EncodeHeartbeatNs, lp.EncodeHeartbeatAllocs, lp.HeartbeatFrameBytes = benchEncode(hb, 1_000_000)
	lp.DecodeHeartbeatNs, lp.DecodeHeartbeatAllocs = benchDecode(hb, 1_000_000)
	lp.EncodeBatchNs, lp.EncodeBatchAllocs, lp.BatchFrameBytes = benchEncode(batch, 100_000)
	lp.DecodeBatchNs, lp.DecodeBatchAllocs = benchDecode(batch, 100_000)

	if parityTrace == "" || parityTrace == "none" {
		return lp
	}
	tl, err := rec.ReadFile(parityTrace)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: live_path parity skipped: %v\n", err)
		return lp
	}
	sim, err := experiments.ReplaySim(tl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: live_path parity skipped (sim replay): %v\n", err)
		return lp
	}
	fmt.Fprintf(os.Stderr, "bench: live replay of %s (%d clients, %d sends)...\n",
		parityTrace, len(tl.Clients), tl.Sends())
	live, err := loadgen.ReplayLive(tl, loadgen.ReplayOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: live_path parity skipped (live replay): %v\n", err)
		return lp
	}
	p := rec.NewParityReport(tl, tl.RecordedMetrics(), sim, live)
	lp.Parity = &benchcmp.LiveParity{
		Trace:                 filepath.Base(parityTrace),
		TraceDigest:           p.TraceDigest,
		RecordedDeliveryRatio: p.Recorded.DeliveryRatio,
		SimDeliveryRatio:      p.Sim.DeliveryRatio,
		LiveDeliveryRatio:     p.Live.DeliveryRatio,
		DeliveryGap:           p.DeliveryGap(),
		SimDigest:             p.SimDigest,
	}
	return lp
}

// benchEncode times AppendFrame into a reused buffer, the steady state of
// every coalesced flush, reporting per-frame ns and allocations plus the
// encoded size.
func benchEncode(msg hbproto.Message, iters int) (nsPer, allocsPer float64, frameBytes int) {
	buf, err := hbproto.AppendFrame(nil, msg)
	if err != nil {
		panic(err)
	}
	frameBytes = len(buf)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := hbproto.AppendFrame(buf[:0], msg); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(after.Mallocs-before.Mallocs) / float64(iters),
		frameBytes
}

// benchDecode times the FrameReader steady state: one warmed reader
// re-reading the same frame, the hot path of every server/relay/UE read
// loop.
func benchDecode(msg hbproto.Message, iters int) (nsPer, allocsPer float64) {
	frame, err := hbproto.AppendFrame(nil, msg)
	if err != nil {
		panic(err)
	}
	r := bytes.NewReader(frame)
	fr := hbproto.NewFrameReader(r)
	if _, err := fr.Next(); err != nil { // warm-up: sizes scratch, interns strings
		panic(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		r.Reset(frame)
		if _, err := fr.Next(); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// benchCores is the core-count ladder for the parallel city runs: 1, 2
// and every core the machine has, clipped to the machine (a 2-core point
// measured on a 1-core box would be fiction) and deduplicated.
func benchCores() []int {
	max := runtime.NumCPU()
	var cores []int
	for _, c := range []int{1, 2, max} {
		if c > max {
			continue
		}
		dup := false
		for _, seen := range cores {
			dup = dup || seen == c
		}
		if !dup {
			cores = append(cores, c)
		}
	}
	return cores
}

// benchCityParallel measures the tile-sharded city kernel across the core
// ladder. Every run of a preset must produce the same report digest
// regardless of GOMAXPROCS — the determinism contract — so the harness
// doubles as an end-to-end equivalence check and fails hard on a mismatch.
func benchCityParallel(preset string) ([]benchcmp.CityParallelBench, error) {
	type point struct {
		name string
		cfg  experiments.ParallelCityConfig
	}
	var presets []point
	switch preset {
	case "short":
		presets = []point{{"parshort", experiments.CityParallelShort(16)}}
	case "day":
		presets = []point{{"parday", experiments.CityParallelDay(64)}}
	case "both":
		presets = []point{
			{"parshort", experiments.CityParallelShort(16)},
			{"parday", experiments.CityParallelDay(64)},
		}
	default:
		return nil, fmt.Errorf("bench: unknown city-parallel preset %q (short|day|both|none)", preset)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var out []benchcmp.CityParallelBench
	for _, p := range presets {
		digest := ""
		for _, cores := range benchCores() {
			fmt.Fprintf(os.Stderr, "bench: city_parallel %s (%d devices, %d tiles) on %d core(s)...\n",
				p.name, p.cfg.Devices, p.cfg.Tiles, cores)
			runtime.GOMAXPROCS(cores)
			start := time.Now()
			rep, stats, err := experiments.RunCityParallel(p.cfg)
			if err != nil {
				return nil, fmt.Errorf("bench city_parallel %s: %w", p.name, err)
			}
			wall := time.Since(start)
			if digest == "" {
				digest = rep.Digest()
			} else if d := rep.Digest(); d != digest {
				return nil, fmt.Errorf("bench city_parallel %s: digest %s on %d core(s) differs from %s — parallel kernel is not deterministic",
					p.name, d, cores, digest)
			}
			out = append(out, benchcmp.CityParallelBench{
				Preset:       p.name,
				Devices:      stats.Devices,
				Tiles:        stats.Tiles,
				Cores:        cores,
				SimSeconds:   stats.SimSeconds,
				Events:       stats.Events,
				WallMs:       float64(wall.Microseconds()) / 1000,
				EventsPerSec: float64(stats.Events) / wall.Seconds(),
				Deliveries:   stats.Deliveries,
				OnTimeRate:   stats.OnTimeRate,
			})
		}
	}
	return out, nil
}

// runCompare loads two bench reports, prints the human-readable diff, and
// fails when the new report regresses against the old baseline. A non-empty
// diffJSON path also receives the machine-readable findings.
func runCompare(oldPath, newPath, diffJSON string) error {
	old, err := benchcmp.Load(oldPath)
	if err != nil {
		return err
	}
	cur, err := benchcmp.Load(newPath)
	if err != nil {
		return err
	}
	d := benchcmp.Compare(old, cur)
	fmt.Println(d.Table())
	if diffJSON != "" {
		buf, err := d.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(diffJSON, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if d.Failed() {
		return fmt.Errorf("bench regression: %d failing metric(s) vs %s", len(d.Regressions()), oldPath)
	}
	fmt.Printf("bench compare: pass (%s → %s, %d metrics)\n", old.Revision, cur.Revision, len(d.Findings))
	return nil
}

// benchKernel measures the fire-and-reschedule steady state over n events
// with a hand-rolled loop: the same workload as BenchmarkSteadyStateEvent,
// minus the testing framework.
func benchKernel(n int) benchcmp.KernelBench {
	s := simtime.NewScheduler(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < n {
			if _, err := s.After(time.Millisecond, tick); err != nil {
				panic(err)
			}
		}
	}
	if _, err := s.After(time.Millisecond, tick); err != nil {
		panic(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := s.Run(); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchcmp.KernelBench{
		Events:         n,
		NsPerEvent:     float64(elapsed.Nanoseconds()) / float64(n),
		EventsPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerEvent: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerEvent:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}
}

// benchScan measures one discovery against a population of n accepting
// relays at constant 1-device/100 m² density, averaged over repeats.
func benchScan(n int) benchcmp.ScanBench {
	s := simtime.NewScheduler(1)
	m, err := d2d.NewMedium(s, d2d.Config{Profile: radio.WiFiDirectProfile(), Model: energy.DefaultModel()})
	if err != nil {
		panic(err)
	}
	side := math.Sqrt(float64(n) * 100)
	area := geo.Square(side)
	rng := s.Rand()
	for i := 0; i < n; i++ {
		node, err := m.Join(hbmsg.DeviceID(fmt.Sprintf("relay-%05d", i)), d2d.RoleRelay,
			geo.Static{P: area.RandomPoint(rng)}, energy.NewLedger())
		if err != nil {
			panic(err)
		}
		node.SetAccepting(true)
		node.Advertise(8, d2d.MaxGroupOwnerIntent)
	}
	ue, err := m.Join("scanner", d2d.RoleUE,
		geo.Static{P: geo.Point{X: side / 2, Y: side / 2}}, energy.NewLedger())
	if err != nil {
		panic(err)
	}
	const repeats = 2000
	ue.Scan() // warm the grid and scratch buffer
	start := time.Now()
	for i := 0; i < repeats; i++ {
		ue.Scan()
	}
	elapsed := time.Since(start)
	return benchcmp.ScanBench{Devices: n, NsPerScan: float64(elapsed.Nanoseconds()) / repeats}
}
