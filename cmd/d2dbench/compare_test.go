package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCompareSelfPasses: a baseline compared against itself must pass the
// gate — the committed-fixture half of the acceptance contract.
func TestCompareSelfPasses(t *testing.T) {
	base := filepath.Join("testdata", "bench_base.json")
	if err := runCompare(base, base, ""); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
}

// TestCompareGoldenRegressionFails: the committed regressed fixture must
// fail the gate (this is the error path main translates to a non-zero
// exit).
func TestCompareGoldenRegressionFails(t *testing.T) {
	diffPath := filepath.Join(t.TempDir(), "diff.json")
	err := runCompare(
		filepath.Join("testdata", "bench_base.json"),
		filepath.Join("testdata", "bench_regressed.json"),
		diffPath)
	if err == nil {
		t.Fatal("golden regression fixture passed the gate")
	}
	if !strings.Contains(err.Error(), "bench regression") {
		t.Fatalf("unexpected failure: %v", err)
	}
	// The machine-readable diff must land and carry the verdict.
	raw, rerr := os.ReadFile(diffPath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	var diff struct {
		NewRevision string `json:"new_revision"`
		Findings    []struct {
			Metric   string `json:"metric"`
			Severity string `json:"severity"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(raw, &diff); err != nil {
		t.Fatal(err)
	}
	if diff.NewRevision != "bad0001" {
		t.Fatalf("diff revision %q", diff.NewRevision)
	}
	failed := map[string]bool{}
	for _, f := range diff.Findings {
		if f.Severity == "fail" {
			failed[f.Metric] = true
		}
	}
	for _, metric := range []string{
		"kernel.ns_per_event", "kernel.allocs_per_event",
		"scan@10000.ns_per_scan", "figure.fig8+fig9.wall_ms",
		"city.wall_ms", "city.on_time_rate",
	} {
		if !failed[metric] {
			t.Errorf("%s not flagged as regression in %v", metric, failed)
		}
	}
}

func TestCompareBadInputs(t *testing.T) {
	base := filepath.Join("testdata", "bench_base.json")
	if err := runCompare("does-not-exist.json", base, ""); err == nil {
		t.Fatal("missing old report accepted")
	}
	if err := runCompare(base, "does-not-exist.json", ""); err == nil {
		t.Fatal("missing new report accepted")
	}
}

// TestBenchRefusesOverwrite: an existing BENCH_<rev>.json is a committed
// baseline; only -force may replace it.
func TestBenchRefusesOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_ci.json")
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runBench(1, "ci", "none", "none", "none", dir, false)
	if err == nil || !strings.Contains(err.Error(), "-force") {
		t.Fatalf("overwrite not refused: %v", err)
	}
}
