package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunPairScenario(t *testing.T) {
	if err := run("pair", 1, 2, 2, 1, 0, 8, "nagle", "wechat", 1, true, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCrowdScenario(t *testing.T) {
	if err := run("crowd", 2, 10, 2, 0, 60, 8, "nagle", "standard", 1, false, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("teleport", 1, 1, 2, 1, 0, 8, "nagle", "standard", 1, false, nil); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run("pair", 1, 1, 2, 1, 0, 8, "yolo", "standard", 1, false, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run("pair", 1, 1, 2, 1, 0, 8, "nagle", "icq", 1, false, nil); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scn.json")
	scn := `{
	  "seed": 1,
	  "duration": "10m",
	  "relays": [{"id": "r", "app": "standard", "capacity": 4, "mobility": {"x": 0}}],
	  "ues": [{"id": "u", "app": "standard", "startOffset": "20s", "mobility": {"x": 1}}]
	}`
	if err := os.WriteFile(path, []byte(scn), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := runConfig(path, nil); err != nil {
		t.Fatalf("runConfig: %v", err)
	}
	if err := runConfig(filepath.Join(dir, "missing.json"), nil); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestOpenTrace(t *testing.T) {
	tr, closeFn, err := openTrace("")
	if err != nil || tr != nil {
		t.Fatalf("empty path: %v/%v", tr, err)
	}
	if err := closeFn(); err != nil {
		t.Fatalf("close: %v", err)
	}
	path := filepath.Join(t.TempDir(), "t.jsonl")
	tr, closeFn, err = openTrace(path)
	if err != nil || tr == nil {
		t.Fatalf("openTrace: %v", err)
	}
	if err := closeFn(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
