// Command d2dsim runs one simulation scenario of the D2D heartbeat
// relaying framework and prints the resulting report: per-device energy,
// signaling counters and delivery statistics, plus the comparison against
// the original (no-D2D) system.
//
// Usage:
//
//	d2dsim [-scenario pair|crowd] [-relays N] [-ues N] [-periods N]
//	       [-distance M] [-side M] [-capacity M] [-policy nagle|immediate|fixed-delay|period-aligned]
//	       [-app standard|wechat|whatsapp|qq|facebook] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"d2dhb/internal/cellular"
	"d2dhb/internal/core"
	"d2dhb/internal/d2d"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/metrics"
	scenariopkg "d2dhb/internal/scenario"
	"d2dhb/internal/sched"
	"d2dhb/internal/trace"
)

func main() {
	var (
		scenario = flag.String("scenario", "pair", "pair or crowd")
		relays   = flag.Int("relays", 1, "number of relays (crowd scenario)")
		ues      = flag.Int("ues", 1, "number of UEs")
		periods  = flag.Int("periods", 8, "heartbeat periods to simulate")
		distance = flag.Float64("distance", 1, "UE-relay distance in meters (pair scenario)")
		side     = flag.Float64("side", 100, "area side in meters (crowd scenario)")
		capacity = flag.Int("capacity", 8, "relay collection capacity M")
		policy   = flag.String("policy", "nagle", "scheduling policy")
		app      = flag.String("app", "standard", "app profile")
		seed     = flag.Int64("seed", 1, "simulation seed")
		channel  = flag.Bool("channel", false, "track control-channel load (signaling storm)")
		config   = flag.String("config", "", "JSON scenario file (overrides the other topology flags)")
		traceOut = flag.String("trace", "", "write a JSONL event trace to this file")
	)
	flag.Parse()
	tracer, closeTrace, err := openTrace(*traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "d2dsim:", err)
		os.Exit(1)
	}
	if *config != "" {
		err = runConfig(*config, tracer)
	} else {
		err = run(*scenario, *relays, *ues, *periods, *distance, *side, *capacity, *policy, *app, *seed, *channel, tracer)
	}
	if cerr := closeTrace(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "d2dsim:", err)
		os.Exit(1)
	}
}

// runConfig executes a declarative JSON scenario and compares it against
// the same topology with D2D disabled.
// openTrace opens the optional JSONL trace sink.
func openTrace(path string) (trace.Tracer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return trace.NewJSONL(f), f.Close, nil
}

func runConfig(path string, tracer trace.Tracer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() // read-only: nothing buffered to lose
	cfg, err := scenariopkg.Load(f)
	if err != nil {
		return err
	}
	sim, err := cfg.BuildTraced(tracer)
	if err != nil {
		return err
	}
	rep, err := sim.Run()
	if err != nil {
		return err
	}
	base, err := cfg.BuildWith(true) // baseline is never traced
	if err != nil {
		return err
	}
	baseRep, err := base.Run()
	if err != nil {
		return err
	}
	profile, err := scenariopkg.ProfileByName("standard")
	if err != nil {
		return err
	}
	printReport(rep, baseRep, profile)
	if cfg.Channel {
		printChannel(rep, baseRep, cellular.DefaultChannelConfig())
	}
	return nil
}

func run(scenario string, relays, ues, periods int, distance, side float64, capacity int, policyName, appName string, seed int64, channel bool, tracer trace.Tracer) error {
	profile, err := profileByName(appName)
	if err != nil {
		return err
	}
	kind, err := policyByName(policyName)
	if err != nil {
		return err
	}
	opts := core.Options{
		Seed:     seed,
		Duration: time.Duration(periods)*profile.Period + 10*time.Second,
		Policy:   kind,
	}
	chanCfg := cellular.DefaultChannelConfig()
	if channel {
		opts.Channel = &chanCfg
	}
	opts.Tracer = tracer

	var sim *core.Simulation
	switch scenario {
	case "pair":
		sim, err = core.PairScenario(opts, profile, ues, distance, capacity)
	case "crowd":
		sim, err = core.CrowdScenario(opts, profile, relays, ues, side, capacity)
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	if err != nil {
		return err
	}
	rep, err := sim.Run()
	if err != nil {
		return err
	}

	// Baseline: the identical topology with D2D disabled. The event trace
	// covers only the scheme run; mixing both streams would corrupt the
	// per-heartbeat delay matching.
	opts.DisableD2D = true
	opts.Tracer = nil
	var base *core.Simulation
	switch scenario {
	case "pair":
		base, err = core.PairScenario(opts, profile, ues, distance, capacity)
	case "crowd":
		base, err = core.CrowdScenario(opts, profile, relays, ues, side, capacity)
	}
	if err != nil {
		return err
	}
	baseRep, err := base.Run()
	if err != nil {
		return err
	}

	printReport(rep, baseRep, profile)
	if channel {
		printChannel(rep, baseRep, chanCfg)
	}
	return nil
}

func printChannel(rep, base *core.Report, cfg cellular.ChannelConfig) {
	t := metrics.NewTable("Control-channel load (signaling storm)",
		"metric", "scheme", "original")
	t.AddRow("peak window load",
		fmt.Sprintf("%d", rep.Channel.PeakWindowLoad),
		fmt.Sprintf("%d", base.Channel.PeakWindowLoad))
	t.AddRow("peak utilization",
		metrics.Pct(rep.Channel.PeakUtilization(cfg)),
		metrics.Pct(base.Channel.PeakUtilization(cfg)))
	t.AddRow("overloaded windows",
		fmt.Sprintf("%d", rep.Channel.OverloadedWindows),
		fmt.Sprintf("%d", base.Channel.OverloadedWindows))
	t.AddRow("dropped messages",
		fmt.Sprintf("%d", rep.Channel.DroppedMessages),
		fmt.Sprintf("%d", base.Channel.DroppedMessages))
	fmt.Println(t)
}

func printReport(rep, base *core.Report, profile hbmsg.AppProfile) {
	t := metrics.NewTable(
		fmt.Sprintf("Per-device results (%s, %v horizon)", profile.Name, rep.Duration),
		"device", "role", "energy (µAh)", "L3 msgs", "tx", "avail", "forwarded/collected")
	for _, d := range rep.Devices {
		extra := ""
		switch {
		case d.Relay != nil:
			extra = fmt.Sprintf("collected %d, credits %d", d.Relay.Collected, d.Relay.Credits)
		case d.UE != nil:
			extra = fmt.Sprintf("d2d %d, direct %d, fallback %d",
				d.UE.SentViaD2D, d.UE.DirectCellular, d.UE.FallbackResends)
		}
		t.AddRow(string(d.ID), d.Role.String(), metrics.F(float64(d.Total)),
			fmt.Sprintf("%d", d.RRC.L3Messages), fmt.Sprintf("%d", d.RRC.Transmissions),
			metrics.Pct(d.Availability), extra)
	}
	fmt.Println(t)

	summary := metrics.NewTable("Scheme vs original system",
		"metric", "scheme", "original", "saving")
	l3Saving := 1 - float64(rep.TotalL3Messages)/float64(base.TotalL3Messages)
	eSaving := 1 - float64(rep.TotalEnergy())/float64(base.TotalEnergy())
	summary.AddRow("layer-3 messages",
		fmt.Sprintf("%d", rep.TotalL3Messages), fmt.Sprintf("%d", base.TotalL3Messages),
		metrics.Pct(l3Saving))
	summary.AddRow("total energy (µAh)",
		metrics.F(float64(rep.TotalEnergy())), metrics.F(float64(base.TotalEnergy())),
		metrics.Pct(eSaving))
	ueScheme := rep.EnergyByRole(d2d.RoleUE)
	ueBase := base.EnergyByRole(d2d.RoleUE)
	if ueBase > 0 {
		summary.AddRow("UE energy (µAh)",
			metrics.F(float64(ueScheme)), metrics.F(float64(ueBase)),
			metrics.Pct(1-float64(ueScheme)/float64(ueBase)))
	}
	summary.AddRow("deliveries (late)",
		fmt.Sprintf("%d (%d)", rep.Deliveries, rep.LateDeliveries),
		fmt.Sprintf("%d (%d)", base.Deliveries, base.LateDeliveries), "")
	fmt.Println(summary)
}

func profileByName(name string) (hbmsg.AppProfile, error) {
	switch name {
	case "standard":
		return hbmsg.StandardHeartbeat(), nil
	case "wechat":
		return hbmsg.WeChat(), nil
	case "whatsapp":
		return hbmsg.WhatsApp(), nil
	case "qq":
		return hbmsg.QQ(), nil
	case "facebook":
		return hbmsg.Facebook(), nil
	default:
		return hbmsg.AppProfile{}, fmt.Errorf("unknown app %q", name)
	}
}

func policyByName(name string) (sched.Kind, error) {
	switch name {
	case "nagle":
		return sched.KindNagle, nil
	case "immediate":
		return sched.KindImmediate, nil
	case "fixed-delay":
		return sched.KindFixedDelay, nil
	case "period-aligned":
		return sched.KindPeriodAligned, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}
