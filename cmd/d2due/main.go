// Command d2due runs a UE client of the real heartbeat relaying stack: it
// emits periodic heartbeats, forwards them through a relay when one is
// configured, and falls back to the server directly when feedback times
// out.
//
// Usage:
//
//	d2due [-id ue-1] [-relay 127.0.0.1:7401] [-server 127.0.0.1:7400]
//	      [-apps wechat,qq] [-report 5s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"d2dhb/internal/hbmsg"
	"d2dhb/internal/relaynet"
	"d2dhb/internal/scenario"
)

func main() {
	var (
		id     = flag.String("id", "ue-1", "device id")
		relay  = flag.String("relay", "127.0.0.1:7401", "relay address (empty = direct mode)")
		server = flag.String("server", "127.0.0.1:7400", "presence server address")
		apps   = flag.String("apps", "standard", "comma-separated app profiles")
		report = flag.Duration("report", 5*time.Second, "stats report interval")
	)
	flag.Parse()
	if err := run(*id, *relay, *server, *apps, *report); err != nil {
		fmt.Fprintln(os.Stderr, "d2due:", err)
		os.Exit(1)
	}
}

func run(id, relayAddr, server, appNames string, report time.Duration) error {
	var profiles []hbmsg.AppProfile
	for _, name := range strings.Split(appNames, ",") {
		p, err := scenario.ProfileByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		profiles = append(profiles, p)
	}
	primary := profiles[0]
	var extras []relaynet.UEApp
	for _, p := range profiles[1:] {
		extras = append(extras, relaynet.UEApp{
			Name: p.Name, Period: p.Period, Expiry: p.Expiry(), Pad: p.Size,
		})
	}

	ue, err := relaynet.NewUEClient(relaynet.UEClientConfig{
		ID: id, App: primary.Name,
		Period: primary.Period, Expiry: primary.Expiry(), Pad: primary.Size,
		ExtraApps: extras,
		RelayAddr: relayAddr, ServerAddr: server,
	})
	if err != nil {
		return err
	}
	if err := ue.Start(); err != nil {
		return err
	}
	defer ue.Shutdown()
	fmt.Printf("ue %s (%d apps, primary %s every %v) relay=%q server=%s\n",
		id, len(profiles), primary.Name, primary.Period, relayAddr, server)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(report)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return nil
		case <-ticker.C:
			st := ue.Stats()
			fmt.Printf("generated=%d viaRelay=%d direct=%d fallbacks=%d acks=%d\n",
				st.Generated, st.ViaRelay, st.Direct, st.FallbackResends, st.FeedbackAcks)
		}
	}
}
