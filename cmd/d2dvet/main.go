// Command d2dvet runs the project's static-analysis suite over Go package
// patterns and reports invariant violations the compiler cannot see:
// wall-clock reads in simulation-clocked packages, unseeded global
// randomness, blocking calls under a held mutex, dropped network-layer
// errors, and ad-hoc trace event kinds.
//
// Usage:
//
//	d2dvet [-list] [packages]
//
// Patterns default to ./... . Exit status is 0 when clean, 1 when any
// finding survives suppression, 2 on a driver error.
package main

import (
	"flag"
	"fmt"
	"os"

	"d2dhb/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: d2dvet [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the project static-analysis suite (default pattern ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	findings, err := loader.Run(lint.DefaultConfig(loader.ModulePath), patterns)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "d2dvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "d2dvet:", err)
	os.Exit(2)
}
