// Command d2dvet runs the project's static-analysis suite over Go package
// patterns and reports invariant violations the compiler cannot see:
// wall-clock reads in simulation-clocked packages, unseeded global
// randomness, blocking calls under a held mutex, dropped network-layer
// errors, ad-hoc trace event kinds, map iteration feeding ordered sinks,
// shutdown-less goroutines in stoppable types, mixed atomic/plain field
// access, and leaked tickers/timers.
//
// Usage:
//
//	d2dvet [-list] [-json|-github] [-sarif file] [-unused-allows] [packages]
//
// Patterns default to ./... . Exit status is 0 when clean, 1 when any
// finding survives suppression, 2 on a driver error.
package main

import (
	"flag"
	"fmt"
	"os"

	"d2dhb/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their invariants, then exit")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array instead of text")
	github := flag.Bool("github", false, "print findings as GitHub ::error workflow annotations")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this `file`")
	unusedAllows := flag.Bool("unused-allows", false, "report stale //lint:allow directives that no longer suppress anything")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: d2dvet [-list] [-json|-github] [-sarif file] [-unused-allows] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the project static-analysis suite (default pattern ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *github {
		fatal(fmt.Errorf("-json and -github are mutually exclusive"))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	cfg := lint.DefaultConfig(loader.ModulePath)
	cfg.ReportUnusedAllows = *unusedAllows
	findings, err := loader.Run(cfg, patterns)
	if err != nil {
		fatal(err)
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fatal(err)
		}
		if err := lint.EncodeSARIF(f, findings); err != nil {
			_ = f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	switch {
	case *jsonOut:
		if err := lint.EncodeJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	case *github:
		lint.EncodeGitHub(os.Stdout, findings)
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "d2dvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "d2dvet:", err)
	os.Exit(2)
}
