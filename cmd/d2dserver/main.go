// Command d2dserver runs the IM presence server of the real heartbeat
// relaying stack. It accepts direct heartbeats and relay batches over TCP
// and reports presence statistics every few seconds.
//
// Usage:
//
//	d2dserver [-addr 127.0.0.1:7400] [-report 5s] [-telemetry 127.0.0.1:7480]
//
// With -telemetry the server exposes live metrics over HTTP: /metrics
// (aligned text), /metrics.json (machine-readable, scraped by d2dload) and
// /debug/pprof for profiling.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"d2dhb/internal/relaynet"
	"d2dhb/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7400", "listen address")
		report    = flag.Duration("report", 5*time.Second, "stats report interval")
		telemAddr = flag.String("telemetry", "", "serve /metrics, /metrics.json and pprof on this address (empty disables)")
	)
	flag.Parse()
	if err := run(*addr, *report, *telemAddr); err != nil {
		fmt.Fprintln(os.Stderr, "d2dserver:", err)
		os.Exit(1)
	}
}

func run(addr string, report time.Duration, telemAddr string) error {
	srv := relaynet.NewServer()
	if telemAddr != "" {
		reg := telemetry.NewRegistry()
		srv.SetTelemetry(reg)
		ts, err := telemetry.Serve(telemAddr, reg)
		if err != nil {
			return err
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
	}
	if err := srv.Start(addr); err != nil {
		return err
	}
	defer srv.Shutdown()
	fmt.Printf("presence server listening on %s\n", srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time // nil (blocks forever) when reporting is disabled
	if report > 0 {
		ticker := time.NewTicker(report)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return nil
		case <-tick:
			st := srv.Stats()
			fmt.Printf("online=%d direct=%d relayed=%d batches=%d late=%d conns=%d\n",
				srv.OnlineCount(time.Now()), st.HeartbeatsDirect, st.HeartbeatsRelayed,
				st.Batches, st.Late, st.Connections)
		}
	}
}
