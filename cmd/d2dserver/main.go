// Command d2dserver runs the IM presence server of the real heartbeat
// relaying stack. It accepts direct heartbeats and relay batches over TCP
// and reports presence statistics every few seconds.
//
// Usage:
//
//	d2dserver [-addr 127.0.0.1:7400] [-report 5s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"d2dhb/internal/relaynet"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7400", "listen address")
		report = flag.Duration("report", 5*time.Second, "stats report interval")
	)
	flag.Parse()
	if err := run(*addr, *report); err != nil {
		fmt.Fprintln(os.Stderr, "d2dserver:", err)
		os.Exit(1)
	}
}

func run(addr string, report time.Duration) error {
	srv := relaynet.NewServer()
	if err := srv.Start(addr); err != nil {
		return err
	}
	defer srv.Shutdown()
	fmt.Printf("presence server listening on %s\n", srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(report)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return nil
		case <-ticker.C:
			st := srv.Stats()
			fmt.Printf("online=%d direct=%d relayed=%d batches=%d late=%d conns=%d\n",
				srv.OnlineCount(time.Now()), st.HeartbeatsDirect, st.HeartbeatsRelayed,
				st.Batches, st.Late, st.Connections)
		}
	}
}
