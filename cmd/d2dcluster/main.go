// Command d2dcluster launches an N-shard presence cluster on one box: N
// relaynet servers, each with its own telemetry/health/handoff control
// plane on an ephemeral HTTP port, fronted by the cluster router serving
// the epoch-versioned config that relays, UEs and d2dload route by.
//
// Usage:
//
//	d2dcluster [-shards 3] [-router 127.0.0.1:7700] [-vnodes 0]
//	           [-health 250ms] [-failures 3] [-settle 0]
//
// The -router listener serves the router's /cluster/* control plane
// (config, drain, evict, join), its /metrics[.json] registry, and the
// launcher's admin surface:
//
//	GET  /admin/status               JSON: epoch plus per-shard liveness
//	POST /admin/drain?id=shard-1     graceful drain (handoff), then stop
//	POST /admin/kill?id=shard-1      hard-kill the shard, crash-style
//	POST /admin/restart?id=shard-1   fresh instance (new ports) rejoins
//
// Shard hbproto/HTTP ports are ephemeral: every routing party discovers
// them through /cluster/config, so nothing needs pre-assigned ports. On
// SIGINT/SIGTERM the launcher drains every shard that still has a
// successor before exiting; a second signal exits immediately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"d2dhb/internal/cluster"
	"d2dhb/internal/relaynet"
	"d2dhb/internal/telemetry"
)

func main() {
	var (
		shards   = flag.Int("shards", 3, "presence shard count")
		router   = flag.String("router", "127.0.0.1:7700", "router + admin listen address")
		vnodes   = flag.Int("vnodes", 0, "ring virtual nodes per shard (0 = default)")
		health   = flag.Duration("health", 250*time.Millisecond, "shard liveness probe interval (<0 disables)")
		failures = flag.Int("failures", 3, "consecutive probe failures before eviction")
		settle   = flag.Duration("settle", 0, "drain settle delay before handoff (0 = auto)")
	)
	flag.Parse()
	if err := run(*shards, *router, *vnodes, *health, *failures, *settle); err != nil {
		fmt.Fprintln(os.Stderr, "d2dcluster:", err)
		os.Exit(1)
	}
}

// shardProc is one in-process presence shard: server, metrics registry,
// readiness flag and the HTTP control plane a real deployment would run
// per process.
type shardProc struct {
	id     string
	srv    *relaynet.Server
	health *telemetry.Health
	web    *telemetry.Server
	node   cluster.Node
	dead   bool
}

// teardown closes the shard's listeners; callers mark it dead (under the
// launcher lock) first.
func (sp *shardProc) teardown() {
	sp.srv.Shutdown()
	sp.web.Close()
}

// launcher owns the shard set and the router, and serves the admin
// surface that scripts (and the CI smoke job) drive reshards through.
type launcher struct {
	vnodes int

	mu     sync.Mutex
	router *cluster.Router
	client *cluster.Client
	shards map[string]*shardProc
}

// startShard boots one shard: hbproto listener, telemetry registry,
// health flag and the /cluster/* handoff agent, all on ephemeral ports.
func (l *launcher) startShard(id string) (*shardProc, error) {
	srv := relaynet.NewServer()
	reg := telemetry.NewRegistry()
	srv.SetTelemetry(reg)
	if l.client != nil {
		srv.SetCluster(id, l.client)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("shard %s: %w", id, err)
	}
	health := telemetry.NewHealth()
	web, err := telemetry.Serve("127.0.0.1:0", reg,
		telemetry.WithHealth(health),
		telemetry.WithHandler("/cluster/", cluster.NewNodeAgent(srv, health).Handler()))
	if err != nil {
		srv.Shutdown()
		return nil, fmt.Errorf("shard %s: %w", id, err)
	}
	sp := &shardProc{
		id: id, srv: srv, health: health, web: web,
		node: cluster.Node{ID: id, Addr: srv.Addr(), HTTP: "http://" + web.Addr()},
	}
	return sp, nil
}

func run(n int, routerAddr string, vnodes int, health time.Duration, failures int, settle time.Duration) error {
	if n < 1 {
		return fmt.Errorf("need at least one shard, got %d", n)
	}
	l := &launcher{vnodes: vnodes, shards: make(map[string]*shardProc, n)}

	nodes := make([]cluster.Node, 0, n)
	for i := 0; i < n; i++ {
		sp, err := l.startShard(fmt.Sprintf("shard-%d", i))
		if err != nil {
			return err
		}
		l.shards[sp.id] = sp
		nodes = append(nodes, sp.node)
	}

	routerReg := telemetry.NewRegistry()
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Initial:        cluster.Config{Epoch: 1, Nodes: nodes},
		VirtualNodes:   vnodes,
		HealthInterval: health,
		HealthFailures: failures,
		SettleDelay:    settle,
		Telemetry:      routerReg,
	})
	if err != nil {
		return err
	}
	defer router.Close()
	l.router = router

	mux := http.NewServeMux()
	mux.Handle("/cluster/", router.Handler())
	mux.Handle("/metrics", telemetry.Handler(routerReg))
	mux.Handle("/metrics.json", telemetry.Handler(routerReg))
	l.adminHandlers(mux)
	// Bind synchronously: the misroute client below fetches the config
	// from this very listener, so it must be accepting before we proceed.
	ln, err := net.Listen("tcp", routerAddr)
	if err != nil {
		return fmt.Errorf("router listen: %w", err)
	}
	web := &http.Server{Handler: mux}
	webErr := make(chan error, 1)
	go func() { webErr <- web.Serve(ln) }()
	defer func() { _ = web.Close() }()

	// The shards' misroute audit routes through the same config the data
	// plane sees; the client polls the router like any other party.
	client, err := cluster.NewClient(cluster.ClientConfig{
		RouterURL:    "http://" + routerAddr,
		VirtualNodes: vnodes,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	l.mu.Lock()
	l.client = client
	for _, sp := range l.shards {
		sp.srv.SetCluster(sp.id, client)
	}
	l.mu.Unlock()

	fmt.Printf("d2dcluster: %d shards up, router on http://%s\n", n, routerAddr)
	for _, node := range nodes {
		fmt.Printf("  %s  hb=%s  http=%s\n", node.ID, node.Addr, node.HTTP)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-webErr:
		return fmt.Errorf("router listener: %w", err)
	case <-sig:
	}

	// Graceful exit: drain every shard that still has a successor so the
	// presence state lands somewhere before the process goes away.
	fmt.Println("d2dcluster: draining shards")
	done := make(chan struct{})
	go func() {
		defer close(done)
		l.drainAll()
	}()
	select {
	case <-done:
	case <-sig:
		fmt.Println("d2dcluster: second signal, exiting now")
	}
	l.mu.Lock()
	rest := make([]*shardProc, 0, len(l.shards))
	for _, sp := range l.shards {
		rest = append(rest, sp)
	}
	l.mu.Unlock()
	for _, sp := range rest {
		l.stopShard(sp)
	}
	return nil
}

// stopShard marks the shard dead under the launcher lock, then tears it
// down outside it: Shutdown blocks on connection teardown, and a stalled
// peer must not stall every admin request contending for the lock.
func (l *launcher) stopShard(sp *shardProc) {
	l.mu.Lock()
	already := sp.dead
	sp.dead = true
	l.mu.Unlock()
	if !already {
		sp.teardown()
	}
}

// drainAll gracefully drains shards one at a time while a successor
// remains to receive the handoff.
func (l *launcher) drainAll() {
	for {
		l.mu.Lock()
		var next *shardProc
		for _, sp := range l.shards {
			if !sp.dead {
				next = sp
				break
			}
		}
		l.mu.Unlock()
		if next == nil {
			return
		}
		if len(l.router.Config().Nodes) <= 1 {
			return // last shard has nowhere to hand its state
		}
		if err := l.router.Drain(next.id); err != nil {
			fmt.Fprintf(os.Stderr, "d2dcluster: drain %s: %v\n", next.id, err)
			return
		}
		l.stopShard(next)
	}
}

// shardStatus is one row of /admin/status.
type shardStatus struct {
	ID     string `json:"id"`
	Addr   string `json:"addr,omitempty"`
	HTTP   string `json:"http,omitempty"`
	Alive  bool   `json:"alive"`
	Ready  bool   `json:"ready"`
	InRing bool   `json:"inRing"`
}

func (l *launcher) adminHandlers(mux *http.ServeMux) {
	mux.HandleFunc("/admin/status", func(w http.ResponseWriter, _ *http.Request) {
		cfg := l.router.Config()
		inRing := make(map[string]bool, len(cfg.Nodes))
		for _, n := range cfg.Nodes {
			inRing[n.ID] = true
		}
		l.mu.Lock()
		rows := make([]shardStatus, 0, len(l.shards))
		for _, sp := range l.shards {
			rows = append(rows, shardStatus{
				ID: sp.id, Addr: sp.node.Addr, HTTP: sp.node.HTTP,
				Alive: !sp.dead, Ready: sp.health.Ready(), InRing: inRing[sp.id],
			})
		}
		l.mu.Unlock()
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Epoch  uint64        `json:"epoch"`
			Shards []shardStatus `json:"shards"`
		}{cfg.Epoch, rows})
	})
	mux.HandleFunc("/admin/drain", func(w http.ResponseWriter, r *http.Request) {
		l.shardOp(w, r, func(sp *shardProc) error {
			if err := l.router.Drain(sp.id); err != nil {
				return err
			}
			l.stopShard(sp)
			return nil
		})
	})
	mux.HandleFunc("/admin/kill", func(w http.ResponseWriter, r *http.Request) {
		l.shardOp(w, r, func(sp *shardProc) error {
			l.stopShard(sp)
			return nil
		})
	})
	mux.HandleFunc("/admin/restart", func(w http.ResponseWriter, r *http.Request) {
		l.shardOp(w, r, func(sp *shardProc) error {
			if !sp.dead {
				return fmt.Errorf("shard %s is still running", sp.id)
			}
			fresh, err := l.startShard(sp.id)
			if err != nil {
				return err
			}
			if err := l.router.Join(fresh.node); err != nil {
				fresh.dead = true
				fresh.teardown()
				return err
			}
			l.mu.Lock()
			l.shards[sp.id] = fresh
			l.mu.Unlock()
			return nil
		})
	})
}

// shardOp resolves the id query parameter and runs one admin operation.
func (l *launcher) shardOp(w http.ResponseWriter, r *http.Request, op func(*shardProc) error) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	l.mu.Lock()
	sp := l.shards[id]
	l.mu.Unlock()
	if sp == nil {
		http.Error(w, fmt.Sprintf("unknown shard %q", id), http.StatusNotFound)
		return
	}
	if err := op(sp); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintln(w, "ok")
}
