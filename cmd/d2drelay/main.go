// Command d2drelay runs a relay agent of the real heartbeat relaying
// stack: it listens for UE connections (the "D2D side"), schedules
// collected heartbeats with Algorithm 1, and forwards aggregated batches
// to the presence server.
//
// Usage:
//
//	d2drelay [-id relay-1] [-listen 127.0.0.1:7401] [-server 127.0.0.1:7400]
//	         [-period 270s] [-expiry 270s] [-capacity 8] [-report 5s]
//	         [-telemetry 127.0.0.1:7481]
//
// With -telemetry the relay exposes live scheduler and forwarding metrics
// over HTTP: /metrics, /metrics.json and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"d2dhb/internal/relaynet"
	"d2dhb/internal/telemetry"
)

func main() {
	var (
		id        = flag.String("id", "relay-1", "relay device id")
		listen    = flag.String("listen", "127.0.0.1:7401", "UE-side listen address")
		server    = flag.String("server", "127.0.0.1:7400", "presence server address")
		period    = flag.Duration("period", 270*time.Second, "own heartbeat period (scheduling window T)")
		expiry    = flag.Duration("expiry", 270*time.Second, "own heartbeat expiry")
		capacity  = flag.Int("capacity", 8, "collection capacity M")
		report    = flag.Duration("report", 5*time.Second, "stats report interval")
		telemAddr = flag.String("telemetry", "", "serve /metrics, /metrics.json and pprof on this address (empty disables)")
	)
	flag.Parse()
	if err := run(*id, *listen, *server, *period, *expiry, *capacity, *report, *telemAddr); err != nil {
		fmt.Fprintln(os.Stderr, "d2drelay:", err)
		os.Exit(1)
	}
}

func run(id, listen, server string, period, expiry time.Duration, capacity int, report time.Duration, telemAddr string) error {
	var reg *telemetry.Registry
	if telemAddr != "" {
		reg = telemetry.NewRegistry()
		ts, err := telemetry.Serve(telemAddr, reg)
		if err != nil {
			return err
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
	}
	relay, err := relaynet.NewRelayAgent(relaynet.RelayAgentConfig{
		ID: id, App: "relay", Period: period, Expiry: expiry, Pad: 54, Capacity: capacity,
		Telemetry: reg,
	})
	if err != nil {
		return err
	}
	if err := relay.Start(listen, server); err != nil {
		return err
	}
	defer relay.Shutdown()
	fmt.Printf("relay %s listening on %s, upstream %s\n", id, relay.Addr(), server)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time // nil (blocks forever) when reporting is disabled
	if report > 0 {
		ticker := time.NewTicker(report)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return nil
		case <-tick:
			st := relay.Stats()
			fmt.Printf("collected=%d flushes=%d forwarded=%d credits=%d feedbacks=%d rejected=%d\n",
				st.Collected, st.Flushes, st.Forwarded, st.Credits,
				st.FeedbacksSent, st.RejectedClosed+st.RejectedExpire)
		}
	}
}
