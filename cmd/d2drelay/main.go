// Command d2drelay runs a relay agent of the real heartbeat relaying
// stack: it listens for UE connections (the "D2D side"), schedules
// collected heartbeats with Algorithm 1, and forwards aggregated batches
// to the presence server.
//
// Usage:
//
//	d2drelay [-id relay-1] [-listen 127.0.0.1:7401] [-server 127.0.0.1:7400]
//	         [-period 270s] [-expiry 270s] [-capacity 8] [-report 5s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"d2dhb/internal/relaynet"
)

func main() {
	var (
		id       = flag.String("id", "relay-1", "relay device id")
		listen   = flag.String("listen", "127.0.0.1:7401", "UE-side listen address")
		server   = flag.String("server", "127.0.0.1:7400", "presence server address")
		period   = flag.Duration("period", 270*time.Second, "own heartbeat period (scheduling window T)")
		expiry   = flag.Duration("expiry", 270*time.Second, "own heartbeat expiry")
		capacity = flag.Int("capacity", 8, "collection capacity M")
		report   = flag.Duration("report", 5*time.Second, "stats report interval")
	)
	flag.Parse()
	if err := run(*id, *listen, *server, *period, *expiry, *capacity, *report); err != nil {
		fmt.Fprintln(os.Stderr, "d2drelay:", err)
		os.Exit(1)
	}
}

func run(id, listen, server string, period, expiry time.Duration, capacity int, report time.Duration) error {
	relay, err := relaynet.NewRelayAgent(relaynet.RelayAgentConfig{
		ID: id, App: "relay", Period: period, Expiry: expiry, Pad: 54, Capacity: capacity,
	})
	if err != nil {
		return err
	}
	if err := relay.Start(listen, server); err != nil {
		return err
	}
	defer relay.Shutdown()
	fmt.Printf("relay %s listening on %s, upstream %s\n", id, relay.Addr(), server)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(report)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return nil
		case <-ticker.C:
			st := relay.Stats()
			fmt.Printf("collected=%d flushes=%d forwarded=%d credits=%d feedbacks=%d rejected=%d\n",
				st.Collected, st.Flushes, st.Forwarded, st.Credits,
				st.FeedbacksSent, st.RejectedClosed+st.RejectedExpire)
		}
	}
}
