//go:build !unix

package main

// raiseFDLimit is a no-op where rlimits don't exist.
func raiseFDLimit() {}
