// Command d2dload drives the real heartbeat stack with a massive virtual
// fleet over loopback TCP and measures where it saturates: open-loop load
// generation with a configurable arrival shape, per-path heartbeat→ack
// latency quantiles, throughput and error/timeout accounting.
//
// Usage:
//
//	d2dload [-ues 1000] [-relays 2] [-relay-ratio 0.25] [-apps wechat:2,qq:1]
//	        [-duration 10s] [-speedup 100] [-arrival steady|ramp|spike]
//	        [-window 0] [-report 5s] [-timeout 0] [-capacity 0]
//	        [-server host:port] [-cluster url] [-trunks 0] [-trunk-pace 0]
//	        [-json path] [-fault spec]
//	        [-telemetry host:port] [-metrics host:port] [-record trace.d2dr]
//	d2dload -replay trace.d2dr [-server host:port | -cluster url] [-speedup 100] [-fault spec] [-json path]
//
// -record captures the run's per-heartbeat arrival timeline (sends, acks,
// timeouts, fault windows) into a compact trace file (internal/rec).
// -replay drives a recorded trace back through BOTH the deterministic
// simulation (internal/experiments.ReplaySim) and the live TCP stack
// (internal/loadgen.ReplayLive) and prints the sim-vs-real parity report:
// delivery ratio, ack-latency quantiles and signaling counts side by side,
// plus the trace and sim digests.
//
// -telemetry serves the run's own live metrics (fleet counters, latency
// histograms and — for in-process runs — server/relay instruments) plus
// pprof. -metrics names an external server's telemetry listener; each
// report scrapes its /metrics.json so the capacity report captures both
// ends of the measurement.
//
// App profile periods are divided by -speedup so commercial multi-minute
// heartbeat intervals compress into short runs. The final report prints as
// a human table and as JSON (to stdout, or to -json path).
//
// -fault injects scripted network faults into every dial the run makes
// (see internal/faultnet.ParseSpec), e.g.
//
//	-fault "seed=42,latency=5ms,jitter=2ms,corrupt=0.01,partition=3s+1s"
//	-fault "seed=7,chaos=4,horizon=10s"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"d2dhb/internal/experiments"
	"d2dhb/internal/faultnet"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/loadgen"
	"d2dhb/internal/rec"
	"d2dhb/internal/telemetry"
)

func main() {
	var (
		ues        = flag.Int("ues", 1000, "fleet size (virtual UEs)")
		relays     = flag.Int("relays", 2, "relay agent count (0 disables relaying)")
		relayRatio = flag.Float64("relay-ratio", 0.25, "fraction of the fleet forwarding via relays")
		apps       = flag.String("apps", "wechat,whatsapp,qq,facebook", "app profile mix, name[:weight] comma-separated")
		duration   = flag.Duration("duration", 10*time.Second, "load-offering duration (excludes drain)")
		speedup    = flag.Float64("speedup", 100, "divide app heartbeat periods by this factor")
		arrival    = flag.String("arrival", "steady", "fleet arrival shape: steady, ramp or spike")
		window     = flag.Duration("window", 0, "arrival window (0 = auto per shape)")
		report     = flag.Duration("report", 5*time.Second, "interim report interval (0 disables)")
		timeout    = flag.Duration("timeout", 0, "ack timeout before a heartbeat counts lost (0 = auto)")
		capacity   = flag.Int("capacity", 0, "relay per-period collection capacity M (0 = auto)")
		server     = flag.String("server", "", "external presence server address (default: in-process)")
		clusterA   = flag.String("cluster", "", "presence cluster router URL or host:port (see d2dcluster; excludes -server)")
		trunks     = flag.Int("trunks", 0, "multiplex the fleet over this many relay-trunk connections (excludes -relays)")
		trunkPace  = flag.Int("trunk-pace", 0, "spread each trunk period over this many emission slots (0/1 = burst; deterministic user->slot hash)")
		jsonPath   = flag.String("json", "", "write the final JSON report to this file instead of stdout")
		fault      = flag.String("fault", "", "fault-injection spec, e.g. seed=42,latency=5ms,corrupt=0.01,partition=3s+1s")
		telemAddr  = flag.String("telemetry", "", "serve the run's own /metrics, /metrics.json and pprof on this address")
		metrics    = flag.String("metrics", "", "external server's telemetry address to scrape /metrics.json from")
		record     = flag.String("record", "", "record the run's heartbeat timeline into this trace file")
		replay     = flag.String("replay", "", "replay a recorded trace through sim + live stack and print the parity report")
	)
	flag.Parse()
	if *replay != "" {
		if err := runReplay(*replay, *server, *clusterA, *speedup, *fault, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "d2dload:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*ues, *relays, *relayRatio, *apps, *duration, *speedup,
		*arrival, *window, *report, *timeout, *capacity, *server, *clusterA, *trunks, *trunkPace,
		*jsonPath, *fault, *telemAddr, *metrics, *record); err != nil {
		fmt.Fprintln(os.Stderr, "d2dload:", err)
		os.Exit(1)
	}
}

// runReplay is the -replay mode: one trace file in, one sim-vs-real parity
// report out. The sim pass is fully deterministic (replaying the same file
// twice prints the same sim digest); the live pass re-executes the same
// timeline over real TCP — against one server, or against a cluster router
// URL with per-shard routing resolved through the epoch config.
func runReplay(path, server, clusterAddr string, speedup float64, fault, jsonPath string) error {
	tl, err := rec.ReadFile(path)
	if err != nil {
		return err
	}
	faults, err := faultnet.ParseSpec(fault)
	if err != nil {
		return err
	}
	fmt.Printf("d2dload: replaying %s — %d clients, %d sends, digest %s\n",
		path, len(tl.Clients), tl.Sends(), tl.Digest())
	if clusterAddr != "" {
		fmt.Printf("d2dload: replay cluster target %s\n", clusterAddr)
	}
	sim, err := experiments.ReplaySim(tl)
	if err != nil {
		return err
	}
	live, err := loadgen.ReplayLive(tl, loadgen.ReplayOptions{
		ServerAddr: server, ClusterAddr: clusterAddr, Speedup: speedup, Faults: faults,
	})
	if err != nil {
		return err
	}
	rep := rec.NewParityReport(tl, tl.RecordedMetrics(), sim, live)
	fmt.Println(rep.Table())
	fmt.Printf("trace digest %s, sim digest %s, delivery gap %.4f\n",
		rep.TraceDigest, rep.SimDigest, rep.DeliveryGap())
	js, err := rep.JSON()
	if err != nil {
		return err
	}
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("parity report written to %s\n", jsonPath)
	} else {
		fmt.Printf("%s\n", js)
	}
	return nil
}

func run(ues, relays int, relayRatio float64, apps string, duration time.Duration,
	speedup float64, arrival string, window, report, timeout time.Duration,
	capacity int, server, clusterAddr string, trunks, trunkPace int,
	jsonPath, fault, telemAddr, metricsAddr, recordPath string) error {
	raiseFDLimit()
	shape, err := loadgen.ParseArrivalShape(arrival)
	if err != nil {
		return err
	}
	profiles, err := parseAppMix(apps)
	if err != nil {
		return err
	}
	faults, err := faultnet.ParseSpec(fault)
	if err != nil {
		return err
	}
	cfg := loadgen.Config{
		UEs:            ues,
		Relays:         relays,
		RelayRatio:     relayRatio,
		Profiles:       profiles,
		Speedup:        speedup,
		Duration:       duration,
		Arrival:        loadgen.Schedule{Shape: shape, Window: window},
		AckTimeout:     timeout,
		RelayCapacity:  capacity,
		ReportEvery:    report,
		ServerAddr:     server,
		ClusterAddr:    clusterAddr,
		Trunks:         trunks,
		TrunkPaceSlots: trunkPace,
		Faults:         faults,
		MetricsAddr:    metricsAddr,
	}
	var recorder *rec.Recorder
	if recordPath != "" {
		recorder = rec.NewRecorder()
		cfg.Recorder = recorder
	}
	if telemAddr != "" {
		reg := telemetry.NewRegistry()
		cfg.Telemetry = reg
		ts, err := telemetry.Serve(telemAddr, reg)
		if err != nil {
			return err
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
	}
	if report > 0 {
		cfg.OnReport = func(rep loadgen.Report) {
			fmt.Printf("[%5.1fs] %.1f hb/s acked, sent=%d acked=%d timeouts=%d errors=%d, p99=%.1fms\n",
				rep.ElapsedSec, rep.ThroughputHBps, rep.Sent, rep.Acked,
				rep.Timeouts, rep.Errors, rep.Overall.P99Ms)
		}
	}
	r, err := loadgen.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("d2dload: %d UEs (%d relays, ratio %.2f), %s arrival, %v at %gx speedup\n",
		ues, relays, relayRatio, shape, duration, speedup)
	if trunks > 0 {
		if trunkPace > 1 {
			fmt.Printf("d2dload: trunked fleet, %d trunks, paced over %d slots\n", trunks, trunkPace)
		} else {
			fmt.Printf("d2dload: trunked fleet, %d trunks\n", trunks)
		}
	}
	if clusterAddr != "" {
		fmt.Printf("d2dload: cluster target %s\n", clusterAddr)
	}
	rep, err := r.Run()
	if err != nil {
		return err
	}
	if recorder != nil {
		tl, err := recorder.Timeline()
		if err != nil {
			return fmt.Errorf("record: %w", err)
		}
		if err := tl.WriteFile(recordPath); err != nil {
			return fmt.Errorf("record: %w", err)
		}
		fmt.Printf("trace recorded to %s: %d clients, %d sends, digest %s\n",
			recordPath, len(tl.Clients), tl.Sends(), tl.Digest())
	}
	fmt.Println()
	fmt.Print(rep.String())
	if faults != nil {
		fs := faults.Stats()
		fmt.Printf("\nfaults injected: delayed=%d throttled=%d corrupted=%d resets=%d dropped-sends=%d blackholed=%d refused-dials=%d\n",
			fs.Delayed, fs.Throttled, fs.Corrupted, fs.Resets, fs.DroppedSends, fs.Blackholed, fs.RefusedDials)
	}
	js, err := rep.JSON()
	if err != nil {
		return err
	}
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nJSON report written to %s\n", jsonPath)
	} else {
		fmt.Printf("\n%s\n", js)
	}
	return runOutcome(rep)
}

// runOutcome decides the exit status from the final report: a run where
// not one heartbeat left a UE while dial/write errors piled up measured
// nothing — the report is still printed for diagnosis, but the process
// must not exit 0 as if a capacity measurement happened.
func runOutcome(rep loadgen.Report) error {
	if rep.Sent == 0 && rep.Errors > 0 {
		return fmt.Errorf("run aborted: no heartbeat was ever sent (%d dial errors, %d write errors)",
			rep.DialErrors, rep.WriteErrors)
	}
	return nil
}

// profileByName maps CLI names to hbmsg profiles.
func profileByName(name string) (hbmsg.AppProfile, error) {
	switch strings.ToLower(name) {
	case "wechat":
		return hbmsg.WeChat(), nil
	case "whatsapp":
		return hbmsg.WhatsApp(), nil
	case "qq":
		return hbmsg.QQ(), nil
	case "facebook":
		return hbmsg.Facebook(), nil
	case "diagnostics":
		return hbmsg.Diagnostics(), nil
	case "adrefresh":
		return hbmsg.AdRefresh(), nil
	case "standard", "std":
		return hbmsg.StandardHeartbeat(), nil
	default:
		return hbmsg.AppProfile{}, fmt.Errorf("unknown app profile %q", name)
	}
}

// parseAppMix expands "wechat:2,qq:1" into a weighted profile list (the
// fleet assigns profiles round-robin, so repetition is weighting).
func parseAppMix(s string) ([]hbmsg.AppProfile, error) {
	var out []hbmsg.AppProfile
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = part[:i]
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad app weight in %q", part)
			}
			weight = w
		}
		p, err := profileByName(name)
		if err != nil {
			return nil, err
		}
		for i := 0; i < weight; i++ {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty app mix %q", s)
	}
	return out, nil
}
