package main

import (
	"strings"
	"testing"

	"d2dhb/internal/loadgen"
)

func TestRunOutcome(t *testing.T) {
	cases := []struct {
		name    string
		rep     loadgen.Report
		wantErr string
	}{
		{"clean run", loadgen.Report{Sent: 100, Acked: 100}, ""},
		{"lossy but live run", loadgen.Report{Sent: 100, Acked: 40, Errors: 60, DialErrors: 60}, ""},
		{"aborted run", loadgen.Report{Sent: 0, Errors: 12, DialErrors: 10, WriteErrors: 2}, "run aborted"},
		{"idle run", loadgen.Report{}, ""},
	}
	for _, tc := range cases {
		err := runOutcome(tc.rep)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: expected error, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseAppMix(t *testing.T) {
	profiles, err := parseAppMix("wechat:2,qq")
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 || profiles[0].Name != profiles[1].Name {
		t.Fatalf("weighting broken: %+v", profiles)
	}
	for _, bad := range []string{"", "nosuchapp", "wechat:0", "wechat:x"} {
		if _, err := parseAppMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}
