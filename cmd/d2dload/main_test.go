package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"d2dhb/internal/loadgen"
	"d2dhb/internal/rec"
)

func TestRunOutcome(t *testing.T) {
	cases := []struct {
		name    string
		rep     loadgen.Report
		wantErr string
	}{
		{"clean run", loadgen.Report{Sent: 100, Acked: 100}, ""},
		{"lossy but live run", loadgen.Report{Sent: 100, Acked: 40, Errors: 60, DialErrors: 60}, ""},
		{"aborted run", loadgen.Report{Sent: 0, Errors: 12, DialErrors: 10, WriteErrors: 2}, "run aborted"},
		{"idle run", loadgen.Report{}, ""},
	}
	for _, tc := range cases {
		err := runOutcome(tc.rep)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: expected error, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestRecordReplayCLI exercises the full CLI loop: a short trunked run with
// -record, then -replay of the produced trace through sim + live stack with
// the parity report written as JSON.
func TestRecordReplayCLI(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.d2dr")
	err := run(6, 0, 0, "std", 300*time.Millisecond, 200, "steady",
		0, 0, 0, 0, "", "", 2, 0, "", "", "", "", trace)
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	tl, err := rec.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace unreadable: %v", err)
	}
	if tl.Sends() == 0 || len(tl.Clients) != 6 {
		t.Fatalf("trace %d clients / %d sends", len(tl.Clients), tl.Sends())
	}

	parity := filepath.Join(dir, "parity.json")
	if err := runReplay(trace, "", "", 4, "", parity); err != nil {
		t.Fatalf("replay: %v", err)
	}
	raw, err := os.ReadFile(parity)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		TraceDigest string `json:"traceDigest"`
		SimDigest   string `json:"simDigest"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TraceDigest != tl.Digest() || rep.SimDigest == "" {
		t.Fatalf("parity digests %+v vs trace %s", rep, tl.Digest())
	}
}

func TestReplayMissingTrace(t *testing.T) {
	if err := runReplay("no-such-trace.d2dr", "", "", 1, "", ""); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestParseAppMix(t *testing.T) {
	profiles, err := parseAppMix("wechat:2,qq")
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 || profiles[0].Name != profiles[1].Name {
		t.Fatalf("weighting broken: %+v", profiles)
	}
	for _, bad := range []string{"", "nosuchapp", "wechat:0", "wechat:x"} {
		if _, err := parseAppMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}
