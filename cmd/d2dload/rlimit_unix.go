//go:build unix

package main

import "syscall"

// raiseFDLimit lifts the soft open-file limit to the hard limit: a
// 5000-UE fleet plus the in-process server needs two descriptors per
// connection, which overruns the common 1024 default immediately.
func raiseFDLimit() {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur >= lim.Max {
		return
	}
	lim.Cur = lim.Max
	_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
}
