module d2dhb

go 1.22
