// Package d2dhb is a Go reproduction of "Reducing Cellular Signaling
// Traffic for Heartbeat Messages via Energy-Efficient D2D Forwarding"
// (ICDCS 2017): a framework in which volunteer smartphones (relays) collect
// the periodic keep-alive messages of nearby phones (UEs) over
// device-to-device links and transmit them to the base station in a single
// aggregated cellular connection, scheduled by a Nagle-derived algorithm
// that respects per-message expiration times.
//
// The package exposes two ways to use the framework:
//
//   - A deterministic discrete-event simulation of the full system —
//     radio propagation, Wi-Fi Direct-style discovery and group formation,
//     RRC signaling, and a power-monitor-calibrated energy model — via
//     NewSimulation and the scenario builders.
//   - A real networked implementation (presence server, relay agent, UE
//     client speaking a binary protocol over TCP) via NewServer,
//     NewRelayAgent and NewUEClient.
//
// The benchmarks in this package regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md.
package d2dhb

import (
	"d2dhb/internal/core"
	"d2dhb/internal/energy"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/matching"
	"d2dhb/internal/radio"
	"d2dhb/internal/relaynet"
	"d2dhb/internal/rrc"
	"d2dhb/internal/sched"
)

// Simulation types, re-exported from the framework core.
type (
	// Options parameterize a simulation (seed, horizon, radio technique,
	// energy model, scheduling policy, ...).
	Options = core.Options
	// Simulation is a configured scenario; add devices, then Run.
	Simulation = core.Simulation
	// Report is the outcome of a run: per-device energy ledgers, RRC
	// signaling counters and delivery statistics.
	Report = core.Report
	// DeviceReport is one device's share of a Report.
	DeviceReport = core.DeviceReport
	// RelaySpec describes a relay to add to a simulation.
	RelaySpec = core.RelaySpec
	// UESpec describes a UE to add to a simulation.
	UESpec = core.UESpec
	// AppProfile describes an IM app's heartbeat traffic (period, size,
	// expiry, Table I message mix).
	AppProfile = hbmsg.AppProfile
	// DeviceID identifies a device.
	DeviceID = hbmsg.DeviceID
	// EnergyModel holds the paper-calibrated charge constants.
	EnergyModel = energy.Model
	// RRCConfig holds the signaling model parameters.
	RRCConfig = rrc.Config
	// MatchConfig holds relay-selection parameters (prejudgment).
	MatchConfig = matching.Config
	// PolicyKind selects the relay scheduling policy.
	PolicyKind = sched.Kind
	// Technique selects the D2D radio technology.
	Technique = radio.Technique
)

// Scheduling policies.
const (
	// PolicyNagle is Algorithm 1, the paper's scheduler.
	PolicyNagle = sched.KindNagle
	// PolicyImmediate sends every collected heartbeat at once.
	PolicyImmediate = sched.KindImmediate
	// PolicyFixedDelay batches for a fixed delay, ignoring expiries.
	PolicyFixedDelay = sched.KindFixedDelay
	// PolicyPeriodAligned always waits for the relay's period end.
	PolicyPeriodAligned = sched.KindPeriodAligned
)

// D2D techniques.
const (
	// WiFiDirect is the prototype's D2D technology (Section IV-A).
	WiFiDirect = radio.WiFiDirect
	// Bluetooth is the shorter-range alternative kept for ablations.
	Bluetooth = radio.Bluetooth
	// LTEDirect models the ~500 m next-generation D2D the paper motivates
	// (Section II-C).
	LTEDirect = radio.LTEDirect
)

// NewSimulation builds an empty simulation; add devices with
// (*Simulation).AddRelay and (*Simulation).AddUE, then Run.
func NewSimulation(opts Options) (*Simulation, error) { return core.New(opts) }

// PairScenario builds the paper's canonical measurement setup: one static
// relay and numUEs UEs at the given distance in meters, all running the
// same app profile.
func PairScenario(opts Options, profile AppProfile, numUEs int, distanceM float64, capacity int) (*Simulation, error) {
	return core.PairScenario(opts, profile, numUEs, distanceM, capacity)
}

// OriginalScenario builds the same topology with D2D disabled: every
// device sends its own heartbeats over cellular (the paper's baseline).
func OriginalScenario(opts Options, profile AppProfile, numUEs int, distanceM float64) (*Simulation, error) {
	return core.OriginalScenario(opts, profile, numUEs, distanceM)
}

// CrowdScenario scatters relays and UEs uniformly over a square area of
// the given side length in meters — the dense-crowd regime where signaling
// storms arise.
func CrowdScenario(opts Options, profile AppProfile, numRelays, numUEs int, sideM float64, capacity int) (*Simulation, error) {
	return core.CrowdScenario(opts, profile, numRelays, numUEs, sideM, capacity)
}

// App profiles measured by the paper (Section II-A, Table I).
var (
	// WeChat: 270 s period, 74 B heartbeats, 50 % heartbeat share.
	WeChat = hbmsg.WeChat
	// WhatsApp: 240 s period, 66 B heartbeats, 61.9 % share.
	WhatsApp = hbmsg.WhatsApp
	// QQ: 300 s period, 378 B heartbeats, 52.6 % share.
	QQ = hbmsg.QQ
	// Facebook: MQTT-style keep-alive, 48.4 % share.
	Facebook = hbmsg.Facebook
	// StandardHeartbeat: the 54 B reference heartbeat of Section V-A.
	StandardHeartbeat = hbmsg.StandardHeartbeat
	// Apps returns all Table I profiles.
	Apps = hbmsg.Apps
	// DefaultEnergyModel returns the paper-calibrated energy model.
	DefaultEnergyModel = energy.DefaultModel
)

// Real networked stack, re-exported from relaynet.
type (
	// Server is the IM presence server.
	Server = relaynet.Server
	// RelayAgent runs Algorithm 1 against wall-clock time, collecting
	// heartbeats from UE connections and batching them upstream.
	RelayAgent = relaynet.RelayAgent
	// RelayAgentConfig parameterizes a RelayAgent.
	RelayAgentConfig = relaynet.RelayAgentConfig
	// UEClient emits heartbeats through a relay with feedback tracking
	// and direct fallback.
	UEClient = relaynet.UEClient
	// UEClientConfig parameterizes a UEClient.
	UEClientConfig = relaynet.UEClientConfig
)

// NewServer returns an unstarted presence server.
func NewServer() *Server { return relaynet.NewServer() }

// NewRelayAgent returns an unstarted relay agent.
func NewRelayAgent(cfg RelayAgentConfig) (*RelayAgent, error) {
	return relaynet.NewRelayAgent(cfg)
}

// NewUEClient returns an unstarted UE client.
func NewUEClient(cfg UEClientConfig) (*UEClient, error) {
	return relaynet.NewUEClient(cfg)
}
