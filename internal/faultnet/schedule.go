// Package faultnet injects deterministic, scriptable network faults into
// the real heartbeat stack: any net.Conn, net.Listener or dial function can
// be wrapped so that writes suffer added latency/jitter, bandwidth
// throttling, byte corruption or mid-write connection resets, accepts are
// blackholed, and dials/writes vanish entirely during timed partitions.
//
// Faults are driven by a Schedule: an ordered set of time windows on a
// single timeline, either scripted explicitly or scattered by Generate from
// a seed. The same seed and config always produce the same window timeline,
// so every chaos run is reproducible. Per-write probabilistic decisions
// (which byte to corrupt, whether to reset) come from per-connection RNGs
// derived from the schedule seed; they are deterministic per connection for
// a fixed write sequence, though goroutine interleaving still decides which
// connection writes first.
//
// The layer exists to prove the paper's Section IV-C claim under failure:
// the feedback/cellular-fallback mechanism must lose zero heartbeats when a
// relay dies, a server partitions, or frames corrupt in flight.
package faultnet

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"d2dhb/internal/trace"
)

// Kind labels one fault flavour.
type Kind string

// Fault kinds.
const (
	// KindLatency delays every write by Latency ± Jitter.
	KindLatency Kind = "latency"
	// KindThrottle caps write bandwidth at Rate bytes/s, trickling large
	// writes out in small paced chunks (slow-loris).
	KindThrottle Kind = "throttle"
	// KindCorrupt flips one random bit per write with probability Prob.
	KindCorrupt Kind = "corrupt"
	// KindReset closes the connection mid-write with probability Prob.
	KindReset Kind = "reset"
	// KindBlackhole accepts inbound connections and immediately closes
	// them.
	KindBlackhole Kind = "blackhole"
	// KindPartition silently swallows writes and refuses dials: the
	// sender only learns through missing acknowledgements, exactly the
	// signal the paper's feedback fallback reacts to.
	KindPartition Kind = "partition"
)

// Fault parameterizes one injected failure mode.
type Fault struct {
	Kind    Kind
	Latency time.Duration // KindLatency: base added delay per write
	Jitter  time.Duration // KindLatency: ± jitter around Latency
	Rate    int           // KindThrottle: bytes per second
	Prob    float64       // KindCorrupt / KindReset: per-write probability
}

// Window activates one fault during [From, To) on the schedule timeline.
// To == 0 leaves the window open forever.
type Window struct {
	From, To time.Duration
	Fault    Fault
}

// contains reports whether the window is active at instant t.
func (w Window) contains(t time.Duration) bool {
	return t >= w.From && (w.To == 0 || t < w.To)
}

// Stats counts injected faults.
type Stats struct {
	Delayed      int // writes delayed by a latency window
	Throttled    int // writes trickled by a throttle window
	Corrupted    int // writes with a flipped bit
	Resets       int // injected mid-write connection resets
	DroppedSends int // writes swallowed by a partition
	Blackholed   int // accepts closed by a blackhole
	RefusedDials int // dials refused by a partition
}

// Schedule is one fault timeline shared by any number of wrapped
// connections, listeners and dialers. The clock starts at the first fault
// lookup (or an explicit Start call); windows are relative to that instant.
type Schedule struct {
	seed int64

	mu      sync.Mutex
	windows []Window
	opened  []bool
	tracer  trace.Tracer
	start   time.Time
	stats   Stats
	conns   int64
}

// NewSchedule builds a schedule over an explicit window script. The seed
// drives per-connection probabilistic decisions (corrupt/reset draws).
func NewSchedule(seed int64, windows []Window) *Schedule {
	ws := make([]Window, len(windows))
	copy(ws, windows)
	return &Schedule{seed: seed, windows: ws, opened: make([]bool, len(ws))}
}

// SetTracer attaches an event tracer; fault injections and window openings
// emit trace events. Call before wrapping connections.
func (s *Schedule) SetTracer(tr trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
}

// Start pins t=0 of the fault timeline to now. Without an explicit call the
// first fault lookup starts the clock.
func (s *Schedule) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.start.IsZero() {
		s.start = time.Now()
	}
}

// Seed returns the seed driving the schedule's probabilistic draws.
func (s *Schedule) Seed() int64 { return s.seed }

// Windows returns a copy of the schedule's window script.
func (s *Schedule) Windows() []Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Window, len(s.windows))
	copy(out, s.windows)
	return out
}

// Stats returns a snapshot of the injection counters.
func (s *Schedule) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Active returns the first window of kind k active right now.
func (s *Schedule) Active(k Kind) (Fault, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.start.IsZero() {
		s.start = time.Now()
	}
	now := time.Since(s.start)
	for i, w := range s.windows {
		if w.Fault.Kind != k || !w.contains(now) {
			continue
		}
		if !s.opened[i] {
			s.opened[i] = true
			trace.Emit(s.tracer, trace.Event{
				AtMs: time.Now().UnixMilli(), Device: "faultnet",
				Kind: trace.KindFaultWindow, Reason: string(k), N: i + 1,
			})
		}
		return w.Fault, true
	}
	return Fault{}, false
}

// note counts one injected fault and emits its trace event.
func (s *Schedule) note(bump func(*Stats), device string, k Kind) {
	s.mu.Lock()
	bump(&s.stats)
	tr := s.tracer
	s.mu.Unlock()
	trace.Emit(tr, trace.Event{
		AtMs: time.Now().UnixMilli(), Device: device,
		Kind: trace.KindFault, Reason: string(k),
	})
}

// GenConfig shapes Generate's random fault timeline.
type GenConfig struct {
	// Horizon is the timeline length windows are scattered over. Zero
	// selects 10 s.
	Horizon time.Duration
	// Count is how many windows to scatter. Zero selects 4.
	Count int
	// Kinds are the fault kinds drawn uniformly. Empty selects latency,
	// corrupt, reset and partition.
	Kinds []Kind
	// MinDur / MaxDur bound window lengths. Zero selects Horizon/20 and
	// Horizon/5.
	MinDur, MaxDur time.Duration
}

// Generate derives a reproducible fault timeline: the same seed and config
// always yield the same windows (sorted by opening time).
func Generate(seed int64, cfg GenConfig) []Window {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 10 * time.Second
	}
	if cfg.Count <= 0 {
		cfg.Count = 4
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []Kind{KindLatency, KindCorrupt, KindReset, KindPartition}
	}
	if cfg.MinDur <= 0 {
		cfg.MinDur = cfg.Horizon / 20
	}
	if cfg.MaxDur <= cfg.MinDur {
		cfg.MaxDur = cfg.MinDur + cfg.Horizon/5
	}
	rng := rand.New(rand.NewSource(seed))
	windows := make([]Window, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		k := cfg.Kinds[rng.Intn(len(cfg.Kinds))]
		dur := cfg.MinDur + time.Duration(rng.Int63n(int64(cfg.MaxDur-cfg.MinDur)+1))
		from := time.Duration(rng.Int63n(int64(cfg.Horizon)))
		f := Fault{Kind: k}
		switch k {
		case KindLatency:
			f.Latency = time.Duration(5+rng.Intn(30)) * time.Millisecond
			f.Jitter = f.Latency / 2
		case KindThrottle:
			f.Rate = 256 << rng.Intn(5)
		case KindCorrupt:
			f.Prob = 0.05 + 0.25*rng.Float64()
		case KindReset:
			f.Prob = 0.02 + 0.13*rng.Float64()
		}
		windows = append(windows, Window{From: from, To: from + dur, Fault: f})
	}
	slices.SortFunc(windows, func(a, b Window) int {
		if a.From != b.From {
			return cmp.Compare(a.From, b.From)
		}
		return cmp.Compare(a.Fault.Kind, b.Fault.Kind)
	})
	return windows
}

// ParseSpec builds a schedule from a compact CLI spec: comma-separated
// key=value pairs.
//
//	seed=42             RNG seed for probabilistic draws (default 1)
//	latency=20ms        always-on added write latency
//	jitter=10ms         ± jitter around latency
//	throttle=4096       always-on write bandwidth cap (bytes/s)
//	corrupt=0.01        per-write bit-corruption probability
//	reset=0.005         per-write connection-reset probability
//	partition=2s+1s     partition opening at 2s, lasting 1s (repeatable)
//	blackhole=1s+500ms  accept-blackhole window (repeatable)
//	chaos=4             additionally scatter this many seeded random windows
//	horizon=10s         timeline length for chaos windows
//
// An empty spec returns nil (no fault injection).
func ParseSpec(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var (
		seed            int64 = 1
		latency, jitter time.Duration
		throttle        int
		corrupt, reset  float64
		windows         []Window
		chaosCount      int
		horizon         time.Duration
	)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faultnet: bad spec element %q (want key=value)", part)
		}
		var err error
		switch key {
		case "seed":
			seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			latency, err = time.ParseDuration(val)
		case "jitter":
			jitter, err = time.ParseDuration(val)
		case "throttle":
			throttle, err = strconv.Atoi(val)
		case "corrupt":
			corrupt, err = strconv.ParseFloat(val, 64)
		case "reset":
			reset, err = strconv.ParseFloat(val, 64)
		case "partition", "blackhole":
			var w Window
			w, err = parseWindow(key, val)
			windows = append(windows, w)
		case "chaos":
			chaosCount, err = strconv.Atoi(val)
		case "horizon":
			horizon, err = time.ParseDuration(val)
		default:
			return nil, fmt.Errorf("faultnet: unknown spec key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faultnet: bad %s value %q: %v", key, val, err)
		}
	}
	if latency > 0 || jitter > 0 {
		windows = append(windows, Window{Fault: Fault{Kind: KindLatency, Latency: latency, Jitter: jitter}})
	}
	if throttle > 0 {
		windows = append(windows, Window{Fault: Fault{Kind: KindThrottle, Rate: throttle}})
	}
	if corrupt > 0 {
		windows = append(windows, Window{Fault: Fault{Kind: KindCorrupt, Prob: corrupt}})
	}
	if reset > 0 {
		windows = append(windows, Window{Fault: Fault{Kind: KindReset, Prob: reset}})
	}
	if chaosCount > 0 {
		windows = append(windows, Generate(seed, GenConfig{Horizon: horizon, Count: chaosCount})...)
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("faultnet: spec %q defines no faults", spec)
	}
	return NewSchedule(seed, windows), nil
}

// parseWindow decodes "FROM+DUR" into a window of the given kind.
func parseWindow(kind, val string) (Window, error) {
	fromStr, durStr, ok := strings.Cut(val, "+")
	if !ok {
		return Window{}, fmt.Errorf("want FROM+DUR, e.g. 2s+1s")
	}
	from, err := time.ParseDuration(fromStr)
	if err != nil {
		return Window{}, err
	}
	dur, err := time.ParseDuration(durStr)
	if err != nil {
		return Window{}, err
	}
	if dur <= 0 {
		return Window{}, fmt.Errorf("non-positive duration %v", dur)
	}
	return Window{From: from, To: from + dur, Fault: Fault{Kind: Kind(kind)}}, nil
}
