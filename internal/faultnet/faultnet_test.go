package faultnet

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"d2dhb/internal/trace"
)

// sinkConn is a minimal net.Conn recording everything written to it.
type sinkConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed bool
}

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake:0" }

func (c *sinkConn) Read(b []byte) (int, error) { return 0, net.ErrClosed }
func (c *sinkConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	return c.buf.Write(b)
}
func (c *sinkConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
func (c *sinkConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}
func (c *sinkConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}
func (c *sinkConn) LocalAddr() net.Addr              { return fakeAddr{} }
func (c *sinkConn) RemoteAddr() net.Addr             { return fakeAddr{} }
func (c *sinkConn) SetDeadline(time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(time.Time) error { return nil }

func TestPartitionSwallowsWrites(t *testing.T) {
	var rec trace.Recorder
	s := NewSchedule(1, []Window{{Fault: Fault{Kind: KindPartition}}})
	s.SetTracer(&rec)
	sink := &sinkConn{}
	conn := s.WrapConn(sink)
	n, err := conn.Write([]byte("hello"))
	if n != 5 || err != nil {
		t.Fatalf("partitioned write = (%d, %v), want (5, nil)", n, err)
	}
	if got := sink.bytes(); len(got) != 0 {
		t.Fatalf("bytes leaked through partition: %q", got)
	}
	if st := s.Stats(); st.DroppedSends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(rec.ByKind(trace.KindFault)) != 1 || len(rec.ByKind(trace.KindFaultWindow)) != 1 {
		t.Fatalf("trace events = %v", rec.String())
	}
}

func TestResetKillsConnMidWrite(t *testing.T) {
	s := NewSchedule(1, []Window{{Fault: Fault{Kind: KindReset, Prob: 1}}})
	sink := &sinkConn{}
	conn := s.WrapConn(sink)
	payload := []byte("0123456789")
	n, err := conn.Write(payload)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("n = %d, want half of %d", n, len(payload))
	}
	if !sink.isClosed() {
		t.Fatal("underlying conn not closed by reset")
	}
	if got := sink.bytes(); !bytes.Equal(got, payload[:len(payload)/2]) {
		t.Fatalf("half-write = %q", got)
	}
	if st := s.Stats(); st.Resets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCorruptFlipsOneBitDeterministically(t *testing.T) {
	payload := []byte("heartbeat frame payload")
	run := func(seed int64) []byte {
		s := NewSchedule(seed, []Window{{Fault: Fault{Kind: KindCorrupt, Prob: 1}}})
		sink := &sinkConn{}
		conn := s.WrapConn(sink)
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("write: %v", err)
		}
		return sink.bytes()
	}
	a, b := run(5), run(5)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed corrupted differently:\n%q\n%q", a, b)
	}
	if bytes.Equal(a, payload) {
		t.Fatal("corruption did not alter the payload")
	}
	// Exactly one bit differs.
	diffBits := 0
	for i := range payload {
		x := a[i] ^ payload[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diffBits)
	}
}

func TestLatencyDelaysWrite(t *testing.T) {
	s := NewSchedule(1, []Window{{Fault: Fault{Kind: KindLatency, Latency: 50 * time.Millisecond}}})
	sink := &sinkConn{}
	conn := s.WrapConn(sink)
	start := time.Now()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("write returned after %v, want ≥ ~50ms", elapsed)
	}
	if st := s.Stats(); st.Delayed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestThrottleTricklesWrite(t *testing.T) {
	// 100 B/s → 10-byte chunks every 100 ms; 30 bytes need ≥ 2 sleeps.
	s := NewSchedule(1, []Window{{Fault: Fault{Kind: KindThrottle, Rate: 100}}})
	sink := &sinkConn{}
	conn := s.WrapConn(sink)
	payload := bytes.Repeat([]byte("a"), 30)
	start := time.Now()
	n, err := conn.Write(payload)
	if n != 30 || err != nil {
		t.Fatalf("throttled write = (%d, %v)", n, err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("trickle took %v, want ≥ ~200ms", elapsed)
	}
	if !bytes.Equal(sink.bytes(), payload) {
		t.Fatal("throttled payload mangled")
	}
}

func TestDialRefusedDuringPartition(t *testing.T) {
	s := NewSchedule(1, []Window{{Fault: Fault{Kind: KindPartition}}})
	if _, err := s.Dial("tcp", "127.0.0.1:1"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial err = %v, want ErrPartitioned", err)
	}
	if st := s.Stats(); st.RefusedDials != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestListenerBlackholesAccepts(t *testing.T) {
	s := NewSchedule(1, []Window{{Fault: Fault{Kind: KindBlackhole}}})
	ln, err := s.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		acceptErr <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// The accept side closes immediately: the client sees EOF.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("blackholed connection delivered data")
	}

	_ = ln.Close()
	if err := <-acceptErr; err == nil {
		t.Fatal("accept returned a connection through an always-on blackhole")
	}
	if st := s.Stats(); st.Blackholed < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCleanPassThrough(t *testing.T) {
	// No active windows: bytes flow untouched and nothing is counted.
	s := NewSchedule(1, []Window{
		{From: time.Hour, To: 2 * time.Hour, Fault: Fault{Kind: KindPartition}},
	})
	sink := &sinkConn{}
	conn := s.WrapConn(sink)
	payload := []byte("clean")
	n, err := conn.Write(payload)
	if n != len(payload) || err != nil {
		t.Fatalf("write = (%d, %v)", n, err)
	}
	if !bytes.Equal(sink.bytes(), payload) {
		t.Fatal("payload altered without an active fault")
	}
	if st := (Stats{}); s.Stats() != st {
		t.Fatalf("stats = %+v, want zero", s.Stats())
	}
}
