package faultnet

import (
	"reflect"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Horizon: 8 * time.Second, Count: 6}
	a := Generate(42, cfg)
	b := Generate(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different timelines:\n%v\n%v", a, b)
	}
	if len(a) != 6 {
		t.Fatalf("window count = %d, want 6", len(a))
	}
	c := Generate(43, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical timelines")
	}
	for i, w := range a {
		if w.From < 0 || w.To <= w.From {
			t.Fatalf("window %d malformed: %+v", i, w)
		}
		if i > 0 && a[i-1].From > w.From {
			t.Fatalf("windows not sorted by From: %v", a)
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	ws := Generate(1, GenConfig{})
	if len(ws) != 4 {
		t.Fatalf("default count = %d, want 4", len(ws))
	}
	for _, w := range ws {
		switch w.Fault.Kind {
		case KindLatency:
			if w.Fault.Latency <= 0 {
				t.Fatalf("latency window without latency: %+v", w)
			}
		case KindCorrupt, KindReset:
			if w.Fault.Prob <= 0 || w.Fault.Prob >= 1 {
				t.Fatalf("probability out of range: %+v", w)
			}
		case KindPartition:
		default:
			t.Fatalf("unexpected default kind %q", w.Fault.Kind)
		}
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("seed=42,latency=20ms,jitter=10ms,corrupt=0.01,reset=0.005,partition=2s+1s,blackhole=500ms+250ms,throttle=4096")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	kinds := make(map[Kind]Window)
	for _, w := range s.Windows() {
		kinds[w.Fault.Kind] = w
	}
	if len(kinds) != 6 {
		t.Fatalf("kinds = %v, want 6 distinct", kinds)
	}
	if w := kinds[KindLatency]; w.Fault.Latency != 20*time.Millisecond || w.Fault.Jitter != 10*time.Millisecond || w.To != 0 {
		t.Fatalf("latency window = %+v", w)
	}
	if w := kinds[KindPartition]; w.From != 2*time.Second || w.To != 3*time.Second {
		t.Fatalf("partition window = %+v", w)
	}
	if w := kinds[KindBlackhole]; w.From != 500*time.Millisecond || w.To != 750*time.Millisecond {
		t.Fatalf("blackhole window = %+v", w)
	}
	if w := kinds[KindThrottle]; w.Fault.Rate != 4096 {
		t.Fatalf("throttle window = %+v", w)
	}
}

func TestParseSpecChaos(t *testing.T) {
	s, err := ParseSpec("seed=7,chaos=5,horizon=4s")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := len(s.Windows()); got != 5 {
		t.Fatalf("chaos windows = %d, want 5", got)
	}
	// Same spec, same timeline.
	s2, _ := ParseSpec("seed=7,chaos=5,horizon=4s")
	if !reflect.DeepEqual(s.Windows(), s2.Windows()) {
		t.Fatal("identical chaos specs produced different timelines")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",
		"latency=notaduration",
		"partition=2s", // missing +DUR
		"partition=2s+-1s",
		"seed=42", // defines no faults
		"corrupt",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if s, err := ParseSpec(""); err != nil || s != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", s, err)
	}
}

func TestWindowTiming(t *testing.T) {
	s := NewSchedule(1, []Window{
		{From: 150 * time.Millisecond, To: 450 * time.Millisecond,
			Fault: Fault{Kind: KindPartition}},
	})
	s.Start()
	if _, ok := s.Active(KindPartition); ok {
		t.Fatal("window active before From")
	}
	time.Sleep(250 * time.Millisecond)
	if _, ok := s.Active(KindPartition); !ok {
		t.Fatal("window inactive inside [From, To)")
	}
	time.Sleep(350 * time.Millisecond)
	if _, ok := s.Active(KindPartition); ok {
		t.Fatal("window still active past To")
	}
}

func TestOpenEndedWindow(t *testing.T) {
	s := NewSchedule(1, []Window{{Fault: Fault{Kind: KindCorrupt, Prob: 1}}})
	f, ok := s.Active(KindCorrupt)
	if !ok || f.Prob != 1 {
		t.Fatalf("open-ended window not active: %+v %v", f, ok)
	}
	if _, ok := s.Active(KindReset); ok {
		t.Fatal("unscheduled kind reported active")
	}
}
