package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset marks a connection reset injected by a reset window.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// ErrPartitioned marks a dial refused by an active partition window.
var ErrPartitioned = errors.New("faultnet: partition active")

// DialFunc matches the dial hooks on relaynet configs.
type DialFunc func(network, addr string) (net.Conn, error)

// Conn applies the schedule's active write-side faults to one wrapped
// connection. Reads pass through untouched: partitions, corruption and
// resets are modeled at the sender, where the paper's feedback fallback
// has to detect them.
type Conn struct {
	net.Conn
	s *Schedule

	mu  sync.Mutex
	rng *rand.Rand
}

// WrapConn wraps c so its writes suffer the schedule's active faults. Each
// wrapped connection draws probabilistic decisions from its own RNG derived
// from the schedule seed and the wrap order, so a single-connection write
// sequence is reproducible for a fixed seed.
func (s *Schedule) WrapConn(c net.Conn) net.Conn {
	s.mu.Lock()
	s.conns++
	connSeed := s.seed*1000003 + s.conns
	s.mu.Unlock()
	return &Conn{Conn: c, s: s, rng: rand.New(rand.NewSource(connSeed))}
}

// chance draws one biased coin from the connection's RNG.
func (c *Conn) chance(p float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < p
}

// intn draws one bounded integer from the connection's RNG.
func (c *Conn) intn(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// Write implements net.Conn with the schedule's active faults applied, in
// severity order: partition (swallow), reset (kill), corrupt (flip a bit),
// latency (sleep), throttle (trickle).
func (c *Conn) Write(b []byte) (int, error) {
	device := c.RemoteAddr().String()
	if _, ok := c.s.Active(KindPartition); ok {
		c.s.note(func(st *Stats) { st.DroppedSends++ }, device, KindPartition)
		return len(b), nil // swallowed: the sender only learns via missing acks
	}
	if f, ok := c.s.Active(KindReset); ok && c.chance(f.Prob) {
		half := len(b) / 2
		if half > 0 {
			_, _ = c.Conn.Write(b[:half])
		}
		_ = c.Conn.Close()
		c.s.note(func(st *Stats) { st.Resets++ }, device, KindReset)
		return half, ErrInjectedReset
	}
	buf := b
	if f, ok := c.s.Active(KindCorrupt); ok && len(b) > 0 && c.chance(f.Prob) {
		buf = append([]byte(nil), b...)
		buf[c.intn(len(buf))] ^= 1 << uint(c.intn(8))
		c.s.note(func(st *Stats) { st.Corrupted++ }, device, KindCorrupt)
	}
	if f, ok := c.s.Active(KindLatency); ok {
		d := f.Latency
		if f.Jitter > 0 {
			d += time.Duration(c.intn(int(2*f.Jitter))) - f.Jitter
		}
		if d > 0 {
			time.Sleep(d)
			c.s.note(func(st *Stats) { st.Delayed++ }, device, KindLatency)
		}
	}
	if f, ok := c.s.Active(KindThrottle); ok && f.Rate > 0 {
		c.s.note(func(st *Stats) { st.Throttled++ }, device, KindThrottle)
		return c.trickle(buf, f.Rate)
	}
	n, err := c.Conn.Write(buf)
	if n > len(b) {
		n = len(b)
	}
	return n, err
}

// trickle writes buf in small chunks paced to rate bytes/second — the
// slow-loris path.
func (c *Conn) trickle(buf []byte, rate int) (int, error) {
	chunk := rate / 10
	if chunk < 1 {
		chunk = 1
	}
	chunkDelay := time.Duration(chunk) * time.Second / time.Duration(rate)
	written := 0
	for written < len(buf) {
		end := written + chunk
		if end > len(buf) {
			end = len(buf)
		}
		n, err := c.Conn.Write(buf[written:end])
		written += n
		if err != nil {
			return written, err
		}
		if written < len(buf) {
			time.Sleep(chunkDelay)
		}
	}
	return written, nil
}

// Listener blackholes accepts during blackhole windows and fault-wraps
// every connection it hands out.
type Listener struct {
	net.Listener
	s *Schedule
}

// WrapListener wraps ln so accepted connections carry the schedule's faults
// and blackhole windows close inbound connections on arrival.
func (s *Schedule) WrapListener(ln net.Listener) net.Listener {
	return &Listener{Listener: ln, s: s}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if _, ok := l.s.Active(KindBlackhole); ok {
			l.s.note(func(st *Stats) { st.Blackholed++ }, c.RemoteAddr().String(), KindBlackhole)
			_ = c.Close()
			continue
		}
		return l.s.WrapConn(c), nil
	}
}

// Dial is a fault-injecting replacement for net.Dial: partitions refuse the
// dial outright, and successful dials return fault-wrapped connections.
// It matches the Dial hook signature on relaynet configs.
func (s *Schedule) Dial(network, addr string) (net.Conn, error) {
	if _, ok := s.Active(KindPartition); ok {
		s.note(func(st *Stats) { st.RefusedDials++ }, addr, KindPartition)
		return nil, ErrPartitioned
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return s.WrapConn(c), nil
}

// Listen is a fault-injecting replacement for net.Listen, returning a
// wrapped listener. It matches the Listen hook signature on relaynet
// configs.
func (s *Schedule) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return s.WrapListener(ln), nil
}
