package device

import (
	"errors"
	"fmt"
	"time"

	"d2dhb/internal/cellular"
	"d2dhb/internal/d2d"
	"d2dhb/internal/energy"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/matching"
	"d2dhb/internal/simtime"
	"d2dhb/internal/trace"
)

// UEStats aggregates a UE's observable behaviour.
type UEStats struct {
	// Generated counts heartbeats produced by the app.
	Generated int
	// SentViaD2D counts heartbeats successfully handed to a relay.
	SentViaD2D int
	// D2DSendFailures counts forwarding attempts that failed at the link.
	D2DSendFailures int
	// DirectCellular counts heartbeats sent straight over cellular because
	// no relay was matched (or the link had just failed).
	DirectCellular int
	// RelayBusy counts heartbeats sent directly because the connected
	// relay advertised a closed or full collection window — forwarding
	// would only be rejected and expire waiting for the next period.
	RelayBusy int
	// FallbackResends counts duplicate cellular sends after a feedback
	// timeout.
	FallbackResends int
	// AcksReceived counts feedback acknowledgements.
	AcksReceived int
	// Scans counts D2D discovery operations.
	Scans int
	// ScansSkipped counts heartbeats where discovery was suppressed by
	// the failure backoff.
	ScansSkipped int
	// Matches counts successful relay matches (connections established).
	Matches int
	// MatchFailures counts scans that yielded no usable relay.
	MatchFailures int
	// SendErrors counts cellular sends that failed outright.
	SendErrors int
}

// UEConfig parameterizes a UE device.
type UEConfig struct {
	// ID is the device id.
	ID hbmsg.DeviceID
	// Profile drives the UE's heartbeat traffic.
	Profile hbmsg.AppProfile
	// ExtraProfiles are additional apps running on the same device, each
	// with its own heartbeat loop (real phones run several IM apps at
	// once, the situation Table I describes). All apps share the device's
	// relay link, feedback tracking and fallback path.
	ExtraProfiles []hbmsg.AppProfile
	// Match configures relay selection.
	Match matching.Config
	// FeedbackTimeout is how long the UE waits for a relay
	// acknowledgement before resending over cellular. Zero selects the
	// default: the message expiry plus a small grace period, since the
	// relay may legitimately delay the batch until just before the
	// earliest deadline.
	FeedbackTimeout time.Duration
	// StartOffset delays the first heartbeat; staggering offsets across
	// UEs mimics unsynchronized apps.
	StartOffset time.Duration
	// DisableD2D forces the original-system behaviour (every heartbeat
	// direct over cellular); used for baselines.
	DisableD2D bool
	// Tracer receives structured events when non-nil.
	Tracer trace.Tracer
}

// FeedbackGrace is added to the message expiry for the default feedback
// timeout.
const FeedbackGrace = 5 * time.Second

func (c UEConfig) validate() error {
	if c.ID == "" {
		return errors.New("device: empty ue id")
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	for _, p := range c.ExtraProfiles {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	if err := c.Match.Validate(); err != nil {
		return err
	}
	if c.FeedbackTimeout < 0 {
		return fmt.Errorf("device: negative feedback timeout %v", c.FeedbackTimeout)
	}
	if c.StartOffset < 0 {
		return fmt.Errorf("device: negative start offset %v", c.StartOffset)
	}
	return nil
}

// UE is a smartphone forwarding its heartbeats through nearby relays.
type UE struct {
	cfg   UEConfig
	sched *simtime.Scheduler
	node  *d2d.Node
	modem *cellular.Modem

	seq      uint64
	link     *d2d.Link
	pending  map[uint64]*pendingSend
	hbTimers []*simtime.Timer
	stopped  bool

	// Scan backoff: discovery is itself expensive (Table III) for the UE
	// and for every responding relay, so after a failed match the UE
	// skips scanning for a geometrically growing number of heartbeats.
	backoff   int
	scanSkips int

	stats UEStats
}

// maxScanBackoff caps the discovery backoff at 8 heartbeat periods.
const maxScanBackoff = 8

// pendingSend tracks a forwarded heartbeat awaiting feedback.
type pendingSend struct {
	hb    hbmsg.Heartbeat
	timer *simtime.Timer
}

// NewUE assembles a UE from its D2D node and cellular modem. Start must be
// called to begin the heartbeat loop.
func NewUE(s *simtime.Scheduler, node *d2d.Node, modem *cellular.Modem, cfg UEConfig) (*UE, error) {
	if s == nil || node == nil || modem == nil {
		return nil, errors.New("device: nil scheduler, node or modem")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	u := &UE{
		cfg:     cfg,
		sched:   s,
		node:    node,
		modem:   modem,
		pending: make(map[uint64]*pendingSend),
	}
	node.OnAck(u.onAck)
	return u, nil
}

// ID returns the device id.
func (u *UE) ID() hbmsg.DeviceID { return u.cfg.ID }

// Stats returns a snapshot of the UE's counters.
func (u *UE) Stats() UEStats { return u.stats }

// Connected reports whether the UE currently holds an open relay link.
func (u *UE) Connected() bool { return u.link != nil && u.link.Open() }

// Start schedules the first heartbeat of every app profile. Extra profiles
// are staggered a few seconds after the primary so their first heartbeats
// do not collide.
func (u *UE) Start() error {
	profiles := append([]hbmsg.AppProfile{u.cfg.Profile}, u.cfg.ExtraProfiles...)
	u.hbTimers = make([]*simtime.Timer, len(profiles))
	for i, p := range profiles {
		i, p := i, p
		offset := u.cfg.StartOffset + time.Duration(i)*3*time.Second
		t, err := u.sched.After(offset, func() { u.heartbeat(i, p) })
		if err != nil {
			return fmt.Errorf("device: start ue %s: %w", u.cfg.ID, err)
		}
		u.hbTimers[i] = t
	}
	return nil
}

// Stop halts the heartbeat loops and cancels pending feedback timers. The
// handles are dropped as they are cancelled: the scheduler recycles stopped
// timers, so keeping them would alias events armed by other devices.
func (u *UE) Stop() {
	u.stopped = true
	for i, t := range u.hbTimers {
		u.sched.Stop(t)
		u.hbTimers[i] = nil
	}
	for seq, p := range u.pending {
		u.sched.Stop(p.timer)
		delete(u.pending, seq)
	}
	if u.link != nil {
		u.link.Close()
		u.link = nil
	}
}

// feedbackTimeout returns the configured or default ack wait for a
// heartbeat with the given expiry.
func (u *UE) feedbackTimeout(expiry time.Duration) time.Duration {
	if u.cfg.FeedbackTimeout > 0 {
		return u.cfg.FeedbackTimeout
	}
	return expiry + FeedbackGrace
}

// heartbeat generates and dispatches one heartbeat for profile slot i,
// then schedules the next.
func (u *UE) heartbeat(i int, profile hbmsg.AppProfile) {
	if u.stopped {
		return
	}
	now := u.sched.Now()
	u.seq++
	hb := profile.Heartbeat(u.cfg.ID, u.seq, now)
	u.stats.Generated++
	u.emit(trace.Event{Kind: trace.KindGenerated, App: hb.App, Seq: hb.Seq})

	var err error
	u.hbTimers[i], err = u.sched.After(profile.Period, func() { u.heartbeat(i, profile) })
	if err != nil {
		u.stats.SendErrors++
	}

	if u.cfg.DisableD2D {
		u.sendDirect(hb)
		return
	}
	// Proactive release: once mobility has carried the UE well beyond the
	// prejudgment distance, the link is deep in the loss zone and every
	// further transfer risks failure — the same reasoning that rejects far
	// relays at match time (Section III-C) applies to keeping them. The
	// 25 % hysteresis margin keeps boundary cases (matched on a noisy
	// RSSI estimate just inside the bound) from flapping.
	if u.Connected() && u.cfg.Match.Prejudgment &&
		u.link.Distance() > u.cfg.Match.MaxDistance*1.25 {
		u.link.Close()
		u.link = nil
	}
	if !u.Connected() {
		if u.scanSkips > 0 {
			u.scanSkips--
			u.stats.ScansSkipped++
		} else {
			u.tryMatch()
		}
	}
	if !u.Connected() {
		u.sendDirect(hb)
		return
	}
	// The group owner's beacons advertise its remaining collection
	// capacity; a closed or full window means the forward would be
	// rejected and the heartbeat would expire waiting for feedback.
	if free, _ := u.link.Peer(u.node).Advertised(); free <= 0 {
		u.stats.RelayBusy++
		u.emit(trace.Event{Kind: trace.KindRelayBusy, App: hb.App, Seq: hb.Seq,
			Peer: string(u.link.Peer(u.node).ID())})
		// Hand over to another relay if the scan budget allows — Select
		// skips zero-capacity relays, so a successful match is a fresh
		// collector. The old link stays open so feedback for messages it
		// already collected still arrives.
		switched := false
		if u.scanSkips == 0 {
			prev := u.link
			u.tryMatch()
			if u.Connected() && u.link != prev {
				if free, _ := u.link.Peer(u.node).Advertised(); free > 0 {
					switched = true
				}
			}
		}
		if !switched {
			u.sendDirect(hb)
			return
		}
	}
	// Arm the feedback timer before transmitting: when this very send
	// fills the batch, the relay flushes and acknowledges synchronously,
	// and the ack must find the pending entry.
	u.armFeedback(hb)
	if err := u.link.Send(u.node, hb); err != nil {
		u.cancelFeedback(hb.Seq)
		u.stats.D2DSendFailures++
		u.emit(trace.Event{Kind: trace.KindD2DFail, App: hb.App, Seq: hb.Seq, Reason: err.Error()})
		if errors.Is(err, d2d.ErrOutOfRange) || errors.Is(err, d2d.ErrLinkClosed) {
			u.link = nil
		}
		u.sendDirect(hb)
		return
	}
	u.stats.SentViaD2D++
	u.emit(trace.Event{Kind: trace.KindD2DSend, App: hb.App, Seq: hb.Seq})
}

// emit stamps and forwards one trace event.
func (u *UE) emit(ev trace.Event) {
	ev.AtMs = trace.At(u.sched.Now())
	ev.Device = string(u.cfg.ID)
	trace.Emit(u.cfg.Tracer, ev)
}

// tryMatch scans for relays and connects to the best candidate, doubling
// the scan backoff on failure.
func (u *UE) tryMatch() {
	u.stats.Scans++
	peers := u.node.Scan()
	sel, ok := matching.Select(peers, u.cfg.Match)
	if !ok {
		u.matchFailed()
		return
	}
	link, err := u.node.Connect(sel.ID)
	if err != nil {
		u.matchFailed()
		return
	}
	u.stats.Matches++
	u.link = link
	u.backoff = 0
	u.emit(trace.Event{Kind: trace.KindMatch, Peer: string(sel.ID)})
}

func (u *UE) matchFailed() {
	u.stats.MatchFailures++
	u.emit(trace.Event{Kind: trace.KindMatchFail})
	u.backoff *= 2
	if u.backoff == 0 {
		u.backoff = 1
	}
	if u.backoff > maxScanBackoff {
		u.backoff = maxScanBackoff
	}
	u.scanSkips = u.backoff
}

// sendDirect transmits a heartbeat straight over cellular (the original
// system's path).
func (u *UE) sendDirect(hb hbmsg.Heartbeat) {
	if err := u.modem.Send([]hbmsg.Heartbeat{hb}, energy.PhaseCellular); err != nil {
		u.stats.SendErrors++
		return
	}
	u.stats.DirectCellular++
	u.emit(trace.Event{Kind: trace.KindDirectSend, App: hb.App, Seq: hb.Seq})
}

// armFeedback starts the ack timer for a forwarded heartbeat.
func (u *UE) armFeedback(hb hbmsg.Heartbeat) {
	seq := hb.Seq
	t, err := u.sched.After(u.feedbackTimeout(hb.Expiry), func() { u.onFeedbackTimeout(seq) })
	if err != nil {
		u.stats.SendErrors++
		return
	}
	u.pending[seq] = &pendingSend{hb: hb, timer: t}
}

// cancelFeedback drops a pending entry after a failed send.
func (u *UE) cancelFeedback(seq uint64) {
	p, ok := u.pending[seq]
	if !ok {
		return
	}
	u.sched.Stop(p.timer)
	delete(u.pending, seq)
}

// onFeedbackTimeout fires when a forwarded heartbeat was never
// acknowledged: the UE "will send the heartbeat messages via cellular
// network" itself (Section III-A), paying the duplicate-transmission
// penalty the paper lists under negative impacts.
func (u *UE) onFeedbackTimeout(seq uint64) {
	p, ok := u.pending[seq]
	if !ok || u.stopped {
		return
	}
	delete(u.pending, seq)
	u.stats.FallbackResends++
	u.emit(trace.Event{Kind: trace.KindFallback, App: p.hb.App, Seq: seq})
	if err := u.modem.Send([]hbmsg.Heartbeat{p.hb}, energy.PhaseFallback); err != nil {
		u.stats.SendErrors++
	}
	// The relay evidently failed us; drop the link so the next heartbeat
	// rematches.
	if u.link != nil {
		u.link.Close()
		u.link = nil
	}
}

// onAck handles feedback acknowledgements from the relay.
func (u *UE) onAck(refs []d2d.AckRef, _ *d2d.Link) {
	for _, ref := range refs {
		if ref.Src != u.cfg.ID {
			continue
		}
		p, ok := u.pending[ref.Seq]
		if !ok {
			continue
		}
		u.sched.Stop(p.timer)
		delete(u.pending, ref.Seq)
		u.stats.AcksReceived++
		u.emit(trace.Event{Kind: trace.KindAck, App: p.hb.App, Seq: ref.Seq})
	}
}
