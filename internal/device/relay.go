// Package device implements the two framework roles running on a
// smartphone: the Relay, which collects heartbeats from connected UEs and
// transmits them aggregated under the message scheduling algorithm, and the
// UE, which forwards its heartbeats over D2D with relay matching, feedback
// tracking and cellular fallback.
package device

import (
	"errors"
	"fmt"
	"time"

	"d2dhb/internal/cellular"
	"d2dhb/internal/d2d"
	"d2dhb/internal/energy"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/sched"
	"d2dhb/internal/simtime"
	"d2dhb/internal/trace"
)

// RelayStats aggregates a relay's observable behaviour.
type RelayStats struct {
	// OwnHeartbeats counts the relay's own generated heartbeats.
	OwnHeartbeats int
	// Collected counts forwarded heartbeats accepted into a batch.
	Collected int
	// RejectedClosed counts heartbeats refused because the collection
	// window had closed for the period.
	RejectedClosed int
	// RejectedExpired counts heartbeats refused because they were already
	// past their deadline on arrival.
	RejectedExpired int
	// Flushes counts aggregated cellular transmissions.
	Flushes int
	// FlushesByCapacity / FlushesByDeadline / FlushesByPeriodEnd break
	// Flushes down by Algorithm 1's trigger (only populated when the
	// policy is the Nagle scheduler).
	FlushesByCapacity  int
	FlushesByDeadline  int
	FlushesByPeriodEnd int
	// ForwardedSent counts forwarded (non-own) heartbeats actually
	// transmitted to the base station.
	ForwardedSent int
	// AcksSent counts feedback acknowledgements delivered to UEs.
	AcksSent int
	// AckFailures counts feedback sends that failed (range/loss).
	AckFailures int
	// Credits is the incentive balance: one credit per forwarded heartbeat
	// delivered, mirroring the Karma-Go-style micro-payment scheme
	// (Section III-A).
	Credits int
	// SendErrors counts cellular transmissions that failed outright.
	SendErrors int
}

// RelayConfig parameterizes a relay device.
type RelayConfig struct {
	// ID is the device id.
	ID hbmsg.DeviceID
	// Profile drives the relay's own heartbeat traffic; its period is the
	// scheduling window T.
	Profile hbmsg.AppProfile
	// Capacity is M, the maximum number of collected heartbeats per
	// period.
	Capacity int
	// Policy is the scheduling policy. Nil selects Algorithm 1 (Nagle)
	// with Capacity and the profile period.
	Policy sched.Policy
	// StartOffset delays the first period start.
	StartOffset time.Duration
	// Tracer receives structured events when non-nil.
	Tracer trace.Tracer
}

func (c RelayConfig) validate() error {
	if c.ID == "" {
		return errors.New("device: empty relay id")
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("device: relay capacity must be positive, got %d", c.Capacity)
	}
	if c.StartOffset < 0 {
		return fmt.Errorf("device: negative start offset %v", c.StartOffset)
	}
	return nil
}

// ackKey identifies a collected heartbeat for feedback routing.
type ackKey struct {
	src hbmsg.DeviceID
	seq uint64
}

// Relay is a smartphone volunteering as a heartbeat collector.
type Relay struct {
	cfg    RelayConfig
	sched  *simtime.Scheduler
	node   *d2d.Node
	modem  *cellular.Modem
	policy sched.Policy

	seq         uint64
	ownHB       hbmsg.Heartbeat
	sources     map[ackKey]*d2d.Link
	flushTimer  *simtime.Timer
	periodTimer *simtime.Timer
	stopped     bool

	stats RelayStats
}

// NewRelay assembles a relay from its D2D node and cellular modem. Start
// must be called to begin operating.
func NewRelay(s *simtime.Scheduler, node *d2d.Node, modem *cellular.Modem, cfg RelayConfig) (*Relay, error) {
	if s == nil || node == nil || modem == nil {
		return nil, errors.New("device: nil scheduler, node or modem")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	policy := cfg.Policy
	if policy == nil {
		var err error
		policy, err = sched.NewNagle(cfg.Capacity, cfg.Profile.Period)
		if err != nil {
			return nil, err
		}
	}
	r := &Relay{
		cfg:     cfg,
		sched:   s,
		node:    node,
		modem:   modem,
		policy:  policy,
		sources: make(map[ackKey]*d2d.Link),
	}
	node.OnReceive(r.onReceive)
	return r, nil
}

// ID returns the device id.
func (r *Relay) ID() hbmsg.DeviceID { return r.cfg.ID }

// Stats returns a snapshot of the relay's counters.
func (r *Relay) Stats() RelayStats { return r.stats }

// Policy exposes the active scheduling policy.
func (r *Relay) Policy() sched.Policy { return r.policy }

// Start schedules the first heartbeat period.
func (r *Relay) Start() error {
	t, err := r.sched.After(r.cfg.StartOffset, r.startPeriod)
	if err != nil {
		return fmt.Errorf("device: start relay %s: %w", r.cfg.ID, err)
	}
	r.periodTimer = t
	return nil
}

// Stop halts the relay immediately: pending collected heartbeats are lost
// and no feedback is sent — the failure the UE-side fallback guards against
// ("the relay has run out of its battery or lost connection", Section
// III-A).
func (r *Relay) Stop() {
	r.stopped = true
	r.emit(trace.Event{Kind: trace.KindStop})
	r.sched.Stop(r.flushTimer)
	r.flushTimer = nil
	r.sched.Stop(r.periodTimer)
	r.periodTimer = nil
	r.node.SetAccepting(false)
	for _, l := range r.node.Links() {
		l.Close()
	}
}

// startPeriod opens a new collection window, generates the relay's own
// heartbeat (to be delayed and sent with the batch), and arms the flush
// timer at the scheduling deadline.
func (r *Relay) startPeriod() {
	if r.stopped {
		return
	}
	// Drain the previous window first: when the period timer and the flush
	// timer land on the same instant, the period timer fires first and
	// must not discard the pending batch.
	r.flush()
	now := r.sched.Now()
	r.seq++
	r.ownHB = r.cfg.Profile.Heartbeat(r.cfg.ID, r.seq, now)
	r.stats.OwnHeartbeats++
	r.policy.StartPeriod(now)
	r.advertise()

	var err error
	r.periodTimer, err = r.sched.After(r.cfg.Profile.Period, r.startPeriod)
	if err != nil {
		r.stats.SendErrors++
	}
	r.rearmFlush()
}

// advertise publishes the relay's remaining capacity and group-owner
// intent, which decays proportionally with load (Section IV-C).
func (r *Relay) advertise() {
	free := 0
	if r.policy.Accepting() {
		free = r.cfg.Capacity - r.policy.Pending()
	}
	r.node.SetAccepting(!r.stopped)
	r.node.Advertise(free, d2d.IntentForLoad(r.cfg.Capacity-free, r.cfg.Capacity))
}

// onReceive handles one forwarded heartbeat from a UE.
func (r *Relay) onReceive(hb hbmsg.Heartbeat, link *d2d.Link) {
	if r.stopped {
		return
	}
	now := r.sched.Now()
	flushNow, err := r.policy.Collect(hb, now)
	switch {
	case errors.Is(err, sched.ErrClosed):
		r.stats.RejectedClosed++
		r.emit(trace.Event{Kind: trace.KindReject, App: hb.App, Seq: hb.Seq,
			Peer: string(hb.Src), Reason: "closed"})
		return
	case errors.Is(err, sched.ErrExpired):
		r.stats.RejectedExpired++
		r.emit(trace.Event{Kind: trace.KindReject, App: hb.App, Seq: hb.Seq,
			Peer: string(hb.Src), Reason: "expired"})
		return
	case err != nil:
		r.stats.SendErrors++
		return
	}
	r.stats.Collected++
	r.emit(trace.Event{Kind: trace.KindCollect, App: hb.App, Seq: hb.Seq, Peer: string(hb.Src)})
	r.sources[ackKey{src: hb.Src, seq: hb.Seq}] = link
	r.advertise()
	if flushNow {
		r.flush()
		return
	}
	r.rearmFlush()
}

// rearmFlush (re)schedules the flush at the policy's current deadline.
func (r *Relay) rearmFlush() {
	r.sched.Stop(r.flushTimer)
	r.flushTimer = nil
	at, ok := r.policy.Deadline()
	if !ok {
		return
	}
	t, err := r.sched.At(at, r.flush)
	if err != nil {
		// Deadline already passed (clock raced the arm): flush now.
		r.flush()
		return
	}
	r.flushTimer = t
}

// flush transmits the batch — collected heartbeats plus the relay's own —
// in a single cellular connection, then acknowledges each UE.
func (r *Relay) flush() {
	if r.stopped {
		return
	}
	// The handle must be dropped as soon as it is cancelled (or has fired,
	// when flush runs as the timer's own callback): the scheduler recycles
	// dead timers, so a retained handle would alias the next event armed.
	r.sched.Stop(r.flushTimer)
	r.flushTimer = nil
	now := r.sched.Now()
	batch := r.policy.Flush(now)
	full := make([]hbmsg.Heartbeat, 0, len(batch)+1)
	full = append(full, batch...)
	if r.ownHB.Src != "" {
		full = append(full, r.ownHB)
		r.ownHB = hbmsg.Heartbeat{}
	}
	if len(full) == 0 {
		return
	}
	if err := r.modem.Send(full, energy.PhaseCellular); err != nil {
		r.stats.SendErrors++
		return
	}
	r.stats.Flushes++
	reason := ""
	if nagle, ok := r.policy.(*sched.Nagle); ok {
		reason = nagle.LastFlushReason().String()
	}
	r.emit(trace.Event{Kind: trace.KindFlush, N: len(full), Reason: reason})
	if nagle, ok := r.policy.(*sched.Nagle); ok {
		switch nagle.LastFlushReason() {
		case sched.ReasonCapacity:
			r.stats.FlushesByCapacity++
		case sched.ReasonDeadline:
			r.stats.FlushesByDeadline++
		default:
			r.stats.FlushesByPeriodEnd++
		}
	}
	r.stats.ForwardedSent += len(batch)
	r.stats.Credits += len(batch)
	r.ackBatch(batch)
	r.advertise()
}

// emit stamps and forwards one trace event.
func (r *Relay) emit(ev trace.Event) {
	ev.AtMs = trace.At(r.sched.Now())
	ev.Device = string(r.cfg.ID)
	trace.Emit(r.cfg.Tracer, ev)
}

// ackBatch notifies each UE whose heartbeats were delivered. Acks are sent
// in batch order so the simulation's random stream stays deterministic.
func (r *Relay) ackBatch(batch []hbmsg.Heartbeat) {
	for _, hb := range batch {
		key := ackKey{src: hb.Src, seq: hb.Seq}
		link, ok := r.sources[key]
		delete(r.sources, key)
		if !ok || link == nil {
			continue
		}
		if err := link.SendAck(r.node, []d2d.AckRef{{Src: hb.Src, Seq: hb.Seq}}); err != nil {
			r.stats.AckFailures++
			continue
		}
		r.stats.AcksSent++
	}
}
