package device

import (
	"testing"
	"time"

	"d2dhb/internal/cellular"
	"d2dhb/internal/d2d"
	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/matching"
	"d2dhb/internal/radio"
	"d2dhb/internal/rrc"
	"d2dhb/internal/sched"
	"d2dhb/internal/simtime"
)

// rig is a miniature end-to-end wiring of the substrates for device tests.
type rig struct {
	sched  *simtime.Scheduler
	medium *d2d.Medium
	bs     *cellular.BaseStation
	model  energy.Model
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	s := simtime.NewScheduler(seed)
	model := energy.DefaultModel()
	medium, err := d2d.NewMedium(s, d2d.Config{Profile: radio.WiFiDirectProfile(), Model: model})
	if err != nil {
		t.Fatalf("NewMedium: %v", err)
	}
	bs, err := cellular.NewBaseStation(s)
	if err != nil {
		t.Fatalf("NewBaseStation: %v", err)
	}
	return &rig{sched: s, medium: medium, bs: bs, model: model}
}

func (r *rig) addRelay(t *testing.T, id hbmsg.DeviceID, mob geo.Mobility, cfg RelayConfig) (*Relay, *energy.Ledger) {
	t.Helper()
	led := energy.NewLedger()
	node, err := r.medium.Join(id, d2d.RoleRelay, mob, led)
	if err != nil {
		t.Fatalf("Join relay: %v", err)
	}
	modem, err := r.bs.Attach(id, r.model, rrc.DefaultConfig(), led)
	if err != nil {
		t.Fatalf("Attach relay: %v", err)
	}
	cfg.ID = id
	relay, err := NewRelay(r.sched, node, modem, cfg)
	if err != nil {
		t.Fatalf("NewRelay: %v", err)
	}
	if err := relay.Start(); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	return relay, led
}

func (r *rig) addUE(t *testing.T, id hbmsg.DeviceID, mob geo.Mobility, cfg UEConfig) (*UE, *energy.Ledger) {
	t.Helper()
	led := energy.NewLedger()
	node, err := r.medium.Join(id, d2d.RoleUE, mob, led)
	if err != nil {
		t.Fatalf("Join ue: %v", err)
	}
	modem, err := r.bs.Attach(id, r.model, rrc.DefaultConfig(), led)
	if err != nil {
		t.Fatalf("Attach ue: %v", err)
	}
	cfg.ID = id
	if cfg.Match.MaxDistance == 0 {
		cfg.Match = matching.DefaultConfig()
	}
	ue, err := NewUE(r.sched, node, modem, cfg)
	if err != nil {
		t.Fatalf("NewUE: %v", err)
	}
	if err := ue.Start(); err != nil {
		t.Fatalf("ue Start: %v", err)
	}
	return ue, led
}

func std() hbmsg.AppProfile { return hbmsg.StandardHeartbeat() }

func TestRelayConfigValidation(t *testing.T) {
	r := newRig(t, 1)
	led := energy.NewLedger()
	node, err := r.medium.Join("x", d2d.RoleRelay, geo.Static{}, led)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	modem, err := r.bs.Attach("x", r.model, rrc.DefaultConfig(), led)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := NewRelay(nil, node, modem, RelayConfig{ID: "x", Profile: std(), Capacity: 5}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewRelay(r.sched, node, modem, RelayConfig{Profile: std(), Capacity: 5}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := NewRelay(r.sched, node, modem, RelayConfig{ID: "x", Profile: std(), Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewRelay(r.sched, node, modem, RelayConfig{ID: "x", Profile: std(), Capacity: 5, StartOffset: -1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestUEConfigValidation(t *testing.T) {
	r := newRig(t, 1)
	led := energy.NewLedger()
	node, err := r.medium.Join("x", d2d.RoleUE, geo.Static{}, led)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	modem, err := r.bs.Attach("x", r.model, rrc.DefaultConfig(), led)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	good := UEConfig{ID: "x", Profile: std(), Match: matching.DefaultConfig()}
	if _, err := NewUE(r.sched, node, nil, good); err == nil {
		t.Fatal("nil modem accepted")
	}
	bad := good
	bad.ID = ""
	if _, err := NewUE(r.sched, node, modem, bad); err == nil {
		t.Fatal("empty id accepted")
	}
	bad = good
	bad.FeedbackTimeout = -time.Second
	if _, err := NewUE(r.sched, node, modem, bad); err == nil {
		t.Fatal("negative feedback timeout accepted")
	}
	bad = good
	bad.Match.MaxDistance = -1
	if _, err := NewUE(r.sched, node, modem, bad); err == nil {
		t.Fatal("invalid match config accepted")
	}
}

func TestSingleUESingleRelayHappyPath(t *testing.T) {
	// The paper's core experiment: one relay, one UE 1 m apart. The UE
	// forwards every heartbeat over D2D, the relay aggregates it with its
	// own heartbeat into one cellular connection per period, and the UE
	// receives feedback for every message.
	r := newRig(t, 42)
	relay, _ := r.addRelay(t, "relay", geo.Static{P: geo.Point{X: 0}}, RelayConfig{
		Profile: std(), Capacity: 8,
	})
	ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{
		Profile: std(), StartOffset: 10 * time.Second,
	})

	horizon := 8 * std().Period // 8 relay periods
	if err := r.sched.RunUntil(horizon); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}

	us, rs := ue.Stats(), relay.Stats()
	if us.Generated < 7 {
		t.Fatalf("UE generated %d heartbeats, want >= 7", us.Generated)
	}
	if us.SentViaD2D != us.Generated {
		t.Fatalf("sent via D2D %d of %d generated", us.SentViaD2D, us.Generated)
	}
	if us.DirectCellular != 0 || us.FallbackResends != 0 {
		t.Fatalf("unexpected cellular sends: direct=%d fallback=%d", us.DirectCellular, us.FallbackResends)
	}
	// The last forwarded message may still be pending at the horizon.
	if us.AcksReceived < us.SentViaD2D-1 {
		t.Fatalf("acks %d, want >= %d", us.AcksReceived, us.SentViaD2D-1)
	}
	if rs.Collected < us.SentViaD2D-1 {
		t.Fatalf("relay collected %d, want >= %d", rs.Collected, us.SentViaD2D-1)
	}
	if rs.Credits != rs.ForwardedSent {
		t.Fatalf("credits %d != forwarded %d", rs.Credits, rs.ForwardedSent)
	}

	// Signaling: the UE's modem must have zero transmissions; the relay
	// carries everything.
	ueModem, _ := r.bs.Modem("ue")
	if got := ueModem.Counters().Transmissions; got != 0 {
		t.Fatalf("UE cellular transmissions = %d, want 0", got)
	}
	relayModem, _ := r.bs.Modem("relay")
	if got := relayModem.Counters().Transmissions; got != rs.Flushes {
		t.Fatalf("relay transmissions %d != flushes %d", got, rs.Flushes)
	}
	// One aggregated transmission per period.
	if rs.Flushes > 8 {
		t.Fatalf("flushes = %d, want <= 8 (one per period)", rs.Flushes)
	}

	// Deliveries: everything flushed must be on time.
	total, late := r.bs.Deliveries()
	if total == 0 {
		t.Fatal("no deliveries")
	}
	if late != 0 {
		t.Fatalf("late deliveries = %d, want 0", late)
	}
}

func TestRelayCapacityTriggersEarlyFlush(t *testing.T) {
	r := newRig(t, 7)
	relay, _ := r.addRelay(t, "relay", geo.Static{}, RelayConfig{
		Profile: std(), Capacity: 2,
	})
	// Three UEs forward within one relay period; capacity 2 flushes early.
	// The third UE sees the relay advertising zero free capacity and sends
	// directly over cellular instead of connecting.
	ues := make([]*UE, 0, 3)
	for i, off := range []time.Duration{5 * time.Second, 10 * time.Second, 15 * time.Second} {
		id := hbmsg.DeviceID(rune('a' + i))
		ue, _ := r.addUE(t, id, geo.Static{P: geo.Point{X: float64(i) + 1}}, UEConfig{
			Profile: std(), StartOffset: off,
		})
		ues = append(ues, ue)
	}
	if err := r.sched.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	rs := relay.Stats()
	if rs.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (capacity flush)", rs.Flushes)
	}
	if rs.Collected != 2 {
		t.Fatalf("collected = %d, want 2", rs.Collected)
	}
	if got := relay.Policy().(*sched.Nagle).LastFlushReason(); got != sched.ReasonCapacity {
		t.Fatalf("flush reason = %v, want capacity", got)
	}
	third := ues[2].Stats()
	if third.Matches != 0 || third.DirectCellular != 1 {
		t.Fatalf("third UE stats = %+v, want no match and 1 direct send", third)
	}
}

func TestConnectedUEGoesDirectWhenWindowClosed(t *testing.T) {
	// A UE that is already connected when the window closes sees the
	// relay advertising zero capacity and sends directly over cellular —
	// on time, with no wasted D2D transfer or late fallback.
	r := newRig(t, 8)
	fast := std()
	fast.Period = 100 * time.Second // UE beats faster than the relay window
	relay, _ := r.addRelay(t, "relay", geo.Static{}, RelayConfig{
		Profile: std(), Capacity: 1,
	})
	ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{
		Profile: fast, StartOffset: 5 * time.Second,
	})
	if err := r.sched.RunUntil(260 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	rs, us := relay.Stats(), ue.Stats()
	if rs.Collected != 1 {
		t.Fatalf("collected = %d, want 1 (capacity 1)", rs.Collected)
	}
	// Heartbeats at 105 s and 205 s hit the closed window and go direct.
	if us.RelayBusy != 2 {
		t.Fatalf("relay-busy sends = %d, want 2", us.RelayBusy)
	}
	if us.DirectCellular != 2 {
		t.Fatalf("direct sends = %d, want 2", us.DirectCellular)
	}
	if us.FallbackResends != 0 {
		t.Fatalf("fallbacks = %d, want 0 (busy relay detected up front)", us.FallbackResends)
	}
	total, late := r.bs.Deliveries()
	if late != 0 {
		t.Fatalf("late = %d of %d, want 0", late, total)
	}
}

func TestRelayFailureTriggersUEFallback(t *testing.T) {
	// Section III-A: if the relay dies before transmitting, the UE gets no
	// feedback and resends over cellular.
	r := newRig(t, 9)
	relay, _ := r.addRelay(t, "relay", geo.Static{}, RelayConfig{
		Profile: std(), Capacity: 8,
	})
	ue, ueLed := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{
		Profile: std(), StartOffset: 10 * time.Second,
	})

	// Let the first heartbeat be forwarded, then kill the relay before its
	// flush (flush would happen at 270 s).
	if _, err := r.sched.At(20*time.Second, relay.Stop); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := r.sched.RunUntil(310 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}

	us := ue.Stats()
	if us.SentViaD2D != 1 {
		t.Fatalf("sent via D2D = %d, want 1", us.SentViaD2D)
	}
	if us.FallbackResends != 1 {
		t.Fatalf("fallback resends = %d, want 1", us.FallbackResends)
	}
	if us.AcksReceived != 0 {
		t.Fatalf("acks = %d, want 0", us.AcksReceived)
	}
	if ueLed.Phase(energy.PhaseFallback) == 0 {
		t.Fatal("fallback energy not charged")
	}
	// The resent heartbeat reaches the network, albeit late.
	total, late := r.bs.Deliveries()
	if total == 0 || late == 0 {
		t.Fatalf("deliveries = %d (%d late), want the late fallback delivery", total, late)
	}
}

func TestUEOutOfRangeSendsDirect(t *testing.T) {
	r := newRig(t, 3)
	r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 8})
	ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 500}}, UEConfig{
		Profile: std(), StartOffset: 5 * time.Second,
	})
	if err := r.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if us.DirectCellular != 1 {
		t.Fatalf("direct sends = %d, want 1", us.DirectCellular)
	}
	if us.MatchFailures != 1 {
		t.Fatalf("match failures = %d, want 1", us.MatchFailures)
	}
	ueModem, _ := r.bs.Modem("ue")
	if ueModem.Counters().Transmissions != 1 {
		t.Fatal("UE modem did not transmit")
	}
}

func TestUEPrejudgmentRejectsFarRelay(t *testing.T) {
	// A relay inside radio range but beyond the 15 m prejudgment distance
	// must be rejected (Fig. 12: D2D beyond ~15 m wastes energy).
	r := newRig(t, 3)
	r.addRelay(t, "relay", geo.Static{P: geo.Point{X: 25}}, RelayConfig{Profile: std(), Capacity: 8})
	ue, _ := r.addUE(t, "ue", geo.Static{}, UEConfig{
		Profile: std(), StartOffset: 5 * time.Second,
	})
	if err := r.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if us.Matches != 0 {
		t.Fatalf("matches = %d, want 0 (prejudgment)", us.Matches)
	}
	if us.DirectCellular != 1 {
		t.Fatalf("direct sends = %d, want 1", us.DirectCellular)
	}
}

func TestDisableD2DIsOriginalSystem(t *testing.T) {
	r := newRig(t, 5)
	r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 8})
	ue, led := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{
		Profile: std(), StartOffset: 5 * time.Second, DisableD2D: true,
	})
	if err := r.sched.RunUntil(std().Period * 3); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if us.SentViaD2D != 0 || us.Scans != 0 {
		t.Fatalf("D2D activity in original system: %+v", us)
	}
	if us.DirectCellular != us.Generated {
		t.Fatalf("direct %d != generated %d", us.DirectCellular, us.Generated)
	}
	if led.Phase(energy.PhaseDiscovery) != 0 || led.Phase(energy.PhaseD2DSend) != 0 {
		t.Fatal("D2D energy charged in original system")
	}
}

func TestMobileUELosesLinkAndFallsBack(t *testing.T) {
	// The UE walks out of D2D range mid-run; subsequent forwards fail at
	// the link and go direct over cellular.
	r := newRig(t, 11)
	r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 8})
	led := energy.NewLedger()
	mob := geo.Line{From: geo.Point{X: 1}, To: geo.Point{X: 400}, Speed: 2, Start: 20 * time.Second}
	node, err := r.medium.Join("ue", d2d.RoleUE, mob, led)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	modem, err := r.bs.Attach("ue", r.model, rrc.DefaultConfig(), led)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	ue, err := NewUE(r.sched, node, modem, UEConfig{
		ID: "ue", Profile: std(), Match: matching.DefaultConfig(), StartOffset: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewUE: %v", err)
	}
	if err := ue.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.sched.RunUntil(std().Period * 4); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if us.SentViaD2D < 1 {
		t.Fatalf("first heartbeat not forwarded: %+v", us)
	}
	if us.DirectCellular+us.D2DSendFailures == 0 {
		t.Fatalf("no fallback after walking out of range: %+v", us)
	}
	if ue.Connected() {
		t.Fatal("UE still connected after leaving range")
	}
}

func TestUEStopCancelsTimers(t *testing.T) {
	r := newRig(t, 13)
	r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 8})
	ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{
		Profile: std(), StartOffset: 5 * time.Second,
	})
	if _, err := r.sched.At(10*time.Second, ue.Stop); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := r.sched.RunUntil(std().Period * 2); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if us.Generated != 1 {
		t.Fatalf("generated = %d after Stop, want 1", us.Generated)
	}
	if us.FallbackResends != 0 {
		t.Fatalf("fallback fired after Stop: %+v", us)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (UEStats, RelayStats, int) {
		r := newRig(t, 99)
		relay, _ := r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 4})
		ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 3}}, UEConfig{
			Profile: std(), StartOffset: 7 * time.Second,
		})
		if err := r.sched.RunUntil(std().Period * 6); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		return ue.Stats(), relay.Stats(), r.bs.TotalL3Messages()
	}
	u1, r1, l1 := run()
	u2, r2, l2 := run()
	if u1 != u2 || r1 != r2 || l1 != l2 {
		t.Fatalf("runs diverged:\n%+v vs %+v\n%+v vs %+v\nL3 %d vs %d", u1, u2, r1, r2, l1, l2)
	}
}

func TestSignalingSavingVsOriginal(t *testing.T) {
	// Fig. 15 / headline claim: with one UE connected to the relay, the
	// pair generates > 50 % less signaling than the original system where
	// relay and UE each transmit every heartbeat themselves.
	period := std().Period
	horizon := period * 10

	runScheme := func() int {
		r := newRig(t, 21)
		r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 8})
		r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{Profile: std(), StartOffset: 10 * time.Second})
		if err := r.sched.RunUntil(horizon); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		return r.bs.TotalL3Messages()
	}
	runOriginal := func() int {
		r := newRig(t, 21)
		// In the original system the "relay" is just another UE sending
		// its own heartbeats directly.
		r.addUE(t, "relay", geo.Static{}, UEConfig{Profile: std(), DisableD2D: true})
		r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{Profile: std(), StartOffset: 10 * time.Second, DisableD2D: true})
		if err := r.sched.RunUntil(horizon); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		return r.bs.TotalL3Messages()
	}
	scheme, original := runScheme(), runOriginal()
	if scheme == 0 || original == 0 {
		t.Fatalf("no signaling recorded: scheme=%d original=%d", scheme, original)
	}
	saving := 1 - float64(scheme)/float64(original)
	if saving < 0.45 {
		t.Fatalf("signaling saving = %.1f%% (scheme %d vs original %d), want >= 45%%",
			saving*100, scheme, original)
	}
}

func TestCustomFeedbackTimeoutFiresEarly(t *testing.T) {
	// A short explicit feedback timeout triggers the fallback even though
	// the relay would have delivered at the period end.
	r := newRig(t, 17)
	r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 8})
	ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{
		Profile:         std(),
		StartOffset:     10 * time.Second,
		FeedbackTimeout: 30 * time.Second, // relay flushes at 270 s
	})
	if err := r.sched.RunUntil(100 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if us.FallbackResends != 1 {
		t.Fatalf("fallbacks = %d, want 1 (timeout before flush)", us.FallbackResends)
	}
	// The fallback delivery is on time (sent at 40 s, deadline 280 s).
	total, late := r.bs.Deliveries()
	if total != 1 || late != 0 {
		t.Fatalf("deliveries = %d (%d late), want 1 on-time fallback", total, late)
	}
}

func TestScanBackoffReducesDiscoveryEnergy(t *testing.T) {
	// A UE with no relay in range scans with exponential backoff instead
	// of burning discovery energy every heartbeat.
	r := newRig(t, 19)
	ue, led := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 500}}, UEConfig{
		Profile: std(), StartOffset: 5 * time.Second,
	})
	if err := r.sched.RunUntil(16 * std().Period); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if us.Generated < 15 {
		t.Fatalf("generated = %d, want >= 15", us.Generated)
	}
	// Backoff 1,2,4,8,8...: scans ≪ heartbeats.
	if us.Scans >= us.Generated/2 {
		t.Fatalf("scans = %d of %d heartbeats, backoff not engaging", us.Scans, us.Generated)
	}
	if us.Scans+us.ScansSkipped != us.Generated {
		t.Fatalf("scans %d + skipped %d != generated %d", us.Scans, us.ScansSkipped, us.Generated)
	}
	wantDiscovery := energy.MicroAmpHours(float64(us.Scans)) * energy.DefaultModel().UEDiscovery
	if got := led.Phase(energy.PhaseDiscovery); got != wantDiscovery {
		t.Fatalf("discovery energy = %v, want %v", got, wantDiscovery)
	}
}

func TestBusyRelayHandover(t *testing.T) {
	// With two capacity-1 relays in range, a UE whose relay just closed
	// its window hands over to the other instead of burning a cellular
	// connection.
	r := newRig(t, 21)
	relayA, _ := r.addRelay(t, "relay-a", geo.Static{}, RelayConfig{Profile: std(), Capacity: 1})
	relayB, _ := r.addRelay(t, "relay-b", geo.Static{P: geo.Point{X: 3}}, RelayConfig{Profile: std(), Capacity: 1})
	fast := std()
	fast.Period = 100 * time.Second
	ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{
		Profile: fast, StartOffset: 5 * time.Second,
	})
	if err := r.sched.RunUntil(260 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	// hb1 → relay-a (capacity flush, window closed); hb2 at 105 s hands
	// over to relay-b; hb3 at 205 s finds both closed and goes direct.
	if us.SentViaD2D != 2 {
		t.Fatalf("sent via D2D = %d, want 2 (handover)", us.SentViaD2D)
	}
	if us.Matches != 2 {
		t.Fatalf("matches = %d, want 2", us.Matches)
	}
	if us.DirectCellular != 1 {
		t.Fatalf("direct = %d, want 1", us.DirectCellular)
	}
	if relayA.Stats().Collected != 1 || relayB.Stats().Collected != 1 {
		t.Fatalf("collections = %d/%d, want 1/1",
			relayA.Stats().Collected, relayB.Stats().Collected)
	}
	// Feedback still reached the UE for both forwards.
	if us.AcksReceived != 2 {
		t.Fatalf("acks = %d, want 2", us.AcksReceived)
	}
	if us.FallbackResends != 0 {
		t.Fatalf("fallbacks = %d, want 0", us.FallbackResends)
	}
}

func TestProactiveReleaseBeyondPrejudgmentDistance(t *testing.T) {
	// The UE walks out to 20 m (inside radio range, beyond the 15 m
	// prejudgment bound): the link is released proactively and heartbeats
	// go direct, with no lossy-zone send attempts.
	r := newRig(t, 23)
	r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 8})
	led := energy.NewLedger()
	mob := geo.Line{From: geo.Point{X: 1}, To: geo.Point{X: 20}, Speed: 0.2, Start: 30 * time.Second}
	node, err := r.medium.Join("ue", d2d.RoleUE, mob, led)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	modem, err := r.bs.Attach("ue", r.model, rrc.DefaultConfig(), led)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	ue, err := NewUE(r.sched, node, modem, UEConfig{
		ID: "ue", Profile: std(), Match: matching.DefaultConfig(), StartOffset: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewUE: %v", err)
	}
	if err := ue.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Walk reaches 20 m at t = 30 + 19/0.2 = 125 s; heartbeats at 10, 280,
	// 550, ... — from the second heartbeat on the UE is beyond 15 m.
	if err := r.sched.RunUntil(6 * std().Period); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if us.SentViaD2D != 1 {
		t.Fatalf("sent via D2D = %d, want 1 (only the first)", us.SentViaD2D)
	}
	if us.D2DSendFailures != 0 {
		t.Fatalf("lossy-zone send failures = %d, want 0 (proactive release)", us.D2DSendFailures)
	}
	if us.DirectCellular == 0 {
		t.Fatal("no direct sends after release")
	}
	if ue.Connected() {
		t.Fatal("link still open beyond prejudgment distance")
	}
}

func TestLossyLinkFailuresFallBackCleanly(t *testing.T) {
	// At 30 m the Wi-Fi Direct link drops ~15 % of transfers. A failed
	// D2D send must cancel its feedback timer (no ghost fallback) and go
	// out directly instead — conservation holds throughout.
	r := newRig(t, 29)
	r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 64})
	fast := std()
	fast.Period = 30 * time.Second
	match := matching.DefaultConfig()
	match.MaxDistance = 40 // loss zone allowed for this test
	ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 30}}, UEConfig{
		Profile: fast, StartOffset: 5 * time.Second, Match: match,
	})
	if err := r.sched.RunUntil(40 * fast.Period); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if got := ue.ID(); got != "ue" {
		t.Fatalf("ID = %q", got)
	}
	if us.D2DSendFailures == 0 {
		t.Fatalf("no transfer losses at 30 m: %+v", us)
	}
	// Every heartbeat left the device exactly once.
	if us.Generated != us.SentViaD2D+us.DirectCellular {
		t.Fatalf("conservation broken: %+v", us)
	}
	// Failed sends must not leave armed feedback timers: the only
	// fallbacks allowed are for successfully forwarded heartbeats whose
	// feedback got lost on the lossy link.
	if us.FallbackResends > us.SentViaD2D {
		t.Fatalf("more fallbacks (%d) than forwards (%d)", us.FallbackResends, us.SentViaD2D)
	}
}
