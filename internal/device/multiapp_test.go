package device

import (
	"testing"
	"time"

	"d2dhb/internal/d2d"
	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/matching"
	"d2dhb/internal/rrc"
)

func TestMultiAppUEForwardsAllApps(t *testing.T) {
	// One device running WeChat + QQ: both apps' heartbeats flow through
	// the same relay link and are individually acknowledged.
	r := newRig(t, 31)
	relay, _ := r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 8})
	ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{
		Profile:       hbmsg.WeChat(),
		ExtraProfiles: []hbmsg.AppProfile{hbmsg.QQ()},
		StartOffset:   10 * time.Second,
	})
	// 900 s: WeChat (270 s) beats at 10, 280, 550, 820; QQ (300 s) at 13,
	// 313, 613.
	if err := r.sched.RunUntil(900 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	us := ue.Stats()
	if us.Generated != 7 {
		t.Fatalf("generated = %d, want 7 (4 WeChat + 3 QQ)", us.Generated)
	}
	if us.SentViaD2D != us.Generated {
		t.Fatalf("forwarded %d of %d", us.SentViaD2D, us.Generated)
	}
	if us.DirectCellular != 0 || us.FallbackResends != 0 {
		t.Fatalf("cellular leakage: %+v", us)
	}
	// One D2D connection serves both apps.
	if us.Matches != 1 {
		t.Fatalf("matches = %d, want 1 (shared link)", us.Matches)
	}
	rs := relay.Stats()
	if rs.Collected != us.SentViaD2D {
		t.Fatalf("relay collected %d, want %d", rs.Collected, us.SentViaD2D)
	}
}

func TestMultiAppUEDistinctExpiries(t *testing.T) {
	// A tight-expiry app must pull the relay's flush forward while the
	// relaxed app waits: per-message T_k handling across apps.
	r := newRig(t, 33)
	relay, _ := r.addRelay(t, "relay", geo.Static{}, RelayConfig{Profile: std(), Capacity: 8})
	tight := std()
	tight.Name = "tight"
	tight.ExpiryFactor = 0.1 // 27 s
	ue, _ := r.addUE(t, "ue", geo.Static{P: geo.Point{X: 1}}, UEConfig{
		Profile:       std(),
		ExtraProfiles: []hbmsg.AppProfile{tight},
		StartOffset:   5 * time.Second,
	})
	if err := r.sched.RunUntil(100 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	// The tight heartbeat (origin 8 s, deadline 35 s) forces a flush well
	// before the relay's 270 s period end; both messages ride it.
	rs := relay.Stats()
	if rs.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", rs.Flushes)
	}
	total, late := r.bs.Deliveries()
	if late != 0 {
		t.Fatalf("late deliveries = %d, want 0", late)
	}
	if total != 3 { // relay own + 2 forwarded
		t.Fatalf("deliveries = %d, want 3", total)
	}
	if got := ue.Stats().AcksReceived; got != 2 {
		t.Fatalf("acks = %d, want 2", got)
	}
}

func TestMultiAppValidation(t *testing.T) {
	r := newRig(t, 35)
	node, err := r.medium.Join("x", d2d.RoleUE, geo.Static{}, energy.NewLedger())
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	modem, err := r.bs.Attach("x", r.model, rrc.DefaultConfig(), energy.NewLedger())
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	bad := UEConfig{
		ID: "x", Profile: std(), Match: matching.DefaultConfig(),
		ExtraProfiles: []hbmsg.AppProfile{{Name: "broken"}},
	}
	if _, err := NewUE(r.sched, node, modem, bad); err == nil {
		t.Fatal("invalid extra profile accepted")
	}
}
