package experiments

import (
	"testing"

	"d2dhb/internal/radio"
	"d2dhb/internal/sched"
)

func TestPolicyAblation(t *testing.T) {
	rows, table, err := PolicyAblation(DefaultSeed)
	if err != nil {
		t.Fatalf("PolicyAblation: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byKind := make(map[sched.Kind]PolicyAblationRow, len(rows))
	for _, r := range rows {
		byKind[r.Policy] = r
	}
	nagle := byKind[sched.KindNagle]
	immediate := byKind[sched.KindImmediate]
	aligned := byKind[sched.KindPeriodAligned]
	fixed := byKind[sched.KindFixedDelay]

	// Immediate send wastes signaling relative to Algorithm 1.
	if immediate.L3Messages <= nagle.L3Messages {
		t.Errorf("immediate L3 %d <= nagle %d", immediate.L3Messages, nagle.L3Messages)
	}
	// Algorithm 1 respects every T_k: perfect on-time delivery.
	if nagle.OnTimeRate < 0.999 {
		t.Errorf("nagle on-time rate = %v, want 1", nagle.OnTimeRate)
	}
	if nagle.FallbackResends != 0 {
		t.Errorf("nagle fallbacks = %d, want 0", nagle.FallbackResends)
	}
	// Deadline-blind policies deliver late under tight expiries.
	if aligned.OnTimeRate >= nagle.OnTimeRate {
		t.Errorf("period-aligned on-time %v not worse than nagle %v",
			aligned.OnTimeRate, nagle.OnTimeRate)
	}
	if fixed.OnTimeRate >= nagle.OnTimeRate {
		t.Errorf("fixed-delay on-time %v not worse than nagle %v",
			fixed.OnTimeRate, nagle.OnTimeRate)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestTechniqueAblation(t *testing.T) {
	rows, table, err := TechniqueAblation(DefaultSeed)
	if err != nil {
		t.Fatalf("TechniqueAblation: %v", err)
	}
	find := func(tech radio.Technique, d float64) TechniqueAblationRow {
		for _, r := range rows {
			if r.Technique == tech && r.Distance == d {
				return r
			}
		}
		t.Fatalf("row %v/%v missing", tech, d)
		return TechniqueAblationRow{}
	}
	// Both techniques forward at 2 m.
	if !find(radio.WiFiDirect, 2).Matched || !find(radio.Bluetooth, 2).Matched {
		t.Error("close-range match failed")
	}
	// At 12 m only Wi-Fi Direct still works (Section IV-A's rationale).
	if !find(radio.WiFiDirect, 12).Matched {
		t.Error("wifi-direct failed at 12 m")
	}
	if find(radio.Bluetooth, 12).Matched {
		t.Error("bluetooth matched at 12 m, beyond its ~10 m range")
	}
	// Falling back to cellular costs the Bluetooth UE more signaling.
	if find(radio.Bluetooth, 12).L3Messages <= find(radio.WiFiDirect, 12).L3Messages {
		t.Error("bluetooth fallback did not raise signaling")
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestPrejudgmentAblation(t *testing.T) {
	rows, table, err := PrejudgmentAblation(DefaultSeed)
	if err != nil {
		t.Fatalf("PrejudgmentAblation: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	var with, without PrejudgmentAblationRow
	for _, r := range rows {
		if r.Prejudgment {
			with = r
		} else {
			without = r
		}
	}
	// With prejudgment the far relay is never used: clean cellular path.
	if with.D2DSendFailures != 0 || with.FallbackResends != 0 || with.LateDeliveries != 0 {
		t.Errorf("prejudgment path not clean: %+v", with)
	}
	// Without it, the lossy 33 m link causes failures and duplicates.
	if without.D2DSendFailures+without.FallbackResends == 0 {
		t.Errorf("no loss effects on the 33 m link: %+v", without)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestFeedbackAblation(t *testing.T) {
	rows, table, err := FeedbackAblation(DefaultSeed)
	if err != nil {
		t.Fatalf("FeedbackAblation: %v", err)
	}
	var with, without FeedbackAblationRow
	for _, r := range rows {
		if r.FeedbackEnabled {
			with = r
		} else {
			without = r
		}
	}
	// With feedback, the heartbeat trapped in the dead relay is recovered
	// via the cellular fallback.
	if with.FallbackResends == 0 {
		t.Errorf("no fallback with feedback enabled: %+v", with)
	}
	if with.Delivered <= without.Delivered {
		t.Errorf("feedback did not improve delivery: %d vs %d",
			with.Delivered, without.Delivered)
	}
	if without.FallbackResends != 0 {
		t.Errorf("fallbacks without feedback: %+v", without)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestCapacityAblation(t *testing.T) {
	rows, table, err := CapacityAblation(DefaultSeed)
	if err != nil {
		t.Fatalf("CapacityAblation: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// Signaling decreases (weakly) as capacity grows…
	for i := 1; i < len(rows); i++ {
		if rows[i].L3Messages > rows[i-1].L3Messages {
			t.Errorf("L3 rose from M=%d (%d) to M=%d (%d)",
				rows[i-1].Capacity, rows[i-1].L3Messages,
				rows[i].Capacity, rows[i].L3Messages)
		}
	}
	// …and saturates once M exceeds the 7 connected UEs.
	if rows[3].L3Messages != rows[4].L3Messages { // M=8 vs M=16
		t.Errorf("no saturation: M=8 gives %d, M=16 gives %d",
			rows[3].L3Messages, rows[4].L3Messages)
	}
	// Tiny capacity aggregates almost nothing: most UEs fall back to
	// direct cellular sends.
	if rows[0].ForwardedSent >= rows[3].ForwardedSent {
		t.Errorf("M=1 forwarded %d not below M=8 forwarded %d",
			rows[0].ForwardedSent, rows[3].ForwardedSent)
	}
	// With M=8 every one of the 7 UEs' heartbeats rides the aggregate.
	if rows[3].ForwardedSent != 7*4 {
		t.Errorf("M=8 forwarded = %d, want 28", rows[3].ForwardedSent)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestCoverageAblation(t *testing.T) {
	rows, table, err := CoverageAblation(DefaultSeed)
	if err != nil {
		t.Fatalf("CoverageAblation: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byTech := make(map[radio.Technique]CoverageAblationRow, len(rows))
	for _, r := range rows {
		byTech[r.Technique] = r
	}
	bt := byTech[radio.Bluetooth]
	wifi := byTech[radio.WiFiDirect]
	lte := byTech[radio.LTEDirect]
	// Coverage strictly improves with range over a sparse 300 m crowd.
	if !(bt.MatchedUEs <= wifi.MatchedUEs && wifi.MatchedUEs < lte.MatchedUEs) {
		t.Fatalf("coverage not ordered: bt %d, wifi %d, lte %d",
			bt.MatchedUEs, wifi.MatchedUEs, lte.MatchedUEs)
	}
	// LTE Direct covers (nearly) the whole crowd (Section II-C).
	if lte.MatchedUEs < lte.TotalUEs*9/10 {
		t.Fatalf("LTE Direct matched %d/%d, want >= 90%%", lte.MatchedUEs, lte.TotalUEs)
	}
	// And yields the biggest signaling saving.
	if lte.L3Saving <= wifi.L3Saving {
		t.Fatalf("LTE saving %.2f not above wifi %.2f", lte.L3Saving, wifi.L3Saving)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestIncentiveEconomics(t *testing.T) {
	rows, table, err := Incentive(DefaultSeed)
	if err != nil {
		t.Fatalf("Incentive: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i, row := range rows {
		// Credits scale with served UEs: ~320 heartbeats per UE per day.
		wantCredits := row.UEs * 320
		if row.CreditsPerDay < wantCredits-row.UEs || row.CreditsPerDay > wantCredits+row.UEs {
			t.Errorf("n=%d: credits = %d, want ≈%d", row.UEs, row.CreditsPerDay, wantCredits)
		}
		if row.ExtraBatteryShare <= 0 {
			t.Errorf("n=%d: relaying cost nothing (%v)", row.UEs, row.ExtraBatteryShare)
		}
		// The exchange rate never worsens with more UEs (aggregation
		// amortizes the relay's fixed costs, then saturates at the
		// marginal per-heartbeat cost).
		if i > 0 && row.CreditsPerBatteryPercent < rows[i-1].CreditsPerBatteryPercent-1e-6 {
			t.Errorf("credits per battery-%% worsened at n=%d: %.2f vs %.2f",
				row.UEs, row.CreditsPerBatteryPercent, rows[i-1].CreditsPerBatteryPercent)
		}
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestExpiryFactorAblation(t *testing.T) {
	rows, table, err := ExpiryFactorAblation(DefaultSeed)
	if err != nil {
		t.Fatalf("ExpiryFactorAblation: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byFactor := make(map[float64]ExpiryFactorRow, len(rows))
	for _, r := range rows {
		byFactor[r.Factor] = r
		// Algorithm 1 never delivers late regardless of T_k tightness.
		if r.OnTimeRate < 0.999 {
			t.Errorf("factor %v: on-time = %v, want 1", r.Factor, r.OnTimeRate)
		}
	}
	// Tight expiries force deadline-driven flushes; relaxed ones ride the
	// period end.
	if byFactor[0.1].DeadlineFlushes == 0 {
		t.Error("factor 0.1: no deadline flushes")
	}
	if byFactor[3].DeadlineFlushes != 0 {
		t.Errorf("factor 3: %d deadline flushes, want 0", byFactor[3].DeadlineFlushes)
	}
	if byFactor[3].PeriodEndFlushes == 0 {
		t.Error("factor 3: no period-end flushes")
	}
	// Relaxed expiries batch better: signaling never increases with the
	// factor.
	if byFactor[3].L3Messages > byFactor[0.1].L3Messages {
		t.Errorf("L3 grew with relaxed expiry: %d vs %d",
			byFactor[3].L3Messages, byFactor[0.1].L3Messages)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestDelayByPolicy(t *testing.T) {
	rows, table, err := DelayByPolicy(DefaultSeed)
	if err != nil {
		t.Fatalf("DelayByPolicy: %v", err)
	}
	byKind := make(map[sched.Kind]DelayRow, len(rows))
	for _, r := range rows {
		byKind[r.Policy] = r
	}
	immediate := byKind[sched.KindImmediate]
	nagle := byKind[sched.KindNagle]
	aligned := byKind[sched.KindPeriodAligned]

	// Immediate: near-zero forwarding delay at maximal signaling.
	if immediate.Relayed.MeanMs > 1000 {
		t.Errorf("immediate mean delay = %v ms, want ≈0", immediate.Relayed.MeanMs)
	}
	if immediate.L3Messages <= nagle.L3Messages {
		t.Errorf("immediate L3 %d not above nagle %d", immediate.L3Messages, nagle.L3Messages)
	}
	// Algorithm 1 delays messages (that is the price of batching) but
	// never past their deadline: bounded by min(T_k, T) = 270 s.
	if nagle.Relayed.MeanMs <= immediate.Relayed.MeanMs {
		t.Errorf("nagle mean delay %v not above immediate %v",
			nagle.Relayed.MeanMs, immediate.Relayed.MeanMs)
	}
	if nagle.Relayed.MaxMs > 270_000 {
		t.Errorf("nagle max delay = %v ms, exceeds the period bound", nagle.Relayed.MaxMs)
	}
	if nagle.LateDeliveries != 0 {
		t.Errorf("nagle late = %d, want 0", nagle.LateDeliveries)
	}
	// Period-aligned delays at least as long as Algorithm 1.
	if aligned.Relayed.MeanMs < nagle.Relayed.MeanMs {
		t.Errorf("period-aligned mean %v below nagle %v",
			aligned.Relayed.MeanMs, nagle.Relayed.MeanMs)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}
