package experiments

// Trace replay on the simulated substrate. ReplaySim drives a recorded
// arrival timeline (internal/rec) through the discrete-event scheduler:
// every recorded send becomes a virtual arrival at its recorded offset,
// direct clients get their own RRC machine, and relay/trunk groups get an
// Algorithm 1 scheduler plus a shared RRC machine. The run is
// single-threaded virtual time seeded from the trace, so two replays of
// the same trace produce bit-identical metrics — the digest is a
// regression key.

import (
	"fmt"
	"time"

	"d2dhb/internal/hbmsg"
	"d2dhb/internal/rec"
	"d2dhb/internal/rrc"
	"d2dhb/internal/sched"
	"d2dhb/internal/simtime"
)

// replayBaseSize is the modeled wire size of one replayed heartbeat before
// padding (the paper's standard 54 B keep-alive).
const replayBaseSize = 54

// simGroup is one relay/trunk aggregation point in the replay: an
// Algorithm 1 policy, the shared modem it flushes through, and the armed
// deadline timer.
type simGroup struct {
	policy *sched.Nagle
	modem  *rrc.Machine
	timer  *simtime.Timer
}

// replayState carries the accumulating outcome across arrival callbacks.
type replayState struct {
	clock   *simtime.Scheduler
	tl      *rec.Timeline
	groups  map[int]*simGroup
	direct  map[int]*rrc.Machine
	metrics rec.Metrics
	lat     *rec.Sample
	err     error
}

// ReplaySim replays the recorded timeline through the simulator and
// returns its deterministic outcome metrics.
func ReplaySim(tl *rec.Timeline) (rec.Metrics, error) {
	if tl == nil {
		return rec.Metrics{}, fmt.Errorf("experiments: nil timeline")
	}
	if err := tl.Validate(); err != nil {
		return rec.Metrics{}, err
	}
	st := &replayState{
		clock:  simtime.NewScheduler(tl.Seed),
		tl:     tl,
		groups: make(map[int]*simGroup),
		direct: make(map[int]*rrc.Machine),
		lat:    rec.NewSample(),
	}
	st.metrics.Source = "sim"

	rrcCfg := rrc.DefaultConfig()
	for i, c := range tl.Clients {
		if c.Relay < 0 {
			m, err := rrc.NewMachine(st.clock, rrcCfg)
			if err != nil {
				return rec.Metrics{}, err
			}
			st.direct[i] = m
			continue
		}
		if _, ok := st.groups[c.Relay]; ok {
			continue
		}
		if tl.RelayPeriod <= 0 || tl.RelayCapacity <= 0 {
			return rec.Metrics{}, fmt.Errorf("experiments: trace has relay clients but relay period %v / capacity %d",
				tl.RelayPeriod, tl.RelayCapacity)
		}
		pol, err := sched.NewNagle(tl.RelayCapacity, tl.RelayPeriod)
		if err != nil {
			return rec.Metrics{}, err
		}
		modem, err := rrc.NewMachine(st.clock, rrcCfg)
		if err != nil {
			return rec.Metrics{}, err
		}
		st.groups[c.Relay] = &simGroup{policy: pol, modem: modem}
	}

	// Chain through the event stream with a single cursor timer instead of
	// pre-loading one timer per event: traces can hold millions of events.
	sends := make([]rec.Event, 0, len(tl.Events))
	for _, e := range tl.Events {
		if e.Kind == rec.EvSend {
			sends = append(sends, e)
		}
	}
	var schedule func(i int)
	schedule = func(i int) {
		if i >= len(sends) || st.err != nil {
			return
		}
		_, err := st.clock.At(sends[i].At, func() {
			st.arrive(sends[i])
			schedule(i + 1)
		})
		if err != nil {
			st.err = err
		}
	}
	schedule(0)

	// Run past the last arrival far enough for every deadline flush and
	// RRC release tail to land.
	horizon := tl.Horizon() + tl.RelayPeriod + rrcCfg.InactivityTail + time.Second
	if err := st.clock.RunUntil(horizon); err != nil {
		return rec.Metrics{}, err
	}
	if st.err != nil {
		return rec.Metrics{}, st.err
	}

	// Drain whatever is still pending at the horizon, then close every
	// modem so connected-time and release signaling are final.
	for _, g := range st.groups {
		st.flush(g)
		g.modem.ForceRelease()
	}
	for _, m := range st.direct {
		m.ForceRelease()
	}
	for _, g := range st.groups {
		c := g.modem.Counters()
		st.metrics.Signaling.L3Messages += uint64(c.L3Messages)
	}
	for _, m := range st.direct {
		c := m.Counters()
		st.metrics.Signaling.L3Messages += uint64(c.L3Messages)
	}

	st.metrics.AckLatency = st.lat.Quantiles()
	st.metrics.Finish()
	return st.metrics, nil
}

// arrive processes one recorded send at its virtual instant.
func (st *replayState) arrive(e rec.Event) {
	if st.err != nil {
		return
	}
	c := st.tl.Clients[e.Client]
	now := st.clock.Now()
	st.metrics.Sent++

	if m, ok := st.direct[e.Client]; ok {
		// Direct path: one uplink transaction per heartbeat, latency is the
		// modeled zero (the sim has no network delay on its own uplink).
		if err := m.Send(replayBaseSize + c.Pad); err != nil {
			st.err = err
			return
		}
		st.metrics.Delivered++
		st.metrics.Signaling.Uplinks++
		st.lat.Add(0)
		return
	}

	g := st.groups[c.Relay]
	if !g.policy.Accepting() && g.policy.Pending() == 0 {
		g.policy.StartPeriod(now)
	}
	expiry := c.Expiry
	if expiry <= 0 {
		expiry = c.Period
	}
	hb := hbmsg.Heartbeat{
		App:    c.App,
		Src:    hbmsg.DeviceID(c.ID),
		Seq:    e.Seq,
		Origin: now,
		Expiry: expiry,
		Size:   replayBaseSize + c.Pad,
	}
	flushNow, err := g.policy.Collect(hb, now)
	if err != nil {
		// ErrExpired can only mean a non-positive effective expiry; write
		// the heartbeat off like the live stack would.
		st.metrics.Timeouts++
		st.metrics.Expired++
		return
	}
	if flushNow {
		st.flush(g)
		return
	}
	st.armDeadline(g)
}

// armDeadline (re)schedules the group's pending-batch deadline flush.
func (st *replayState) armDeadline(g *simGroup) {
	if st.err != nil {
		return
	}
	at, ok := g.policy.Deadline()
	if !ok {
		return
	}
	if g.timer != nil {
		st.clock.Stop(g.timer)
	}
	t, err := st.clock.At(at, func() {
		g.timer = nil
		st.flush(g)
	})
	if err != nil {
		st.err = err
		return
	}
	g.timer = t
}

// flush sends the group's pending batch through its modem and credits the
// delivered heartbeats.
func (st *replayState) flush(g *simGroup) {
	if st.err != nil {
		return
	}
	if g.timer != nil {
		st.clock.Stop(g.timer)
		g.timer = nil
	}
	now := st.clock.Now()
	batch := g.policy.Flush(now)
	if len(batch) == 0 {
		return
	}
	payload := replayBaseSize // the relay's own heartbeat rides along
	for _, hb := range batch {
		payload += hb.Size
	}
	if err := g.modem.Send(payload); err != nil {
		st.err = err
		return
	}
	st.metrics.Signaling.Uplinks++
	st.metrics.Signaling.Batches++
	for _, hb := range batch {
		st.metrics.Delivered++
		st.lat.Add(float64(now-hb.Origin) / float64(time.Millisecond))
	}
}
