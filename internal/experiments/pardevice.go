package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"d2dhb/internal/d2d"
	"d2dhb/internal/device"
	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/matching"
	"d2dhb/internal/radio"
	"d2dhb/internal/rrc"
	"d2dhb/internal/sched"
	"d2dhb/internal/simtime"
	"d2dhb/internal/trace"
)

// This file is the device model of the parallel city kernel: a windowed
// re-statement of internal/device's UE and Relay in which every
// cross-device interaction — discovery, group formation, heartbeat
// forwarding, feedback acks — happens against immutable window-boundary
// snapshots and is applied at the next boundary as a canonically ordered
// operation. That makes each device's entire window a pure function of
// (its own state, its own RNG stream, the shared snapshot), so tiles can
// run concurrently and the merged result is bit-identical for any tile
// count. The price is semantics: D2D effects land one window (≤ W virtual
// seconds) later than in the sequential kernel, so the two kernels produce
// different — each internally deterministic — golden digests.

// opKind discriminates boundary operations.
type opKind uint8

const (
	opConnect opKind = iota + 1 // UE → relay: group formation (responder charges)
	opForward                   // UE → relay: one forwarded heartbeat
	opAck                       // relay → UE: feedback acknowledgement
)

// parOp is one deferred cross-device effect. Ops are sorted globally by
// (createdAt, src, srcSeq) — a strict total order, since srcSeq never
// repeats within a device — and applied at the start of the next window on
// the destination's tile, which is what makes application order
// independent of the partition.
type parOp struct {
	createdAt time.Duration
	src, dst  int // population orders
	srcSeq    uint64
	kind      opKind
	hb        hbmsg.Heartbeat      // opForward
	ref       d2d.AckRef           // opAck
	charge    energy.MicroAmpHours // opForward: receiver-side recv charge at send distance
}

// parDelivery is one heartbeat observed at the network side, keyed by the
// transmitting (via) device so per-window merges are canonical.
type parDelivery struct {
	hb       hbmsg.Heartbeat
	via      hbmsg.DeviceID
	viaOrder int
	viaSeq   uint64
	at       time.Duration
	onTime   bool
}

// parTile is the per-tile mutable state. Everything here is owned by the
// tile's worker during a window and by the barrier between windows.
type parTile struct {
	sched      *simtime.Scheduler
	devices    []*pdevice
	inOps      []parOp
	outOps     []parOp
	deliveries []parDelivery
	events     []trace.Keyed
	migrants   []*pdevice
}

// parEnv is the shared environment of one parallel city run. Slices
// indexed by population order are written only at disjoint indices by the
// owning workers (posSnap, adv*) or only by the barrier; the rest is
// immutable after setup.
type parEnv struct {
	cfg     ParallelCityConfig
	profile hbmsg.AppProfile
	radio   radio.Profile
	model   energy.Model
	match   matching.Config
	rrcCfg  rrc.Config
	grid    *geo.TileGrid

	devices   []*pdevice
	numRelays int
	orderOf   map[hbmsg.DeviceID]int

	// Window-boundary snapshot, read-only during a window. The end hooks
	// write the *Next buffers — tiles finish windows at different wall
	// times, so writing the live snapshot would race slower tiles' reads —
	// and the barrier swaps them in. Every entry is rewritten at every
	// boundary, so the swapped-out buffer never leaks stale state.
	posSnap      []geo.Point
	advFree      []int
	advIntent    []int
	advAccepting []bool
	posNext      []geo.Point
	advFreeNext  []int
	advIntNext   []int
	advAccNext   []bool
	beacons      *d2d.BeaconIndex
	beaconBuf    []d2d.Beacon

	tiles   []*parTile
	traceOn bool
}

// pdevice is one simulated device of the parallel kernel. Exactly one of
// relay/ue is non-nil.
type pdevice struct {
	env         *parEnv
	id          hbmsg.DeviceID
	order       int
	role        d2d.Role
	mob         geo.Mobility
	startOffset time.Duration

	tile    int
	tileIdx int // index in tiles[tile].devices, maintained by migration

	rng    *rand.Rand
	agenda *simtime.Agenda
	ledger *energy.Ledger
	rrc    prrc

	emitSeq    uint64
	deliverSeq uint64
	opSeq      uint64

	relay *prelay
	ue    *pue
}

// prelay mirrors device.Relay over the windowed substrate.
type prelay struct {
	capacity  int
	policy    *sched.Nagle
	seq       uint64
	ownHB     hbmsg.Heartbeat
	sources   map[ackKey]int // collected heartbeat → source population order
	flushTask *simtime.Task
	started   bool
	stats     device.RelayStats
}

// ackKey identifies a collected heartbeat for feedback routing, mirroring
// device's unexported key.
type ackKey struct {
	src hbmsg.DeviceID
	seq uint64
}

// pue mirrors device.UE over the windowed substrate.
type pue struct {
	seq        uint64
	relayOrder int // -1 when not linked
	transfers  int // heartbeats forwarded over the current link
	pending    map[uint64]*ppending
	backoff    int
	scanSkips  int
	scanBuf    []d2d.Beacon
	peerBuf    []d2d.PeerInfo
	stats      device.UEStats
}

// ppending tracks a forwarded heartbeat awaiting feedback.
type ppending struct {
	hb   hbmsg.Heartbeat
	task *simtime.Task
}

// parMaxScanBackoff mirrors device's discovery backoff cap.
const parMaxScanBackoff = 8

// prrc is an inline RRC state machine equivalent to rrc.Machine but driven
// through the device's agenda so it migrates with the device.
type prrc struct {
	connected   bool
	connectedAt time.Duration
	release     *simtime.Task
	counters    rrc.Counters
}

func (m *prrc) send(d *pdevice, payloadBytes int) {
	cfg := d.env.rrcCfg
	now := d.now()
	if !m.connected {
		m.connected = true
		m.connectedAt = now
		m.counters.Promotions++
		m.counters.L3Messages += cfg.SetupMessages
	}
	m.counters.Transmissions++
	m.counters.PayloadBytes += payloadBytes
	if cfg.LargePayloadBytes > 0 && payloadBytes > cfg.LargePayloadBytes {
		m.counters.L3Messages += cfg.LargePayloadMessages
	}
	if m.release != nil {
		d.agenda.Cancel(m.release)
		m.release = nil
	}
	task, err := d.agenda.After(cfg.InactivityTail, func() {
		m.release = nil
		m.releaseNow(d)
	})
	if err == nil {
		m.release = task
	}
}

func (m *prrc) releaseNow(d *pdevice) {
	m.connected = false
	m.counters.Releases++
	m.counters.L3Messages += d.env.rrcCfg.ReleaseMessages
	m.counters.ConnectedTime += d.now() - m.connectedAt
}

// countersAt returns the counters with any in-progress connected stretch
// extended to now, matching rrc.Machine.Counters.
func (m *prrc) countersAt(now time.Duration) rrc.Counters {
	c := m.counters
	if m.connected {
		c.ConnectedTime += now - m.connectedAt
	}
	return c
}

func (d *pdevice) now() time.Duration { return d.agenda.Scheduler().Now() }

func (d *pdevice) pos(at time.Duration) geo.Point { return d.mob.Pos(at) }

// emit records one trace event into the owning tile's window buffer,
// keyed for the canonical merge. Events with a preset Device (network-side
// delivery records) keep it; everything else is stamped with this device.
func (d *pdevice) emit(ev trace.Event) {
	if !d.env.traceOn {
		return
	}
	now := d.now()
	ev.AtMs = trace.At(now)
	if ev.Device == "" {
		ev.Device = string(d.id)
	}
	tl := d.env.tiles[d.tile]
	tl.events = append(tl.events, trace.Keyed{At: now, Order: d.order, Seq: d.emitSeq, Ev: ev})
	d.emitSeq++
}

// sendOp queues one cross-device effect for the next boundary.
func (d *pdevice) sendOp(op parOp) {
	op.createdAt = d.now()
	op.src = d.order
	op.srcSeq = d.opSeq
	d.opSeq++
	tl := d.env.tiles[d.tile]
	tl.outOps = append(tl.outOps, op)
}

// cellularSend transmits a batch over the device's cellular modem: RRC,
// energy, network-side delivery log and per-heartbeat delivery trace. The
// delivery records are keyed by this (via) device so the per-window merge
// feeding the presence tracker is canonical.
func (d *pdevice) cellularSend(hbs []hbmsg.Heartbeat, phase energy.Phase) {
	now := d.now()
	payload := 0
	for _, hb := range hbs {
		payload += hb.Size
	}
	d.rrc.send(d, payload)
	d.ledger.Add(phase, d.env.model.CellularTxCharge(len(hbs), payload))
	tl := d.env.tiles[d.tile]
	for _, hb := range hbs {
		onTime := !hb.Expired(now)
		tl.deliveries = append(tl.deliveries, parDelivery{
			hb: hb, via: d.id, viaOrder: d.order, viaSeq: d.deliverSeq,
			at: now, onTime: onTime,
		})
		d.deliverSeq++
		d.emit(trace.Event{
			Device: string(hb.Src), Kind: trace.KindDelivery,
			App: hb.App, Seq: hb.Seq, Peer: string(d.id), OnTime: onTime,
		})
	}
}

// ---------------------------------------------------------------------------
// UE side

// ueHeartbeat generates and dispatches one heartbeat, then schedules the
// next — the windowed analogue of device.UE.heartbeat.
func (d *pdevice) ueHeartbeat() {
	u := d.ue
	now := d.now()
	u.seq++
	hb := d.env.profile.Heartbeat(d.id, u.seq, now)
	u.stats.Generated++
	d.emit(trace.Event{Kind: trace.KindGenerated, App: hb.App, Seq: hb.Seq})

	if _, err := d.agenda.After(d.env.profile.Period, d.ueHeartbeat); err != nil {
		u.stats.SendErrors++
	}

	if d.env.cfg.DisableD2D {
		d.ueSendDirect(hb)
		return
	}
	// Proactive release against the relay's snapshot position, with the
	// same 25 % hysteresis as the sequential UE.
	if u.relayOrder >= 0 && d.env.match.Prejudgment &&
		d.pos(now).Dist(d.env.posSnap[u.relayOrder]) > d.env.match.MaxDistance*1.25 {
		u.relayOrder = -1
	}
	if u.relayOrder < 0 {
		if u.scanSkips > 0 {
			u.scanSkips--
			u.stats.ScansSkipped++
		} else {
			d.ueTryMatch(now)
		}
	}
	if u.relayOrder < 0 {
		d.ueSendDirect(hb)
		return
	}
	// The relay's advertised capacity is its boundary snapshot — possibly
	// up to one window stale, the windowed model's analogue of beacon lag.
	if d.env.advFree[u.relayOrder] <= 0 {
		u.stats.RelayBusy++
		d.emit(trace.Event{Kind: trace.KindRelayBusy, App: hb.App, Seq: hb.Seq,
			Peer: string(d.env.devices[u.relayOrder].id)})
		switched := false
		if u.scanSkips == 0 {
			prev := u.relayOrder
			d.ueTryMatch(now)
			if u.relayOrder >= 0 && u.relayOrder != prev && d.env.advFree[u.relayOrder] > 0 {
				switched = true
			}
		}
		if !switched {
			d.ueSendDirect(hb)
			return
		}
	}
	// Feedback is armed before the transfer, as in the sequential UE.
	d.ueArmFeedback(hb)
	relay := u.relayOrder
	dist := d.pos(now).Dist(d.env.posSnap[relay])
	if !d.env.radio.InRange(dist) {
		d.ueCancelFeedback(hb.Seq)
		u.stats.D2DSendFailures++
		d.emit(trace.Event{Kind: trace.KindD2DFail, App: hb.App, Seq: hb.Seq,
			Reason: fmt.Sprintf("%v: %.1fm", d2d.ErrOutOfRange, dist)})
		u.relayOrder = -1
		d.ueSendDirect(hb)
		return
	}
	d.ledger.Add(energy.PhaseD2DSend, d.env.model.D2DSendCharge(hb.Size, dist))
	if !d.env.radio.TransferOK(dist, d.rng) {
		d.ueCancelFeedback(hb.Seq)
		u.stats.D2DSendFailures++
		d.emit(trace.Event{Kind: trace.KindD2DFail, App: hb.App, Seq: hb.Seq,
			Reason: fmt.Sprintf("%v at %.1fm", d2d.ErrTransferFailed, dist)})
		// A lost transfer does not kill the link; the next heartbeat
		// retries it, as in the sequential kernel.
		d.ueSendDirect(hb)
		return
	}
	// The receiver's recv charge depends on the link distance and on
	// whether this is the first transfer of the link's round — both known
	// only here, so the op carries the computed charge.
	charge := d.env.model.D2DRecvCharge(hb.Size, dist, u.transfers == 0)
	u.transfers++
	d.sendOp(parOp{dst: relay, kind: opForward, hb: hb, charge: charge})
	u.stats.SentViaD2D++
	d.emit(trace.Event{Kind: trace.KindD2DSend, App: hb.App, Seq: hb.Seq})
}

// ueTryMatch scans the beacon snapshot and connects to the best candidate.
func (d *pdevice) ueTryMatch(now time.Duration) {
	u := d.ue
	u.stats.Scans++
	d.ledger.Add(energy.PhaseDiscovery, d.env.model.UEDiscovery)
	pos := d.pos(now)
	u.scanBuf = d.env.beacons.Neighborhood(pos, u.scanBuf[:0])
	found := u.peerBuf[:0]
	// Candidates arrive in population order, so the per-candidate RSSI
	// draws consume this device's RNG stream in a partition-independent
	// sequence.
	for _, b := range u.scanBuf {
		if !b.Accepting || b.Order == d.order {
			continue
		}
		dist := pos.Dist(b.Pos)
		if !d.env.radio.InRange(dist) {
			continue
		}
		rssi := d.env.radio.MeasureRSSI(dist, d.rng)
		found = append(found, d2d.PeerInfo{
			ID:           b.ID,
			RSSI:         rssi,
			EstDistance:  d.env.radio.EstimateDistance(rssi),
			Intent:       b.Intent,
			FreeCapacity: b.FreeCapacity,
		})
	}
	u.peerBuf = found
	sort.Slice(found, func(i, j int) bool {
		if found[i].EstDistance != found[j].EstDistance {
			return found[i].EstDistance < found[j].EstDistance
		}
		return found[i].ID < found[j].ID
	})
	sel, ok := matching.Select(found, d.env.match)
	if !ok {
		d.ueMatchFailed()
		return
	}
	selOrder := d.env.orderOf[sel.ID]
	if selOrder != u.relayOrder {
		// Group formation: the initiator pays its connection energy now;
		// the responder's discovery + connection phases are billed when
		// the op is applied on its tile. Reconnecting to the same relay
		// reuses the open link, with no charges — as in d2d.Connect.
		d.ledger.Add(energy.PhaseConnection, d.env.model.UEConnection)
		d.sendOp(parOp{dst: selOrder, kind: opConnect})
		u.relayOrder = selOrder
		u.transfers = 0
	}
	u.stats.Matches++
	u.backoff = 0
	d.emit(trace.Event{Kind: trace.KindMatch, Peer: string(sel.ID)})
}

func (d *pdevice) ueMatchFailed() {
	u := d.ue
	u.stats.MatchFailures++
	d.emit(trace.Event{Kind: trace.KindMatchFail})
	u.backoff *= 2
	if u.backoff == 0 {
		u.backoff = 1
	}
	if u.backoff > parMaxScanBackoff {
		u.backoff = parMaxScanBackoff
	}
	u.scanSkips = u.backoff
}

func (d *pdevice) ueSendDirect(hb hbmsg.Heartbeat) {
	d.cellularSend([]hbmsg.Heartbeat{hb}, energy.PhaseCellular)
	d.ue.stats.DirectCellular++
	d.emit(trace.Event{Kind: trace.KindDirectSend, App: hb.App, Seq: hb.Seq})
}

func (d *pdevice) ueArmFeedback(hb hbmsg.Heartbeat) {
	u := d.ue
	seq := hb.Seq
	task, err := d.agenda.After(hb.Expiry+device.FeedbackGrace, func() { d.ueOnFeedbackTimeout(seq) })
	if err != nil {
		u.stats.SendErrors++
		return
	}
	u.pending[seq] = &ppending{hb: hb, task: task}
}

func (d *pdevice) ueCancelFeedback(seq uint64) {
	u := d.ue
	p, ok := u.pending[seq]
	if !ok {
		return
	}
	d.agenda.Cancel(p.task)
	delete(u.pending, seq)
}

func (d *pdevice) ueOnFeedbackTimeout(seq uint64) {
	u := d.ue
	p, ok := u.pending[seq]
	if !ok {
		return
	}
	delete(u.pending, seq)
	u.stats.FallbackResends++
	d.emit(trace.Event{Kind: trace.KindFallback, App: p.hb.App, Seq: seq})
	d.cellularSend([]hbmsg.Heartbeat{p.hb}, energy.PhaseFallback)
	// The relay evidently failed us; rematch on the next heartbeat.
	u.relayOrder = -1
}

// ueOnAck applies a feedback acknowledgement op.
func (d *pdevice) ueOnAck(op parOp) {
	u := d.ue
	if op.ref.Src != d.id {
		return
	}
	p, ok := u.pending[op.ref.Seq]
	if !ok {
		return
	}
	d.agenda.Cancel(p.task)
	delete(u.pending, op.ref.Seq)
	u.stats.AcksReceived++
	d.emit(trace.Event{Kind: trace.KindAck, App: p.hb.App, Seq: op.ref.Seq})
}

// ---------------------------------------------------------------------------
// Relay side

// relayStartPeriod opens a new collection window, the windowed analogue of
// device.Relay.startPeriod. Advertised state needs no explicit publication:
// the boundary snapshot samples it.
func (d *pdevice) relayStartPeriod() {
	r := d.relay
	r.started = true
	// Drain the previous window first, as in the sequential relay.
	d.relayFlush()
	now := d.now()
	r.seq++
	r.ownHB = d.env.profile.Heartbeat(d.id, r.seq, now)
	r.stats.OwnHeartbeats++
	r.policy.StartPeriod(now)
	if _, err := d.agenda.After(d.env.profile.Period, d.relayStartPeriod); err != nil {
		r.stats.SendErrors++
	}
	d.relayRearmFlush()
}

// relayOnConnect applies a group-formation op: the responder's discovery
// and connection phases, billed at formation as in d2d.Connect.
func (d *pdevice) relayOnConnect(parOp) {
	d.ledger.Add(energy.PhaseDiscovery, d.env.model.RelayDiscovery)
	d.ledger.Add(energy.PhaseConnection, d.env.model.RelayConnection)
}

// relayOnForward applies one forwarded heartbeat op.
func (d *pdevice) relayOnForward(op parOp) {
	r := d.relay
	// The receive energy is charged before the policy decision, as the
	// sequential link charges the receiver before invoking its handler.
	d.ledger.Add(energy.PhaseD2DRecv, op.charge)
	now := d.now()
	flushNow, err := r.policy.Collect(op.hb, now)
	switch {
	case errors.Is(err, sched.ErrClosed):
		r.stats.RejectedClosed++
		d.emit(trace.Event{Kind: trace.KindReject, App: op.hb.App, Seq: op.hb.Seq,
			Peer: string(op.hb.Src), Reason: "closed"})
		return
	case errors.Is(err, sched.ErrExpired):
		r.stats.RejectedExpired++
		d.emit(trace.Event{Kind: trace.KindReject, App: op.hb.App, Seq: op.hb.Seq,
			Peer: string(op.hb.Src), Reason: "expired"})
		return
	case err != nil:
		r.stats.SendErrors++
		return
	}
	r.stats.Collected++
	d.emit(trace.Event{Kind: trace.KindCollect, App: op.hb.App, Seq: op.hb.Seq,
		Peer: string(op.hb.Src)})
	r.sources[ackKey{src: op.hb.Src, seq: op.hb.Seq}] = op.src
	if flushNow {
		d.relayFlush()
		return
	}
	d.relayRearmFlush()
}

func (d *pdevice) relayRearmFlush() {
	r := d.relay
	if r.flushTask != nil {
		d.agenda.Cancel(r.flushTask)
		r.flushTask = nil
	}
	at, ok := r.policy.Deadline()
	if !ok {
		return
	}
	task, err := d.agenda.At(at, func() {
		r.flushTask = nil
		d.relayFlush()
	})
	if err != nil {
		// Deadline already passed (boundary ops raced it): flush now.
		d.relayFlush()
		return
	}
	r.flushTask = task
}

// relayFlush transmits the batch plus the relay's own heartbeat in one
// cellular connection, then queues feedback acks.
func (d *pdevice) relayFlush() {
	r := d.relay
	if r.flushTask != nil {
		d.agenda.Cancel(r.flushTask)
		r.flushTask = nil
	}
	now := d.now()
	batch := r.policy.Flush(now)
	full := make([]hbmsg.Heartbeat, 0, len(batch)+1)
	full = append(full, batch...)
	if r.ownHB.Src != "" {
		full = append(full, r.ownHB)
		r.ownHB = hbmsg.Heartbeat{}
	}
	if len(full) == 0 {
		return
	}
	d.cellularSend(full, energy.PhaseCellular)
	r.stats.Flushes++
	reason := r.policy.LastFlushReason()
	d.emit(trace.Event{Kind: trace.KindFlush, N: len(full), Reason: reason.String()})
	switch reason {
	case sched.ReasonCapacity:
		r.stats.FlushesByCapacity++
	case sched.ReasonDeadline:
		r.stats.FlushesByDeadline++
	default:
		r.stats.FlushesByPeriodEnd++
	}
	r.stats.ForwardedSent += len(batch)
	r.stats.Credits += len(batch)
	d.relayAckBatch(batch, now)
}

// relayAckBatch queues feedback acks in batch order. The ack transfer is
// judged against the relay's live position and the source's snapshot —
// range and loss draw from the relay's own stream. Unlike the sequential
// kernel there is no shared link whose closure could fail the send, so
// AckFailures counts only range and loss.
func (d *pdevice) relayAckBatch(batch []hbmsg.Heartbeat, now time.Duration) {
	r := d.relay
	pos := d.pos(now)
	for _, hb := range batch {
		key := ackKey{src: hb.Src, seq: hb.Seq}
		srcOrder, ok := r.sources[key]
		if !ok {
			continue
		}
		delete(r.sources, key)
		dist := pos.Dist(d.env.posSnap[srcOrder])
		if !d.env.radio.InRange(dist) || !d.env.radio.TransferOK(dist, d.rng) {
			r.stats.AckFailures++
			continue
		}
		d.sendOp(parOp{dst: srcOrder, kind: opAck, ref: d2d.AckRef{Src: hb.Src, Seq: hb.Seq}})
		r.stats.AcksSent++
	}
}

// applyOp dispatches one inbound boundary op on the destination device.
func (d *pdevice) applyOp(op parOp) {
	switch op.kind {
	case opConnect:
		d.relayOnConnect(op)
	case opForward:
		d.relayOnForward(op)
	case opAck:
		d.ueOnAck(op)
	}
}
