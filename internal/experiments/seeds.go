package experiments

import (
	"fmt"
	"math"

	"d2dhb/internal/metrics"
	"d2dhb/internal/sched"
)

// SeedStats summarizes one headline metric across seeds.
type SeedStats struct {
	Mean, Min, Max, StdDev float64
}

func seedStats(vals []float64) SeedStats {
	if len(vals) == 0 {
		return SeedStats{}
	}
	s := SeedStats{Min: vals[0], Max: vals[0]}
	for _, v := range vals {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(vals))
	var ss float64
	for _, v := range vals {
		ss += (v - s.Mean) * (v - s.Mean)
	}
	s.StdDev = math.Sqrt(ss / float64(len(vals)))
	return s
}

// SeedRobustness reruns the two headline measurements (first-period UE
// saving; k=7 system saving) across n seeds and reports their spread. The
// only stochastic element in the pair scenario is RSSI shadowing during
// discovery, so the spread should be tight — a wide spread would mean the
// headline numbers are artifacts of one lucky seed.
type SeedRobustness struct {
	Seeds          int
	UESavingK1     SeedStats
	SystemSavingK7 SeedStats
	PairSaving     SeedStats
	Table          *metrics.Table
}

// SeedSweep measures headline metrics across n consecutive seeds starting
// at seed0.
func SeedSweep(seed0 int64, n int) (*SeedRobustness, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 seeds, got %d", n)
	}
	var ueK1, sysK7, pair []float64
	for i := 0; i < n; i++ {
		seed := seed0 + int64(i)
		curves, err := EnergyVsTransmissions(seed, 7)
		if err != nil {
			return nil, err
		}
		ueK1 = append(ueK1, curves.SavedUEPct[1]*100)
		sysK7 = append(sysK7, curves.SavedSystemPct[7]*100)

		rep, err := runPair(seed, stdProfile(), 10, 1, 1, 8, sched.KindNagle)
		if err != nil {
			return nil, err
		}
		relay, ok := rep.Device("relay")
		if !ok {
			return nil, fmt.Errorf("experiments: relay missing")
		}
		origRep, err := runOriginalDevice(seed, stdProfile(), 10)
		if err != nil {
			return nil, err
		}
		orig, _ := origRep.Device("orig")
		saving := 1 - float64(relay.RRC.L3Messages)/(2*float64(orig.RRC.L3Messages))
		pair = append(pair, saving*100)
	}
	res := &SeedRobustness{
		Seeds:          n,
		UESavingK1:     seedStats(ueK1),
		SystemSavingK7: seedStats(sysK7),
		PairSaving:     seedStats(pair),
	}
	t := metrics.NewTable(
		fmt.Sprintf("Headline robustness across %d seeds", n),
		"metric", "mean", "min", "max", "stddev")
	addRow := func(name string, s SeedStats) {
		t.AddRow(name, metrics.F(s.Mean), metrics.F(s.Min), metrics.F(s.Max), metrics.F(s.StdDev))
	}
	addRow("UE saving k=1 (%)", res.UESavingK1)
	addRow("system saving k=7 (%)", res.SystemSavingK7)
	addRow("pair signaling saving (%)", res.PairSaving)
	res.Table = t
	return res, nil
}
