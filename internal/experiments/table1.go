package experiments

import (
	"math/rand"
	"time"

	"d2dhb/internal/hbmsg"
	"d2dhb/internal/metrics"
)

// Table1Row compares one app's generated heartbeat share against Table I.
type Table1Row struct {
	App      string
	Paper    float64 // heartbeat share reported in Table I
	Measured float64 // share in the generated traffic
	AbsErr   float64
}

// Table1Result reproduces Table I: the proportion of heartbeats in the
// total message count of popular IM apps.
type Table1Result struct {
	Rows  []Table1Row
	Table *metrics.Table
}

// Table1 generates one week of traffic per app profile and measures the
// heartbeat share.
func Table1(seed int64) (*Table1Result, error) {
	const horizon = 7 * 24 * time.Hour
	rng := rand.New(rand.NewSource(seed))
	res := &Table1Result{
		Table: metrics.NewTable(
			"Table I: proportion of heartbeats in popular apps",
			"App", "Paper", "Measured", "AbsErr"),
	}
	for _, p := range hbmsg.Apps() {
		counts, err := p.GenerateTraffic(horizon, rng)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			App:      p.Name,
			Paper:    p.HeartbeatShare,
			Measured: counts.HeartbeatShare(),
		}
		row.AbsErr = p.ExpectedShareError(counts)
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(p.Name, metrics.Pct(row.Paper), metrics.Pct(row.Measured), metrics.Pct(row.AbsErr))
	}
	return res, nil
}
