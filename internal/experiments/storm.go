package experiments

import (
	"fmt"

	"d2dhb/internal/cellular"
	"d2dhb/internal/core"
	"d2dhb/internal/metrics"
)

// StormRow summarizes one crowd density under both systems.
type StormRow struct {
	UEs int
	// PeakUtilOriginal / PeakUtilScheme are the busiest window's control-
	// channel load as a fraction of capacity (>1 means overload).
	PeakUtilOriginal float64
	PeakUtilScheme   float64
	// OverloadedOriginal / OverloadedScheme count overloaded windows.
	OverloadedOriginal int
	OverloadedScheme   int
}

// StormSweep reproduces the paper's operator-side motivation (Sections I
// and II-B): as crowd density grows, heartbeat signaling overloads the
// cell's control channel in the original system, while the D2D relaying
// scheme keeps the load within capacity substantially longer. Densities are
// swept at a fixed relay population over a fixed area.
func StormSweep(seed int64) ([]StormRow, *metrics.Table, error) {
	const (
		numRelays = 8
		side      = 100.0
		periods   = 3
	)
	profile := stdProfile()
	channel := cellular.DefaultChannelConfig()

	var rows []StormRow
	t := metrics.NewTable(
		"Signaling storm: peak control-channel utilization vs crowd density",
		"UEs", "orig peak util", "scheme peak util", "orig overloaded", "scheme overloaded")
	for _, n := range []int{25, 50, 100, 200} {
		run := func(disableD2D bool) (*core.Report, error) {
			opts := core.Options{
				Seed:       seed,
				Duration:   periods * profile.Period,
				DisableD2D: disableD2D,
				Channel:    &channel,
			}
			sim, err := core.CrowdScenario(opts, profile, numRelays, n, side, 32)
			if err != nil {
				return nil, err
			}
			return sim.Run()
		}
		origRep, err := run(true)
		if err != nil {
			return nil, nil, err
		}
		schemeRep, err := run(false)
		if err != nil {
			return nil, nil, err
		}
		row := StormRow{
			UEs:                n,
			PeakUtilOriginal:   origRep.Channel.PeakUtilization(channel),
			PeakUtilScheme:     schemeRep.Channel.PeakUtilization(channel),
			OverloadedOriginal: origRep.Channel.OverloadedWindows,
			OverloadedScheme:   schemeRep.Channel.OverloadedWindows,
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%d", n),
			metrics.Pct(row.PeakUtilOriginal), metrics.Pct(row.PeakUtilScheme),
			fmt.Sprintf("%d", row.OverloadedOriginal), fmt.Sprintf("%d", row.OverloadedScheme))
	}
	return rows, t, nil
}
