package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"d2dhb/internal/core"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
)

// CityConfig parameterizes the city-scale macro-scenario: a large mixed
// crowd — static phones, pedestrians and vehicle passengers — exchanging
// heartbeats through volunteer relays over a full simulated interval. It is
// the framework's capacity benchmark: every layer (event kernel, discovery
// grid, matching, scheduling, RRC, energy accounting) runs at population
// scale.
type CityConfig struct {
	Seed    int64
	Devices int // total population, relays included
	// RelayFraction is the share of the population volunteering as relays.
	RelayFraction float64
	// Side is the square deployment area edge in meters. The default keeps
	// roughly one device per 100 m² — a dense urban district.
	Side     float64
	Duration time.Duration
	// Capacity is each relay's per-period collection capacity.
	Capacity int
	// DisableD2D runs the same population as the paper's original system
	// (every device on its own cellular connection) for baseline
	// comparisons.
	DisableD2D bool
}

// CityShort is the CI preset: 10k devices for two heartbeat periods.
func CityShort() CityConfig {
	return CityConfig{
		Seed:          DefaultSeed,
		Devices:       10_000,
		RelayFraction: 0.10,
		Side:          1000,
		Duration:      2*stdProfile().Period + 30*time.Second,
		Capacity:      16,
	}
}

// CityDay is the headline run: 10k devices for 24 simulated hours, the
// "city day in wall-clock minutes" figure in EXPERIMENTS.md.
func CityDay() CityConfig {
	cfg := CityShort()
	cfg.Duration = 24 * time.Hour
	return cfg
}

func (c CityConfig) validate() error {
	if c.Devices <= 0 {
		return fmt.Errorf("experiments: city devices must be positive, got %d", c.Devices)
	}
	if c.RelayFraction <= 0 || c.RelayFraction >= 1 {
		return fmt.Errorf("experiments: relay fraction must be in (0,1), got %v", c.RelayFraction)
	}
	if c.Side <= 0 {
		return fmt.Errorf("experiments: city side must be positive, got %v", c.Side)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("experiments: city duration must be positive, got %v", c.Duration)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("experiments: relay capacity must be positive, got %v", c.Capacity)
	}
	return nil
}

// cityRelayCount is the relay headcount the population rules imply.
func cityRelayCount(cfg CityConfig) int {
	n := int(float64(cfg.Devices) * cfg.RelayFraction)
	if n < 1 {
		n = 1
	}
	return n
}

// cityPopulation is the device roster of a city scenario, in stable
// population order: relays first, then UEs.
type cityPopulation struct {
	relays []core.RelaySpec
	ues    []core.UESpec
}

// buildCityPopulation draws the city roster from rng. The draw sequence
// is the contract here: the sequential kernel passes its scheduler RNG
// (preserving PR 5's golden digests), the parallel kernel passes a fresh
// rand.New(rand.NewSource(cfg.Seed)) — either way the same rng state
// yields a bit-identical roster.
func buildCityPopulation(cfg CityConfig, rng *rand.Rand) (cityPopulation, error) {
	profile := stdProfile()
	area := geo.Square(cfg.Side)
	offset := func() time.Duration {
		return time.Duration(rng.Int63n(int64(profile.Period)))
	}
	walker := func(p geo.Point, minV, maxV float64, pause time.Duration, seed int64) (geo.Mobility, error) {
		return geo.NewRandomWaypoint(area, p, minV, maxV, pause, seed)
	}

	var pop cityPopulation
	numRelays := cityRelayCount(cfg)
	for i := 0; i < numRelays; i++ {
		p := area.RandomPoint(rng)
		mob := geo.Mobility(geo.Static{P: p})
		if i%5 == 4 {
			w, err := walker(p, 0.5, 1.5, 30*time.Second, cfg.Seed+int64(i))
			if err != nil {
				return cityPopulation{}, err
			}
			mob = w
		}
		pop.relays = append(pop.relays, core.RelaySpec{
			ID:          hbmsg.DeviceID(fmt.Sprintf("relay-%05d", i)),
			Profile:     profile,
			Mobility:    mob,
			Capacity:    cfg.Capacity,
			StartOffset: offset(),
		})
	}
	numUEs := cfg.Devices - numRelays
	for i := 0; i < numUEs; i++ {
		p := area.RandomPoint(rng)
		var mob geo.Mobility
		switch {
		case i%20 == 19: // 5 %: vehicle passenger
			w, err := walker(p, 8, 15, 0, cfg.Seed+int64(numRelays+i))
			if err != nil {
				return cityPopulation{}, err
			}
			mob = w
		case i%10 == 9: // 10 %: loiterer circling a spot
			mob = geo.Orbit{Center: p, Radius: 5 + 10*rng.Float64(), Omega: 0.05, Phase: float64(i)}
		case i%4 != 0: // 60 %: static
			mob = geo.Static{P: p}
		default: // 25 %: pedestrian
			w, err := walker(p, 0.5, 2.0, 20*time.Second, cfg.Seed+int64(numRelays+i))
			if err != nil {
				return cityPopulation{}, err
			}
			mob = w
		}
		pop.ues = append(pop.ues, core.UESpec{
			ID:          hbmsg.DeviceID(fmt.Sprintf("ue-%05d", i)),
			Profile:     profile,
			Mobility:    mob,
			StartOffset: offset(),
		})
	}
	return pop, nil
}

// CityScenario builds the configured city. The population mixes mobility
// classes deterministically: among UEs, 60 % sit still, 25 % walk
// (0.5–2 m/s with pauses), 10 % loiter on short orbits and 5 % ride in
// vehicles (8–15 m/s); relays are 80 % parked and 20 % walking.
func CityScenario(cfg CityConfig) (*core.Simulation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sim, err := core.New(core.Options{Seed: cfg.Seed, Duration: cfg.Duration, DisableD2D: cfg.DisableD2D})
	if err != nil {
		return nil, err
	}
	pop, err := buildCityPopulation(cfg, sim.Scheduler().Rand())
	if err != nil {
		return nil, err
	}
	for i := range pop.relays {
		if _, err := sim.AddRelay(pop.relays[i]); err != nil {
			return nil, err
		}
	}
	for i := range pop.ues {
		if _, err := sim.AddUE(pop.ues[i]); err != nil {
			return nil, err
		}
	}
	return sim, nil
}

// CityStats summarizes a city run for the benchmark harness. Wall-clock
// timing is the caller's concern (the simulation layer deals only in virtual
// time); Events lets it derive events/sec and ns/event.
type CityStats struct {
	Devices    int
	Relays     int
	UEs        int
	Events     uint64 // kernel events fired
	SimSeconds float64
	L3Messages int
	Deliveries int
	OnTimeRate float64
}

// RunCity builds and runs the configured city, returning the full report
// plus the kernel-level stats the bench harness records.
func RunCity(cfg CityConfig) (*core.Report, CityStats, error) {
	sim, err := CityScenario(cfg)
	if err != nil {
		return nil, CityStats{}, err
	}
	rep, err := sim.Run()
	if err != nil {
		return nil, CityStats{}, err
	}
	numRelays := int(float64(cfg.Devices) * cfg.RelayFraction)
	if numRelays < 1 {
		numRelays = 1
	}
	return rep, CityStats{
		Devices:    cfg.Devices,
		Relays:     numRelays,
		UEs:        cfg.Devices - numRelays,
		Events:     sim.Scheduler().Fired(),
		SimSeconds: cfg.Duration.Seconds(),
		L3Messages: rep.TotalL3Messages,
		Deliveries: rep.Deliveries,
		OnTimeRate: rep.OnTimeRate(),
	}, nil
}
