package experiments

import (
	"fmt"
	"time"

	"d2dhb/internal/core"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/metrics"
)

// ExtensionResult measures the framework applied to all of a device's
// periodic traffic — heartbeats plus the diagnostics and advertisement
// refreshes the paper's conclusion proposes as further candidates.
type ExtensionResult struct {
	// HeartbeatsOnlySaving is the pair's L3 saving when only the IM
	// heartbeat is relayed.
	HeartbeatsOnlySaving float64
	// AllPeriodicSaving is the saving when diagnostics and ad refreshes
	// ride the relay too.
	AllPeriodicSaving float64
	// OnTimeRate is the delivery punctuality with everything relayed.
	OnTimeRate float64
	Table      *metrics.Table
}

// PeriodicExtension runs one relay + two UEs for two hours, first relaying
// only WeChat heartbeats, then also the devices' diagnostics and ad-refresh
// pings ("Our framework could be further applied in other periodic
// message[s], such as advertisements and diagnostic messages").
func PeriodicExtension(seed int64) (*ExtensionResult, error) {
	const horizon = 2 * time.Hour
	extras := []hbmsg.AppProfile{hbmsg.Diagnostics(), hbmsg.AdRefresh()}

	run := func(relayExtras bool, disableD2D bool) (*core.Report, error) {
		opts := core.Options{Seed: seed, Duration: horizon, DisableD2D: disableD2D}
		sim, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		if _, err := sim.AddRelay(core.RelaySpec{
			ID: "relay", Profile: hbmsg.StandardHeartbeat(), Capacity: 16,
		}); err != nil {
			return nil, err
		}
		for i := 0; i < 2; i++ {
			spec := core.UESpec{
				ID:          hbmsg.DeviceID(fmt.Sprintf("ue-%02d", i+1)),
				Profile:     hbmsg.WeChat(),
				Mobility:    geo.Orbit{Radius: 1, Phase: float64(i)},
				StartOffset: 20*time.Second + time.Duration(i)*40*time.Second,
			}
			if relayExtras {
				spec.ExtraProfiles = extras
			}
			if _, err := sim.AddUE(spec); err != nil {
				return nil, err
			}
		}
		if !relayExtras && !disableD2D {
			// The extras still run — directly over cellular, outside the
			// framework — so the comparison covers identical traffic.
			for i := 0; i < 2; i++ {
				if _, err := sim.AddUE(core.UESpec{
					ID:            hbmsg.DeviceID(fmt.Sprintf("bg-%02d", i+1)),
					Profile:       extras[0],
					ExtraProfiles: extras[1:],
					Mobility:      geo.Static{P: geo.Point{X: 500}}, // out of D2D range
					StartOffset:   25*time.Second + time.Duration(i)*40*time.Second,
				}); err != nil {
					return nil, err
				}
			}
		}
		if disableD2D {
			// Baseline carries all periodic traffic directly.
			for i := 0; i < 2; i++ {
				if _, err := sim.AddUE(core.UESpec{
					ID:            hbmsg.DeviceID(fmt.Sprintf("bg-%02d", i+1)),
					Profile:       extras[0],
					ExtraProfiles: extras[1:],
					Mobility:      geo.Static{P: geo.Point{X: 500}},
					StartOffset:   25*time.Second + time.Duration(i)*40*time.Second,
				}); err != nil {
					return nil, err
				}
			}
		}
		return sim.Run()
	}

	base, err := run(false, true)
	if err != nil {
		return nil, err
	}
	hbOnly, err := run(false, false)
	if err != nil {
		return nil, err
	}
	all, err := run(true, false)
	if err != nil {
		return nil, err
	}

	res := &ExtensionResult{
		HeartbeatsOnlySaving: 1 - float64(hbOnly.TotalL3Messages)/float64(base.TotalL3Messages),
		AllPeriodicSaving:    1 - float64(all.TotalL3Messages)/float64(base.TotalL3Messages),
		OnTimeRate:           all.OnTimeRate(),
	}
	t := metrics.NewTable(
		"Extension: relaying all periodic traffic (2 UEs, 2 h)",
		"configuration", "L3 msgs", "saving")
	t.AddRow("original (everything cellular)", fmt.Sprintf("%d", base.TotalL3Messages), "-")
	t.AddRow("heartbeats relayed", fmt.Sprintf("%d", hbOnly.TotalL3Messages),
		metrics.Pct(res.HeartbeatsOnlySaving))
	t.AddRow("heartbeats + diagnostics + ads relayed", fmt.Sprintf("%d", all.TotalL3Messages),
		metrics.Pct(res.AllPeriodicSaving))
	res.Table = t
	return res, nil
}
