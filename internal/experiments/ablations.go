package experiments

import (
	"fmt"
	"time"

	"d2dhb/internal/core"
	"d2dhb/internal/device"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/matching"
	"d2dhb/internal/metrics"
	"d2dhb/internal/radio"
	"d2dhb/internal/sched"
)

// PolicyAblationRow summarizes one scheduling policy's behaviour.
type PolicyAblationRow struct {
	Policy          sched.Kind
	L3Messages      int
	TotalEnergy     float64
	OnTimeRate      float64
	FallbackResends int
}

// PolicyAblation compares Algorithm 1 against the baseline policies on a
// relay serving three UEs whose heartbeats expire well before the relay's
// period end — the regime where ignoring T_k (fixed delay, period aligned)
// delivers late, and ignoring batching (immediate) wastes signaling.
func PolicyAblation(seed int64) ([]PolicyAblationRow, *metrics.Table, error) {
	profile := stdProfile()
	ueProfile := stdProfile()
	ueProfile.ExpiryFactor = 0.3 // T_k = 81 s ≪ relay period 270 s

	kinds := []sched.Kind{
		sched.KindNagle, sched.KindImmediate, sched.KindFixedDelay, sched.KindPeriodAligned,
	}
	var rows []PolicyAblationRow
	t := metrics.NewTable("Ablation: scheduling policies (3 UEs, tight expiries, 6 periods)",
		"policy", "L3 msgs", "energy (µAh)", "on-time", "fallbacks")
	for _, kind := range kinds {
		opts := core.Options{
			Seed:       seed,
			Duration:   6 * profile.Period,
			Policy:     kind,
			FixedDelay: 120 * time.Second, // > T_k: the fixed delay misses deadlines
		}
		sim, err := core.New(opts)
		if err != nil {
			return nil, nil, err
		}
		if _, err := sim.AddRelay(core.RelaySpec{ID: "relay", Profile: profile, Capacity: 8}); err != nil {
			return nil, nil, err
		}
		ues := make([]*device.UE, 0, 3)
		for i := 0; i < 3; i++ {
			ue, err := sim.AddUE(core.UESpec{
				ID:       hbmsg.DeviceID(fmt.Sprintf("ue-%02d", i+1)),
				Profile:  ueProfile,
				Mobility: geo.Orbit{Radius: 1, Phase: float64(i)},
				// Spaced well beyond the RRC tail (so the immediate policy
				// cannot piggyback connections) but within the 81 s expiry
				// window (so Algorithm 1 can still batch all three).
				StartOffset: time.Duration(20+30*i) * time.Second,
			})
			if err != nil {
				return nil, nil, err
			}
			ues = append(ues, ue)
		}
		rep, err := sim.Run()
		if err != nil {
			return nil, nil, err
		}
		fallbacks := 0
		for _, ue := range ues {
			fallbacks += ue.Stats().FallbackResends
		}
		row := PolicyAblationRow{
			Policy:          kind,
			L3Messages:      rep.TotalL3Messages,
			TotalEnergy:     float64(rep.TotalEnergy()),
			OnTimeRate:      rep.OnTimeRate(),
			FallbackResends: fallbacks,
		}
		rows = append(rows, row)
		t.AddRow(kind.String(), fmt.Sprintf("%d", row.L3Messages),
			metrics.F(row.TotalEnergy), metrics.Pct(row.OnTimeRate),
			fmt.Sprintf("%d", row.FallbackResends))
	}
	return rows, t, nil
}

// TechniqueAblationRow summarizes one D2D technique at one distance.
type TechniqueAblationRow struct {
	Technique  radio.Technique
	Distance   float64
	Matched    bool
	L3Messages int
	UEEnergy   float64
}

// TechniqueAblation contrasts Wi-Fi Direct with Bluetooth (Section IV-A):
// at 12 m, Bluetooth's ~10 m range forces the UE back onto cellular while
// Wi-Fi Direct keeps forwarding.
func TechniqueAblation(seed int64) ([]TechniqueAblationRow, *metrics.Table, error) {
	const k = 6
	var rows []TechniqueAblationRow
	t := metrics.NewTable("Ablation: D2D technique (1 UE, 6 periods)",
		"technique", "distance (m)", "matched", "L3 msgs", "UE energy (µAh)")
	for _, tech := range []radio.Technique{radio.WiFiDirect, radio.Bluetooth} {
		for _, d := range []float64{2, 12} {
			opts := core.Options{
				Seed:      seed,
				Duration:  k * stdProfile().Period,
				Technique: tech,
			}
			sim, err := core.PairScenario(opts, stdProfile(), 1, d, 8)
			if err != nil {
				return nil, nil, err
			}
			rep, err := sim.Run()
			if err != nil {
				return nil, nil, err
			}
			ue, ok := rep.Device("ue-01")
			if !ok || ue.UE == nil {
				return nil, nil, fmt.Errorf("experiments: ue-01 missing")
			}
			row := TechniqueAblationRow{
				Technique:  tech,
				Distance:   d,
				Matched:    ue.UE.Matches > 0,
				L3Messages: rep.TotalL3Messages,
				UEEnergy:   float64(ue.Total),
			}
			rows = append(rows, row)
			t.AddRow(tech.String(), metrics.F(d), fmt.Sprintf("%v", row.Matched),
				fmt.Sprintf("%d", row.L3Messages), metrics.F(row.UEEnergy))
		}
	}
	return rows, t, nil
}

// PrejudgmentAblationRow summarizes the matcher with or without the
// distance prejudgment against a far, loss-prone relay.
type PrejudgmentAblationRow struct {
	Prejudgment     bool
	UEEnergy        float64
	LateDeliveries  int
	FallbackResends int
	D2DSendFailures int
}

// PrejudgmentAblation places the only relay at 33 m — inside Wi-Fi Direct
// radio range but deep in the loss zone and far beyond the 15 m
// prejudgment bound. With prejudgment the UE goes straight to cellular;
// without it the UE pays for lossy D2D attempts and duplicate fallbacks.
func PrejudgmentAblation(seed int64) ([]PrejudgmentAblationRow, *metrics.Table, error) {
	const k = 10
	var rows []PrejudgmentAblationRow
	t := metrics.NewTable("Ablation: matching prejudgment (relay at 33 m, 10 periods)",
		"prejudgment", "UE energy (µAh)", "late", "fallbacks", "d2d failures")
	for _, pre := range []bool{true, false} {
		match := matching.DefaultConfig()
		match.Prejudgment = pre
		opts := core.Options{
			Seed:     seed,
			Duration: k * stdProfile().Period,
			Match:    &match,
		}
		sim, err := core.PairScenario(opts, stdProfile(), 1, 33, 8)
		if err != nil {
			return nil, nil, err
		}
		rep, err := sim.Run()
		if err != nil {
			return nil, nil, err
		}
		ue, ok := rep.Device("ue-01")
		if !ok || ue.UE == nil {
			return nil, nil, fmt.Errorf("experiments: ue-01 missing")
		}
		row := PrejudgmentAblationRow{
			Prejudgment:     pre,
			UEEnergy:        float64(ue.Total),
			LateDeliveries:  rep.LateDeliveries,
			FallbackResends: ue.UE.FallbackResends,
			D2DSendFailures: ue.UE.D2DSendFailures,
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%v", pre), metrics.F(row.UEEnergy),
			fmt.Sprintf("%d", row.LateDeliveries),
			fmt.Sprintf("%d", row.FallbackResends),
			fmt.Sprintf("%d", row.D2DSendFailures))
	}
	return rows, t, nil
}

// FeedbackAblationRow summarizes delivery robustness with and without the
// feedback mechanism when the relay dies mid-run.
type FeedbackAblationRow struct {
	FeedbackEnabled bool
	Generated       int
	Delivered       int
	FallbackResends int
}

// FeedbackAblation kills the relay shortly after the first collection and
// compares the feedback/fallback mechanism against a UE that never times
// out: without feedback the forwarded heartbeats are silently lost.
func FeedbackAblation(seed int64) ([]FeedbackAblationRow, *metrics.Table, error) {
	profile := stdProfile()
	var rows []FeedbackAblationRow
	t := metrics.NewTable("Ablation: feedback mechanism (relay dies at 20 s)",
		"feedback", "generated", "delivered", "fallbacks")
	for _, enabled := range []bool{true, false} {
		opts := core.Options{
			Seed:     seed,
			Duration: 4 * profile.Period,
		}
		if !enabled {
			opts.FeedbackTimeout = 1000 * time.Hour // never fires in-horizon
		}
		sim, err := core.New(opts)
		if err != nil {
			return nil, nil, err
		}
		relay, err := sim.AddRelay(core.RelaySpec{ID: "relay", Profile: profile, Capacity: 8})
		if err != nil {
			return nil, nil, err
		}
		ue, err := sim.AddUE(core.UESpec{
			ID:          "ue-01",
			Profile:     profile,
			Mobility:    geo.Static{P: geo.Point{X: 1}},
			StartOffset: 10 * time.Second,
		})
		if err != nil {
			return nil, nil, err
		}
		if _, err := sim.Scheduler().At(20*time.Second, relay.Stop); err != nil {
			return nil, nil, err
		}
		rep, err := sim.Run()
		if err != nil {
			return nil, nil, err
		}
		st := ue.Stats()
		row := FeedbackAblationRow{
			FeedbackEnabled: enabled,
			Generated:       st.Generated,
			Delivered:       rep.Deliveries,
			FallbackResends: st.FallbackResends,
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%v", enabled), fmt.Sprintf("%d", row.Generated),
			fmt.Sprintf("%d", row.Delivered), fmt.Sprintf("%d", row.FallbackResends))
	}
	return rows, t, nil
}

// CoverageAblationRow summarizes one technique's crowd coverage.
type CoverageAblationRow struct {
	Technique  radio.Technique
	MatchedUEs int
	TotalUEs   int
	Forwarded  int
	L3Saving   float64
}

// CoverageAblation measures how much of a sparse crowd each D2D technique
// can serve: 2 relays and 40 UEs over a 300 m square, matching prejudgment
// disabled so radio range alone bounds coverage. Bluetooth (~10 m) reaches
// almost nobody, Wi-Fi Direct (~37 m) a slice, and LTE Direct (~500 m,
// Section II-C) the whole crowd — the paper's argument that the framework
// "would be friendlier to users with the development of D2D technology".
func CoverageAblation(seed int64) ([]CoverageAblationRow, *metrics.Table, error) {
	const (
		numRelays = 2
		numUEs    = 40
		side      = 300.0
		periods   = 3
	)
	profile := stdProfile()
	match := matching.DefaultConfig()
	match.Prejudgment = false

	baseOpts := core.Options{
		Seed:       seed,
		Duration:   periods * profile.Period,
		Match:      &match,
		DisableD2D: true,
	}
	baseline, err := core.CrowdScenario(baseOpts, profile, numRelays, numUEs, side, 64)
	if err != nil {
		return nil, nil, err
	}
	baseRep, err := baseline.Run()
	if err != nil {
		return nil, nil, err
	}

	var rows []CoverageAblationRow
	t := metrics.NewTable(
		"Ablation: D2D technique coverage (2 relays, 40 UEs, 300 m square)",
		"technique", "matched UEs", "forwarded", "L3 saving")
	for _, tech := range []radio.Technique{radio.Bluetooth, radio.WiFiDirect, radio.LTEDirect} {
		opts := core.Options{
			Seed:      seed,
			Duration:  periods * profile.Period,
			Match:     &match,
			Technique: tech,
		}
		sim, err := core.CrowdScenario(opts, profile, numRelays, numUEs, side, 64)
		if err != nil {
			return nil, nil, err
		}
		rep, err := sim.Run()
		if err != nil {
			return nil, nil, err
		}
		row := CoverageAblationRow{Technique: tech, TotalUEs: numUEs}
		for _, d := range rep.Devices {
			if d.UE == nil {
				continue
			}
			if d.UE.Matches > 0 {
				row.MatchedUEs++
			}
			row.Forwarded += d.UE.SentViaD2D
		}
		row.L3Saving = 1 - float64(rep.TotalL3Messages)/float64(baseRep.TotalL3Messages)
		rows = append(rows, row)
		t.AddRow(tech.String(), fmt.Sprintf("%d/%d", row.MatchedUEs, row.TotalUEs),
			fmt.Sprintf("%d", row.Forwarded), metrics.Pct(row.L3Saving))
	}
	return rows, t, nil
}

// CapacityAblationRow summarizes one relay capacity setting.
type CapacityAblationRow struct {
	Capacity      int
	L3Messages    int
	Flushes       int
	ForwardedSent int
	TotalEnergy   float64
}

// CapacityAblation sweeps the collection capacity M with seven connected
// UEs: small M forces many small flushes (more signaling); the batching
// gain saturates once M exceeds the UE count.
func CapacityAblation(seed int64) ([]CapacityAblationRow, *metrics.Table, error) {
	const (
		k      = 4
		numUEs = 7
	)
	var rows []CapacityAblationRow
	t := metrics.NewTable("Ablation: relay capacity M (7 UEs, 4 periods)",
		"capacity", "L3 msgs", "flushes", "forwarded", "energy (µAh)")
	for _, capacity := range []int{1, 2, 4, 8, 16} {
		opts := core.Options{
			Seed:     seed,
			Duration: k * stdProfile().Period,
		}
		sim, err := core.PairScenario(opts, stdProfile(), numUEs, 1, capacity)
		if err != nil {
			return nil, nil, err
		}
		rep, err := sim.Run()
		if err != nil {
			return nil, nil, err
		}
		relay, ok := rep.Device("relay")
		if !ok || relay.Relay == nil {
			return nil, nil, fmt.Errorf("experiments: relay missing")
		}
		row := CapacityAblationRow{
			Capacity:      capacity,
			L3Messages:    rep.TotalL3Messages,
			Flushes:       relay.Relay.Flushes,
			ForwardedSent: relay.Relay.ForwardedSent,
			TotalEnergy:   float64(rep.TotalEnergy()),
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%d", capacity), fmt.Sprintf("%d", row.L3Messages),
			fmt.Sprintf("%d", row.Flushes), fmt.Sprintf("%d", row.ForwardedSent),
			metrics.F(row.TotalEnergy))
	}
	return rows, t, nil
}
