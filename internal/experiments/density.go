package experiments

import (
	"fmt"

	"d2dhb/internal/core"
	"d2dhb/internal/d2d"
	"d2dhb/internal/metrics"
)

// DensityRow summarizes the scheme's payoff at one relay density.
type DensityRow struct {
	Relays int
	// MatchedUEs is how many of the UEs found a relay at least once.
	MatchedUEs int
	// L3Saving and EnergySaving compare against the same crowd with D2D
	// disabled.
	L3Saving     float64
	EnergySaving float64
	UESaving     float64
}

// RelayDensitySweep measures how the framework's savings depend on relay
// participation: 80 UEs over a 100 m square for 10 periods, with 2..16
// volunteer relays. Sparse relay populations leave most UEs paying
// discovery costs for nothing; the savings grow with density — the
// operator's deployment lever for the incentive budget.
func RelayDensitySweep(seed int64) ([]DensityRow, *metrics.Table, error) {
	const (
		numUEs  = 80
		side    = 100.0
		periods = 10
	)
	profile := stdProfile()

	run := func(relays int, disable bool) (*core.Report, error) {
		opts := core.Options{
			Seed:       seed,
			Duration:   periods * profile.Period,
			DisableD2D: disable,
		}
		sim, err := core.CrowdScenario(opts, profile, relays, numUEs, side, 16)
		if err != nil {
			return nil, err
		}
		return sim.Run()
	}

	var rows []DensityRow
	t := metrics.NewTable(
		"Relay density sweep (80 UEs, 100 m square, 10 periods)",
		"relays", "matched UEs", "L3 saving", "energy saving", "UE energy saving")
	for _, relays := range []int{2, 4, 8, 16} {
		rep, err := run(relays, false)
		if err != nil {
			return nil, nil, err
		}
		base, err := run(relays, true)
		if err != nil {
			return nil, nil, err
		}
		row := DensityRow{Relays: relays}
		for _, d := range rep.Devices {
			if d.UE != nil && d.UE.Matches > 0 {
				row.MatchedUEs++
			}
		}
		row.L3Saving = 1 - float64(rep.TotalL3Messages)/float64(base.TotalL3Messages)
		row.EnergySaving = 1 - float64(rep.TotalEnergy())/float64(base.TotalEnergy())
		ueScheme := rep.EnergyByRole(d2d.RoleUE)
		ueBase := base.EnergyByRole(d2d.RoleUE)
		if ueBase > 0 {
			row.UESaving = 1 - float64(ueScheme)/float64(ueBase)
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%d", relays), fmt.Sprintf("%d/%d", row.MatchedUEs, numUEs),
			metrics.Pct(row.L3Saving), metrics.Pct(row.EnergySaving), metrics.Pct(row.UESaving))
	}
	return rows, t, nil
}
