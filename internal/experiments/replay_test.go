package experiments

import (
	"testing"
	"time"

	"d2dhb/internal/rec"
)

// replayFixture builds a mixed-path timeline: two direct clients, three
// relayed clients on one group, two trunked on another.
func replayFixture() *rec.Timeline {
	tl := &rec.Timeline{
		Seed:          2017,
		RelayPeriod:   30 * time.Second,
		RelayCapacity: 3,
		Clients: []rec.Client{
			{ID: "d0", App: "chat", Period: 60 * time.Second, Expiry: 30 * time.Second, Relay: -1},
			{ID: "d1", App: "push", Period: 60 * time.Second, Expiry: 30 * time.Second, Relay: -1},
			{ID: "r0", App: "chat", Period: 60 * time.Second, Expiry: 30 * time.Second, Path: rec.PathRelayed, Relay: 0},
			{ID: "r1", App: "chat", Period: 60 * time.Second, Expiry: 30 * time.Second, Path: rec.PathRelayed, Relay: 0},
			{ID: "r2", App: "chat", Period: 60 * time.Second, Expiry: 30 * time.Second, Path: rec.PathRelayed, Relay: 0},
			{ID: "t0", App: "iot", Period: 60 * time.Second, Expiry: 20 * time.Second, Path: rec.PathTrunked, Relay: 1},
			{ID: "t1", App: "iot", Period: 60 * time.Second, Expiry: 20 * time.Second, Path: rec.PathTrunked, Relay: 1},
		},
	}
	// Three periods of staggered sends.
	for p := 0; p < 3; p++ {
		base := time.Duration(p) * 60 * time.Second
		for i, off := range []time.Duration{0, 700 * time.Millisecond, 2 * time.Second,
			3 * time.Second, 9 * time.Second, 11 * time.Second, 12 * time.Second} {
			tl.Events = append(tl.Events, rec.Event{
				At:     base + off,
				Kind:   rec.EvSend,
				Client: i,
				Seq:    uint64(p + 1),
			})
		}
	}
	return tl
}

func TestReplaySimDeterministic(t *testing.T) {
	tl := replayFixture()
	m1, err := ReplaySim(tl)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ReplaySim(tl)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Digest() != m2.Digest() {
		t.Fatalf("replay not deterministic:\n%+v\n%+v", m1, m2)
	}
	// Round-tripping the trace through the codec must not change the
	// replay outcome either.
	rt, err := rec.Decode(tl.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	m3, err := ReplaySim(rt)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Digest() != m1.Digest() {
		t.Fatal("codec round trip changed replay outcome")
	}
}

func TestReplaySimOutcome(t *testing.T) {
	tl := replayFixture()
	m, err := ReplaySim(tl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != "sim" {
		t.Fatalf("source %q", m.Source)
	}
	if m.Sent != 21 {
		t.Fatalf("sent %d, want 21", m.Sent)
	}
	// Nothing expires in this fixture: every send is delivered.
	if m.Delivered != m.Sent || m.Timeouts != 0 {
		t.Fatalf("delivered %d timeouts %d", m.Delivered, m.Timeouts)
	}
	if m.DeliveryRatio != 1 {
		t.Fatalf("delivery ratio %v", m.DeliveryRatio)
	}
	// Aggregation must beat one-uplink-per-heartbeat: 6 direct sends plus
	// batched flushes for the 15 relayed/trunked sends.
	if m.Signaling.Uplinks >= m.Sent {
		t.Fatalf("no aggregation: %d uplinks for %d sends", m.Signaling.Uplinks, m.Sent)
	}
	if m.Signaling.Batches == 0 || m.Signaling.L3Messages == 0 {
		t.Fatalf("signaling %+v", m.Signaling)
	}
	// Relayed heartbeats wait for their batch: the p99 must show real
	// batching delay while direct sends keep the p50 at zero.
	if m.AckLatency.Count != m.Delivered {
		t.Fatalf("latency count %d", m.AckLatency.Count)
	}
	if m.AckLatency.MaxMs <= 0 {
		t.Fatal("relayed latency should be positive")
	}
}

func TestReplaySimCapacityFlush(t *testing.T) {
	// Capacity 2 with three quick arrivals: first flush must be a capacity
	// flush (two heartbeats), the third waits for its deadline.
	tl := &rec.Timeline{
		RelayPeriod:   time.Minute,
		RelayCapacity: 2,
		Clients: []rec.Client{
			{ID: "a", Expiry: 10 * time.Second, Path: rec.PathRelayed, Relay: 0},
			{ID: "b", Expiry: 10 * time.Second, Path: rec.PathRelayed, Relay: 0},
			{ID: "c", Expiry: 10 * time.Second, Path: rec.PathRelayed, Relay: 0},
		},
		Events: []rec.Event{
			{At: 0, Kind: rec.EvSend, Client: 0, Seq: 1},
			{At: time.Second, Kind: rec.EvSend, Client: 1, Seq: 1},
			{At: 2 * time.Second, Kind: rec.EvSend, Client: 2, Seq: 1},
		},
	}
	m, err := ReplaySim(tl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered != 3 || m.Signaling.Batches != 2 {
		t.Fatalf("delivered %d batches %d, want 3/2", m.Delivered, m.Signaling.Batches)
	}
}

func TestReplaySimErrors(t *testing.T) {
	if _, err := ReplaySim(nil); err == nil {
		t.Fatal("nil timeline accepted")
	}
	bad := &rec.Timeline{RelayPeriod: -1}
	if _, err := ReplaySim(bad); err == nil {
		t.Fatal("invalid timeline accepted")
	}
	// Relay clients without relay parameters cannot be replayed.
	norelay := &rec.Timeline{
		Clients: []rec.Client{{ID: "a", Path: rec.PathRelayed, Relay: 0}},
		Events:  []rec.Event{{Kind: rec.EvSend, Client: 0, Seq: 1}},
	}
	if _, err := ReplaySim(norelay); err == nil {
		t.Fatal("relay clients without relay params accepted")
	}
}
