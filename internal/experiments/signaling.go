package experiments

import (
	"fmt"

	"d2dhb/internal/metrics"
	"d2dhb/internal/sched"
)

// SignalingResult reproduces Fig. 15: layer-3 message consumption of the
// relay versus the original system, and the pair-level signaling saving.
type SignalingResult struct {
	K []float64
	// Original is the single original-system device's layer-3 messages.
	Original []float64
	// RelayWith1UE / RelayWith2UEs are the relay device's layer-3 messages
	// when serving 1 or 2 connected UEs.
	RelayWith1UE  []float64
	RelayWith2UEs []float64
	// PairSaving1UE is the signaling saving of the relay+1UE pair versus
	// two original devices, at the largest k (the headline > 50 % / "about
	// 50 % in the worst situation" number).
	PairSaving1UE float64
	// TrioSaving2UEs is the saving of the relay+2UE trio versus three
	// original devices.
	TrioSaving2UEs float64
}

// Fig15 measures layer-3 message consumption for 1..maxK transmissions.
func Fig15(seed int64, maxK int) (*SignalingResult, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("experiments: maxK must be >= 1, got %d", maxK)
	}
	res := &SignalingResult{}
	var lastOrig, lastR1, lastR2 float64
	for k := 1; k <= maxK; k++ {
		origRep, err := runOriginalDevice(seed, stdProfile(), k)
		if err != nil {
			return nil, err
		}
		orig := float64(origRep.TotalL3Messages)

		rep1, err := runPair(seed, stdProfile(), k, 1, 1, 8, sched.KindNagle)
		if err != nil {
			return nil, err
		}
		relay1, ok := rep1.Device("relay")
		if !ok {
			return nil, fmt.Errorf("experiments: relay missing")
		}
		r1 := float64(relay1.RRC.L3Messages)

		rep2, err := runPair(seed, stdProfile(), k, 2, 1, 8, sched.KindNagle)
		if err != nil {
			return nil, err
		}
		relay2, ok := rep2.Device("relay")
		if !ok {
			return nil, fmt.Errorf("experiments: relay missing")
		}
		r2 := float64(relay2.RRC.L3Messages)

		res.K = append(res.K, float64(k))
		res.Original = append(res.Original, orig)
		res.RelayWith1UE = append(res.RelayWith1UE, r1)
		res.RelayWith2UEs = append(res.RelayWith2UEs, r2)
		lastOrig, lastR1, lastR2 = orig, r1, r2
	}
	// Pair saving: scheme signaling (relay only; the UE's modem is silent)
	// versus each device sending for itself.
	if lastOrig > 0 {
		res.PairSaving1UE = 1 - lastR1/(2*lastOrig)
		res.TrioSaving2UEs = 1 - lastR2/(3*lastOrig)
	}
	return res, nil
}

// Figure renders the Fig. 15 series.
func (r *SignalingResult) Figure() (*metrics.Figure, error) {
	f := metrics.NewFigure("Fig. 15: layer 3 message consumption", "transmissions", r.K)
	for _, s := range []struct {
		name string
		y    []float64
	}{
		{"Original System", r.Original},
		{"Relay with 1 UE", r.RelayWith1UE},
		{"Relay with 2 UEs", r.RelayWith2UEs},
	} {
		if err := f.Add(s.name, s.y); err != nil {
			return nil, err
		}
	}
	return f, nil
}
