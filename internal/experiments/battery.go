package experiments

import (
	"time"

	"d2dhb/internal/core"
	"d2dhb/internal/energy"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/metrics"
)

// BatteryShareResult reproduces the paper's motivating battery claim
// (Section I): the daily battery share one IM app's heartbeats consume,
// with and without the D2D framework.
type BatteryShareResult struct {
	// OriginalDailyShare is the battery fraction burned per day by direct
	// cellular heartbeats (paper: "at least 6%").
	OriginalDailyShare float64
	// UEDailyShare is the same device forwarding through a relay.
	UEDailyShare float64
	Table        *metrics.Table
}

// BatteryShare runs one WeChat-like device for 24 hours as the original
// system and as a relayed UE, converting energy into Galaxy S4 battery
// fractions.
func BatteryShare(seed int64) (*BatteryShareResult, error) {
	profile := hbmsg.WeChat()
	battery := energy.GalaxyS4Battery()
	const day = 24 * time.Hour

	// Original system: every heartbeat is a cellular transmission.
	origSim, err := core.New(core.Options{Seed: seed, Duration: day, DisableD2D: true})
	if err != nil {
		return nil, err
	}
	if _, err := origSim.AddUE(core.UESpec{ID: "orig", Profile: profile, StartOffset: 20 * time.Second}); err != nil {
		return nil, err
	}
	origRep, err := origSim.Run()
	if err != nil {
		return nil, err
	}
	origE, err := deviceEnergy(origRep, "orig")
	if err != nil {
		return nil, err
	}

	// D2D scheme: the same device forwards through a relay at 1 m.
	sim, err := core.PairScenario(core.Options{Seed: seed, Duration: day}, profile, 1, 1, 8)
	if err != nil {
		return nil, err
	}
	rep, err := sim.Run()
	if err != nil {
		return nil, err
	}
	ueE, err := deviceEnergy(rep, "ue-01")
	if err != nil {
		return nil, err
	}

	res := &BatteryShareResult{
		OriginalDailyShare: battery.DrainFraction(origE),
		UEDailyShare:       battery.DrainFraction(ueE),
	}
	t := metrics.NewTable(
		"Daily battery share of one IM app's heartbeats (Galaxy S4, WeChat)",
		"path", "energy (µAh/day)", "battery share")
	t.AddRow("original (cellular)", metrics.F(float64(origE)), metrics.Pct(res.OriginalDailyShare))
	t.AddRow("UE via relay (D2D)", metrics.F(float64(ueE)), metrics.Pct(res.UEDailyShare))
	res.Table = t
	return res, nil
}
