package experiments

import (
	"os"
	"sync"
	"testing"
	"time"

	"d2dhb/internal/trace"
)

// parGoldenConfig is the pinned equivalence scenario: big enough for every
// interaction kind (matches, forwards, flushes, acks, fallbacks, busy
// relays, migrations), small enough that the full seeds × tiles matrix
// runs in well under a second.
func parGoldenConfig(seed int64) ParallelCityConfig {
	return ParallelCityConfig{
		CityConfig: CityConfig{
			Seed:          seed,
			Devices:       400,
			RelayFraction: 0.10,
			Side:          200,
			Duration:      300 * time.Second,
			Capacity:      16,
		},
		Tiles:        1,
		CaptureTrace: true,
	}
}

// parGoldens pins the parallel kernel's output — report digest and
// canonical trace digest — for the three golden seeds. The values were
// recorded from the initial implementation; any change to the windowed
// model's observable behaviour must update them deliberately.
var parGoldens = map[int64]struct{ rep, trace string }{
	1: {
		rep:   "e4d9e1b24ff1f4589c025180f9910d68dea58e491f73d6804a4a1added1c6202",
		trace: "ce7b02b9b09eec82f38346a675b1ebfc83a187c36bd18b4e743643e730eb83b2",
	},
	7: {
		rep:   "cf13bc259f098309f1c17380709ebdadfa9714e5820a2ec2c40baf8f258afb11",
		trace: "244c16c4db4b754d57958d4073800e5034a6410657120f8a8886ef2159fe4829",
	},
	42: {
		rep:   "a75bd43189b20b206542646dc1f76971426abff4a03a225cdf7de7470869a3a0",
		trace: "60b0cde99e9d4768e5bac5de07c2a86fc530a780fb0c762d8c5f92b39118250c",
	},
}

// TestCityParallelEquivalenceGolden is the determinism-equivalence suite:
// for each pinned golden seed, the same city at tiles=1, 4 and 16 must
// produce bit-identical report digests, trace digests and kernel event
// counts — and match the pinned goldens.
func TestCityParallelEquivalenceGolden(t *testing.T) {
	for seed, want := range parGoldens {
		for _, tiles := range []int{1, 4, 16} {
			cfg := parGoldenConfig(seed)
			cfg.Tiles = tiles
			rep, st, err := RunCityParallel(cfg)
			if err != nil {
				t.Fatalf("seed=%d tiles=%d: %v", seed, tiles, err)
			}
			if got := rep.Digest(); got != want.rep {
				t.Errorf("seed=%d tiles=%d report digest %s, want %s", seed, tiles, got, want.rep)
			}
			if st.TraceDigest != want.trace {
				t.Errorf("seed=%d tiles=%d trace digest %s, want %s", seed, tiles, st.TraceDigest, want.trace)
			}
			if st.Tiles != tiles && !(tiles == 1 && st.Tiles == 1) {
				t.Errorf("seed=%d: stats report %d tiles, want %d", seed, st.Tiles, tiles)
			}
		}
	}
}

// TestCityParallelEventsPartitionIndependent pins the kernel-event
// invariant the bench metrics rely on: the number of scheduler events
// fired is identical for any tile count (every agenda task firing is
// exactly one scheduler event, wherever the agenda lives).
func TestCityParallelEventsPartitionIndependent(t *testing.T) {
	var events []uint64
	for _, tiles := range []int{1, 4, 16} {
		cfg := parGoldenConfig(7)
		cfg.Tiles = tiles
		cfg.CaptureTrace = false
		_, st, err := RunCityParallel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, st.Events)
	}
	if events[0] != events[1] || events[0] != events[2] {
		t.Fatalf("events vary with tile count: %v", events)
	}
}

// TestCityParallelBorderStraddlers runs a dense small-area city on a fine
// tile grid, so the population's vehicles (8–15 m/s) cross tile borders
// every few windows and static devices sit right on tile edges. Run under
// -race in CI, it doubles as the border-crossing race test; the digest
// comparison proves migrations are behaviour-neutral.
func TestCityParallelBorderStraddlers(t *testing.T) {
	base := ParallelCityConfig{
		CityConfig: CityConfig{
			Seed:          2017,
			Devices:       200,
			RelayFraction: 0.15,
			Side:          100, // 16 tiles of 25 m: vehicles cross every 2-3 windows
			Duration:      300 * time.Second,
			Capacity:      8,
		},
		Window:       5 * time.Second,
		CaptureTrace: true,
	}
	var reps, traces []string
	for _, tiles := range []int{1, 16} {
		cfg := base
		cfg.Tiles = tiles
		rep, st, err := RunCityParallel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep.Digest())
		traces = append(traces, st.TraceDigest)
		if tiles == 16 && st.Migrations == 0 {
			t.Error("no migrations in a fast-mover scenario; border crossing untested")
		}
	}
	if reps[0] != reps[1] {
		t.Errorf("report digests diverge across the border-heavy grid: %s vs %s", reps[0], reps[1])
	}
	if traces[0] != traces[1] {
		t.Errorf("trace digests diverge across the border-heavy grid: %s vs %s", traces[0], traces[1])
	}
}

// memTracer retains every emitted event for white-box inspection.
type memTracer struct {
	mu  sync.Mutex
	evs []trace.Event
}

func (m *memTracer) Emit(ev trace.Event) {
	m.mu.Lock()
	m.evs = append(m.evs, ev)
	m.mu.Unlock()
}

// TestCityParallelLookaheadDelivery is the border-lookahead white-box
// test: every successful D2D forward must surface at its relay — as a
// collect or a reject — at exactly the next window boundary strictly
// after the send, including sends that land exactly on a boundary.
// Forwards from the final window have no boundary left and must vanish
// (the horizon cut).
func TestCityParallelLookaheadDelivery(t *testing.T) {
	const windowMs = int64(5000)
	tr := &memTracer{}
	cfg := parGoldenConfig(42)
	cfg.Tiles = 4
	cfg.Window = time.Duration(windowMs) * time.Millisecond
	cfg.Tracer = tr
	_, _, err := RunCityParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	horizonMs := cfg.Duration.Milliseconds()

	type key struct {
		src string
		seq uint64
	}
	arrivals := make(map[key][]int64) // collect/reject instants per forwarded hb
	sends := 0
	for _, ev := range tr.evs {
		switch ev.Kind {
		case trace.KindCollect, trace.KindReject:
			k := key{src: ev.Peer, seq: ev.Seq}
			arrivals[k] = append(arrivals[k], ev.AtMs)
		}
	}
	finalCut := 0
	for _, ev := range tr.evs {
		if ev.Kind != trace.KindD2DSend {
			continue
		}
		sends++
		// The boundary strictly after the send; a send exactly on a
		// boundary belongs to the window starting there.
		next := (ev.AtMs/windowMs)*windowMs + windowMs
		if next >= horizonMs {
			// The barrier at the horizon is final: its ops are discarded,
			// so a forward due exactly at the horizon is cut too.
			finalCut++
			for _, at := range arrivals[key{src: ev.Device, seq: ev.Seq}] {
				if at > ev.AtMs {
					t.Errorf("forward %s/%d sent at %dms inside the final window arrived at %dms past the horizon cut",
						ev.Device, ev.Seq, ev.AtMs, at)
				}
			}
			continue
		}
		found := false
		for _, at := range arrivals[key{src: ev.Device, seq: ev.Seq}] {
			if at == next {
				found = true
			} else if at > ev.AtMs && at != next {
				t.Errorf("forward %s/%d sent at %dms arrived at %dms, want the boundary at %dms",
					ev.Device, ev.Seq, ev.AtMs, at, next)
			}
		}
		if !found {
			t.Errorf("forward %s/%d sent at %dms never arrived at its boundary %dms",
				ev.Device, ev.Seq, ev.AtMs, next)
		}
	}
	if sends == 0 {
		t.Fatal("no D2D forwards in the lookahead scenario")
	}
}

// TestCityParallelHorizonCutWholeRun collapses the run into one closed
// window (window == duration): every forward is created inside the final
// window, so none may reach a relay, while direct sends and relay flushes
// still deliver.
func TestCityParallelHorizonCutWholeRun(t *testing.T) {
	cfg := parGoldenConfig(1)
	cfg.Window = cfg.Duration
	rep, st, err := RunCityParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows != 1 {
		t.Fatalf("expected a single window, got %d", st.Windows)
	}
	forwards, collected := 0, 0
	for _, d := range rep.Devices {
		if d.UE != nil {
			forwards += d.UE.SentViaD2D
		}
		if d.Relay != nil {
			collected += d.Relay.Collected
		}
	}
	// With no boundary snapshot ever published, no relay is discoverable:
	// nothing is forwarded and everything goes direct.
	if forwards != 0 || collected != 0 {
		t.Errorf("single-window run forwarded %d / collected %d, want 0/0", forwards, collected)
	}
	if st.Deliveries == 0 {
		t.Error("no deliveries at all; direct path broken")
	}
}

func TestCityParallelValidation(t *testing.T) {
	cfg := parGoldenConfig(1)
	cfg.Tiles = 0
	if _, _, err := RunCityParallel(cfg); err == nil {
		t.Error("tiles=0 accepted")
	}
	cfg = parGoldenConfig(1)
	cfg.Window = -time.Second
	if _, _, err := RunCityParallel(cfg); err == nil {
		t.Error("negative window accepted")
	}
	cfg = parGoldenConfig(1)
	cfg.Devices = 0
	if _, _, err := RunCityParallel(cfg); err == nil {
		t.Error("zero devices accepted")
	}
}

// TestCityParallelMillionSmoke proves the kernel's memory shape holds at
// one million devices. It needs a few GB and a couple of minutes, so it
// only runs when explicitly requested.
func TestCityParallelMillionSmoke(t *testing.T) {
	if os.Getenv("D2D_CITY_1M") != "1" {
		t.Skip("set D2D_CITY_1M=1 to run the 1M-device smoke")
	}
	rep, st, err := RunCityParallel(CityParallelMillion(64))
	if err != nil {
		t.Fatal(err)
	}
	if st.Deliveries == 0 || rep.Deliveries != st.Deliveries {
		t.Fatalf("1M smoke: deliveries %d / %d", st.Deliveries, rep.Deliveries)
	}
	t.Logf("1M smoke: events=%d deliveries=%d onTime=%.4f migrations=%d",
		st.Events, st.Deliveries, st.OnTimeRate, st.Migrations)
}

// FuzzTileMergeVsSequential fuzzes the partition-independence invariant:
// any (seed, population, tile count, window) must produce the same report
// and trace digests as the single-tile run of the same configuration.
func FuzzTileMergeVsSequential(f *testing.F) {
	f.Add(int64(1), 40, 4, 10)
	f.Add(int64(7), 80, 9, 7)
	f.Add(int64(42), 150, 6, 23)
	f.Add(int64(2017), 20, 2, 1)
	f.Fuzz(func(t *testing.T, seed int64, devices, tiles, windowSecs int) {
		devices = 20 + abs(devices)%131
		tiles = 2 + abs(tiles)%8
		windowSecs = 1 + abs(windowSecs)%30
		base := ParallelCityConfig{
			CityConfig: CityConfig{
				Seed:          seed,
				Devices:       devices,
				RelayFraction: 0.10,
				Side:          150,
				Duration:      120 * time.Second,
				Capacity:      8,
			},
			Window:       time.Duration(windowSecs) * time.Second,
			CaptureTrace: true,
		}
		run := func(tiles int) (string, string) {
			cfg := base
			cfg.Tiles = tiles
			rep, st, err := RunCityParallel(cfg)
			if err != nil {
				t.Fatalf("tiles=%d: %v", tiles, err)
			}
			return rep.Digest(), st.TraceDigest
		}
		seqRep, seqTrace := run(1)
		parRep, parTrace := run(tiles)
		if parRep != seqRep {
			t.Errorf("seed=%d devices=%d tiles=%d window=%ds: report digest diverges from tiles=1",
				seed, devices, tiles, windowSecs)
		}
		if parTrace != seqTrace {
			t.Errorf("seed=%d devices=%d tiles=%d window=%ds: trace digest diverges from tiles=1",
				seed, devices, tiles, windowSecs)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
