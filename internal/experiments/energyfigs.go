package experiments

import (
	"fmt"

	"d2dhb/internal/energy"
	"d2dhb/internal/metrics"
	"d2dhb/internal/sched"
)

// Table3Result reproduces Table III: energy per phase for UE and relay.
type Table3Result struct {
	Table *metrics.Table
	// Measured per-phase charge (µAh) for one forwarded heartbeat at 1 m.
	UEDiscovery, UEConnection, UEForwarding          float64
	RelayDiscovery, RelayConnection, RelayForwarding float64
}

// Paper values for Table III (µAh).
var table3Paper = struct {
	ueDisc, ueConn, ueFwd float64
	rDisc, rConn, rFwd    float64
}{132.24, 63.74, 73.09, 122.50, 60.29, 132.45}

// Table3 measures per-phase energy in the one-relay/one-UE scenario with a
// single forwarded heartbeat at 1 m.
func Table3(seed int64) (*Table3Result, error) {
	rep, err := runPair(seed, stdProfile(), 1, 1, 1, 8, sched.KindNagle)
	if err != nil {
		return nil, err
	}
	ue, ok := rep.Device("ue-01")
	if !ok {
		return nil, fmt.Errorf("experiments: ue-01 missing")
	}
	relay, ok := rep.Device("relay")
	if !ok {
		return nil, fmt.Errorf("experiments: relay missing")
	}
	res := &Table3Result{
		UEDiscovery:     float64(ue.Energy[energy.PhaseDiscovery]),
		UEConnection:    float64(ue.Energy[energy.PhaseConnection]),
		UEForwarding:    float64(ue.Energy[energy.PhaseD2DSend]),
		RelayDiscovery:  float64(relay.Energy[energy.PhaseDiscovery]),
		RelayConnection: float64(relay.Energy[energy.PhaseConnection]),
		RelayForwarding: float64(relay.Energy[energy.PhaseD2DRecv]),
	}
	t := metrics.NewTable("Table III: energy consumption in different phases (µAh)",
		"role", "phase", "paper", "measured")
	t.AddRow("UE", "discovery", metrics.F(table3Paper.ueDisc), metrics.F(res.UEDiscovery))
	t.AddRow("UE", "connection", metrics.F(table3Paper.ueConn), metrics.F(res.UEConnection))
	t.AddRow("UE", "forwarding", metrics.F(table3Paper.ueFwd), metrics.F(res.UEForwarding))
	t.AddRow("relay", "discovery", metrics.F(table3Paper.rDisc), metrics.F(res.RelayDiscovery))
	t.AddRow("relay", "connection", metrics.F(table3Paper.rConn), metrics.F(res.RelayConnection))
	t.AddRow("relay", "forwarding", metrics.F(table3Paper.rFwd), metrics.F(res.RelayForwarding))
	res.Table = t
	return res, nil
}

// EnergyCurves holds the per-transmission-count energy measurements behind
// Figs. 8 and 9.
type EnergyCurves struct {
	// K is the transmission-count axis (0..maxK).
	K []float64
	// UE, Relay and Original are device totals in µAh.
	UE, Relay, Original []float64
	// SavedSystem and SavedUE are absolute savings in µAh (Fig. 8's two
	// extra series).
	SavedSystem, SavedUE []float64
	// SavedSystemPct and SavedUEPct are the Fig. 9 percentages (defined
	// for k >= 1; index 0 is zero).
	SavedSystemPct, SavedUEPct []float64
}

// EnergyVsTransmissions measures UE, relay and original-system energy for
// 0..maxK forwarded heartbeats over one D2D connection (1 UE at 1 m), the
// data behind Figs. 8 and 9.
func EnergyVsTransmissions(seed int64, maxK int) (*EnergyCurves, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("experiments: maxK must be >= 1, got %d", maxK)
	}
	c := &EnergyCurves{
		K:              []float64{0},
		UE:             []float64{0},
		Relay:          []float64{0},
		Original:       []float64{0},
		SavedSystem:    []float64{0},
		SavedUE:        []float64{0},
		SavedSystemPct: []float64{0},
		SavedUEPct:     []float64{0},
	}
	for k := 1; k <= maxK; k++ {
		rep, err := runPair(seed, stdProfile(), k, 1, 1, 8, sched.KindNagle)
		if err != nil {
			return nil, err
		}
		ueE, err := deviceEnergy(rep, "ue-01")
		if err != nil {
			return nil, err
		}
		relayE, err := deviceEnergy(rep, "relay")
		if err != nil {
			return nil, err
		}
		origRep, err := runOriginalDevice(seed, stdProfile(), k)
		if err != nil {
			return nil, err
		}
		origE, err := deviceEnergy(origRep, "orig")
		if err != nil {
			return nil, err
		}
		ue, relay, orig := float64(ueE), float64(relayE), float64(origE)
		c.K = append(c.K, float64(k))
		c.UE = append(c.UE, ue)
		c.Relay = append(c.Relay, relay)
		c.Original = append(c.Original, orig)
		savedSys := 2*orig - (ue + relay)
		savedUE := orig - ue
		c.SavedSystem = append(c.SavedSystem, savedSys)
		c.SavedUE = append(c.SavedUE, savedUE)
		c.SavedSystemPct = append(c.SavedSystemPct, savedSys/(2*orig))
		c.SavedUEPct = append(c.SavedUEPct, savedUE/orig)
	}
	return c, nil
}

// Fig8 renders the energy-versus-transmissions comparison for the whole
// system, UE and relay.
func (c *EnergyCurves) Fig8() (*metrics.Figure, error) {
	f := metrics.NewFigure(
		"Fig. 8: energy consumption comparison (µAh)", "transmissions", c.K)
	for _, s := range []struct {
		name string
		y    []float64
	}{
		{"UE", c.UE},
		{"Relay", c.Relay},
		{"Original System", c.Original},
		{"Saved Energy of System", c.SavedSystem},
		{"Saved Energy of UE", c.SavedUE},
	} {
		if err := f.Add(s.name, s.y); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Fig9 renders the saved-energy percentages.
func (c *EnergyCurves) Fig9() (*metrics.Figure, error) {
	pct := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i, x := range v {
			out[i] = x * 100
		}
		return out
	}
	f := metrics.NewFigure("Fig. 9: saved energy (%)", "transmissions", c.K)
	if err := f.Add("Saved Energy of System", pct(c.SavedSystemPct)); err != nil {
		return nil, err
	}
	if err := f.Add("Saved Energy of UE", pct(c.SavedUEPct)); err != nil {
		return nil, err
	}
	return f, nil
}

// MultiUECurves holds the Fig. 10 / Fig. 11 measurements: relay energy and
// wasted/saved ratio when serving multiple UEs.
type MultiUECurves struct {
	K      []float64         // transmissions 1..maxK
	NumUEs []int             // the UE counts measured
	RelayE map[int][]float64 // relay total energy per UE count
	Ratio  map[int][]float64 // wasted(relay)/saved(UEs) percentage
}

// RelayMultiUE measures relay energy with 1/3/5/7 connected UEs (Fig. 10)
// and the wasted-to-saved energy ratio (Fig. 11).
func RelayMultiUE(seed int64, maxK int) (*MultiUECurves, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("experiments: maxK must be >= 1, got %d", maxK)
	}
	counts := []int{1, 3, 5, 7}
	res := &MultiUECurves{
		NumUEs: counts,
		RelayE: make(map[int][]float64, len(counts)),
		Ratio:  make(map[int][]float64, len(counts)),
	}
	for k := 1; k <= maxK; k++ {
		res.K = append(res.K, float64(k))
	}
	for _, n := range counts {
		for k := 1; k <= maxK; k++ {
			rep, err := runPair(seed, stdProfile(), k, n, 1, n+1, sched.KindNagle)
			if err != nil {
				return nil, err
			}
			relayE, err := deviceEnergy(rep, "relay")
			if err != nil {
				return nil, err
			}
			origRep, err := runOriginalDevice(seed, stdProfile(), k)
			if err != nil {
				return nil, err
			}
			origE, err := deviceEnergy(origRep, "orig")
			if err != nil {
				return nil, err
			}
			ueSum := float64(sumUEEnergy(rep))
			wasted := float64(relayE) - float64(origE)
			saved := float64(n)*float64(origE) - ueSum
			res.RelayE[n] = append(res.RelayE[n], float64(relayE))
			ratio := 0.0
			if saved > 0 {
				ratio = wasted / saved * 100
			}
			res.Ratio[n] = append(res.Ratio[n], ratio)
		}
	}
	return res, nil
}

// Fig10 renders relay energy versus transmissions for each UE count.
func (m *MultiUECurves) Fig10() (*metrics.Figure, error) {
	f := metrics.NewFigure("Fig. 10: energy consumption of a relay with multiple UEs (µAh)",
		"transmissions", m.K)
	for _, n := range m.NumUEs {
		if err := f.Add(fmt.Sprintf("Relay with %d UE(s)", n), m.RelayE[n]); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Fig11 renders the wasted/saved energy ratio for each UE count.
func (m *MultiUECurves) Fig11() (*metrics.Figure, error) {
	f := metrics.NewFigure("Fig. 11: ratio of wasted energy to saved energy (%)",
		"transmissions", m.K)
	for _, n := range m.NumUEs {
		if err := f.Add(fmt.Sprintf("Relay with %d UE(s)", n), m.Ratio[n]); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Table4Paper holds the paper's receiving-phase energies for 1..7 UEs
// (µAh).
var Table4Paper = []float64{123.22, 252.40, 386.106, 517.97, 655.82, 791.178, 911.196}

// Table4Result reproduces Table IV: relay receive energy versus the number
// of connected UEs (one collection round).
type Table4Result struct {
	NumUEs   []int
	Paper    []float64
	Measured []float64
	Table    *metrics.Table
}

// Table4 measures the relay's D2D receive charge for one collection round
// with 1..7 connected UEs.
func Table4(seed int64) (*Table4Result, error) {
	res := &Table4Result{Paper: Table4Paper}
	t := metrics.NewTable("Table IV: energy consumption in D2D receiving (µAh)",
		"UEs", "paper", "measured")
	for n := 1; n <= 7; n++ {
		rep, err := runPair(seed, stdProfile(), 1, n, 1, n+1, sched.KindNagle)
		if err != nil {
			return nil, err
		}
		relay, ok := rep.Device("relay")
		if !ok {
			return nil, fmt.Errorf("experiments: relay missing")
		}
		got := float64(relay.Energy[energy.PhaseD2DRecv])
		res.NumUEs = append(res.NumUEs, n)
		res.Measured = append(res.Measured, got)
		t.AddRow(metrics.F(float64(n)), metrics.F(Table4Paper[n-1]), metrics.F(got))
	}
	res.Table = t
	return res, nil
}

// DistanceSweep measures energy at several communication distances
// (Fig. 12): D2D cost rises with distance while the original system stays
// flat. The matching prejudgment bound is raised to 30 m for this
// experiment so the boundary flakiness at exactly 15 m (RSSI shadowing
// noise around MaxDistance) does not confound the pure distance-energy
// effect the paper plots.
func DistanceSweep(seed int64, k int) (*metrics.Figure, error) {
	distances := []float64{1, 5, 10, 15}
	var ue, relay, orig, savedUE []float64
	for _, d := range distances {
		rep, err := runPairMatched(seed, stdProfile(), k, 1, d, 8, 30)
		if err != nil {
			return nil, err
		}
		ueE, err := deviceEnergy(rep, "ue-01")
		if err != nil {
			return nil, err
		}
		relayE, err := deviceEnergy(rep, "relay")
		if err != nil {
			return nil, err
		}
		origRep, err := runOriginalDevice(seed, stdProfile(), k)
		if err != nil {
			return nil, err
		}
		origE, err := deviceEnergy(origRep, "orig")
		if err != nil {
			return nil, err
		}
		ue = append(ue, float64(ueE))
		relay = append(relay, float64(relayE))
		orig = append(orig, float64(origE))
		savedUE = append(savedUE, float64(origE)-float64(ueE))
	}
	f := metrics.NewFigure("Fig. 12: energy consumption at different communication distances (µAh)",
		"distance (m)", distances)
	for _, s := range []struct {
		name string
		y    []float64
	}{
		{"Saved Energy of UE", savedUE},
		{"UE", ue},
		{"Original System", orig},
		{"Relay", relay},
	} {
		if err := f.Add(s.name, s.y); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// MessageSizeSweep measures energy at 1×..5× the standard 54 B heartbeat
// size (Fig. 13): nearly flat for small messages.
func MessageSizeSweep(seed int64, k int) (*metrics.Figure, error) {
	multipliers := []float64{1, 2, 3, 4, 5}
	var ue, relay, orig []float64
	for _, mult := range multipliers {
		profile := stdProfile()
		profile.Size = int(mult) * energy.ReferenceMessageSize
		rep, err := runPair(seed, profile, k, 1, 1, 8, sched.KindNagle)
		if err != nil {
			return nil, err
		}
		ueE, err := deviceEnergy(rep, "ue-01")
		if err != nil {
			return nil, err
		}
		relayE, err := deviceEnergy(rep, "relay")
		if err != nil {
			return nil, err
		}
		origRep, err := runOriginalDevice(seed, profile, k)
		if err != nil {
			return nil, err
		}
		origE, err := deviceEnergy(origRep, "orig")
		if err != nil {
			return nil, err
		}
		ue = append(ue, float64(ueE))
		relay = append(relay, float64(relayE))
		orig = append(orig, float64(origE))
	}
	f := metrics.NewFigure("Fig. 13: energy consumption at different message sizes (µAh)",
		"size multiplier (×54B)", multipliers)
	for _, s := range []struct {
		name string
		y    []float64
	}{
		{"UE", ue},
		{"Original System", orig},
		{"Relay", relay},
	} {
		if err := f.Add(s.name, s.y); err != nil {
			return nil, err
		}
	}
	return f, nil
}
