package experiments

import (
	"time"

	"d2dhb/internal/core"
	"d2dhb/internal/energy"
	"d2dhb/internal/metrics"
)

// SensitivityRow summarizes the headline savings at one calibration of the
// per-transmission cellular energy.
type SensitivityRow struct {
	// CellularTxBase is the calibrated charge of one cellular heartbeat
	// transmission (µAh); the default 598 anchors the paper's 55 %
	// first-period UE saving.
	CellularTxBase float64
	// UESavingK1 is the UE saving on the first forwarded message.
	UESavingK1 float64
	// SystemSavingK7 is the whole-system saving at seven forwards.
	SystemSavingK7 float64
	// BreakEvenK is the first transmission count at which the whole
	// system saves energy (0 if never within 8).
	BreakEvenK int
}

// CalibrationSensitivity sweeps the cellular-transmission energy constant
// ±50 % around the calibrated 598 µAh and recomputes the headline savings.
// The paper's qualitative claims should be robust to calibration error:
// the UE always saves heavily, and the system breaks even within a few
// forwarded messages — only the exact percentages move.
func CalibrationSensitivity(seed int64) ([]SensitivityRow, *metrics.Table, error) {
	profile := stdProfile()
	var rows []SensitivityRow
	t := metrics.NewTable(
		"Sensitivity: headline savings vs cellular-energy calibration",
		"E_cell (µAh)", "UE saving k=1", "system saving k=7", "break-even k")
	for _, base := range []float64{300, 450, 598, 750, 900} {
		model := energy.DefaultModel()
		model.CellularTxBase = energy.MicroAmpHours(base)

		row := SensitivityRow{CellularTxBase: base}
		for k := 1; k <= 8; k++ {
			opts := core.Options{
				Seed:        seed,
				Duration:    time.Duration(k)*profile.Period + 10*time.Second,
				EnergyModel: &model,
			}
			sim, err := core.PairScenario(opts, profile, 1, 1, 8)
			if err != nil {
				return nil, nil, err
			}
			rep, err := sim.Run()
			if err != nil {
				return nil, nil, err
			}
			ueE, err := deviceEnergy(rep, "ue-01")
			if err != nil {
				return nil, nil, err
			}
			relayE, err := deviceEnergy(rep, "relay")
			if err != nil {
				return nil, nil, err
			}
			origOpts := core.Options{
				Seed:        seed,
				Duration:    time.Duration(k)*profile.Period + 10*time.Second,
				EnergyModel: &model,
				DisableD2D:  true,
			}
			origSim, err := core.New(origOpts)
			if err != nil {
				return nil, nil, err
			}
			if _, err := origSim.AddUE(core.UESpec{
				ID: "orig", Profile: profile, StartOffset: 20 * time.Second,
			}); err != nil {
				return nil, nil, err
			}
			origRep, err := origSim.Run()
			if err != nil {
				return nil, nil, err
			}
			origE, err := deviceEnergy(origRep, "orig")
			if err != nil {
				return nil, nil, err
			}

			ue, relay, orig := float64(ueE), float64(relayE), float64(origE)
			sysSaving := (2*orig - ue - relay) / (2 * orig)
			if k == 1 {
				row.UESavingK1 = 1 - ue/orig
			}
			if k == 7 {
				row.SystemSavingK7 = sysSaving
			}
			if row.BreakEvenK == 0 && sysSaving > 0 {
				row.BreakEvenK = k
			}
		}
		rows = append(rows, row)
		t.AddRow(metrics.F(base), metrics.Pct(row.UESavingK1),
			metrics.Pct(row.SystemSavingK7), metrics.F(float64(row.BreakEvenK)))
	}
	return rows, t, nil
}
