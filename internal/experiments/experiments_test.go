package experiments

import (
	"math"
	"testing"
	"time"

	"d2dhb/internal/energy"
)

func TestTable1SharesMatchPaper(t *testing.T) {
	res, err := Table1(DefaultSeed)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AbsErr > 0.03 {
			t.Errorf("%s: share error %.3f, want <= 0.03 (paper %.3f, measured %.3f)",
				row.App, row.AbsErr, row.Paper, row.Measured)
		}
	}
	if res.Table.String() == "" {
		t.Fatal("empty table rendering")
	}
}

func TestFig6Fig7Shapes(t *testing.T) {
	model := energy.DefaultModel()
	d2d := Fig6(model)
	cell := Fig7(model)
	// Fig. 6 vs Fig. 7: the cellular transfer lingers in high power much
	// longer and costs several times the charge.
	if cell.HighPowerTime <= 3*d2d.HighPowerTime {
		t.Fatalf("cellular high-power %v not ≫ D2D %v", cell.HighPowerTime, d2d.HighPowerTime)
	}
	if cell.Charge <= 3*d2d.Charge {
		t.Fatalf("cellular charge %v not ≫ D2D %v", cell.Charge, d2d.Charge)
	}
	if d2d.Summary().String() == "" || cell.Summary().String() == "" {
		t.Fatal("empty summaries")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	res, err := Table3(DefaultSeed)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	within := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s = %.2f, paper %.2f (tol %.0f%%)", name, got, want, tol*100)
		}
	}
	// Discovery/connection/forwarding on both sides are calibrated
	// directly from Table III and must match tightly.
	within("UE discovery", res.UEDiscovery, table3Paper.ueDisc, 0.01)
	within("UE connection", res.UEConnection, table3Paper.ueConn, 0.01)
	within("UE forwarding", res.UEForwarding, table3Paper.ueFwd, 0.01)
	within("relay discovery", res.RelayDiscovery, table3Paper.rDisc, 0.01)
	within("relay connection", res.RelayConnection, table3Paper.rConn, 0.01)
	// The relay's forwarding (receive) phase is modeled from Table IV's
	// first-round cost; allow a 10 % residual vs Table III's 132.45.
	within("relay forwarding", res.RelayForwarding, table3Paper.rFwd, 0.10)
}

func TestEnergyVsTransmissionsShapes(t *testing.T) {
	c, err := EnergyVsTransmissions(DefaultSeed, 8)
	if err != nil {
		t.Fatalf("EnergyVsTransmissions: %v", err)
	}
	if len(c.K) != 9 {
		t.Fatalf("points = %d, want 9 (k=0..8)", len(c.K))
	}
	// Fig. 8 shape: UE ≪ relay; relay slightly above original with a
	// near-constant offset; everything increases with k.
	for i := 1; i < len(c.K); i++ {
		if c.UE[i] >= c.Relay[i] {
			t.Fatalf("k=%d: UE %v >= relay %v", i, c.UE[i], c.Relay[i])
		}
		if c.Relay[i] <= c.Original[i] {
			t.Fatalf("k=%d: relay %v <= original %v (relay must be slightly higher)",
				i, c.Relay[i], c.Original[i])
		}
		if c.UE[i] <= c.UE[i-1] || c.Original[i] <= c.Original[i-1] {
			t.Fatalf("k=%d: curves not increasing", i)
		}
	}
	// Section V-A headline: ≈55 % UE saving on the first period.
	if got := c.SavedUEPct[1]; got < 0.50 || got > 0.60 {
		t.Fatalf("UE saving at k=1 = %.1f%%, want ≈55%%", got*100)
	}
	// System break-even on the first forwarded message.
	if got := math.Abs(c.SavedSystemPct[1]); got > 0.08 {
		t.Fatalf("system saving at k=1 = %.1f%%, want ≈0%%", c.SavedSystemPct[1]*100)
	}
	// "Up to 36 %" system saving by k=7; we accept >= 30 %.
	if got := c.SavedSystemPct[7]; got < 0.30 {
		t.Fatalf("system saving at k=7 = %.1f%%, want >= 30%%", got*100)
	}
	// UE saving grows with connection time.
	for i := 2; i < len(c.SavedUEPct); i++ {
		if c.SavedUEPct[i] < c.SavedUEPct[i-1] {
			t.Fatalf("UE saving not monotone at k=%d", i)
		}
	}
	// Figure renderings.
	f8, err := c.Fig8()
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	f9, err := c.Fig9()
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(f8.Series) != 5 || len(f9.Series) != 2 {
		t.Fatalf("series = %d/%d, want 5/2", len(f8.Series), len(f9.Series))
	}
}

func TestRelayMultiUEShapes(t *testing.T) {
	m, err := RelayMultiUE(DefaultSeed, 7)
	if err != nil {
		t.Fatalf("RelayMultiUE: %v", err)
	}
	// Fig. 10: more UEs cost the relay more at every k.
	for i := range m.K {
		if !(m.RelayE[1][i] < m.RelayE[3][i] && m.RelayE[3][i] < m.RelayE[5][i] && m.RelayE[5][i] < m.RelayE[7][i]) {
			t.Fatalf("k=%v: relay energy not increasing with UEs: %v / %v / %v / %v",
				m.K[i], m.RelayE[1][i], m.RelayE[3][i], m.RelayE[5][i], m.RelayE[7][i])
		}
	}
	// Fig. 10: the multi-UE overhead becomes proportionally negligible as
	// the connection persists.
	relOverheadAt := func(i int) float64 {
		return (m.RelayE[7][i] - m.RelayE[1][i]) / m.RelayE[1][i]
	}
	if relOverheadAt(len(m.K)-1) >= relOverheadAt(0) {
		t.Fatalf("multi-UE overhead did not shrink: first %.2f, last %.2f",
			relOverheadAt(0), relOverheadAt(len(m.K)-1))
	}
	// Fig. 11: the wasted/saved ratio starts near ~97 % (1 UE, 1
	// transmission) and collapses with more UEs and transmissions.
	first := m.Ratio[1][0]
	if first < 70 || first > 110 {
		t.Fatalf("ratio at k=1, 1 UE = %.1f%%, want ≈97%%", first)
	}
	last := m.Ratio[7][len(m.K)-1]
	if last > 25 {
		t.Fatalf("ratio at k=7, 7 UEs = %.1f%%, want small (paper ≈5%%)", last)
	}
	if last >= first/4 {
		t.Fatalf("ratio did not collapse: %.1f%% → %.1f%%", first, last)
	}
	if _, err := m.Fig10(); err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if _, err := m.Fig11(); err != nil {
		t.Fatalf("Fig11: %v", err)
	}
}

func TestTable4LinearInUEs(t *testing.T) {
	res, err := Table4(DefaultSeed)
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if len(res.Measured) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Measured))
	}
	// Approximately linear: per-UE marginal cost stays near the 1-UE
	// value.
	perUE := res.Measured[0]
	for i, got := range res.Measured {
		want := perUE * float64(i+1)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("n=%d: receive %.2f, want ≈%.2f (linear)", i+1, got, want)
		}
		// And within 15 % of the paper's measured values.
		if math.Abs(got-res.Paper[i])/res.Paper[i] > 0.15 {
			t.Errorf("n=%d: receive %.2f vs paper %.2f", i+1, got, res.Paper[i])
		}
	}
}

func TestDistanceSweepShapes(t *testing.T) {
	f, err := DistanceSweep(DefaultSeed, 3)
	if err != nil {
		t.Fatalf("DistanceSweep: %v", err)
	}
	series := make(map[string][]float64, len(f.Series))
	for _, s := range f.Series {
		series[s.Name] = s.Y
	}
	ue, orig := series["UE"], series["Original System"]
	// Fig. 12: D2D cost grows with distance; the original system is flat.
	for i := 1; i < len(ue); i++ {
		if ue[i] <= ue[i-1] {
			t.Fatalf("UE energy not increasing with distance: %v", ue)
		}
		if orig[i] != orig[0] {
			t.Fatalf("original system not flat: %v", orig)
		}
	}
	// The UE saving shrinks with distance (crossover predicted beyond the
	// measured range).
	saved := series["Saved Energy of UE"]
	for i := 1; i < len(saved); i++ {
		if saved[i] >= saved[i-1] {
			t.Fatalf("UE saving not shrinking with distance: %v", saved)
		}
	}
}

func TestMessageSizeSweepFlat(t *testing.T) {
	f, err := MessageSizeSweep(DefaultSeed, 3)
	if err != nil {
		t.Fatalf("MessageSizeSweep: %v", err)
	}
	for _, s := range f.Series {
		min, max := s.Y[0], s.Y[0]
		for _, v := range s.Y {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		// Fig. 13: energy stays almost constant across 1×..5× sizes.
		if (max-min)/min > 0.06 {
			t.Errorf("series %q varies %.1f%% across sizes, want ~flat", s.Name, (max-min)/min*100)
		}
	}
}

func TestFig15SignalingSaving(t *testing.T) {
	res, err := Fig15(DefaultSeed, 10)
	if err != nil {
		t.Fatalf("Fig15: %v", err)
	}
	if len(res.K) != 10 {
		t.Fatalf("points = %d, want 10", len(res.K))
	}
	for i := range res.K {
		// The relay with 1 UE generates (nearly) the same signaling as the
		// original system: the aggregation is free signaling-wise.
		if math.Abs(res.RelayWith1UE[i]-res.Original[i]) > 1 {
			t.Fatalf("k=%v: relay-1UE L3 %v vs original %v, want equal",
				res.K[i], res.RelayWith1UE[i], res.Original[i])
		}
		// More payload per transmission costs slightly more signaling.
		if res.RelayWith2UEs[i] < res.RelayWith1UE[i] {
			t.Fatalf("k=%v: relay-2UE L3 %v below relay-1UE %v",
				res.K[i], res.RelayWith2UEs[i], res.RelayWith1UE[i])
		}
	}
	// Conclusion: "in the worst situation ... still reduce about 50 %".
	if res.PairSaving1UE < 0.48 {
		t.Fatalf("pair saving = %.1f%%, want ≈50%%", res.PairSaving1UE*100)
	}
	// Abstract: "more than 50 %" with more UEs connected.
	if res.TrioSaving2UEs <= 0.50 {
		t.Fatalf("trio saving = %.1f%%, want > 50%%", res.TrioSaving2UEs*100)
	}
	if _, err := res.Figure(); err != nil {
		t.Fatalf("Figure: %v", err)
	}
}

func TestRunPairValidation(t *testing.T) {
	if _, err := runPair(1, stdProfile(), 0, 1, 1, 8, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := runOriginalDevice(1, stdProfile(), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := EnergyVsTransmissions(1, 0); err == nil {
		t.Fatal("maxK=0 accepted")
	}
	if _, err := RelayMultiUE(1, 0); err == nil {
		t.Fatal("maxK=0 accepted")
	}
	if _, err := Fig15(1, 0); err == nil {
		t.Fatal("maxK=0 accepted")
	}
}

func TestExactTransmissionAccounting(t *testing.T) {
	// The harness must produce exactly k forwarded heartbeats and k
	// aggregated transmissions for k periods — otherwise every
	// per-transmission figure is skewed.
	const k = 5
	rep, err := runPair(DefaultSeed, stdProfile(), k, 1, 1, 8, 0)
	if err != nil {
		t.Fatalf("runPair: %v", err)
	}
	relay, _ := rep.Device("relay")
	ue, _ := rep.Device("ue-01")
	if relay.Relay.Flushes != k {
		t.Fatalf("flushes = %d, want %d", relay.Relay.Flushes, k)
	}
	if ue.UE.Generated != k || ue.UE.SentViaD2D != k {
		t.Fatalf("UE generated/sent = %d/%d, want %d/%d",
			ue.UE.Generated, ue.UE.SentViaD2D, k, k)
	}
	if relay.RRC.Transmissions != k {
		t.Fatalf("relay transmissions = %d, want %d", relay.RRC.Transmissions, k)
	}
	// Complete RRC cycles: promotions == releases.
	if relay.RRC.Promotions != relay.RRC.Releases {
		t.Fatalf("incomplete RRC cycles: %d promotions, %d releases",
			relay.RRC.Promotions, relay.RRC.Releases)
	}
	orig, err := runOriginalDevice(DefaultSeed, stdProfile(), k)
	if err != nil {
		t.Fatalf("runOriginalDevice: %v", err)
	}
	od, _ := orig.Device("orig")
	if od.RRC.Transmissions != k || od.RRC.Promotions != od.RRC.Releases {
		t.Fatalf("original device cycles wrong: %+v", od.RRC)
	}
}

func TestDeterministicExperiments(t *testing.T) {
	a, err := EnergyVsTransmissions(7, 3)
	if err != nil {
		t.Fatalf("EnergyVsTransmissions: %v", err)
	}
	b, err := EnergyVsTransmissions(7, 3)
	if err != nil {
		t.Fatalf("EnergyVsTransmissions: %v", err)
	}
	for i := range a.K {
		if a.UE[i] != b.UE[i] || a.Relay[i] != b.Relay[i] {
			t.Fatalf("experiment not deterministic at k=%v", a.K[i])
		}
	}
}

func TestHorizonGraceCoversReleaseOnly(t *testing.T) {
	// Regression guard for the +10 s horizon: one period must yield
	// exactly one UE heartbeat even though the horizon extends past the
	// period boundary.
	rep, err := runPair(DefaultSeed, stdProfile(), 1, 1, 1, 8, 0)
	if err != nil {
		t.Fatalf("runPair: %v", err)
	}
	ue, _ := rep.Device("ue-01")
	if ue.UE.Generated != 1 {
		t.Fatalf("generated = %d in one period, want 1", ue.UE.Generated)
	}
	if rep.Duration != stdProfile().Period+10*time.Second {
		t.Fatalf("duration = %v", rep.Duration)
	}
}

func TestBatteryShareReproducesIntroClaim(t *testing.T) {
	res, err := BatteryShare(DefaultSeed)
	if err != nil {
		t.Fatalf("BatteryShare: %v", err)
	}
	// Section I: "at least 6% of its battery capacity ... even with only
	// one IM app running" per day.
	if res.OriginalDailyShare < 0.06 || res.OriginalDailyShare > 0.12 {
		t.Fatalf("original daily share = %.1f%%, want 6-12%%", res.OriginalDailyShare*100)
	}
	// The framework cuts that by a large factor for the UE.
	if res.UEDailyShare >= res.OriginalDailyShare/2 {
		t.Fatalf("UE share %.2f%% not well below original %.2f%%",
			res.UEDailyShare*100, res.OriginalDailyShare*100)
	}
	if res.Table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestStormSweepShapes(t *testing.T) {
	rows, table, err := StormSweep(DefaultSeed)
	if err != nil {
		t.Fatalf("StormSweep: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i, row := range rows {
		// The scheme always loads the channel less than the original.
		if row.PeakUtilScheme >= row.PeakUtilOriginal {
			t.Errorf("n=%d: scheme peak %.2f not below original %.2f",
				row.UEs, row.PeakUtilScheme, row.PeakUtilOriginal)
		}
		// Load grows with density under the original system.
		if i > 0 && row.PeakUtilOriginal <= rows[i-1].PeakUtilOriginal {
			t.Errorf("original peak not increasing with density at n=%d", row.UEs)
		}
		if row.OverloadedScheme > row.OverloadedOriginal {
			t.Errorf("n=%d: scheme overloads more windows (%d vs %d)",
				row.UEs, row.OverloadedScheme, row.OverloadedOriginal)
		}
	}
	// At the densest point the original system overloads.
	last := rows[len(rows)-1]
	if last.PeakUtilOriginal <= 1.0 {
		t.Errorf("original system never overloaded at 200 UEs (peak %.2f)", last.PeakUtilOriginal)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestRelayDensitySweep(t *testing.T) {
	rows, table, err := RelayDensitySweep(DefaultSeed)
	if err != nil {
		t.Fatalf("RelayDensitySweep: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MatchedUEs <= rows[i-1].MatchedUEs {
			t.Errorf("matched UEs not growing with density: %d relays → %d, %d relays → %d",
				rows[i-1].Relays, rows[i-1].MatchedUEs, rows[i].Relays, rows[i].MatchedUEs)
		}
		if rows[i].L3Saving <= rows[i-1].L3Saving {
			t.Errorf("L3 saving not growing with density at %d relays", rows[i].Relays)
		}
	}
	// At healthy density the scheme pays off on every axis.
	last := rows[len(rows)-1]
	if last.L3Saving < 0.35 || last.EnergySaving < 0.10 || last.UESaving < 0.25 {
		t.Errorf("savings at 16 relays too low: %+v", last)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestPeriodicExtension(t *testing.T) {
	res, err := PeriodicExtension(DefaultSeed)
	if err != nil {
		t.Fatalf("PeriodicExtension: %v", err)
	}
	// Relaying the additional periodic traffic must increase the saving.
	if res.AllPeriodicSaving <= res.HeartbeatsOnlySaving {
		t.Fatalf("extension did not help: all %.2f vs heartbeats-only %.2f",
			res.AllPeriodicSaving, res.HeartbeatsOnlySaving)
	}
	if res.AllPeriodicSaving < 0.5 {
		t.Fatalf("all-periodic saving = %.1f%%, want >= 50%%", res.AllPeriodicSaving*100)
	}
	// The 3× delay tolerance keeps everything on time.
	if res.OnTimeRate < 0.999 {
		t.Fatalf("on-time rate = %v, want 1", res.OnTimeRate)
	}
	if res.Table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestCalibrationSensitivity(t *testing.T) {
	rows, table, err := CalibrationSensitivity(DefaultSeed)
	if err != nil {
		t.Fatalf("CalibrationSensitivity: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for i, row := range rows {
		// Both savings rise monotonically with the cellular cost.
		if i > 0 {
			if row.UESavingK1 <= rows[i-1].UESavingK1 {
				t.Errorf("UE saving not increasing at E_cell=%v", row.CellularTxBase)
			}
			if row.SystemSavingK7 <= rows[i-1].SystemSavingK7 {
				t.Errorf("system saving not increasing at E_cell=%v", row.CellularTxBase)
			}
		}
		// Robust qualitative claims across the whole ±50% band: the UE
		// always saves, and the system breaks even within 3 forwards.
		if row.UESavingK1 <= 0 {
			t.Errorf("E_cell=%v: UE does not save at k=1 (%.2f)", row.CellularTxBase, row.UESavingK1)
		}
		if row.BreakEvenK == 0 || row.BreakEvenK > 3 {
			t.Errorf("E_cell=%v: break-even k = %d, want 1..3", row.CellularTxBase, row.BreakEvenK)
		}
	}
	// The calibrated point reproduces the headline values.
	calibrated := rows[2]
	if calibrated.UESavingK1 < 0.50 || calibrated.UESavingK1 > 0.60 {
		t.Errorf("calibrated UE saving = %.2f, want ≈0.55", calibrated.UESavingK1)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestSeedSweepRobustness(t *testing.T) {
	res, err := SeedSweep(DefaultSeed, 5)
	if err != nil {
		t.Fatalf("SeedSweep: %v", err)
	}
	// The only randomness in the pair scenario is RSSI shadowing during
	// discovery; headline metrics must be essentially seed-invariant.
	if res.UESavingK1.StdDev > 1.0 {
		t.Errorf("UE saving stddev = %.2f points, want tight", res.UESavingK1.StdDev)
	}
	if res.SystemSavingK7.StdDev > 1.0 {
		t.Errorf("system saving stddev = %.2f points, want tight", res.SystemSavingK7.StdDev)
	}
	if res.UESavingK1.Mean < 50 || res.UESavingK1.Mean > 60 {
		t.Errorf("mean UE saving = %.1f%%, want ≈55%%", res.UESavingK1.Mean)
	}
	if res.PairSaving.Mean < 45 {
		t.Errorf("mean pair saving = %.1f%%, want ≈50%%", res.PairSaving.Mean)
	}
	if _, err := SeedSweep(1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if res.Table.String() == "" {
		t.Fatal("empty table")
	}
}
