package experiments

import (
	"fmt"
	"time"

	"d2dhb/internal/core"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/metrics"
	"d2dhb/internal/sched"
	"d2dhb/internal/trace"
)

// DelayRow summarizes delivery delay under one scheduling policy.
type DelayRow struct {
	Policy sched.Kind
	// Relayed is the generation→delivery delay distribution of heartbeats
	// carried by the relay.
	Relayed trace.DelayStats
	// L3Messages is the signaling spent, the other side of the tradeoff.
	L3Messages int
	// LateDeliveries counts deliveries past their deadline.
	LateDeliveries int
}

// DelayByPolicy quantifies the delay Algorithm 1 trades for signaling: the
// scheduler "aims to minimize the delay raised by forwarding and reduce the
// energy consumption" (Section I). Immediate send has near-zero delay at
// maximal signaling; Algorithm 1 delays up to min(T_k, T) for one
// connection per period; the deadline-blind baselines delay longer and
// deliver late.
func DelayByPolicy(seed int64) ([]DelayRow, *metrics.Table, error) {
	const (
		numUEs  = 3
		periods = 8
	)
	profile := stdProfile()

	var rows []DelayRow
	t := metrics.NewTable("Forwarding delay by scheduling policy (3 UEs, 8 periods)",
		"policy", "mean (s)", "p95 (s)", "max (s)", "L3 msgs", "late")
	for _, kind := range []sched.Kind{
		sched.KindImmediate, sched.KindNagle, sched.KindFixedDelay, sched.KindPeriodAligned,
	} {
		var rec trace.Recorder
		opts := core.Options{
			Seed:       seed,
			Duration:   time.Duration(periods)*profile.Period + 10*time.Second,
			Policy:     kind,
			FixedDelay: 60 * time.Second,
			Tracer:     &rec,
		}
		sim, err := core.New(opts)
		if err != nil {
			return nil, nil, err
		}
		if _, err := sim.AddRelay(core.RelaySpec{ID: "relay", Profile: profile, Capacity: 8}); err != nil {
			return nil, nil, err
		}
		for i := 0; i < numUEs; i++ {
			if _, err := sim.AddUE(core.UESpec{
				ID:          hbmsg.DeviceID(fmt.Sprintf("ue-%02d", i+1)),
				Profile:     profile,
				Mobility:    geo.Orbit{Radius: 1, Phase: float64(i)},
				StartOffset: 20*time.Second + time.Duration(i)*30*time.Second,
			}); err != nil {
				return nil, nil, err
			}
		}
		rep, err := sim.Run()
		if err != nil {
			return nil, nil, err
		}
		analysis := trace.Analyze(rec.Events())
		row := DelayRow{
			Policy:         kind,
			Relayed:        analysis.Relayed,
			L3Messages:     rep.TotalL3Messages,
			LateDeliveries: rep.LateDeliveries,
		}
		rows = append(rows, row)
		t.AddRow(kind.String(),
			metrics.F(row.Relayed.MeanMs/1000), metrics.F(row.Relayed.P95Ms/1000),
			metrics.F(row.Relayed.MaxMs/1000),
			fmt.Sprintf("%d", row.L3Messages), fmt.Sprintf("%d", row.LateDeliveries))
	}
	return rows, t, nil
}
