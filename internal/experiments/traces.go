package experiments

import (
	"time"

	"d2dhb/internal/energy"
	"d2dhb/internal/metrics"
)

// TraceResult reproduces one current-trace figure (Fig. 6 or Fig. 7).
type TraceResult struct {
	Name  string
	Trace energy.Trace
	// PeakMA is the maximum instant current.
	PeakMA float64
	// HighPowerTime is time spent above 300 mA — the "lingering in a high
	// power state" the paper highlights.
	HighPowerTime time.Duration
	// Charge is the above-baseline integral in µAh.
	Charge energy.MicroAmpHours
}

// Fig6 synthesizes the D2D transfer current trace: a short spurt that
// descends rapidly.
func Fig6(model energy.Model) TraceResult {
	tr := model.D2DTransferTrace()
	return traceResult("Fig. 6: energy consumption in D2D transfer", tr)
}

// Fig7 synthesizes the cellular transfer current trace: a spurt that lasts
// for a much longer period (the RRC high-power tail).
func Fig7(model energy.Model) TraceResult {
	tr := model.CellularTransferTrace()
	return traceResult("Fig. 7: energy consumption in cellular transfer", tr)
}

func traceResult(name string, tr energy.Trace) TraceResult {
	return TraceResult{
		Name:          name,
		Trace:         tr,
		PeakMA:        tr.PeakMA(),
		HighPowerTime: tr.HighPowerTime(300),
		Charge:        tr.IntegrateAboveBaseline(),
	}
}

// Summary renders the trace's headline numbers as a table.
func (r TraceResult) Summary() *metrics.Table {
	t := metrics.NewTable(r.Name, "metric", "value")
	t.AddRow("peak current (mA)", metrics.F(r.PeakMA))
	t.AddRow("time above 300 mA (s)", metrics.F(r.HighPowerTime.Seconds()))
	t.AddRow("charge above idle (µAh)", metrics.F(float64(r.Charge)))
	t.AddRow("window (s)", metrics.F(r.Trace.Duration().Seconds()))
	return t
}
