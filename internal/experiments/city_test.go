package experiments

import (
	"testing"
	"time"
)

// smallCity shrinks the preset so unit tests stay fast while exercising
// every mobility class and both device roles.
func smallCity() CityConfig {
	cfg := CityShort()
	cfg.Devices = 400
	cfg.Side = 200
	cfg.Duration = stdProfile().Period + 30*time.Second
	return cfg
}

func TestCityScenarioRuns(t *testing.T) {
	rep, stats, err := RunCity(smallCity())
	if err != nil {
		t.Fatalf("RunCity: %v", err)
	}
	if stats.Devices != 400 || stats.Relays != 40 || stats.UEs != 360 {
		t.Fatalf("population split %d/%d/%d, want 400/40/360",
			stats.Devices, stats.Relays, stats.UEs)
	}
	if len(rep.Devices) != stats.Devices {
		t.Fatalf("report covers %d devices, want %d", len(rep.Devices), stats.Devices)
	}
	if stats.Events == 0 {
		t.Fatal("no kernel events fired")
	}
	// Most UEs heartbeat at least once within a period-plus-grace horizon
	// (a few start so late their first batch is still in flight at the
	// cut-off), so the city must deliver a substantial message volume.
	if stats.Deliveries < stats.UEs/2 {
		t.Fatalf("only %d deliveries for %d UEs", stats.Deliveries, stats.UEs)
	}
	if stats.L3Messages <= 0 {
		t.Fatal("no layer-3 messages recorded")
	}
}

// TestCityD2DSavesSignaling checks the paper's core claim at city scale:
// the same crowd with D2D forwarding produces less layer-3 signaling than
// every device holding its own cellular connection.
func TestCityD2DSavesSignaling(t *testing.T) {
	cfg := smallCity()
	_, with, err := RunCity(cfg)
	if err != nil {
		t.Fatalf("RunCity: %v", err)
	}
	cfg.DisableD2D = true
	_, base, err := RunCity(cfg)
	if err != nil {
		t.Fatalf("RunCity original: %v", err)
	}
	if with.L3Messages >= base.L3Messages {
		t.Fatalf("D2D city produced %d L3 messages, original system %d — no signaling saving",
			with.L3Messages, base.L3Messages)
	}
	t.Logf("L3 signaling: %d with D2D vs %d original (%.0f%% saved)",
		with.L3Messages, base.L3Messages,
		100*(1-float64(with.L3Messages)/float64(base.L3Messages)))
}

func TestCityScenarioDeterministic(t *testing.T) {
	run := func() string {
		rep, _, err := RunCity(smallCity())
		if err != nil {
			t.Fatalf("RunCity: %v", err)
		}
		return rep.Digest()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("repeat city runs diverged: %s vs %s", a, b)
	}
}

func TestCityConfigValidation(t *testing.T) {
	bad := []func(*CityConfig){
		func(c *CityConfig) { c.Devices = 0 },
		func(c *CityConfig) { c.RelayFraction = 0 },
		func(c *CityConfig) { c.RelayFraction = 1 },
		func(c *CityConfig) { c.Side = -1 },
		func(c *CityConfig) { c.Duration = 0 },
		func(c *CityConfig) { c.Capacity = 0 },
	}
	for i, mutate := range bad {
		cfg := CityShort()
		mutate(&cfg)
		if _, err := CityScenario(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
