package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"d2dhb/internal/cellular"
	"d2dhb/internal/core"
	"d2dhb/internal/d2d"
	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/matching"
	"d2dhb/internal/presence"
	"d2dhb/internal/radio"
	"d2dhb/internal/rrc"
	"d2dhb/internal/sched"
	"d2dhb/internal/simtime"
	"d2dhb/internal/trace"
)

// ParallelCityConfig parameterizes the tile-sharded city kernel. The
// population, area and traffic rules are exactly CityConfig's; Tiles and
// Window control the parallel substrate. For a given Seed the run is
// bit-identical — report digest and trace digest — for any Tiles value,
// because Tiles only changes how the same windowed computation is
// partitioned, never what it computes.
type ParallelCityConfig struct {
	CityConfig
	// Tiles is the number of spatial shards (1 = the same windowed model
	// on a single worker). NewTileGrid factors it into a grid.
	Tiles int
	// Window is the lookahead window W; cross-device effects land at the
	// next multiple of W. Zero selects DefaultParallelWindow.
	Window time.Duration
	// CaptureTrace records every trace event into the canonical per-window
	// merge and the run's trace digest. Off by default: the big presets
	// skip the capture cost.
	CaptureTrace bool
	// Tracer, when non-nil, receives the canonically merged event stream
	// (and implies capture).
	Tracer trace.Tracer
}

// DefaultParallelWindow is the default lookahead window. Heartbeat periods
// are minutes and expiries hundreds of seconds, so a 10 s forwarding
// latency is well inside every deadline while leaving tiles long
// uninterrupted runs.
const DefaultParallelWindow = 10 * time.Second

// CityParallelShort is the CI preset: CityShort on the given tile count.
func CityParallelShort(tiles int) ParallelCityConfig {
	return ParallelCityConfig{CityConfig: CityShort(), Tiles: tiles}
}

// CityParallelDay is the headline run: a 10k-device day on the given tile
// count.
func CityParallelDay(tiles int) ParallelCityConfig {
	return ParallelCityConfig{CityConfig: CityDay(), Tiles: tiles}
}

// CityParallel100kDay scales the day run to 100k devices, keeping the
// density of one device per 100 m².
func CityParallel100kDay(tiles int) ParallelCityConfig {
	cfg := CityParallelDay(tiles)
	cfg.Devices = 100_000
	cfg.Side = math.Round(math.Sqrt(float64(cfg.Devices) * 100))
	return cfg
}

// CityParallelMillion is the 1M-device smoke preset: two heartbeat periods
// at city density. It exists to prove the kernel's memory shape holds at
// 1M devices, not to be fast; tests gate it behind D2D_CITY_1M=1.
func CityParallelMillion(tiles int) ParallelCityConfig {
	cfg := CityParallelShort(tiles)
	cfg.Devices = 1_000_000
	cfg.Side = math.Round(math.Sqrt(float64(cfg.Devices) * 100))
	cfg.Duration = stdProfile().Period + 30*time.Second
	return cfg
}

func (c ParallelCityConfig) validate() error {
	if err := c.CityConfig.validate(); err != nil {
		return err
	}
	if c.Tiles < 1 {
		return fmt.Errorf("experiments: parallel city tiles must be >= 1, got %d", c.Tiles)
	}
	if c.Window < 0 {
		return fmt.Errorf("experiments: parallel city window must be non-negative, got %v", c.Window)
	}
	return nil
}

// ParallelCityStats extends CityStats with the parallel kernel's own
// observables.
type ParallelCityStats struct {
	CityStats
	Tiles   int
	Windows int
	// Migrations counts device moves between tiles at window boundaries.
	Migrations int
	// CrossTileOps counts boundary operations routed between devices
	// (including same-tile ones — every D2D effect is a boundary op).
	CrossTileOps int
	// TraceDigest is the canonical trace digest (empty unless captured).
	TraceDigest string
	TraceEvents int
}

// RunCityParallel builds and runs the tile-sharded city, returning a
// report with the same shape (and digest format) as the sequential
// kernel's plus the parallel stats.
func RunCityParallel(cfg ParallelCityConfig) (*core.Report, ParallelCityStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, ParallelCityStats{}, err
	}
	window := cfg.Window
	if window == 0 {
		window = DefaultParallelWindow
	}
	if window > cfg.Duration {
		window = cfg.Duration
	}

	pop, err := buildCityPopulation(cfg.CityConfig, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, ParallelCityStats{}, err
	}
	grid, err := geo.NewTileGrid(geo.Square(cfg.Side), cfg.Tiles)
	if err != nil {
		return nil, ParallelCityStats{}, err
	}
	group, err := simtime.NewTileGroup(cfg.Seed, grid.Tiles())
	if err != nil {
		return nil, ParallelCityStats{}, err
	}

	env := &parEnv{
		cfg:       cfg,
		profile:   stdProfile(),
		radio:     radio.WiFiDirectProfile(),
		model:     energy.DefaultModel(),
		match:     matching.DefaultConfig(),
		rrcCfg:    rrc.DefaultConfig(),
		grid:      grid,
		numRelays: len(pop.relays),
		orderOf:   make(map[hbmsg.DeviceID]int, cfg.Devices),
		traceOn:   cfg.CaptureTrace || cfg.Tracer != nil,
	}
	env.beacons, err = d2d.NewBeaconIndex(env.radio.MaxRange())
	if err != nil {
		return nil, ParallelCityStats{}, err
	}
	env.tiles = make([]*parTile, grid.Tiles())
	for i := range env.tiles {
		env.tiles[i] = &parTile{sched: group.Scheduler(i)}
	}

	n := cfg.Devices
	env.devices = make([]*pdevice, 0, n)
	env.posSnap = make([]geo.Point, n)
	env.advFree = make([]int, n)
	env.advIntent = make([]int, n)
	env.advAccepting = make([]bool, n)
	env.posNext = make([]geo.Point, n)
	env.advFreeNext = make([]int, n)
	env.advIntNext = make([]int, n)
	env.advAccNext = make([]bool, n)

	addDevice := func(d *pdevice) error {
		d.order = len(env.devices)
		env.devices = append(env.devices, d)
		env.orderOf[d.id] = d.order
		p := d.mob.Pos(0)
		env.posSnap[d.order] = p
		d.tile = grid.TileOf(p)
		tl := env.tiles[d.tile]
		d.tileIdx = len(tl.devices)
		tl.devices = append(tl.devices, d)
		d.agenda = simtime.NewAgenda(tl.sched)
		d.rng = simtime.NewDerivedRand(cfg.Seed, int64(d.order))
		d.ledger = energy.NewLedger()
		var start func()
		if d.relay != nil {
			start = d.relayStartPeriod
		} else {
			start = d.ueHeartbeat
		}
		if _, err := d.agenda.At(d.startOffset, start); err != nil {
			return fmt.Errorf("experiments: start %s: %w", d.id, err)
		}
		return nil
	}
	for i := range pop.relays {
		spec := &pop.relays[i]
		policy, err := sched.NewNagle(spec.Capacity, env.profile.Period)
		if err != nil {
			return nil, ParallelCityStats{}, err
		}
		d := &pdevice{
			env: env, id: spec.ID, role: d2d.RoleRelay,
			mob: spec.Mobility, startOffset: spec.StartOffset,
			relay: &prelay{
				capacity: spec.Capacity,
				policy:   policy,
				sources:  make(map[ackKey]int),
			},
		}
		if err := addDevice(d); err != nil {
			return nil, ParallelCityStats{}, err
		}
	}
	for i := range pop.ues {
		spec := &pop.ues[i]
		d := &pdevice{
			env: env, id: spec.ID, role: d2d.RoleUE,
			mob: spec.Mobility, startOffset: spec.StartOffset,
			ue: &pue{relayOrder: -1, pending: make(map[uint64]*ppending)},
		}
		if err := addDevice(d); err != nil {
			return nil, ParallelCityStats{}, err
		}
	}

	tracker := presence.NewTracker()
	digest := trace.NewDigest()
	stats := ParallelCityStats{Tiles: grid.Tiles()}
	var deliveries, late int
	var deliveryBuf []parDelivery
	var traceBufs [][]trace.Keyed

	begin := func(tile int, _ time.Duration) error {
		tl := env.tiles[tile]
		for i := range tl.inOps {
			env.devices[tl.inOps[i].dst].applyOp(tl.inOps[i])
		}
		tl.inOps = tl.inOps[:0]
		return nil
	}
	end := func(tile int, boundary time.Duration) error {
		tl := env.tiles[tile]
		final := boundary >= cfg.Duration
		for _, d := range tl.devices {
			p := d.pos(boundary)
			env.posNext[d.order] = p
			if d.relay != nil {
				r := d.relay
				free := 0
				if r.policy.Accepting() {
					free = r.capacity - r.policy.Pending()
				}
				env.advFreeNext[d.order] = free
				env.advIntNext[d.order] = d2d.IntentForLoad(r.capacity-free, r.capacity)
				env.advAccNext[d.order] = r.started
			}
			if !final && grid.TileOf(p) != d.tile {
				tl.migrants = append(tl.migrants, d)
			}
		}
		return nil
	}
	barrier := func(boundary time.Duration, final bool) error {
		stats.Windows++
		// Network-side deliveries: merge this window's per-tile logs in
		// canonical (at, via, viaSeq) order and feed the presence tracker.
		// Within one window instants only grow, so the tracker sees a
		// monotone stream exactly as in the sequential kernel.
		deliveryBuf = deliveryBuf[:0]
		for _, tl := range env.tiles {
			deliveryBuf = append(deliveryBuf, tl.deliveries...)
			tl.deliveries = tl.deliveries[:0]
		}
		sort.Slice(deliveryBuf, func(i, j int) bool {
			a, b := deliveryBuf[i], deliveryBuf[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.viaOrder != b.viaOrder {
				return a.viaOrder < b.viaOrder
			}
			return a.viaSeq < b.viaSeq
		})
		for i := range deliveryBuf {
			del := &deliveryBuf[i]
			deliveries++
			if !del.onTime {
				late++
			}
			if err := tracker.Deliver(del.hb, del.at); err != nil {
				return fmt.Errorf("experiments: presence: %w", err)
			}
		}
		if env.traceOn {
			traceBufs = traceBufs[:0]
			for _, tl := range env.tiles {
				traceBufs = append(traceBufs, tl.events)
			}
			merged := trace.MergeKeyed(traceBufs...)
			digest.Add(merged)
			if cfg.Tracer != nil {
				for i := range merged {
					cfg.Tracer.Emit(merged[i].Ev)
				}
			}
			for _, tl := range env.tiles {
				tl.events = tl.events[:0]
			}
		}
		if final {
			// Ops queued in the final window would land beyond the horizon;
			// they are cut, exactly as the sequential kernel leaves queued
			// timers unfired at the horizon.
			return nil
		}
		// Publish the boundary snapshot the end hooks just wrote.
		env.posSnap, env.posNext = env.posNext, env.posSnap
		env.advFree, env.advFreeNext = env.advFreeNext, env.advFree
		env.advIntent, env.advIntNext = env.advIntNext, env.advIntent
		env.advAccepting, env.advAccNext = env.advAccNext, env.advAccepting
		// Migrations before op routing: an op's destination tile is where
		// the device will spend the next window.
		for _, tl := range env.tiles {
			for _, d := range tl.migrants {
				if err := env.migrate(d, grid.TileOf(env.posSnap[d.order])); err != nil {
					return err
				}
				stats.Migrations++
			}
			tl.migrants = tl.migrants[:0]
		}
		// Route boundary ops in their global canonical order, split per
		// destination tile; each tile applies its slice in order at the
		// start of the next window.
		var ops []parOp
		for _, tl := range env.tiles {
			ops = append(ops, tl.outOps...)
			tl.outOps = tl.outOps[:0]
		}
		sort.Slice(ops, func(i, j int) bool {
			a, b := ops[i], ops[j]
			if a.createdAt != b.createdAt {
				return a.createdAt < b.createdAt
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.srcSeq < b.srcSeq
		})
		for i := range ops {
			dst := env.devices[ops[i].dst]
			env.tiles[dst.tile].inOps = append(env.tiles[dst.tile].inOps, ops[i])
		}
		stats.CrossTileOps += len(ops)
		env.rebuildBeacons()
		return nil
	}

	if err := group.Run(cfg.Duration, window, begin, end, barrier); err != nil {
		return nil, ParallelCityStats{}, err
	}

	devs := make([]*core.DeviceReport, 0, n)
	totalL3 := 0
	for _, d := range env.devices {
		c := d.rrc.countersAt(cfg.Duration)
		totalL3 += c.L3Messages
		_, flaps, _ := tracker.Stats(d.id, cfg.Duration)
		dr := &core.DeviceReport{
			ID:            d.id,
			Role:          d.role,
			Energy:        d.ledger.Snapshot(),
			Total:         d.ledger.Total(),
			RRC:           c,
			Availability:  tracker.Availability(d.id, cfg.Duration),
			PresenceFlaps: flaps,
		}
		if d.relay != nil {
			st := d.relay.stats
			dr.Relay = &st
		} else {
			st := d.ue.stats
			dr.UE = &st
		}
		devs = append(devs, dr)
	}
	rep := core.NewReport(cfg.Duration, devs, totalL3, deliveries, late, cellular.ChannelReport{})

	stats.CityStats = CityStats{
		Devices:    cfg.Devices,
		Relays:     env.numRelays,
		UEs:        cfg.Devices - env.numRelays,
		Events:     group.Fired(),
		SimSeconds: cfg.Duration.Seconds(),
		L3Messages: totalL3,
		Deliveries: deliveries,
		OnTimeRate: rep.OnTimeRate(),
	}
	if env.traceOn {
		sum, err := digest.Sum()
		if err != nil {
			return nil, ParallelCityStats{}, fmt.Errorf("experiments: trace digest: %w", err)
		}
		stats.TraceDigest = sum
		stats.TraceEvents = digest.Events()
	}
	return rep, stats, nil
}

// migrate moves a device (and its agenda) to a new tile at a window
// boundary. Runs on the barrier goroutine only.
func (env *parEnv) migrate(d *pdevice, newTile int) error {
	old := env.tiles[d.tile]
	last := len(old.devices) - 1
	moved := old.devices[last]
	old.devices[d.tileIdx] = moved
	moved.tileIdx = d.tileIdx
	old.devices = old.devices[:last]

	nt := env.tiles[newTile]
	d.tile = newTile
	d.tileIdx = len(nt.devices)
	nt.devices = append(nt.devices, d)
	if err := d.agenda.Rehome(nt.sched); err != nil {
		return fmt.Errorf("experiments: migrate %s: %w", d.id, err)
	}
	return nil
}

// rebuildBeacons refreshes the discovery snapshot from the just-sampled
// advertised state, in population order.
func (env *parEnv) rebuildBeacons() {
	env.beaconBuf = env.beaconBuf[:0]
	for order := 0; order < env.numRelays; order++ {
		if !env.advAccepting[order] {
			continue
		}
		env.beaconBuf = append(env.beaconBuf, d2d.Beacon{
			ID:           env.devices[order].id,
			Order:        order,
			Pos:          env.posSnap[order],
			Accepting:    true,
			FreeCapacity: env.advFree[order],
			Intent:       env.advIntent[order],
		})
	}
	env.beacons.Rebuild(env.beaconBuf)
}
