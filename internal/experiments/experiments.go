// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated substrates, plus the ablation
// studies listed in DESIGN.md. Each experiment returns the same rows or
// series the paper reports together with the paper's reference values, so
// callers (the d2dbench CLI and the benchmark suite) can print
// paper-vs-measured comparisons.
package experiments

import (
	"fmt"
	"time"

	"d2dhb/internal/core"
	"d2dhb/internal/energy"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/matching"
	"d2dhb/internal/sched"
)

// DefaultSeed is used by the CLI and benchmarks; every experiment is
// deterministic given its seed.
const DefaultSeed = 2017 // ICDCS 2017

// stdProfile is the paper's standard 54 B heartbeat (Section V-A).
func stdProfile() hbmsg.AppProfile { return hbmsg.StandardHeartbeat() }

// runPair runs the canonical measurement scenario — one relay plus numUEs
// UEs at the given distance — for k relay periods and returns the report.
func runPair(seed int64, profile hbmsg.AppProfile, k, numUEs int, distance float64, capacity int, policy sched.Kind) (*core.Report, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k must be positive, got %d", k)
	}
	opts := core.Options{
		Seed: seed,
		// k periods plus a grace that covers the final flush's RRC release
		// but no further heartbeat (UE offsets start at 20 s).
		Duration: time.Duration(k)*profile.Period + 10*time.Second,
		Policy:   policy,
	}
	sim, err := core.PairScenario(opts, profile, numUEs, distance, capacity)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// runPairMatched is runPair with an explicit matching prejudgment
// distance.
func runPairMatched(seed int64, profile hbmsg.AppProfile, k, numUEs int, distance float64, capacity int, maxMatchDist float64) (*core.Report, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k must be positive, got %d", k)
	}
	match := matching.DefaultConfig()
	match.MaxDistance = maxMatchDist
	opts := core.Options{
		Seed:     seed,
		Duration: time.Duration(k)*profile.Period + 10*time.Second,
		Match:    &match,
	}
	sim, err := core.PairScenario(opts, profile, numUEs, distance, capacity)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// runOriginalDevice returns the report of a single device sending its own
// heartbeats directly over cellular for k periods — the paper's "original
// system" reference curve.
func runOriginalDevice(seed int64, profile hbmsg.AppProfile, k int) (*core.Report, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k must be positive, got %d", k)
	}
	opts := core.Options{
		Seed:       seed,
		Duration:   time.Duration(k)*profile.Period + 10*time.Second,
		DisableD2D: true,
	}
	sim, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	if _, err := sim.AddUE(core.UESpec{
		ID:          "orig",
		Profile:     profile,
		StartOffset: 20 * time.Second,
	}); err != nil {
		return nil, err
	}
	return sim.Run()
}

// deviceEnergy returns the total charge of one device in a report.
func deviceEnergy(rep *core.Report, id hbmsg.DeviceID) (energy.MicroAmpHours, error) {
	d, ok := rep.Device(id)
	if !ok {
		return 0, fmt.Errorf("experiments: device %s missing from report", id)
	}
	return d.Total, nil
}

// sumUEEnergy returns the total charge across all UE devices in a pair
// report.
func sumUEEnergy(rep *core.Report) energy.MicroAmpHours {
	var sum energy.MicroAmpHours
	for _, d := range rep.Devices {
		if d.UE != nil {
			sum += d.Total
		}
	}
	return sum
}
