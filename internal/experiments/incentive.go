package experiments

import (
	"fmt"
	"time"

	"d2dhb/internal/core"
	"d2dhb/internal/energy"
	"d2dhb/internal/geo"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/metrics"
)

// IncentiveRow summarizes the relay-side economics at one UE count.
type IncentiveRow struct {
	UEs int
	// CreditsPerDay is the number of forwarded heartbeats (one credit
	// each, as in the Karma-Go-style scheme of Section III-A).
	CreditsPerDay int
	// ExtraBatteryShare is the relay's additional daily battery drain
	// versus being an ordinary device.
	ExtraBatteryShare float64
	// CreditsPerBatteryPercent is the exchange rate the operator must
	// beat for relaying to be worthwhile.
	CreditsPerBatteryPercent float64
}

// Incentive quantifies the relay's side of the bargain (Section III-A):
// how many reward credits a relay earns per day against the extra battery
// it burns, across UE counts. The operator can price credits (e.g. Karma
// Go's $1 or 100 MB per ~credit-bundle) anywhere above the relay's cost.
func Incentive(seed int64) ([]IncentiveRow, *metrics.Table, error) {
	profile := stdProfile()
	battery := energy.GalaxyS4Battery()
	const day = 24 * time.Hour
	periodsPerDay := int(day / profile.Period)

	// Baseline: the relay device as an ordinary cellular sender.
	origRep, err := runOriginalDevice(seed, profile, periodsPerDay)
	if err != nil {
		return nil, nil, err
	}
	origE, err := deviceEnergy(origRep, "orig")
	if err != nil {
		return nil, nil, err
	}

	var rows []IncentiveRow
	t := metrics.NewTable(
		"Relay incentive economics (24 h, Galaxy S4)",
		"UEs", "credits/day", "extra battery/day", "credits per battery-%")
	for _, n := range []int{1, 3, 5, 7} {
		opts := core.Options{Seed: seed, Duration: day}
		sim, err := core.PairScenario(opts, profile, n, 1, n+1)
		if err != nil {
			return nil, nil, err
		}
		rep, err := sim.Run()
		if err != nil {
			return nil, nil, err
		}
		relay, ok := rep.Device("relay")
		if !ok || relay.Relay == nil {
			return nil, nil, fmt.Errorf("experiments: relay missing")
		}
		extra := battery.DrainFraction(relay.Total - origE)
		row := IncentiveRow{
			UEs:               n,
			CreditsPerDay:     relay.Relay.Credits,
			ExtraBatteryShare: extra,
		}
		if extra > 0 {
			row.CreditsPerBatteryPercent = float64(row.CreditsPerDay) / (extra * 100)
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", row.CreditsPerDay),
			metrics.Pct(row.ExtraBatteryShare), metrics.F(row.CreditsPerBatteryPercent))
	}
	return rows, t, nil
}

// ExpiryFactorRow summarizes scheduling behaviour at one expiry factor.
type ExpiryFactorRow struct {
	Factor float64
	// CapacityFlushes / DeadlineFlushes / PeriodEndFlushes break down why
	// the relay released its batches.
	CapacityFlushes  int
	DeadlineFlushes  int
	PeriodEndFlushes int
	OnTimeRate       float64
	L3Messages       int
}

// ExpiryFactorAblation sweeps the per-message expiration time T_k = factor
// × period. The paper notes commercial apps tolerate 3T while its scheduler
// conservatively bounds delay by T; this sweep shows how relaxed expiries
// shift flushes from deadline-driven to period-end-driven without changing
// signaling, while tight expiries force early flushes.
func ExpiryFactorAblation(seed int64) ([]ExpiryFactorRow, *metrics.Table, error) {
	const (
		numUEs  = 3
		periods = 6
	)
	relayProfile := stdProfile()

	var rows []ExpiryFactorRow
	t := metrics.NewTable(
		"Ablation: expiry factor T_k = f×T (3 UEs, 6 periods)",
		"factor", "capacity flushes", "deadline flushes", "period-end flushes", "on-time", "L3 msgs")
	for _, factor := range []float64{0.1, 0.5, 1, 3} {
		ueProfile := stdProfile()
		ueProfile.ExpiryFactor = factor
		opts := core.Options{
			Seed:     seed,
			Duration: time.Duration(periods)*relayProfile.Period + 10*time.Second,
		}
		sim, err := core.New(opts)
		if err != nil {
			return nil, nil, err
		}
		relay, err := sim.AddRelay(core.RelaySpec{ID: "relay", Profile: relayProfile, Capacity: 8})
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < numUEs; i++ {
			if _, err := sim.AddUE(core.UESpec{
				ID:          hbmsg.DeviceID(fmt.Sprintf("ue-%02d", i+1)),
				Profile:     ueProfile,
				Mobility:    geo.Orbit{Radius: 1, Phase: float64(i)},
				StartOffset: 20*time.Second + time.Duration(i)*40*time.Second,
			}); err != nil {
				return nil, nil, err
			}
		}
		rep, err := sim.Run()
		if err != nil {
			return nil, nil, err
		}
		st := relay.Stats()
		row := ExpiryFactorRow{
			Factor:           factor,
			CapacityFlushes:  st.FlushesByCapacity,
			DeadlineFlushes:  st.FlushesByDeadline,
			PeriodEndFlushes: st.FlushesByPeriodEnd,
			OnTimeRate:       rep.OnTimeRate(),
			L3Messages:       rep.TotalL3Messages,
		}
		rows = append(rows, row)
		t.AddRow(metrics.F(factor), fmt.Sprintf("%d", row.CapacityFlushes),
			fmt.Sprintf("%d", row.DeadlineFlushes), fmt.Sprintf("%d", row.PeriodEndFlushes),
			metrics.Pct(row.OnTimeRate), fmt.Sprintf("%d", row.L3Messages))
	}
	return rows, t, nil
}
