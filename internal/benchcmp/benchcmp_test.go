package benchcmp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// baseline builds a representative healthy report.
func baseline() *Report {
	return &Report{
		Revision:  "aaaaaaa",
		Timestamp: "2026-08-08T00:00:00Z",
		GoVersion: "go1.22",
		Kernel: KernelBench{
			Events: 2_000_000, NsPerEvent: 20, EventsPerSec: 50e6,
			AllocsPerEvent: 0, BytesPerEvent: 0,
		},
		Scans: []ScanBench{
			{Devices: 1000, NsPerScan: 40_000},
			{Devices: 10000, NsPerScan: 400_000},
		},
		Figures: []FigureTime{
			{Name: "fig3_signaling", WallMs: 120},
			{Name: "fig7_energy", WallMs: 340},
		},
		City: &CityBench{
			Preset: "short", Devices: 20000, SimSeconds: 600,
			Events: 1_234_567, WallMs: 900, EventsPerSec: 1.3e6,
			L3Messages: 44_000, Deliveries: 190_000, OnTimeRate: 0.998,
		},
		CityParallel: []CityParallelBench{
			{Preset: "parshort", Devices: 10000, Tiles: 16, Cores: 1, SimSeconds: 570,
				Events: 600_000, WallMs: 330, EventsPerSec: 1.8e6, Deliveries: 19_000, OnTimeRate: 0.94},
			{Preset: "parshort", Devices: 10000, Tiles: 16, Cores: 4, SimSeconds: 570,
				Events: 600_000, WallMs: 110, EventsPerSec: 5.4e6, Deliveries: 19_000, OnTimeRate: 0.94},
		},
		LivePath: &LivePathBench{
			BatchEntries:      32,
			EncodeHeartbeatNs: 90, EncodeHeartbeatAllocs: 0,
			DecodeHeartbeatNs: 130, DecodeHeartbeatAllocs: 0,
			HeartbeatFrameBytes: 53,
			EncodeBatchNs:       1900, EncodeBatchAllocs: 0,
			DecodeBatchNs: 2600, DecodeBatchAllocs: 0,
			BatchFrameBytes: 1400,
			Parity: &LiveParity{
				Trace: "trunked_cluster_3shard.d2dr", TraceDigest: "abcd1234",
				RecordedDeliveryRatio: 0.97, SimDeliveryRatio: 0.98,
				LiveDeliveryRatio: 0.96, DeliveryGap: 0.02, SimDigest: "feed5678",
			},
		},
	}
}

func findingFor(t *testing.T, d *Diff, metric string) Finding {
	t.Helper()
	for _, f := range d.Findings {
		if f.Metric == metric {
			return f
		}
	}
	t.Fatalf("no finding for %s in %+v", metric, d.Findings)
	return Finding{}
}

// TestSelfComparePasses is half of the gate's acceptance contract: a report
// compared against itself must never fail.
func TestSelfComparePasses(t *testing.T) {
	old := baseline()
	d := Compare(old, baseline())
	if d.Failed() {
		t.Fatalf("self-compare failed: %+v", d.Regressions())
	}
	for _, f := range d.Findings {
		if f.Severity != SevOK {
			t.Fatalf("self-compare produced non-ok finding %+v", f)
		}
	}
}

// TestNoiseWithinFloorPasses: jitter under the absolute floors must pass
// even when it is a large relative change (the ns-scale noise problem).
func TestNoiseWithinFloorPasses(t *testing.T) {
	old := baseline()
	noisy := baseline()
	noisy.Kernel.NsPerEvent = 34      // +70% but only +14 ns, under the 15 ns floor
	noisy.Scans[0].NsPerScan = 62_000 // +55% but +22 µs, under the 25 µs floor
	noisy.Figures[0].WallMs = 260     // +117% but +140 ms, under the 150 ms floor
	noisy.City.WallMs = 1390          // +54% but +490 ms, under the 500 ms floor
	d := Compare(old, noisy)
	if d.Failed() {
		t.Fatalf("floor-level noise failed the gate: %+v", d.Regressions())
	}
}

// TestLargeAbsoluteSmallRelativePasses: a big absolute delta with a small
// relative change is within the relative threshold and must pass.
func TestLargeAbsoluteSmallRelativePasses(t *testing.T) {
	old := baseline()
	grown := baseline()
	grown.Scans[1].NsPerScan = 500_000 // +100 µs but only +25%
	d := Compare(old, grown)
	if d.Failed() {
		t.Fatalf("in-threshold growth failed the gate: %+v", d.Regressions())
	}
}

// TestInjectedRegressionFails is the other half of the acceptance contract:
// a genuinely regressed report must fail the gate on the right metrics.
func TestInjectedRegressionFails(t *testing.T) {
	old := baseline()
	bad := baseline()
	bad.Revision = "bbbbbbb"
	bad.Kernel.NsPerEvent = 80    // 4× slower
	bad.Kernel.AllocsPerEvent = 2 // zero-alloc kernel now allocates
	bad.Scans[1].NsPerScan = 1_500_000
	bad.Figures[1].WallMs = 1600
	bad.City.WallMs = 4000
	bad.City.OnTimeRate = 0.91

	d := Compare(old, bad)
	if !d.Failed() {
		t.Fatal("injected regression passed the gate")
	}
	for _, metric := range []string{
		"kernel.ns_per_event", "kernel.allocs_per_event",
		"scan@10000.ns_per_scan", "figure.fig7_energy.wall_ms",
		"city.wall_ms", "city.on_time_rate",
	} {
		if f := findingFor(t, d, metric); f.Severity != SevFail {
			t.Errorf("%s: severity %s, want fail", metric, f.Severity)
		}
	}
	// Untouched metrics must stay clean.
	for _, metric := range []string{"kernel.bytes_per_event", "scan@1000.ns_per_scan", "figure.fig3_signaling.wall_ms"} {
		if f := findingFor(t, d, metric); f.Severity != SevOK {
			t.Errorf("%s: severity %s, want ok", metric, f.Severity)
		}
	}
	if len(d.Regressions()) != 6 {
		t.Fatalf("regressions %d, want 6: %+v", len(d.Regressions()), d.Regressions())
	}
}

// TestMissingMeasurementsFail: dropping a benchmark from the suite must not
// silently pass the gate.
func TestMissingMeasurementsFail(t *testing.T) {
	old := baseline()
	gutted := baseline()
	gutted.Scans = gutted.Scans[:1]
	gutted.Figures = gutted.Figures[1:]
	gutted.City = nil
	d := Compare(old, gutted)
	if !d.Failed() {
		t.Fatal("gutted report passed")
	}
	for _, metric := range []string{"scan@10000.ns_per_scan", "figure.fig3_signaling.wall_ms", "city.wall_ms"} {
		f := findingFor(t, d, metric)
		if f.Severity != SevFail || !strings.Contains(f.Note, "missing") {
			t.Errorf("%s: %+v, want missing-measurement failure", metric, f)
		}
	}
}

// TestNewMeasurementsAreInfo: measurements only the new report has are
// informational, never failures.
func TestNewMeasurementsAreInfo(t *testing.T) {
	old := baseline()
	old.Scans = old.Scans[:1]
	old.Figures = old.Figures[:1]
	old.City = nil
	grown := baseline()
	d := Compare(old, grown)
	if d.Failed() {
		t.Fatalf("added measurements failed the gate: %+v", d.Regressions())
	}
	for _, metric := range []string{"scan@10000.ns_per_scan", "figure.fig7_energy.wall_ms", "city.wall_ms"} {
		if f := findingFor(t, d, metric); f.Severity != SevInfo {
			t.Errorf("%s: severity %s, want info", metric, f.Severity)
		}
	}
}

// TestDeterministicCountersAreInfo: the seeded macro-run's counters
// changing is a behavior diff to surface, not a perf failure — but the
// on-time rate improving must stay ok.
func TestDeterministicCountersAreInfo(t *testing.T) {
	old := baseline()
	changed := baseline()
	changed.City.L3Messages = 43_000
	changed.City.OnTimeRate = 0.999
	d := Compare(old, changed)
	if d.Failed() {
		t.Fatalf("counter drift failed the gate: %+v", d.Regressions())
	}
	if f := findingFor(t, d, "city.l3_messages"); f.Severity != SevInfo {
		t.Fatalf("l3 drift severity %s, want info", f.Severity)
	}
	if f := findingFor(t, d, "city.on_time_rate"); f.Severity != SevOK {
		t.Fatalf("on-time improvement severity %s, want ok", f.Severity)
	}
}

// TestCityPresetChangeSkipsComparison: comparing different presets would be
// meaningless, so the comparator flags and skips instead.
func TestCityPresetChangeSkipsComparison(t *testing.T) {
	old := baseline()
	changed := baseline()
	changed.City.Preset = "metro"
	changed.City.WallMs = 90_000
	d := Compare(old, changed)
	if d.Failed() {
		t.Fatalf("preset change failed the gate: %+v", d.Regressions())
	}
	f := findingFor(t, d, "city.preset")
	if f.Severity != SevInfo || !strings.Contains(f.Note, "preset changed") {
		t.Fatalf("preset finding %+v", f)
	}
}

// TestCityParallelGrandfather: a baseline predating the city_parallel
// section must never fail on it — every new point reports as info. This
// is how the section phases in without forcing a baseline flag-day.
func TestCityParallelGrandfather(t *testing.T) {
	old := baseline()
	old.CityParallel = nil
	d := Compare(old, baseline())
	if d.Failed() {
		t.Fatalf("grandfathered section failed the gate: %+v", d.Regressions())
	}
	f := findingFor(t, d, "city_parallel.parshort@t16.c1.wall_ms")
	if f.Severity != SevInfo || !strings.Contains(f.Note, "no baseline section") {
		t.Fatalf("grandfather finding %+v, want info/no-baseline-section", f)
	}
}

// TestCityParallelGate: once the baseline carries the section, the gate
// applies in full — wall regressions and on-time drops fail, counter
// drift is info, vanished points fail, added points are info.
func TestCityParallelGate(t *testing.T) {
	if d := Compare(baseline(), baseline()); d.Failed() {
		t.Fatalf("self-compare failed: %+v", d.Regressions())
	}

	bad := baseline()
	bad.CityParallel[0].WallMs = 2000 // 6× slower, past rel and floor
	bad.CityParallel[1].OnTimeRate = 0.90
	bad.CityParallel[1].Deliveries = 18_500
	d := Compare(baseline(), bad)
	if !d.Failed() {
		t.Fatal("regressed parallel section passed the gate")
	}
	if f := findingFor(t, d, "city_parallel.parshort@t16.c1.wall_ms"); f.Severity != SevFail {
		t.Errorf("wall regression severity %s, want fail", f.Severity)
	}
	if f := findingFor(t, d, "city_parallel.parshort@t16.c4.on_time_rate"); f.Severity != SevFail {
		t.Errorf("on-time drop severity %s, want fail", f.Severity)
	}
	if f := findingFor(t, d, "city_parallel.parshort@t16.c4.deliveries"); f.Severity != SevInfo {
		t.Errorf("counter drift severity %s, want info", f.Severity)
	}

	gutted := baseline()
	gutted.CityParallel = gutted.CityParallel[:1]
	d = Compare(baseline(), gutted)
	if !d.Failed() {
		t.Fatal("vanished measurement point passed the gate")
	}
	f := findingFor(t, d, "city_parallel.parshort@t16.c4.wall_ms")
	if f.Severity != SevFail || !strings.Contains(f.Note, "missing") {
		t.Errorf("vanished point finding %+v, want missing-measurement failure", f)
	}

	grown := baseline()
	grown.CityParallel = append(grown.CityParallel, CityParallelBench{
		Preset: "parday", Devices: 100000, Tiles: 64, Cores: 4, WallMs: 60_000,
	})
	d = Compare(baseline(), grown)
	if d.Failed() {
		t.Fatalf("added point failed the gate: %+v", d.Regressions())
	}
	if f := findingFor(t, d, "city_parallel.parday@t64.c4.wall_ms"); f.Severity != SevInfo {
		t.Errorf("added point severity %s, want info", f.Severity)
	}

	resized := baseline()
	resized.CityParallel[0].Devices = 20_000
	resized.CityParallel[0].WallMs = 5000
	d = Compare(baseline(), resized)
	if d.Failed() {
		t.Fatalf("resized preset failed the gate: %+v", d.Regressions())
	}
	if f := findingFor(t, d, "city_parallel.parshort@t16.c1.devices"); f.Severity != SevInfo {
		t.Errorf("resize severity %s, want info", f.Severity)
	}
}

func TestRuleExceeded(t *testing.T) {
	r := rule{rel: 1.0, floor: 10}
	cases := []struct {
		old, new float64
		want     bool
	}{
		{100, 100, false},
		{100, 150, false}, // +50% rel, under threshold
		{100, 109, false}, // under floor
		{5, 14, false},    // +180% rel but +9 under floor
		{100, 211, true},  // past both
		{0, 5, false},     // from zero, under floor
		{0, 11, true},     // from zero, past floor
		{200, 100, false}, // improvement
	}
	for _, c := range cases {
		if got := r.exceeded(c.old, c.new); got != c.want {
			t.Errorf("exceeded(%v, %v) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}

func TestDiffOutputs(t *testing.T) {
	old := baseline()
	bad := baseline()
	bad.Revision = "bbbbbbb"
	bad.Kernel.NsPerEvent = 80
	d := Compare(old, bad)

	table := d.Table().String()
	for _, want := range []string{"aaaaaaa", "bbbbbbb", "kernel.ns_per_event", "fail (regression)", "+300.0"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	raw, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Diff
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Failed() || back.NewRevision != "bbbbbbb" {
		t.Fatalf("JSON round-trip lost the verdict: %+v", back)
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "BENCH_good.json")
	raw, err := json.Marshal(baseline())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(good)
	if err != nil {
		t.Fatal(err)
	}
	if r.Revision != "aaaaaaa" || len(r.Scans) != 2 || r.City == nil {
		t.Fatalf("loaded %+v", r)
	}

	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(garbage); err == nil {
		t.Fatal("garbage accepted")
	}
	norev := filepath.Join(dir, "norev.json")
	if err := os.WriteFile(norev, []byte(`{"kernel":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(norev); err == nil {
		t.Fatal("revision-less report accepted")
	}
}

// TestLivePathAllocRegressionFails: the zero-alloc wire path must stay
// zero-alloc — a fraction of an allocation per frame over the 0.5 floor
// fails regardless of how small it looks.
func TestLivePathAllocRegressionFails(t *testing.T) {
	old := baseline()
	bad := baseline()
	bad.LivePath.DecodeBatchAllocs = 1
	d := Compare(old, bad)
	f := findingFor(t, d, "live_path.decode_batch_allocs")
	if f.Severity != SevFail {
		t.Fatalf("alloc regression not failed: %+v", f)
	}
	// Sub-floor noise (a pool interaction flickering 0 → 0.3) passes.
	noisy := baseline()
	noisy.LivePath.EncodeHeartbeatAllocs = 0.3
	if d := Compare(old, noisy); d.Failed() {
		t.Fatalf("sub-floor alloc noise failed the gate: %+v", d.Regressions())
	}
}

// TestLivePathNsRegression: codec timing obeys the loose wall-clock rule —
// big relative+absolute growth fails, floor-level jitter passes.
func TestLivePathNsRegression(t *testing.T) {
	old := baseline()
	bad := baseline()
	bad.LivePath.EncodeHeartbeatNs = 900 // 10× and +810 ns
	if f := findingFor(t, Compare(old, bad), "live_path.encode_heartbeat_ns"); f.Severity != SevFail {
		t.Fatalf("10x encode slowdown not failed: %+v", f)
	}
	noisy := baseline()
	noisy.LivePath.DecodeHeartbeatNs = 380 // ~3× but only +250 ns, under the 300 ns floor
	if d := Compare(old, noisy); d.Failed() {
		t.Fatalf("floor-level codec noise failed the gate: %+v", d.Regressions())
	}
}

// TestLivePathFrameSizeChangeIsInfo: encoded frame sizes are deterministic
// wire facts; drift reports as info, never fail.
func TestLivePathFrameSizeChangeIsInfo(t *testing.T) {
	old := baseline()
	changed := baseline()
	changed.LivePath.BatchFrameBytes += 64
	f := findingFor(t, Compare(old, changed), "live_path.batch_frame_bytes")
	if f.Severity != SevInfo || !strings.Contains(f.Note, "wire format") {
		t.Fatalf("frame size drift not info: %+v", f)
	}
}

// TestLivePathGrandfather: baselines without a live_path section never
// fail on it (the section phases in as info), but once a baseline carries
// it, a new report that loses it fails.
func TestLivePathGrandfather(t *testing.T) {
	old := baseline()
	old.LivePath = nil
	d := Compare(old, baseline())
	f := findingFor(t, d, "live_path.encode_heartbeat_ns")
	if f.Severity != SevInfo || d.Failed() {
		t.Fatalf("grandfathered section not info: %+v (failed=%v)", f, d.Failed())
	}

	lost := baseline()
	lost.LivePath = nil
	d = Compare(baseline(), lost)
	if f := findingFor(t, d, "live_path.encode_heartbeat_ns"); f.Severity != SevFail {
		t.Fatalf("dropped live_path section not failed: %+v", f)
	}
}

// TestParityGapRules: the sim column is deterministic (digest drift →
// info), and only a large absolute widening of the sim-vs-live delivery
// gap fails — live-replay noise under the 0.10 floor passes.
func TestParityGapRules(t *testing.T) {
	old := baseline()
	wide := baseline()
	wide.LivePath.Parity.LiveDeliveryRatio = 0.80
	wide.LivePath.Parity.DeliveryGap = 0.18
	if f := findingFor(t, Compare(old, wide), "live_path.parity.delivery_gap"); f.Severity != SevFail {
		t.Fatalf("widened parity gap not failed: %+v", f)
	}

	noisy := baseline()
	noisy.LivePath.Parity.DeliveryGap = 0.09 // +0.07, under the 0.10 growth bound
	if d := Compare(old, noisy); d.Failed() {
		t.Fatalf("sub-floor parity noise failed the gate: %+v", d.Regressions())
	}

	drift := baseline()
	drift.LivePath.Parity.SimDigest = "other"
	drift.LivePath.Parity.SimDeliveryRatio = 0.975
	if f := findingFor(t, Compare(old, drift), "live_path.parity.sim_delivery_ratio"); f.Severity != SevInfo {
		t.Fatalf("sim digest drift not info: %+v", f)
	}

	// A different corpus trace makes the gap columns incomparable: info,
	// skip.
	swapped := baseline()
	swapped.LivePath.Parity.TraceDigest = "ffff0000"
	d := Compare(old, swapped)
	if f := findingFor(t, d, "live_path.parity.trace"); f.Severity != SevInfo {
		t.Fatalf("trace swap not info: %+v", f)
	}
	if d.Failed() {
		t.Fatalf("trace swap failed the gate: %+v", d.Regressions())
	}

	// Grandfather for the sub-block alone: a baseline whose live_path has
	// no parity (trace absent on that box) phases in as info; losing a
	// recorded parity block fails.
	noParity := baseline()
	noParity.LivePath.Parity = nil
	if d := Compare(noParity, baseline()); d.Failed() {
		t.Fatalf("parity phase-in failed the gate: %+v", d.Regressions())
	}
	if f := findingFor(t, Compare(baseline(), noParity), "live_path.parity.delivery_gap"); f.Severity != SevFail {
		t.Fatalf("dropped parity block not failed: %+v", f)
	}
}
