package benchcmp

import (
	"encoding/json"
	"fmt"
	"strings"

	"d2dhb/internal/metrics"
)

// Severity classifies one comparison finding.
type Severity string

// Finding severities. Only SevFail fails the gate.
const (
	SevOK   Severity = "ok"
	SevInfo Severity = "info"
	SevFail Severity = "fail"
)

// Finding is one metric's old-vs-new verdict.
type Finding struct {
	Metric    string   `json:"metric"`
	Old       float64  `json:"old"`
	New       float64  `json:"new"`
	RelChange float64  `json:"rel_change"`          // (new-old)/old; 0 when old == 0
	Threshold float64  `json:"threshold,omitempty"` // allowed relative growth
	Floor     float64  `json:"floor,omitempty"`     // absolute noise floor
	Severity  Severity `json:"severity"`
	Note      string   `json:"note,omitempty"`
}

// Diff is the full comparison outcome.
type Diff struct {
	OldRevision string    `json:"old_revision"`
	NewRevision string    `json:"new_revision"`
	Findings    []Finding `json:"findings"`
}

// Failed reports whether any finding fails the gate.
func (d *Diff) Failed() bool {
	for _, f := range d.Findings {
		if f.Severity == SevFail {
			return true
		}
	}
	return false
}

// Regressions returns the failing findings.
func (d *Diff) Regressions() []Finding {
	var out []Finding
	for _, f := range d.Findings {
		if f.Severity == SevFail {
			out = append(out, f)
		}
	}
	return out
}

// JSON renders the diff as indented JSON.
func (d *Diff) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// Table renders the human-readable comparison.
func (d *Diff) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("bench compare %s → %s", d.OldRevision, d.NewRevision),
		"metric", "old", "new", "Δ%", "verdict")
	for _, f := range d.Findings {
		verdict := string(f.Severity)
		if f.Note != "" {
			verdict += " (" + f.Note + ")"
		}
		t.AddRow(f.Metric,
			fmt.Sprintf("%.2f", f.Old),
			fmt.Sprintf("%.2f", f.New),
			fmt.Sprintf("%+.1f", f.RelChange*100),
			verdict)
	}
	return t
}

// rule is one wall-clock metric's tolerance: a regression needs BOTH a
// relative growth beyond rel AND an absolute growth beyond floor. The
// floor absorbs scheduler jitter on tiny timings (the committed trajectory
// shows the kernel drifting 14.9 → 26.7 ns/event between otherwise
// identical runs); the relative bound catches real slowdowns on anything
// big enough to measure.
type rule struct {
	rel   float64
	floor float64
}

// Tolerances per metric family. Wall-clock numbers on shared CI boxes are
// noisy, so these are deliberately loose: the gate is for order-of-
// magnitude regressions (an accidental O(n²), a lost fast path), not for
// ±20% scheduling noise.
var (
	ruleKernelNs    = rule{rel: 1.2, floor: 15}     // ns/event
	ruleKernelAlloc = rule{rel: 0, floor: 0.5}      // allocs/event: zero-alloc kernel must stay zero-alloc
	ruleKernelBytes = rule{rel: 2.0, floor: 64}     // bytes/event
	ruleScanNs      = rule{rel: 1.5, floor: 25_000} // ns/scan (25 µs)
	ruleFigureMs    = rule{rel: 2.0, floor: 150}    // ms/figure
	ruleCityMs      = rule{rel: 2.0, floor: 500}    // ms city macro-run
	cityOnTimeDrop  = 0.01                          // absolute on-time-rate drop that fails
	ruleCodecNs     = rule{rel: 2.0, floor: 300}    // ns/frame encode or decode
	ruleCodecAlloc  = rule{rel: 0, floor: 0.5}      // allocs/frame: the zero-alloc wire path must stay zero-alloc
	parityGapGrow   = 0.10                          // absolute sim-vs-live delivery-gap growth that fails
)

// exceeded reports whether new regresses past the rule relative to old.
func (r rule) exceeded(old, new float64) bool {
	if new-old <= r.floor {
		return false
	}
	if old <= 0 {
		return true
	}
	return new > old*(1+r.rel)
}

// relChange computes (new-old)/old, zero when old is 0.
func relChange(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

// compareMetric appends one rule-checked wall-clock finding.
func (d *Diff) compareMetric(name string, old, new float64, r rule) {
	f := Finding{
		Metric: name, Old: old, New: new,
		RelChange: relChange(old, new),
		Threshold: r.rel, Floor: r.floor,
		Severity: SevOK,
	}
	if r.exceeded(old, new) {
		f.Severity = SevFail
		f.Note = "regression"
	}
	d.Findings = append(d.Findings, f)
}

// Compare evaluates new against the old baseline.
func Compare(old, new *Report) *Diff {
	d := &Diff{OldRevision: old.Revision, NewRevision: new.Revision}

	d.compareMetric("kernel.ns_per_event", old.Kernel.NsPerEvent, new.Kernel.NsPerEvent, ruleKernelNs)
	d.compareMetric("kernel.allocs_per_event", old.Kernel.AllocsPerEvent, new.Kernel.AllocsPerEvent, ruleKernelAlloc)
	d.compareMetric("kernel.bytes_per_event", old.Kernel.BytesPerEvent, new.Kernel.BytesPerEvent, ruleKernelBytes)

	newScans := make(map[int]float64, len(new.Scans))
	for _, s := range new.Scans {
		newScans[s.Devices] = s.NsPerScan
	}
	for _, s := range old.Scans {
		name := fmt.Sprintf("scan@%d.ns_per_scan", s.Devices)
		ns, ok := newScans[s.Devices]
		if !ok {
			d.Findings = append(d.Findings, Finding{
				Metric: name, Old: s.NsPerScan,
				Severity: SevFail, Note: "measurement missing from new report",
			})
			continue
		}
		d.compareMetric(name, s.NsPerScan, ns, ruleScanNs)
		delete(newScans, s.Devices)
	}
	for _, s := range new.Scans {
		if _, stillNew := newScans[s.Devices]; stillNew {
			d.Findings = append(d.Findings, Finding{
				Metric: fmt.Sprintf("scan@%d.ns_per_scan", s.Devices), New: s.NsPerScan,
				Severity: SevInfo, Note: "new measurement",
			})
		}
	}

	newFigs := make(map[string]float64, len(new.Figures))
	for _, f := range new.Figures {
		newFigs[f.Name] = f.WallMs
	}
	for _, f := range old.Figures {
		name := "figure." + f.Name + ".wall_ms"
		ms, ok := newFigs[f.Name]
		if !ok {
			d.Findings = append(d.Findings, Finding{
				Metric: name, Old: f.WallMs,
				Severity: SevFail, Note: "figure missing from new report",
			})
			continue
		}
		d.compareMetric(name, f.WallMs, ms, ruleFigureMs)
		delete(newFigs, f.Name)
	}
	for _, f := range new.Figures {
		if _, stillNew := newFigs[f.Name]; stillNew {
			d.Findings = append(d.Findings, Finding{
				Metric:   "figure." + f.Name + ".wall_ms",
				New:      f.WallMs,
				Severity: SevInfo, Note: "new figure",
			})
		}
	}

	d.compareCity(old.City, new.City)
	d.compareCityParallel(old.CityParallel, new.CityParallel)
	d.compareLivePath(old.LivePath, new.LivePath)
	return d
}

// compareLivePath handles the wire-path section.
//
// Grandfather rule, same as compareCityParallel: a baseline recorded
// before the zero-allocation codec existed has no live_path section, and
// that absence is not a regression — new measurements report as SevInfo.
// Once a baseline carries the section, losing it from the new report fails.
func (d *Diff) compareLivePath(old, new *LivePathBench) {
	switch {
	case old == nil && new == nil:
		return
	case old == nil:
		d.Findings = append(d.Findings, Finding{
			Metric: "live_path.encode_heartbeat_ns", New: new.EncodeHeartbeatNs,
			Severity: SevInfo, Note: "new measurement (no baseline section)",
		})
		return
	case new == nil:
		d.Findings = append(d.Findings, Finding{
			Metric: "live_path.encode_heartbeat_ns", Old: old.EncodeHeartbeatNs,
			Severity: SevFail, Note: "live_path missing from new report",
		})
		return
	}
	d.compareMetric("live_path.encode_heartbeat_ns", old.EncodeHeartbeatNs, new.EncodeHeartbeatNs, ruleCodecNs)
	d.compareMetric("live_path.encode_heartbeat_allocs", old.EncodeHeartbeatAllocs, new.EncodeHeartbeatAllocs, ruleCodecAlloc)
	d.compareMetric("live_path.decode_heartbeat_ns", old.DecodeHeartbeatNs, new.DecodeHeartbeatNs, ruleCodecNs)
	d.compareMetric("live_path.decode_heartbeat_allocs", old.DecodeHeartbeatAllocs, new.DecodeHeartbeatAllocs, ruleCodecAlloc)
	d.compareMetric("live_path.encode_batch_ns", old.EncodeBatchNs, new.EncodeBatchNs, ruleCodecNs)
	d.compareMetric("live_path.encode_batch_allocs", old.EncodeBatchAllocs, new.EncodeBatchAllocs, ruleCodecAlloc)
	d.compareMetric("live_path.decode_batch_ns", old.DecodeBatchNs, new.DecodeBatchNs, ruleCodecNs)
	d.compareMetric("live_path.decode_batch_allocs", old.DecodeBatchAllocs, new.DecodeBatchAllocs, ruleCodecAlloc)
	// Frame sizes are deterministic wire facts: any drift is a format
	// change worth eyeballing, not a perf regression.
	for _, c := range []struct {
		name     string
		old, new float64
	}{
		{"live_path.heartbeat_frame_bytes", float64(old.HeartbeatFrameBytes), float64(new.HeartbeatFrameBytes)},
		{"live_path.batch_frame_bytes", float64(old.BatchFrameBytes), float64(new.BatchFrameBytes)},
	} {
		f := Finding{Metric: c.name, Old: c.old, New: c.new, RelChange: relChange(c.old, c.new), Severity: SevOK}
		if c.old != c.new {
			f.Severity = SevInfo
			f.Note = "wire format size changed"
		}
		d.Findings = append(d.Findings, f)
	}
	d.compareParity(old.Parity, new.Parity)
}

// compareParity handles the record/replay parity sub-block: the sim column
// is deterministic (drift is a behavior diff, reported as info), the live
// column rides real TCP so only a large absolute growth of the sim-vs-live
// delivery gap fails.
func (d *Diff) compareParity(old, new *LiveParity) {
	switch {
	case old == nil && new == nil:
		return
	case old == nil:
		d.Findings = append(d.Findings, Finding{
			Metric: "live_path.parity.delivery_gap", New: new.DeliveryGap,
			Severity: SevInfo, Note: "new measurement (no baseline section)",
		})
		return
	case new == nil:
		d.Findings = append(d.Findings, Finding{
			Metric: "live_path.parity.delivery_gap", Old: old.DeliveryGap,
			Severity: SevFail, Note: "parity summary missing from new report",
		})
		return
	}
	if old.TraceDigest != new.TraceDigest {
		d.Findings = append(d.Findings, Finding{
			Metric:   "live_path.parity.trace",
			Severity: SevInfo,
			Note:     fmt.Sprintf("corpus trace changed %s → %s; skipping gap comparison", old.TraceDigest, new.TraceDigest),
		})
		return
	}
	f := Finding{
		Metric: "live_path.parity.sim_delivery_ratio",
		Old:    old.SimDeliveryRatio, New: new.SimDeliveryRatio,
		RelChange: relChange(old.SimDeliveryRatio, new.SimDeliveryRatio), Severity: SevOK,
	}
	if old.SimDigest != new.SimDigest {
		f.Severity = SevInfo
		f.Note = "sim replay digest changed (behavior diff)"
	}
	d.Findings = append(d.Findings, f)
	g := Finding{
		Metric: "live_path.parity.delivery_gap",
		Old:    old.DeliveryGap, New: new.DeliveryGap,
		RelChange: relChange(old.DeliveryGap, new.DeliveryGap),
		Floor:     parityGapGrow, Severity: SevOK,
	}
	if new.DeliveryGap-old.DeliveryGap > parityGapGrow {
		g.Severity = SevFail
		g.Note = "sim-vs-live delivery gap widened"
	}
	d.Findings = append(d.Findings, g)
}

// compareCity handles the optional city macro-run block.
func (d *Diff) compareCity(old, new *CityBench) {
	switch {
	case old == nil && new == nil:
		return
	case old == nil:
		d.Findings = append(d.Findings, Finding{
			Metric: "city.wall_ms", New: new.WallMs,
			Severity: SevInfo, Note: "new measurement",
		})
		return
	case new == nil:
		d.Findings = append(d.Findings, Finding{
			Metric: "city.wall_ms", Old: old.WallMs,
			Severity: SevFail, Note: "city run missing from new report",
		})
		return
	}
	if !strings.EqualFold(old.Preset, new.Preset) || old.Devices != new.Devices {
		d.Findings = append(d.Findings, Finding{
			Metric:   "city.preset",
			Severity: SevInfo,
			Note:     fmt.Sprintf("preset changed %s/%d → %s/%d; skipping wall comparison", old.Preset, old.Devices, new.Preset, new.Devices),
		})
		return
	}
	d.compareMetric("city.wall_ms", old.WallMs, new.WallMs, ruleCityMs)
	// The macro-run is seeded and deterministic: its simulation outcomes
	// must not drift at all. A change is a behavior difference worth
	// eyeballing (it may be an intended model change), not a perf
	// regression, so it reports as info — but a correctness drop in the
	// on-time rate fails.
	for _, c := range []struct {
		name     string
		old, new float64
	}{
		{"city.events", float64(old.Events), float64(new.Events)},
		{"city.l3_messages", float64(old.L3Messages), float64(new.L3Messages)},
		{"city.deliveries", float64(old.Deliveries), float64(new.Deliveries)},
	} {
		f := Finding{Metric: c.name, Old: c.old, New: c.new, RelChange: relChange(c.old, c.new), Severity: SevOK}
		if c.old != c.new {
			f.Severity = SevInfo
			f.Note = "deterministic counter changed (behavior diff)"
		}
		d.Findings = append(d.Findings, f)
	}
	f := Finding{
		Metric: "city.on_time_rate", Old: old.OnTimeRate, New: new.OnTimeRate,
		RelChange: relChange(old.OnTimeRate, new.OnTimeRate), Severity: SevOK,
	}
	if old.OnTimeRate-new.OnTimeRate > cityOnTimeDrop {
		f.Severity = SevFail
		f.Note = "on-time delivery rate dropped"
	}
	d.Findings = append(d.Findings, f)
}

// cpKey identifies one parallel city measurement point.
type cpKey struct {
	preset string
	tiles  int
	cores  int
}

func (k cpKey) metric(suffix string) string {
	return fmt.Sprintf("city_parallel.%s@t%d.c%d.%s", k.preset, k.tiles, k.cores, suffix)
}

// compareCityParallel handles the tile-sharded city section.
//
// Grandfather rule: a baseline recorded before the parallel kernel
// existed has no city_parallel section at all. That absence is not a
// regression — the new measurements report as SevInfo ("new measurement")
// and never SevFail, so old baselines keep gating everything they do
// cover while the section phases in. Once a baseline carries the section,
// a point that vanishes from the new report DOES fail, same as any other
// missing measurement.
func (d *Diff) compareCityParallel(old, new []CityParallelBench) {
	if len(old) == 0 {
		for _, b := range new {
			k := cpKey{preset: strings.ToLower(b.Preset), tiles: b.Tiles, cores: b.Cores}
			d.Findings = append(d.Findings, Finding{
				Metric: k.metric("wall_ms"), New: b.WallMs,
				Severity: SevInfo, Note: "new measurement (no baseline section)",
			})
		}
		return
	}
	newByKey := make(map[cpKey]CityParallelBench, len(new))
	for _, b := range new {
		newByKey[cpKey{preset: strings.ToLower(b.Preset), tiles: b.Tiles, cores: b.Cores}] = b
	}
	for _, ob := range old {
		k := cpKey{preset: strings.ToLower(ob.Preset), tiles: ob.Tiles, cores: ob.Cores}
		nb, ok := newByKey[k]
		if !ok {
			d.Findings = append(d.Findings, Finding{
				Metric: k.metric("wall_ms"), Old: ob.WallMs,
				Severity: SevFail, Note: "measurement missing from new report",
			})
			continue
		}
		delete(newByKey, k)
		if ob.Devices != nb.Devices {
			d.Findings = append(d.Findings, Finding{
				Metric: k.metric("devices"),
				Old:    float64(ob.Devices), New: float64(nb.Devices),
				Severity: SevInfo, Note: "preset size changed; skipping wall comparison",
			})
			continue
		}
		d.compareMetric(k.metric("wall_ms"), ob.WallMs, nb.WallMs, ruleCityMs)
		for _, c := range []struct {
			name     string
			old, new float64
		}{
			{"events", float64(ob.Events), float64(nb.Events)},
			{"deliveries", float64(ob.Deliveries), float64(nb.Deliveries)},
		} {
			f := Finding{Metric: k.metric(c.name), Old: c.old, New: c.new, RelChange: relChange(c.old, c.new), Severity: SevOK}
			if c.old != c.new {
				f.Severity = SevInfo
				f.Note = "deterministic counter changed (behavior diff)"
			}
			d.Findings = append(d.Findings, f)
		}
		f := Finding{
			Metric: k.metric("on_time_rate"), Old: ob.OnTimeRate, New: nb.OnTimeRate,
			RelChange: relChange(ob.OnTimeRate, nb.OnTimeRate), Severity: SevOK,
		}
		if ob.OnTimeRate-nb.OnTimeRate > cityOnTimeDrop {
			f.Severity = SevFail
			f.Note = "on-time delivery rate dropped"
		}
		d.Findings = append(d.Findings, f)
	}
	for _, b := range new {
		k := cpKey{preset: strings.ToLower(b.Preset), tiles: b.Tiles, cores: b.Cores}
		if _, stillNew := newByKey[k]; stillNew {
			d.Findings = append(d.Findings, Finding{
				Metric: k.metric("wall_ms"), New: b.WallMs,
				Severity: SevInfo, Note: "new measurement",
			})
		}
	}
}
