// Package benchcmp defines the bench-trajectory report schema
// (BENCH_<rev>.json, written by `d2dbench -json`) and the regression
// comparator behind `d2dbench -compare OLD.json NEW.json`: per-metric
// relative thresholds with absolute noise floors, so ns-scale jitter on a
// shared CI box cannot flap the gate while a real slowdown still fails it.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the BENCH_<rev>.json document.
type Report struct {
	Revision  string       `json:"revision"`
	Timestamp string       `json:"timestamp"`
	GoVersion string       `json:"go_version"`
	Kernel    KernelBench  `json:"kernel"`
	Scans     []ScanBench  `json:"scans"`
	Figures   []FigureTime `json:"figures"`
	City      *CityBench   `json:"city,omitempty"`
	// CityParallel holds the tile-sharded city kernel measurements, one
	// per (preset, devices, tiles, cores) point. Absent from baselines
	// recorded before the parallel kernel existed; Compare grandfathers
	// that case (see compareCityParallel).
	CityParallel []CityParallelBench `json:"city_parallel,omitempty"`
	// LivePath holds the wire-path steady-state measurements (pooled
	// append-encode / streaming-decode cost for the hot frame shapes) and
	// the record/replay parity summary. Absent from baselines recorded
	// before the zero-allocation codec existed; Compare grandfathers that
	// case (see compareLivePath).
	LivePath *LivePathBench `json:"live_path,omitempty"`
}

// KernelBench is the event-kernel steady-state measurement.
type KernelBench struct {
	Events         int     `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// ScanBench is one discovery-latency measurement at a population size.
type ScanBench struct {
	Devices   int     `json:"devices"`
	NsPerScan float64 `json:"ns_per_scan"`
}

// FigureTime records how long regenerating one paper figure/table took.
type FigureTime struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

// CityBench is the city-scale macro-run measurement.
type CityBench struct {
	Preset       string  `json:"preset"`
	Devices      int     `json:"devices"`
	SimSeconds   float64 `json:"sim_seconds"`
	Events       uint64  `json:"events"`
	WallMs       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	L3Messages   int     `json:"l3_messages"`
	Deliveries   int     `json:"deliveries"`
	OnTimeRate   float64 `json:"on_time_rate"`
}

// CityParallelBench is one tile-sharded city macro-run measurement.
// (Preset, Devices, Tiles, Cores) is the comparison key; the same preset
// is measured at several tile/core points to record the scaling curve.
type CityParallelBench struct {
	Preset       string  `json:"preset"`
	Devices      int     `json:"devices"`
	Tiles        int     `json:"tiles"`
	Cores        int     `json:"cores"`
	SimSeconds   float64 `json:"sim_seconds"`
	Events       uint64  `json:"events"`
	WallMs       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	Deliveries   int     `json:"deliveries"`
	OnTimeRate   float64 `json:"on_time_rate"`
}

// LivePathBench measures the wire path's steady state: per-frame cost of
// the pooled append-encoder and the streaming decoder for the two hot
// shapes (a single heartbeat and a BatchEntries-heartbeat batch), the
// encoded frame sizes, and — when the committed corpus trace is available —
// the record/replay parity summary, so `d2dbench -compare` trends codec
// cost and sim/live fidelity revision over revision.
type LivePathBench struct {
	BatchEntries int `json:"batch_entries"`

	EncodeHeartbeatNs     float64 `json:"encode_heartbeat_ns"`
	EncodeHeartbeatAllocs float64 `json:"encode_heartbeat_allocs"`
	DecodeHeartbeatNs     float64 `json:"decode_heartbeat_ns"`
	DecodeHeartbeatAllocs float64 `json:"decode_heartbeat_allocs"`
	HeartbeatFrameBytes   int     `json:"heartbeat_frame_bytes"`

	EncodeBatchNs     float64 `json:"encode_batch_ns"`
	EncodeBatchAllocs float64 `json:"encode_batch_allocs"`
	DecodeBatchNs     float64 `json:"decode_batch_ns"`
	DecodeBatchAllocs float64 `json:"decode_batch_allocs"`
	BatchFrameBytes   int     `json:"batch_frame_bytes"`

	Parity *LiveParity `json:"parity,omitempty"`
}

// LiveParity is the record/replay parity-gap summary folded into the bench
// trajectory: the same trace replayed through the deterministic sim and
// the live TCP stack, with the absolute delivery-ratio gap as the headline
// fidelity number. SimDeliveryRatio and SimDigest are deterministic; the
// live column (and therefore the gap) carries wall-clock noise, so its
// comparison rule is loose.
type LiveParity struct {
	Trace                 string  `json:"trace"`
	TraceDigest           string  `json:"trace_digest"`
	RecordedDeliveryRatio float64 `json:"recorded_delivery_ratio"`
	SimDeliveryRatio      float64 `json:"sim_delivery_ratio"`
	LiveDeliveryRatio     float64 `json:"live_delivery_ratio"`
	DeliveryGap           float64 `json:"delivery_gap"` // |sim − live|
	SimDigest             string  `json:"sim_digest"`
}

// Load reads and parses one bench report.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchcmp: parse %s: %w", path, err)
	}
	if r.Revision == "" {
		return nil, fmt.Errorf("benchcmp: %s has no revision field", path)
	}
	return &r, nil
}
