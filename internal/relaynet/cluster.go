package relaynet

// Cluster-facing surface of the presence server: the state handoff that
// backs graceful drain/live resharding (internal/cluster), plus mis-route
// accounting so operators can see traffic that arrived at a shard the ring
// no longer assigns it (stale epochs in some routing party).

import (
	"time"

	"d2dhb/internal/cluster"
)

// SetCluster makes the server cluster-aware: selfID is this shard's ring
// identity and client tracks the cluster config. Heartbeats whose source
// hashes to a different shard under the current epoch are still accepted
// (availability beats placement — a stale-epoch relay must not lose
// heartbeats) but counted in Stats().Misrouted and the
// relaynet_server_misrouted_frames_total counter. Call before Start.
func (s *Server) SetCluster(selfID string, client *cluster.Client) {
	s.selfID = selfID
	s.clusterClient = client
}

// Draining reports whether SetDraining(true) marked this shard as leaving
// the cluster.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SetDraining implements cluster.Store: it only flags the shard (the flag
// backs /readyz); the server keeps accepting and acknowledging heartbeats
// until Shutdown, so in-flight traffic from stale-epoch parties is never
// dropped during a drain.
func (s *Server) SetDraining(v bool) {
	s.mu.Lock()
	s.draining = v
	s.mu.Unlock()
}

// ExportPresence implements cluster.Store: a snapshot of every tracked
// client's presence row and delivered-sequence high-water mark.
func (s *Server) ExportPresence() []cluster.PresenceEntry {
	var out []cluster.PresenceEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, p := range sh.clients {
			out = append(out, cluster.PresenceEntry{
				ID:               id,
				App:              p.app,
				LastSeenUnixNano: p.lastSeen.UnixNano(),
				DeadlineUnixNano: p.deadline.UnixNano(),
				MaxSeq:           p.maxSeq,
			})
		}
		sh.mu.Unlock()
	}
	return out
}

// ImportPresence implements cluster.Store: entries merge into the table,
// never regressing state this shard already holds — the later lastSeen and
// deadline win, and the sequence high-water only ratchets up. A heartbeat
// that raced ahead of the handoff therefore keeps its effect.
func (s *Server) ImportPresence(entries []cluster.PresenceEntry) {
	for _, e := range entries {
		if e.ID == "" {
			continue
		}
		sh := s.shard(e.ID)
		sh.mu.Lock()
		p, ok := sh.clients[e.ID]
		if !ok {
			p = &presence{app: e.App}
			sh.clients[e.ID] = p
		}
		if ls := time.Unix(0, e.LastSeenUnixNano); ls.After(p.lastSeen) {
			p.lastSeen = ls
		}
		if dl := time.Unix(0, e.DeadlineUnixNano); dl.After(p.deadline) {
			p.deadline = dl
		}
		if e.MaxSeq > p.maxSeq {
			p.maxSeq = e.MaxSeq
		}
		sh.mu.Unlock()
	}
}

// ForgetPresence implements cluster.Store: drops clients whose keys were
// handed to another shard, keeping this shard's occupancy gauges truthful.
func (s *Server) ForgetPresence(ids []string) {
	for _, id := range ids {
		sh := s.shard(id)
		sh.mu.Lock()
		delete(sh.clients, id)
		sh.mu.Unlock()
	}
}

// noteRouting counts a delivery that reached the wrong shard under the
// current ring epoch.
func (s *Server) noteRouting(src string) {
	if s.clusterClient == nil {
		return
	}
	if s.clusterClient.View().Ring().Owner(src) != s.selfID {
		s.misrouted.Add(1)
		s.ins.misrouted.Inc()
	}
}
