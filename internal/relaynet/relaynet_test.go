package relaynet

import (
	"net"
	"testing"
	"time"

	"d2dhb/internal/hbproto"
	"d2dhb/internal/trace"
)

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", msg)
}

func startServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func startRelay(t *testing.T, serverAddr string, period, expiry time.Duration, capacity int) *RelayAgent {
	t.Helper()
	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "relay-1", App: "std", Period: period, Expiry: expiry, Pad: 54, Capacity: capacity,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := r.Start("127.0.0.1:0", serverAddr); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	t.Cleanup(r.Shutdown)
	return r
}

func ueConfig(id, relayAddr, serverAddr string, period, expiry time.Duration) UEClientConfig {
	return UEClientConfig{
		ID: id, App: "std", Period: period, Expiry: expiry, Pad: 54,
		RelayAddr: relayAddr, ServerAddr: serverAddr,
	}
}

func TestServerDirectHeartbeat(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	hb := &hbproto.Heartbeat{
		Src: "ue-x", Seq: 1, App: "std",
		Origin: time.Now(), Expiry: time.Minute, Pad: 54,
	}
	if err := hbproto.WriteFrame(conn, hb); err != nil {
		t.Fatalf("write: %v", err)
	}
	msg, err := hbproto.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read ack: %v", err)
	}
	ack, ok := msg.(*hbproto.Ack)
	if !ok || len(ack.Refs) != 1 || ack.Refs[0] != (hbproto.Ref{Src: "ue-x", Seq: 1}) {
		t.Fatalf("ack = %+v", msg)
	}
	if !s.Online("ue-x", time.Now()) {
		t.Fatal("client not online after heartbeat")
	}
	if s.Online("ue-x", time.Now().Add(2*time.Minute)) {
		t.Fatal("client online past expiry")
	}
	st := s.Stats()
	if st.HeartbeatsDirect != 1 || st.Connections != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerRegisterAndExpiry(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := hbproto.WriteFrame(conn, &hbproto.Register{
		ID: "ue-y", Role: hbproto.RoleUE, App: "std",
		Period: time.Minute, Expiry: time.Minute,
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	eventually(t, time.Second, func() bool { return s.Stats().Registers == 1 }, "register counted")
	if !s.Online("ue-y", time.Now()) {
		t.Fatal("registered client not online")
	}
	if got := s.OnlineCount(time.Now()); got != 1 {
		t.Fatalf("online count = %d, want 1", got)
	}
}

func TestServerRejectsProtocolViolation(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// An Ack from a client is a protocol violation: server drops the conn.
	if err := hbproto.WriteFrame(conn, &hbproto.Ack{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	if _, err := hbproto.ReadFrame(conn); err == nil {
		t.Fatal("connection survived protocol violation")
	}
}

func TestServerCountsProtocolErrors(t *testing.T) {
	var rec trace.Recorder
	s := NewServer()
	s.SetTracer(&rec)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	t.Cleanup(s.Shutdown)

	// Garbage bytes: the framer rejects the magic and the server counts a
	// protocol error and emits a conn-drop trace event.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := conn.Write([]byte("not a heartbeat frame at all")); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = conn.Close()
	eventually(t, time.Second, func() bool { return s.Stats().ProtocolErrors == 1 }, "garbage counted")

	// A well-framed message a client may not send (Ack) is also a protocol
	// error.
	conn2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn2.Close()
	if err := hbproto.WriteFrame(conn2, &hbproto.Ack{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	eventually(t, time.Second, func() bool { return s.Stats().ProtocolErrors == 2 }, "ack-from-client counted")

	eventually(t, time.Second, func() bool {
		return len(rec.ByKind(trace.KindConnDrop)) >= 2
	}, "conn-drop trace events emitted")
	for _, ev := range rec.ByKind(trace.KindConnDrop) {
		if ev.Reason == "" || ev.Device == "" {
			t.Fatalf("conn-drop event missing detail: %+v", ev)
		}
	}
	if st := s.Stats(); st.IdleDrops != 0 {
		t.Fatalf("idle drops = %d, want 0", st.IdleDrops)
	}
}

func TestServerReapsIdleConnections(t *testing.T) {
	var rec trace.Recorder
	s := NewServer()
	s.SetTracer(&rec)
	s.SetIdleTimeout(150 * time.Millisecond)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	t.Cleanup(s.Shutdown)

	// The client sends one valid heartbeat, gets its ack, then stalls.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	hb := &hbproto.Heartbeat{
		Src: "ue-stall", Seq: 1, App: "std",
		Origin: time.Now(), Expiry: time.Minute, Pad: 54,
	}
	if err := hbproto.WriteFrame(conn, hb); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := hbproto.ReadFrame(conn); err != nil {
		t.Fatalf("read ack: %v", err)
	}

	// The idle deadline fires and the server drops the connection.
	eventually(t, 2*time.Second, func() bool { return s.Stats().IdleDrops == 1 }, "idle drop counted")
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	if _, err := hbproto.ReadFrame(conn); err == nil {
		t.Fatal("connection survived idle reaping")
	}
	drops := rec.ByKind(trace.KindConnDrop)
	if len(drops) != 1 || drops[0].Reason != "idle-timeout" {
		t.Fatalf("conn-drop events = %+v", drops)
	}
	if st := s.Stats(); st.ProtocolErrors != 0 || st.HeartbeatsDirect != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEndToEndRelaying(t *testing.T) {
	// Full pipeline: two UEs forward through a relay; the relay batches
	// under Algorithm 1 and the server acks trigger feedback.
	s := startServer(t)
	const (
		period = 150 * time.Millisecond
		expiry = 250 * time.Millisecond // > period: presence stays stable
	)
	r := startRelay(t, s.Addr(), period, expiry, 8)

	ues := make([]*UEClient, 0, 2)
	for _, id := range []string{"ue-1", "ue-2"} {
		u, err := NewUEClient(ueConfig(id, r.Addr(), s.Addr(), period, expiry))
		if err != nil {
			t.Fatalf("NewUEClient: %v", err)
		}
		if err := u.Start(); err != nil {
			t.Fatalf("ue Start: %v", err)
		}
		t.Cleanup(u.Shutdown)
		ues = append(ues, u)
	}

	// Within a few periods every component has turned over.
	eventually(t, 3*time.Second, func() bool {
		return s.Stats().HeartbeatsRelayed >= 4
	}, "server received relayed heartbeats")
	eventually(t, 3*time.Second, func() bool {
		return ues[0].Stats().FeedbackAcks >= 1 && ues[1].Stats().FeedbackAcks >= 1
	}, "UEs received feedback")

	st := s.Stats()
	if st.Batches == 0 {
		t.Fatal("no batches at server")
	}
	rs := r.Stats()
	if rs.Collected == 0 || rs.Flushes == 0 || rs.Forwarded == 0 {
		t.Fatalf("relay stats empty: %+v", rs)
	}
	if rs.Credits != rs.Forwarded {
		t.Fatalf("credits %d != forwarded %d", rs.Credits, rs.Forwarded)
	}
	// Both UEs online at the server.
	if !s.Online("ue-1", time.Now()) || !s.Online("ue-2", time.Now()) {
		t.Fatal("UEs not online via relay")
	}
	// UEs went through the relay, not direct.
	for i, u := range ues {
		us := u.Stats()
		if us.ViaRelay == 0 {
			t.Fatalf("ue %d never used relay: %+v", i, us)
		}
		if us.Direct != 0 {
			t.Fatalf("ue %d sent direct despite relay: %+v", i, us)
		}
	}
	// Aggregation actually happened: fewer server connections than
	// heartbeats (2 UEs + relay share one upstream pipe).
	if st.Connections > 3 {
		t.Fatalf("connections = %d, want <= 3", st.Connections)
	}
}

func TestUEDirectModeWithoutRelay(t *testing.T) {
	s := startServer(t)
	u, err := NewUEClient(ueConfig("ue-d", "", s.Addr(), 80*time.Millisecond, 70*time.Millisecond))
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(u.Shutdown)
	eventually(t, 2*time.Second, func() bool {
		return s.Stats().HeartbeatsDirect >= 2
	}, "direct heartbeats arrived")
	if got := u.Stats(); got.ViaRelay != 0 || got.Direct < 2 {
		t.Fatalf("stats = %+v", got)
	}
	if !s.Online("ue-d", time.Now()) {
		t.Fatal("direct UE not online")
	}
}

func TestUEFallbackWhenRelayDies(t *testing.T) {
	s := startServer(t)
	const (
		period = 200 * time.Millisecond
		expiry = 150 * time.Millisecond
	)
	r := startRelay(t, s.Addr(), period, expiry, 8)

	cfg := ueConfig("ue-f", r.Addr(), s.Addr(), period, expiry)
	cfg.FeedbackTimeout = 100 * time.Millisecond
	u, err := NewUEClient(cfg)
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(u.Shutdown)

	eventually(t, 2*time.Second, func() bool { return u.Stats().ViaRelay >= 1 }, "first forward")
	r.Shutdown() // the relay dies with heartbeats potentially pending

	// The UE times out on feedback and resends directly; later heartbeats
	// go direct because the relay conn is gone.
	eventually(t, 3*time.Second, func() bool {
		st := u.Stats()
		return st.FallbackResends >= 1 || st.Direct >= 1
	}, "fallback to direct after relay death")
	eventually(t, 3*time.Second, func() bool {
		return s.Online("ue-f", time.Now())
	}, "UE back online via direct path")
}

func TestRelayCapacityFlushImmediately(t *testing.T) {
	s := startServer(t)
	// Capacity 1: every collected heartbeat flushes at once.
	r := startRelay(t, s.Addr(), 500*time.Millisecond, 400*time.Millisecond, 1)
	u, err := NewUEClient(ueConfig("ue-c", r.Addr(), s.Addr(), 100*time.Millisecond, 80*time.Millisecond))
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(u.Shutdown)
	eventually(t, 2*time.Second, func() bool { return r.Stats().Flushes >= 1 }, "capacity flush")
	eventually(t, 2*time.Second, func() bool { return s.Stats().HeartbeatsRelayed >= 1 }, "relayed heartbeat arrived")
	// Subsequent forwards in the same relay period are rejected (window
	// closed) and recovered by fallback.
	eventually(t, 3*time.Second, func() bool { return r.Stats().RejectedClosed >= 1 }, "closed-window rejection")
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewRelayAgent(RelayAgentConfig{}); err == nil {
		t.Fatal("empty relay config accepted")
	}
	if _, err := NewRelayAgent(RelayAgentConfig{ID: "r", Period: time.Second, Expiry: time.Second}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewUEClient(UEClientConfig{}); err == nil {
		t.Fatal("empty ue config accepted")
	}
	if _, err := NewUEClient(UEClientConfig{ID: "u", Period: time.Second, Expiry: time.Second}); err == nil {
		t.Fatal("missing server addr accepted")
	}
}

func TestLifecycleIdempotence(t *testing.T) {
	s := NewServer()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("double server start accepted")
	}
	s.Shutdown()
	s.Shutdown() // idempotent

	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "r", App: "a", Period: time.Second, Expiry: time.Second, Pad: 54, Capacity: 1,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	r.Shutdown() // not started: no-op

	u, err := NewUEClient(UEClientConfig{
		ID: "u", App: "a", Period: time.Second, Expiry: time.Second, ServerAddr: "127.0.0.1:1",
	})
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	u.Shutdown() // not started: no-op
}

func TestRelayStartFailsWithoutServer(t *testing.T) {
	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "r", App: "a", Period: time.Second, Expiry: time.Second, Pad: 54, Capacity: 1,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := r.Start("127.0.0.1:0", "127.0.0.1:1"); err == nil {
		r.Shutdown()
		t.Fatal("relay started without a server")
	}
}

func TestUEReconnectsWhenRelayAppearsLater(t *testing.T) {
	s := startServer(t)
	const (
		period = 100 * time.Millisecond
		expiry = 200 * time.Millisecond
	)
	// Reserve an address for the relay, then release it so the UE's first
	// dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	relayAddr := ln.Addr().String()
	_ = ln.Close()

	u, err := NewUEClient(ueConfig("ue-r", relayAddr, s.Addr(), period, expiry))
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(u.Shutdown)

	// Without a relay the UE goes direct.
	eventually(t, 2*time.Second, func() bool { return u.Stats().Direct >= 1 }, "direct sends before relay exists")

	// The relay comes up on the reserved address; the UE re-matches.
	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "relay-l", App: "std", Period: period, Expiry: expiry, Pad: 54, Capacity: 8,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := r.Start(relayAddr, s.Addr()); err != nil {
		t.Skipf("reserved address no longer available: %v", err)
	}
	t.Cleanup(r.Shutdown)

	eventually(t, 3*time.Second, func() bool { return u.Stats().ViaRelay >= 1 }, "UE switched to relay")
	if got := u.Stats().RelayReconnects; got < 1 {
		t.Fatalf("reconnects = %d, want >= 1", got)
	}
}

func TestUEFailsOverToFallbackRelay(t *testing.T) {
	s := startServer(t)
	const (
		period = 100 * time.Millisecond
		expiry = 200 * time.Millisecond
	)
	// Only the fallback relay exists; the primary address is dead.
	r := startRelay(t, s.Addr(), period, expiry, 8)
	cfg := ueConfig("ue-fo", "127.0.0.1:1", s.Addr(), period, expiry)
	cfg.FallbackRelayAddrs = []string{r.Addr()}
	u, err := NewUEClient(cfg)
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(u.Shutdown)
	eventually(t, 3*time.Second, func() bool { return u.Stats().ViaRelay >= 1 }, "UE used fallback relay")
	if got := u.Stats().Direct; got > 1 {
		t.Fatalf("direct sends = %d despite available fallback relay", got)
	}
}

func TestServerAvailabilityTracking(t *testing.T) {
	s := startServer(t)
	u, err := NewUEClient(ueConfig("ue-av", "", s.Addr(), 60*time.Millisecond, 150*time.Millisecond))
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(u.Shutdown)
	eventually(t, 2*time.Second, func() bool { return s.Stats().HeartbeatsDirect >= 4 }, "heartbeats flowing")
	avail, flaps := s.Availability("ue-av")
	if avail <= 0.5 || avail > 1.000001 {
		t.Fatalf("availability = %v, want near 1", avail)
	}
	if flaps != 0 {
		t.Fatalf("flaps = %d, want 0 with continuous heartbeats", flaps)
	}
	if a, _ := s.Availability("ghost"); a != 0 {
		t.Fatalf("ghost availability = %v, want 0", a)
	}
}

func TestUEMultiAppHeartbeats(t *testing.T) {
	// The Message Monitor analog: two registered apps on one device, both
	// relayed and acknowledged over the shared link.
	s := startServer(t)
	const (
		period = 120 * time.Millisecond
		expiry = 250 * time.Millisecond
	)
	r := startRelay(t, s.Addr(), period, expiry, 8)
	cfg := ueConfig("ue-m", r.Addr(), s.Addr(), period, expiry)
	cfg.ExtraApps = []UEApp{{Name: "second", Period: 90 * time.Millisecond, Expiry: expiry, Pad: 100}}
	u, err := NewUEClient(cfg)
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(u.Shutdown)

	eventually(t, 3*time.Second, func() bool { return u.Stats().ViaRelay >= 4 }, "both apps forwarding")
	eventually(t, 3*time.Second, func() bool { return u.Stats().FeedbackAcks >= 2 }, "acks for both apps")
	if got := u.Stats().Direct; got != 0 {
		t.Fatalf("direct = %d with live relay", got)
	}
	if !s.Online("ue-m", time.Now()) {
		t.Fatal("multi-app UE not online")
	}
}

func TestUEMultiAppValidation(t *testing.T) {
	cfg := ueConfig("u", "", "127.0.0.1:1", time.Second, time.Second)
	cfg.ExtraApps = []UEApp{{Name: "bad"}}
	if _, err := NewUEClient(cfg); err == nil {
		t.Fatal("invalid extra app accepted")
	}
}

func TestRealStackTracing(t *testing.T) {
	var rec trace.Recorder
	s := NewServer()
	s.SetTracer(&rec)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	t.Cleanup(s.Shutdown)

	const (
		period = 100 * time.Millisecond
		expiry = 200 * time.Millisecond
	)
	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "relay-t", App: "std", Period: period, Expiry: expiry, Pad: 54,
		Capacity: 8, Tracer: &rec,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := r.Start("127.0.0.1:0", s.Addr()); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	t.Cleanup(r.Shutdown)

	cfg := ueConfig("ue-t", r.Addr(), s.Addr(), period, expiry)
	cfg.Tracer = &rec
	u, err := NewUEClient(cfg)
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(u.Shutdown)

	eventually(t, 3*time.Second, func() bool {
		return len(rec.ByKind(trace.KindAck)) >= 1 && len(rec.ByKind(trace.KindDelivery)) >= 2
	}, "traced lifecycle events")

	for _, kind := range []trace.Kind{
		trace.KindGenerated, trace.KindD2DSend, trace.KindCollect,
		trace.KindFlush, trace.KindDelivery, trace.KindAck,
	} {
		if len(rec.ByKind(kind)) == 0 {
			t.Errorf("no %s events traced", kind)
		}
	}
	// Delay analysis over the real stack: relayed deliveries match
	// generation events by (device, seq).
	a := trace.Analyze(rec.Events())
	if a.Relayed.Count == 0 {
		t.Fatalf("no relayed delays computed: %v", rec.String())
	}
	if a.Relayed.MaxMs > float64(2*period/time.Millisecond)+100 {
		t.Errorf("relayed delay %v ms implausibly large", a.Relayed.MaxMs)
	}
}
