package relaynet

// Cluster chaos suite: a 3-shard presence cluster (real servers, real
// router, real HTTP control plane) under a relay-trunked UE fleet, driven
// through a graceful drain, a hard shard kill and a rolling-restart join —
// asserting the ISSUE's acceptance invariants end to end:
//
//   - zero lost heartbeats: every heartbeat generated across the reshards
//     is eventually delivered to SOME live shard (relay fanout or the UE's
//     feedback-timeout fallback, which re-resolves the owner through the
//     current ring epoch);
//   - no duplicate and no non-monotonic feedback acks per device;
//   - a drained shard's presence state (client rows + sequence high-water
//     marks) lands on the successors before the shard goes away.

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"d2dhb/internal/cluster"
	"d2dhb/internal/telemetry"
	"d2dhb/internal/trace"
)

// clusterShard is one presence shard plus its control-plane endpoint, as a
// launcher would run it: hbproto listener + /healthz /readyz /cluster/*.
type clusterShard struct {
	srv    *Server
	health *telemetry.Health
	web    *httptest.Server
	node   cluster.Node
	dead   bool
}

func startClusterShard(t *testing.T, rec *trace.Recorder, id string) *clusterShard {
	t.Helper()
	srv := NewServer()
	srv.SetTracer(rec)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("shard %s start: %v", id, err)
	}
	health := telemetry.NewHealth()
	mux := http.NewServeMux()
	telemetry.WithHealth(health)(mux)
	telemetry.WithHandler("/cluster/", cluster.NewNodeAgent(srv, health).Handler())(mux)
	web := httptest.NewServer(mux)
	sh := &clusterShard{
		srv: srv, health: health, web: web,
		node: cluster.Node{ID: id, Addr: srv.Addr(), HTTP: web.URL},
	}
	t.Cleanup(sh.kill)
	return sh
}

// kill stops the shard abruptly: listener, connections and control plane
// all go away at once, as in a process crash.
func (sh *clusterShard) kill() {
	if sh.dead {
		return
	}
	sh.dead = true
	sh.srv.Shutdown()
	sh.web.Close()
}

// ownerResolver routes a UE's direct path through the live ring: the
// cluster-mode analog of pointing ServerAddr at the one server.
func ownerResolver(c *cluster.Client, id string) func() (string, error) {
	return func() (string, error) {
		node, ok := c.View().Owner(id)
		if !ok {
			return "", nil
		}
		return node.Addr, nil
	}
}

// TestClusterChaosDrainKillAndRollingRestart is the headline cluster chaos
// scenario: 12 relay-trunked UEs against 3 shards, then (1) graceful drain
// of shard-1 followed by its shutdown, (2) hard kill of shard-2 with
// health-probe eviction, (3) rolling-restart Join of a fresh shard-1
// instance. Zero heartbeats may be lost and acks must stay per-device
// monotonic and duplicate-free across all three reshards.
func TestClusterChaosDrainKillAndRollingRestart(t *testing.T) {
	var rec trace.Recorder
	s0 := startClusterShard(t, &rec, "shard-0")
	s1 := startClusterShard(t, &rec, "shard-1")
	s2 := startClusterShard(t, &rec, "shard-2")

	router, err := cluster.NewRouter(cluster.RouterConfig{
		Initial:        cluster.Config{Epoch: 1, Nodes: []cluster.Node{s0.node, s1.node, s2.node}},
		HealthInterval: 50 * time.Millisecond,
		HealthFailures: 2,
		SettleDelay:    150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer router.Close()
	rweb := httptest.NewServer(router.Handler())
	defer rweb.Close()

	client, err := cluster.NewClient(cluster.ClientConfig{
		RouterURL:    rweb.URL,
		PollInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer client.Close()

	relay, err := NewRelayAgent(RelayAgentConfig{
		ID: "relay-0", App: "im", Period: 100 * time.Millisecond,
		Expiry: 500 * time.Millisecond, Capacity: 64,
		Tracer: &rec, Cluster: client,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := relay.Start("127.0.0.1:0", ""); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	defer relay.Shutdown()

	ueIDs := make([]string, 12)
	for i := range ueIDs {
		ueIDs[i] = "cue-" + string(rune('a'+i))
		cfg := ueConfig(ueIDs[i], relay.Addr(), "", 150*time.Millisecond, 600*time.Millisecond)
		cfg.FeedbackTimeout = 300 * time.Millisecond
		cfg.Tracer = &rec
		cfg.ResolveServer = ownerResolver(client, ueIDs[i])
		u, err := NewUEClient(cfg)
		if err != nil {
			t.Fatalf("NewUEClient(%s): %v", ueIDs[i], err)
		}
		if err := u.Start(); err != nil {
			t.Fatalf("ue %s Start: %v", ueIDs[i], err)
		}
		t.Cleanup(u.Shutdown)
	}

	// Baseline: traffic reaches all three shards through the relay fanout.
	eventually(t, 3*time.Second, func() bool {
		return s0.srv.Stats().HeartbeatsRelayed > 0 &&
			s1.srv.Stats().HeartbeatsRelayed > 0 &&
			s2.srv.Stats().HeartbeatsRelayed > 0
	}, "relay fanout reaches every shard")

	// (1) Graceful drain of shard-1: the router flips the epoch, waits for
	// routes to settle, snapshots the shard and hands its presence rows to
	// the successors. Only then does the process go away.
	if err := router.Drain("shard-1"); err != nil {
		t.Fatalf("Drain(shard-1): %v", err)
	}
	if s1.health.Ready() {
		t.Error("drained shard still reports ready")
	}
	s1.kill()

	// The handoff must have landed shard-1's presence rows (with their
	// sequence high-water marks) on the surviving shards.
	handedOver := make(map[string]uint64)
	for _, sh := range []*clusterShard{s0, s2} {
		for _, e := range sh.srv.ExportPresence() {
			if e.MaxSeq > handedOver[e.ID] {
				handedOver[e.ID] = e.MaxSeq
			}
		}
	}
	for _, id := range ueIDs {
		if handedOver[id] == 0 {
			t.Errorf("ue %s missing from surviving shards' presence after drain handoff", id)
		}
	}

	time.Sleep(200 * time.Millisecond)

	// (2) Hard kill of shard-2: no drain, no handoff. The router's health
	// probes evict it; in-flight heartbeats recover through the UE
	// fallback re-resolving against the post-eviction ring.
	s2.kill()
	eventually(t, 3*time.Second, func() bool {
		_, ok := router.Config().Node("shard-2")
		return !ok
	}, "health probes evict the killed shard")

	time.Sleep(300 * time.Millisecond)

	// (3) Rolling restart: a fresh shard-1 instance (same ring identity,
	// new ports) joins; incumbents hand over the keys it now owns.
	s1b := startClusterShard(t, &rec, "shard-1")
	if err := router.Join(s1b.node); err != nil {
		t.Fatalf("Join(shard-1 restart): %v", err)
	}
	eventually(t, 3*time.Second, func() bool {
		return s1b.srv.Stats().HeartbeatsRelayed > 0
	}, "restarted shard serves relayed heartbeats again")

	// Invariants across all three reshards.
	assertEventuallyAllDelivered(t, &rec, 5*time.Second)
	assertNoDuplicateAcks(t, &rec)
	assertMonotonicAcks(t, &rec)

	if epoch := client.Epoch(); epoch < 4 {
		t.Errorf("client epoch %d after drain+evict+join, want >= 4", epoch)
	}
	if st := relay.Stats(); st.Forwarded == 0 {
		t.Errorf("relay forwarded nothing: %+v", st)
	}
}

// TestRelayReconnectReResolvesServer is the regression for the reconnect
// fix: a relay whose server moves must redial the address the resolver
// currently reports, not the one it first connected to.
func TestRelayReconnectReResolvesServer(t *testing.T) {
	oldSrv := startServer(t)
	newSrv := startServer(t)

	var target atomic.Value
	target.Store(oldSrv.Addr())
	relay, err := NewRelayAgent(RelayAgentConfig{
		ID: "relay-rr", App: "im", Period: 60 * time.Millisecond,
		Expiry: 400 * time.Millisecond, Capacity: 8,
		ReconnectAttempts: 20, ReconnectBase: 10 * time.Millisecond,
		ResolveServer: func() (string, error) { return target.Load().(string), nil },
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := relay.Start("127.0.0.1:0", ""); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	defer relay.Shutdown()

	eventually(t, 2*time.Second, func() bool {
		return oldSrv.Stats().Batches > 0
	}, "relay reaches the original server")

	// The server "moves": the old address dies and the resolver starts
	// reporting the new one. Without per-attempt re-resolution the relay
	// would burn every reconnect attempt on the dead address.
	target.Store(newSrv.Addr())
	oldSrv.Shutdown()

	eventually(t, 3*time.Second, func() bool {
		return newSrv.Stats().Batches > 0
	}, "relay reconnects to the re-resolved server address")
}

// TestServerCountsMisroutedFrames checks the shard-side routing audit: a
// heartbeat arriving at a shard the ring does not assign it increments the
// misrouted counter (and nothing else breaks — availability beats
// placement).
func TestServerCountsMisroutedFrames(t *testing.T) {
	cfg := cluster.Config{Epoch: 1, Nodes: []cluster.Node{
		{ID: "shard-a", Addr: "127.0.0.1:1"},
		{ID: "shard-b", Addr: "127.0.0.1:2"},
	}}
	cc, err := cluster.NewStaticClient(cfg, 0)
	if err != nil {
		t.Fatalf("NewStaticClient: %v", err)
	}
	ring := cc.View().Ring()
	var owned, foreign string
	for i := 0; owned == "" || foreign == ""; i++ {
		id := "probe-" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		if ring.Owner(id) == "shard-a" {
			owned = id
		} else {
			foreign = id
		}
	}

	srv := NewServer()
	srv.SetCluster("shard-a", cc)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server start: %v", err)
	}
	defer srv.Shutdown()

	for _, id := range []string{owned, foreign} {
		cfg := ueConfig(id, "", srv.Addr(), 50*time.Millisecond, 300*time.Millisecond)
		u, err := NewUEClient(cfg)
		if err != nil {
			t.Fatalf("NewUEClient(%s): %v", id, err)
		}
		if err := u.Start(); err != nil {
			t.Fatalf("ue %s Start: %v", id, err)
		}
		t.Cleanup(u.Shutdown)
	}

	eventually(t, 2*time.Second, func() bool {
		st := srv.Stats()
		return st.HeartbeatsDirect >= 2 && st.Misrouted > 0
	}, "foreign-owned heartbeat counted as misrouted")
	eventually(t, 2*time.Second, func() bool {
		st := srv.Stats()
		// Only the foreign UE's heartbeats misroute; the owned UE's never do.
		return st.Misrouted < st.HeartbeatsDirect
	}, "owned heartbeats not counted as misrouted")
}
