// Package relaynet implements the heartbeat relaying framework as a real
// networked system: an IM presence server, a relay agent running the
// Algorithm 1 scheduler against wall-clock time, and a UE client with
// feedback tracking and direct fallback. Components speak hbproto over any
// net.Conn; in tests and examples the "D2D" hop is loopback TCP.
package relaynet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"d2dhb/internal/hbmsg"
	"d2dhb/internal/hbproto"
	presencepkg "d2dhb/internal/presence"
	"d2dhb/internal/trace"
)

// ServerStats aggregates a presence server's observable behaviour.
type ServerStats struct {
	Connections       int
	Registers         int
	HeartbeatsDirect  int
	HeartbeatsRelayed int
	Batches           int
	// Late counts heartbeats that arrived past their origin+expiry
	// deadline: the sender had already flapped offline in between (the
	// paper's lost "effective heartbeat messages").
	Late int
}

// presence is one client's keep-alive state.
type presence struct {
	app      string
	lastSeen time.Time
	deadline time.Time
}

// Server is the IM presence server: it tracks per-client expiration timers
// that heartbeats reset (Section II-A).
type Server struct {
	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	clients map[string]*presence
	tracker *presencepkg.Tracker
	tracer  trace.Tracer
	start   time.Time
	stats   ServerStats
	started bool
	closed  bool

	wg sync.WaitGroup
}

// NewServer returns an unstarted server.
func NewServer() *Server {
	return &Server{
		conns:   make(map[net.Conn]struct{}),
		clients: make(map[string]*presence),
		tracker: presencepkg.NewTracker(),
	}
}

// SetTracer attaches an event tracer; call before Start. Real-stack events
// carry absolute Unix milliseconds in AtMs (components are independent
// processes with no shared virtual clock).
func (s *Server) SetTracer(tr trace.Tracer) { s.tracer = tr }

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves until Shutdown.
func (s *Server) Start(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("relaynet: server already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("relaynet: listen: %w", err)
	}
	s.ln = ln
	s.started = true
	s.start = time.Now()
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listening address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops accepting, closes every connection and waits for all
// handler goroutines to exit.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed || !s.started {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Online reports whether the client's expiration timer is still running at
// instant now.
func (s *Server) Online(id string, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.clients[id]
	return ok && now.Before(p.deadline)
}

// OnlineCount returns how many clients are online at instant now.
func (s *Server) OnlineCount(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.clients {
		if now.Before(p.deadline) {
			n++
		}
	}
	return n
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.stats.Connections++
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		msg, err := hbproto.ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				// Protocol error: drop the connection; the client will
				// reconnect and resend.
				return
			}
			return
		}
		if err := s.handleMessage(conn, msg); err != nil {
			return
		}
	}
}

func (s *Server) handleMessage(conn net.Conn, msg hbproto.Message) error {
	now := time.Now()
	switch m := msg.(type) {
	case *hbproto.Register:
		s.mu.Lock()
		s.stats.Registers++
		s.clients[m.ID] = &presence{
			app:      m.App,
			lastSeen: now,
			deadline: now.Add(m.Expiry),
		}
		s.mu.Unlock()
		return nil
	case *hbproto.Heartbeat:
		s.touch(m, now, false)
		return hbproto.WriteFrame(conn, &hbproto.Ack{
			Refs: []hbproto.Ref{{Src: m.Src, Seq: m.Seq}},
		})
	case *hbproto.Batch:
		refs := make([]hbproto.Ref, 0, len(m.HBs))
		for i := range m.HBs {
			s.touch(&m.HBs[i], now, true)
			refs = append(refs, hbproto.Ref{Src: m.HBs[i].Src, Seq: m.HBs[i].Seq})
		}
		s.mu.Lock()
		s.stats.Batches++
		s.mu.Unlock()
		return hbproto.WriteFrame(conn, &hbproto.Ack{Refs: refs})
	default:
		return fmt.Errorf("relaynet: unexpected %v from client", msg.Type())
	}
}

// touch resets a client's expiration timer: IM apps "send heartbeat
// messages frequently to reset the expiration timers" (Section II-A), so
// the timer runs for the heartbeat's expiry from reception. A heartbeat
// arriving past its own origin+expiry deadline still resets the timer but
// is counted late: the client had already flapped offline in between.
func (s *Server) touch(hb *hbproto.Heartbeat, now time.Time, relayed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if relayed {
		s.stats.HeartbeatsRelayed++
	} else {
		s.stats.HeartbeatsDirect++
	}
	if now.After(hb.Deadline()) {
		s.stats.Late++
	}
	p, ok := s.clients[hb.Src]
	if !ok {
		p = &presence{app: hb.App}
		s.clients[hb.Src] = p
	}
	p.lastSeen = now
	if deadline := now.Add(hb.Expiry); deadline.After(p.deadline) {
		p.deadline = deadline
	}
	_ = s.tracker.Deliver(hbmsg.Heartbeat{
		Src:    hbmsg.DeviceID(hb.Src),
		Seq:    hb.Seq,
		App:    hb.App,
		Expiry: hb.Expiry,
	}, now.Sub(s.start))
	via := hb.Src
	if relayed {
		via = "relay"
	}
	trace.Emit(s.tracer, trace.Event{
		AtMs: now.UnixMilli(), Device: hb.Src, Kind: trace.KindDelivery,
		App: hb.App, Seq: hb.Seq, Peer: via, OnTime: !now.After(hb.Deadline()),
	})
}

// Availability returns the fraction of time the client was online between
// its first heartbeat and now, and how many times it flapped offline.
func (s *Server) Availability(id string) (availability float64, flaps int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	horizon := time.Since(s.start)
	_, flaps, _ = s.tracker.Stats(hbmsg.DeviceID(id), horizon)
	return s.tracker.Availability(hbmsg.DeviceID(id), horizon), flaps
}
