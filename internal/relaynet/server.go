// Package relaynet implements the heartbeat relaying framework as a real
// networked system: an IM presence server, a relay agent running the
// Algorithm 1 scheduler against wall-clock time, and a UE client with
// feedback tracking and direct fallback. Components speak hbproto over any
// net.Conn; in tests and examples the "D2D" hop is loopback TCP.
package relaynet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"d2dhb/internal/hbmsg"
	"d2dhb/internal/hbproto"
	presencepkg "d2dhb/internal/presence"
	"d2dhb/internal/trace"
)

// ServerStats aggregates a presence server's observable behaviour.
type ServerStats struct {
	Connections       int
	Registers         int
	HeartbeatsDirect  int
	HeartbeatsRelayed int
	Batches           int
	// Late counts heartbeats that arrived past their origin+expiry
	// deadline: the sender had already flapped offline in between (the
	// paper's lost "effective heartbeat messages").
	Late int
	// ProtocolErrors counts connections dropped for malformed frames or
	// messages a client may not send (each also emits a conn-drop trace
	// event).
	ProtocolErrors int
	// IdleDrops counts connections reaped by the idle read deadline.
	IdleDrops int
}

// presence is one client's keep-alive state.
type presence struct {
	app      string
	lastSeen time.Time
	deadline time.Time
}

// presenceShardCount stripes the presence table. Power of two so the hash
// masks instead of dividing; 64 stripes keep contention negligible even
// for thousands of concurrent handler goroutines.
const presenceShardCount = 64

// presenceShard is one stripe of the presence/session table. A client's
// state lives entirely in the shard its ID hashes to, so per-client
// ordering invariants (tracker deliveries) are preserved under the shard
// lock alone.
type presenceShard struct {
	mu      sync.Mutex
	clients map[string]*presence
	tracker *presencepkg.Tracker
	_       [24]byte // keep neighbouring stripes off one cache line
}

// connCounters is one connection's stats block. The handler goroutine owns
// the writes (uncontended atomic adds); Stats aggregates every live block
// plus the folded totals of closed connections on snapshot, so the hot
// path never takes a shared lock for accounting.
type connCounters struct {
	registers atomic.Int64
	direct    atomic.Int64
	relayed   atomic.Int64
	batches   atomic.Int64
	late      atomic.Int64
}

// Server is the IM presence server: it tracks per-client expiration timers
// that heartbeats reset (Section II-A). Presence state is striped across
// presenceShardCount lock shards keyed by client ID, so handlers for
// different clients proceed in parallel.
type Server struct {
	mu      sync.Mutex // lifecycle + connection registry
	ln      net.Listener
	conns   map[net.Conn]*connCounters
	folded  connCounters // folded counters of closed connections
	tracer  trace.Tracer
	start   time.Time
	started bool
	closed  bool

	shards [presenceShardCount]presenceShard

	accepted       atomic.Int64
	protocolErrors atomic.Int64
	idleDrops      atomic.Int64

	// idleTimeout > 0 arms a per-connection read deadline so half-dead
	// clients are reaped instead of pinning handler goroutines forever.
	idleTimeout time.Duration
	// writeTimeout > 0 bounds ack writes so a client that stops reading
	// cannot block its handler.
	writeTimeout time.Duration

	wg sync.WaitGroup
}

// NewServer returns an unstarted server.
func NewServer() *Server {
	s := &Server{conns: make(map[net.Conn]*connCounters)}
	for i := range s.shards {
		s.shards[i].clients = make(map[string]*presence)
		s.shards[i].tracker = presencepkg.NewTracker()
	}
	return s
}

// shard returns the stripe owning a client ID (FNV-1a).
func (s *Server) shard(id string) *presenceShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &s.shards[h&(presenceShardCount-1)]
}

// SetTracer attaches an event tracer; call before Start. Real-stack events
// carry absolute Unix milliseconds in AtMs (components are independent
// processes with no shared virtual clock).
func (s *Server) SetTracer(tr trace.Tracer) { s.tracer = tr }

// SetIdleTimeout arms a per-connection read deadline: a connection that
// stays silent for d is dropped and counted in IdleDrops. Zero (the
// default) disables reaping. Call before Start.
func (s *Server) SetIdleTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idleTimeout = d
}

// SetWriteTimeout bounds every ack write so a client that stops reading
// cannot pin its handler goroutine. Zero (the default) disables the bound.
// Call before Start.
func (s *Server) SetWriteTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeTimeout = d
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("relaynet: listen: %w", err)
	}
	if err := s.StartListener(ln); err != nil {
		_ = ln.Close()
		return err
	}
	return nil
}

// StartListener serves on a caller-provided listener (e.g. one wrapped by
// internal/faultnet to inject accept-time and per-connection faults) until
// Shutdown, which closes it.
func (s *Server) StartListener(ln net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("relaynet: server already started")
	}
	s.ln = ln
	s.started = true
	s.start = time.Now()
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listening address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops accepting, closes every connection and waits for all
// handler goroutines to exit.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed || !s.started {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a snapshot of the counters: the folded totals of closed
// connections plus every live connection's block.
func (s *Server) Stats() ServerStats {
	var st ServerStats
	add := func(cc *connCounters) {
		st.Registers += int(cc.registers.Load())
		st.HeartbeatsDirect += int(cc.direct.Load())
		st.HeartbeatsRelayed += int(cc.relayed.Load())
		st.Batches += int(cc.batches.Load())
		st.Late += int(cc.late.Load())
	}
	s.mu.Lock()
	add(&s.folded)
	for _, cc := range s.conns {
		add(cc)
	}
	s.mu.Unlock()
	st.Connections = int(s.accepted.Load())
	st.ProtocolErrors = int(s.protocolErrors.Load())
	st.IdleDrops = int(s.idleDrops.Load())
	return st
}

// Online reports whether the client's expiration timer is still running at
// instant now.
func (s *Server) Online(id string, now time.Time) bool {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.clients[id]
	return ok && now.Before(p.deadline)
}

// OnlineCount returns how many clients are online at instant now.
func (s *Server) OnlineCount(now time.Time) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, p := range sh.clients {
			if now.Before(p.deadline) {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		cc := &connCounters{}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = cc
		s.accepted.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn, cc)
	}
}

func (s *Server) handleConn(conn net.Conn, cc *connCounters) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		// Fold this connection's counters into the closed totals so the
		// snapshot stays complete after the handler exits.
		s.folded.registers.Add(cc.registers.Load())
		s.folded.direct.Add(cc.direct.Load())
		s.folded.relayed.Add(cc.relayed.Load())
		s.folded.batches.Add(cc.batches.Load())
		s.folded.late.Add(cc.late.Load())
		s.mu.Unlock()
	}()
	s.mu.Lock()
	idle, wto := s.idleTimeout, s.writeTimeout
	s.mu.Unlock()
	for {
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		msg, err := hbproto.ReadFrame(conn)
		if err != nil {
			s.noteReadError(conn, err)
			return
		}
		if err := s.handleMessage(conn, cc, wto, msg); err != nil {
			if errors.Is(err, errProtocol) {
				s.noteDrop(conn, err.Error(), false)
			}
			return
		}
	}
}

// errProtocol marks connection drops caused by the peer violating the
// protocol (as opposed to ordinary disconnects or write failures).
var errProtocol = errors.New("relaynet: protocol violation")

// noteReadError classifies a terminal read error: clean disconnects pass
// silently, idle-deadline expiries count as reaps, anything else (bad
// magic, checksum mismatch, truncated frame, unknown type) is a protocol
// error. Both drop flavours emit a conn-drop trace event.
func (s *Server) noteReadError(conn net.Conn, err error) {
	if err == io.EOF || errors.Is(err, net.ErrClosed) {
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.noteDrop(conn, "idle-timeout", true)
		return
	}
	s.noteDrop(conn, err.Error(), false)
}

// noteDrop records one counted connection drop and its trace event.
func (s *Server) noteDrop(conn net.Conn, reason string, idle bool) {
	if idle {
		s.idleDrops.Add(1)
	} else {
		s.protocolErrors.Add(1)
	}
	trace.Emit(s.tracer, trace.Event{
		AtMs: time.Now().UnixMilli(), Device: conn.RemoteAddr().String(),
		Kind: trace.KindConnDrop, Reason: reason,
	})
}

// writeFrame writes one message under the optional write deadline.
func writeFrame(conn net.Conn, wto time.Duration, msg hbproto.Message) error {
	if wto > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(wto))
	}
	return hbproto.WriteFrame(conn, msg)
}

func (s *Server) handleMessage(conn net.Conn, cc *connCounters, wto time.Duration, msg hbproto.Message) error {
	now := time.Now()
	switch m := msg.(type) {
	case *hbproto.Register:
		cc.registers.Add(1)
		sh := s.shard(m.ID)
		sh.mu.Lock()
		sh.clients[m.ID] = &presence{
			app:      m.App,
			lastSeen: now,
			deadline: now.Add(m.Expiry),
		}
		sh.mu.Unlock()
		return nil
	case *hbproto.Heartbeat:
		s.touch(cc, m, now, false)
		return writeFrame(conn, wto, &hbproto.Ack{
			Refs: []hbproto.Ref{{Src: m.Src, Seq: m.Seq}},
		})
	case *hbproto.Batch:
		refs := make([]hbproto.Ref, 0, len(m.HBs))
		for i := range m.HBs {
			s.touch(cc, &m.HBs[i], now, true)
			refs = append(refs, hbproto.Ref{Src: m.HBs[i].Src, Seq: m.HBs[i].Seq})
		}
		cc.batches.Add(1)
		return writeFrame(conn, wto, &hbproto.Ack{Refs: refs})
	default:
		return fmt.Errorf("%w: unexpected %v from client", errProtocol, msg.Type())
	}
}

// touch resets a client's expiration timer: IM apps "send heartbeat
// messages frequently to reset the expiration timers" (Section II-A), so
// the timer runs for the heartbeat's expiry from reception. A heartbeat
// arriving past its own origin+expiry deadline still resets the timer but
// is counted late: the client had already flapped offline in between.
func (s *Server) touch(cc *connCounters, hb *hbproto.Heartbeat, now time.Time, relayed bool) {
	if relayed {
		cc.relayed.Add(1)
	} else {
		cc.direct.Add(1)
	}
	onTime := !now.After(hb.Deadline())
	if !onTime {
		cc.late.Add(1)
	}
	sh := s.shard(hb.Src)
	sh.mu.Lock()
	p, ok := sh.clients[hb.Src]
	if !ok {
		p = &presence{app: hb.App}
		sh.clients[hb.Src] = p
	}
	p.lastSeen = now
	if deadline := now.Add(hb.Expiry); deadline.After(p.deadline) {
		p.deadline = deadline
	}
	_ = sh.tracker.Deliver(hbmsg.Heartbeat{
		Src:    hbmsg.DeviceID(hb.Src),
		Seq:    hb.Seq,
		App:    hb.App,
		Expiry: hb.Expiry,
	}, now.Sub(s.start))
	sh.mu.Unlock()
	via := hb.Src
	if relayed {
		via = "relay"
	}
	trace.Emit(s.tracer, trace.Event{
		AtMs: now.UnixMilli(), Device: hb.Src, Kind: trace.KindDelivery,
		App: hb.App, Seq: hb.Seq, Peer: via, OnTime: onTime,
	})
}

// Availability returns the fraction of time the client was online between
// its first heartbeat and now, and how many times it flapped offline.
func (s *Server) Availability(id string) (availability float64, flaps int) {
	horizon := time.Since(s.start)
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, flaps, _ = sh.tracker.Stats(hbmsg.DeviceID(id), horizon)
	return sh.tracker.Availability(hbmsg.DeviceID(id), horizon), flaps
}
