// Package relaynet implements the heartbeat relaying framework as a real
// networked system: an IM presence server, a relay agent running the
// Algorithm 1 scheduler against wall-clock time, and a UE client with
// feedback tracking and direct fallback. Components speak hbproto over any
// net.Conn; in tests and examples the "D2D" hop is loopback TCP.
package relaynet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"d2dhb/internal/cluster"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/hbproto"
	presencepkg "d2dhb/internal/presence"
	"d2dhb/internal/telemetry"
	"d2dhb/internal/trace"
)

// ServerStats aggregates a presence server's observable behaviour.
type ServerStats struct {
	Connections       int
	Registers         int
	HeartbeatsDirect  int
	HeartbeatsRelayed int
	Batches           int
	// Late counts heartbeats that arrived past their origin+expiry
	// deadline: the sender had already flapped offline in between (the
	// paper's lost "effective heartbeat messages").
	Late int
	// ProtocolErrors counts connections dropped for malformed frames or
	// messages a client may not send (each also emits a conn-drop trace
	// event).
	ProtocolErrors int
	// IdleDrops counts connections reaped by the idle read deadline.
	IdleDrops int
	// WriteDeadlineHits counts ack writes that hit the write deadline (the
	// client stopped reading).
	WriteDeadlineHits int
	// Misrouted counts heartbeats delivered to this shard although the
	// cluster ring assigns their source to another shard (stale routing
	// epoch somewhere). Always zero outside cluster mode.
	Misrouted int
}

// presence is one client's keep-alive state. maxSeq is the delivered
// sequence high-water mark; it travels with the entry during a cluster
// handoff so the receiving shard knows what the client has already proven
// delivered.
type presence struct {
	app      string
	lastSeen time.Time
	deadline time.Time
	maxSeq   uint64
}

// presenceShardCount stripes the presence table. Power of two so the hash
// masks instead of dividing; 64 stripes keep contention negligible even
// for thousands of concurrent handler goroutines.
const presenceShardCount = 64

// presenceShard is one stripe of the presence/session table. A client's
// state lives entirely in the shard its ID hashes to, so per-client
// ordering invariants (tracker deliveries) are preserved under the shard
// lock alone.
type presenceShard struct {
	mu      sync.Mutex
	clients map[string]*presence
	tracker *presencepkg.Tracker
	_       [24]byte // keep neighbouring stripes off one cache line
}

// statsStripeCount stripes the delivery counters. Each connection is bound
// to one stripe round-robin by accept order, so handler updates are atomic
// adds on (mostly) private cache lines and Stats sums a fixed 64 blocks —
// no lock, no sweep over the live-connection table.
const statsStripeCount = 64

// connCounters is one stats stripe. The padding keeps neighbouring stripes
// on separate cache lines so connections on different stripes never false-
// share.
type connCounters struct {
	registers atomic.Int64
	direct    atomic.Int64
	relayed   atomic.Int64
	batches   atomic.Int64
	late      atomic.Int64
	_         [24]byte
}

// Server is the IM presence server: it tracks per-client expiration timers
// that heartbeats reset (Section II-A). Presence state is striped across
// presenceShardCount lock shards keyed by client ID, so handlers for
// different clients proceed in parallel.
type Server struct {
	mu      sync.Mutex // lifecycle + connection registry
	ln      net.Listener
	conns   map[net.Conn]struct{}
	tracer  trace.Tracer
	start   time.Time
	started bool
	closed  bool

	shards  [presenceShardCount]presenceShard
	stripes [statsStripeCount]connCounters

	accepted       atomic.Int64
	protocolErrors atomic.Int64
	idleDrops      atomic.Int64
	writeTimeouts  atomic.Int64
	misrouted      atomic.Int64

	// Cluster mode (see cluster.go): selfID is this shard's ring identity,
	// clusterClient tracks the epoch-versioned config, draining backs the
	// Store handoff protocol. All set before Start / guarded by mu.
	selfID        string
	clusterClient *cluster.Client
	draining      bool

	ins serverInstruments

	// idleTimeout > 0 arms a per-connection read deadline so half-dead
	// clients are reaped instead of pinning handler goroutines forever.
	idleTimeout time.Duration
	// writeTimeout > 0 bounds ack writes so a client that stops reading
	// cannot block its handler.
	writeTimeout time.Duration

	wg sync.WaitGroup
}

// NewServer returns an unstarted server.
func NewServer() *Server {
	s := &Server{conns: make(map[net.Conn]struct{})}
	for i := range s.shards {
		s.shards[i].clients = make(map[string]*presence)
		s.shards[i].tracker = presencepkg.NewTracker()
	}
	return s
}

// shard returns the stripe owning a client ID (FNV-1a).
func (s *Server) shard(id string) *presenceShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &s.shards[h&(presenceShardCount-1)]
}

// SetTracer attaches an event tracer; call before Start. Real-stack events
// carry absolute Unix milliseconds in AtMs (components are independent
// processes with no shared virtual clock).
func (s *Server) SetTracer(tr trace.Tracer) { s.tracer = tr }

// serverInstruments is the server's live-telemetry handle block. Every
// handle is nil (a no-op) until SetTelemetry registers real ones, so the
// hot path pays one nil check per update when telemetry is off.
type serverInstruments struct {
	accepts       *telemetry.Counter
	frames        *telemetry.Counter
	dropsProtocol *telemetry.Counter
	dropsIdle     *telemetry.Counter
	writeTimeouts *telemetry.Counter
	late          *telemetry.Counter
	misrouted     *telemetry.Counter
	batchSize     *telemetry.Histogram
	// Wire-path coalescing: ack flushes (one Write each), refs per flush
	// (the syscall batch size), and bytes written on the ack path.
	ackFlushes  *telemetry.Counter
	ackRefs     *telemetry.Histogram
	ackBytesOut *telemetry.Counter
}

// SetTelemetry registers the server's runtime metrics in reg; call before
// Start. Counters and the batch-size histogram update lock-free on the hot
// path; presence occupancy is sampled at scrape time through gauge
// functions so the handlers never mirror map sizes.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.ins = serverInstruments{
		accepts:       reg.Counter("relaynet_server_accepts_total"),
		frames:        reg.Counter("relaynet_server_frames_total"),
		dropsProtocol: reg.Counter("relaynet_server_drops_total", telemetry.L("reason", "protocol")),
		dropsIdle:     reg.Counter("relaynet_server_drops_total", telemetry.L("reason", "idle")),
		writeTimeouts: reg.Counter("relaynet_server_write_deadline_hits_total"),
		late:          reg.Counter("relaynet_server_late_heartbeats_total"),
		misrouted:     reg.Counter("relaynet_server_misrouted_frames_total"),
		batchSize:     reg.Histogram("relaynet_server_batch_size", "msgs", 8),
		ackFlushes:    reg.Counter("relaynet_server_ack_flushes_total"),
		ackRefs:       reg.Histogram("relaynet_server_ack_refs_per_flush", "refs", 8),
		ackBytesOut:   reg.Counter("relaynet_server_ack_bytes_total"),
	}
	reg.GaugeFunc("relaynet_server_open_connections", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.conns))
	})
	reg.GaugeFunc("relaynet_server_presence_clients", func() float64 {
		total, _ := s.presenceOccupancy()
		return float64(total)
	})
	reg.GaugeFunc("relaynet_server_presence_shard_max", func() float64 {
		_, max := s.presenceOccupancy()
		return float64(max)
	})
}

// presenceOccupancy samples the presence table shard by shard: total
// tracked clients and the largest single shard (hash-imbalance indicator).
func (s *Server) presenceOccupancy() (total, maxShard int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n := len(sh.clients)
		sh.mu.Unlock()
		total += n
		if n > maxShard {
			maxShard = n
		}
	}
	return total, maxShard
}

// SetIdleTimeout arms a per-connection read deadline: a connection that
// stays silent for d is dropped and counted in IdleDrops. Zero (the
// default) disables reaping. Call before Start.
func (s *Server) SetIdleTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idleTimeout = d
}

// SetWriteTimeout bounds every ack write so a client that stops reading
// cannot pin its handler goroutine. Zero (the default) disables the bound.
// Call before Start.
func (s *Server) SetWriteTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeTimeout = d
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("relaynet: listen: %w", err)
	}
	if err := s.StartListener(ln); err != nil {
		_ = ln.Close()
		return err
	}
	return nil
}

// StartListener serves on a caller-provided listener (e.g. one wrapped by
// internal/faultnet to inject accept-time and per-connection faults) until
// Shutdown, which closes it.
func (s *Server) StartListener(ln net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("relaynet: server already started")
	}
	s.ln = ln
	s.started = true
	s.start = time.Now()
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listening address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops accepting, closes every connection and waits for all
// handler goroutines to exit.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed || !s.started {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a snapshot of the counters by summing the fixed stats
// stripes — no lock and no sweep over live connections, so it is cheap
// enough to poll from a telemetry scraper at any fleet size (see
// BenchmarkServerStats).
func (s *Server) Stats() ServerStats {
	var st ServerStats
	for i := range s.stripes {
		cc := &s.stripes[i]
		st.Registers += int(cc.registers.Load())
		st.HeartbeatsDirect += int(cc.direct.Load())
		st.HeartbeatsRelayed += int(cc.relayed.Load())
		st.Batches += int(cc.batches.Load())
		st.Late += int(cc.late.Load())
	}
	st.Connections = int(s.accepted.Load())
	st.ProtocolErrors = int(s.protocolErrors.Load())
	st.IdleDrops = int(s.idleDrops.Load())
	st.WriteDeadlineHits = int(s.writeTimeouts.Load())
	st.Misrouted = int(s.misrouted.Load())
	return st
}

// Online reports whether the client's expiration timer is still running at
// instant now.
func (s *Server) Online(id string, now time.Time) bool {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.clients[id]
	return ok && now.Before(p.deadline)
}

// OnlineCount returns how many clients are online at instant now.
func (s *Server) OnlineCount(now time.Time) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, p := range sh.clients {
			if now.Before(p.deadline) {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		n := s.accepted.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		s.ins.accepts.Inc()
		// Bind the connection to a stats stripe round-robin by accept order.
		cc := &s.stripes[int(n-1)%statsStripeCount]
		go s.handleConn(conn, cc)
	}
}

// Ack-aggregator bounds. While a client keeps pipelining frames the
// server defers acks, composing one combined Ack frame (one Write) per
// drained burst; a size cap bounds frame growth and an age cap bounds the
// extra latency a continuously-pipelining peer can see.
const (
	ackAggMaxRefs = 4096
	ackAggMaxAge  = 2 * time.Millisecond
)

// ackAggregator coalesces the acks owed on one connection into combined
// frames. refs hold interned strings from the connection's FrameReader,
// so deferring them does not pin payload scratch.
type ackAggregator struct {
	refs    []hbproto.Ref
	buf     []byte // reusable encode buffer
	ack     hbproto.Ack
	firstAt time.Time // when the oldest deferred ref was enqueued
}

func (a *ackAggregator) add(src string, seq uint64, now time.Time) {
	if len(a.refs) == 0 {
		a.firstAt = now
	}
	a.refs = append(a.refs, hbproto.Ref{Src: src, Seq: seq})
}

// shouldFlush reports whether the pending acks must go out now: the peer
// has nothing more pipelined, the size cap is hit, or the oldest deferred
// ack is about to exceed the latency bound.
func (a *ackAggregator) shouldFlush(buffered int, now time.Time) bool {
	if len(a.refs) == 0 {
		return false
	}
	return buffered == 0 || len(a.refs) >= ackAggMaxRefs || now.Sub(a.firstAt) >= ackAggMaxAge
}

// flushAcks writes all pending acks as one frame under the write
// deadline, counting deadline hits (clients that stopped reading).
func (s *Server) flushAcks(conn net.Conn, wto time.Duration, agg *ackAggregator) error {
	if len(agg.refs) == 0 {
		return nil
	}
	agg.ack.Refs = agg.refs
	out, err := hbproto.AppendFrame(agg.buf[:0], &agg.ack)
	agg.buf = out[:0]
	if err != nil {
		return err
	}
	if wto > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(wto))
	}
	if _, err = conn.Write(out); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.writeTimeouts.Add(1)
			s.ins.writeTimeouts.Inc()
		}
		return err
	}
	s.ins.ackFlushes.Inc()
	s.ins.ackRefs.Record(uint64(len(agg.refs)))
	s.ins.ackBytesOut.Add(uint64(len(out)))
	agg.refs = agg.refs[:0]
	return nil
}

func (s *Server) handleConn(conn net.Conn, cc *connCounters) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	s.mu.Lock()
	idle, wto := s.idleTimeout, s.writeTimeout
	s.mu.Unlock()
	fr := hbproto.NewFrameReader(conn)
	var agg ackAggregator
	for {
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		msg, err := fr.Next()
		if err != nil {
			// Best-effort: acks deferred behind a peer's final burst
			// still go out before a clean disconnect.
			_ = s.flushAcks(conn, wto, &agg)
			s.noteReadError(conn, err)
			return
		}
		s.ins.frames.Inc()
		if err := s.handleMessage(cc, msg, &agg); err != nil {
			if errors.Is(err, errProtocol) {
				s.noteDrop(conn, err.Error(), false)
			}
			return
		}
		if agg.shouldFlush(fr.Buffered(), time.Now()) {
			if err := s.flushAcks(conn, wto, &agg); err != nil {
				return
			}
		}
	}
}

// errProtocol marks connection drops caused by the peer violating the
// protocol (as opposed to ordinary disconnects or write failures).
var errProtocol = errors.New("relaynet: protocol violation")

// noteReadError classifies a terminal read error: clean disconnects pass
// silently, idle-deadline expiries count as reaps, anything else (bad
// magic, checksum mismatch, truncated frame, unknown type) is a protocol
// error. Both drop flavours emit a conn-drop trace event.
func (s *Server) noteReadError(conn net.Conn, err error) {
	if err == io.EOF || errors.Is(err, net.ErrClosed) {
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.noteDrop(conn, "idle-timeout", true)
		return
	}
	s.noteDrop(conn, err.Error(), false)
}

// noteDrop records one counted connection drop and its trace event.
func (s *Server) noteDrop(conn net.Conn, reason string, idle bool) {
	if idle {
		s.idleDrops.Add(1)
		s.ins.dropsIdle.Inc()
	} else {
		s.protocolErrors.Add(1)
		s.ins.dropsProtocol.Inc()
	}
	trace.Emit(s.tracer, trace.Event{
		AtMs: time.Now().UnixMilli(), Device: conn.RemoteAddr().String(),
		Kind: trace.KindConnDrop, Reason: reason,
	})
}

// handleMessage updates presence state and queues the acks the message
// earned; handleConn decides when the queue is flushed to the socket.
func (s *Server) handleMessage(cc *connCounters, msg hbproto.Message, agg *ackAggregator) error {
	now := time.Now()
	switch m := msg.(type) {
	case *hbproto.Register:
		cc.registers.Add(1)
		sh := s.shard(m.ID)
		sh.mu.Lock()
		sh.clients[m.ID] = &presence{
			app:      m.App,
			lastSeen: now,
			deadline: now.Add(m.Expiry),
		}
		sh.mu.Unlock()
		return nil
	case *hbproto.Heartbeat:
		s.touch(cc, m, now, false)
		agg.add(m.Src, m.Seq, now)
		return nil
	case *hbproto.Batch:
		for i := range m.HBs {
			s.touch(cc, &m.HBs[i], now, true)
			agg.add(m.HBs[i].Src, m.HBs[i].Seq, now)
		}
		cc.batches.Add(1)
		s.ins.batchSize.Record(uint64(len(m.HBs)))
		return nil
	default:
		return fmt.Errorf("%w: unexpected %v from client", errProtocol, msg.Type())
	}
}

// touch resets a client's expiration timer: IM apps "send heartbeat
// messages frequently to reset the expiration timers" (Section II-A), so
// the timer runs for the heartbeat's expiry from reception. A heartbeat
// arriving past its own origin+expiry deadline still resets the timer but
// is counted late: the client had already flapped offline in between.
func (s *Server) touch(cc *connCounters, hb *hbproto.Heartbeat, now time.Time, relayed bool) {
	if relayed {
		cc.relayed.Add(1)
	} else {
		cc.direct.Add(1)
	}
	onTime := !now.After(hb.Deadline())
	if !onTime {
		cc.late.Add(1)
		s.ins.late.Inc()
	}
	s.noteRouting(hb.Src)
	sh := s.shard(hb.Src)
	sh.mu.Lock()
	p, ok := sh.clients[hb.Src]
	if !ok {
		p = &presence{app: hb.App}
		sh.clients[hb.Src] = p
	}
	p.lastSeen = now
	if deadline := now.Add(hb.Expiry); deadline.After(p.deadline) {
		p.deadline = deadline
	}
	if hb.Seq > p.maxSeq {
		p.maxSeq = hb.Seq
	}
	_ = sh.tracker.Deliver(hbmsg.Heartbeat{
		Src:    hbmsg.DeviceID(hb.Src),
		Seq:    hb.Seq,
		App:    hb.App,
		Expiry: hb.Expiry,
	}, now.Sub(s.start))
	sh.mu.Unlock()
	via := hb.Src
	if relayed {
		via = "relay"
	}
	trace.Emit(s.tracer, trace.Event{
		AtMs: now.UnixMilli(), Device: hb.Src, Kind: trace.KindDelivery,
		App: hb.App, Seq: hb.Seq, Peer: via, OnTime: onTime,
	})
}

// Availability returns the fraction of time the client was online between
// its first heartbeat and now, and how many times it flapped offline.
func (s *Server) Availability(id string) (availability float64, flaps int) {
	horizon := time.Since(s.start)
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, flaps, _ = sh.tracker.Stats(hbmsg.DeviceID(id), horizon)
	return sh.tracker.Availability(hbmsg.DeviceID(id), horizon), flaps
}
