package relaynet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"d2dhb/internal/cluster"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/hbproto"
	"d2dhb/internal/sched"
	"d2dhb/internal/telemetry"
	"d2dhb/internal/trace"
)

// RelayAgentConfig parameterizes a relay agent.
type RelayAgentConfig struct {
	// ID is the relay's device id.
	ID string
	// App names the relay's own heartbeat app.
	App string
	// Period is the relay's own heartbeat period (the scheduling window
	// T).
	Period time.Duration
	// Expiry is the relay's own heartbeat expiration time.
	Expiry time.Duration
	// Pad is the relay's own heartbeat size in bytes.
	Pad int
	// Capacity is M, the per-period collection capacity.
	Capacity int
	// Tracer receives structured events when non-nil (AtMs is Unix ms).
	Tracer trace.Tracer
	// Dial overrides upstream (server) dialing; nil selects net.Dial.
	// Fault-injection hook (see internal/faultnet).
	Dial func(network, addr string) (net.Conn, error)
	// Listen overrides the UE-side listener construction; nil selects
	// net.Listen. Fault-injection hook.
	Listen func(network, addr string) (net.Listener, error)
	// ReconnectAttempts bounds upstream redial attempts after the server
	// connection breaks (single-server mode). Zero selects 6.
	ReconnectAttempts int
	// ReconnectBase is the initial redial backoff, doubled per attempt
	// with ±50% seeded jitter so relay fleets losing the same server do
	// not stampede it in lockstep.  Cluster mode uses the same base for
	// its per-shard backoff. Zero selects 50 ms.
	ReconnectBase time.Duration
	// Seed seeds the backoff jitter RNG; zero derives a seed from ID, so
	// distinct relays jitter differently by default.
	Seed int64
	// Cluster switches the relay to sharded fanout: every flushed batch is
	// partitioned by the client's current ring epoch and each sub-batch
	// goes to the owning presence shard over a lazily-dialed per-shard
	// connection. The serverAddr argument to Start is ignored. A shard
	// that cannot be reached costs only its own sub-batch (the affected
	// UEs recover through the feedback-timeout fallback); the relay never
	// blocks its scheduling loop on a dead shard.
	Cluster *cluster.Client
	// ResolveServer, when non-nil, re-resolves the upstream server address
	// before the initial dial and again on every reconnect attempt —
	// without it a relay redials the address it first connected to even
	// after the cluster moved or restarted that server elsewhere.
	// Single-server mode only (cluster mode resolves through the ring).
	ResolveServer func() (string, error)
	// Telemetry registers the agent's runtime metrics (batch sizes,
	// collect-to-flush latency, reconnect attempts, scheduler occupancy
	// and deadline slack) in the given registry. Nil disables telemetry.
	Telemetry *telemetry.Registry
}

func (c RelayAgentConfig) validate() error {
	if c.ID == "" {
		return errors.New("relaynet: empty relay id")
	}
	if c.Period <= 0 || c.Expiry <= 0 {
		return fmt.Errorf("relaynet: period/expiry must be positive (%v/%v)", c.Period, c.Expiry)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("relaynet: capacity must be positive, got %d", c.Capacity)
	}
	if c.ReconnectAttempts < 0 || c.ReconnectBase < 0 {
		return fmt.Errorf("relaynet: negative reconnect attempts/base (%d/%v)",
			c.ReconnectAttempts, c.ReconnectBase)
	}
	if c.Cluster != nil && c.ResolveServer != nil {
		return errors.New("relaynet: Cluster and ResolveServer are mutually exclusive")
	}
	return nil
}

// dial resolves the upstream dial hook.
func (c RelayAgentConfig) dial(network, addr string) (net.Conn, error) {
	if c.Dial != nil {
		return c.Dial(network, addr)
	}
	return net.Dial(network, addr)
}

// listen resolves the UE-side listen hook.
func (c RelayAgentConfig) listen(network, addr string) (net.Listener, error) {
	if c.Listen != nil {
		return c.Listen(network, addr)
	}
	return net.Listen(network, addr)
}

// RelayAgentStats aggregates a relay agent's behaviour.
type RelayAgentStats struct {
	UEConnections      int
	Collected          int
	RejectedClosed     int
	RejectedExpire     int
	Flushes            int
	Forwarded          int
	OwnHeartbeats      int
	FeedbacksSent      int
	Credits            int
	UpstreamReconnects int
	// ShardDials counts successful upstream dials in cluster mode
	// (including each shard's first).
	ShardDials int
	// DroppedNoShard counts heartbeats abandoned because their owning
	// shard was unreachable (or in dial backoff) at flush time. The UEs
	// recover through the feedback-timeout fallback.
	DroppedNoShard int
	// FeedbackWritesSaved counts UE feedback writes avoided by merging
	// refs from several server acks into one Feedback frame per UE per
	// event drain (each merge into an already-pending group is one write
	// the per-ack path would have issued).
	FeedbackWritesSaved int
}

// ueConn is one connected UE on the relay's "D2D" listener.
type ueConn struct {
	conn net.Conn
	id   string
}

// relayEvent is the main loop's input alphabet.
type relayEvent struct {
	// exactly one of ueMsg/ueClosed/ack/upErr is set
	ueMsg    hbproto.Message
	ueFrom   *ueConn
	ueClosed *ueConn
	ack      *hbproto.Ack
	upErr    error
	// upShard and upConn attribute an upstream error to the shard
	// connection it broke (upShard is singleShard outside cluster mode),
	// so the run loop can ignore errors from connections it has already
	// replaced.
	upShard string
	upConn  net.Conn
}

// singleShard keys the upstream map in single-server mode.
const singleShard = ""

// RelayAgent collects heartbeats from UE connections and forwards them to
// the server in aggregated batches under the Algorithm 1 schedule, sending
// feedback to each UE once the server acknowledges the batch. In cluster
// mode the flush fans out per owning shard instead of using one upstream.
type RelayAgent struct {
	cfg RelayAgentConfig

	mu         sync.Mutex
	ln         net.Listener
	upConns    map[net.Conn]struct{} // live upstream conns, for Shutdown
	serverAddr string                // last known single-server address
	started    bool
	closed     bool
	stats      RelayAgentStats

	events chan relayEvent
	done   chan struct{}
	wg     sync.WaitGroup

	// main-loop state (owned by run goroutine)
	policy  *sched.Nagle
	start   time.Time
	seq     uint64
	ownHB   *hbproto.Heartbeat
	sources map[hbproto.Ref]*ueConn
	ueConns map[*ueConn]struct{}
	rng     *rand.Rand // backoff jitter; owned by run goroutine
	// ups maps shard ID -> live upstream connection (singleShard key in
	// single-server mode). downUntil/backoffCur arm the per-shard redial
	// backoff so flush never hammers a dead shard, and everDialed
	// distinguishes a reconnect from a shard's first dial in the stats.
	ups        map[string]net.Conn
	downUntil  map[string]time.Duration
	backoffCur map[string]time.Duration
	everDialed map[string]bool
	// collectedAt mirrors the policy's pending buffer with each message's
	// collect instant, so flush can histogram collect-to-flush latency.
	// Owned by the run goroutine, like the policy itself.
	collectedAt []time.Duration
	// pendingFB accumulates acked refs per UE connection across the acks
	// of one event drain; flushFeedback writes one Feedback frame per UE.
	// ackTouched is handleAck's per-call scratch for counting merges.
	// sendBuf/fbBuf/batchMsg/fbMsg are reusable encode state. All owned
	// by the run goroutine.
	pendingFB  map[*ueConn][]hbproto.Ref
	ackTouched map[*ueConn]bool
	sendBuf    []byte
	fbBuf      []byte
	batchMsg   hbproto.Batch
	fbMsg      hbproto.Feedback

	ins relayInstruments
}

// relayInstruments is the agent's live-telemetry handle block; every
// handle is nil (a no-op) without a configured registry.
type relayInstruments struct {
	collected      *telemetry.Counter
	feedbacks      *telemetry.Counter
	reconnectTries *telemetry.Counter
	reconnects     *telemetry.Counter
	shardDrops     *telemetry.Counter
	batchSize      *telemetry.Histogram
	collectToFlush *telemetry.Histogram
	// Wire-path coalescing: feedback frames written, per-ack feedback
	// writes saved by merging, refs per feedback frame, and bytes written
	// upstream per flush.
	fbFlushes  *telemetry.Counter
	fbSaved    *telemetry.Counter
	fbRefs     *telemetry.Histogram
	upBytesOut *telemetry.Counter
}

// NewRelayAgent returns an unstarted relay agent.
func NewRelayAgent(cfg RelayAgentConfig) (*RelayAgent, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	policy, err := sched.NewNagle(cfg.Capacity, cfg.Period)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		// FNV-1a over the relay ID: distinct relays jitter differently
		// without any wall-clock dependence.
		h := uint64(14695981039346656037)
		for i := 0; i < len(cfg.ID); i++ {
			h = (h ^ uint64(cfg.ID[i])) * 1099511628211
		}
		seed = int64(h)
	}
	r := &RelayAgent{
		cfg:        cfg,
		upConns:    make(map[net.Conn]struct{}),
		events:     make(chan relayEvent),
		done:       make(chan struct{}),
		policy:     policy,
		sources:    make(map[hbproto.Ref]*ueConn),
		ueConns:    make(map[*ueConn]struct{}),
		ups:        make(map[string]net.Conn),
		downUntil:  make(map[string]time.Duration),
		backoffCur: make(map[string]time.Duration),
		everDialed: make(map[string]bool),
		pendingFB:  make(map[*ueConn][]hbproto.Ref),
		ackTouched: make(map[*ueConn]bool),
		rng:        rand.New(rand.NewSource(seed)),
	}
	if reg := cfg.Telemetry; reg != nil {
		rl := telemetry.L("relay", cfg.ID)
		r.ins = relayInstruments{
			collected:      reg.Counter("relaynet_relay_collected_total", rl),
			feedbacks:      reg.Counter("relaynet_relay_feedbacks_total", rl),
			reconnectTries: reg.Counter("relaynet_relay_reconnect_attempts_total", rl),
			reconnects:     reg.Counter("relaynet_relay_reconnects_total", rl),
			shardDrops:     reg.Counter("relaynet_relay_shard_drops_total", rl),
			batchSize:      reg.Histogram("relaynet_relay_batch_size", "msgs", 1, rl),
			collectToFlush: reg.Histogram("relaynet_relay_collect_to_flush_us", "us", 1, rl),
			fbFlushes:      reg.Counter("relaynet_relay_feedback_flushes_total", rl),
			fbSaved:        reg.Counter("relaynet_relay_feedback_writes_saved_total", rl),
			fbRefs:         reg.Histogram("relaynet_relay_feedback_refs_per_flush", "refs", 1, rl),
			upBytesOut:     reg.Counter("relaynet_relay_upstream_bytes_total", rl),
		}
		// The Algorithm 1 scheduler records its own occupancy-vs-capacity
		// and deadline-slack figures from the instants the agent injects —
		// telemetry never hands it the wall clock.
		kl := telemetry.L("policy", policy.Kind().String())
		policy.SetInstruments(&sched.Instruments{
			Occupancy:     reg.Histogram("sched_pending_occupancy", "msgs", 1, rl, kl),
			FlushSize:     reg.Histogram("sched_flush_size", "msgs", 1, rl, kl),
			FlushSlack:    reg.Histogram("sched_flush_slack_us", "us", 1, rl, kl),
			Capacity:      reg.Gauge("sched_capacity", rl, kl),
			RejectClosed:  reg.Counter("sched_rejects_total", telemetry.L("reason", "closed"), rl, kl),
			RejectExpired: reg.Counter("sched_rejects_total", telemetry.L("reason", "expired"), rl, kl),
		})
		reg.Gauge("sched_capacity", rl, kl).Set(int64(policy.Capacity()))
	}
	return r, nil
}

// register writes the relay's Register frame on a fresh upstream conn.
func (r *RelayAgent) register(conn net.Conn) error {
	return hbproto.WriteFrame(conn, &hbproto.Register{
		ID: r.cfg.ID, Role: hbproto.RoleRelay, App: r.cfg.App,
		Period: r.cfg.Period, Expiry: r.cfg.Expiry,
	})
}

// trackUp registers a live upstream conn for Shutdown; false means the
// agent is already closing and the caller must discard the conn.
func (r *RelayAgent) trackUp(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.upConns[conn] = struct{}{}
	return true
}

// untrackUp closes and forgets a dead upstream conn.
func (r *RelayAgent) untrackUp(conn net.Conn) {
	_ = conn.Close()
	r.mu.Lock()
	delete(r.upConns, conn)
	r.mu.Unlock()
}

// Start listens for UE connections on listenAddr and, in single-server
// mode, connects upstream to the server (serverAddr, or whatever
// ResolveServer returns). In cluster mode serverAddr is ignored: per-shard
// connections are dialed lazily at the first flush toward each shard.
//
// The listen/dial/register sequence runs outside r.mu: these calls block
// on the network, and holding the agent lock across them would stall
// Addr, Stats and Shutdown for a full dial timeout when the server is
// unreachable. The started flag reserves the slot up front so a
// concurrent Start fails fast instead of racing the setup.
func (r *RelayAgent) Start(listenAddr, serverAddr string) error {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return errors.New("relaynet: relay already started")
	}
	r.started = true
	r.serverAddr = serverAddr
	r.mu.Unlock()

	fail := func(err error) error {
		r.mu.Lock()
		r.started = false
		r.mu.Unlock()
		return err
	}
	ln, err := r.cfg.listen("tcp", listenAddr)
	if err != nil {
		return fail(fmt.Errorf("relaynet: relay listen: %w", err))
	}

	var up net.Conn
	if r.cfg.Cluster == nil {
		addr := r.resolveServerAddr()
		if addr == "" {
			_ = ln.Close()
			return fail(errors.New("relaynet: no server address (set serverAddr or ResolveServer)"))
		}
		up, err = r.cfg.dial("tcp", addr)
		if err != nil {
			_ = ln.Close()
			return fail(fmt.Errorf("relaynet: relay dial server: %w", err))
		}
		if err := r.register(up); err != nil {
			_ = ln.Close()
			_ = up.Close()
			return fail(fmt.Errorf("relaynet: relay register: %w", err))
		}
	}

	r.mu.Lock()
	if r.closed {
		// Shutdown ran while we were dialing: it saw started=true but had
		// no connections to close, so close them here.
		r.mu.Unlock()
		_ = ln.Close()
		if up != nil {
			_ = up.Close()
		}
		return errors.New("relaynet: relay shut down during start")
	}
	r.ln = ln
	if up != nil {
		r.upConns[up] = struct{}{}
		r.ups[singleShard] = up
		r.everDialed[singleShard] = true
	}
	r.wg.Add(2)
	r.mu.Unlock()

	go r.acceptLoop()
	go r.run()
	if up != nil {
		r.wg.Add(1)
		go r.upstreamReader(up, singleShard)
	}
	return nil
}

// resolveServerAddr returns the current single-server target, invoking the
// ResolveServer hook when configured so every (re)connect targets whatever
// the router currently advertises, not the address the relay first saw.
func (r *RelayAgent) resolveServerAddr() string {
	if r.cfg.ResolveServer != nil {
		if a, err := r.cfg.ResolveServer(); err == nil && a != "" {
			r.mu.Lock()
			r.serverAddr = a
			r.mu.Unlock()
			return a
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.serverAddr
}

// Addr returns the UE-side listening address.
func (r *RelayAgent) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Stats returns a snapshot of the counters.
func (r *RelayAgent) Stats() RelayAgentStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Shutdown stops the agent and waits for its goroutines. Pending collected
// heartbeats are lost — exactly the failure the UE fallback covers.
func (r *RelayAgent) Shutdown() {
	r.mu.Lock()
	if r.closed || !r.started {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.done)
	// ln is nil when Start is still mid-dial; Start sees closed=true and
	// closes its own connections.
	if r.ln != nil {
		_ = r.ln.Close()
	}
	for c := range r.upConns {
		_ = c.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *RelayAgent) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *RelayAgent) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		uc := &ueConn{conn: conn}
		r.mu.Lock()
		r.stats.UEConnections++
		r.mu.Unlock()
		r.wg.Add(1)
		go r.ueReader(uc)
	}
}

// ueReader decodes frames from one UE and forwards them to the main loop.
// It decodes through a FrameReader (reused scratch, interned strings) and
// copies each message into an owned value before handing it over: the run
// loop processes the event after this goroutine has already moved on to
// the next frame, so the reader's reused values must not cross the
// channel. Interned strings are stable and copy for free.
func (r *RelayAgent) ueReader(uc *ueConn) {
	defer r.wg.Done()
	defer func() { _ = uc.conn.Close() }()
	fr := hbproto.NewFrameReader(uc.conn)
	for {
		msg, err := fr.Next()
		if err != nil {
			select {
			case r.events <- relayEvent{ueClosed: uc}:
			case <-r.done:
			}
			return
		}
		select {
		case r.events <- relayEvent{ueMsg: copyMessage(msg), ueFrom: uc}:
		case <-r.done:
			return
		}
	}
}

// copyMessage deep-copies a FrameReader-owned message so it can outlive
// the reader's next frame.
func copyMessage(msg hbproto.Message) hbproto.Message {
	switch m := msg.(type) {
	case *hbproto.Register:
		c := *m
		return &c
	case *hbproto.Heartbeat:
		c := *m
		return &c
	case *hbproto.Batch:
		c := *m
		c.HBs = append([]hbproto.Heartbeat(nil), m.HBs...)
		return &c
	case *hbproto.Ack:
		c := *m
		c.Refs = append([]hbproto.Ref(nil), m.Refs...)
		return &c
	case *hbproto.Feedback:
		c := *m
		c.Refs = append([]hbproto.Ref(nil), m.Refs...)
		return &c
	default:
		return msg
	}
}

// upstreamReader decodes server acknowledgements from one upstream
// connection, reporting any terminal error (tagged with its shard) to the
// main loop so it can reconnect or back off.
func (r *RelayAgent) upstreamReader(conn net.Conn, shard string) {
	defer r.wg.Done()
	defer r.untrackUp(conn)
	fr := hbproto.NewFrameReader(conn)
	for {
		msg, err := fr.Next()
		if err != nil {
			if !r.isClosed() {
				select {
				case r.events <- relayEvent{upErr: err, upShard: shard, upConn: conn}:
				case <-r.done:
				}
			}
			return
		}
		if ack, ok := msg.(*hbproto.Ack); ok {
			// Copy out of the reader's reused value (see ueReader).
			owned := &hbproto.Ack{Refs: append([]hbproto.Ref(nil), ack.Refs...)}
			select {
			case r.events <- relayEvent{ack: owned}:
			case <-r.done:
				return
			}
		}
	}
}

// Default upstream reconnect policy: attempts bound the dial retries after
// the server connection breaks; backoff doubles from the base per attempt.
const (
	defaultReconnectAttempts = 6
	defaultReconnectBase     = 50 * time.Millisecond
	// maxShardBackoff caps the per-shard redial backoff in cluster mode:
	// unlike the bounded single-server retry loop, shard dials are retried
	// at every flush forever, so the backoff needs a ceiling rather than
	// an attempt budget.
	maxShardBackoff = 5 * time.Second
)

// reconnectBase resolves the configured backoff base.
func (r *RelayAgent) reconnectBase() time.Duration {
	if r.cfg.ReconnectBase > 0 {
		return r.cfg.ReconnectBase
	}
	return defaultReconnectBase
}

// jittered spreads one backoff across [d/2, 3d/2) using the relay's seeded
// RNG: when a whole relay fleet loses the same server, their redial storms
// decorrelate instead of arriving in doubling lockstep.
func (r *RelayAgent) jittered(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.5 + r.rng.Float64()))
}

// reconnectUpstream re-establishes the single-server connection after a
// break, re-resolving the target through ResolveServer on every attempt.
// Batches awaiting acknowledgement are abandoned: their UEs recover through
// the feedback-timeout fallback, exactly as with a dead relay.
func (r *RelayAgent) reconnectUpstream() bool {
	if old, ok := r.ups[singleShard]; ok {
		delete(r.ups, singleShard)
		_ = old.Close()
	}
	attempts := r.cfg.ReconnectAttempts
	if attempts == 0 {
		attempts = defaultReconnectAttempts
	}
	backoff := r.reconnectBase()
	for attempt := 0; attempt < attempts; attempt++ {
		if r.isClosed() {
			return false
		}
		r.ins.reconnectTries.Inc()
		conn, err := r.cfg.dial("tcp", r.resolveServerAddr())
		if err == nil {
			err = r.register(conn)
		}
		if err == nil {
			if !r.trackUp(conn) {
				_ = conn.Close()
				return false
			}
			r.ins.reconnects.Inc()
			r.ups[singleShard] = conn
			r.mu.Lock()
			r.stats.UpstreamReconnects++
			r.mu.Unlock()
			r.wg.Add(1)
			go r.upstreamReader(conn, singleShard)
			return true
		}
		if conn != nil {
			_ = conn.Close()
		}
		// A reusable timer instead of time.After: under a long outage this
		// loop runs for many attempts, and per-iteration After timers pile
		// up uncollectable until they fire.
		t := time.NewTimer(r.jittered(backoff))
		select {
		case <-r.done:
			t.Stop()
			return false
		case <-t.C:
		}
		backoff *= 2
	}
	return false
}

// armShardBackoff schedules the next allowed dial for a shard after a
// failure, doubling up to maxShardBackoff.
func (r *RelayAgent) armShardBackoff(shard string, now time.Duration) {
	b := r.backoffCur[shard]
	if b == 0 {
		b = r.reconnectBase()
	}
	r.downUntil[shard] = now + r.jittered(b)
	if b *= 2; b > maxShardBackoff {
		b = maxShardBackoff
	}
	r.backoffCur[shard] = b
}

// shardConn returns the live connection to a shard, dialing it if absent
// and not in backoff. A failed dial arms the shard's backoff and returns
// nil — the caller drops that sub-batch and the scheduling loop moves on.
func (r *RelayAgent) shardConn(shard string, view *cluster.View) net.Conn {
	if conn, ok := r.ups[shard]; ok {
		return conn
	}
	now := r.now()
	if until, ok := r.downUntil[shard]; ok && now < until {
		return nil
	}
	node, ok := view.Config.Node(shard)
	if !ok {
		return nil
	}
	r.ins.reconnectTries.Inc()
	conn, err := r.cfg.dial("tcp", node.Addr)
	if err == nil {
		err = r.register(conn)
	}
	if err != nil {
		if conn != nil {
			_ = conn.Close()
		}
		r.armShardBackoff(shard, now)
		return nil
	}
	if !r.trackUp(conn) {
		_ = conn.Close()
		return nil
	}
	delete(r.downUntil, shard)
	delete(r.backoffCur, shard)
	r.ups[shard] = conn
	r.ins.reconnects.Inc()
	r.mu.Lock()
	r.stats.ShardDials++
	if r.everDialed[shard] {
		r.stats.UpstreamReconnects++
	}
	r.mu.Unlock()
	r.everDialed[shard] = true
	r.wg.Add(1)
	go r.upstreamReader(conn, shard)
	return conn
}

// dropShardConn retires a shard connection the reader reported broken,
// unless flush already replaced it (stale error from a conn this loop has
// moved past).
func (r *RelayAgent) dropShardConn(shard string, conn net.Conn) {
	cur, ok := r.ups[shard]
	if !ok || cur != conn {
		return
	}
	delete(r.ups, shard)
	_ = conn.Close()
	r.armShardBackoff(shard, r.now())
}

// now returns policy time: the duration since the agent started.
func (r *RelayAgent) now() time.Duration { return time.Since(r.start) }

// run is the single goroutine owning the scheduling state.
func (r *RelayAgent) run() {
	defer r.wg.Done()
	r.start = time.Now()
	r.startPeriod()

	periodTimer := time.NewTimer(r.cfg.Period)
	defer periodTimer.Stop()
	flushTimer := time.NewTimer(time.Hour)
	r.armFlushTimer(flushTimer)
	defer flushTimer.Stop()

	// maxEventDrain bounds how many queued events one loop iteration may
	// absorb before feedback is flushed and the timers get a look-in.
	const maxEventDrain = 64

	for {
		select {
		case <-r.done:
			return
		case <-periodTimer.C:
			r.flush()
			r.startPeriod()
			periodTimer.Reset(r.cfg.Period)
			r.armFlushTimer(flushTimer)
		case <-flushTimer.C:
			r.flush()
			r.armFlushTimer(flushTimer)
		case ev := <-r.events:
			// Drain whatever else is already queued (bounded) before
			// flushing feedback, so refs from several acks — one per
			// shard in cluster mode — merge into one Feedback frame per
			// UE instead of one write per ack.
			for n := 0; ; n++ {
				if !r.handleEvent(ev, flushTimer) {
					return
				}
				if n >= maxEventDrain {
					break
				}
				select {
				case ev = <-r.events:
					continue
				default:
				}
				break
			}
			r.flushFeedback()
		}
	}
}

// handleEvent dispatches one main-loop event; false means the agent must
// stop (single upstream unrecoverable).
func (r *RelayAgent) handleEvent(ev relayEvent, flushTimer *time.Timer) bool {
	switch {
	case ev.ueMsg != nil:
		r.handleUE(ev.ueFrom, ev.ueMsg)
		r.armFlushTimer(flushTimer)
	case ev.ueClosed != nil:
		delete(r.ueConns, ev.ueClosed)
		delete(r.pendingFB, ev.ueClosed)
	case ev.ack != nil:
		r.handleAck(ev.ack)
	case ev.upErr != nil:
		if r.cfg.Cluster != nil {
			// A shard broke: retire its connection and back off. The
			// next flush redials; meanwhile the other shards keep their
			// schedule — a cluster relay never blocks its run loop on
			// one dead shard.
			r.dropShardConn(ev.upShard, ev.upConn)
			return true
		}
		// Single upstream broke: try to reconnect; if the server stays
		// unreachable, stop scheduling and let UEs fall back.
		return r.reconnectUpstream()
	}
	return true
}

// armFlushTimer points the flush timer at the policy's current deadline.
func (r *RelayAgent) armFlushTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	at, ok := r.policy.Deadline()
	if !ok {
		t.Reset(time.Hour) // nothing to flush until the next period
		return
	}
	d := at - r.now()
	if d < 0 {
		d = 0
	}
	t.Reset(d)
}

func (r *RelayAgent) startPeriod() {
	r.seq++
	now := r.now()
	r.policy.StartPeriod(now)
	r.ownHB = &hbproto.Heartbeat{
		Src: r.cfg.ID, Seq: r.seq, App: r.cfg.App,
		Origin: time.Now(), Expiry: r.cfg.Expiry, Pad: r.cfg.Pad,
	}
	r.mu.Lock()
	r.stats.OwnHeartbeats++
	r.mu.Unlock()
}

func (r *RelayAgent) handleUE(uc *ueConn, msg hbproto.Message) {
	switch m := msg.(type) {
	case *hbproto.Register:
		uc.id = m.ID
		r.ueConns[uc] = struct{}{}
	case *hbproto.Heartbeat:
		r.collect(uc, m)
	default:
		// UEs only register and send heartbeats; ignore anything else.
	}
}

// collect runs Algorithm 1 on one forwarded heartbeat.
func (r *RelayAgent) collect(uc *ueConn, m *hbproto.Heartbeat) {
	now := r.now()
	hb := hbmsg.Heartbeat{
		App:    m.App,
		Src:    hbmsg.DeviceID(m.Src),
		Seq:    m.Seq,
		Origin: now - time.Since(m.Origin), // arrival-relative origin
		Expiry: m.Expiry,
		Size:   m.Pad,
	}
	flushNow, err := r.policy.Collect(hb, now)
	switch {
	case errors.Is(err, sched.ErrClosed):
		r.mu.Lock()
		r.stats.RejectedClosed++
		r.mu.Unlock()
		return
	case errors.Is(err, sched.ErrExpired):
		r.mu.Lock()
		r.stats.RejectedExpire++
		r.mu.Unlock()
		return
	case err != nil:
		return
	}
	r.sources[hbproto.Ref{Src: m.Src, Seq: m.Seq}] = uc
	r.collectedAt = append(r.collectedAt, now)
	r.ins.collected.Inc()
	r.mu.Lock()
	r.stats.Collected++
	r.mu.Unlock()
	trace.Emit(r.cfg.Tracer, trace.Event{
		AtMs: time.Now().UnixMilli(), Device: r.cfg.ID, Kind: trace.KindCollect,
		App: m.App, Seq: m.Seq, Peer: m.Src,
	})
	if flushNow {
		r.flush()
	}
}

// flush transmits the batch plus the relay's own heartbeat upstream. In
// cluster mode the batch is partitioned by the current ring epoch and each
// sub-batch goes to its owning shard; exactly one View is captured per
// flush, so a batch never mixes two epochs.
func (r *RelayAgent) flush() {
	now := r.now()
	batch := r.policy.Flush(now)
	// The batch preserves collect order, so collectedAt lines up index by
	// index; the histogram gets each message's collect-to-flush wait.
	for i := range batch {
		if i < len(r.collectedAt) {
			r.ins.collectToFlush.Record(uint64((now - r.collectedAt[i]) / time.Microsecond))
		}
	}
	r.collectedAt = r.collectedAt[:0]
	hbs := make([]hbproto.Heartbeat, 0, len(batch)+1)
	for _, hb := range batch {
		hbs = append(hbs, hbproto.Heartbeat{
			Src: string(hb.Src), Seq: hb.Seq, App: hb.App,
			Origin: r.start.Add(hb.Origin), Expiry: hb.Expiry, Pad: hb.Size,
		})
	}
	if r.ownHB != nil {
		hbs = append(hbs, *r.ownHB)
		r.ownHB = nil
	}
	if len(hbs) == 0 {
		return
	}

	flushed := false
	if r.cfg.Cluster == nil {
		conn, ok := r.ups[singleShard]
		if ok && r.sendBatch(conn, singleShard, hbs) {
			flushed = true
		}
	} else {
		view := r.cfg.Cluster.View()
		keys := make([]string, len(hbs))
		for i := range hbs {
			keys[i] = hbs[i].Src
		}
		for _, g := range view.Ring().GroupSorted(keys) {
			shard := g.Shard
			sub := make([]hbproto.Heartbeat, 0, len(g.Idxs))
			for _, i := range g.Idxs {
				sub = append(sub, hbs[i])
			}
			conn := r.shardConn(shard, view)
			if conn == nil || !r.sendBatch(conn, shard, sub) {
				if conn != nil {
					r.dropShardConn(shard, conn)
				}
				r.ins.shardDrops.Add(uint64(len(sub)))
				r.mu.Lock()
				r.stats.DroppedNoShard += len(sub)
				r.mu.Unlock()
				continue
			}
			flushed = true
		}
	}
	if flushed {
		r.mu.Lock()
		r.stats.Flushes++
		r.mu.Unlock()
	}
}

// sendBatch writes one wire batch to an upstream connection as a single
// Write from the run loop's reusable encode buffer, updating the
// forwarding counters on success.
func (r *RelayAgent) sendBatch(conn net.Conn, shard string, hbs []hbproto.Heartbeat) bool {
	r.batchMsg.Relay, r.batchMsg.HBs = r.cfg.ID, hbs
	out, err := hbproto.AppendFrame(r.sendBuf[:0], &r.batchMsg)
	r.sendBuf, r.batchMsg.HBs = out[:0], nil
	if err != nil {
		return false
	}
	if _, err := conn.Write(out); err != nil {
		return false
	}
	r.ins.upBytesOut.Add(uint64(len(out)))
	r.ins.batchSize.Record(uint64(len(hbs)))
	// The relay's own heartbeat is not a forwarded UE message.
	ueCount := 0
	for i := range hbs {
		if hbs[i].Src != r.cfg.ID {
			ueCount++
		}
	}
	trace.Emit(r.cfg.Tracer, trace.Event{
		AtMs: time.Now().UnixMilli(), Device: r.cfg.ID, Kind: trace.KindFlush,
		N: len(hbs), Reason: r.policy.LastFlushReason().String(), Peer: shard,
	})
	r.mu.Lock()
	r.stats.Forwarded += ueCount
	r.stats.Credits += ueCount
	r.mu.Unlock()
	return true
}

// handleAck resolves the server's acknowledgement into per-UE feedback
// refs, accumulated in pendingFB until the run loop's event drain ends.
// Acks from every shard funnel through the same path: the refs identify
// their UEs regardless of which upstream carried the batch, and refs from
// several acks merge into one Feedback frame per UE (the saved writes are
// counted).
func (r *RelayAgent) handleAck(ack *hbproto.Ack) {
	saved := 0
	for _, ref := range ack.Refs {
		uc, ok := r.sources[ref]
		if !ok {
			continue // the relay's own heartbeat, or a vanished UE
		}
		delete(r.sources, ref)
		if _, alive := r.ueConns[uc]; !alive {
			continue
		}
		if !r.ackTouched[uc] {
			r.ackTouched[uc] = true
			if len(r.pendingFB[uc]) > 0 {
				// Refs from an earlier ack in this drain are still
				// pending for the UE: the per-ack path would have
				// written them as a separate Feedback frame.
				saved++
			}
		}
		r.pendingFB[uc] = append(r.pendingFB[uc], ref)
	}
	for uc := range r.ackTouched {
		delete(r.ackTouched, uc)
	}
	if saved > 0 {
		r.ins.fbSaved.Add(uint64(saved))
		r.mu.Lock()
		r.stats.FeedbackWritesSaved += saved
		r.mu.Unlock()
	}
}

// flushFeedback writes the accumulated feedback: one frame — one Write —
// per UE connection, composed in the run loop's reusable buffer. Write
// order across UEs is not observable (each write targets a different
// connection), so plain map iteration is fine here, as it was on the old
// per-ack path.
func (r *RelayAgent) flushFeedback() {
	if len(r.pendingFB) == 0 {
		return
	}
	sent := 0
	for uc, refs := range r.pendingFB {
		delete(r.pendingFB, uc)
		if len(refs) == 0 {
			continue
		}
		r.fbMsg.Refs = refs
		out, err := hbproto.AppendFrame(r.fbBuf[:0], &r.fbMsg)
		r.fbBuf, r.fbMsg.Refs = out[:0], nil
		if err != nil {
			continue
		}
		if _, err := uc.conn.Write(out); err != nil {
			continue
		}
		r.ins.feedbacks.Add(uint64(len(refs)))
		r.ins.fbFlushes.Inc()
		r.ins.fbRefs.Record(uint64(len(refs)))
		sent += len(refs)
	}
	if sent > 0 {
		r.mu.Lock()
		r.stats.FeedbacksSent += sent
		r.mu.Unlock()
	}
}
