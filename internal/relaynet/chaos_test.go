package relaynet

// Chaos suite: drives the real server + relay agents + UE clients through
// scripted failure scenarios (relay crash mid-batch, server partition
// during flush, slow-loris links, corrupted frames, seeded random churn)
// and asserts the paper's Section IV-C invariants:
//
//   - zero lost heartbeats: every heartbeat generated while the system was
//     under fault is eventually delivered to the server, via the relay path
//     or the feedback-timeout cellular fallback;
//   - no duplicate feedback acks: each (device, seq) is confirmed to the UE
//     at most once;
//   - presence converges after the fault heals: every UE is online again;
//   - hbproto decode never panics on corrupted input (the server survives
//     and counts protocol errors instead of crashing).
//
// Fault timelines come from internal/faultnet and are seeded, so a failing
// run reproduces with its seed.

import (
	"net"
	"testing"
	"time"

	"d2dhb/internal/faultnet"
	"d2dhb/internal/hbproto"
	"d2dhb/internal/trace"
)

// hbKey identifies one generated heartbeat across trace events.
type hbKey struct {
	dev string
	seq uint64
}

// generatedSet returns every UE-generated heartbeat recorded so far.
func generatedSet(rec *trace.Recorder) map[hbKey]bool {
	out := make(map[hbKey]bool)
	for _, ev := range rec.ByKind(trace.KindGenerated) {
		out[hbKey{ev.Device, ev.Seq}] = true
	}
	return out
}

// deliveredSet returns every heartbeat the server observed.
func deliveredSet(rec *trace.Recorder) map[hbKey]bool {
	out := make(map[hbKey]bool)
	for _, ev := range rec.ByKind(trace.KindDelivery) {
		out[hbKey{ev.Device, ev.Seq}] = true
	}
	return out
}

// assertEventuallyAllDelivered snapshots the generated set and polls until
// the server has seen every one of them: the zero-lost-heartbeats
// invariant. Heartbeats generated after the snapshot are not required.
func assertEventuallyAllDelivered(t *testing.T, rec *trace.Recorder, within time.Duration) {
	t.Helper()
	snapshot := generatedSet(rec)
	if len(snapshot) == 0 {
		t.Fatal("no heartbeats generated; scenario never ran")
	}
	var missing []hbKey
	eventually(t, within, func() bool {
		delivered := deliveredSet(rec)
		missing = missing[:0]
		for k := range snapshot {
			if !delivered[k] {
				missing = append(missing, k)
			}
		}
		return len(missing) == 0
	}, "zero lost heartbeats (fallback fired for every unacked send)")
	if len(missing) > 0 {
		t.Fatalf("lost heartbeats: %v", missing)
	}
}

// assertNoDuplicateAcks checks each (device, seq) was feedback-confirmed at
// most once: ack refs stay consistent even when faults force resends.
func assertNoDuplicateAcks(t *testing.T, rec *trace.Recorder) {
	t.Helper()
	seen := make(map[hbKey]int)
	for _, ev := range rec.ByKind(trace.KindAck) {
		seen[hbKey{ev.Device, ev.Seq}]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("heartbeat %v feedback-acked %d times", k, n)
		}
	}
}

// assertMonotonicAcks checks that per-device feedback acks arrive in
// increasing sequence order: the relay forwards and confirms refs without
// reordering a device's heartbeat stream.
func assertMonotonicAcks(t *testing.T, rec *trace.Recorder) {
	t.Helper()
	last := make(map[string]uint64)
	for _, ev := range rec.ByKind(trace.KindAck) {
		if prev, ok := last[ev.Device]; ok && ev.Seq <= prev {
			t.Errorf("device %s ack seq %d after %d (non-monotonic)", ev.Device, ev.Seq, prev)
		}
		last[ev.Device] = ev.Seq
	}
}

// startChaosUE builds and starts one traced UE client.
func startChaosUE(t *testing.T, rec *trace.Recorder, id, relayAddr, serverAddr string,
	period, expiry, feedback time.Duration, dial func(string, string) (net.Conn, error)) *UEClient {
	t.Helper()
	cfg := ueConfig(id, relayAddr, serverAddr, period, expiry)
	cfg.FeedbackTimeout = feedback
	cfg.Tracer = rec
	cfg.Dial = dial
	u, err := NewUEClient(cfg)
	if err != nil {
		t.Fatalf("NewUEClient(%s): %v", id, err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("ue %s Start: %v", id, err)
	}
	t.Cleanup(u.Shutdown)
	return u
}

// TestChaosRelayCrashMidBatch kills the relay while UE heartbeats sit
// collected in its batch buffer: the feedback timers must recover every one
// of them over the direct path.
func TestChaosRelayCrashMidBatch(t *testing.T) {
	var rec trace.Recorder
	s := NewServer()
	s.SetTracer(&rec)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	t.Cleanup(s.Shutdown)

	const (
		period   = 120 * time.Millisecond
		expiry   = 300 * time.Millisecond
		feedback = 150 * time.Millisecond
	)
	// Long relay period + large capacity: heartbeats sit collected until
	// the period flush, so a mid-period crash strands a partial batch.
	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "chaos-relay", App: "std", Period: 400 * time.Millisecond,
		Expiry: expiry, Pad: 54, Capacity: 64, Tracer: &rec,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := r.Start("127.0.0.1:0", s.Addr()); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	t.Cleanup(r.Shutdown)

	ids := []string{"chaos-ue-1", "chaos-ue-2", "chaos-ue-3"}
	for _, id := range ids {
		startChaosUE(t, &rec, id, r.Addr(), s.Addr(), period, expiry, feedback, nil)
	}

	// Let the pipeline turn over, then crash the relay mid-period with
	// fresh heartbeats collected but unflushed.
	eventually(t, 3*time.Second, func() bool { return r.Stats().Collected >= 3 }, "relay collecting")
	time.Sleep(period / 2)
	r.Shutdown()

	assertEventuallyAllDelivered(t, &rec, 5*time.Second)
	assertNoDuplicateAcks(t, &rec)
	assertMonotonicAcks(t, &rec)
	for _, id := range ids {
		if !s.Online(id, time.Now()) {
			t.Errorf("%s offline after relay crash recovery", id)
		}
	}
	if len(rec.ByKind(trace.KindFallback)) == 0 {
		t.Error("relay crash stranded no heartbeats — scenario never exercised the fallback")
	}
}

// TestChaosServerPartitionDuringFlush partitions the relay→server link so
// flushed batches vanish in flight; after the window heals, presence must
// converge with zero lost heartbeats.
func TestChaosServerPartitionDuringFlush(t *testing.T) {
	var rec trace.Recorder
	s := NewServer()
	s.SetTracer(&rec)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	t.Cleanup(s.Shutdown)

	// Partition the relay upstream between 300 ms and 900 ms.
	faults := faultnet.NewSchedule(42, []faultnet.Window{
		{From: 300 * time.Millisecond, To: 900 * time.Millisecond,
			Fault: faultnet.Fault{Kind: faultnet.KindPartition}},
	})
	faults.SetTracer(&rec)

	const (
		period   = 120 * time.Millisecond
		expiry   = 300 * time.Millisecond
		feedback = 150 * time.Millisecond
	)
	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "part-relay", App: "std", Period: 150 * time.Millisecond,
		Expiry: expiry, Pad: 54, Capacity: 64, Tracer: &rec,
		Dial: faults.Dial,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	faults.Start()
	if err := r.Start("127.0.0.1:0", s.Addr()); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	t.Cleanup(r.Shutdown)

	ids := []string{"part-ue-1", "part-ue-2"}
	for _, id := range ids {
		startChaosUE(t, &rec, id, r.Addr(), s.Addr(), period, expiry, feedback, nil)
	}

	// Run through the partition window and past its heal.
	time.Sleep(1200 * time.Millisecond)
	if st := faults.Stats(); st.DroppedSends == 0 {
		t.Fatalf("partition swallowed nothing (stats %+v); window never hit a flush", st)
	}

	assertEventuallyAllDelivered(t, &rec, 5*time.Second)
	assertNoDuplicateAcks(t, &rec)
	for _, id := range ids {
		eventually(t, 3*time.Second, func() bool { return s.Online(id, time.Now()) },
			id+" back online after partition heal")
	}
	if len(rec.ByKind(trace.KindFallback)) == 0 {
		t.Error("partition dropped batches but no fallback fired")
	}
}

// TestChaosSlowLorisRelay throttles one UE's link to the relay down to a
// trickle: that UE must recover over the fallback path while a healthy UE
// on the same relay keeps relaying unaffected.
func TestChaosSlowLorisRelay(t *testing.T) {
	var rec trace.Recorder
	s := NewServer()
	s.SetTracer(&rec)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	t.Cleanup(s.Shutdown)

	const (
		period   = 150 * time.Millisecond
		expiry   = 300 * time.Millisecond
		feedback = 200 * time.Millisecond
	)
	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "loris-relay", App: "std", Period: period,
		Expiry: expiry, Pad: 54, Capacity: 64, Tracer: &rec,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := r.Start("127.0.0.1:0", s.Addr()); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	t.Cleanup(r.Shutdown)

	// ~60-byte frames at 40 B/s trickle out over ~1.5 s, far past the
	// feedback timeout. Only the D2D link to the relay is throttled — the
	// cellular direct path stays healthy, matching the paper's model of a
	// degraded short-range link with an always-available fallback.
	faults := faultnet.NewSchedule(7, []faultnet.Window{
		{Fault: faultnet.Fault{Kind: faultnet.KindThrottle, Rate: 40}},
	})
	faults.SetTracer(&rec)
	relayAddr := r.Addr()
	d2dOnly := func(network, addr string) (net.Conn, error) {
		if addr == relayAddr {
			return faults.Dial(network, addr)
		}
		return net.Dial(network, addr)
	}

	slow := startChaosUE(t, &rec, "loris-slow", r.Addr(), s.Addr(), period, expiry, feedback, d2dOnly)
	fast := startChaosUE(t, &rec, "loris-fast", r.Addr(), s.Addr(), period, expiry, feedback, nil)

	eventually(t, 4*time.Second, func() bool { return fast.Stats().FeedbackAcks >= 2 },
		"healthy UE keeps relaying beside the slow-loris")
	eventually(t, 4*time.Second, func() bool {
		st := slow.Stats()
		return st.FallbackResends >= 1 || st.Direct >= 1
	}, "slow-loris UE recovered via direct path")

	assertEventuallyAllDelivered(t, &rec, 6*time.Second)
	assertNoDuplicateAcks(t, &rec)
	eventually(t, 3*time.Second, func() bool {
		return s.Online("loris-slow", time.Now()) && s.Online("loris-fast", time.Now())
	}, "both UEs online despite the throttled link")
}

// TestChaosCorruptedFrames corrupts the relay's upstream frames: the server
// must reject them as protocol errors without panicking, the relay must
// reconnect, and every heartbeat must still land via relay retry or
// fallback.
func TestChaosCorruptedFrames(t *testing.T) {
	var rec trace.Recorder
	s := NewServer()
	s.SetTracer(&rec)
	// Corrupted length fields can stall a read mid-frame; the idle reaper
	// turns that into a bounded drop instead of a wedged handler.
	s.SetIdleTimeout(400 * time.Millisecond)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	t.Cleanup(s.Shutdown)

	faults := faultnet.NewSchedule(11, []faultnet.Window{
		{Fault: faultnet.Fault{Kind: faultnet.KindCorrupt, Prob: 0.4}},
	})
	faults.SetTracer(&rec)

	const (
		period   = 120 * time.Millisecond
		expiry   = 300 * time.Millisecond
		feedback = 150 * time.Millisecond
	)
	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "corrupt-relay", App: "std", Period: 150 * time.Millisecond,
		Expiry: expiry, Pad: 54, Capacity: 64, Tracer: &rec,
		Dial:          faults.Dial,
		ReconnectBase: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := r.Start("127.0.0.1:0", s.Addr()); err != nil {
		t.Fatalf("relay Start (register may be corrupted, retry): %v", err)
	}
	t.Cleanup(r.Shutdown)

	ids := []string{"corrupt-ue-1", "corrupt-ue-2"}
	for _, id := range ids {
		startChaosUE(t, &rec, id, r.Addr(), s.Addr(), period, expiry, feedback, nil)
	}

	// Let corrupted batches hit the server for a while.
	time.Sleep(1500 * time.Millisecond)
	if st := faults.Stats(); st.Corrupted == 0 {
		t.Fatalf("no frames corrupted (stats %+v)", st)
	}

	assertEventuallyAllDelivered(t, &rec, 6*time.Second)
	assertNoDuplicateAcks(t, &rec)

	// The server survived: it still answers a clean direct heartbeat.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial after corruption storm: %v", err)
	}
	defer conn.Close()
	if err := hbproto.WriteFrame(conn, &hbproto.Heartbeat{
		Src: "prober", Seq: 1, App: "std", Origin: time.Now(), Expiry: time.Minute, Pad: 54,
	}); err != nil {
		t.Fatalf("probe write: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := hbproto.ReadFrame(conn); err != nil {
		t.Fatalf("server unresponsive after corrupted frames: %v", err)
	}
}

// TestChaosSeededRandomChurn runs the stack under a Generate'd random fault
// timeline (latency, corruption, resets, partitions) and checks the
// zero-lost invariant still holds — the standing harness future robustness
// PRs extend. The timeline is seeded: a failure reproduces byte-for-byte.
func TestChaosSeededRandomChurn(t *testing.T) {
	var rec trace.Recorder
	s := NewServer()
	s.SetTracer(&rec)
	s.SetIdleTimeout(500 * time.Millisecond)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	t.Cleanup(s.Shutdown)

	windows := faultnet.Generate(1234, faultnet.GenConfig{
		Horizon: 1500 * time.Millisecond,
		Count:   5,
		Kinds: []faultnet.Kind{
			faultnet.KindLatency, faultnet.KindCorrupt, faultnet.KindReset,
		},
		MinDur: 100 * time.Millisecond,
		MaxDur: 400 * time.Millisecond,
	})
	faults := faultnet.NewSchedule(1234, windows)
	faults.SetTracer(&rec)

	const (
		period   = 120 * time.Millisecond
		expiry   = 300 * time.Millisecond
		feedback = 150 * time.Millisecond
	)
	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "churn-relay", App: "std", Period: 150 * time.Millisecond,
		Expiry: expiry, Pad: 54, Capacity: 64, Tracer: &rec,
		Dial:          faults.Dial,
		ReconnectBase: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	faults.Start()
	if err := r.Start("127.0.0.1:0", s.Addr()); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	t.Cleanup(r.Shutdown)

	ids := []string{"churn-ue-1", "churn-ue-2", "churn-ue-3"}
	for _, id := range ids {
		startChaosUE(t, &rec, id, r.Addr(), s.Addr(), period, expiry, feedback, nil)
	}

	// Ride out the whole fault timeline, then let the system settle.
	time.Sleep(1800 * time.Millisecond)

	assertEventuallyAllDelivered(t, &rec, 6*time.Second)
	assertNoDuplicateAcks(t, &rec)
	for _, id := range ids {
		eventually(t, 3*time.Second, func() bool { return s.Online(id, time.Now()) },
			id+" online after churn")
	}
}

// TestUEFallbackRelayDiesBetweenSendAndAck pins the exact Section IV-C gap:
// the relay receives the D2D heartbeat and dies before any feedback. The
// feedback timer must fire, FallbackResends must increment, and the server
// must see exactly one copy of the heartbeat.
func TestUEFallbackRelayDiesBetweenSendAndAck(t *testing.T) {
	s := startServer(t)

	// A fake relay: accept one UE, swallow its register + first heartbeat,
	// then die without ever sending feedback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	received := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = hbproto.ReadFrame(conn) // register
		_, _ = hbproto.ReadFrame(conn) // heartbeat — accepted, never acked
		close(received)
		_ = conn.Close()
	}()

	// Period of an hour: exactly one heartbeat is ever generated, so the
	// accounting below is exact.
	cfg := ueConfig("ue-gap", ln.Addr().String(), s.Addr(), time.Hour, 300*time.Millisecond)
	cfg.FeedbackTimeout = 120 * time.Millisecond
	u, err := NewUEClient(cfg)
	if err != nil {
		t.Fatalf("NewUEClient: %v", err)
	}
	if err := u.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(u.Shutdown)

	select {
	case <-received:
	case <-time.After(2 * time.Second):
		t.Fatal("fake relay never received the heartbeat")
	}

	eventually(t, 2*time.Second, func() bool { return u.Stats().FallbackResends == 1 },
		"feedback timer fired exactly one fallback resend")
	eventually(t, 2*time.Second, func() bool { return s.Online("ue-gap", time.Now()) },
		"UE online via the fallback copy")

	us := u.Stats()
	if us.ViaRelay != 1 || us.Generated != 1 || us.FeedbackAcks != 0 {
		t.Fatalf("ue stats = %+v, want exactly one relayed send, no feedback", us)
	}
	st := s.Stats()
	if st.HeartbeatsDirect != 1 || st.HeartbeatsRelayed != 0 {
		t.Fatalf("server stats = %+v, want exactly one (direct fallback) heartbeat", st)
	}
}

// TestRelayReconnectBackoffConfigurable covers the thundering-herd fix:
// attempts and base are taken from the config, and the seeded jitter
// spreads backoffs across [base/2, 3·base/2).
func TestRelayReconnectBackoffConfigurable(t *testing.T) {
	// A relay pointed at a server that immediately dies: with 2 attempts
	// at a 30 ms base, reconnection gives up well under a second.
	s := NewServer()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("server Start: %v", err)
	}
	addr := s.Addr()

	r, err := NewRelayAgent(RelayAgentConfig{
		ID: "backoff-relay", App: "std", Period: 100 * time.Millisecond,
		Expiry: 200 * time.Millisecond, Pad: 54, Capacity: 8,
		ReconnectAttempts: 2, ReconnectBase: 30 * time.Millisecond, Seed: 99,
	})
	if err != nil {
		t.Fatalf("NewRelayAgent: %v", err)
	}
	if err := r.Start("127.0.0.1:0", addr); err != nil {
		t.Fatalf("relay Start: %v", err)
	}
	t.Cleanup(r.Shutdown)

	s.Shutdown() // the server vanishes for good

	// The relay exhausts its 2 attempts and stops its run loop; Shutdown
	// must return promptly rather than hanging on a 6×50ms-doubling wait.
	done := make(chan struct{})
	go func() {
		r.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("relay shutdown hung during bounded reconnect")
	}

	// Seeded jitter is deterministic and stays inside ±50%.
	a, errA := NewRelayAgent(RelayAgentConfig{
		ID: "j", App: "a", Period: time.Second, Expiry: time.Second, Pad: 1,
		Capacity: 1, Seed: 7,
	})
	b, errB := NewRelayAgent(RelayAgentConfig{
		ID: "j", App: "a", Period: time.Second, Expiry: time.Second, Pad: 1,
		Capacity: 1, Seed: 7,
	})
	if errA != nil || errB != nil {
		t.Fatalf("NewRelayAgent: %v / %v", errA, errB)
	}
	base := 100 * time.Millisecond
	for i := 0; i < 32; i++ {
		da, db := a.jittered(base), b.jittered(base)
		if da != db {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, da, db)
		}
		if da < base/2 || da >= base+base/2 {
			t.Fatalf("jittered(%v) = %v outside [50%%, 150%%)", base, da)
		}
	}

	// Validation rejects negative knobs.
	if _, err := NewRelayAgent(RelayAgentConfig{
		ID: "x", App: "a", Period: time.Second, Expiry: time.Second, Pad: 1,
		Capacity: 1, ReconnectAttempts: -1,
	}); err == nil {
		t.Fatal("negative reconnect attempts accepted")
	}
}
