package relaynet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"d2dhb/internal/hbproto"
)

// statsServer builds an unstarted server whose internals can be driven
// directly: touch and the stats stripes need no listener.
func statsServer() *Server {
	s := NewServer()
	s.start = time.Now()
	return s
}

// TestServerCountersConcurrent hammers touch from goroutines bound to
// different stats stripes — with client IDs spanning every presence shard —
// while Stats, OnlineCount and Availability poll concurrently. Run under
// -race this pins the lock-free counter design: no lost increments, and
// totals that only grow.
func TestServerCountersConcurrent(t *testing.T) {
	s := statsServer()
	const (
		workers   = 16
		perWorker = 2000
	)
	now := time.Now()

	stop := make(chan struct{})
	var pollWg sync.WaitGroup
	// Pollers: Stats totals must be monotonic while writers run.
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		var prev ServerStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			if st.HeartbeatsDirect < prev.HeartbeatsDirect ||
				st.HeartbeatsRelayed < prev.HeartbeatsRelayed ||
				st.Batches < prev.Batches || st.Late < prev.Late {
				t.Errorf("Stats went backwards: %+v then %+v", prev, st)
				return
			}
			prev = st
		}
	}()
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.OnlineCount(time.Now())
			_, _ = s.Availability("worker-0-client-0")
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker gets its own stripe, like connections do; IDs mix
			// worker and sequence so they scatter across presence shards.
			cc := &s.stripes[w%statsStripeCount]
			relayed := w%2 == 1
			for i := 0; i < perWorker; i++ {
				hb := &hbproto.Heartbeat{
					Src: fmt.Sprintf("worker-%d-client-%d", w, i%97),
					Seq: uint64(i + 1), App: "test",
					Origin: now, Expiry: time.Hour,
				}
				s.touch(cc, hb, now, relayed)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pollWg.Wait()

	st := s.Stats()
	wantEach := workers / 2 * perWorker
	if st.HeartbeatsDirect != wantEach {
		t.Errorf("direct = %d, want %d (lost increments)", st.HeartbeatsDirect, wantEach)
	}
	if st.HeartbeatsRelayed != wantEach {
		t.Errorf("relayed = %d, want %d (lost increments)", st.HeartbeatsRelayed, wantEach)
	}
	if st.Late != 0 {
		t.Errorf("late = %d, want 0 (hour-long expiries)", st.Late)
	}
	// 16 workers × 97 distinct IDs, all with hour-long deadlines.
	if got, want := s.OnlineCount(time.Now()), workers*97; got != want {
		t.Errorf("OnlineCount = %d, want %d", got, want)
	}
}

// TestServerLateCounting pins the late path: a heartbeat past its own
// deadline still resets presence but counts late.
func TestServerLateCounting(t *testing.T) {
	s := statsServer()
	now := time.Now()
	hb := &hbproto.Heartbeat{
		Src: "late-ue", Seq: 1, App: "test",
		Origin: now.Add(-2 * time.Second), Expiry: time.Second,
	}
	s.touch(&s.stripes[0], hb, now, false)
	st := s.Stats()
	if st.Late != 1 || st.HeartbeatsDirect != 1 {
		t.Fatalf("late=%d direct=%d, want 1,1", st.Late, st.HeartbeatsDirect)
	}
	if !s.Online("late-ue", now) {
		t.Fatal("late heartbeat must still reset the presence timer")
	}
}

// populateServer fills every stats stripe and presence shard so the
// benchmarks measure realistic sweep costs, not empty-map walks.
func populateServer(b *testing.B, clients int) *Server {
	b.Helper()
	s := statsServer()
	now := time.Now()
	for i := 0; i < clients; i++ {
		hb := &hbproto.Heartbeat{
			Src: fmt.Sprintf("bench-client-%05d", i), Seq: 1, App: "bench",
			Origin: now, Expiry: time.Hour,
		}
		s.touch(&s.stripes[i%statsStripeCount], hb, now, i%2 == 0)
	}
	return s
}

// BenchmarkServerStats guards the satellite fix of this PR: Stats must stay
// a fixed-size stripe sum (no lock, no per-connection sweep) so telemetry
// can poll it. Before the stripe refactor this held the server mutex and
// walked every live connection.
func BenchmarkServerStats(b *testing.B) {
	s := populateServer(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := s.Stats()
		if st.HeartbeatsDirect+st.HeartbeatsRelayed == 0 {
			b.Fatal("empty stats")
		}
	}
}

func BenchmarkServerOnlineCount(b *testing.B) {
	s := populateServer(b, 10000)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := s.OnlineCount(now); n == 0 {
			b.Fatal("no clients online")
		}
	}
}

func BenchmarkServerTouch(b *testing.B) {
	s := statsServer()
	now := time.Now()
	hb := &hbproto.Heartbeat{
		Src: "bench-ue", Seq: 1, App: "bench", Origin: now, Expiry: time.Hour,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.touch(&s.stripes[i%statsStripeCount], hb, now, false)
	}
}
