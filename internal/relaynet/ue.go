package relaynet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"d2dhb/internal/hbproto"
	"d2dhb/internal/telemetry"
	"d2dhb/internal/trace"
)

// UEApp is one registered heartbeat-producing app — the real-stack analog
// of the paper's Message Monitor, through which "app developers integrate
// the proposed D2D based framework into their existing apps" (Section
// IV-B) by declaring each app's heartbeat parameters.
type UEApp struct {
	// Name identifies the app.
	Name string
	// Period is the heartbeat interval.
	Period time.Duration
	// Expiry is the per-heartbeat expiration time (T_k).
	Expiry time.Duration
	// Pad is the nominal heartbeat size in bytes.
	Pad int
}

func (a UEApp) validate() error {
	if a.Period <= 0 || a.Expiry <= 0 {
		return fmt.Errorf("relaynet: app %q period/expiry must be positive (%v/%v)",
			a.Name, a.Period, a.Expiry)
	}
	return nil
}

// UEClientConfig parameterizes a UE client.
type UEClientConfig struct {
	// ID is the device id.
	ID string
	// App names the primary heartbeat-producing app.
	App string
	// Period is the primary app's heartbeat interval.
	Period time.Duration
	// Expiry is the primary app's per-heartbeat expiration time (T_k).
	Expiry time.Duration
	// Pad is the primary app's nominal heartbeat size in bytes.
	Pad int
	// ExtraApps registers additional apps on the same device, each with
	// its own heartbeat loop sharing the relay link and fallback path.
	ExtraApps []UEApp
	// RelayAddr is the relay's UE-side address. Empty means direct mode.
	RelayAddr string
	// FallbackRelayAddrs are additional relays tried in order when
	// RelayAddr is unreachable — the real-stack analog of the simulator's
	// nearest-relay matching with failover.
	FallbackRelayAddrs []string
	// ServerAddr is the presence server, used directly when no relay is
	// configured or as the fallback path.
	ServerAddr string
	// ResolveServer, when non-nil, re-resolves the direct-path server
	// address on every dial (e.g. by asking the cluster router for the
	// shard owning this UE's ID). With a resolver ServerAddr may be empty;
	// when both are set the resolver wins and ServerAddr is the fallback
	// for resolver failures.
	ResolveServer func() (string, error)
	// FeedbackTimeout is how long to wait for relay feedback before
	// resending directly. Zero selects Expiry plus a small grace.
	FeedbackTimeout time.Duration
	// Tracer receives structured events when non-nil (AtMs is Unix ms).
	Tracer trace.Tracer
	// Telemetry registers fleet-wide UE counters when non-nil. Metrics are
	// unlabeled by device: every client sharing a registry shares one set,
	// keeping cardinality flat for fleets of thousands.
	Telemetry *telemetry.Registry
	// Dial overrides every outbound dial (relay and direct paths); nil
	// selects net.Dial. Fault-injection hook (see internal/faultnet).
	Dial func(network, addr string) (net.Conn, error)
}

// dial resolves the dial hook.
func (c UEClientConfig) dial(network, addr string) (net.Conn, error) {
	if c.Dial != nil {
		return c.Dial(network, addr)
	}
	return net.Dial(network, addr)
}

func (c UEClientConfig) validate() error {
	if c.ID == "" {
		return errors.New("relaynet: empty ue id")
	}
	if c.Period <= 0 || c.Expiry <= 0 {
		return fmt.Errorf("relaynet: period/expiry must be positive (%v/%v)", c.Period, c.Expiry)
	}
	for _, a := range c.ExtraApps {
		if err := a.validate(); err != nil {
			return err
		}
	}
	if c.ServerAddr == "" && c.ResolveServer == nil {
		return errors.New("relaynet: empty server address")
	}
	return nil
}

// serverAddr resolves the direct-path target for one dial.
func (c UEClientConfig) serverAddr() string {
	if c.ResolveServer != nil {
		if a, err := c.ResolveServer(); err == nil && a != "" {
			return a
		}
	}
	return c.ServerAddr
}

// apps returns every registered app, primary first.
func (c UEClientConfig) apps() []UEApp {
	apps := make([]UEApp, 0, 1+len(c.ExtraApps))
	apps = append(apps, UEApp{Name: c.App, Period: c.Period, Expiry: c.Expiry, Pad: c.Pad})
	apps = append(apps, c.ExtraApps...)
	return apps
}

// UEClientStats aggregates a UE client's behaviour.
type UEClientStats struct {
	Generated       int
	ViaRelay        int
	Direct          int
	FallbackResends int
	FeedbackAcks    int
	// RelayReconnects counts successful relay (re)connections, including
	// the initial one.
	RelayReconnects int
}

// ueInstruments holds the fleet-wide UE telemetry handles. The zero value
// is a valid no-op (nil handles).
type ueInstruments struct {
	generated *telemetry.Counter
	viaRelay  *telemetry.Counter
	direct    *telemetry.Counter
	fallbacks *telemetry.Counter
	acks      *telemetry.Counter
	dials     *telemetry.Counter
}

// UEClient periodically emits heartbeats, forwarding them through a relay
// when one is reachable and falling back to the server on feedback
// timeout.
type UEClient struct {
	cfg UEClientConfig
	ins ueInstruments

	mu      sync.Mutex
	relay   net.Conn
	direct  net.Conn
	stats   UEClientStats
	pending map[uint64]*time.Timer
	seq     uint64
	started bool
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewUEClient returns an unstarted client.
func NewUEClient(cfg UEClientConfig) (*UEClient, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	u := &UEClient{
		cfg:     cfg,
		pending: make(map[uint64]*time.Timer),
		done:    make(chan struct{}),
	}
	if reg := cfg.Telemetry; reg != nil {
		u.ins = ueInstruments{
			generated: reg.Counter("relaynet_ue_generated_total"),
			viaRelay:  reg.Counter("relaynet_ue_sends_total", telemetry.L("path", "relay")),
			direct:    reg.Counter("relaynet_ue_sends_total", telemetry.L("path", "direct")),
			fallbacks: reg.Counter("relaynet_ue_sends_total", telemetry.L("path", "fallback")),
			acks:      reg.Counter("relaynet_ue_feedback_acks_total"),
			dials:     reg.Counter("relaynet_ue_relay_connects_total"),
		}
	}
	return u, nil
}

// Start begins the heartbeat loop. The first heartbeat goes out
// immediately.
func (u *UEClient) Start() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.started {
		return errors.New("relaynet: ue already started")
	}
	u.started = true
	u.mu.Unlock()
	u.dialRelay()
	u.mu.Lock()
	for _, app := range u.cfg.apps() {
		app := app
		u.wg.Add(1)
		go u.loop(app)
	}
	return nil
}

// dialRelay attempts to (re)establish a relay connection, trying the
// primary address and then each fallback in order. It is called at startup
// and again before any heartbeat that finds the relay link down — the
// real-time analog of the simulator UE re-scanning for relays each period.
func (u *UEClient) dialRelay() {
	if u.cfg.RelayAddr == "" && len(u.cfg.FallbackRelayAddrs) == 0 {
		return
	}
	u.mu.Lock()
	if u.closed || u.relay != nil {
		u.mu.Unlock()
		return
	}
	u.mu.Unlock()

	addrs := make([]string, 0, 1+len(u.cfg.FallbackRelayAddrs))
	if u.cfg.RelayAddr != "" {
		addrs = append(addrs, u.cfg.RelayAddr)
	}
	addrs = append(addrs, u.cfg.FallbackRelayAddrs...)
	for _, addr := range addrs {
		if u.dialOneRelay(addr) {
			return
		}
	}
}

// dialOneRelay tries a single relay address; it returns true on success.
func (u *UEClient) dialOneRelay(addr string) bool {
	conn, err := u.cfg.dial("tcp", addr)
	if err != nil {
		return false
	}
	if err := hbproto.WriteFrame(conn, &hbproto.Register{
		ID: u.cfg.ID, Role: hbproto.RoleUE, App: u.cfg.App,
		Period: u.cfg.Period, Expiry: u.cfg.Expiry,
	}); err != nil {
		_ = conn.Close()
		return false
	}
	u.mu.Lock()
	if u.closed || u.relay != nil {
		u.mu.Unlock()
		_ = conn.Close()
		return u.relay != nil
	}
	u.relay = conn
	u.stats.RelayReconnects++
	u.ins.dials.Inc()
	u.wg.Add(1)
	u.mu.Unlock()
	go u.relayReader(conn)
	return true
}

// Stats returns a snapshot of the counters.
func (u *UEClient) Stats() UEClientStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.stats
}

// Shutdown stops the loop and closes connections.
func (u *UEClient) Shutdown() {
	u.mu.Lock()
	if u.closed || !u.started {
		u.mu.Unlock()
		return
	}
	u.closed = true
	close(u.done)
	for _, t := range u.pending {
		t.Stop()
	}
	if u.relay != nil {
		_ = u.relay.Close()
	}
	if u.direct != nil {
		_ = u.direct.Close()
	}
	u.mu.Unlock()
	u.wg.Wait()
}

func (u *UEClient) feedbackTimeout(expiry time.Duration) time.Duration {
	if u.cfg.FeedbackTimeout > 0 {
		return u.cfg.FeedbackTimeout
	}
	return expiry + expiry/10
}

// nextSeq allocates a device-wide sequence number (shared across apps so
// feedback refs stay unambiguous).
func (u *UEClient) nextSeq() uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.seq++
	return u.seq
}

// loop runs one app's heartbeat schedule.
func (u *UEClient) loop(app UEApp) {
	defer u.wg.Done()
	ticker := time.NewTicker(app.Period)
	defer ticker.Stop()
	u.sendHeartbeat(u.nextSeq(), app)
	for {
		select {
		case <-u.done:
			return
		case <-ticker.C:
			u.sendHeartbeat(u.nextSeq(), app)
		}
	}
}

func (u *UEClient) sendHeartbeat(seq uint64, app UEApp) {
	hb := &hbproto.Heartbeat{
		Src: u.cfg.ID, Seq: seq, App: app.Name,
		Origin: time.Now(), Expiry: app.Expiry, Pad: app.Pad,
	}
	u.mu.Lock()
	u.stats.Generated++
	relay := u.relay
	u.mu.Unlock()
	u.ins.generated.Inc()
	trace.Emit(u.cfg.Tracer, trace.Event{
		AtMs: hb.Origin.UnixMilli(), Device: u.cfg.ID, Kind: trace.KindGenerated,
		App: hb.App, Seq: hb.Seq,
	})
	if relay == nil {
		// The relay link is down (or never came up): try to re-match
		// before falling back to the direct path.
		u.dialRelay()
		u.mu.Lock()
		relay = u.relay
		u.mu.Unlock()
	}

	if relay != nil {
		// Register the pending entry before transmitting: on loopback the
		// relay may flush, get the server ack and send feedback faster
		// than this goroutine would otherwise arm the timer.
		u.mu.Lock()
		if !u.closed {
			u.pending[seq] = time.AfterFunc(u.feedbackTimeout(app.Expiry), func() {
				u.onFeedbackTimeout(seq, hb)
			})
		}
		u.mu.Unlock()
		if err := hbproto.WriteFrame(relay, hb); err == nil {
			trace.Emit(u.cfg.Tracer, trace.Event{
				AtMs: time.Now().UnixMilli(), Device: u.cfg.ID, Kind: trace.KindD2DSend,
				App: hb.App, Seq: hb.Seq,
			})
			u.mu.Lock()
			u.stats.ViaRelay++
			u.mu.Unlock()
			u.ins.viaRelay.Inc()
			return
		}
		// The relay link is dead: cancel the pending entry, drop the link
		// and fall through to direct.
		u.mu.Lock()
		if t, ok := u.pending[seq]; ok {
			t.Stop()
			delete(u.pending, seq)
		}
		u.relay = nil
		u.mu.Unlock()
		_ = relay.Close()
	}
	u.sendDirect(hb, false)
}

// sendDirect transmits straight to the server, lazily maintaining one
// direct connection. A write failure drops the cached connection and
// retries once with a freshly resolved dial: the cached conn may point at a
// presence shard that has since left the cluster, and a single stale
// connection must not cost the heartbeat its fallback delivery.
func (u *UEClient) sendDirect(hb *hbproto.Heartbeat, fallback bool) {
	var conn net.Conn
	for attempt := 0; attempt < 2; attempt++ {
		u.mu.Lock()
		conn = u.direct
		u.mu.Unlock()
		if conn == nil {
			addr := u.cfg.serverAddr()
			if addr == "" {
				return
			}
			var err error
			conn, err = u.cfg.dial("tcp", addr)
			if err != nil {
				return
			}
			u.mu.Lock()
			if u.closed {
				u.mu.Unlock()
				_ = conn.Close()
				return
			}
			u.direct = conn
			u.mu.Unlock()
			u.wg.Add(1)
			go u.directReader(conn)
		}
		if err := hbproto.WriteFrame(conn, hb); err == nil {
			break
		}
		u.mu.Lock()
		if u.direct == conn {
			u.direct = nil
		}
		u.mu.Unlock()
		_ = conn.Close()
		if attempt == 1 {
			return
		}
	}
	kind := trace.KindDirectSend
	if fallback {
		kind = trace.KindFallback
	}
	trace.Emit(u.cfg.Tracer, trace.Event{
		AtMs: time.Now().UnixMilli(), Device: u.cfg.ID, Kind: kind,
		App: hb.App, Seq: hb.Seq,
	})
	u.mu.Lock()
	if fallback {
		u.stats.FallbackResends++
	} else {
		u.stats.Direct++
	}
	u.mu.Unlock()
	if fallback {
		u.ins.fallbacks.Inc()
	} else {
		u.ins.direct.Inc()
	}
}

// onFeedbackTimeout fires when the relay never confirmed delivery: resend
// directly over "cellular".
func (u *UEClient) onFeedbackTimeout(seq uint64, hb *hbproto.Heartbeat) {
	u.mu.Lock()
	_, ok := u.pending[seq]
	if ok {
		delete(u.pending, seq)
	}
	closed := u.closed
	u.mu.Unlock()
	if !ok || closed {
		return
	}
	u.sendDirect(hb, true)
}

// relayReader consumes feedback from the relay. Frames are processed
// inline, so the FrameReader's reused message values never escape the
// loop iteration.
func (u *UEClient) relayReader(conn net.Conn) {
	defer u.wg.Done()
	fr := hbproto.NewFrameReader(conn)
	for {
		msg, err := fr.Next()
		if err != nil {
			u.mu.Lock()
			if u.relay == conn {
				u.relay = nil
			}
			u.mu.Unlock()
			return
		}
		fb, ok := msg.(*hbproto.Feedback)
		if !ok {
			continue
		}
		u.mu.Lock()
		for _, ref := range fb.Refs {
			if ref.Src != u.cfg.ID {
				continue
			}
			if t, ok := u.pending[ref.Seq]; ok {
				t.Stop()
				delete(u.pending, ref.Seq)
				u.stats.FeedbackAcks++
				u.ins.acks.Inc()
				trace.Emit(u.cfg.Tracer, trace.Event{
					AtMs: time.Now().UnixMilli(), Device: u.cfg.ID,
					Kind: trace.KindAck, Seq: ref.Seq,
				})
			}
		}
		u.mu.Unlock()
	}
}

// directReader drains server acks on the direct connection.
func (u *UEClient) directReader(conn net.Conn) {
	defer u.wg.Done()
	fr := hbproto.NewFrameReader(conn)
	for {
		if _, err := fr.Next(); err != nil {
			return
		}
	}
}
