// Package rrc models the Radio Resource Control state machine of a cellular
// modem and accounts for the layer-3 signaling messages its transitions
// generate. Every transmission over the cellular network requires an RRC
// connection; establishing and releasing those connections is exactly the
// "cellular signaling traffic" the paper sets out to reduce, and the layer-3
// message counts here correspond to the NetOptiMaster captures of Fig. 15.
package rrc

import (
	"errors"
	"fmt"
	"time"

	"d2dhb/internal/simtime"
)

// State is the RRC connection state. The paper targets the two main LTE
// states (Section II-B); WCDMA's intermediate states are folded into the
// message counts of the transitions.
type State int

// RRC states.
const (
	Idle      State = iota + 1 // low-power, no radio connection
	Connected                  // high-power, radio bearer established
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Idle:
		return "IDLE"
	case Connected:
		return "CONNECTED"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config holds the signaling cost and timing parameters of the state
// machine.
type Config struct {
	// SetupMessages is the number of layer-3 messages exchanged to
	// establish an RRC connection (connection request, setup, setup
	// complete, security mode command/complete, ...).
	SetupMessages int
	// ReleaseMessages is the number of layer-3 messages exchanged to
	// release the connection after the inactivity timer expires.
	ReleaseMessages int
	// LargePayloadMessages is added once per transmission whose payload
	// exceeds LargePayloadBytes: radio bearer reconfiguration for a larger
	// grant. This reproduces Fig. 15's observation that "more data in once
	// transmission incurs more cellular traffic".
	LargePayloadMessages int
	// LargePayloadBytes is the payload threshold above which
	// LargePayloadMessages applies.
	LargePayloadBytes int
	// InactivityTail is how long the modem lingers in CONNECTED after the
	// last transmission before the network releases the connection.
	InactivityTail time.Duration
}

// DefaultConfig returns a WCDMA-like configuration: 5 setup + 3 release
// layer-3 messages per connection cycle (≈8 per heartbeat transmission,
// matching the slope of Fig. 15's "Original System" series) and a several-
// second high-power tail.
func DefaultConfig() Config {
	return Config{
		SetupMessages:        5,
		ReleaseMessages:      3,
		LargePayloadMessages: 1,
		LargePayloadBytes:    128,
		InactivityTail:       5 * time.Second,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SetupMessages <= 0 {
		return fmt.Errorf("rrc: SetupMessages must be positive, got %d", c.SetupMessages)
	}
	if c.ReleaseMessages <= 0 {
		return fmt.Errorf("rrc: ReleaseMessages must be positive, got %d", c.ReleaseMessages)
	}
	if c.LargePayloadMessages < 0 {
		return fmt.Errorf("rrc: LargePayloadMessages must be non-negative, got %d", c.LargePayloadMessages)
	}
	if c.InactivityTail <= 0 {
		return fmt.Errorf("rrc: InactivityTail must be positive, got %v", c.InactivityTail)
	}
	return nil
}

// Counters aggregates the observable effects of the state machine.
type Counters struct {
	// L3Messages is the total layer-3 signaling messages generated.
	L3Messages int
	// Promotions counts IDLE→CONNECTED transitions.
	Promotions int
	// Releases counts CONNECTED→IDLE transitions.
	Releases int
	// Transmissions counts Send calls.
	Transmissions int
	// PayloadBytes is the total user payload transmitted.
	PayloadBytes int
	// ConnectedTime is the cumulative time spent in CONNECTED.
	ConnectedTime time.Duration
}

// Machine is a single modem's RRC state machine bound to a simulation
// scheduler. It is not safe for concurrent use (the simulation is
// single-threaded).
type Machine struct {
	sched *simtime.Scheduler
	cfg   Config

	state        State
	connectedAt  time.Duration
	releaseTimer *simtime.Timer
	counters     Counters
	signaling    func(msgs int)
}

// OnSignaling registers a hook invoked with the number of layer-3 messages
// each state transition or transmission generates, at the virtual instant
// it happens. The base station uses it to build the control-channel load
// profile behind the signaling-storm analysis.
func (m *Machine) OnSignaling(hook func(msgs int)) { m.signaling = hook }

// emitSignaling counts messages and notifies the hook.
func (m *Machine) emitSignaling(msgs int) {
	m.counters.L3Messages += msgs
	if m.signaling != nil {
		m.signaling(msgs)
	}
}

// NewMachine returns an idle state machine.
func NewMachine(sched *simtime.Scheduler, cfg Config) (*Machine, error) {
	if sched == nil {
		return nil, errors.New("rrc: nil scheduler")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Machine{sched: sched, cfg: cfg, state: Idle}, nil
}

// State returns the current RRC state.
func (m *Machine) State() State { return m.state }

// Counters returns a snapshot of the accumulated counters. ConnectedTime
// includes the in-progress CONNECTED stretch, if any.
func (m *Machine) Counters() Counters {
	c := m.counters
	if m.state == Connected {
		c.ConnectedTime += m.sched.Now() - m.connectedAt
	}
	return c
}

// Send transmits payloadBytes at the current virtual instant, promoting to
// CONNECTED first if necessary, and (re)arms the inactivity release timer.
func (m *Machine) Send(payloadBytes int) error {
	if payloadBytes < 0 {
		return fmt.Errorf("rrc: negative payload %d", payloadBytes)
	}
	if m.state == Idle {
		m.promote()
	}
	m.counters.Transmissions++
	m.counters.PayloadBytes += payloadBytes
	if m.cfg.LargePayloadBytes > 0 && payloadBytes > m.cfg.LargePayloadBytes {
		m.emitSignaling(m.cfg.LargePayloadMessages)
	}
	return m.armReleaseTimer()
}

// ForceRelease releases the connection immediately, e.g. on device shutdown.
// It is a no-op when idle.
func (m *Machine) ForceRelease() {
	if m.state != Connected {
		return
	}
	m.sched.Stop(m.releaseTimer)
	m.releaseTimer = nil
	m.release()
}

func (m *Machine) promote() {
	m.state = Connected
	m.connectedAt = m.sched.Now()
	m.counters.Promotions++
	m.emitSignaling(m.cfg.SetupMessages)
}

func (m *Machine) release() {
	m.state = Idle
	m.counters.Releases++
	m.emitSignaling(m.cfg.ReleaseMessages)
	m.counters.ConnectedTime += m.sched.Now() - m.connectedAt
}

func (m *Machine) armReleaseTimer() error {
	if m.releaseTimer != nil {
		m.sched.Stop(m.releaseTimer)
	}
	t, err := m.sched.After(m.cfg.InactivityTail, func() {
		m.releaseTimer = nil
		m.release()
	})
	if err != nil {
		return fmt.Errorf("rrc: arm release timer: %w", err)
	}
	m.releaseTimer = t
	return nil
}
