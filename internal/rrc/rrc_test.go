package rrc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"d2dhb/internal/simtime"
)

func newMachine(t *testing.T) (*simtime.Scheduler, *Machine) {
	t.Helper()
	s := simtime.NewScheduler(1)
	m, err := NewMachine(s, DefaultConfig())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return s, m
}

func TestNewMachineValidation(t *testing.T) {
	s := simtime.NewScheduler(1)
	if _, err := NewMachine(nil, DefaultConfig()); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	bad := DefaultConfig()
	bad.SetupMessages = 0
	if _, err := NewMachine(s, bad); err == nil {
		t.Fatal("zero setup messages accepted")
	}
	bad = DefaultConfig()
	bad.ReleaseMessages = 0
	if _, err := NewMachine(s, bad); err == nil {
		t.Fatal("zero release messages accepted")
	}
	bad = DefaultConfig()
	bad.InactivityTail = 0
	if _, err := NewMachine(s, bad); err == nil {
		t.Fatal("zero tail accepted")
	}
	bad = DefaultConfig()
	bad.LargePayloadMessages = -1
	if _, err := NewMachine(s, bad); err == nil {
		t.Fatal("negative large-payload messages accepted")
	}
}

func TestStartsIdle(t *testing.T) {
	_, m := newMachine(t)
	if m.State() != Idle {
		t.Fatalf("initial state = %v, want IDLE", m.State())
	}
}

func TestSendPromotesAndCountsSignaling(t *testing.T) {
	s, m := newMachine(t)
	if err := m.Send(54); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if m.State() != Connected {
		t.Fatalf("state after Send = %v, want CONNECTED", m.State())
	}
	c := m.Counters()
	if c.Promotions != 1 || c.L3Messages != DefaultConfig().SetupMessages {
		t.Fatalf("counters = %+v, want 1 promotion / %d L3 msgs", c, DefaultConfig().SetupMessages)
	}
	// Let the inactivity timer fire.
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.State() != Idle {
		t.Fatalf("state after tail = %v, want IDLE", m.State())
	}
	c = m.Counters()
	want := DefaultConfig().SetupMessages + DefaultConfig().ReleaseMessages
	if c.L3Messages != want {
		t.Fatalf("L3 messages = %d, want %d", c.L3Messages, want)
	}
	if c.Releases != 1 {
		t.Fatalf("releases = %d, want 1", c.Releases)
	}
}

func TestFullCycleMessageCountMatchesFig15Slope(t *testing.T) {
	// Fig. 15: the original system generates ≈8 layer-3 messages per
	// heartbeat transmission (80 at 10 transmissions).
	cfg := DefaultConfig()
	s := simtime.NewScheduler(1)
	m, err := NewMachine(s, cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	const transmissions = 10
	for i := 0; i < transmissions; i++ {
		at := time.Duration(i) * 270 * time.Second // WeChat period ≫ tail
		if _, err := s.At(at, func() {
			if err := m.Send(54); err != nil {
				t.Errorf("Send: %v", err)
			}
		}); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := m.Counters().L3Messages
	if got != 80 {
		t.Fatalf("L3 messages after %d transmissions = %d, want 80", transmissions, got)
	}
}

func TestBackToBackSendsShareOneConnection(t *testing.T) {
	// Sends within the inactivity tail must not re-promote: this is the
	// aggregation benefit the relay exploits.
	s, m := newMachine(t)
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * time.Second // < 5s tail
		if _, err := s.At(at, func() {
			if err := m.Send(54); err != nil {
				t.Errorf("Send: %v", err)
			}
		}); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := m.Counters()
	if c.Promotions != 1 || c.Releases != 1 {
		t.Fatalf("promotions/releases = %d/%d, want 1/1", c.Promotions, c.Releases)
	}
	if c.Transmissions != 5 {
		t.Fatalf("transmissions = %d, want 5", c.Transmissions)
	}
}

func TestLargePayloadAddsSignaling(t *testing.T) {
	s, m := newMachine(t)
	if err := m.Send(500); err != nil { // > 128 B threshold
		t.Fatalf("Send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg := DefaultConfig()
	want := cfg.SetupMessages + cfg.ReleaseMessages + cfg.LargePayloadMessages
	if got := m.Counters().L3Messages; got != want {
		t.Fatalf("L3 messages = %d, want %d", got, want)
	}
}

func TestSendRejectsNegativePayload(t *testing.T) {
	_, m := newMachine(t)
	if err := m.Send(-1); err == nil {
		t.Fatal("negative payload accepted")
	}
}

func TestConnectedTimeAccounting(t *testing.T) {
	s, m := newMachine(t)
	if err := m.Send(54); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got, want := m.Counters().ConnectedTime, DefaultConfig().InactivityTail; got != want {
		t.Fatalf("connected time = %v, want %v", got, want)
	}
}

func TestConnectedTimeIncludesInProgress(t *testing.T) {
	s, m := newMachine(t)
	if err := m.Send(54); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got := m.Counters().ConnectedTime; got != 2*time.Second {
		t.Fatalf("in-progress connected time = %v, want 2s", got)
	}
}

func TestForceRelease(t *testing.T) {
	s, m := newMachine(t)
	if err := m.Send(54); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m.ForceRelease()
	if m.State() != Idle {
		t.Fatalf("state = %v, want IDLE", m.State())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := m.Counters()
	if c.Releases != 1 {
		t.Fatalf("releases = %d, want exactly 1 (timer must not double-release)", c.Releases)
	}
	// ForceRelease when already idle is a no-op.
	m.ForceRelease()
	if got := m.Counters().Releases; got != 1 {
		t.Fatalf("releases after idle ForceRelease = %d, want 1", got)
	}
}

func TestStateString(t *testing.T) {
	if Idle.String() != "IDLE" || Connected.String() != "CONNECTED" {
		t.Fatal("state strings wrong")
	}
	if got := State(9).String(); got != "state(9)" {
		t.Fatalf("unknown state string = %q", got)
	}
}

// TestQuickSignalingInvariant property-checks that for any schedule of small
// sends, L3Messages == promotions×setup + releases×release and promotions
// equals the number of idle-gap-separated send bursts.
func TestQuickSignalingInvariant(t *testing.T) {
	cfg := DefaultConfig()
	prop := func(gapsSec []uint8) bool {
		s := simtime.NewScheduler(2)
		m, err := NewMachine(s, cfg)
		if err != nil {
			return false
		}
		at := time.Duration(0)
		wantPromotions := 0
		prevEnd := time.Duration(-1)
		for _, g := range gapsSec {
			at += time.Duration(g) * time.Second
			if prevEnd < 0 || at > prevEnd {
				wantPromotions++
			}
			prevEnd = at + cfg.InactivityTail
			send := at
			if _, err := s.At(send, func() {
				if err := m.Send(54); err != nil {
					t.Errorf("Send: %v", err)
				}
			}); err != nil {
				return false
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		c := m.Counters()
		if c.Promotions != wantPromotions || c.Releases != wantPromotions {
			return false
		}
		return c.L3Messages == c.Promotions*cfg.SetupMessages+c.Releases*cfg.ReleaseMessages
	}
	qc := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}
