// Package radio models D2D link-layer physics: log-distance path loss,
// RSSI-based distance estimation, link budget, transfer time and
// distance-dependent loss. The paper ranks candidate relays by signal
// strength ("we can obtain the relative distances between the UE and the
// discovered relays through signal strength in D2D discovery") and bounds
// connectivity by the chosen technique's communication range, which is why
// both Wi-Fi Direct and Bluetooth profiles are provided (Section IV-A).
package radio

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Technique identifies a D2D radio technology.
type Technique int

// Supported D2D techniques. The paper's prototype uses Wi-Fi Direct;
// Bluetooth is retained for the ablation discussed in Section IV-A, and LTE
// Direct models the next-generation technology the paper motivates in
// Section II-C ("discovery of thousands of devices in proximity of
// approximately 500 meters").
const (
	WiFiDirect Technique = iota + 1
	Bluetooth
	LTEDirect
)

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case WiFiDirect:
		return "wifi-direct"
	case Bluetooth:
		return "bluetooth"
	case LTEDirect:
		return "lte-direct"
	default:
		return fmt.Sprintf("technique(%d)", int(t))
	}
}

// Profile holds the physical parameters of a D2D technique.
type Profile struct {
	Technique Technique
	// TxPowerDBm is the transmit power.
	TxPowerDBm float64
	// RefLossDB is the path loss at the 1 m reference distance.
	RefLossDB float64
	// PathLossExponent is the log-distance exponent (2 free space,
	// ~3 indoor).
	PathLossExponent float64
	// SensitivityDBm is the weakest RSSI at which the link still works.
	SensitivityDBm float64
	// ShadowingSigmaDB is the standard deviation of log-normal shadowing
	// applied to RSSI measurements.
	ShadowingSigmaDB float64
	// BitrateMbps is the effective application-layer throughput.
	BitrateMbps float64
	// PerLinkOverhead is fixed per-transfer latency (medium access,
	// acknowledgement turnaround).
	PerLinkOverhead time.Duration
	// EdgeLossStart is the fraction of MaxRange beyond which transfer loss
	// probability starts rising from zero.
	EdgeLossStart float64
	// MaxEdgeLoss is the loss probability exactly at MaxRange.
	MaxEdgeLoss float64
}

// WiFiDirectProfile returns the Wi-Fi Direct link profile: longer range and
// higher throughput than Bluetooth, which is why the prototype adopts it
// (Section IV-A).
func WiFiDirectProfile() Profile {
	return Profile{
		Technique:        WiFiDirect,
		TxPowerDBm:       15,
		RefLossDB:        40,
		PathLossExponent: 3.0,
		SensitivityDBm:   -72, // ≈ 35 m indoor range
		ShadowingSigmaDB: 2.0,
		BitrateMbps:      25,
		PerLinkOverhead:  8 * time.Millisecond,
		EdgeLossStart:    0.6,
		MaxEdgeLoss:      0.5,
	}
}

// BluetoothProfile returns the Bluetooth link profile: low power but a
// "communication range typically less than 10 m, too limited to meet our
// need" (Section IV-A).
func BluetoothProfile() Profile {
	return Profile{
		Technique:        Bluetooth,
		TxPowerDBm:       4,
		RefLossDB:        40,
		PathLossExponent: 3.0,
		SensitivityDBm:   -66, // ≈ 10 m indoor range
		ShadowingSigmaDB: 2.5,
		BitrateMbps:      2,
		PerLinkOverhead:  15 * time.Millisecond,
		EdgeLossStart:    0.6,
		MaxEdgeLoss:      0.6,
	}
}

// LTEDirectProfile returns the LTE Direct link profile: licensed-band D2D
// with an ~500 m discovery range (Section II-C). The paper had to abandon
// it for lack of deployment; it is modeled here for the coverage ablation.
func LTEDirectProfile() Profile {
	return Profile{
		Technique:        LTEDirect,
		TxPowerDBm:       23,
		RefLossDB:        40,
		PathLossExponent: 3.0,
		SensitivityDBm:   -98, // ≈ 490 m range
		ShadowingSigmaDB: 3.0,
		BitrateMbps:      10,
		PerLinkOverhead:  20 * time.Millisecond,
		EdgeLossStart:    0.6,
		MaxEdgeLoss:      0.5,
	}
}

// ProfileFor returns the profile for a technique.
func ProfileFor(t Technique) (Profile, error) {
	switch t {
	case WiFiDirect:
		return WiFiDirectProfile(), nil
	case Bluetooth:
		return BluetoothProfile(), nil
	case LTEDirect:
		return LTEDirectProfile(), nil
	default:
		return Profile{}, fmt.Errorf("radio: unknown technique %d", int(t))
	}
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.PathLossExponent <= 0 {
		return fmt.Errorf("radio: path loss exponent must be positive, got %v", p.PathLossExponent)
	}
	if p.BitrateMbps <= 0 {
		return fmt.Errorf("radio: bitrate must be positive, got %v", p.BitrateMbps)
	}
	if p.SensitivityDBm >= p.TxPowerDBm-p.RefLossDB {
		return fmt.Errorf("radio: sensitivity %v dBm leaves no usable range", p.SensitivityDBm)
	}
	if p.EdgeLossStart < 0 || p.EdgeLossStart >= 1 {
		return fmt.Errorf("radio: EdgeLossStart must be in [0,1), got %v", p.EdgeLossStart)
	}
	if p.MaxEdgeLoss < 0 || p.MaxEdgeLoss > 1 {
		return fmt.Errorf("radio: MaxEdgeLoss must be in [0,1], got %v", p.MaxEdgeLoss)
	}
	return nil
}

// minModelDistance floors distances so the log-distance model stays finite
// for co-located devices.
const minModelDistance = 0.1 // meters

// MeanRSSI returns the shadowing-free RSSI at distance d meters.
func (p Profile) MeanRSSI(d float64) float64 {
	if d < minModelDistance {
		d = minModelDistance
	}
	return p.TxPowerDBm - p.RefLossDB - 10*p.PathLossExponent*math.Log10(d)
}

// MeasureRSSI returns one noisy RSSI measurement at distance d, using the
// caller's deterministic random source for log-normal shadowing.
func (p Profile) MeasureRSSI(d float64, rng *rand.Rand) float64 {
	rssi := p.MeanRSSI(d)
	if p.ShadowingSigmaDB > 0 && rng != nil {
		rssi += rng.NormFloat64() * p.ShadowingSigmaDB
	}
	return rssi
}

// MaxRange returns the distance at which the mean RSSI reaches sensitivity.
func (p Profile) MaxRange() float64 {
	exp := (p.TxPowerDBm - p.RefLossDB - p.SensitivityDBm) / (10 * p.PathLossExponent)
	return math.Pow(10, exp)
}

// InRange reports whether distance d is within the technique's mean range.
func (p Profile) InRange(d float64) bool {
	return d <= p.MaxRange()
}

// EstimateDistance inverts the path-loss model for a measured RSSI: this is
// how a UE ranks discovered relays by proximity.
func (p Profile) EstimateDistance(rssi float64) float64 {
	exp := (p.TxPowerDBm - p.RefLossDB - rssi) / (10 * p.PathLossExponent)
	d := math.Pow(10, exp)
	if d < minModelDistance {
		d = minModelDistance
	}
	return d
}

// TransferTime returns how long transferring sizeBytes takes on this link.
func (p Profile) TransferTime(sizeBytes int) time.Duration {
	if sizeBytes < 0 {
		sizeBytes = 0
	}
	bits := float64(sizeBytes) * 8
	sec := bits / (p.BitrateMbps * 1e6)
	return p.PerLinkOverhead + time.Duration(sec*float64(time.Second))
}

// LossProbability returns the probability that a single transfer at
// distance d fails. It is zero inside the reliable core of the range, rises
// polynomially toward MaxEdgeLoss at the range edge, and is one beyond
// range — modeling "the physical distance between involved smartphones
// might exceed the maximum communication distance ... while smartphones
// movement" (Section III-A).
func (p Profile) LossProbability(d float64) float64 {
	r := p.MaxRange()
	if d >= r {
		return 1
	}
	start := p.EdgeLossStart * r
	if d <= start {
		return 0
	}
	frac := (d - start) / (r - start)
	return p.MaxEdgeLoss * frac * frac
}

// TransferOK draws whether a transfer at distance d succeeds.
func (p Profile) TransferOK(d float64, rng *rand.Rand) bool {
	loss := p.LossProbability(d)
	if loss <= 0 {
		return true
	}
	if loss >= 1 || rng == nil {
		return false
	}
	return rng.Float64() >= loss
}
