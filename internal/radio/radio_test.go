package radio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{WiFiDirectProfile(), BluetoothProfile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%v profile invalid: %v", p.Technique, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"zero path loss exponent", func(p *Profile) { p.PathLossExponent = 0 }},
		{"zero bitrate", func(p *Profile) { p.BitrateMbps = 0 }},
		{"sensitivity above tx budget", func(p *Profile) { p.SensitivityDBm = 0 }},
		{"edge loss start out of range", func(p *Profile) { p.EdgeLossStart = 1.5 }},
		{"max edge loss out of range", func(p *Profile) { p.MaxEdgeLoss = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := WiFiDirectProfile()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid profile accepted")
			}
		})
	}
}

func TestProfileFor(t *testing.T) {
	p, err := ProfileFor(WiFiDirect)
	if err != nil || p.Technique != WiFiDirect {
		t.Fatalf("ProfileFor(WiFiDirect) = %v, %v", p.Technique, err)
	}
	p, err = ProfileFor(Bluetooth)
	if err != nil || p.Technique != Bluetooth {
		t.Fatalf("ProfileFor(Bluetooth) = %v, %v", p.Technique, err)
	}
	if _, err := ProfileFor(Technique(99)); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestTechniqueString(t *testing.T) {
	if WiFiDirect.String() != "wifi-direct" || Bluetooth.String() != "bluetooth" {
		t.Fatal("technique strings wrong")
	}
	if got := Technique(42).String(); got != "technique(42)" {
		t.Fatalf("unknown technique string = %q", got)
	}
}

func TestRSSIDecreasesWithDistance(t *testing.T) {
	p := WiFiDirectProfile()
	prev := math.Inf(1)
	for _, d := range []float64{0.5, 1, 2, 5, 10, 20, 30} {
		rssi := p.MeanRSSI(d)
		if rssi >= prev {
			t.Fatalf("RSSI not decreasing: %v dBm at %v m (prev %v)", rssi, d, prev)
		}
		prev = rssi
	}
}

func TestRSSIFloorsTinyDistance(t *testing.T) {
	p := WiFiDirectProfile()
	if got, want := p.MeanRSSI(0), p.MeanRSSI(0.05); got != want {
		t.Fatalf("RSSI at 0 = %v, want same as floor %v", got, want)
	}
	if math.IsInf(p.MeanRSSI(0), 0) {
		t.Fatal("RSSI infinite at zero distance")
	}
}

func TestWiFiDirectOutrangesBluetooth(t *testing.T) {
	// Section IV-A: Bluetooth's range (< 10 m) is "too limited"; Wi-Fi
	// Direct's is substantially longer and must cover the paper's 15 m
	// distance sweep (Fig. 12).
	wifi, bt := WiFiDirectProfile().MaxRange(), BluetoothProfile().MaxRange()
	if wifi <= bt {
		t.Fatalf("wifi range %v m <= bluetooth %v m", wifi, bt)
	}
	if bt > 12 {
		t.Fatalf("bluetooth range %v m, want ≈10 m", bt)
	}
	if wifi < 16 || wifi > 60 {
		t.Fatalf("wifi-direct range %v m, want within [16, 60]", wifi)
	}
}

func TestInRange(t *testing.T) {
	p := BluetoothProfile()
	r := p.MaxRange()
	if !p.InRange(r * 0.9) {
		t.Fatal("90% of range reported out of range")
	}
	if p.InRange(r * 1.1) {
		t.Fatal("110% of range reported in range")
	}
}

func TestEstimateDistanceInvertsMeanRSSI(t *testing.T) {
	p := WiFiDirectProfile()
	for _, d := range []float64{0.5, 1, 3, 10, 25} {
		want := d
		if want < 0.1 {
			want = 0.1
		}
		got := p.EstimateDistance(p.MeanRSSI(d))
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("EstimateDistance(MeanRSSI(%v)) = %v", d, got)
		}
	}
}

func TestMeasureRSSIShadowingDeterministic(t *testing.T) {
	p := WiFiDirectProfile()
	a := p.MeasureRSSI(5, rand.New(rand.NewSource(9)))
	b := p.MeasureRSSI(5, rand.New(rand.NewSource(9)))
	if a != b {
		t.Fatalf("same seed measurements differ: %v vs %v", a, b)
	}
	if a == p.MeanRSSI(5) {
		t.Fatal("shadowing had no effect")
	}
	c := p.MeasureRSSI(5, nil)
	if c != p.MeanRSSI(5) {
		t.Fatalf("nil rng measurement %v, want mean %v", c, p.MeanRSSI(5))
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	p := WiFiDirectProfile()
	small := p.TransferTime(54)
	big := p.TransferTime(54 * 1000)
	if big <= small {
		t.Fatalf("transfer time not increasing: %v vs %v", small, big)
	}
	if small < p.PerLinkOverhead {
		t.Fatalf("transfer time %v below fixed overhead %v", small, p.PerLinkOverhead)
	}
	if got := p.TransferTime(-5); got != p.TransferTime(0) {
		t.Fatalf("negative size not clamped: %v", got)
	}
}

func TestBluetoothSlowerThanWiFiDirect(t *testing.T) {
	const size = 10_000
	if BluetoothProfile().TransferTime(size) <= WiFiDirectProfile().TransferTime(size) {
		t.Fatal("bluetooth transfer not slower than wifi-direct")
	}
}

func TestLossProbabilityShape(t *testing.T) {
	p := WiFiDirectProfile()
	r := p.MaxRange()
	if got := p.LossProbability(0.3 * r); got != 0 {
		t.Fatalf("loss in reliable core = %v, want 0", got)
	}
	mid := p.LossProbability(0.8 * r)
	if mid <= 0 || mid >= p.MaxEdgeLoss {
		t.Fatalf("edge-zone loss = %v, want in (0, %v)", mid, p.MaxEdgeLoss)
	}
	if got := p.LossProbability(r * 1.01); got != 1 {
		t.Fatalf("beyond-range loss = %v, want 1", got)
	}
}

func TestTransferOK(t *testing.T) {
	p := WiFiDirectProfile()
	rng := rand.New(rand.NewSource(11))
	if !p.TransferOK(1, rng) {
		t.Fatal("transfer at 1 m failed")
	}
	if p.TransferOK(p.MaxRange()*2, rng) {
		t.Fatal("transfer beyond range succeeded")
	}
	// In the edge zone, the empirical failure rate should approximate the
	// model probability.
	d := 0.9 * p.MaxRange()
	want := p.LossProbability(d)
	fails := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if !p.TransferOK(d, rng) {
			fails++
		}
	}
	got := float64(fails) / trials
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical loss %v, model %v", got, want)
	}
}

func TestTransferOKNilRngFailsClosed(t *testing.T) {
	p := WiFiDirectProfile()
	d := 0.9 * p.MaxRange() // loss in (0,1)
	if p.TransferOK(d, nil) {
		t.Fatal("nil rng in lossy zone succeeded, want fail-closed")
	}
}

// TestQuickEstimateDistanceRoundTrip property-checks RSSI→distance→RSSI
// consistency across the usable range.
func TestQuickEstimateDistanceRoundTrip(t *testing.T) {
	p := WiFiDirectProfile()
	prop := func(milli uint16) bool {
		d := 0.1 + float64(milli)/1000*30 // 0.1 .. 30.1 m
		rssi := p.MeanRSSI(d)
		back := p.EstimateDistance(rssi)
		return math.Abs(back-d)/d < 1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLossMonotonic property-checks that loss probability never
// decreases with distance.
func TestQuickLossMonotonic(t *testing.T) {
	p := WiFiDirectProfile()
	prop := func(a, b uint16) bool {
		d1 := float64(a) / 1000 * 50
		d2 := float64(b) / 1000 * 50
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return p.LossProbability(d1) <= p.LossProbability(d2)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTimeReference(t *testing.T) {
	// 54 bytes at 25 Mbps is ~17 µs of airtime; the fixed overhead
	// dominates. Sanity-check magnitude.
	p := WiFiDirectProfile()
	got := p.TransferTime(54)
	if got < 8*time.Millisecond || got > 9*time.Millisecond {
		t.Fatalf("TransferTime(54) = %v, want ≈8 ms", got)
	}
}

func TestLTEDirectProfile(t *testing.T) {
	p := LTEDirectProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
	// Section II-C: discovery "in proximity of approximately 500 meters".
	r := p.MaxRange()
	if r < 300 || r > 700 {
		t.Fatalf("LTE Direct range = %.0f m, want ≈500 m", r)
	}
	if r <= WiFiDirectProfile().MaxRange() {
		t.Fatal("LTE Direct range not beyond Wi-Fi Direct")
	}
	got, err := ProfileFor(LTEDirect)
	if err != nil || got.Technique != LTEDirect {
		t.Fatalf("ProfileFor(LTEDirect) = %v, %v", got.Technique, err)
	}
	if LTEDirect.String() != "lte-direct" {
		t.Fatalf("string = %q", LTEDirect.String())
	}
}
