package loadgen

import (
	"testing"
	"time"
)

func TestParseArrivalShape(t *testing.T) {
	cases := map[string]ArrivalShape{
		"steady": ArrivalSteady, "ramp": ArrivalRamp,
		"spike": ArrivalSpike, "storm": ArrivalSpike,
	}
	for in, want := range cases {
		got, err := ParseArrivalShape(in)
		if err != nil || got != want {
			t.Errorf("ParseArrivalShape(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseArrivalShape("bogus"); err == nil {
		t.Error("bogus shape accepted")
	}
}

func TestScheduleOffsets(t *testing.T) {
	const n = 10
	spike := Schedule{Shape: ArrivalSpike, Window: time.Second}
	for i := 0; i < n; i++ {
		if off := spike.StartOffset(i, n); off != 0 {
			t.Fatalf("spike offset[%d] = %v", i, off)
		}
	}
	ramp := Schedule{Shape: ArrivalRamp, Window: time.Second}
	var prev time.Duration = -1
	for i := 0; i < n; i++ {
		off := ramp.StartOffset(i, n)
		if off <= prev && i > 0 {
			t.Fatalf("ramp offsets not strictly increasing at %d", i)
		}
		if off >= time.Second {
			t.Fatalf("ramp offset[%d] = %v beyond window", i, off)
		}
		prev = off
	}
	if got := ramp.StartOffset(5, n); got != 500*time.Millisecond {
		t.Fatalf("ramp midpoint = %v", got)
	}
	// Single UE and zero window degenerate to zero.
	if (Schedule{Shape: ArrivalRamp}).StartOffset(3, 7) != 0 {
		t.Fatal("zero window should yield zero offset")
	}
	if (Schedule{Shape: ArrivalSteady, Window: time.Second}).StartOffset(0, 1) != 0 {
		t.Fatal("single UE should start immediately")
	}
}
