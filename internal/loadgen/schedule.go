package loadgen

import (
	"fmt"
	"time"
)

// ArrivalShape selects how the fleet comes online — the load shapes the
// paper's crowd scenarios motivate: a stadium filling gradually (ramp), a
// steady crowd (steady), or everyone's radio waking at once after an
// outage-style synchronization event (spike, a signaling storm).
type ArrivalShape int

// Arrival shapes.
const (
	// ArrivalSteady spreads activations uniformly over one window so the
	// aggregate heartbeat rate is flat from the start (phase-staggered).
	ArrivalSteady ArrivalShape = iota
	// ArrivalRamp spreads activations over the window so offered load grows
	// linearly.
	ArrivalRamp
	// ArrivalSpike activates the whole fleet at t=0 — the storm case.
	ArrivalSpike
)

// String implements fmt.Stringer.
func (a ArrivalShape) String() string {
	switch a {
	case ArrivalSteady:
		return "steady"
	case ArrivalRamp:
		return "ramp"
	case ArrivalSpike:
		return "spike"
	default:
		return fmt.Sprintf("shape(%d)", int(a))
	}
}

// ParseArrivalShape parses a CLI shape name.
func ParseArrivalShape(s string) (ArrivalShape, error) {
	switch s {
	case "steady":
		return ArrivalSteady, nil
	case "ramp":
		return ArrivalRamp, nil
	case "spike", "storm":
		return ArrivalSpike, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown arrival shape %q (want steady, ramp or spike)", s)
	}
}

// Schedule is an arrival schedule: a shape plus the window it unfolds over.
// A zero Window lets the runner pick a default (one mean heartbeat period
// for steady, half the run duration for ramp).
type Schedule struct {
	Shape  ArrivalShape
	Window time.Duration
}

// StartOffset returns when UE i of a fleet of n activates, relative to run
// start.
func (s Schedule) StartOffset(i, n int) time.Duration {
	if n <= 1 || s.Shape == ArrivalSpike || s.Window <= 0 {
		return 0
	}
	return s.Window * time.Duration(i) / time.Duration(n)
}
