package loadgen

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"d2dhb/internal/experiments"
	"d2dhb/internal/faultnet"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/rec"
)

// TestChaosRollingRestart cycles every shard of a live 3-shard cluster
// under sustained trunked load: drain the shard (graceful presence
// handoff), kill it, start a replacement and join it back — the standard
// deploy motion. The fleet must lose nothing across all three cycles:
// zero timeouts, monotonic per-user acks, and a ring epoch that advances
// on every membership change.
func TestChaosRollingRestart(t *testing.T) {
	routerURL, router, shards := startTestCluster(t, 3)
	r, err := New(Config{
		UEs:         60,
		Trunks:      3,
		Profiles:    []hbmsg.AppProfile{fastProfile(100 * time.Millisecond)},
		Duration:    3200 * time.Millisecond,
		AckTimeout:  400 * time.Millisecond,
		ClusterAddr: routerURL,
	})
	if err != nil {
		t.Fatal(err)
	}

	type cycle struct {
		id            string
		before, after uint64
		drain, join   error
	}
	cycles := make([]cycle, 0, len(shards))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range shards {
			time.Sleep(400 * time.Millisecond)
			old := shards[i]
			c := cycle{id: old.node.ID, before: router.Config().Epoch}
			c.drain = router.Drain(old.node.ID)
			// Let the drained config propagate (the fleet's cluster client
			// polls every 250 ms) and in-flight acks land before the kill —
			// the graceful half of a rolling deploy.
			time.Sleep(400 * time.Millisecond)
			old.kill()
			fresh := startTestShard(t, old.node.ID+"-v2")
			c.join = router.Join(fresh.node)
			c.after = router.Config().Epoch
			cycles = append(cycles, c)
		}
	}()

	rep, err := r.Run()
	<-done
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range cycles {
		if c.drain != nil {
			t.Errorf("drain %s: %v", c.id, c.drain)
		}
		if c.join != nil {
			t.Errorf("join %s replacement: %v", c.id, c.join)
		}
		if c.after <= c.before {
			t.Errorf("restart of %s did not advance the epoch: %d → %d", c.id, c.before, c.after)
		}
	}
	if len(cycles) != 3 {
		t.Fatalf("completed %d restart cycles, want 3", len(cycles))
	}
	if rep.SentRelayed == 0 || rep.AckedRelayed == 0 {
		t.Fatalf("fleet moved no traffic: %+v", rep)
	}
	if rep.Timeouts != 0 {
		t.Errorf("rolling restart lost %d heartbeats (fallback=%d dialErrs=%d writeErrs=%d)",
			rep.Timeouts, rep.FallbackResends, rep.DialErrors, rep.WriteErrors)
	}
	if rep.OutOfOrderAcks != 0 {
		t.Errorf("acks went non-monotonic across restarts: %d out of order", rep.OutOfOrderAcks)
	}
	// Every shard was replaced: the original IDs must all be gone and the
	// epoch must reflect 3 drains + 3 joins.
	cfg := router.Config()
	for _, sh := range shards {
		if _, ok := cfg.Node(sh.node.ID); ok {
			t.Errorf("original shard %s still in the config after its restart", sh.node.ID)
		}
	}
	if cfg.Epoch < 7 {
		t.Errorf("final epoch %d, want >= 7 after six membership changes", cfg.Epoch)
	}
}

// TestChaosRecordReplayParity is the full record/replay loop under fault
// injection: record a chaos run, survive the file codec, replay the trace
// twice through the deterministic sim (digests must be bit-identical) and
// once through the live stack, and assemble the sim-vs-real parity report.
func TestChaosRecordReplayParity(t *testing.T) {
	sched, err := faultnet.ParseSpec("seed=42,latency=2ms,jitter=1ms,corrupt=0.02")
	if err != nil {
		t.Fatal(err)
	}
	tl := recordRun(t, Config{
		UEs:      8,
		Trunks:   2,
		Duration: 400 * time.Millisecond,
		Profiles: []hbmsg.AppProfile{fastProfile(60 * time.Millisecond)},
		Faults:   sched,
	})
	if len(tl.Faults) == 0 {
		t.Fatal("chaos run recorded no fault windows")
	}

	path := filepath.Join(t.TempDir(), "chaos.d2dr")
	if err := tl.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := rec.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digest() != tl.Digest() {
		t.Fatal("trace digest changed across the file round trip")
	}

	sim1, err := experiments.ReplaySim(loaded)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := experiments.ReplaySim(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if sim1.Digest() != sim2.Digest() {
		t.Fatalf("sim replay not deterministic: %s vs %s", sim1.Digest(), sim2.Digest())
	}
	if sim1.Sent != uint64(loaded.Sends()) {
		t.Fatalf("sim replayed %d of %d recorded sends", sim1.Sent, loaded.Sends())
	}

	live, err := ReplayLive(loaded, ReplayOptions{Speedup: 4, AckTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if live.Sent != uint64(loaded.Sends()) {
		t.Fatalf("live replayed %d of %d recorded sends", live.Sent, loaded.Sends())
	}

	par := rec.NewParityReport(loaded, loaded.RecordedMetrics(), sim1, live)
	if par.TraceDigest != loaded.Digest() || par.SimDigest != sim1.Digest() {
		t.Fatalf("parity report digests %s/%s", par.TraceDigest, par.SimDigest)
	}
	if gap := par.DeliveryGap(); gap < -1 || gap > 1 {
		t.Fatalf("delivery gap %v out of range", gap)
	}
	table := par.Table().String()
	for _, want := range []string{"delivery ratio", "sim", "live", "recorded"} {
		if !strings.Contains(table, want) {
			t.Errorf("parity table missing %q:\n%s", want, table)
		}
	}
	if _, err := par.JSON(); err != nil {
		t.Fatal(err)
	}
}
