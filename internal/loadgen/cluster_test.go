package loadgen

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"d2dhb/internal/cluster"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/relaynet"
	"d2dhb/internal/telemetry"
)

// testShard is one presence shard with a full control plane (telemetry,
// health, node agent) as the launcher would run it.
type testShard struct {
	srv    *relaynet.Server
	health *telemetry.Health
	web    *httptest.Server
	node   cluster.Node
	dead   bool
}

func (sh *testShard) kill() {
	if sh.dead {
		return
	}
	sh.dead = true
	sh.srv.Shutdown()
	sh.web.Close()
}

func startTestShard(t *testing.T, id string) *testShard {
	t.Helper()
	srv := relaynet.NewServer()
	reg := telemetry.NewRegistry()
	srv.SetTelemetry(reg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("shard %s start: %v", id, err)
	}
	health := telemetry.NewHealth()
	mux := http.NewServeMux()
	telemetry.WithHealth(health)(mux)
	telemetry.WithHandler("/cluster/", cluster.NewNodeAgent(srv, health).Handler())(mux)
	mux.Handle("/", telemetry.Handler(reg))
	web := httptest.NewServer(mux)
	sh := &testShard{
		srv: srv, health: health, web: web,
		node: cluster.Node{ID: id, Addr: srv.Addr(), HTTP: web.URL},
	}
	t.Cleanup(sh.kill)
	return sh
}

// startTestCluster spins n shards plus a router and returns the router's
// base URL alongside the shard handles.
func startTestCluster(t *testing.T, n int) (string, *cluster.Router, []*testShard) {
	t.Helper()
	shards := make([]*testShard, n)
	nodes := make([]cluster.Node, n)
	for i := range shards {
		shards[i] = startTestShard(t, "shard-"+string(rune('0'+i)))
		nodes[i] = shards[i].node
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Initial:        cluster.Config{Epoch: 1, Nodes: nodes},
		HealthInterval: 50 * time.Millisecond,
		HealthFailures: 2,
		SettleDelay:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(router.Close)
	rweb := httptest.NewServer(router.Handler())
	t.Cleanup(rweb.Close)
	return rweb.URL, router, shards
}

// TestClusterFleetRun drives a socket-per-UE fleet (half relayed, half
// direct) against a 3-shard cluster: direct UEs resolve their owning shard
// through the ring, relays fan batches per shard, and the report embeds
// each shard's metrics scrape.
func TestClusterFleetRun(t *testing.T) {
	routerURL, _, shards := startTestCluster(t, 3)
	r, err := New(Config{
		UEs:         24,
		Relays:      2,
		RelayRatio:  0.5,
		Profiles:    []hbmsg.AppProfile{fastProfile(80 * time.Millisecond)},
		Duration:    time.Second,
		ClusterAddr: routerURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.Acked == 0 {
		t.Fatalf("no traffic: sent=%d acked=%d", rep.Sent, rep.Acked)
	}
	if rep.Timeouts != 0 {
		t.Errorf("lost heartbeats in a healthy cluster: %d timeouts", rep.Timeouts)
	}
	if rep.ClusterEpoch != 1 {
		t.Errorf("cluster epoch = %d, want 1", rep.ClusterEpoch)
	}
	if len(rep.ShardMetrics) != 3 {
		t.Errorf("scraped %d shard metric dumps, want 3", len(rep.ShardMetrics))
	}
	served := 0
	for _, sh := range shards {
		st := sh.srv.Stats()
		if st.HeartbeatsDirect+st.HeartbeatsRelayed > 0 {
			served++
		}
		if st.Misrouted > 0 {
			t.Errorf("shard %s saw %d misrouted frames in a stable ring", sh.node.ID, st.Misrouted)
		}
	}
	if served < 2 {
		t.Errorf("only %d shards served traffic; ring is not spreading the fleet", served)
	}
	if rep.ShardTable() == nil {
		t.Error("cluster run rendered no shard table")
	}
}

// TestTrunkFleetSingleServer multiplexes a 200-user fleet over 4 trunk
// connections against one in-process server: the batch path must carry and
// acknowledge every user without per-UE sockets.
func TestTrunkFleetSingleServer(t *testing.T) {
	r, err := New(Config{
		UEs:      200,
		Trunks:   4,
		Profiles: []hbmsg.AppProfile{fastProfile(100 * time.Millisecond)},
		Duration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trunks != 4 {
		t.Errorf("report trunks = %d, want 4", rep.Trunks)
	}
	if rep.SentRelayed == 0 || rep.AckedRelayed == 0 {
		t.Fatalf("trunk fleet moved no traffic: %+v", rep)
	}
	if rep.Timeouts != 0 {
		t.Errorf("trunk fleet lost heartbeats against a healthy server: %d", rep.Timeouts)
	}
	if rep.Server == nil || rep.Server.Batches == 0 {
		t.Error("server saw no batches from the trunked fleet")
	}
	if rep.Server != nil && rep.Server.Connections > 8 {
		t.Errorf("trunked fleet opened %d conns, want a handful", rep.Server.Connections)
	}
}

// TestClusterReplayFromRecording closes the PR 7 follow-up: a trace
// recorded against a 3-shard cluster replays against a cluster router URL,
// re-partitioning every trunk batch per shard through the live epoch
// config. Replaying against a *different* cluster than the one recorded
// proves routing comes from the replay-side ring, not anything baked into
// the trace (the timeline stores no addresses).
func TestClusterReplayFromRecording(t *testing.T) {
	recURL, _, _ := startTestCluster(t, 3)
	tl := recordRun(t, Config{
		UEs:         18,
		Trunks:      3,
		Profiles:    []hbmsg.AppProfile{fastProfile(60 * time.Millisecond)},
		Duration:    400 * time.Millisecond,
		ClusterAddr: recURL,
	})

	if _, err := ReplayLive(tl, ReplayOptions{ServerAddr: "127.0.0.1:1", ClusterAddr: "127.0.0.1:2"}); err == nil {
		t.Fatal("replay accepted both a server and a cluster target")
	}

	replayURL, _, shards := startTestCluster(t, 3)
	m, err := ReplayLive(tl, ReplayOptions{ClusterAddr: replayURL, Speedup: 4, AckTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if int(m.Sent) != tl.Sends() {
		t.Fatalf("replayed %d of %d recorded sends", m.Sent, tl.Sends())
	}
	if m.Delivered != m.Sent || m.Timeouts != 0 {
		t.Fatalf("cluster replay lost heartbeats: %+v", m)
	}
	if m.Signaling.Uplinks >= m.Sent || m.Signaling.Batches == 0 {
		t.Fatalf("no batching in cluster replay: %+v", m.Signaling)
	}
	served := 0
	for _, sh := range shards {
		st := sh.srv.Stats()
		if st.HeartbeatsDirect+st.HeartbeatsRelayed > 0 {
			served++
		}
		if st.Misrouted > 0 {
			t.Errorf("replay misrouted %d frames to shard %s in a stable ring", st.Misrouted, sh.node.ID)
		}
	}
	if served < 2 {
		t.Errorf("only %d replay shards served traffic; batches are not being partitioned", served)
	}
}

// TestTrunkClusterShardKill is the loss-under-reshard invariant at the
// loadgen level: a trunked fleet spread over 3 shards keeps zero timeouts
// when one shard is hard-killed mid-run — in-flight heartbeats to the dead
// shard are re-sent through the post-eviction ring by the fallback sweep.
func TestTrunkClusterShardKill(t *testing.T) {
	routerURL, router, shards := startTestCluster(t, 3)
	r, err := New(Config{
		UEs:         60,
		Trunks:      3,
		Profiles:    []hbmsg.AppProfile{fastProfile(100 * time.Millisecond)},
		Duration:    1500 * time.Millisecond,
		AckTimeout:  400 * time.Millisecond,
		ClusterAddr: routerURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(500 * time.Millisecond)
		shards[2].kill()
	}()
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	if _, ok := router.Config().Node(shards[2].node.ID); ok {
		t.Error("killed shard still in the cluster config")
	}
	if rep.SentRelayed == 0 || rep.AckedRelayed == 0 {
		t.Fatalf("trunk fleet moved no traffic: %+v", rep)
	}
	if rep.Timeouts != 0 {
		t.Errorf("shard kill lost %d heartbeats (fallback=%d dialErrs=%d writeErrs=%d)",
			rep.Timeouts, rep.FallbackResends, rep.DialErrors, rep.WriteErrors)
	}
	if len(rep.ShardSent) != 3 {
		t.Errorf("fleet addressed %d shards, want all 3 before the kill", len(rep.ShardSent))
	}
	if rep.ClusterEpoch < 2 {
		t.Errorf("cluster epoch = %d after eviction, want >= 2", rep.ClusterEpoch)
	}
}
