package loadgen

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"d2dhb/internal/experiments"
	"d2dhb/internal/faultnet"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/rec"
)

// corpusPath is the committed reference trace: a trunked fleet over a
// 3-shard cluster under a seeded fault schedule. It pins the rec codec and
// the sim's determinism against a real artifact instead of a fresh
// recording, so a codec or scheduler change that breaks old traces fails
// here before it ships.
const corpusPath = "testdata/corpus/trunked_cluster_3shard.d2dr"

// corpusFaultSpec seeds the recorded run's chaos; the seed lands in the
// trace so the sim replay is reproducible from the file alone.
const corpusFaultSpec = "seed=42,latency=2ms,jitter=1ms,corrupt=0.02"

// TestRegenerateCorpus rewrites the committed fixture. It only runs when
// explicitly asked (D2D_REGEN_CORPUS=1) — e.g. after an intentional codec
// change — and the rewritten file must be committed alongside that change.
func TestRegenerateCorpus(t *testing.T) {
	if os.Getenv("D2D_REGEN_CORPUS") == "" {
		t.Skip("set D2D_REGEN_CORPUS=1 to rewrite the corpus fixture")
	}
	sched, err := faultnet.ParseSpec(corpusFaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	routerURL, _, _ := startTestCluster(t, 3)
	tl := recordRun(t, Config{
		UEs:         24,
		Trunks:      3,
		Profiles:    []hbmsg.AppProfile{fastProfile(60 * time.Millisecond)},
		Duration:    600 * time.Millisecond,
		AckTimeout:  400 * time.Millisecond,
		ClusterAddr: routerURL,
		Faults:      sched,
	})
	if len(tl.Faults) == 0 {
		t.Fatal("regenerated run recorded no fault windows; fixture would be toothless")
	}
	if err := os.MkdirAll(filepath.Dir(corpusPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteFile(corpusPath); err != nil {
		t.Fatal(err)
	}
	t.Logf("rewrote %s: %d clients, %d sends, digest %s", corpusPath, len(tl.Clients), tl.Sends(), tl.Digest())
}

func loadCorpus(t *testing.T) *rec.Timeline {
	t.Helper()
	tl, err := rec.ReadFile(corpusPath)
	if err != nil {
		t.Fatalf("corpus fixture unreadable (regenerate with D2D_REGEN_CORPUS=1): %v", err)
	}
	return tl
}

// TestCorpusTrace checks the committed fixture's invariants: it validates,
// survives its own codec bit-identically, records a trunked cluster fleet
// with fault windows, and replays through the sim deterministically.
func TestCorpusTrace(t *testing.T) {
	tl := loadCorpus(t)
	if err := tl.Validate(); err != nil {
		t.Fatalf("corpus does not validate: %v", err)
	}
	rt, err := rec.Decode(tl.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Digest() != tl.Digest() {
		t.Fatal("corpus digest changed across a codec round trip")
	}
	if tl.Seed != 42 {
		t.Fatalf("corpus seed %d, want the fault schedule's 42", tl.Seed)
	}
	if len(tl.Faults) == 0 {
		t.Fatal("corpus has no fault windows")
	}
	if len(tl.Clients) != 24 || tl.Sends() == 0 {
		t.Fatalf("corpus shape: %d clients, %d sends", len(tl.Clients), tl.Sends())
	}
	groups := map[int]bool{}
	for _, c := range tl.Clients {
		if c.Path != rec.PathTrunked {
			t.Fatalf("corpus client %+v is not trunked", c)
		}
		groups[c.Relay] = true
	}
	if len(groups) != 3 {
		t.Fatalf("corpus trunk groups %d, want 3", len(groups))
	}

	sim1, err := experiments.ReplaySim(tl)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := experiments.ReplaySim(tl)
	if err != nil {
		t.Fatal(err)
	}
	if sim1.Digest() != sim2.Digest() {
		t.Fatalf("sim replay of the corpus not deterministic: %s vs %s", sim1.Digest(), sim2.Digest())
	}
	if sim1.Sent != uint64(tl.Sends()) {
		t.Fatalf("sim replayed %d of %d corpus sends", sim1.Sent, tl.Sends())
	}
}

// TestCorpusClusterReplay replays the committed trace against a fresh
// 3-shard cluster: every recorded send must go back out, partitioned per
// shard through the live epoch config.
func TestCorpusClusterReplay(t *testing.T) {
	tl := loadCorpus(t)
	routerURL, _, shards := startTestCluster(t, 3)
	m, err := ReplayLive(tl, ReplayOptions{ClusterAddr: routerURL, Speedup: 4, AckTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if int(m.Sent) != tl.Sends() {
		t.Fatalf("replayed %d of %d corpus sends", m.Sent, tl.Sends())
	}
	if m.Delivered == 0 || m.Signaling.Batches == 0 {
		t.Fatalf("corpus replay moved nothing: %+v", m)
	}
	served := 0
	for _, sh := range shards {
		st := sh.srv.Stats()
		if st.HeartbeatsDirect+st.HeartbeatsRelayed > 0 {
			served++
		}
	}
	if served < 2 {
		t.Errorf("corpus replay reached only %d shards", served)
	}
}
