package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"d2dhb/internal/metrics"
	"d2dhb/internal/relaynet"
	"d2dhb/internal/telemetry"
)

// LatencyStats summarizes one path's heartbeat→ack latency distribution in
// milliseconds.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
}

func latencyStats(s *HistSnapshot) LatencyStats {
	us := func(v uint64) float64 { return float64(v) / 1000 }
	return LatencyStats{
		Count:  s.Count(),
		MeanMs: s.Mean() / 1000,
		P50Ms:  us(s.Quantile(0.50)),
		P95Ms:  us(s.Quantile(0.95)),
		P99Ms:  us(s.Quantile(0.99)),
		P999Ms: us(s.Quantile(0.999)),
		MaxMs:  us(s.Max()),
	}
}

// RelayStats aggregates the run's relay agents.
type RelayStats struct {
	Collected int `json:"collected"`
	Forwarded int `json:"forwarded"`
	Flushes   int `json:"flushes"`
	Rejected  int `json:"rejected"`
}

// Report is one load-generation measurement: cumulative counts since run
// start plus latency quantiles per path. Periodic reports have Final false.
type Report struct {
	Final      bool    `json:"final"`
	ElapsedSec float64 `json:"elapsedSec"`

	UEs        int     `json:"ues"`
	RelayedUEs int     `json:"relayedUEs"`
	Relays     int     `json:"relays"`
	Arrival    string  `json:"arrival"`
	Speedup    float64 `json:"speedup"`

	Sent     uint64 `json:"sent"`
	Acked    uint64 `json:"acked"`
	Timeouts uint64 `json:"timeouts"`
	Errors   uint64 `json:"errors"` // dial + write failures

	SentDirect      uint64 `json:"sentDirect"`
	SentRelayed     uint64 `json:"sentRelayed"`
	AckedDirect     uint64 `json:"ackedDirect"`
	AckedRelayed    uint64 `json:"ackedRelayed"`
	TimeoutsDirect  uint64 `json:"timeoutsDirect"`
	TimeoutsRelayed uint64 `json:"timeoutsRelayed"`
	DialErrors      uint64 `json:"dialErrors"`
	WriteErrors     uint64 `json:"writeErrors"`
	OutOfOrderAcks  uint64 `json:"outOfOrderAcks"`
	// FallbackResends counts relayed heartbeats re-sent directly to their
	// owning shard after the relay path missed the ack window (cluster
	// mode). A resend that gets acked keeps the heartbeat out of Timeouts.
	FallbackResends uint64 `json:"fallbackResends,omitempty"`

	// Trunks is the trunked-fleet size (Config.Trunks); zero in socket-per-UE
	// runs.
	Trunks int `json:"trunks,omitempty"`
	// TrunkWrites/TrunkFrames account the coalesced trunk uplink: Batch
	// frames composed vs conn.Write calls issued (frames − writes is the
	// syscall count the single-buffer flush saved). Zero without trunks.
	TrunkWrites uint64 `json:"trunkWrites,omitempty"`
	TrunkFrames uint64 `json:"trunkFrames,omitempty"`

	// OfferedHBps is the sent rate, ThroughputHBps the acknowledged rate.
	OfferedHBps    float64 `json:"offeredHBps"`
	ThroughputHBps float64 `json:"throughputHBps"`

	Overall LatencyStats `json:"overall"`
	Direct  LatencyStats `json:"direct"`
	Relayed LatencyStats `json:"relayed"`

	// Server holds the in-process presence server's counters; nil when the
	// run targeted an external server.
	Server *relaynet.ServerStats `json:"server,omitempty"`
	// Relay aggregates the in-process relay agents; nil without relays.
	Relay *RelayStats `json:"relay,omitempty"`
	// ServerMetrics is the target server's telemetry dump, scraped from its
	// /metrics.json endpoint when Config.MetricsAddr is set; nil otherwise
	// or when the scrape failed.
	ServerMetrics *telemetry.Dump `json:"serverMetrics,omitempty"`
	// ClusterEpoch is the ring epoch the fleet last observed (cluster mode).
	ClusterEpoch uint64 `json:"clusterEpoch,omitempty"`
	// ShardSent counts heartbeats the fleet addressed to each shard
	// (cluster mode); trunked runs fill it from their per-batch routing.
	ShardSent map[string]uint64 `json:"shardSent,omitempty"`
	// ShardMetrics holds each shard's telemetry dump, scraped through the
	// cluster config's HTTP endpoints (cluster mode); shards whose scrape
	// failed are absent.
	ShardMetrics map[string]*telemetry.Dump `json:"shardMetrics,omitempty"`
}

// snapshot assembles a cumulative report at the given elapsed time.
func (r *Runner) snapshot(elapsed time.Duration, final bool) Report {
	c := &r.counters
	direct := r.histDirect.Snapshot()
	relayed := r.histRelay.Snapshot()
	overall := r.histDirect.Snapshot().Merge(relayed)

	rep := Report{
		Final:      final,
		ElapsedSec: elapsed.Seconds(),
		UEs:        r.cfg.UEs,
		RelayedUEs: r.relayedUEs,
		Relays:     len(r.relays),
		Arrival:    r.cfg.Arrival.Shape.String(),
		Speedup:    r.cfg.Speedup,

		SentDirect:      c.sentDirect.Load(),
		SentRelayed:     c.sentRelayed.Load(),
		AckedDirect:     c.ackedDirect.Load(),
		AckedRelayed:    c.ackedRelayed.Load(),
		TimeoutsDirect:  c.timeoutDirect.Load(),
		TimeoutsRelayed: c.timeoutRelayed.Load(),
		DialErrors:      c.dialErrors.Load(),
		WriteErrors:     c.writeErrors.Load(),
		OutOfOrderAcks:  c.outOfOrderAcks.Load(),
		FallbackResends: c.fallbackResends.Load(),
		Trunks:          r.cfg.Trunks,
		TrunkWrites:     c.trunkWrites.Load(),
		TrunkFrames:     c.trunkFrames.Load(),

		Overall: latencyStats(overall),
		Direct:  latencyStats(direct),
		Relayed: latencyStats(relayed),
	}
	rep.Sent = rep.SentDirect + rep.SentRelayed
	rep.Acked = rep.AckedDirect + rep.AckedRelayed
	rep.Timeouts = rep.TimeoutsDirect + rep.TimeoutsRelayed
	rep.Errors = rep.DialErrors + rep.WriteErrors
	if sec := elapsed.Seconds(); sec > 0 {
		rep.OfferedHBps = float64(rep.Sent) / sec
		rep.ThroughputHBps = float64(rep.Acked) / sec
	}
	if r.server != nil {
		st := r.server.Stats()
		rep.Server = &st
	}
	if len(r.relays) > 0 {
		agg := RelayStats{}
		for _, ra := range r.relays {
			st := ra.Stats()
			agg.Collected += st.Collected
			agg.Forwarded += st.Forwarded
			agg.Flushes += st.Flushes
			agg.Rejected += st.RejectedClosed + st.RejectedExpire
		}
		rep.Relay = &agg
	}
	if r.cfg.MetricsAddr != "" {
		if d, err := ScrapeDump(r.cfg.MetricsAddr, 2*time.Second); err == nil {
			rep.ServerMetrics = d
		}
	}
	if r.cluster != nil {
		view := r.cluster.View()
		rep.ClusterEpoch = view.Config.Epoch
		rep.ShardSent = r.shardSent.snapshot()
		rep.ShardMetrics = make(map[string]*telemetry.Dump, len(view.Config.Nodes))
		for _, n := range view.Config.Nodes {
			if n.HTTP == "" {
				continue
			}
			if d, err := ScrapeDumpURL(n.HTTP, time.Second); err == nil {
				rep.ShardMetrics[n.ID] = d
			}
		}
	}
	return rep
}

// LatencyTable renders the per-path latency quantiles.
func (rep Report) LatencyTable() *metrics.Table {
	t := metrics.NewTable("heartbeat→ack latency (ms)",
		"path", "count", "mean", "p50", "p95", "p99", "p999", "max")
	add := func(name string, s LatencyStats) {
		t.AddRow(name, fmt.Sprintf("%d", s.Count),
			metrics.F(s.MeanMs), metrics.F(s.P50Ms), metrics.F(s.P95Ms),
			metrics.F(s.P99Ms), metrics.F(s.P999Ms), metrics.F(s.MaxMs))
	}
	add("direct", rep.Direct)
	add("relayed", rep.Relayed)
	add("overall", rep.Overall)
	return t
}

// CountsTable renders throughput and delivery accounting.
func (rep Report) CountsTable() *metrics.Table {
	t := metrics.NewTable("delivery accounting",
		"metric", "total", "direct", "relayed")
	row := func(name string, total, d, rl uint64) {
		t.AddRow(name, fmt.Sprintf("%d", total), fmt.Sprintf("%d", d), fmt.Sprintf("%d", rl))
	}
	row("sent", rep.Sent, rep.SentDirect, rep.SentRelayed)
	row("acked", rep.Acked, rep.AckedDirect, rep.AckedRelayed)
	row("timeouts", rep.Timeouts, rep.TimeoutsDirect, rep.TimeoutsRelayed)
	if rep.FallbackResends > 0 {
		// Resends are not re-counted in sent, so acked can exceed sent by
		// up to this row.
		row("fallback resends", rep.FallbackResends, 0, rep.FallbackResends)
	}
	t.AddRow("errors", fmt.Sprintf("%d", rep.Errors),
		fmt.Sprintf("dial=%d", rep.DialErrors), fmt.Sprintf("write=%d", rep.WriteErrors))
	t.AddRow("out-of-order acks", fmt.Sprintf("%d", rep.OutOfOrderAcks), "", "")
	return t
}

// ShardTable renders per-shard routing and occupancy for cluster-mode
// runs: heartbeats the fleet addressed to each shard next to the shard's
// own presence gauge and misroute counter from its metrics scrape. Nil
// when the run had no cluster target.
func (rep Report) ShardTable() *metrics.Table {
	if len(rep.ShardSent) == 0 && len(rep.ShardMetrics) == 0 {
		return nil
	}
	ids := make(map[string]struct{}, len(rep.ShardSent)+len(rep.ShardMetrics))
	for id := range rep.ShardSent {
		ids[id] = struct{}{}
	}
	for id := range rep.ShardMetrics {
		ids[id] = struct{}{}
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)

	t := metrics.NewTable(fmt.Sprintf("cluster shards (ring epoch %d)", rep.ClusterEpoch),
		"shard", "sent", "clients", "misrouted")
	for _, id := range sorted {
		clients, misrouted := "-", "-"
		if d := rep.ShardMetrics[id]; d != nil {
			if m := d.Find("relaynet_server_presence_clients"); m != nil {
				clients = fmt.Sprintf("%.0f", m.Value)
			}
			if m := d.Find("relaynet_server_misrouted_frames_total"); m != nil {
				misrouted = fmt.Sprintf("%.0f", m.Value)
			}
		}
		t.AddRow(id, fmt.Sprintf("%d", rep.ShardSent[id]), clients, misrouted)
	}
	return t
}

// String renders the full human-readable report.
func (rep Report) String() string {
	var b strings.Builder
	kind := "interim"
	if rep.Final {
		kind = "final"
	}
	fmt.Fprintf(&b, "loadgen %s report — %d UEs (%d relayed via %d relays), arrival %s, speedup %s, elapsed %.1fs\n",
		kind, rep.UEs, rep.RelayedUEs, rep.Relays, rep.Arrival, metrics.F(rep.Speedup), rep.ElapsedSec)
	if rep.Trunks > 0 {
		fmt.Fprintf(&b, "trunked fleet: %d trunks, ~%d users per trunk connection\n",
			rep.Trunks, rep.UEs/rep.Trunks)
	}
	fmt.Fprintf(&b, "throughput %.1f hb/s acked (%.1f hb/s offered)\n\n",
		rep.ThroughputHBps, rep.OfferedHBps)
	b.WriteString(rep.CountsTable().String())
	b.WriteByte('\n')
	b.WriteString(rep.LatencyTable().String())
	if rep.Server != nil {
		fmt.Fprintf(&b, "\nserver: conns=%d direct=%d relayed=%d batches=%d late=%d protoErrs=%d idleDrops=%d\n",
			rep.Server.Connections, rep.Server.HeartbeatsDirect, rep.Server.HeartbeatsRelayed,
			rep.Server.Batches, rep.Server.Late, rep.Server.ProtocolErrors, rep.Server.IdleDrops)
	}
	if rep.Relay != nil {
		fmt.Fprintf(&b, "relays: collected=%d forwarded=%d flushes=%d rejected=%d\n",
			rep.Relay.Collected, rep.Relay.Forwarded, rep.Relay.Flushes, rep.Relay.Rejected)
	}
	if st := rep.ShardTable(); st != nil {
		b.WriteByte('\n')
		b.WriteString(st.String())
		if rep.FallbackResends > 0 {
			fmt.Fprintf(&b, "fallback resends: %d\n", rep.FallbackResends)
		}
	}
	if rep.ServerMetrics != nil {
		b.WriteByte('\n')
		b.WriteString(rep.ServerMetrics.Table().String())
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (rep Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
