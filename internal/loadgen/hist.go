// Package loadgen is an open-loop load-generation and capacity-measurement
// harness for the real heartbeat stack (internal/relaynet + internal/hbproto).
// It spawns fleets of virtual UEs and relay agents over loopback TCP against
// a presence server, shapes fleet activation with an arrival schedule
// (steady, ramp, spike), records per-heartbeat ack latency into lock-free
// sharded histograms, and renders periodic and final reports as both a human
// table (internal/metrics) and JSON.
package loadgen

import "d2dhb/internal/telemetry"

// The HDR-style log-linear histogram started life here and moved to
// internal/telemetry when it became the shared runtime-metrics primitive;
// the aliases preserve loadgen's original API (values are recorded in
// microseconds throughout this package).
type (
	// Histogram is a lock-free sharded log-linear histogram.
	Histogram = telemetry.Histogram
	// Recorder records observations into one histogram shard.
	Recorder = telemetry.Recorder
	// HistSnapshot is a point-in-time merge of every shard.
	HistSnapshot = telemetry.HistSnapshot
)

// NewHistogram builds a histogram with the given shard count (values < 1
// are clamped to 1).
func NewHistogram(shards int) *Histogram { return telemetry.NewHistogram(shards) }
