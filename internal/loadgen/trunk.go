package loadgen

import (
	"cmp"
	"net"
	"slices"
	"sync"
	"time"

	"d2dhb/internal/cluster"
	"d2dhb/internal/hbproto"
	"d2dhb/internal/rec"
)

// maxTrunkBatch caps heartbeats per Batch frame: hbproto bounds frames at
// MaxFrameSize and one encoded heartbeat is a few dozen bytes, so 4096
// leaves comfortable headroom while keeping syscall counts low.
const maxTrunkBatch = 4096

// tuser is one multiplexed virtual user on a trunk.
type tuser struct {
	id   string
	seq  uint64
	last uint64 // highest acknowledged seq
}

// hbref identifies one in-flight heartbeat: user index + sequence number.
type hbref struct {
	idx int
	seq uint64
}

// sortRefs orders refs by (user index, seq): the canonical walk order for
// anything that records trace events per ref, since map iteration over
// pending sets is nondeterministic.
func sortRefs(refs []hbref) {
	slices.SortFunc(refs, func(a, b hbref) int {
		if c := cmp.Compare(a.idx, b.idx); c != 0 {
			return c
		}
		return cmp.Compare(a.seq, b.seq)
	})
}

// trunk multiplexes many virtual users over one hbproto relay connection
// per target shard — the paper's aggregation argument applied to the load
// generator itself, and the only way a single box offers a million users
// (per-UE sockets exhaust ephemeral ports around a few tens of thousands
// per destination). Every tick each user emits one heartbeat; the trunk
// partitions them per owning shard under a single ring view and writes one
// Batch per shard. In cluster mode a heartbeat whose ack misses the window
// is re-sent once through the then-current view before a second miss counts
// as a timeout, mirroring the vue fallback that keeps reshards lossless.
type trunk struct {
	id      string
	app     string
	addr    string // single-target address; ignored in cluster mode
	period  time.Duration
	expiry  time.Duration
	pad     int
	timeout time.Duration
	rec     *Recorder
	trec    *rec.Recorder // trace recorder; nil-safe
	trecIdx []int         // per-user trace client indices (immutable after build)
	c       *fleetCounters
	dial    func(network, addr string) (net.Conn, error)
	cluster *cluster.Client // nil targets addr directly
	shards  *shardCounter
	readers *sync.WaitGroup

	// paceSlots spreads each period's emissions over this many sub-ticks
	// (≤1 disables pacing: the whole fleet bursts at once). slotUsers is
	// the deterministic user→slot partition, immutable after build.
	paceSlots int
	slotUsers [][]int

	// Encode scratch owned by the send path. run() is the only sender
	// while load is offered and drain() sweeps only after the send loop
	// has exited (sendWg.Wait precedes it), so no lock is needed.
	sendBuf   []byte
	hbScratch []hbproto.Heartbeat
	batchMsg  hbproto.Batch

	mu       sync.Mutex
	users    []tuser
	index    map[string]int  // user id → index (ids are immutable after build)
	pending  map[hbref]int64 // in-flight heartbeat → send time (UnixNano)
	fellBack map[hbref]bool  // heartbeats already re-sent; nil disables fallback
	conns    map[string]net.Conn
	closed   bool
}

// run is the send loop: activate after the arrival offset, then batch one
// heartbeat per user every period until the run stops. With pacing enabled
// the period is divided into paceSlots sub-ticks and each user's emission
// lands in its deterministically assigned slot — every user still sends
// exactly once per period (the open-loop schedule is preserved), only the
// intra-period phase changes, which flattens the per-period burst the
// server would otherwise absorb all at once.
func (t *trunk) run(done <-chan struct{}, offset time.Duration, sendWg *sync.WaitGroup) {
	defer sendWg.Done()
	if offset > 0 {
		select {
		case <-done:
			return
		case <-time.After(offset):
		}
	}
	slots := t.paceSlots
	if slots <= 1 || len(t.slotUsers) != slots {
		tick := time.NewTicker(t.period)
		defer tick.Stop()
		t.tick()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				t.tick()
			}
		}
	}
	tick := time.NewTicker(t.period / time.Duration(slots))
	defer tick.Stop()
	slot := 0
	t.tickSlot(slot)
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			slot = (slot + 1) % slots
			t.tickSlot(slot)
		}
	}
}

// tick is one heartbeat interval for every user on the trunk: expire and
// re-send stale pendings, then emit the fresh round.
func (t *trunk) tick() {
	now := time.Now()
	resend := t.collectExpired(now)
	t.emit(nil, now, resend)
}

// tickSlot is one paced sub-tick: emit the users assigned to this slot.
// Expiry collection runs once per full period (on slot 0), matching the
// unpaced cadence so fallback/timeout timing is unchanged by pacing.
func (t *trunk) tickSlot(slot int) {
	now := time.Now()
	var resend []hbref
	if slot == 0 {
		resend = t.collectExpired(now)
	}
	t.emit(t.slotUsers[slot], now, resend)
}

// emit sends one fresh heartbeat for each listed user index (nil means the
// whole fleet) plus any expired re-sends.
func (t *trunk) emit(idxs []int, now time.Time, resend []hbref) {
	nano := now.UnixNano()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	n := len(idxs)
	if idxs == nil {
		n = len(t.users)
	}
	fresh := make([]hbref, n)
	for j := 0; j < n; j++ {
		i := j
		if idxs != nil {
			i = idxs[j]
		}
		t.users[i].seq++
		ref := hbref{i, t.users[i].seq}
		t.pending[ref] = nano
		fresh[j] = ref
	}
	t.mu.Unlock()
	if len(fresh) > 0 {
		t.send(fresh, now, false)
	}
	if len(resend) > 0 {
		t.send(resend, now, true)
	}
}

// paceSlot deterministically assigns a user to one of slots emission slots:
// FNV-1a over the trunk and user IDs. Seeded jitter with no RNG and no wall
// clock, so repeated runs (and record/replay) see an identical schedule.
func paceSlot(trunkID, userID string, slots int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(trunkID); i++ {
		h = (h ^ uint64(trunkID[i])) * prime64
	}
	h = (h ^ 0xff) * prime64 // separator: ("a","bc") must differ from ("ab","c")
	for i := 0; i < len(userID); i++ {
		h = (h ^ uint64(userID[i])) * prime64
	}
	return int(h % uint64(slots))
}

// send partitions heartbeats per owning shard under one ring view (so a
// round never mixes epochs) and writes one chunked Batch per shard.
func (t *trunk) send(refs []hbref, now time.Time, fallback bool) {
	if t.cluster == nil {
		t.sendShard("", refs, now, fallback)
		return
	}
	view := t.cluster.View()
	keys := make([]string, len(refs))
	for i, ref := range refs {
		keys[i] = t.users[ref.idx].id
	}
	for _, g := range view.Ring().GroupSorted(keys) {
		group := make([]hbref, len(g.Idxs))
		for j, k := range g.Idxs {
			group[j] = refs[k]
		}
		t.sendShard(g.Shard, group, now, fallback)
	}
}

// sendShard writes one shard's heartbeats as Batch frames, composing every
// chunk frame into one reusable buffer and issuing a single write — the
// syscall count per emission is one per shard, not one per 4096 heartbeats.
// Failures leave the pending entries in place when fallback is available
// (the sweep re-sends them through a newer view) and write them off as
// transport errors otherwise.
func (t *trunk) sendShard(shard string, refs []hbref, now time.Time, fallback bool) {
	conn := t.ensureConn(shard)
	if conn == nil {
		t.c.dialErrors.Add(1)
		t.abandon(refs)
		return
	}
	out := t.sendBuf[:0]
	frames := uint64(0)
	for start := 0; start < len(refs); start += maxTrunkBatch {
		end := min(start+maxTrunkBatch, len(refs))
		chunk := refs[start:end]
		if cap(t.hbScratch) < len(chunk) {
			t.hbScratch = make([]hbproto.Heartbeat, len(chunk))
		}
		hbs := t.hbScratch[:len(chunk)]
		for i, ref := range chunk {
			hbs[i] = hbproto.Heartbeat{
				Src: t.users[ref.idx].id, Seq: ref.seq, App: t.app,
				Origin: now, Expiry: t.expiry, Pad: t.pad,
			}
		}
		t.batchMsg.Relay, t.batchMsg.HBs = t.id, hbs
		var err error
		out, err = hbproto.AppendFrame(out, &t.batchMsg)
		t.batchMsg.HBs = nil
		if err != nil {
			// Encode failure is a bug, not a transport fault: write the
			// refs off without dropping the (healthy) connection.
			t.c.writeErrors.Add(1)
			t.abandon(refs)
			return
		}
		frames++
	}
	t.sendBuf = out[:0]
	if _, err := conn.Write(out); err != nil {
		t.c.writeErrors.Add(1)
		t.dropConn(shard, conn)
		t.abandon(refs)
		return
	}
	t.c.trunkWrites.Add(1)
	t.c.trunkFrames.Add(frames)
	if fallback {
		t.c.fallbackResends.Add(uint64(len(refs)))
	} else {
		t.c.sentRelayed.Add(uint64(len(refs)))
		for _, ref := range refs {
			t.trec.Record(rec.EvSend, t.recIdx(ref.idx), ref.seq, now)
		}
	}
	if shard != "" {
		t.shards.add(shard, uint64(len(refs)))
	}
}

// recIdx maps a user index to its trace client index (-1 when the trunk
// was built without a recorder).
func (t *trunk) recIdx(i int) int {
	if i < 0 || i >= len(t.trecIdx) {
		return -1
	}
	return t.trecIdx[i]
}

// abandon handles heartbeats that never hit the wire. With fallback
// enabled they stay pending — the sweep re-sends them through the current
// view once routes converge; without it they are removed so a transport
// error is not double-counted as an ack timeout.
func (t *trunk) abandon(refs []hbref) {
	if t.fellBack != nil {
		return
	}
	t.mu.Lock()
	for _, ref := range refs {
		delete(t.pending, ref)
	}
	t.mu.Unlock()
}

// collectExpired marks pendings older than the ack timeout: first expiry
// with fallback enabled re-arms the clock and returns the heartbeat for a
// direct re-send; anything else is written off as a timeout.
func (t *trunk) collectExpired(now time.Time) []hbref {
	cutoff := now.Add(-t.timeout).UnixNano()
	var resend []hbref
	t.mu.Lock()
	// Collect and sort before acting: the fallback/timeout decisions and
	// the trace records must not depend on map iteration order.
	var expired []hbref
	for ref, at := range t.pending {
		if at < cutoff {
			expired = append(expired, ref)
		}
	}
	sortRefs(expired)
	for _, ref := range expired {
		if t.fellBack != nil && !t.fellBack[ref] {
			t.fellBack[ref] = true
			t.pending[ref] = now.UnixNano()
			resend = append(resend, ref)
			continue
		}
		delete(t.pending, ref)
		if t.fellBack != nil {
			delete(t.fellBack, ref)
		}
		t.c.timeoutRelayed.Add(1)
		t.trec.Record(rec.EvTimeout, t.recIdx(ref.idx), ref.seq, now)
	}
	t.mu.Unlock()
	return resend
}

// sweep re-sends expired heartbeats (drain-phase entry point; tick folds
// the same collection into its round).
func (t *trunk) sweep(now time.Time) {
	if resend := t.collectExpired(now); len(resend) > 0 {
		t.send(resend, now, true)
	}
}

// ensureConn returns the live connection for a shard, resolving the
// address through the current cluster config and registering as a relay
// when dialing fresh.
func (t *trunk) ensureConn(shard string) net.Conn {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	if conn := t.conns[shard]; conn != nil {
		t.mu.Unlock()
		return conn
	}
	t.mu.Unlock()

	addr := t.addr
	if t.cluster != nil {
		node, ok := t.cluster.View().Config.Node(shard)
		if !ok {
			return nil
		}
		addr = node.Addr
	}
	conn, err := t.dial("tcp", addr)
	if err != nil {
		return nil
	}
	if err := hbproto.WriteFrame(conn, &hbproto.Register{
		ID: t.id, Role: hbproto.RoleRelay, App: t.app,
		Period: t.period, Expiry: t.expiry,
	}); err != nil {
		_ = conn.Close()
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	if existing := t.conns[shard]; existing != nil {
		t.mu.Unlock()
		_ = conn.Close()
		return existing
	}
	t.conns[shard] = conn
	t.mu.Unlock()
	t.readers.Add(1)
	go t.reader(shard, conn)
	return conn
}

// dropConn forgets a shard's connection if still current and closes it.
func (t *trunk) dropConn(shard string, conn net.Conn) {
	t.mu.Lock()
	if t.conns[shard] == conn {
		delete(t.conns, shard)
	}
	t.mu.Unlock()
	_ = conn.Close()
}

// reader matches batch-ack refs against pending heartbeats and records
// latency; stale refs for superseded or already-settled sends are ignored.
func (t *trunk) reader(shard string, conn net.Conn) {
	defer t.readers.Done()
	// Streaming zero-alloc decode: the reader processes each message inline
	// and retains nothing past the iteration (ref fields are consumed under
	// t.mu), so the FrameReader's buffer reuse is safe here.
	fr := hbproto.NewFrameReader(conn)
	for {
		msg, err := fr.Next()
		if err != nil {
			t.dropConn(shard, conn)
			return
		}
		ack, ok := msg.(*hbproto.Ack)
		if !ok {
			continue
		}
		ackAt := time.Now()
		now := ackAt.UnixNano()
		t.mu.Lock()
		for _, ref := range ack.Refs {
			i, ok := t.index[ref.Src]
			if !ok {
				continue
			}
			key := hbref{i, ref.Seq}
			at, ok := t.pending[key]
			if !ok {
				continue
			}
			delete(t.pending, key)
			if t.fellBack != nil {
				delete(t.fellBack, key)
			}
			t.rec.Record(uint64(now-at) / 1000)
			t.trec.Record(rec.EvAck, t.recIdx(i), ref.Seq, ackAt)
			t.c.ackedRelayed.Add(1)
			if ref.Seq <= t.users[i].last {
				t.c.outOfOrderAcks.Add(1)
			} else {
				t.users[i].last = ref.Seq
			}
		}
		t.mu.Unlock()
	}
}

// pendingCount returns how many heartbeats still await acknowledgement.
func (t *trunk) pendingCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// expireAll writes off every remaining pending heartbeat (end-of-run
// drain).
func (t *trunk) expireAll() {
	now := time.Now()
	t.mu.Lock()
	n := len(t.pending)
	// Sorted drain, same reason as collectExpired: trace records in
	// canonical (user, seq) order rather than map order.
	refs := make([]hbref, 0, n)
	for ref := range t.pending {
		refs = append(refs, ref)
	}
	sortRefs(refs)
	for _, ref := range refs {
		t.trec.Record(rec.EvTimeout, t.recIdx(ref.idx), ref.seq, now)
	}
	t.pending = make(map[hbref]int64)
	if t.fellBack != nil {
		t.fellBack = make(map[hbref]bool)
	}
	t.mu.Unlock()
	t.c.timeoutRelayed.Add(uint64(n))
}

// close shuts every shard connection down; readers exit on the closed
// conns.
func (t *trunk) close() {
	t.mu.Lock()
	t.closed = true
	conns := t.conns
	t.conns = make(map[string]net.Conn)
	t.mu.Unlock()
	for _, conn := range conns {
		_ = conn.Close()
	}
}
