package loadgen

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"d2dhb/internal/hbmsg"
)

// fastProfile is a compressed app profile for short test runs. The 3×
// expiry mirrors commercial apps ("usually set as 3T", Section III) and
// gives relays slack to collect under scheduler-noisy CI runs.
func fastProfile(period time.Duration) hbmsg.AppProfile {
	return hbmsg.AppProfile{
		Name: "fast", Period: period, Size: 54,
		ExpiryFactor: 3, HeartbeatShare: 0.5, DataMsgSize: 100,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{UEs: 10},
		{UEs: -1, Duration: time.Second},
		{UEs: 10, Duration: time.Second, RelayRatio: 1.5},
		{UEs: 10, Duration: time.Second, Relays: -1},
		{UEs: 10, Duration: time.Second, Speedup: -2},
		{UEs: 10, Duration: time.Second, Profiles: []hbmsg.AppProfile{{Name: "broken"}}},
		{UEs: 10, Duration: time.Second, TrunkPaceSlots: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{UEs: 1, Duration: time.Second}); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
}

func TestDirectFleetSmallRun(t *testing.T) {
	r, err := New(Config{
		UEs:      40,
		Profiles: []hbmsg.AppProfile{fastProfile(80 * time.Millisecond)},
		Duration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Final {
		t.Error("final report not marked final")
	}
	if rep.Sent == 0 {
		t.Fatal("no heartbeats sent")
	}
	if rep.Acked != rep.Sent {
		t.Fatalf("acked %d != sent %d (timeouts %d, errors %d)",
			rep.Acked, rep.Sent, rep.Timeouts, rep.Errors)
	}
	if rep.Timeouts != 0 || rep.Errors != 0 || rep.OutOfOrderAcks != 0 {
		t.Fatalf("losses on loopback: %+v", rep)
	}
	if rep.SentRelayed != 0 || rep.Relay != nil {
		t.Fatal("relay traffic without relays")
	}
	if rep.Direct.Count != rep.Acked {
		t.Fatalf("latency count %d != acked %d", rep.Direct.Count, rep.Acked)
	}
	if rep.ThroughputHBps <= 0 {
		t.Fatal("zero throughput")
	}
	if rep.Server == nil || rep.Server.HeartbeatsDirect == 0 {
		t.Fatalf("server stats missing: %+v", rep.Server)
	}
}

func TestPeriodicReports(t *testing.T) {
	var got []Report
	r, err := New(Config{
		UEs:         10,
		Profiles:    []hbmsg.AppProfile{fastProfile(50 * time.Millisecond)},
		Duration:    900 * time.Millisecond,
		ReportEvery: 250 * time.Millisecond,
		OnReport:    func(rep Report) { got = append(got, rep) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("got %d interim reports, want >= 2", len(got))
	}
	for _, rep := range got {
		if rep.Final {
			t.Fatal("interim report marked final")
		}
	}
	if got[len(got)-1].Sent < got[0].Sent {
		t.Fatal("cumulative counts went backwards")
	}
}

func TestReportRendering(t *testing.T) {
	r, err := New(Config{
		UEs:      8,
		Profiles: []hbmsg.AppProfile{fastProfile(60 * time.Millisecond)},
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"final report", "delivery accounting", "heartbeat→ack latency", "server:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report text missing %q:\n%s", want, s)
		}
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.Sent != rep.Sent || back.Overall.Count != rep.Overall.Count {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, rep)
	}
}

func TestArrivalRampActivatesFleetGradually(t *testing.T) {
	r, err := New(Config{
		UEs:      20,
		Profiles: []hbmsg.AppProfile{fastProfile(100 * time.Millisecond)},
		Duration: time.Second,
		Arrival:  Schedule{Shape: ArrivalRamp, Window: 800 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acked != rep.Sent || rep.Sent == 0 {
		t.Fatalf("ramp run lost heartbeats: %+v", rep)
	}
	// The last UE activates at 0.8 s of a 1 s run: it sends at most a
	// couple of heartbeats while the first sends ~10, so the total is
	// well below the all-at-once figure.
	if max := uint64(20 * 11); rep.Sent >= max {
		t.Fatalf("sent %d, expected ramp to shed early load (< %d)", rep.Sent, max)
	}
}

// TestConcurrentFleetStress is the concurrent-fleet stress test: ≥200 UEs
// plus several relays over loopback, run under -race in CI, asserting zero
// lost heartbeats and monotonic per-UE ack refs.
func TestConcurrentFleetStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	r, err := New(Config{
		UEs:        200,
		Relays:     3,
		RelayRatio: 0.5,
		Profiles:   []hbmsg.AppProfile{fastProfile(500 * time.Millisecond)},
		Duration:   2500 * time.Millisecond,
		AckTimeout: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.SentRelayed == 0 || rep.SentDirect == 0 {
		t.Fatalf("both paths should carry traffic: %+v", rep)
	}
	// Zero lost heartbeats: everything sent was acknowledged.
	if rep.Acked != rep.Sent {
		t.Fatalf("lost heartbeats: sent=%d acked=%d timeouts=%d errors=%d",
			rep.Sent, rep.Acked, rep.Timeouts, rep.Errors)
	}
	if rep.Timeouts != 0 || rep.Errors != 0 {
		t.Fatalf("timeouts/errors on loopback: %+v", rep)
	}
	// Monotonic ack refs: no UE ever saw an ack for a seq at or below one
	// already acknowledged.
	if rep.OutOfOrderAcks != 0 {
		t.Fatalf("out-of-order acks: %d", rep.OutOfOrderAcks)
	}
	if rep.Server == nil || rep.Server.HeartbeatsRelayed == 0 || rep.Server.HeartbeatsDirect == 0 {
		t.Fatalf("server should see both paths: %+v", rep.Server)
	}
	if rep.Relay == nil || rep.Relay.Forwarded == 0 {
		t.Fatalf("relays idle: %+v", rep.Relay)
	}
}

// An external server that never answers must abort the run at startup:
// burning the full duration on dial errors and then reporting zero
// heartbeats as a "measurement" hides the failure behind exit 0.
func TestExternalServerUnreachableFailsFast(t *testing.T) {
	// Reserve a port, then close the listener so nothing answers there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	r, err := New(Config{
		UEs:        5,
		Profiles:   []hbmsg.AppProfile{fastProfile(50 * time.Millisecond)},
		Duration:   10 * time.Second, // must NOT be waited out
		ServerAddr: addr,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := r.Run(); err == nil {
		t.Fatal("Run succeeded against an unreachable server")
	} else if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("unexpected error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v; the probe should fail well before the run duration", elapsed)
	}
}

// TestPaceSlotDeterministicPartition pins the seeded-jitter slot
// assignment: stable across calls, spread over every slot at realistic
// fleet sizes, and sensitive to the trunk ID (two trunks do not share a
// phase pattern).
func TestPaceSlotDeterministicPartition(t *testing.T) {
	const slots = 8
	counts := make([]int, slots)
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("loadue-%07d", i)
		s := paceSlot("loadtrunk-0000", id, slots)
		if s < 0 || s >= slots {
			t.Fatalf("slot %d out of range", s)
		}
		if again := paceSlot("loadtrunk-0000", id, slots); again != s {
			t.Fatalf("paceSlot not deterministic: %d then %d", s, again)
		}
		counts[s]++
	}
	differs := false
	for s := 0; s < slots; s++ {
		if counts[s] == 0 {
			t.Fatalf("slot %d empty across 4096 users: %v", s, counts)
		}
		id := fmt.Sprintf("loadue-%07d", s)
		if paceSlot("loadtrunk-0000", id, slots) != paceSlot("loadtrunk-0001", id, slots) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("slot assignment ignores the trunk ID")
	}
}

// TestTrunkPacedRunLossless runs a paced trunked fleet against the
// in-process server: pacing must not lose or duplicate heartbeats (the
// open-loop schedule is preserved, only intra-period phase changes), and
// the coalesced uplink must report fewer writes than frames would imply.
func TestTrunkPacedRunLossless(t *testing.T) {
	r, err := New(Config{
		UEs:            120,
		Trunks:         2,
		TrunkPaceSlots: 4,
		Profiles:       []hbmsg.AppProfile{fastProfile(100 * time.Millisecond)},
		Duration:       time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range r.units { // pacing must actually be armed
		tr := u.(*trunk)
		if tr.paceSlots != 4 || len(tr.slotUsers) != 4 {
			t.Fatalf("trunk %s pacing not armed: slots=%d partitions=%d",
				tr.id, tr.paceSlots, len(tr.slotUsers))
		}
		users := 0
		for _, idxs := range tr.slotUsers {
			users += len(idxs)
		}
		if users != len(tr.users) {
			t.Fatalf("trunk %s partition covers %d of %d users", tr.id, users, len(tr.users))
		}
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("no heartbeats sent")
	}
	if rep.Acked != rep.Sent || rep.Timeouts != 0 || rep.Errors != 0 {
		t.Fatalf("paced run lost heartbeats: acked %d / sent %d (timeouts %d, errors %d)",
			rep.Acked, rep.Sent, rep.Timeouts, rep.Errors)
	}
	if rep.TrunkWrites == 0 || rep.TrunkFrames == 0 {
		t.Fatalf("coalesced uplink accounting missing: writes=%d frames=%d",
			rep.TrunkWrites, rep.TrunkFrames)
	}
	if rep.TrunkWrites > rep.TrunkFrames {
		t.Fatalf("more writes than frames: writes=%d frames=%d",
			rep.TrunkWrites, rep.TrunkFrames)
	}
	if rep.Server == nil || rep.Server.HeartbeatsRelayed == 0 {
		t.Fatalf("server saw no relayed heartbeats: %+v", rep.Server)
	}
}
