package loadgen

// Live trace replay: ReplayLive drives a recorded timeline (internal/rec)
// through the real TCP stack. Direct clients replay over their own
// connections exactly like vues; relayed and trunked clients replay
// through one trunk connection per recorded relay group, with consecutive
// sends coalesced into Batch frames by their *recorded* gaps — so the
// batching structure is a deterministic function of the trace even though
// wall-clock latencies are not. The same trace file replayed through
// experiments.ReplaySim gives the sim column of the parity report; this
// gives the live column.

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"d2dhb/internal/cluster"
	"d2dhb/internal/faultnet"
	"d2dhb/internal/hbproto"
	"d2dhb/internal/rec"
	"d2dhb/internal/relaynet"
)

// ReplayOptions parameterizes one live replay.
type ReplayOptions struct {
	// ServerAddr targets an existing presence server. Empty spawns an
	// in-process relaynet.Server on loopback.
	ServerAddr string
	// ClusterAddr targets a cluster instead of a single server: the
	// router's base URL (e.g. "http://127.0.0.1:7590"). The replay
	// resolves every client's owning shard through the epoch config —
	// direct clients dial their owner, trunk groups partition each batch
	// per shard under one ring view — so a trace recorded against a
	// cluster replays through the same routing function. Overrides
	// ServerAddr.
	ClusterAddr string
	// Speedup divides recorded offsets so long recordings replay quickly.
	// Zero means 1.
	Speedup float64
	// AckTimeout bounds the post-send drain wait. Zero selects 2 s.
	AckTimeout time.Duration
	// Coalesce folds consecutive same-group sends whose *recorded* gap is
	// at most this into one Batch frame. Zero selects 2 ms. The decision
	// uses recorded instants, never the wall clock, so two replays of the
	// same trace always build the same frames.
	Coalesce time.Duration
	// Faults re-injects a fault schedule into every replay dial. Nil
	// replays over a clean network.
	Faults *faultnet.Schedule
}

// replayKey identifies one in-flight replayed heartbeat.
type replayKey struct {
	id  string
	seq uint64
}

// replayUnit is one connection's worth of replayed clients: a single
// direct client, or every client of one relay/trunk group.
type replayUnit struct {
	group   int // -1 for a direct unit
	relayID string
	sends   []rec.Event
}

// liveReplay is the shared state of one ReplayLive run.
type liveReplay struct {
	tl      *rec.Timeline
	opts    ReplayOptions
	addr    string
	cluster *cluster.Client // nil outside cluster mode
	start   time.Time

	mu        sync.Mutex
	pending   map[replayKey]time.Time
	lat       *rec.Sample
	delivered uint64
	uplinks   uint64
	batches   uint64
	werrs     uint64
	conns     []net.Conn

	readers sync.WaitGroup
}

// ReplayLive replays the recorded timeline against the live stack and
// returns the measured outcome.
func ReplayLive(tl *rec.Timeline, opts ReplayOptions) (rec.Metrics, error) {
	if tl == nil {
		return rec.Metrics{}, fmt.Errorf("loadgen: nil timeline")
	}
	if err := tl.Validate(); err != nil {
		return rec.Metrics{}, err
	}
	if opts.ClusterAddr != "" && opts.ServerAddr != "" {
		return rec.Metrics{}, fmt.Errorf("loadgen: cluster and server replay targets are mutually exclusive")
	}
	if opts.Speedup <= 0 {
		opts.Speedup = 1
	}
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 2 * time.Second
	}
	if opts.Coalesce <= 0 {
		opts.Coalesce = 2 * time.Millisecond
	}

	r := &liveReplay{
		tl:      tl,
		opts:    opts,
		pending: make(map[replayKey]time.Time),
		lat:     rec.NewSample(),
	}

	var server *relaynet.Server
	r.addr = opts.ServerAddr
	switch {
	case opts.ClusterAddr != "":
		cc, err := cluster.NewClient(cluster.ClientConfig{RouterURL: clusterURL(opts.ClusterAddr)})
		if err != nil {
			return rec.Metrics{}, err
		}
		defer cc.Close()
		r.cluster = cc
	case r.addr == "":
		server = relaynet.NewServer()
		if err := server.Start("127.0.0.1:0"); err != nil {
			return rec.Metrics{}, err
		}
		defer server.Shutdown()
		r.addr = server.Addr()
	}

	// Split the send timeline into per-connection units, preserving order.
	direct := make(map[int]*replayUnit)
	groups := make(map[int]*replayUnit)
	for _, e := range tl.Events {
		if e.Kind != rec.EvSend {
			continue
		}
		c := tl.Clients[e.Client]
		var u *replayUnit
		if c.Relay < 0 {
			if u = direct[e.Client]; u == nil {
				u = &replayUnit{group: -1}
				direct[e.Client] = u
			}
		} else {
			if u = groups[c.Relay]; u == nil {
				u = &replayUnit{group: c.Relay, relayID: fmt.Sprintf("replay-trunk-%04d", c.Relay)}
				groups[c.Relay] = u
			}
		}
		u.sends = append(u.sends, e)
	}
	units := make([]*replayUnit, 0, len(direct)+len(groups))
	for _, u := range direct {
		units = append(units, u)
	}
	for _, u := range groups {
		units = append(units, u)
	}
	// Map iteration order is random; fix the spawn order so runs are
	// structurally identical.
	sort.Slice(units, func(i, j int) bool {
		if units[i].group != units[j].group {
			return units[i].group < units[j].group
		}
		return units[i].sends[0].Client < units[j].sends[0].Client
	})

	var sendWg sync.WaitGroup
	r.start = time.Now()
	if opts.Faults != nil {
		opts.Faults.Start()
	}
	for _, u := range units {
		sendWg.Add(1)
		go func(u *replayUnit) {
			defer sendWg.Done()
			r.runUnit(u)
		}(u)
	}
	sendWg.Wait()

	// Drain: give in-flight acks one timeout window to land.
	deadline := time.Now().Add(opts.AckTimeout)
	for time.Now().Before(deadline) {
		r.mu.Lock()
		n := len(r.pending)
		r.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.mu.Lock()
	conns := r.conns
	r.conns = nil
	r.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	r.readers.Wait()

	m := rec.Metrics{Source: "live"}
	r.mu.Lock()
	m.Sent = uint64(len(r.pending)) + r.delivered + r.werrs
	m.Delivered = r.delivered
	m.Timeouts = uint64(len(r.pending)) + r.werrs
	m.AckLatency = r.lat.Quantiles()
	m.Signaling.Uplinks = r.uplinks
	m.Signaling.Batches = r.batches
	r.mu.Unlock()
	m.Finish()
	return m, nil
}

// pace sleeps until the recorded offset's replay instant.
func (r *liveReplay) pace(at time.Duration) {
	target := r.start.Add(time.Duration(float64(at) / r.opts.Speedup))
	if d := time.Until(target); d > 0 {
		time.Sleep(d)
	}
}

// ownerAddr resolves where a client's heartbeats go: its owning shard's
// listener in cluster mode (through the current ring view), the fixed
// server address otherwise.
func (r *liveReplay) ownerAddr(clientID string) string {
	if r.cluster == nil {
		return r.addr
	}
	if node, ok := r.cluster.View().Owner(clientID); ok {
		return node.Addr
	}
	return r.addr
}

// dial opens a server connection to addr, optionally through the fault
// schedule, and starts its ack reader.
func (r *liveReplay) dial(addr string, register *hbproto.Register) net.Conn {
	dial := net.Dial
	if r.opts.Faults != nil {
		dial = r.opts.Faults.Dial
	}
	conn, err := dial("tcp", addr)
	if err != nil {
		return nil
	}
	if register != nil {
		if err := hbproto.WriteFrame(conn, register); err != nil {
			_ = conn.Close()
			return nil
		}
	}
	r.readers.Add(1)
	go r.reader(conn)
	return conn
}

// runUnit replays one connection's send subsequence.
func (r *liveReplay) runUnit(u *replayUnit) {
	if u.group < 0 {
		r.runDirect(u)
		return
	}
	r.runTrunk(u)
}

// runDirect replays a direct client: one heartbeat frame per recorded
// send, paced to the recorded offsets.
func (r *liveReplay) runDirect(u *replayUnit) {
	c := r.tl.Clients[u.sends[0].Client]
	conn := r.dial(r.ownerAddr(c.ID), nil)
	for _, e := range u.sends {
		r.pace(e.At)
		if conn == nil {
			// Re-resolve on every redial: a reshard between batches moves
			// the client's owner, and the replay should follow it the way
			// the live fleet does.
			conn = r.dial(r.ownerAddr(c.ID), nil)
		}
		if conn == nil {
			r.noteWriteError(1)
			continue
		}
		now := time.Now()
		hb := &hbproto.Heartbeat{
			Src: c.ID, Seq: e.Seq, App: c.App,
			Origin: now, Expiry: c.Expiry, Pad: c.Pad,
		}
		r.track(replayKey{c.ID, e.Seq}, now)
		if err := hbproto.WriteFrame(conn, hb); err != nil {
			r.untrack(replayKey{c.ID, e.Seq})
			r.noteWriteError(1)
			_ = conn.Close()
			conn = nil
			continue
		}
		r.noteUplink(false)
	}
	if conn != nil {
		r.keep(conn)
	}
}

// runTrunk replays one relay/trunk group: consecutive sends within the
// recorded coalesce window become one Batch frame, written at the last
// member's offset — exactly the aggregation the group performed live. In
// cluster mode each coalesced batch is partitioned per owning shard under
// one ring view (one connection per shard), the same split the live trunk
// performs.
func (r *liveReplay) runTrunk(u *replayUnit) {
	conns := make(map[string]net.Conn) // shard ID → conn; "" single-server
	for i := 0; i < len(u.sends); {
		// The batch is [i, j): recorded gaps ≤ Coalesce, bounded by the
		// trace's relay capacity when one is recorded.
		j := i + 1
		for j < len(u.sends) && u.sends[j].At-u.sends[j-1].At <= r.opts.Coalesce {
			if r.tl.RelayCapacity > 0 && j-i >= r.tl.RelayCapacity {
				break
			}
			j++
		}
		r.pace(u.sends[j-1].At)
		if r.cluster == nil {
			r.sendTrunkBatch(conns, u, "", r.addr, u.sends[i:j])
		} else {
			view := r.cluster.View()
			keys := make([]string, j-i)
			for k, e := range u.sends[i:j] {
				keys[k] = r.tl.Clients[e.Client].ID
			}
			for _, g := range view.Ring().GroupSorted(keys) {
				sub := make([]rec.Event, len(g.Idxs))
				for k, idx := range g.Idxs {
					sub[k] = u.sends[i+idx]
				}
				addr := r.addr
				if node, ok := view.Config.Node(g.Shard); ok {
					addr = node.Addr
				}
				r.sendTrunkBatch(conns, u, g.Shard, addr, sub)
			}
		}
		i = j
	}
	for _, conn := range conns {
		r.keep(conn)
	}
}

// sendTrunkBatch writes one (shard-local) Batch frame on the group's
// cached connection to that shard, redialing once per batch if needed.
func (r *liveReplay) sendTrunkBatch(conns map[string]net.Conn, u *replayUnit, shard, addr string, events []rec.Event) {
	conn := conns[shard]
	if conn == nil {
		conn = r.dial(addr, &hbproto.Register{
			ID: u.relayID, Role: hbproto.RoleRelay, App: "replay",
			Period: r.tl.RelayPeriod, Expiry: r.tl.RelayPeriod,
		})
		if conn == nil {
			r.noteWriteError(len(events))
			return
		}
		conns[shard] = conn
	}
	now := time.Now()
	b := &hbproto.Batch{Relay: u.relayID, HBs: make([]hbproto.Heartbeat, 0, len(events))}
	for _, e := range events {
		c := r.tl.Clients[e.Client]
		b.HBs = append(b.HBs, hbproto.Heartbeat{
			Src: c.ID, Seq: e.Seq, App: c.App,
			Origin: now, Expiry: c.Expiry, Pad: c.Pad,
		})
		r.track(replayKey{c.ID, e.Seq}, now)
	}
	if err := hbproto.WriteFrame(conn, b); err != nil {
		for _, e := range events {
			r.untrack(replayKey{r.tl.Clients[e.Client].ID, e.Seq})
		}
		r.noteWriteError(len(events))
		_ = conn.Close()
		delete(conns, shard)
		return
	}
	r.noteUplink(true)
}

// keep parks a finished unit's connection so the drain phase can still
// collect its acks; ReplayLive closes it after the drain.
func (r *liveReplay) keep(conn net.Conn) {
	r.mu.Lock()
	r.conns = append(r.conns, conn)
	r.mu.Unlock()
}

func (r *liveReplay) track(k replayKey, at time.Time) {
	r.mu.Lock()
	r.pending[k] = at
	r.mu.Unlock()
}

func (r *liveReplay) untrack(k replayKey) {
	r.mu.Lock()
	delete(r.pending, k)
	r.mu.Unlock()
}

func (r *liveReplay) noteWriteError(n int) {
	r.mu.Lock()
	r.werrs += uint64(n)
	r.mu.Unlock()
}

func (r *liveReplay) noteUplink(batch bool) {
	r.mu.Lock()
	r.uplinks++
	if batch {
		r.batches++
	}
	r.mu.Unlock()
}

// reader consumes acks/feedback and settles pending heartbeats.
func (r *liveReplay) reader(conn net.Conn) {
	defer r.readers.Done()
	// Inline processing: refs are consumed under r.mu before the next
	// Next() call, and the interned Src strings promoted into replayKeys
	// are stable, so the FrameReader's reuse is safe.
	fr := hbproto.NewFrameReader(conn)
	for {
		msg, err := fr.Next()
		if err != nil {
			return
		}
		var refs []hbproto.Ref
		switch m := msg.(type) {
		case *hbproto.Ack:
			refs = m.Refs
		case *hbproto.Feedback:
			refs = m.Refs
		default:
			continue
		}
		now := time.Now()
		r.mu.Lock()
		for _, ref := range refs {
			k := replayKey{ref.Src, ref.Seq}
			at, ok := r.pending[k]
			if !ok {
				continue
			}
			delete(r.pending, k)
			r.delivered++
			r.lat.Add(float64(now.Sub(at)) / float64(time.Millisecond))
		}
		r.mu.Unlock()
	}
}
