package loadgen

import (
	"fmt"
	"net"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"d2dhb/internal/cluster"
	"d2dhb/internal/faultnet"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/hbproto"
	"d2dhb/internal/rec"
	"d2dhb/internal/relaynet"
	"d2dhb/internal/telemetry"
	"d2dhb/internal/trace"
)

// Config parameterizes one load-generation run.
type Config struct {
	// UEs is the fleet size (virtual UE count).
	UEs int
	// Relays is how many real relay agents to run. Zero disables relaying.
	Relays int
	// RelayRatio is the fraction of the fleet forwarding through relays;
	// the rest heartbeat directly to the server. Ignored when Relays is 0.
	RelayRatio float64
	// Profiles is the app mix, assigned round-robin across the fleet.
	// Repeat a profile to weight it. Empty selects hbmsg.Apps().
	Profiles []hbmsg.AppProfile
	// Speedup divides every profile period/expiry so commercial multi-minute
	// heartbeat intervals compress into measurable runs. Zero means 1.
	Speedup float64
	// Duration is how long load is offered (excludes the drain phase).
	Duration time.Duration
	// Arrival shapes fleet activation.
	Arrival Schedule
	// AckTimeout is how long an unacknowledged heartbeat waits before it is
	// counted lost. Zero selects 2×max period + 500 ms (min 2 s).
	AckTimeout time.Duration
	// RelayCapacity overrides each relay's per-period collection capacity
	// M. Zero sizes it generously from the assigned fleet share.
	RelayCapacity int
	// ReportEvery emits a cumulative Report through OnReport at this
	// interval. Zero disables periodic reports.
	ReportEvery time.Duration
	// OnReport receives periodic (and not the final) reports.
	OnReport func(Report)
	// ServerAddr targets an existing presence server. Empty spawns an
	// in-process relaynet.Server on loopback, whose stats land in the
	// report.
	ServerAddr string
	// ClusterAddr targets a presence cluster through its router (base URL
	// or host:port). Direct UEs then resolve their owning shard through
	// the consistent-hash ring on every dial, relays fan each batch out
	// per shard, relayed UEs fall back to their owner on ack timeout, and
	// reports embed a per-shard metrics scrape. Mutually exclusive with
	// ServerAddr.
	ClusterAddr string
	// Trunks switches the fleet to trunked virtual relays: instead of one
	// socket per UE, the fleet is multiplexed UEs/Trunks-per-connection
	// over this many relay trunks speaking hbproto batches — the paper's
	// aggregation argument applied to the load generator itself, and the
	// only way one box offers a million users (per-UE sockets exhaust
	// ephemeral ports around a few tens of thousands per destination).
	// Requires Relays == 0.
	Trunks int
	// TrunkPaceSlots spreads each trunk period's emissions across this many
	// sub-ticks instead of bursting the whole fleet at once: users are
	// assigned to slots by a deterministic hash (seeded jitter — no RNG, no
	// wall clock), every user still emits exactly once per period, and the
	// open-loop schedule is preserved. ≤1 disables pacing (the default, so
	// existing runs and recorded corpora are bit-identical). Ignored unless
	// Trunks > 0.
	TrunkPaceSlots int
	// Tracer is attached to the spawned server and relays when non-nil.
	Tracer trace.Tracer
	// HistShards sets the latency histogram shard count. Zero selects 8.
	HistShards int
	// Faults injects the schedule's faults into every outbound dial the
	// run makes (UE→relay, UE→server and relay→server), for
	// chaos-under-load measurements. Nil disables fault injection.
	Faults *faultnet.Schedule
	// Telemetry, when non-nil, registers the run's own instruments on the
	// registry: fleet send/ack counters, per-path latency histograms, and —
	// for in-process runs — the spawned server's and relays' metrics.
	Telemetry *telemetry.Registry
	// MetricsAddr is the target server's telemetry listener (the host:port
	// passed to its -telemetry flag). When set, every report scrapes
	// /metrics.json there and embeds the server-side dump.
	MetricsAddr string
	// Recorder, when non-nil, captures the run's per-heartbeat timeline
	// (client table, fault windows, send/ack/timeout events) for later
	// deterministic replay. All hooks are nil-safe no-ops otherwise.
	Recorder *rec.Recorder
}

func (c Config) validate() error {
	if c.UEs <= 0 {
		return fmt.Errorf("loadgen: UEs must be positive, got %d", c.UEs)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be positive, got %v", c.Duration)
	}
	if c.Relays < 0 {
		return fmt.Errorf("loadgen: negative relay count %d", c.Relays)
	}
	if c.RelayRatio < 0 || c.RelayRatio > 1 {
		return fmt.Errorf("loadgen: relay ratio must be in [0,1], got %v", c.RelayRatio)
	}
	if c.Trunks < 0 {
		return fmt.Errorf("loadgen: negative trunk count %d", c.Trunks)
	}
	if c.Trunks > 0 && c.Relays > 0 {
		return fmt.Errorf("loadgen: trunks and relays are mutually exclusive (%d/%d)", c.Trunks, c.Relays)
	}
	if c.TrunkPaceSlots < 0 {
		return fmt.Errorf("loadgen: negative trunk pace slots %d", c.TrunkPaceSlots)
	}
	if c.ClusterAddr != "" && c.ServerAddr != "" {
		return fmt.Errorf("loadgen: cluster and server targets are mutually exclusive")
	}
	if c.Speedup < 0 {
		return fmt.Errorf("loadgen: negative speedup %v", c.Speedup)
	}
	for _, p := range c.Profiles {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// minVirtualPeriod floors compressed heartbeat periods so an aggressive
// speedup cannot degenerate into a busy loop.
const minVirtualPeriod = 10 * time.Millisecond

// fleetCounters is the shared per-run accounting, updated with atomics from
// every virtual UE.
type fleetCounters struct {
	sentDirect, sentRelayed       atomic.Uint64
	ackedDirect, ackedRelayed     atomic.Uint64
	timeoutDirect, timeoutRelayed atomic.Uint64
	dialErrors, writeErrors       atomic.Uint64
	outOfOrderAcks                atomic.Uint64
	// fallbackResends counts relayed heartbeats re-sent directly to their
	// owning shard after the relay path failed to confirm them in time
	// (cluster mode only).
	fallbackResends atomic.Uint64
	// trunkWrites/trunkFrames account the coalesced trunk uplink: Batch
	// frames composed vs conn.Write calls issued. frames − writes is the
	// syscall count the single-buffer flush saved.
	trunkWrites, trunkFrames atomic.Uint64
}

// loadUnit is one independently scheduled slice of the fleet: a single
// virtual UE, or a trunk multiplexing many of them over one connection.
type loadUnit interface {
	run(done <-chan struct{}, offset time.Duration, sendWg *sync.WaitGroup)
	sweep(now time.Time)
	pendingCount() int
	expireAll()
	close()
}

// shardCounter tallies sends per target shard in cluster mode.
type shardCounter struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (s *shardCounter) add(shard string, n uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]uint64)
	}
	s.m[shard] += n
	s.mu.Unlock()
}

func (s *shardCounter) snapshot() map[string]uint64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// Runner drives one configured load-generation run.
type Runner struct {
	cfg        Config
	server     *relaynet.Server // nil when targeting an external server
	serverAddr string
	cluster    *cluster.Client // non-nil in cluster mode
	relays     []*relaynet.RelayAgent
	units      []loadUnit
	counters   fleetCounters
	shardSent  shardCounter
	histDirect *Histogram
	histRelay  *Histogram
	readers    sync.WaitGroup

	ackTimeout time.Duration
	minPeriod  time.Duration
	maxPeriod  time.Duration
	relayedUEs int
}

// New validates the config and prepares a runner. Nothing is started until
// Run.
func New(cfg Config) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.Profiles) == 0 {
		cfg.Profiles = hbmsg.Apps()
	}
	if cfg.Speedup == 0 {
		cfg.Speedup = 1
	}
	if cfg.HistShards == 0 {
		cfg.HistShards = 8
	}
	r := &Runner{
		cfg:        cfg,
		histDirect: NewHistogram(cfg.HistShards),
		histRelay:  NewHistogram(cfg.HistShards),
	}
	r.minPeriod, r.maxPeriod = r.periodRange()
	r.ackTimeout = cfg.AckTimeout
	if r.ackTimeout <= 0 {
		r.ackTimeout = 2*r.maxPeriod + 500*time.Millisecond
		if r.ackTimeout < 2*time.Second {
			r.ackTimeout = 2 * time.Second
		}
	}
	if cfg.Relays > 0 {
		r.relayedUEs = int(float64(cfg.UEs) * cfg.RelayRatio)
	}
	if reg := cfg.Telemetry; reg != nil {
		reg.Observe("loadgen_latency_direct_us", "us", r.histDirect)
		reg.Observe("loadgen_latency_relayed_us", "us", r.histRelay)
		c := &r.counters
		reg.GaugeFunc("loadgen_sent_total", func() float64 {
			return float64(c.sentDirect.Load() + c.sentRelayed.Load())
		})
		reg.GaugeFunc("loadgen_acked_total", func() float64 {
			return float64(c.ackedDirect.Load() + c.ackedRelayed.Load())
		})
		reg.GaugeFunc("loadgen_timeouts_total", func() float64 {
			return float64(c.timeoutDirect.Load() + c.timeoutRelayed.Load())
		})
		reg.GaugeFunc("loadgen_errors_total", func() float64 {
			return float64(c.dialErrors.Load() + c.writeErrors.Load())
		})
		reg.GaugeFunc("loadgen_trunk_writes_total", func() float64 {
			return float64(c.trunkWrites.Load())
		})
		reg.GaugeFunc("loadgen_trunk_frames_total", func() float64 {
			return float64(c.trunkFrames.Load())
		})
	}
	return r, nil
}

// scale compresses a duration by the configured speedup, flooring at
// minVirtualPeriod.
func (r *Runner) scale(d time.Duration) time.Duration {
	s := time.Duration(float64(d) / r.cfg.Speedup)
	if s < minVirtualPeriod {
		s = minVirtualPeriod
	}
	return s
}

func (r *Runner) periodRange() (min, max time.Duration) {
	for i, p := range r.cfg.Profiles {
		s := time.Duration(float64(p.Period) / r.cfg.Speedup)
		if s < minVirtualPeriod {
			s = minVirtualPeriod
		}
		if i == 0 || s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// clusterURL normalizes a router target to a base URL.
func clusterURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return addr
	}
	return "http://" + addr
}

// Run executes the configured scenario: spawn server/relays/fleet, offer
// load for Duration, drain in-flight heartbeats, tear everything down and
// return the final report.
func (r *Runner) Run() (Report, error) {
	if r.cfg.ClusterAddr != "" {
		// Constructing the client performs the initial config fetch, so an
		// unreachable router aborts the run up front.
		cl, err := cluster.NewClient(cluster.ClientConfig{
			RouterURL: clusterURL(r.cfg.ClusterAddr),
			Telemetry: r.cfg.Telemetry,
		})
		if err != nil {
			return Report{}, err
		}
		r.cluster = cl
		defer cl.Close()
	}
	if err := r.startServer(); err != nil {
		return Report{}, err
	}
	defer func() {
		if r.server != nil {
			r.server.Shutdown()
		}
	}()
	if err := r.startRelays(); err != nil {
		return Report{}, err
	}
	defer func() {
		for _, ra := range r.relays {
			ra.Shutdown()
		}
	}()

	r.buildFleet()

	genDone := make(chan struct{})
	var sendWg sync.WaitGroup
	start := time.Now()
	// Pin the trace and fault timelines to the same instant so recorded
	// fault-window offsets line up with recorded event offsets.
	if f := r.cfg.Faults; f != nil {
		f.Start()
		r.cfg.Recorder.Start(start, f.Seed())
		for _, w := range f.Windows() {
			r.cfg.Recorder.AddFault(rec.FaultWindow{Kind: string(w.Fault.Kind), From: w.From, To: w.To})
		}
	} else {
		r.cfg.Recorder.Start(start, 0)
	}
	window := r.arrivalWindow()
	sched := Schedule{Shape: r.cfg.Arrival.Shape, Window: window}
	for i, u := range r.units {
		sendWg.Add(1)
		go u.run(genDone, sched.StartOffset(i, len(r.units)), &sendWg)
	}

	stopReports := make(chan struct{})
	var repWg sync.WaitGroup
	if r.cfg.ReportEvery > 0 && r.cfg.OnReport != nil {
		repWg.Add(1)
		go func() {
			defer repWg.Done()
			t := time.NewTicker(r.cfg.ReportEvery)
			defer t.Stop()
			for {
				select {
				case <-stopReports:
					return
				case <-t.C:
					r.cfg.OnReport(r.snapshot(time.Since(start), false))
				}
			}
		}()
	}

	time.Sleep(r.cfg.Duration)
	close(genDone)
	sendWg.Wait()
	genElapsed := time.Since(start)
	close(stopReports)
	repWg.Wait()

	r.drain()
	for _, u := range r.units {
		u.close()
	}
	r.readers.Wait()

	rep := r.snapshot(genElapsed, true)
	return rep, nil
}

// startServer spawns the in-process presence server unless an external
// address was configured.
func (r *Runner) startServer() error {
	if r.cluster != nil {
		// Cluster mode has no single server: targets resolve through the
		// ring per key. The client's initial fetch already proved the
		// router reachable and the config routable.
		return nil
	}
	if r.cfg.ServerAddr != "" {
		// Probe the external server before spinning up the fleet: an
		// unreachable target should abort the run with an error, not burn
		// the full duration accumulating dial failures and then report a
		// zero-heartbeat "result" as if the measurement succeeded.
		probe, err := net.DialTimeout("tcp", r.cfg.ServerAddr, 2*time.Second)
		if err != nil {
			return fmt.Errorf("loadgen: server %s unreachable: %w", r.cfg.ServerAddr, err)
		}
		_ = probe.Close()
		r.serverAddr = r.cfg.ServerAddr
		return nil
	}
	s := relaynet.NewServer()
	if r.cfg.Tracer != nil {
		s.SetTracer(r.cfg.Tracer)
	}
	if r.cfg.Telemetry != nil {
		s.SetTelemetry(r.cfg.Telemetry)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		return err
	}
	r.server = s
	r.serverAddr = s.Addr()
	return nil
}

func (r *Runner) startRelays() error {
	if r.cfg.Relays == 0 || r.relayedUEs == 0 {
		return nil
	}
	capacity := r.cfg.RelayCapacity
	if capacity == 0 {
		perRelay := (r.relayedUEs + r.cfg.Relays - 1) / r.cfg.Relays
		capacity = perRelay*4 + 16
	}
	r.cfg.Recorder.SetRelay(r.minPeriod, capacity)
	var dial func(network, addr string) (net.Conn, error)
	if r.cfg.Faults != nil {
		dial = r.cfg.Faults.Dial
	}
	for i := 0; i < r.cfg.Relays; i++ {
		ra, err := relaynet.NewRelayAgent(relaynet.RelayAgentConfig{
			ID:        fmt.Sprintf("loadrelay-%d", i),
			App:       "loadgen",
			Period:    r.minPeriod,
			Expiry:    r.minPeriod,
			Pad:       54,
			Capacity:  capacity,
			Tracer:    r.cfg.Tracer,
			Dial:      dial,
			Cluster:   r.cluster,
			Telemetry: r.cfg.Telemetry,
		})
		if err != nil {
			return err
		}
		if err := ra.Start("127.0.0.1:0", r.serverAddr); err != nil {
			return err
		}
		r.relays = append(r.relays, ra)
	}
	return nil
}

// ownerAddr returns a resolver mapping a client ID to its owning shard's
// hbproto address under the cluster's current ring epoch.
func (r *Runner) ownerAddr(id string) func() string {
	return func() string {
		node, ok := r.cluster.View().Owner(id)
		if !ok {
			return ""
		}
		return node.Addr
	}
}

// buildFleet constructs the load units. Trunk mode multiplexes the whole
// fleet over Trunks virtual-relay connections; otherwise every UE is one
// socket-holding vue — the first relayedUEs forward through relays
// (round-robin), the rest go direct. Profiles rotate across the fleet (per
// trunk in trunk mode, since a trunk shares one schedule).
func (r *Runner) buildFleet() {
	if r.cfg.Trunks > 0 {
		r.buildTrunks()
		return
	}
	r.units = make([]loadUnit, 0, r.cfg.UEs)
	for i := 0; i < r.cfg.UEs; i++ {
		p := r.cfg.Profiles[i%len(r.cfg.Profiles)]
		relayed := i < r.relayedUEs && len(r.relays) > 0
		u := &vue{
			id:      fmt.Sprintf("loadue-%05d", i),
			app:     p.Name,
			period:  r.scale(p.Period),
			expiry:  r.scale(p.Expiry()),
			pad:     p.Size,
			relayed: relayed,
			timeout: r.ackTimeout,
			c:       &r.counters,
			pending: make(map[uint64]int64),
			dial:    net.Dial,
			readers: &r.readers,
			trec:    r.cfg.Recorder,
		}
		relayIdx := -1
		path := rec.PathDirect
		if relayed {
			relayIdx = i % len(r.relays)
			path = rec.PathRelayed
		}
		u.tidx = r.cfg.Recorder.AddClient(rec.Client{
			ID: u.id, App: u.app, Period: u.period, Expiry: u.expiry,
			Pad: u.pad, Path: path, Relay: relayIdx,
		})
		if r.cfg.Faults != nil {
			u.dial = r.cfg.Faults.Dial
		}
		if relayed {
			u.addr = r.relays[i%len(r.relays)].Addr()
			u.rec = r.histRelay.Recorder()
			if r.cluster != nil {
				// Relayed UEs in a cluster fall back to their owning
				// shard when the relay path misses the ack window —
				// the load-fleet analog of the UEClient fallback that
				// keeps reshards lossless.
				u.resolve = r.ownerAddr(u.id)
				u.fellBack = make(map[uint64]bool)
			}
		} else {
			u.addr = r.serverAddr
			u.rec = r.histDirect.Recorder()
			if r.cluster != nil {
				u.resolve = r.ownerAddr(u.id)
			}
		}
		r.units = append(r.units, u)
	}
}

// buildTrunks splits the fleet across cfg.Trunks trunks; profiles rotate
// per trunk, since a trunk's users share one schedule.
func (r *Runner) buildTrunks() {
	n := r.cfg.Trunks
	r.units = make([]loadUnit, 0, n)
	base, rem := r.cfg.UEs/n, r.cfg.UEs%n
	next := 0
	for ti := 0; ti < n; ti++ {
		count := base
		if ti < rem {
			count++
		}
		if count == 0 {
			continue
		}
		p := r.cfg.Profiles[ti%len(r.cfg.Profiles)]
		t := &trunk{
			id:      fmt.Sprintf("loadtrunk-%04d", ti),
			app:     p.Name,
			addr:    r.serverAddr,
			period:  r.scale(p.Period),
			expiry:  r.scale(p.Expiry()),
			pad:     p.Size,
			timeout: r.ackTimeout,
			rec:     r.histRelay.Recorder(),
			c:       &r.counters,
			dial:    net.Dial,
			cluster: r.cluster,
			shards:  &r.shardSent,
			readers: &r.readers,
			users:   make([]tuser, count),
			index:   make(map[string]int, count),
			pending: make(map[hbref]int64),
			conns:   make(map[string]net.Conn),
		}
		if r.cluster != nil {
			t.fellBack = make(map[hbref]bool)
		}
		if r.cfg.Faults != nil {
			t.dial = r.cfg.Faults.Dial
		}
		t.trec = r.cfg.Recorder
		t.trecIdx = make([]int, count)
		for i := 0; i < count; i++ {
			id := fmt.Sprintf("loadue-%07d", next)
			next++
			t.users[i] = tuser{id: id}
			t.index[id] = i
			t.trecIdx[i] = r.cfg.Recorder.AddClient(rec.Client{
				ID: id, App: t.app, Period: t.period, Expiry: t.expiry,
				Pad: t.pad, Path: rec.PathTrunked, Relay: ti,
			})
		}
		// Pacing: clamp the slot count so each sub-tick covers at least one
		// user and lasts at least a millisecond, then partition users by
		// the deterministic hash.
		slots := r.cfg.TrunkPaceSlots
		if slots > count {
			slots = count
		}
		if maxByPeriod := int(t.period / time.Millisecond); slots > maxByPeriod {
			slots = maxByPeriod
		}
		if slots > 1 {
			t.paceSlots = slots
			t.slotUsers = make([][]int, slots)
			for i := range t.users {
				s := paceSlot(t.id, t.users[i].id, slots)
				t.slotUsers[s] = append(t.slotUsers[s], i)
			}
		}
		r.units = append(r.units, t)
	}
	// A trunk flushes one batch per tick, so its Algorithm 1 analog is a
	// period-long window with the largest trunk's user count as capacity.
	if len(r.units) > 0 {
		maxUsers := base
		if rem > 0 {
			maxUsers++
		}
		r.cfg.Recorder.SetRelay(r.minPeriod, maxUsers)
	}
}

// arrivalWindow resolves the schedule window default: one mean period for
// steady (pure phase stagger), half the run for a ramp.
func (r *Runner) arrivalWindow() time.Duration {
	if r.cfg.Arrival.Window > 0 || r.cfg.Arrival.Shape == ArrivalSpike {
		return r.cfg.Arrival.Window
	}
	if r.cfg.Arrival.Shape == ArrivalRamp {
		return r.cfg.Duration / 2
	}
	return (r.minPeriod + r.maxPeriod) / 2
}

// drain waits for in-flight heartbeats to be acknowledged, then writes off
// whatever is left as timeouts. Sweeping inside the wait matters in cluster
// mode: a pending heartbeat whose relay path died mid-reshard only gets its
// direct fallback resend from the sweep, so a drain that merely polled
// counts would sit out the timeout and report the heartbeat lost.
func (r *Runner) drain() {
	deadline := time.Now().Add(r.ackTimeout + 500*time.Millisecond)
	for time.Now().Before(deadline) {
		now := time.Now()
		pending := 0
		for _, u := range r.units {
			u.sweep(now)
			pending += u.pendingCount()
		}
		if pending == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, u := range r.units {
		u.expireAll()
	}
}

// vue is one open-loop virtual UE: it emits heartbeats on its schedule
// regardless of outstanding acknowledgements, tracking each send until the
// matching ack/feedback ref returns or the timeout writes it off.
type vue struct {
	id      string
	app     string
	addr    string
	period  time.Duration
	expiry  time.Duration
	pad     int
	relayed bool
	timeout time.Duration
	rec     *Recorder
	trec    *rec.Recorder // trace recorder; nil-safe
	tidx    int           // this UE's trace client index (-1 when unrecorded)
	c       *fleetCounters
	dial    func(network, addr string) (net.Conn, error)
	readers *sync.WaitGroup
	// resolve maps this UE to its owning shard's hbproto address in cluster
	// mode: the primary target for direct UEs (re-resolved on every dial, so
	// reshards redirect the next connection), the fallback target for
	// relayed ones.
	resolve func() string

	mu       sync.Mutex
	conn     net.Conn
	dconn    net.Conn         // fallback conn to the owning shard (relayed cluster UEs)
	pending  map[uint64]int64 // seq → send time (UnixNano)
	fellBack map[uint64]bool  // seqs already re-sent on the fallback path; nil disables fallback
	seq      uint64
	last     uint64 // highest acknowledged seq
	closed   bool
}

// run is the send loop: activate after the arrival offset, then heartbeat
// every period until the run stops. Readers joined via u.readers outlive
// the send loop so the drain phase can still collect acks.
func (u *vue) run(done <-chan struct{}, offset time.Duration, sendWg *sync.WaitGroup) {
	defer sendWg.Done()
	if offset > 0 {
		select {
		case <-done:
			return
		case <-time.After(offset):
		}
	}
	t := time.NewTicker(u.period)
	defer t.Stop()
	u.tick()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			u.tick()
		}
	}
}

// tick is one heartbeat interval: expire stale pendings, (re)dial if
// needed, send one heartbeat.
func (u *vue) tick() {
	u.sweep(time.Now())
	conn := u.ensureConn()
	if conn == nil {
		u.c.dialErrors.Add(1)
		return
	}
	now := time.Now()
	u.mu.Lock()
	u.seq++
	seq := u.seq
	u.pending[seq] = now.UnixNano()
	u.mu.Unlock()
	hb := &hbproto.Heartbeat{
		Src: u.id, Seq: seq, App: u.app,
		Origin: now, Expiry: u.expiry, Pad: u.pad,
	}
	if err := hbproto.WriteFrame(conn, hb); err != nil {
		u.c.writeErrors.Add(1)
		u.mu.Lock()
		delete(u.pending, seq)
		if u.conn == conn {
			u.conn = nil
		}
		u.mu.Unlock()
		_ = conn.Close()
		return
	}
	if u.relayed {
		u.c.sentRelayed.Add(1)
	} else {
		u.c.sentDirect.Add(1)
	}
	u.trec.Record(rec.EvSend, u.tidx, seq, now)
}

// ensureConn returns the live connection, dialing (and for relayed UEs
// registering) when none exists. Direct cluster UEs re-resolve their owning
// shard on every dial, so a reshard redirects the next connection.
func (u *vue) ensureConn() net.Conn {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	if u.conn != nil {
		conn := u.conn
		u.mu.Unlock()
		return conn
	}
	u.mu.Unlock()

	addr := u.addr
	if !u.relayed && u.resolve != nil {
		if a := u.resolve(); a != "" {
			addr = a
		}
	}
	conn, err := u.dial("tcp", addr)
	if err != nil {
		return nil
	}
	if u.relayed {
		// Relays deliver feedback only to registered UE connections.
		if err := hbproto.WriteFrame(conn, &hbproto.Register{
			ID: u.id, Role: hbproto.RoleUE, App: u.app,
			Period: u.period, Expiry: u.expiry,
		}); err != nil {
			_ = conn.Close()
			return nil
		}
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	u.conn = conn
	u.mu.Unlock()
	u.readers.Add(1)
	go u.reader(conn)
	return conn
}

// reader matches ack/feedback refs against pending sends and records
// latency. One reader serves both the primary and the fallback connection;
// whichever path acknowledges first settles the pending entry.
func (u *vue) reader(conn net.Conn) {
	defer u.readers.Done()
	// Inline processing, nothing retained past the iteration: safe with
	// the FrameReader's reused messages.
	fr := hbproto.NewFrameReader(conn)
	for {
		msg, err := fr.Next()
		if err != nil {
			u.mu.Lock()
			if u.conn == conn {
				u.conn = nil
			}
			if u.dconn == conn {
				u.dconn = nil
			}
			u.mu.Unlock()
			return
		}
		var refs []hbproto.Ref
		switch m := msg.(type) {
		case *hbproto.Ack:
			refs = m.Refs
		case *hbproto.Feedback:
			refs = m.Refs
		default:
			continue
		}
		ackAt := time.Now()
		now := ackAt.UnixNano()
		u.mu.Lock()
		for _, ref := range refs {
			if ref.Src != u.id {
				continue
			}
			at, ok := u.pending[ref.Seq]
			if !ok {
				continue
			}
			delete(u.pending, ref.Seq)
			if u.fellBack != nil {
				delete(u.fellBack, ref.Seq)
			}
			latUS := uint64(now-at) / 1000
			u.rec.Record(latUS)
			u.trec.Record(rec.EvAck, u.tidx, ref.Seq, ackAt)
			if u.relayed {
				u.c.ackedRelayed.Add(1)
			} else {
				u.c.ackedDirect.Add(1)
			}
			if ref.Seq <= u.last {
				u.c.outOfOrderAcks.Add(1)
			} else {
				u.last = ref.Seq
			}
		}
		u.mu.Unlock()
	}
}

// sweep writes off pendings older than the ack timeout. Relayed cluster
// UEs get one more chance first: the heartbeat is re-sent directly to its
// owning shard (resolved through the current ring epoch) with a fresh ack
// window, and only a second miss counts as a timeout — mirroring the
// UEClient feedback-timeout fallback that keeps reshards lossless.
func (u *vue) sweep(now time.Time) {
	cutoff := now.Add(-u.timeout).UnixNano()
	var resend []uint64
	u.mu.Lock()
	// Map order is nondeterministic; collect and sort the expired seqs so
	// the fallback/timeout decisions and trace records replay identically.
	var expired []uint64
	for seq, at := range u.pending {
		if at < cutoff {
			expired = append(expired, seq)
		}
	}
	slices.Sort(expired)
	for _, seq := range expired {
		if u.fellBack != nil && !u.fellBack[seq] {
			u.fellBack[seq] = true
			u.pending[seq] = now.UnixNano()
			resend = append(resend, seq)
			continue
		}
		delete(u.pending, seq)
		if u.fellBack != nil {
			delete(u.fellBack, seq)
		}
		if u.relayed {
			u.c.timeoutRelayed.Add(1)
		} else {
			u.c.timeoutDirect.Add(1)
		}
		u.trec.Record(rec.EvTimeout, u.tidx, seq, now)
	}
	u.mu.Unlock()
	for _, seq := range resend {
		u.resendDirect(seq)
	}
}

// resendDirect re-sends one timed-out relayed heartbeat straight to its
// owning shard.
func (u *vue) resendDirect(seq uint64) {
	conn := u.ensureDconn()
	if conn == nil {
		u.c.dialErrors.Add(1)
		return
	}
	hb := &hbproto.Heartbeat{
		Src: u.id, Seq: seq, App: u.app,
		Origin: time.Now(), Expiry: u.expiry, Pad: u.pad,
	}
	if err := hbproto.WriteFrame(conn, hb); err != nil {
		u.c.writeErrors.Add(1)
		u.mu.Lock()
		if u.dconn == conn {
			u.dconn = nil
		}
		u.mu.Unlock()
		_ = conn.Close()
		return
	}
	u.c.fallbackResends.Add(1)
}

// ensureDconn returns the live fallback connection to the owning shard,
// re-resolving through the ring and dialing when none exists.
func (u *vue) ensureDconn() net.Conn {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	if u.dconn != nil {
		conn := u.dconn
		u.mu.Unlock()
		return conn
	}
	u.mu.Unlock()

	var addr string
	if u.resolve != nil {
		addr = u.resolve()
	}
	if addr == "" {
		return nil
	}
	conn, err := u.dial("tcp", addr)
	if err != nil {
		return nil
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	u.dconn = conn
	u.mu.Unlock()
	u.readers.Add(1)
	go u.reader(conn)
	return conn
}

// pendingCount returns how many sends still await acknowledgement.
func (u *vue) pendingCount() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.pending)
}

// expireAll writes off every remaining pending send (end-of-run drain).
func (u *vue) expireAll() {
	now := time.Now()
	u.mu.Lock()
	// Sorted drain: the end-of-run timeout records land in seq order, not
	// map order, so recorded traces are canonical before Timeline even
	// sorts them.
	seqs := make([]uint64, 0, len(u.pending))
	for seq := range u.pending {
		seqs = append(seqs, seq)
	}
	slices.Sort(seqs)
	for _, seq := range seqs {
		delete(u.pending, seq)
		if u.fellBack != nil {
			delete(u.fellBack, seq)
		}
		if u.relayed {
			u.c.timeoutRelayed.Add(1)
		} else {
			u.c.timeoutDirect.Add(1)
		}
		u.trec.Record(rec.EvTimeout, u.tidx, seq, now)
	}
	u.mu.Unlock()
}

// close shuts the UE's connections down; readers exit on the closed conns.
func (u *vue) close() {
	u.mu.Lock()
	u.closed = true
	conn, dconn := u.conn, u.dconn
	u.conn, u.dconn = nil, nil
	u.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	if dconn != nil {
		_ = dconn.Close()
	}
}
