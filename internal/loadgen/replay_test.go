package loadgen

import (
	"testing"
	"time"

	"d2dhb/internal/faultnet"
	"d2dhb/internal/hbmsg"
	"d2dhb/internal/rec"
)

// recordRun executes one small in-process loadgen run with a recorder
// attached and returns the captured timeline.
func recordRun(t *testing.T, cfg Config) *rec.Timeline {
	t.Helper()
	recorder := rec.NewRecorder()
	cfg.Recorder = recorder
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("recorded run sent nothing")
	}
	tl, err := recorder.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestRecordCapturesTimeline(t *testing.T) {
	tl := recordRun(t, Config{
		UEs:      4,
		Duration: 400 * time.Millisecond,
		Profiles: []hbmsg.AppProfile{fastProfile(60 * time.Millisecond)},
	})
	if len(tl.Clients) != 4 {
		t.Fatalf("client table %d, want 4", len(tl.Clients))
	}
	for _, c := range tl.Clients {
		if c.Path != rec.PathDirect || c.Relay != -1 {
			t.Fatalf("direct run recorded client %+v", c)
		}
	}
	if tl.Sends() == 0 {
		t.Fatal("no sends recorded")
	}
	m := tl.RecordedMetrics()
	if m.Delivered == 0 {
		t.Fatal("no acks recorded")
	}
	// The trace must survive its own codec.
	rt, err := rec.Decode(tl.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Digest() != tl.Digest() {
		t.Fatal("recorded trace not canonical")
	}
}

func TestRecordTrunkedRun(t *testing.T) {
	tl := recordRun(t, Config{
		UEs:      12,
		Trunks:   2,
		Duration: 400 * time.Millisecond,
		Profiles: []hbmsg.AppProfile{fastProfile(60 * time.Millisecond)},
	})
	if len(tl.Clients) != 12 {
		t.Fatalf("client table %d, want 12", len(tl.Clients))
	}
	groups := map[int]bool{}
	for _, c := range tl.Clients {
		if c.Path != rec.PathTrunked || c.Relay < 0 {
			t.Fatalf("trunked run recorded client %+v", c)
		}
		groups[c.Relay] = true
	}
	if len(groups) != 2 {
		t.Fatalf("trunk groups %d, want 2", len(groups))
	}
	if tl.RelayPeriod <= 0 || tl.RelayCapacity <= 0 {
		t.Fatalf("relay params %v/%d not recorded", tl.RelayPeriod, tl.RelayCapacity)
	}
}

func TestRecordFaultWindows(t *testing.T) {
	sched := faultnet.NewSchedule(7, []faultnet.Window{
		{From: 50 * time.Millisecond, To: 150 * time.Millisecond, Fault: faultnet.Fault{Kind: faultnet.KindLatency, Latency: 5 * time.Millisecond}},
	})
	tl := recordRun(t, Config{
		UEs:      2,
		Duration: 300 * time.Millisecond,
		Profiles: []hbmsg.AppProfile{fastProfile(60 * time.Millisecond)},
		Faults:   sched,
	})
	if tl.Seed != 7 {
		t.Fatalf("seed %d, want the fault schedule's 7", tl.Seed)
	}
	if len(tl.Faults) != 1 || tl.Faults[0].Kind != "latency" {
		t.Fatalf("fault windows %+v", tl.Faults)
	}
	if tl.Faults[0].From != 50*time.Millisecond || tl.Faults[0].To != 150*time.Millisecond {
		t.Fatalf("fault window times %+v", tl.Faults[0])
	}
}

// TestReplayLiveFromRecording is the full loop: record a trunked run, then
// replay the identical timeline through the live stack and check every
// replayed heartbeat is delivered again.
func TestReplayLiveFromRecording(t *testing.T) {
	tl := recordRun(t, Config{
		UEs:      8,
		Trunks:   2,
		Duration: 300 * time.Millisecond,
		Profiles: []hbmsg.AppProfile{fastProfile(60 * time.Millisecond)},
	})
	m, err := ReplayLive(tl, ReplayOptions{Speedup: 4, AckTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != "live" {
		t.Fatalf("source %q", m.Source)
	}
	if int(m.Sent) != tl.Sends() {
		t.Fatalf("replayed %d of %d recorded sends", m.Sent, tl.Sends())
	}
	if m.Delivered != m.Sent || m.Timeouts != 0 {
		t.Fatalf("live replay lost heartbeats: %+v", m)
	}
	// Trunked sends must actually batch: fewer frames than heartbeats.
	if m.Signaling.Uplinks >= m.Sent || m.Signaling.Batches == 0 {
		t.Fatalf("no live aggregation: %+v", m.Signaling)
	}
}

func TestReplayLiveMixedPaths(t *testing.T) {
	tl := &rec.Timeline{
		RelayPeriod:   100 * time.Millisecond,
		RelayCapacity: 4,
		Clients: []rec.Client{
			{ID: "d0", App: "chat", Period: 50 * time.Millisecond, Expiry: time.Second, Relay: -1},
			{ID: "g0", App: "chat", Period: 50 * time.Millisecond, Expiry: time.Second, Path: rec.PathTrunked, Relay: 0},
			{ID: "g1", App: "chat", Period: 50 * time.Millisecond, Expiry: time.Second, Path: rec.PathTrunked, Relay: 0},
		},
	}
	for p := 0; p < 3; p++ {
		base := time.Duration(p) * 50 * time.Millisecond
		for i := 0; i < 3; i++ {
			tl.Events = append(tl.Events, rec.Event{
				At: base + time.Duration(i)*500*time.Microsecond, Kind: rec.EvSend,
				Client: i, Seq: uint64(p + 1),
			})
		}
	}
	m, err := ReplayLive(tl, ReplayOptions{AckTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sent != 9 || m.Delivered != 9 {
		t.Fatalf("mixed replay %+v", m)
	}
	// Per round: one direct frame + one coalesced batch of two.
	if m.Signaling.Uplinks != 6 || m.Signaling.Batches != 3 {
		t.Fatalf("frame structure %+v, want 6 uplinks / 3 batches", m.Signaling)
	}
}

func TestReplayLiveErrors(t *testing.T) {
	if _, err := ReplayLive(nil, ReplayOptions{}); err == nil {
		t.Fatal("nil timeline accepted")
	}
	bad := &rec.Timeline{RelayPeriod: -1}
	if _, err := ReplayLive(bad, ReplayOptions{}); err == nil {
		t.Fatal("invalid timeline accepted")
	}
	empty := &rec.Timeline{}
	m, err := ReplayLive(empty, ReplayOptions{AckTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sent != 0 {
		t.Fatalf("empty replay sent %d", m.Sent)
	}
}
