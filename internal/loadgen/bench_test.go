package loadgen

import (
	"testing"
	"time"

	"d2dhb/internal/hbmsg"
)

// The capacity benchmarks are smoke-sized macro-benchmarks: each iteration
// runs a short real fleet over loopback TCP and reports acked throughput and
// tail latency as custom metrics. They are deliberately small (sub-second
// fleets) so `go test -bench` stays CI-safe; use cmd/d2dload for real
// capacity measurement.

func benchFleet(b *testing.B, cfg Config) {
	b.Helper()
	var hbps, p99 float64
	for i := 0; i < b.N; i++ {
		r, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 || rep.Sent == 0 {
			b.Fatalf("degenerate run: %+v", rep)
		}
		hbps += rep.ThroughputHBps
		p99 += rep.Overall.P99Ms
	}
	b.ReportMetric(hbps/float64(b.N), "hb/s")
	b.ReportMetric(p99/float64(b.N), "p99-ms")
	b.ReportMetric(0, "ns/op") // wall-clock per op is not the figure of merit
}

func BenchmarkCapacityDirect(b *testing.B) {
	benchFleet(b, Config{
		UEs:      60,
		Profiles: []hbmsg.AppProfile{fastProfile(40 * time.Millisecond)},
		Duration: 400 * time.Millisecond,
	})
}

func BenchmarkCapacityRelayed(b *testing.B) {
	benchFleet(b, Config{
		UEs:        60,
		Relays:     2,
		RelayRatio: 0.5,
		Profiles:   []hbmsg.AppProfile{fastProfile(80 * time.Millisecond)},
		Duration:   600 * time.Millisecond,
		AckTimeout: 3 * time.Second,
	})
}
