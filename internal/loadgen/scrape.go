package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"d2dhb/internal/telemetry"
)

// ScrapeDump fetches the telemetry dump served at addr's /metrics.json
// endpoint (see internal/telemetry.Handler). Capacity runs against an
// external server use it to fold the server-side counters into the report,
// so one loadgen artifact captures both ends of the measurement.
func ScrapeDump(addr string, timeout time.Duration) (*telemetry.Dump, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: %s", addr, resp.Status)
	}
	var d telemetry.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s: %w", addr, err)
	}
	return &d, nil
}
