package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"d2dhb/internal/telemetry"
)

// ScrapeDump fetches the telemetry dump served at addr's /metrics.json
// endpoint (see internal/telemetry.Handler). Capacity runs against an
// external server use it to fold the server-side counters into the report,
// so one loadgen artifact captures both ends of the measurement.
func ScrapeDump(addr string, timeout time.Duration) (*telemetry.Dump, error) {
	return ScrapeDumpURL("http://"+addr, timeout)
}

// ScrapeDumpURL is ScrapeDump for a full base URL — the shape cluster
// configs carry for each node's HTTP control plane. Cluster-mode reports
// use it to scrape every shard's /metrics.json.
func ScrapeDumpURL(base string, timeout time.Duration) (*telemetry.Dump, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: %s", base, resp.Status)
	}
	var d telemetry.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s: %w", base, err)
	}
	return &d, nil
}
