package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestAnalyzeDelays(t *testing.T) {
	events := []Event{
		{AtMs: 0, Device: "ue-1", Kind: KindGenerated, Seq: 1},
		{AtMs: 100, Device: "ue-1", Kind: KindD2DSend, Seq: 1},
		{AtMs: 5000, Device: "ue-1", Kind: KindDelivery, Seq: 1, Peer: "relay", OnTime: true},

		{AtMs: 1000, Device: "ue-2", Kind: KindGenerated, Seq: 1},
		{AtMs: 1000, Device: "ue-2", Kind: KindDelivery, Seq: 1, Peer: "ue-2", OnTime: true},

		{AtMs: 2000, Device: "ue-1", Kind: KindGenerated, Seq: 2},
		{AtMs: 9000, Device: "ue-1", Kind: KindDelivery, Seq: 2, Peer: "relay", OnTime: false},

		// Relay's own heartbeat: delivery without generation event.
		{AtMs: 3000, Device: "relay", Kind: KindDelivery, Seq: 1, Peer: "relay", OnTime: true},
	}
	a := Analyze(events)
	if a.Total.Count != 3 {
		t.Fatalf("total count = %d, want 3", a.Total.Count)
	}
	if a.Relayed.Count != 2 || a.Direct.Count != 1 {
		t.Fatalf("relayed/direct = %d/%d, want 2/1", a.Relayed.Count, a.Direct.Count)
	}
	if a.Relayed.MaxMs != 7000 {
		t.Fatalf("relayed max = %v, want 7000", a.Relayed.MaxMs)
	}
	if a.Direct.MeanMs != 0 {
		t.Fatalf("direct mean = %v, want 0", a.Direct.MeanMs)
	}
	if a.LateDeliveries != 1 {
		t.Fatalf("late = %d, want 1", a.LateDeliveries)
	}
	if a.KindCounts[KindDelivery] != 4 {
		t.Fatalf("delivery count = %d, want 4", a.KindCounts[KindDelivery])
	}
}

func TestAnalyzeDuplicateDeliveryUsesEarliest(t *testing.T) {
	events := []Event{
		{AtMs: 0, Device: "u", Kind: KindGenerated, Seq: 1},
		{AtMs: 8000, Device: "u", Kind: KindDelivery, Seq: 1, Peer: "u"},     // fallback (later)
		{AtMs: 5000, Device: "u", Kind: KindDelivery, Seq: 1, Peer: "relay"}, // relay (earlier)
	}
	a := Analyze(events)
	if a.Total.Count != 1 || a.Total.MaxMs != 5000 {
		t.Fatalf("analysis = %+v, want earliest delivery (5000)", a.Total)
	}
	if a.Relayed.Count != 1 {
		t.Fatalf("earliest delivery should classify as relayed: %+v", a)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Total.Count != 0 || a.Total.MeanMs != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}

func TestDelayStatsString(t *testing.T) {
	s := delayStats([]float64{100, 200, 300}).String()
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "mean=200ms") {
		t.Fatalf("string = %q", s)
	}
}

func TestReadJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Event{
		{AtMs: 1, Device: "a", Kind: KindGenerated, Seq: 1},
		{AtMs: 2, Device: "b", Kind: KindFlush, N: 2, Reason: "capacity"},
	}
	for _, ev := range want {
		j.Emit(ev)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("events = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	events, err := ReadJSONL(strings.NewReader("\n{\"atMs\":1,\"device\":\"a\",\"kind\":\"ack\"}\n\n"))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
}
