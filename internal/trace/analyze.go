package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// DelayStats summarizes a delay distribution in milliseconds.
type DelayStats struct {
	Count  int
	MeanMs float64
	P50Ms  float64
	P95Ms  float64
	MaxMs  float64
}

func delayStats(delays []float64) DelayStats {
	if len(delays) == 0 {
		return DelayStats{}
	}
	sort.Float64s(delays)
	sum := 0.0
	for _, d := range delays {
		sum += d
	}
	pct := func(p float64) float64 {
		idx := int(p * float64(len(delays)-1))
		return delays[idx]
	}
	return DelayStats{
		Count:  len(delays),
		MeanMs: sum / float64(len(delays)),
		P50Ms:  pct(0.50),
		P95Ms:  pct(0.95),
		MaxMs:  delays[len(delays)-1],
	}
}

// String implements fmt.Stringer.
func (d DelayStats) String() string {
	return fmt.Sprintf("n=%d mean=%.0fms p50=%.0fms p95=%.0fms max=%.0fms",
		d.Count, d.MeanMs, d.P50Ms, d.P95Ms, d.MaxMs)
}

// Analysis is the digest of one event stream.
type Analysis struct {
	// Total, Relayed and Direct are generation→delivery delay
	// distributions; Relayed covers heartbeats carried by a relay
	// (including fallback duplicates of relayed attempts), Direct those
	// the source transmitted itself.
	Total   DelayStats
	Relayed DelayStats
	Direct  DelayStats
	// LateDeliveries counts deliveries past their deadline.
	LateDeliveries int
	// KindCounts tallies every event kind seen.
	KindCounts map[Kind]int
}

// hbKey identifies one heartbeat across events.
type hbKey struct {
	device string
	seq    uint64
}

// Analyze digests an event stream into delay distributions. Events may be
// in any order; generation and delivery are matched by (device, seq), and a
// heartbeat delivered more than once (fallback duplicate) contributes its
// earliest delivery.
func Analyze(events []Event) Analysis {
	a := Analysis{KindCounts: make(map[Kind]int)}
	generated := make(map[hbKey]int64)
	delivered := make(map[hbKey]Event)
	for _, ev := range events {
		a.KindCounts[ev.Kind]++
		key := hbKey{device: ev.Device, seq: ev.Seq}
		switch ev.Kind {
		case KindGenerated:
			generated[key] = ev.AtMs
		case KindDelivery:
			if !ev.OnTime {
				a.LateDeliveries++
			}
			if prev, ok := delivered[key]; !ok || ev.AtMs < prev.AtMs {
				delivered[key] = ev
			}
		}
	}
	var total, relayed, direct []float64
	for key, ev := range delivered {
		born, ok := generated[key]
		if !ok {
			continue // relay own heartbeats have no generation event
		}
		d := float64(ev.AtMs - born)
		if d < 0 {
			continue
		}
		total = append(total, d)
		if ev.Peer != "" && ev.Peer != ev.Device {
			relayed = append(relayed, d)
		} else {
			direct = append(direct, d)
		}
	}
	a.Total = delayStats(total)
	a.Relayed = delayStats(relayed)
	a.Direct = delayStats(direct)
	return a
}

// ReadJSONL decodes an event stream written by the JSONL tracer.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return events, nil
}
