package trace

import (
	"math/rand"
	"testing"
	"time"
)

func mkKeyed(at time.Duration, order int, seq uint64) Keyed {
	return Keyed{
		At:    at,
		Order: order,
		Seq:   seq,
		Ev: Event{
			AtMs:   At(at),
			Device: "dev",
			Kind:   KindGenerated,
			Seq:    seq,
		},
	}
}

func TestMergeKeyedCanonicalOrder(t *testing.T) {
	a := []Keyed{
		mkKeyed(2*time.Second, 0, 0),
		mkKeyed(2*time.Second, 0, 1),
		mkKeyed(5*time.Second, 3, 0),
	}
	b := []Keyed{
		mkKeyed(time.Second, 7, 0),
		mkKeyed(2*time.Second, 0, 2),
		// Same millisecond as a[0] but earlier exact instant: the key
		// must order on the sub-millisecond instant AtMs throws away.
		mkKeyed(2*time.Second-time.Microsecond, 9, 0),
	}
	got := MergeKeyed(a, b)
	if len(got) != 6 {
		t.Fatalf("merged %d events, want 6", len(got))
	}
	for i := 1; i < len(got); i++ {
		if keyedLess(got[i], got[i-1]) {
			t.Fatalf("merge out of order at %d: %+v before %+v", i, got[i-1], got[i])
		}
	}
	if got[0].Order != 7 || got[1].Order != 9 {
		t.Fatalf("unexpected head order: %+v", got[:2])
	}
	// Same (at, order): per-device seq breaks the tie.
	if got[2].Seq != 0 || got[3].Seq != 1 || got[4].Seq != 2 {
		t.Fatalf("seq tiebreak broken: %+v", got[2:5])
	}
}

func TestDigestPartitionIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var all []Keyed
	for order := 0; order < 10; order++ {
		for seq := uint64(0); seq < 20; seq++ {
			all = append(all, mkKeyed(time.Duration(rng.Int63n(int64(time.Minute))), order, seq))
		}
	}
	SortKeyed(all)

	whole := NewDigest()
	whole.Add(all)
	wantSum, err := whole.Sum()
	if err != nil {
		t.Fatal(err)
	}

	// Re-shard the same events into 4 "tiles" and merge window by window.
	tiles := make([][]Keyed, 4)
	for _, e := range all {
		i := rng.Intn(4)
		tiles[i] = append(tiles[i], e)
	}
	sharded := NewDigest()
	window := 10 * time.Second
	for start := time.Duration(0); start < time.Minute; start += window {
		var bufs [][]Keyed
		for _, tl := range tiles {
			var in []Keyed
			for _, e := range tl {
				if e.At >= start && e.At < start+window {
					in = append(in, e)
				}
			}
			bufs = append(bufs, in)
		}
		sharded.Add(MergeKeyed(bufs...))
	}
	gotSum, err := sharded.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != wantSum {
		t.Fatalf("sharded digest %s != sequential %s", gotSum, wantSum)
	}
	if whole.Events() != sharded.Events() {
		t.Fatalf("event counts diverge: %d vs %d", whole.Events(), sharded.Events())
	}
}

func TestDigestEmpty(t *testing.T) {
	d := NewDigest()
	sum, err := d.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if sum == "" || d.Events() != 0 {
		t.Fatalf("empty digest sum=%q events=%d", sum, d.Events())
	}
	d2 := NewDigest()
	sum2, _ := d2.Sum()
	if sum != sum2 {
		t.Fatal("empty digests differ")
	}
}
