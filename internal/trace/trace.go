// Package trace provides structured event tracing for simulation runs:
// every load-bearing action (heartbeat generation, D2D forward, collection,
// flush, feedback, fallback, delivery) can be emitted as one JSON line,
// giving post-hoc visibility into exactly how a scenario unfolded.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind labels one event type.
type Kind string

// Event kinds emitted by the framework.
const (
	KindGenerated   Kind = "hb-generated" // UE produced a heartbeat
	KindD2DSend     Kind = "d2d-send"     // UE forwarded over D2D
	KindD2DFail     Kind = "d2d-fail"     // D2D transfer failed
	KindRelayBusy   Kind = "relay-busy"   // relay advertised a closed window
	KindDirectSend  Kind = "direct-send"  // UE sent straight over cellular
	KindFallback    Kind = "fallback"     // feedback timeout → duplicate send
	KindAck         Kind = "ack"          // UE received feedback
	KindMatch       Kind = "match"        // UE connected to a relay
	KindMatchFail   Kind = "match-fail"   // discovery found no usable relay
	KindCollect     Kind = "collect"      // relay accepted a forwarded heartbeat
	KindReject      Kind = "reject"       // relay refused (closed/expired)
	KindFlush       Kind = "flush"        // relay transmitted a batch
	KindDelivery    Kind = "delivery"     // heartbeat observed at the network
	KindConnDrop    Kind = "conn-drop"    // server dropped a connection (protocol error, idle timeout)
	KindStop        Kind = "stop"         // device stopped
	KindFault       Kind = "fault"        // faultnet injected one fault (Reason = fault kind)
	KindFaultWindow Kind = "fault-window" // a scheduled fault window opened (Reason = fault kind)
)

// Event is one trace record. Zero-valued optional fields are omitted from
// the JSON encoding.
type Event struct {
	// AtMs is the virtual time in milliseconds since simulation start.
	AtMs int64 `json:"atMs"`
	// Device is the acting device.
	Device string `json:"device"`
	// Kind labels the action.
	Kind Kind `json:"kind"`
	// App and Seq identify the heartbeat involved, if any.
	App string `json:"app,omitempty"`
	Seq uint64 `json:"seq,omitempty"`
	// Peer is the other device involved (relay for a forward, source for
	// a collection).
	Peer string `json:"peer,omitempty"`
	// N is a count (batch size for a flush).
	N int `json:"n,omitempty"`
	// Reason annotates rejections, flush triggers and failures.
	Reason string `json:"reason,omitempty"`
	// OnTime reports delivery punctuality.
	OnTime bool `json:"onTime,omitempty"`
}

// Tracer consumes events. Implementations must be safe for use from a
// single simulation goroutine; the JSONL writer additionally locks so the
// real-time stack can share one.
type Tracer interface {
	Emit(ev Event)
}

// Emit sends ev to tr if tr is non-nil; call sites stay one-liners.
func Emit(tr Tracer, ev Event) {
	if tr != nil {
		tr.Emit(ev)
	}
}

// At converts a virtual instant to the wire representation.
func At(d time.Duration) int64 { return d.Milliseconds() }

// JSONL writes one JSON object per line.
type JSONL struct {
	mu   sync.Mutex
	enc  *json.Encoder
	errs int
	n    int
}

var _ Tracer = (*JSONL)(nil)

// NewJSONL builds a JSONL tracer over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Tracer.
func (j *JSONL) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(ev); err != nil {
		j.errs++
		return
	}
	j.n++
}

// Counts returns how many events were written and how many failed to
// encode.
func (j *JSONL) Counts() (written, failed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n, j.errs
}

// Recorder buffers events in memory for tests and analysis.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

var _ Tracer = (*Recorder)(nil)

// Emit implements Tracer.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Events returns a copy of everything recorded.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// ByKind returns the recorded events of one kind.
func (r *Recorder) ByKind(k Kind) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// String summarizes the recording as kind counts.
func (r *Recorder) String() string {
	counts := make(map[Kind]int)
	for _, ev := range r.Events() {
		counts[ev.Kind]++
	}
	return fmt.Sprintf("%v", counts)
}
