package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"sort"
	"time"
)

// Keyed is one trace event with its canonical merge key. The parallel
// city kernel records events per tile; Event.AtMs truncates to
// milliseconds, so the key carries the exact instant plus the emitting
// device's stable population order and a per-device emission counter.
// (At, Order, Seq) is a strict total order — Seq never repeats within a
// device — so merged output is identical however events were sharded.
type Keyed struct {
	At    time.Duration
	Order int
	Seq   uint64
	Ev    Event
}

func keyedLess(a, b Keyed) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Order != b.Order {
		return a.Order < b.Order
	}
	return a.Seq < b.Seq
}

// SortKeyed orders events by their canonical key in place.
func SortKeyed(events []Keyed) {
	sort.Slice(events, func(i, j int) bool { return keyedLess(events[i], events[j]) })
}

// MergeKeyed concatenates per-tile buffers and returns them in canonical
// order. The inputs are not modified.
func MergeKeyed(buffers ...[]Keyed) []Keyed {
	n := 0
	for _, b := range buffers {
		n += len(b)
	}
	out := make([]Keyed, 0, n)
	for _, b := range buffers {
		out = append(out, b...)
	}
	SortKeyed(out)
	return out
}

// Digest accumulates a SHA-256 over a canonically ordered event stream,
// so a full run's trace can be fingerprinted window by window without
// retaining the events. Feed it merged events in canonical order; the sum
// is then bit-identical for a given seed regardless of tile count.
type Digest struct {
	h   hash.Hash
	n   int
	err error
}

// NewDigest returns an empty trace digest.
func NewDigest() *Digest {
	return &Digest{h: sha256.New()}
}

// Add hashes one canonical line per event: the merge key followed by the
// event's JSON encoding.
func (d *Digest) Add(events []Keyed) {
	for _, e := range events {
		raw, err := json.Marshal(e.Ev)
		if err != nil && d.err == nil {
			d.err = err
			continue
		}
		fmt.Fprintf(d.h, "%d %d %d %s\n", int64(e.At), e.Order, e.Seq, raw)
		d.n++
	}
}

// Events reports how many events were hashed.
func (d *Digest) Events() int { return d.n }

// Sum returns the hex digest of everything added so far.
func (d *Digest) Sum() (string, error) {
	if d.err != nil {
		return "", d.err
	}
	return hex.EncodeToString(d.h.Sum(nil)), nil
}
