package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestJSONLWritesOneLinePerEvent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Event{AtMs: 1000, Device: "ue-1", Kind: KindGenerated, App: "WeChat", Seq: 1})
	j.Emit(Event{AtMs: 2000, Device: "relay", Kind: KindFlush, N: 3, Reason: "deadline"})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["kind"] != "hb-generated" || first["device"] != "ue-1" {
		t.Fatalf("line 0 = %v", first)
	}
	// Omitted zero fields.
	if _, ok := first["n"]; ok {
		t.Fatal("zero N not omitted")
	}
	written, failed := j.Counts()
	if written != 2 || failed != 0 {
		t.Fatalf("counts = %d/%d", written, failed)
	}
}

func TestEmitNilTracerIsNoop(t *testing.T) {
	Emit(nil, Event{Kind: KindAck}) // must not panic
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Emit(Event{Kind: KindAck, Seq: 1})
	r.Emit(Event{Kind: KindFlush, N: 2})
	r.Emit(Event{Kind: KindAck, Seq: 2})
	if got := len(r.Events()); got != 3 {
		t.Fatalf("events = %d, want 3", got)
	}
	acks := r.ByKind(KindAck)
	if len(acks) != 2 || acks[1].Seq != 2 {
		t.Fatalf("ByKind = %v", acks)
	}
	// Events returns a copy.
	evs := r.Events()
	evs[0].Seq = 99
	if r.Events()[0].Seq == 99 {
		t.Fatal("Events not a copy")
	}
	if !strings.Contains(r.String(), "ack") {
		t.Fatalf("summary = %q", r.String())
	}
}

func TestAt(t *testing.T) {
	if got := At(1500 * time.Millisecond); got != 1500 {
		t.Fatalf("At = %d, want 1500", got)
	}
}
