package simtime

import (
	"errors"
	"fmt"
	"time"
)

// Task is a handle to one pending Agenda action. Unlike a raw Timer
// handle, a Task stays valid until it fires or is cancelled even when its
// agenda migrates to another scheduler, which is exactly what a device
// crossing a tile border needs.
type Task struct {
	at    time.Duration
	stamp uint64
	fn    func()
	index int // position in the agenda heap, -1 when fired or cancelled
}

// At reports the virtual instant the task runs at.
func (t *Task) At() time.Duration { return t.at }

// Pending reports whether the task is still scheduled.
func (t *Task) Pending() bool { return t != nil && t.index >= 0 }

// Agenda multiplexes all future actions of one simulated entity onto a
// single Scheduler timer. The scheduler timer is always armed for the
// earliest pending task; when it fires, exactly one task runs and the
// timer is re-armed for the next head.
//
// The point of the indirection is migration: Rehome stops the one
// underlying timer on the old scheduler and arms an equivalent one on the
// new scheduler. The task set itself — instants, order, callbacks — moves
// untouched, so a migration can neither drop nor duplicate a scheduled
// action. Tasks at the same instant run in scheduling (stamp) order.
type Agenda struct {
	sched *Scheduler
	heap  []*Task // binary min-heap ordered by (at, stamp)
	timer *Timer  // armed for heap[0]; nil when empty or mid-fire
	stamp uint64
}

// NewAgenda returns an empty agenda bound to sched.
func NewAgenda(sched *Scheduler) *Agenda {
	return &Agenda{sched: sched}
}

// Scheduler returns the scheduler the agenda is currently homed on.
func (a *Agenda) Scheduler() *Scheduler { return a.sched }

// Len reports how many tasks are pending.
func (a *Agenda) Len() int { return len(a.heap) }

// NextAt reports the instant of the earliest pending task.
func (a *Agenda) NextAt() (time.Duration, bool) {
	if len(a.heap) == 0 {
		return 0, false
	}
	return a.heap[0].at, true
}

// At schedules fn at the absolute virtual instant at.
func (a *Agenda) At(at time.Duration, fn func()) (*Task, error) {
	if fn == nil {
		return nil, errors.New("simtime: nil agenda task")
	}
	if at < a.sched.Now() {
		return nil, fmt.Errorf("simtime: agenda task at %v is before now %v", at, a.sched.Now())
	}
	t := &Task{at: at, stamp: a.stamp, fn: fn}
	a.stamp++
	a.push(t)
	if a.heap[0] == t {
		a.rearm()
	}
	return t, nil
}

// After schedules fn to run d after the current virtual time; negative d
// is treated as zero.
func (a *Agenda) After(d time.Duration, fn func()) (*Task, error) {
	if d < 0 {
		d = 0
	}
	return a.At(a.sched.Now()+d, fn)
}

// Cancel removes a pending task. It returns true if the task was pending
// and is now cancelled, false if it already ran or was already cancelled.
func (a *Agenda) Cancel(t *Task) bool {
	if t == nil || t.index < 0 {
		return false
	}
	head := a.heap[0] == t
	a.remove(t.index)
	t.fn = nil
	if head {
		a.rearm()
	}
	return true
}

// Rehome moves the agenda — its entire pending task set — onto another
// scheduler. Both schedulers must agree on the current instant (the
// caller synchronizes them at a window boundary before migrating), which
// guarantees every pending task is still in the new scheduler's future.
func (a *Agenda) Rehome(sched *Scheduler) error {
	if sched == a.sched {
		return nil
	}
	if sched.Now() != a.sched.Now() {
		return fmt.Errorf("simtime: rehome across clocks (%v -> %v)", a.sched.Now(), sched.Now())
	}
	if a.timer != nil {
		a.sched.Stop(a.timer)
		a.timer = nil
	}
	a.sched = sched
	a.rearm()
	return nil
}

// fire runs the earliest pending task and re-arms for the next one.
func (a *Agenda) fire() {
	a.timer = nil // the underlying timer just fired; the handle is dead
	t := a.heap[0]
	a.remove(0)
	fn := t.fn
	t.fn = nil
	fn()
	a.rearm()
}

// rearm points the underlying scheduler timer at the current heap head.
func (a *Agenda) rearm() {
	if a.timer != nil && (len(a.heap) == 0 || a.timer.At() != a.heap[0].at) {
		a.sched.Stop(a.timer)
		a.timer = nil
	}
	if len(a.heap) == 0 || a.timer != nil {
		return
	}
	timer, err := a.sched.At(a.heap[0].at, a.fire)
	if err != nil {
		// Unreachable by construction: heads are never in the past (At
		// rejects past instants and Rehome requires synchronized clocks).
		panic(fmt.Sprintf("simtime: agenda rearm: %v", err))
	}
	a.timer = timer
}

// The agenda heap is a plain binary min-heap by (at, stamp). Agendas hold
// a handful of tasks (heartbeat, flush, RRC release, feedback timers), so
// arity tuning buys nothing here.

func taskLess(x, y *Task) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.stamp < y.stamp
}

func (a *Agenda) push(t *Task) {
	t.index = len(a.heap)
	a.heap = append(a.heap, t)
	a.siftUp(t.index)
}

func (a *Agenda) remove(i int) {
	h := a.heap
	n := len(h) - 1
	t := h[i]
	last := h[n]
	h[n] = nil
	a.heap = h[:n]
	if i != n {
		last.index = i
		a.heap[i] = last
		a.siftDown(i)
		a.siftUp(last.index)
	}
	t.index = -1
}

func (a *Agenda) siftUp(i int) {
	h := a.heap
	t := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !taskLess(t, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = t
	t.index = i
}

func (a *Agenda) siftDown(i int) {
	h := a.heap
	n := len(h)
	t := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && taskLess(h[c+1], h[c]) {
			c++
		}
		if !taskLess(h[c], t) {
			break
		}
		h[i] = h[c]
		h[i].index = i
		i = c
	}
	h[i] = t
	t.index = i
}
