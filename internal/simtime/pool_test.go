package simtime

import (
	"testing"
	"time"
)

// TestStopReleasesFn pins the free-list contract that motivated it: a
// cancelled timer must not keep its closure — and everything the closure
// captured — reachable until the caller happens to drop the handle.
func TestStopReleasesFn(t *testing.T) {
	s := NewScheduler(1)
	big := make([]byte, 1<<20)
	tm, err := s.At(time.Second, func() { _ = big[0] })
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	if tm.fn == nil {
		t.Fatal("pending timer lost its fn")
	}
	if !s.Stop(tm) {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.fn != nil {
		t.Fatal("stopped timer still pins its event closure")
	}
}

// TestFiredTimerReleasesFn checks the same for the fire path.
func TestFiredTimerReleasesFn(t *testing.T) {
	s := NewScheduler(1)
	tm, err := s.At(0, func() {})
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	if !s.Step() {
		t.Fatal("Step fired nothing")
	}
	if tm.fn != nil {
		t.Fatal("fired timer still pins its event closure")
	}
}

// TestTimerRecycledAfterFire verifies the free list actually recycles: the
// next At after a fire reuses the fired Timer's allocation.
func TestTimerRecycledAfterFire(t *testing.T) {
	s := NewScheduler(1)
	t1, err := s.At(0, func() {})
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	t2, err := s.At(time.Second, func() {})
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	if t1 != t2 {
		t.Fatal("fired timer was not recycled by the next At")
	}
	if t2.Stopped() || t2.At() != time.Second {
		t.Fatalf("recycled timer state dirty: stopped=%v at=%v", t2.Stopped(), t2.At())
	}
}

// TestTimerRecycledAfterStop verifies the stop path feeds the pool too.
func TestTimerRecycledAfterStop(t *testing.T) {
	s := NewScheduler(1)
	t1, err := s.At(time.Second, func() {})
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	s.Stop(t1)
	t2, err := s.At(2*time.Second, func() {})
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	if t1 != t2 {
		t.Fatal("stopped timer was not recycled by the next At")
	}
	if t2.Stopped() {
		t.Fatal("recycled timer still marked stopped")
	}
}

// TestSelfReschedulingReusesTimer covers the dominant simulation pattern —
// an event that schedules its successor from inside its own callback. The
// successor is scheduled before the fired timer is recycled (recycling waits
// for the callback to return, which is what makes the pattern safe), so the
// chain ping-pongs between exactly two Timer allocations regardless of length.
func TestSelfReschedulingReusesTimer(t *testing.T) {
	s := NewScheduler(1)
	distinct := make(map[*Timer]bool)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 50 {
			tm, err := s.After(time.Millisecond, tick)
			if err != nil {
				t.Errorf("After: %v", err)
				return
			}
			distinct[tm] = true
		}
	}
	first, err := s.After(time.Millisecond, tick)
	if err != nil {
		t.Fatalf("After: %v", err)
	}
	distinct[first] = true
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 50 {
		t.Fatalf("fired %d ticks, want 50", n)
	}
	if len(distinct) > 2 {
		t.Fatalf("50-tick chain used %d distinct Timers, want at most 2", len(distinct))
	}
}

// TestSteadyStateZeroAlloc asserts the headline property: once the pool is
// primed, the fire-and-reschedule steady state performs no heap allocation.
func TestSteadyStateZeroAlloc(t *testing.T) {
	s := NewScheduler(1)
	noop := func() {}
	// Prime the pool and the queue slice.
	if _, err := s.After(time.Millisecond, noop); err != nil {
		t.Fatalf("After: %v", err)
	}
	s.Step()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.After(time.Millisecond, noop); err != nil {
			t.Error(err)
			return
		}
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady state allocates %.1f objects per event, want 0", allocs)
	}
}

// TestStopAndRearmZeroAlloc covers the second hot pattern: cancelling a
// pending timer and arming a replacement (RRC inactivity tail, relay flush
// deadline) must run allocation-free from the pool.
func TestStopAndRearmZeroAlloc(t *testing.T) {
	s := NewScheduler(1)
	noop := func() {}
	pending, err := s.After(time.Hour, noop)
	if err != nil {
		t.Fatalf("After: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.Stop(pending)
		pending, err = s.After(time.Hour, noop)
		if err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("stop+rearm allocates %.1f objects per cycle, want 0", allocs)
	}
}
