package simtime

import (
	"testing"
	"time"
)

func TestAgendaRunsTasksInOrder(t *testing.T) {
	s := NewScheduler(1)
	a := NewAgenda(s)
	var got []int
	if _, err := a.At(3*time.Second, func() { got = append(got, 3) }); err != nil {
		t.Fatal(err)
	}
	if _, err := a.At(1*time.Second, func() { got = append(got, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := a.At(2*time.Second, func() { got = append(got, 2) }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ran %v, want %v", got, want)
		}
	}
	if a.Len() != 0 {
		t.Fatalf("agenda still holds %d tasks", a.Len())
	}
}

func TestAgendaSameInstantStampOrder(t *testing.T) {
	s := NewScheduler(1)
	a := NewAgenda(s)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		if _, err := a.At(time.Second, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant tasks ran as %v, want scheduling order", got)
		}
	}
}

func TestAgendaCancel(t *testing.T) {
	s := NewScheduler(1)
	a := NewAgenda(s)
	ran := false
	task, err := a.At(time.Second, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	later := 0
	if _, err := a.At(2*time.Second, func() { later++ }); err != nil {
		t.Fatal(err)
	}
	if !a.Cancel(task) {
		t.Fatal("Cancel returned false for a pending task")
	}
	if a.Cancel(task) {
		t.Fatal("double Cancel returned true")
	}
	if task.Pending() {
		t.Fatal("cancelled task still pending")
	}
	if err := s.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled task ran")
	}
	if later != 1 {
		t.Fatalf("surviving task ran %d times, want 1", later)
	}
}

func TestAgendaCancelHeadKeepsSameInstantSibling(t *testing.T) {
	s := NewScheduler(1)
	a := NewAgenda(s)
	var got []int
	head, err := a.At(time.Second, func() { got = append(got, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.At(time.Second, func() { got = append(got, 1) }); err != nil {
		t.Fatal(err)
	}
	a.Cancel(head)
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("ran %v, want just the sibling", got)
	}
}

func TestAgendaReschedulesFromCallback(t *testing.T) {
	s := NewScheduler(1)
	a := NewAgenda(s)
	fires := 0
	var tick func()
	tick = func() {
		fires++
		if fires < 4 {
			if _, err := a.After(time.Second, tick); err != nil {
				t.Errorf("reschedule: %v", err)
			}
		}
	}
	if _, err := a.After(time.Second, tick); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fires != 4 {
		t.Fatalf("fired %d times, want 4", fires)
	}
	if got := s.Fired(); got != 4 {
		t.Fatalf("scheduler fired %d events for 4 agenda tasks", got)
	}
}

func TestAgendaRejectsPastAndNil(t *testing.T) {
	s := NewScheduler(1)
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	a := NewAgenda(s)
	if _, err := a.At(500*time.Millisecond, func() {}); err == nil {
		t.Fatal("scheduling in the past succeeded")
	}
	if _, err := a.At(2*time.Second, nil); err == nil {
		t.Fatal("nil task accepted")
	}
	if _, err := a.After(-time.Second, func() {}); err != nil {
		t.Fatalf("negative After should clamp to now: %v", err)
	}
}

func TestAgendaRehomeMovesPendingTasks(t *testing.T) {
	s1 := NewScheduler(1)
	s2 := NewScheduler(2)
	a := NewAgenda(s1)
	var got []int
	for i := 1; i <= 3; i++ {
		i := i
		if _, err := a.At(time.Duration(i)*time.Second, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	// Run the first task on s1, sync both clocks to 1.5s, migrate.
	if err := s1.RunUntil(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s2.RunUntil(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := a.Rehome(s2); err != nil {
		t.Fatal(err)
	}
	if s1.Pending() != 0 {
		t.Fatalf("old scheduler still holds %d timers after rehome", s1.Pending())
	}
	if err := s1.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s2.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("ran %v, want all three tasks exactly once", got)
	}
	for i := range got {
		if got[i] != i+1 {
			t.Fatalf("ran %v, want order preserved across rehome", got)
		}
	}
}

func TestAgendaRehomeRejectsClockSkew(t *testing.T) {
	s1 := NewScheduler(1)
	s2 := NewScheduler(2)
	a := NewAgenda(s1)
	if _, err := a.At(time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s2.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := a.Rehome(s2); err == nil {
		t.Fatal("rehome across skewed clocks succeeded")
	}
}

func TestAgendaRehomeEmptyAndSameScheduler(t *testing.T) {
	s1 := NewScheduler(1)
	s2 := NewScheduler(2)
	a := NewAgenda(s1)
	if err := a.Rehome(s1); err != nil {
		t.Fatal(err)
	}
	if err := a.Rehome(s2); err != nil {
		t.Fatal(err)
	}
	if a.Scheduler() != s2 {
		t.Fatal("agenda not homed on new scheduler")
	}
	if _, err := a.At(time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	if s2.Pending() != 1 {
		t.Fatalf("new scheduler holds %d timers, want 1", s2.Pending())
	}
}
