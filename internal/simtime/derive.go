package simtime

import "math/rand"

// DeriveSeed expands a root seed and a stream index into an independent
// seed using SplitMix64 finalization (Steele et al., "Fast Splittable
// Pseudorandom Number Generators"). Nearby (seed, stream) pairs map to
// uncorrelated outputs, so one scenario seed can fan out into one stream
// per tile and per device without manual seed bookkeeping.
func DeriveSeed(seed, stream int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// splitmix is a SplitMix64 generator behind the rand.Source64 interface.
// Unlike rand.NewSource (whose lagged-Fibonacci state is ~5 KB), its state
// is 8 bytes, which is what makes one generator per device affordable at
// the million-device scale.
type splitmix struct{ state uint64 }

func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

// NewDerivedRand returns a seeded *rand.Rand on the (seed, stream)
// SplitMix64 stream. Draw-for-draw deterministic and cheap enough to
// allocate per device.
func NewDerivedRand(seed, stream int64) *rand.Rand {
	return rand.New(&splitmix{state: uint64(DeriveSeed(seed, stream))})
}
