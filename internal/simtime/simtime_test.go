package simtime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerStartsAtZero(t *testing.T) {
	s := NewScheduler(1)
	if got := s.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestAtRunsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for _, tc := range []struct {
		at time.Duration
		id int
	}{
		{3 * time.Second, 3},
		{1 * time.Second, 1},
		{2 * time.Second, 2},
	} {
		tc := tc
		if _, err := s.At(tc.at, func() { order = append(order, tc.id) }); err != nil {
			t.Fatalf("At(%v): %v", tc.at, err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", s.Now())
	}
}

func TestSimultaneousEventsFireInSchedulingOrder(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.At(time.Second, func() { order = append(order, i) }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, got, i, order)
		}
	}
}

func TestAtRejectsPast(t *testing.T) {
	s := NewScheduler(1)
	if _, err := s.At(time.Second, func() {}); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := s.At(500*time.Millisecond, func() {}); err == nil {
		t.Fatal("At in the past succeeded, want error")
	}
}

func TestAtRejectsNilFunc(t *testing.T) {
	s := NewScheduler(1)
	if _, err := s.At(0, nil); err == nil {
		t.Fatal("At(nil) succeeded, want error")
	}
}

func TestAfterClampsNegative(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	if _, err := s.After(-time.Second, func() { ran = true }); err != nil {
		t.Fatalf("After: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("event did not run")
	}
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestStopCancelsPendingTimer(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	tm, err := s.At(time.Second, func() { ran = true })
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	if !s.Stop(tm) {
		t.Fatal("Stop returned false for pending timer")
	}
	if s.Stop(tm) {
		t.Fatal("second Stop returned true")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !tm.Stopped() {
		t.Fatal("timer not marked stopped")
	}
}

func TestStopFiredTimerReturnsFalse(t *testing.T) {
	s := NewScheduler(1)
	tm, err := s.At(0, func() {})
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Stop(tm) {
		t.Fatal("Stop of fired timer returned true")
	}
}

func TestStopNilTimer(t *testing.T) {
	s := NewScheduler(1)
	if s.Stop(nil) {
		t.Fatal("Stop(nil) returned true")
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := NewScheduler(1)
	var hits []time.Duration
	var tick func()
	tick = func() {
		hits = append(hits, s.Now())
		if s.Now() < 5*time.Second {
			if _, err := s.After(time.Second, tick); err != nil {
				t.Errorf("After: %v", err)
			}
		}
	}
	if _, err := s.After(time.Second, tick); err != nil {
		t.Fatalf("After: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(hits) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(hits), hits)
	}
}

func TestRunUntilLeavesFutureEventsQueued(t *testing.T) {
	s := NewScheduler(1)
	var ran []time.Duration
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 10 * time.Second} {
		at := at
		if _, err := s.At(at, func() { ran = append(ran, at) }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2", len(ran))
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ran) != 3 {
		t.Fatalf("ran %d events after Run, want 3", len(ran))
	}
}

func TestRunUntilRejectsPastHorizon(t *testing.T) {
	s := NewScheduler(1)
	if _, err := s.At(2*time.Second, func() {}); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.RunUntil(time.Second); err == nil {
		t.Fatal("RunUntil past horizon succeeded, want error")
	}
}

func TestStopRunInterruptsRun(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		if _, err := s.At(time.Duration(i)*time.Second, func() {
			count++
			if i == 3 {
				s.StopRun()
			}
		}); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	// Resuming drains the rest.
	if err := s.Run(); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		s := NewScheduler(seed)
		var draws []int64
		var tick func()
		tick = func() {
			draws = append(draws, s.Rand().Int63n(1000))
			if len(draws) < 50 {
				if _, err := s.After(time.Duration(s.Rand().Intn(100))*time.Millisecond, tick); err != nil {
					t.Errorf("After: %v", err)
				}
			}
		}
		if _, err := s.After(0, tick); err != nil {
			t.Fatalf("After: %v", err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestFiredCounter(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 7; i++ {
		if _, err := s.After(time.Duration(i)*time.Millisecond, func() {}); err != nil {
			t.Fatalf("After: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

// TestQuickClockMonotonic property-checks that for any batch of event
// offsets, the observed event times are non-decreasing and the final clock
// equals the maximum offset.
func TestQuickClockMonotonic(t *testing.T) {
	prop := func(offsets []uint16) bool {
		s := NewScheduler(7)
		var seen []time.Duration
		var max time.Duration
		for _, off := range offsets {
			d := time.Duration(off) * time.Millisecond
			if d > max {
				max = d
			}
			if _, err := s.After(d, func() { seen = append(seen, s.Now()) }); err != nil {
				return false
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		if len(offsets) > 0 && s.Now() != max {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStopNeverFires property-checks that stopping an arbitrary subset
// of timers prevents exactly that subset from firing.
func TestQuickStopNeverFires(t *testing.T) {
	prop := func(offsets []uint8, stopMask []bool) bool {
		s := NewScheduler(3)
		fired := make([]bool, len(offsets))
		timers := make([]*Timer, len(offsets))
		for i, off := range offsets {
			i := i
			tm, err := s.After(time.Duration(off)*time.Millisecond, func() { fired[i] = true })
			if err != nil {
				return false
			}
			timers[i] = tm
		}
		for i := range timers {
			if i < len(stopMask) && stopMask[i] {
				s.Stop(timers[i])
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := range timers {
			wantStopped := i < len(stopMask) && stopMask[i]
			if fired[i] == wantStopped {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
