package simtime

import (
	"testing"
	"time"
)

// BenchmarkSteadyStateEvent measures the kernel's per-event cost in the
// steady state every simulation spends its life in: one event fires and
// schedules its successor, exactly like a heartbeat loop. With the pooled
// typed kernel this is the 0 allocs/event figure in EXPERIMENTS.md.
func BenchmarkSteadyStateEvent(b *testing.B) {
	s := NewScheduler(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			if _, err := s.After(time.Millisecond, tick); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := s.After(time.Millisecond, tick); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	if n < b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkPendingChurn measures the kernel with a deep queue: 4096 pending
// timers while events fire and reschedule, the regime of a 10k-device city
// where every device holds heartbeat, feedback and RRC timers at once.
func BenchmarkPendingChurn(b *testing.B) {
	const depth = 4096
	s := NewScheduler(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n+depth <= b.N {
			if _, err := s.After(time.Duration(1+n%97)*time.Millisecond, tick); err != nil {
				b.Fatal(err)
			}
		}
	}
	for i := 0; i < depth && i < b.N; i++ {
		if _, err := s.After(time.Duration(1+i%97)*time.Millisecond, tick); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStopAndRearm measures the cancel/rearm pattern of the RRC
// inactivity tail and the relay flush timer: every event stops a pending
// timer and arms a replacement.
func BenchmarkStopAndRearm(b *testing.B) {
	s := NewScheduler(1)
	pending, err := s.After(time.Hour, func() {})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Stop(pending)
		pending, err = s.After(time.Hour, func() {})
		if err != nil {
			b.Fatal(err)
		}
	}
}
