package simtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestTileGroupValidation(t *testing.T) {
	if _, err := NewTileGroup(1, 0); err == nil {
		t.Fatal("zero tiles accepted")
	}
	g, err := NewTileGroup(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(0, time.Second, nil, nil, nil); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if err := g.Run(time.Second, 0, nil, nil, nil); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestTileGroupDerivedStreamsDiffer(t *testing.T) {
	g, err := NewTileGroup(42, 4)
	if err != nil {
		t.Fatal(err)
	}
	draws := make(map[int64]int)
	for i := 0; i < g.Tiles(); i++ {
		draws[g.Scheduler(i).Rand().Int63()]++
	}
	if len(draws) != 4 {
		t.Fatalf("tile RNG streams collide: %d distinct first draws of 4", len(draws))
	}
}

// TestTileGroupWindowBoundaries pins the window semantics the parallel
// city model depends on: an event scheduled exactly at a boundary B runs
// in the window that starts at B — after barrier(B) and after that
// window's begin hook — and events exactly at the horizon do fire.
func TestTileGroupWindowBoundaries(t *testing.T) {
	g, err := NewTileGroup(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Scheduler(0)
	var order []string
	for _, at := range []time.Duration{9 * time.Second, 10 * time.Second, 30 * time.Second} {
		at := at
		if _, err := s.At(at, func() { order = append(order, fmt.Sprintf("event@%v", at)) }); err != nil {
			t.Fatal(err)
		}
	}
	begin := func(tile int, start time.Duration) error {
		order = append(order, fmt.Sprintf("begin@%v", start))
		return nil
	}
	end := func(tile int, boundary time.Duration) error {
		order = append(order, fmt.Sprintf("end@%v", boundary))
		return nil
	}
	barrier := func(b time.Duration, final bool) error {
		order = append(order, fmt.Sprintf("barrier@%v final=%v", b, final))
		return nil
	}
	if err := g.Run(30*time.Second, 10*time.Second, begin, end, barrier); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"begin@0s", "event@9s", "end@10s", "barrier@10s final=false",
		"begin@10s", "event@10s", "end@20s", "barrier@20s final=false",
		"begin@20s", "event@30s", "end@30s", "barrier@30s final=true",
	}
	if len(order) != len(want) {
		t.Fatalf("order %v\nwant %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v\nwant %v", order, want)
		}
	}
	if s.Now() != 30*time.Second {
		t.Fatalf("clock at %v, want horizon", s.Now())
	}
}

func TestTileGroupPartialFinalWindow(t *testing.T) {
	g, err := NewTileGroup(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var boundaries []time.Duration
	barrier := func(b time.Duration, final bool) error {
		boundaries = append(boundaries, b)
		return nil
	}
	if err := g.Run(25*time.Second, 10*time.Second, nil, nil, barrier); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Second, 20 * time.Second, 25 * time.Second}
	if len(boundaries) != len(want) {
		t.Fatalf("boundaries %v, want %v", boundaries, want)
	}
	for i := range want {
		if boundaries[i] != want[i] {
			t.Fatalf("boundaries %v, want %v", boundaries, want)
		}
	}
	for i := 0; i < g.Tiles(); i++ {
		if g.Scheduler(i).Now() != 25*time.Second {
			t.Fatalf("tile %d clock %v, want horizon", i, g.Scheduler(i).Now())
		}
	}
}

func TestTileGroupHookErrorsAbort(t *testing.T) {
	boom := errors.New("boom")

	g, _ := NewTileGroup(1, 2)
	err := g.Run(10*time.Second, time.Second, func(tile int, _ time.Duration) error {
		if tile == 1 {
			return boom
		}
		return nil
	}, nil, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("begin error not surfaced: %v", err)
	}

	g, _ = NewTileGroup(1, 2)
	err = g.Run(10*time.Second, time.Second, nil, func(tile int, _ time.Duration) error {
		if tile == 0 {
			return boom
		}
		return nil
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("end error not surfaced: %v", err)
	}

	g, _ = NewTileGroup(1, 2)
	calls := 0
	err = g.Run(10*time.Second, time.Second, nil, nil, func(time.Duration, bool) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("barrier error not surfaced after first call: err=%v calls=%d", err, calls)
	}
}

// TestTileGroupMigrationNeverDropsOrDuplicates is the migration property
// test: random agendas with random task sets are rehomed to random tiles
// at every window boundary, and every scheduled task must still run
// exactly once, at its exact instant, in per-agenda scheduling order.
func TestTileGroupMigrationNeverDropsOrDuplicates(t *testing.T) {
	const (
		tiles   = 4
		agendas = 32
		horizon = 100 * time.Second
		window  = 5 * time.Second
	)
	for trial := int64(0); trial < 5; trial++ {
		rng := rand.New(rand.NewSource(1000 + trial))
		g, err := NewTileGroup(trial, tiles)
		if err != nil {
			t.Fatal(err)
		}

		type firing struct {
			agenda int
			at     time.Duration
			n      int // per-agenda scheduling index
		}
		var mu sync.Mutex
		var fired []firing
		ags := make([]*Agenda, agendas)
		scheduled := 0
		for i := range ags {
			ags[i] = NewAgenda(g.Scheduler(rng.Intn(tiles)))
			n := 1 + rng.Intn(8)
			for k := 0; k < n; k++ {
				i, k := i, k
				at := time.Duration(rng.Int63n(int64(horizon) + 1))
				ag := ags[i]
				if _, err := ags[i].At(at, func() {
					mu.Lock()
					fired = append(fired, firing{agenda: i, at: at, n: k})
					mu.Unlock()
					if ag.Scheduler().Now() != at {
						t.Errorf("agenda %d task %d ran at %v, scheduled for %v", i, k, ag.Scheduler().Now(), at)
					}
				}); err != nil {
					t.Fatal(err)
				}
				scheduled++
			}
		}

		barrier := func(b time.Duration, final bool) error {
			if final {
				return nil
			}
			for _, a := range ags {
				if err := a.Rehome(g.Scheduler(rng.Intn(tiles))); err != nil {
					return err
				}
			}
			return nil
		}
		if err := g.Run(horizon, window, nil, nil, barrier); err != nil {
			t.Fatal(err)
		}

		if len(fired) != scheduled {
			t.Fatalf("trial %d: %d tasks fired, %d scheduled", trial, len(fired), scheduled)
		}
		seen := make(map[firing]int)
		for _, f := range fired {
			seen[f]++
		}
		for f, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: task %+v fired %d times", trial, f, n)
			}
		}
		// Per-agenda order: same-instant tasks must run in scheduling order.
		perAgenda := make([][]firing, agendas)
		for _, f := range fired {
			perAgenda[f.agenda] = append(perAgenda[f.agenda], f)
		}
		for i, fs := range perAgenda {
			sorted := append([]firing(nil), fs...)
			sort.SliceStable(sorted, func(a, b int) bool {
				if sorted[a].at != sorted[b].at {
					return sorted[a].at < sorted[b].at
				}
				return sorted[a].n < sorted[b].n
			})
			for k := range fs {
				if fs[k] != sorted[k] {
					t.Fatalf("trial %d agenda %d: fired %v, want (at, stamp) order %v", trial, i, fs, sorted)
				}
			}
		}
	}
}

func TestSchedulerNextAtAndAdvanceTo(t *testing.T) {
	s := NewScheduler(1)
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	if _, err := s.At(5*time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	at, ok := s.NextAt()
	if !ok || at != 5*time.Second {
		t.Fatalf("NextAt = %v, %v; want 5s, true", at, ok)
	}
	if err := s.AdvanceTo(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("now %v after AdvanceTo(3s)", s.Now())
	}
	if err := s.AdvanceTo(2 * time.Second); err == nil {
		t.Fatal("AdvanceTo into the past succeeded")
	}
	if err := s.AdvanceTo(6 * time.Second); err == nil {
		t.Fatal("AdvanceTo past a queued event succeeded")
	}
	if err := s.AdvanceTo(5 * time.Second); err != nil {
		t.Fatalf("AdvanceTo to exactly the next event: %v", err)
	}
}

func TestDeriveSeedSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for stream := int64(-64); stream < 64; stream++ {
		seen[DeriveSeed(2017, stream)] = true
	}
	if len(seen) != 128 {
		t.Fatalf("DeriveSeed collisions: %d distinct of 128", len(seen))
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("DeriveSeed ignores the seed")
	}
}

func TestNewDerivedRandDeterministic(t *testing.T) {
	a := NewDerivedRand(7, 3)
	b := NewDerivedRand(7, 3)
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, stream) diverged")
		}
	}
	c := NewDerivedRand(7, 4)
	same := true
	for i := 0; i < 4; i++ {
		if a.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different streams produced identical draws")
	}
	// Uniformity sanity for the float path device models draw from.
	r := NewDerivedRand(7, 5)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		sum += r.Float64()
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %v off uniform", mean)
	}
}
