// Package simtime provides a deterministic discrete-event simulation kernel.
//
// A Scheduler owns a virtual clock and an event queue. Events scheduled for
// the same instant fire in scheduling order, which — together with a seeded
// random source — makes every simulation run reproducible.
//
// The event queue is an inlined 4-ary min-heap of *Timer ordered by
// (instant, scheduling sequence), and fired or stopped Timers are recycled
// through a free list, so the steady state of a simulation — events firing
// and scheduling successors — performs no heap allocation and no interface
// dispatch. See the Timer type for the handle-lifetime rule this implies.
package simtime

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrStopped is returned by Run variants when the scheduler was stopped
// explicitly before the queue drained or the horizon was reached.
var ErrStopped = errors.New("simtime: scheduler stopped")

// Timer is a handle to a scheduled event. A Timer is owned by the Scheduler
// that created it and must not be shared across schedulers.
//
// A handle is live from At/After until its event fires or Stop returns
// true; the scheduler then recycles the Timer for a future event, so a
// retained stale handle may alias a different live event. Holders must
// therefore drop (nil out) stored handles when the event callback runs or
// immediately after stopping them, and must not call Stop, At or Stopped
// through a handle kept past that point.
type Timer struct {
	at      time.Duration
	seq     uint64
	index   int // position in the heap, -1 when fired or stopped
	fn      func()
	stopped bool
	next    *Timer // free-list link while recycled
}

// At reports the virtual instant the timer fires at.
func (t *Timer) At() time.Duration { return t.at }

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t.stopped }

// Scheduler is a single-threaded discrete-event scheduler with a virtual
// clock that starts at zero. It is not safe for concurrent use; the entire
// simulation runs on the caller's goroutine.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   []*Timer // 4-ary min-heap ordered by (at, seq)
	free    *Timer   // recycled timers, linked through Timer.next
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// NewScheduler returns a scheduler whose random source is seeded with seed.
// The same seed always yields the same event interleaving and random draws.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand exposes the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired reports how many events have executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at the absolute virtual instant at. Scheduling in
// the past (before Now) is rejected with an error: in a discrete-event model
// there is no way to execute an event at an instant that has already been
// processed.
func (s *Scheduler) At(at time.Duration, fn func()) (*Timer, error) {
	if fn == nil {
		return nil, errors.New("simtime: nil event function")
	}
	if at < s.now {
		return nil, fmt.Errorf("simtime: schedule at %v is before now %v", at, s.now)
	}
	t := s.free
	if t != nil {
		s.free = t.next
		t.next = nil
		t.stopped = false
	} else {
		t = &Timer{}
	}
	t.at = at
	t.seq = s.seq
	t.fn = fn
	s.seq++
	s.push(t)
	return t, nil
}

// After schedules fn to run d after the current virtual time. Negative d is
// treated as zero so callers can pass computed deltas without clamping.
func (s *Scheduler) After(d time.Duration, fn func()) (*Timer, error) {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Stop cancels a pending timer. It returns true if the timer was pending and
// is now cancelled, false if it already fired or was already stopped. A
// cancelled timer's event function is released immediately — a stopped Timer
// no longer pins its closure or anything the closure captured — and the
// Timer is recycled, so the handle is dead once Stop returns true.
func (s *Scheduler) Stop(t *Timer) bool {
	if t == nil || t.stopped || t.index < 0 {
		return false
	}
	s.remove(t.index)
	t.stopped = true
	t.fn = nil
	t.next = s.free
	s.free = t
	return true
}

// Step executes the next pending event, advancing the clock to its instant.
// It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	t := s.popMin()
	s.now = t.at
	s.fired++
	fn := t.fn
	t.fn = nil
	fn()
	// Recycle only after the callback returns: during fn the fired handle
	// is inert (index -1, nil fn) but cannot yet alias a new event, so the
	// self-rescheduling pattern `h = sched.After(...)` inside h's own
	// callback stays safe.
	t.next = s.free
	s.free = t
	return true
}

// Run executes events until the queue drains or StopRun is called. It
// returns ErrStopped in the latter case.
func (s *Scheduler) Run() error {
	s.stopped = false
	for s.Step() {
		if s.stopped {
			return ErrStopped
		}
	}
	return nil
}

// RunUntil executes events whose instant is <= horizon, then advances the
// clock to horizon exactly. Events scheduled beyond the horizon remain
// queued. It returns ErrStopped if StopRun interrupted the run.
func (s *Scheduler) RunUntil(horizon time.Duration) error {
	if horizon < s.now {
		return fmt.Errorf("simtime: horizon %v is before now %v", horizon, s.now)
	}
	s.stopped = false
	for len(s.queue) > 0 && s.queue[0].at <= horizon {
		s.Step()
		if s.stopped {
			return ErrStopped
		}
	}
	s.now = horizon
	return nil
}

// StopRun makes the innermost Run/RunUntil return after the current event
// finishes. It is intended to be called from inside an event function.
func (s *Scheduler) StopRun() { s.stopped = true }

// NextAt reports the instant of the earliest queued event, or false when
// the queue is empty. It lets a windowed driver (TileGroup) decide whether
// the next event belongs to the current synchronization window without
// executing it.
func (s *Scheduler) NextAt() (time.Duration, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// AdvanceTo moves the clock forward to t without executing any event. It
// is the window-boundary primitive: a tile that has drained its events
// strictly before a boundary jumps its clock to the boundary so every
// tile agrees on "now" when cross-tile state is exchanged. Advancing past
// a queued event is rejected — that would silently skip it.
func (s *Scheduler) AdvanceTo(t time.Duration) error {
	if t < s.now {
		return fmt.Errorf("simtime: advance to %v is before now %v", t, s.now)
	}
	if len(s.queue) > 0 && s.queue[0].at < t {
		return fmt.Errorf("simtime: advance to %v would skip event at %v", t, s.queue[0].at)
	}
	s.now = t
	return nil
}

// The event queue is a 4-ary min-heap laid out in a slice: children of node
// i live at 4i+1..4i+4. Compared with the binary container/heap it halves
// the tree depth, replaces interface dispatch with direct calls and keeps
// sift loops branch-cheap — (at, seq) is a strict total order, so any heap
// arity yields the same pop sequence.
const heapArity = 4

// less orders timers by instant, then scheduling sequence.
func less(a, b *Timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends t and restores the heap property.
func (s *Scheduler) push(t *Timer) {
	t.index = len(s.queue)
	s.queue = append(s.queue, t)
	s.siftUp(t.index)
}

// popMin removes and returns the earliest timer.
func (s *Scheduler) popMin() *Timer {
	q := s.queue
	t := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	s.queue = q[:n]
	if n > 0 {
		last.index = 0
		s.queue[0] = last
		s.siftDown(0)
	}
	t.index = -1
	return t
}

// remove deletes the timer at heap position i.
func (s *Scheduler) remove(i int) {
	q := s.queue
	n := len(q) - 1
	t := q[i]
	last := q[n]
	q[n] = nil
	s.queue = q[:n]
	if i != n {
		last.index = i
		s.queue[i] = last
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
	t.index = -1
}

// siftUp moves the timer at position i toward the root until its parent is
// not later than it.
func (s *Scheduler) siftUp(i int) {
	q := s.queue
	t := q[i]
	for i > 0 {
		p := (i - 1) / heapArity
		if !less(t, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = t
	t.index = i
}

// siftDown moves the timer at position i toward the leaves, reporting
// whether it moved at all.
func (s *Scheduler) siftDown(i int) bool {
	q := s.queue
	n := len(q)
	t := q[i]
	start := i
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(q[c], q[min]) {
				min = c
			}
		}
		if !less(q[min], t) {
			break
		}
		q[i] = q[min]
		q[i].index = i
		i = min
	}
	q[i] = t
	t.index = i
	return i != start
}
