// Package simtime provides a deterministic discrete-event simulation kernel.
//
// A Scheduler owns a virtual clock and an event queue. Events scheduled for
// the same instant fire in scheduling order, which — together with a seeded
// random source — makes every simulation run reproducible.
package simtime

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrStopped is returned by Run variants when the scheduler was stopped
// explicitly before the queue drained or the horizon was reached.
var ErrStopped = errors.New("simtime: scheduler stopped")

// Timer is a handle to a scheduled event. A Timer is owned by the Scheduler
// that created it and must not be shared across schedulers.
type Timer struct {
	at      time.Duration
	seq     uint64
	index   int // index in the heap, -1 when fired or stopped
	fn      func()
	stopped bool
}

// At reports the virtual instant the timer fires at.
func (t *Timer) At() time.Duration { return t.at }

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t.stopped }

// Scheduler is a single-threaded discrete-event scheduler with a virtual
// clock that starts at zero. It is not safe for concurrent use; the entire
// simulation runs on the caller's goroutine.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// NewScheduler returns a scheduler whose random source is seeded with seed.
// The same seed always yields the same event interleaving and random draws.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand exposes the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired reports how many events have executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// At schedules fn to run at the absolute virtual instant at. Scheduling in
// the past (before Now) is rejected with an error: in a discrete-event model
// there is no way to execute an event at an instant that has already been
// processed.
func (s *Scheduler) At(at time.Duration, fn func()) (*Timer, error) {
	if fn == nil {
		return nil, errors.New("simtime: nil event function")
	}
	if at < s.now {
		return nil, fmt.Errorf("simtime: schedule at %v is before now %v", at, s.now)
	}
	t := &Timer{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, t)
	return t, nil
}

// After schedules fn to run d after the current virtual time. Negative d is
// treated as zero so callers can pass computed deltas without clamping.
func (s *Scheduler) After(d time.Duration, fn func()) (*Timer, error) {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Stop cancels a pending timer. It returns true if the timer was pending and
// is now cancelled, false if it already fired or was already stopped.
func (s *Scheduler) Stop(t *Timer) bool {
	if t == nil || t.stopped || t.index < 0 {
		return false
	}
	heap.Remove(&s.queue, t.index)
	t.stopped = true
	t.index = -1
	return true
}

// Step executes the next pending event, advancing the clock to its instant.
// It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	t, _ := heap.Pop(&s.queue).(*Timer)
	s.now = t.at
	t.index = -1
	s.fired++
	t.fn()
	return true
}

// Run executes events until the queue drains or StopRun is called. It
// returns ErrStopped in the latter case.
func (s *Scheduler) Run() error {
	s.stopped = false
	for s.Step() {
		if s.stopped {
			return ErrStopped
		}
	}
	return nil
}

// RunUntil executes events whose instant is <= horizon, then advances the
// clock to horizon exactly. Events scheduled beyond the horizon remain
// queued. It returns ErrStopped if StopRun interrupted the run.
func (s *Scheduler) RunUntil(horizon time.Duration) error {
	if horizon < s.now {
		return fmt.Errorf("simtime: horizon %v is before now %v", horizon, s.now)
	}
	s.stopped = false
	for s.queue.Len() > 0 && s.queue[0].at <= horizon {
		s.Step()
		if s.stopped {
			return ErrStopped
		}
	}
	s.now = horizon
	return nil
}

// StopRun makes the innermost Run/RunUntil return after the current event
// finishes. It is intended to be called from inside an event function.
func (s *Scheduler) StopRun() { s.stopped = true }

// eventQueue is a min-heap ordered by (at, seq) so that simultaneous events
// fire in scheduling order.
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t, _ := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
