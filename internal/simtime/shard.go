package simtime

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// TileGroup runs one Scheduler per spatial tile in lockstep windows — a
// conservative-lookahead (BSP-style) parallel kernel. Virtual time is cut
// into windows of fixed length W. Within a window every tile executes its
// own events independently on a worker goroutine; cross-tile effects are
// exchanged only at window boundaries, where all tiles have advanced to
// exactly the same instant. The caller supplies three hooks:
//
//   - begin(tile, start) runs on the tile's worker at the start of each
//     window, before any of the window's events — the place to apply
//     inbound cross-tile operations queued at the previous boundary.
//   - end(tile, boundary) runs on the tile's worker after the window's
//     events, with the tile clock already at the boundary — the place to
//     snapshot tile-owned state (positions, advertised capacities) in
//     parallel before the barrier reads it.
//   - barrier(boundary, final) runs on the driving goroutine once every
//     tile has reached the boundary — the place to route outbound
//     operations, rebuild shared snapshots and migrate devices between
//     tiles.
//
// A window covers [start, start+W): events scheduled exactly at a
// boundary belong to the next window, after that boundary's barrier. The
// final window is closed — events exactly at the horizon fire — matching
// Scheduler.RunUntil semantics.
//
// Memory ordering: hook data handed from barrier to begin (and from the
// workers back to barrier) is synchronized by the job/result channels, so
// hooks need no locks of their own as long as begin/worker code only
// touches tile-owned state plus whatever the barrier explicitly handed
// over.
type TileGroup struct {
	scheds []*Scheduler
}

// NewTileGroup creates n schedulers, each seeded with an independent
// stream derived from seed, so per-tile random draws never correlate
// across tiles regardless of how devices are partitioned.
func NewTileGroup(seed int64, n int) (*TileGroup, error) {
	if n < 1 {
		return nil, fmt.Errorf("simtime: tile count %d < 1", n)
	}
	g := &TileGroup{scheds: make([]*Scheduler, n)}
	for i := range g.scheds {
		// Tile streams live far from the per-device streams (which use
		// small non-negative indices) in DeriveSeed's stream space.
		g.scheds[i] = NewScheduler(DeriveSeed(seed, -1-int64(i)))
	}
	return g, nil
}

// Tiles reports the number of tiles.
func (g *TileGroup) Tiles() int { return len(g.scheds) }

// Scheduler returns tile i's scheduler.
func (g *TileGroup) Scheduler(i int) *Scheduler { return g.scheds[i] }

// Fired sums executed events across all tiles.
func (g *TileGroup) Fired() uint64 {
	var n uint64
	for _, s := range g.scheds {
		n += s.Fired()
	}
	return n
}

// tileJob asks a worker to run its tile up to boundary; final marks the
// closed last window.
type tileJob struct {
	boundary time.Duration
	final    bool
}

// tileResult carries one worker's outcome for one window.
type tileResult struct {
	tile int
	err  error
}

// Run drives every tile from time zero to horizon in windows of length
// window. Any hook may be nil. The first error — from a hook or a
// scheduler — aborts the run after the in-flight window completes on all
// workers. Worker goroutines are created at the start of the run and torn
// down (via job-channel close) before Run returns, whatever the outcome.
func (g *TileGroup) Run(horizon, window time.Duration, begin func(tile int, start time.Duration) error, end func(tile int, boundary time.Duration) error, barrier func(boundary time.Duration, final bool) error) error {
	if horizon <= 0 {
		return fmt.Errorf("simtime: horizon %v must be positive", horizon)
	}
	if window <= 0 {
		return fmt.Errorf("simtime: window %v must be positive", window)
	}

	jobs := make([]chan tileJob, len(g.scheds))
	results := make(chan tileResult, len(g.scheds))
	var wg sync.WaitGroup
	for i := range g.scheds {
		jobs[i] = make(chan tileJob, 1)
		wg.Add(1)
		go func(tile int, in <-chan tileJob) {
			defer wg.Done()
			for job := range in {
				results <- tileResult{tile: tile, err: g.runWindow(tile, job, begin, end)}
			}
		}(i, jobs[i])
	}
	defer func() {
		for _, ch := range jobs {
			close(ch)
		}
		wg.Wait()
	}()

	for start := time.Duration(0); start < horizon; {
		boundary := start + window
		final := boundary >= horizon
		if final {
			boundary = horizon
		}
		job := tileJob{boundary: boundary, final: final}
		for _, ch := range jobs {
			ch <- job
		}
		var err error
		for range jobs {
			if r := <-results; r.err != nil && err == nil {
				err = fmt.Errorf("simtime: tile %d: %w", r.tile, r.err)
			}
		}
		if err != nil {
			return err
		}
		if barrier != nil {
			if err := barrier(boundary, final); err != nil {
				return err
			}
		}
		start = boundary
	}
	return nil
}

// runWindow executes one tile's share of one window on its worker.
func (g *TileGroup) runWindow(tile int, job tileJob, begin func(tile int, start time.Duration) error, end func(tile int, boundary time.Duration) error) error {
	s := g.scheds[tile]
	if begin != nil {
		if err := begin(tile, s.Now()); err != nil {
			return err
		}
	}
	if job.final {
		if err := s.RunUntil(job.boundary); err != nil {
			return err
		}
	} else {
		for {
			at, ok := s.NextAt()
			if !ok || at >= job.boundary {
				break
			}
			if !s.Step() {
				return errors.New("queue drained mid-window")
			}
		}
		if err := s.AdvanceTo(job.boundary); err != nil {
			return err
		}
	}
	if end != nil {
		return end(tile, job.boundary)
	}
	return nil
}
