package simtime

import (
	"container/heap"
	"testing"
	"time"
)

// The fuzz target checks the inlined 4-ary pooled kernel against a reference
// model built on container/heap — the implementation the kernel replaced.
// Any interleaving of At/After/Stop/Step must produce the same fire order,
// clock positions, queue depths and Stop results on both.

type modelEvent struct {
	at    time.Duration
	seq   uint64
	index int
	id    int
	live  bool
}

type modelHeap []*modelEvent

func (h modelHeap) Len() int { return len(h) }
func (h modelHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h modelHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *modelHeap) Push(x any) {
	e := x.(*modelEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *modelHeap) Pop() any {
	old := *h
	n := len(old) - 1
	e := old[n]
	old[n] = nil
	e.index = -1
	*h = old[:n]
	return e
}

// model is the reference scheduler: same (at, seq) ordering contract,
// implemented the slow obvious way.
type model struct {
	now   time.Duration
	seq   uint64
	queue modelHeap
}

func (m *model) schedule(at time.Duration, id int) *modelEvent {
	if at < m.now {
		return nil
	}
	e := &modelEvent{at: at, seq: m.seq, id: id, live: true}
	m.seq++
	heap.Push(&m.queue, e)
	return e
}

func (m *model) stop(e *modelEvent) bool {
	if e == nil || !e.live {
		return false
	}
	heap.Remove(&m.queue, e.index)
	e.live = false
	return true
}

func (m *model) step() (int, bool) {
	if len(m.queue) == 0 {
		return 0, false
	}
	e := heap.Pop(&m.queue).(*modelEvent)
	m.now = e.at
	e.live = false
	return e.id, true
}

// FuzzKernelVsHeapModel drives both schedulers with the same op stream
// decoded from the fuzz input: schedule an event, stop a live event, or step.
// Only model-live handles are ever stopped — stale real handles are dead per
// the Timer lifetime rule and may alias recycled events by design.
func FuzzKernelVsHeapModel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 10, 2, 2, 0, 2, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 0, 2, 2, 2})
	f.Add([]byte{0, 255, 255, 0, 128, 0, 1, 0, 0, 1, 2, 1, 0, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewScheduler(1)
		m := &model{}
		var gotFired []int
		type livePair struct {
			timer *Timer
			ev    *modelEvent
		}
		var live []livePair
		nextID := 0
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		steps := 0
		for i < len(data) && steps < 4096 {
			steps++
			switch next() % 3 {
			case 0: // schedule at now + delay
				d := time.Duration(next())<<8 | time.Duration(next())
				d *= time.Millisecond
				id := nextID
				nextID++
				tm, err := s.After(d, func() { gotFired = append(gotFired, id) })
				if err != nil {
					t.Fatalf("After(%v): %v", d, err)
				}
				ev := m.schedule(m.now+d, id)
				if ev == nil {
					t.Fatalf("model rejected schedule the kernel accepted")
				}
				live = append(live, livePair{tm, ev})
			case 1: // stop a live event
				if len(live) == 0 {
					continue
				}
				k := int(next()) % len(live)
				p := live[k]
				gotStop := s.Stop(p.timer)
				wantStop := m.stop(p.ev)
				if gotStop != wantStop {
					t.Fatalf("Stop mismatch: kernel %v, model %v", gotStop, wantStop)
				}
				live = append(live[:k], live[k+1:]...)
			case 2: // step both
				wantID, wantOK := m.step()
				before := len(gotFired)
				gotOK := s.Step()
				if gotOK != wantOK {
					t.Fatalf("Step mismatch: kernel %v, model %v", gotOK, wantOK)
				}
				if !gotOK {
					continue
				}
				if len(gotFired) != before+1 {
					t.Fatalf("Step fired %d callbacks, want 1", len(gotFired)-before)
				}
				if gotFired[before] != wantID {
					t.Fatalf("fire order diverged: kernel fired %d, model fired %d", gotFired[before], wantID)
				}
				// Drop the fired handle from the live set.
				for k, p := range live {
					if p.ev.id == wantID {
						live = append(live[:k], live[k+1:]...)
						break
					}
				}
			}
			if s.Now() != m.now {
				t.Fatalf("clock diverged: kernel %v, model %v", s.Now(), m.now)
			}
			if s.Pending() != len(m.queue) {
				t.Fatalf("queue depth diverged: kernel %d, model %d", s.Pending(), len(m.queue))
			}
		}
		// Drain both and compare the tail order.
		for {
			wantID, wantOK := m.step()
			before := len(gotFired)
			if s.Step() != wantOK {
				t.Fatalf("drain Step mismatch at model id %d", wantID)
			}
			if !wantOK {
				break
			}
			if gotFired[before] != wantID {
				t.Fatalf("drain order diverged: kernel %d, model %d", gotFired[before], wantID)
			}
		}
		if s.Now() != m.now || s.Pending() != 0 {
			t.Fatalf("post-drain state diverged: now %v/%v pending %d", s.Now(), m.now, s.Pending())
		}
	})
}
