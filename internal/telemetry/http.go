package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Health is a process's liveness/readiness state, served at /healthz and
// /readyz when attached to a Handler via WithHealth. Liveness is implied by
// answering at all; readiness starts true and flips false while the process
// drains, so cluster launchers and CI gate restarts on it.
type Health struct{ notReady atomic.Bool }

// NewHealth returns a ready Health.
func NewHealth() *Health { return &Health{} }

// SetReady flips the readiness state (false while draining).
func (h *Health) SetReady(ready bool) { h.notReady.Store(!ready) }

// Ready reports the readiness state.
func (h *Health) Ready() bool { return !h.notReady.Load() }

// HandlerOption extends the telemetry HTTP mux.
type HandlerOption func(mux *http.ServeMux)

// WithHealth mounts /healthz (liveness: 200 whenever the process answers)
// and /readyz (readiness: 200, or 503 while draining) for h.
func WithHealth(h *Health) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			_, _ = io.WriteString(w, "ok\n")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			if !h.Ready() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			_, _ = io.WriteString(w, "ready\n")
		})
	}
}

// WithHandler mounts an extra handler on the telemetry mux (e.g. the
// cluster node's /cluster/* handoff endpoints).
func WithHandler(pattern string, handler http.Handler) HandlerOption {
	return func(mux *http.ServeMux) { mux.Handle(pattern, handler) }
}

// Handler serves a registry over HTTP:
//
//	/metrics        aligned text table (internal/metrics.Table)
//	/metrics.json   typed JSON dump (the Dump schema)
//	/debug/pprof/*  the standard net/http/pprof endpoints
//
// Options add routes: WithHealth mounts /healthz + /readyz, WithHandler
// mounts arbitrary extra handlers.
func Handler(reg *Registry, opts ...HandlerOption) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, reg.Dump().Table().String())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Dump())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve exposes the registry on addr (use "127.0.0.1:0" for an ephemeral
// port) until Close.
func Serve(addr string, reg *Registry, opts ...HandlerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen: %w", err)
	}
	srv := &http.Server{Handler: Handler(reg, opts...)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops serving and closes the listener.
func (s *Server) Close() { _ = s.srv.Close() }
