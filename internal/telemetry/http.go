package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves a registry over HTTP:
//
//	/metrics        aligned text table (internal/metrics.Table)
//	/metrics.json   typed JSON dump (the Dump schema)
//	/debug/pprof/*  the standard net/http/pprof endpoints
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, reg.Dump().Table().String())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Dump())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve exposes the registry on addr (use "127.0.0.1:0" for an ephemeral
// port) until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen: %w", err)
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops serving and closes the listener.
func (s *Server) Close() { _ = s.srv.Close() }
