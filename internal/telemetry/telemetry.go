// Package telemetry is the stdlib-only live-metrics layer of the real
// heartbeat stack: a registry of named (and optionally labeled) counters,
// gauges and log-bucketed histograms with lock-free hot-path updates,
// rendered over HTTP as an aligned text table (/metrics), a typed JSON dump
// (/metrics.json) and the net/http/pprof endpoints.
//
// The package is deliberately clock-free: it never reads the wall clock and
// is covered by the d2dvet walltime rule. Callers record whatever they
// measured — wall-clock microseconds in the real stack, virtual-clock
// durations in simulation-clocked packages — so attaching telemetry can
// never couple a deterministic simulation to the host clock.
//
// Handles returned by a Registry are plain atomics; a nil handle (the state
// of an uninstrumented component) is a valid no-op, so hot paths carry no
// "is telemetry enabled" branches beyond the nil check inside each update.
package telemetry

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"d2dhb/internal/metrics"
)

// Label is one key=value dimension attached to a metric name.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates metric types.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing metric. Updates are single atomic
// adds; a nil *Counter is a valid no-op handle.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Adding on a nil counter is a no-op.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-or-adjust metric. A nil *Gauge is a valid no-op handle.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Setting a nil gauge is a no-op.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. Adjusting a nil gauge is a no-op.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// entry is one registered metric.
type entry struct {
	name    string
	labels  []Label
	kind    Kind
	unit    string
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// key is the registry identity: name plus sorted labels.
func entryKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels normalizes label order so identity and rendering are stable.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	slices.SortFunc(out, func(a, b Label) int { return cmp.Compare(a.Key, b.Key) })
	return out
}

// Registry holds named metrics. Registration (get-or-create) takes a lock;
// the returned handles update without one. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// lookup get-or-creates the entry, panicking on a kind clash: two call
// sites disagreeing about what a metric name means is a programming error
// no fallback can paper over.
func (r *Registry) lookup(name string, kind Kind, unit string, labels []Label) *entry {
	labels = sortLabels(labels)
	key := entryKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, labels: labels, kind: kind, unit: unit}
	r.entries[key] = e
	return e
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	e := r.lookup(name, KindCounter, "", labels)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	e := r.lookup(name, KindGauge, "", labels)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// GaugeFunc registers (or rebinds) a gauge sampled by calling fn at dump
// time. Use it for values that already live elsewhere — map sizes, shard
// occupancy — instead of mirroring them on every update. fn runs outside
// the registry lock and must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	e := r.lookup(name, KindGauge, "", labels)
	r.mu.Lock()
	e.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name+labels, creating it
// with the given shard count on first use. unit names the recorded values
// ("us", "msgs") and is carried through dumps unchanged.
func (r *Registry) Histogram(name, unit string, shards int, labels ...Label) *Histogram {
	e := r.lookup(name, KindHistogram, unit, labels)
	if e.hist == nil {
		e.hist = NewHistogram(shards)
	}
	return e.hist
}

// Observe registers (or rebinds) an existing histogram under name+labels —
// the adoption path for components that already own a Histogram, like the
// load generator's latency recorders.
func (r *Registry) Observe(name, unit string, h *Histogram, labels ...Label) {
	e := r.lookup(name, KindHistogram, unit, labels)
	r.mu.Lock()
	e.unit = unit
	e.hist = h
	r.mu.Unlock()
}

// HistDump summarizes one histogram in a dump, in the histogram's unit.
type HistDump struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	Max   uint64  `json:"max"`
}

// Metric is one metric in a dump. Value carries counter and gauge readings;
// Hist carries histogram summaries.
type Metric struct {
	Name   string    `json:"name"`
	Labels []Label   `json:"labels,omitempty"`
	Kind   string    `json:"kind"`
	Unit   string    `json:"unit,omitempty"`
	Value  float64   `json:"value"`
	Hist   *HistDump `json:"hist,omitempty"`
}

// Dump is a point-in-time snapshot of a whole registry — the schema of the
// /metrics.json endpoint.
type Dump struct {
	Metrics []Metric `json:"metrics"`
}

// Find returns the first metric with the given name (and, when given, all
// of the given labels), or nil.
func (d *Dump) Find(name string, labels ...Label) *Metric {
	if d == nil {
		return nil
	}
next:
	for i := range d.Metrics {
		m := &d.Metrics[i]
		if m.Name != name {
			continue
		}
		for _, want := range labels {
			found := false
			for _, l := range m.Labels {
				if l == want {
					found = true
					break
				}
			}
			if !found {
				continue next
			}
		}
		return m
	}
	return nil
}

// Dump snapshots every registered metric, sorted by name then labels.
// Gauge functions are evaluated outside the registry lock, so they may take
// their own locks freely.
func (r *Registry) Dump() Dump {
	r.mu.Lock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.mu.Unlock()
	slices.SortFunc(es, func(a, b *entry) int {
		if c := cmp.Compare(a.name, b.name); c != 0 {
			return c
		}
		return cmp.Compare(entryKey(a.name, a.labels), entryKey(b.name, b.labels))
	})
	d := Dump{Metrics: make([]Metric, 0, len(es))}
	for _, e := range es {
		m := Metric{Name: e.name, Labels: e.labels, Kind: e.kind.String(), Unit: e.unit}
		switch e.kind {
		case KindCounter:
			m.Value = float64(e.counter.Value())
		case KindGauge:
			if e.gaugeFn != nil {
				m.Value = e.gaugeFn()
			} else {
				m.Value = float64(e.gauge.Value())
			}
		case KindHistogram:
			s := e.hist.Snapshot()
			m.Hist = &HistDump{
				Count: s.Count(),
				Mean:  s.Mean(),
				P50:   s.Quantile(0.50),
				P95:   s.Quantile(0.95),
				P99:   s.Quantile(0.99),
				P999:  s.Quantile(0.999),
				Max:   s.Max(),
			}
		}
		d.Metrics = append(d.Metrics, m)
	}
	return d
}

// labelString renders labels as "k=v,k=v" for the text table.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		parts = append(parts, l.Key+"="+l.Value)
	}
	return strings.Join(parts, ",")
}

// Table renders the dump as an aligned text table — the /metrics body.
// Counters and gauges fill the value column; histograms fill count, mean
// and the quantile columns in their unit.
func (d Dump) Table() *metrics.Table {
	t := metrics.NewTable("telemetry",
		"metric", "labels", "kind", "value", "unit", "count", "mean", "p50", "p95", "p99", "max")
	for _, m := range d.Metrics {
		if m.Hist != nil {
			t.AddRow(m.Name, labelString(m.Labels), m.Kind, "", m.Unit,
				fmt.Sprintf("%d", m.Hist.Count), metrics.F(m.Hist.Mean),
				fmt.Sprintf("%d", m.Hist.P50), fmt.Sprintf("%d", m.Hist.P95),
				fmt.Sprintf("%d", m.Hist.P99), fmt.Sprintf("%d", m.Hist.Max))
			continue
		}
		t.AddRow(m.Name, labelString(m.Labels), m.Kind, metrics.F(m.Value), m.Unit)
	}
	return t
}
