package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucketing: log-linear (HDR-style). Values below histSubCount
// get exact unit buckets; above that, each power-of-two octave is split into
// histSubCount linear sub-buckets, bounding relative error to
// 1/histSubCount (~3 %). The full uint64 range fits in ~2 K buckets, so one
// histogram covers nanoscale latencies through multi-hour stalls.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	histMaxShift = 64 - histSubBits - 1
	histBuckets  = (histMaxShift + 2) * histSubCount
)

// bucketFor maps a value to its bucket index.
func bucketFor(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	shift := bits.Len64(v) - 1 - histSubBits
	sub := int(v >> uint(shift)) // in [histSubCount, 2*histSubCount)
	return shift*histSubCount + sub
}

// bucketMid returns the midpoint of a bucket's value range, the estimate
// reported for any value that landed in it.
func bucketMid(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	shift := idx/histSubCount - 1
	sub := uint64(idx - shift*histSubCount) // in [histSubCount, 2*histSubCount)
	low := sub << uint(shift)
	return low + uint64(1)<<uint(shift)/2
}

// histShard is one independently-updated slice of a histogram. Recording
// touches only atomic counters, so any number of goroutines may share one
// shard; sharding exists purely to spread cache-line contention.
type histShard struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

func (s *histShard) record(v uint64) {
	s.counts[bucketFor(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Histogram is a lock-free sharded log-linear histogram. Obtain a Recorder
// per producer (each is bound to one shard round-robin) and call Record on
// it from any goroutine; call Snapshot at any time for quantiles. A nil
// *Histogram is a valid no-op handle, so instrumented hot paths need no
// "is telemetry enabled" branches of their own.
type Histogram struct {
	shards []*histShard
	next   atomic.Uint32
}

// NewHistogram builds a histogram with the given shard count (values < 1
// are clamped to 1).
func NewHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	h := &Histogram{shards: make([]*histShard, shards)}
	for i := range h.shards {
		h.shards[i] = &histShard{}
	}
	return h
}

// Recorder returns a recording handle bound to one shard. Handles are safe
// for concurrent use; handing each producer its own handle spreads shard
// load evenly. A nil histogram yields a nil (no-op) recorder.
func (h *Histogram) Recorder() *Recorder {
	if h == nil {
		return nil
	}
	n := h.next.Add(1) - 1
	return &Recorder{s: h.shards[int(n)%len(h.shards)]}
}

// Record adds one observation via an arbitrary shard; prefer per-producer
// Recorders on hot paths. Recording on a nil histogram is a no-op.
func (h *Histogram) Record(v uint64) {
	if h == nil {
		return
	}
	h.shards[int(v)%len(h.shards)].record(v)
}

// Recorder records observations into one histogram shard.
type Recorder struct {
	s *histShard
}

// Record adds one observation. Recording on a nil recorder is a no-op.
func (r *Recorder) Record(v uint64) {
	if r == nil {
		return
	}
	r.s.record(v)
}

// HistSnapshot is a point-in-time merge of every shard, safe to query while
// recording continues.
type HistSnapshot struct {
	counts []uint64
	count  uint64
	sum    uint64
	max    uint64
}

// Snapshot merges all shards into an immutable view. A nil histogram yields
// an empty snapshot.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{counts: make([]uint64, histBuckets)}
	if h == nil {
		return s
	}
	for _, sh := range h.shards {
		for i := range sh.counts {
			s.counts[i] += sh.counts[i].Load()
		}
		s.count += sh.count.Load()
		s.sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.max {
			s.max = m
		}
	}
	return s
}

// Merge folds another snapshot into this one and returns the receiver.
func (s *HistSnapshot) Merge(o *HistSnapshot) *HistSnapshot {
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
	s.count += o.count
	s.sum += o.sum
	if o.max > s.max {
		s.max = o.max
	}
	return s
}

// Count returns the number of recorded observations.
func (s *HistSnapshot) Count() uint64 { return s.count }

// Max returns the largest recorded observation.
func (s *HistSnapshot) Max() uint64 { return s.max }

// Mean returns the average observation, 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Quantile returns the value at or below which a fraction q of observations
// fall (bucket-midpoint estimate, clamped to the recorded max). q outside
// [0,1] is clamped; an empty snapshot returns 0.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			v := bucketMid(i)
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}
