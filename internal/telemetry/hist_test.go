package telemetry

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBucketRoundTripError(t *testing.T) {
	// The log-linear layout bounds relative error to 1/histSubCount.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := uint64(rng.Int63n(1 << 40))
		mid := bucketMid(bucketFor(v))
		diff := float64(mid) - float64(v)
		if diff < 0 {
			diff = -diff
		}
		if v >= histSubCount && diff > float64(v)/histSubCount {
			t.Fatalf("v=%d mid=%d: error %v exceeds bound", v, mid, diff)
		}
		if v < histSubCount && mid != v {
			t.Fatalf("small value %d not exact (mid %d)", v, mid)
		}
	}
}

func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for v := uint64(0); v < 1<<16; v++ {
		b := bucketFor(v)
		if b < prev {
			t.Fatalf("bucketFor(%d)=%d < previous %d", v, b, prev)
		}
		if b >= histBuckets {
			t.Fatalf("bucketFor(%d)=%d out of range", v, b)
		}
		prev = b
	}
	if b := bucketFor(1<<63 + 12345); b >= histBuckets {
		t.Fatalf("max-range bucket %d out of range %d", b, histBuckets)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(4)
	rec := h.Recorder()
	// Uniform 1..10000: p50 ≈ 5000, p99 ≈ 9900 within bucket error.
	for v := uint64(1); v <= 10000; v++ {
		rec.Record(v)
	}
	s := h.Snapshot()
	if s.Count() != 10000 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Max() != 10000 {
		t.Fatalf("max = %d", s.Max())
	}
	check := func(q, want, tol float64) {
		got := float64(s.Quantile(q))
		if got < want-tol || got > want+tol {
			t.Errorf("q%v = %v, want %v ± %v", q, got, want, tol)
		}
	}
	check(0.50, 5000, 5000/float64(histSubCount)+1)
	check(0.95, 9500, 9500/float64(histSubCount)+1)
	check(0.99, 9900, 9900/float64(histSubCount)+1)
	if got := s.Quantile(1); got != 10000 {
		t.Errorf("q1 = %d, want exact max", got)
	}
	if mean := s.Mean(); mean < 4900 || mean > 5100 {
		t.Errorf("mean = %v", mean)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram(0) // clamped to 1 shard
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Count() != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot not zero")
	}
	h.Record(7)
	s = h.Snapshot()
	if s.Quantile(-1) != 7 || s.Quantile(2) != 7 {
		t.Fatal("q clamping broken")
	}
}

func TestHistogramConcurrentRecorders(t *testing.T) {
	h := NewHistogram(8)
	const goroutines, per = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		rec := h.Recorder()
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				rec.Record(uint64(rng.Int63n(1 << 20)))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Snapshot().Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(2), NewHistogram(2)
	for v := uint64(1); v <= 100; v++ {
		a.Record(v)
		b.Record(v * 1000)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count() != 200 {
		t.Fatalf("merged count = %d", m.Count())
	}
	if m.Max() != 100000 {
		t.Fatalf("merged max = %d", m.Max())
	}
}
