package telemetry

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fully deterministic contents so the
// /metrics rendering can be pinned byte for byte.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("relay_frames_total", L("relay", "r1")).Add(1234)
	reg.Counter("server_drops_total", L("reason", "idle")).Add(3)
	reg.Counter("server_drops_total", L("reason", "protocol")).Add(1)
	reg.Gauge("sched_capacity", L("policy", "nagle")).Set(8)
	reg.GaugeFunc("presence_clients", func() float64 { return 42 })
	h := reg.Histogram("flush_slack_us", "us", 1, L("policy", "nagle"))
	for v := uint64(1); v <= 100; v++ {
		h.Record(v * 10)
	}
	return reg
}

func TestMetricsTextGolden(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(body) != string(want) {
		t.Errorf("/metrics drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", body, want)
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	reg := goldenRegistry()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics.json content type %q", ct)
	}
	var got Dump
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode /metrics.json: %v", err)
	}
	want := reg.Dump()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JSON round trip diverged from registry state\n got: %+v\nwant: %+v", got, want)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %s", resp.Status)
	}
}

func TestServeAndClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Inc()
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	err = json.NewDecoder(resp.Body).Decode(&d)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m := d.Find("up"); m == nil || m.Value != 1 {
		t.Fatalf("served dump missing counter: %+v", m)
	}
	s.Close()
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
