package telemetry

import (
	"sync"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %d, want 0", got)
	}
	var h *Histogram
	h.Record(42)
	if got := h.Snapshot().Count(); got != 0 {
		t.Fatalf("nil histogram count = %d, want 0", got)
	}
	var rec *Recorder
	rec.Record(42)
	if h.Recorder() != nil {
		t.Fatal("nil histogram returned a non-nil recorder")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("hits", L("path", "direct"))
	b := reg.Counter("hits", L("path", "direct"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c := reg.Counter("hits", L("path", "relay")); c == a {
		t.Fatal("different labels shared a counter")
	}
	if c := reg.Counter("hits"); c == a {
		t.Fatal("unlabeled and labeled metrics shared a counter")
	}
}

func TestRegistryLabelOrderIrrelevant(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("m", L("a", "1"), L("b", "2"))
	b := reg.Counter("m", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed metric identity")
	}
}

func TestKindClashPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("m")
}

func TestGaugeFuncSampledAtDump(t *testing.T) {
	reg := NewRegistry()
	v := 1.5
	reg.GaugeFunc("fn", func() float64 { return v })
	if got := dumpOf(reg).Find("fn").Value; got != 1.5 {
		t.Fatalf("gauge func dumped %v, want 1.5", got)
	}
	v = 7
	if got := dumpOf(reg).Find("fn").Value; got != 7 {
		t.Fatalf("gauge func dumped %v after update, want 7", got)
	}
}

func TestObserveAdoptsHistogram(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram(1)
	h.Record(10)
	reg.Observe("lat", "us", h)
	m := dumpOf(reg).Find("lat")
	if m == nil || m.Hist == nil {
		t.Fatal("adopted histogram missing from dump")
	}
	if m.Hist.Count != 1 {
		t.Fatalf("adopted histogram count = %d, want 1", m.Hist.Count)
	}
	if m.Unit != "us" {
		t.Fatalf("adopted histogram unit = %q, want us", m.Unit)
	}
}

func TestDumpSortedAndFind(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz")
	reg.Gauge("aa").Set(4)
	reg.Counter("mm", L("k", "b"))
	reg.Counter("mm", L("k", "a")).Add(9)
	d := reg.Dump()
	names := make([]string, 0, len(d.Metrics))
	for _, m := range d.Metrics {
		names = append(names, entryKey(m.Name, m.Labels))
	}
	want := []string{"aa", "mm\x00k=a", "mm\x00k=b", "zz"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("dump order %q, want %q", names, want)
		}
	}
	if m := d.Find("mm", L("k", "a")); m == nil || m.Value != 9 {
		t.Fatalf("Find(mm,k=a) = %+v, want value 9", m)
	}
	if d.Find("mm", L("k", "c")) != nil {
		t.Fatal("Find matched a label that was never registered")
	}
	if m := d.Find("aa"); m == nil || m.Value != 4 {
		t.Fatalf("Find(aa) = %+v, want value 4", m)
	}
}

// TestConcurrentRegistration exercises get-or-create and updates from many
// goroutines; run under -race this pins the lock-free hot-path contract.
func TestConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("shared").Inc()
				reg.Gauge("g").Set(int64(i))
				reg.Histogram("h", "us", 4).Record(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("lost counter increments: %d, want %d", got, workers*perWorker)
	}
	if got := dumpOf(reg).Find("h").Hist.Count; got != workers*perWorker {
		t.Fatalf("lost histogram records: %d, want %d", got, workers*perWorker)
	}
}

// dumpOf is a test shim: Dump.Find has a pointer receiver, so chained
// reg.Dump().Find(...) calls need an addressable value.
func dumpOf(reg *Registry) *Dump {
	d := reg.Dump()
	return &d
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewRegistry().Histogram("h", "us", 8)
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(0)
		for pb.Next() {
			v++
			h.Record(v)
		}
	})
}

func BenchmarkNilHistogramRecord(b *testing.B) {
	var h *Histogram
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Record(1)
		}
	})
}
