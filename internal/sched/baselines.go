package sched

import (
	"fmt"
	"time"

	"d2dhb/internal/hbmsg"
)

// Immediate is the no-batching baseline: every forwarded heartbeat is sent
// in its own cellular connection as soon as it arrives. It models a naive
// relay without the scheduling strategy — the configuration the paper warns
// "would consume more energy than the original system and lose the
// signaling-saving feature" (Section III-C).
type Immediate struct {
	instrumented
	periodStart time.Duration
	period      time.Duration
	pending     []hbmsg.Heartbeat
	closed      bool
}

var _ Policy = (*Immediate)(nil)

// NewImmediate builds the immediate-send baseline with the relay heartbeat
// period T (used only to bound the collection window).
func NewImmediate(period time.Duration) (*Immediate, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sched: period must be positive, got %v", period)
	}
	return &Immediate{period: period, closed: true}, nil
}

// Kind implements Policy.
func (p *Immediate) Kind() Kind { return KindImmediate }

// StartPeriod implements Policy.
func (p *Immediate) StartPeriod(at time.Duration) {
	p.periodStart = at
	p.pending = p.pending[:0]
	p.closed = false
}

// Collect implements Policy: always flush now.
func (p *Immediate) Collect(hb hbmsg.Heartbeat, now time.Duration) (bool, error) {
	if p.closed {
		p.ins.observeReject(ErrClosed)
		return false, ErrClosed
	}
	if hb.Expired(now) {
		p.ins.observeReject(ErrExpired)
		return false, ErrExpired
	}
	p.pending = append(p.pending, hb)
	p.ins.observeCollect(len(p.pending))
	return true, nil
}

// Deadline implements Policy: the relay's own heartbeat still goes out at
// the period end.
func (p *Immediate) Deadline() (time.Duration, bool) {
	if p.closed {
		return 0, false
	}
	return p.periodStart + p.period, true
}

// Flush implements Policy. Unlike Nagle, flushing does not close the window:
// the relay keeps accepting (and immediately sending) messages all period.
func (p *Immediate) Flush(now time.Duration) []hbmsg.Heartbeat {
	if at, ok := p.Deadline(); ok {
		p.ins.observeFlush(len(p.pending), at-now)
	}
	out := p.pending
	p.pending = nil
	return out
}

// Pending implements Policy.
func (p *Immediate) Pending() int { return len(p.pending) }

// Accepting implements Policy.
func (p *Immediate) Accepting() bool { return !p.closed }

// FixedDelay is a timeout-batching baseline: the batch is flushed a fixed
// delay after its first message, ignoring per-message expiration times. It
// demonstrates why Algorithm 1's T_k constraint matters: with tight
// expiries a fixed delay silently lets messages die.
type FixedDelay struct {
	instrumented
	delay       time.Duration
	period      time.Duration
	periodStart time.Duration
	firstAt     time.Duration
	pending     []hbmsg.Heartbeat
	closed      bool
}

var _ Policy = (*FixedDelay)(nil)

// NewFixedDelay builds the fixed-delay baseline.
func NewFixedDelay(delay, period time.Duration) (*FixedDelay, error) {
	if delay <= 0 {
		return nil, fmt.Errorf("sched: delay must be positive, got %v", delay)
	}
	if period <= 0 {
		return nil, fmt.Errorf("sched: period must be positive, got %v", period)
	}
	return &FixedDelay{delay: delay, period: period, closed: true}, nil
}

// Kind implements Policy.
func (p *FixedDelay) Kind() Kind { return KindFixedDelay }

// StartPeriod implements Policy.
func (p *FixedDelay) StartPeriod(at time.Duration) {
	p.periodStart = at
	p.pending = p.pending[:0]
	p.closed = false
	p.firstAt = -1
}

// Collect implements Policy.
func (p *FixedDelay) Collect(hb hbmsg.Heartbeat, now time.Duration) (bool, error) {
	if p.closed {
		p.ins.observeReject(ErrClosed)
		return false, ErrClosed
	}
	if hb.Expired(now) {
		p.ins.observeReject(ErrExpired)
		return false, ErrExpired
	}
	if len(p.pending) == 0 {
		p.firstAt = now
	}
	p.pending = append(p.pending, hb)
	p.ins.observeCollect(len(p.pending))
	return false, nil
}

// Deadline implements Policy: first arrival + delay, capped by the period
// end — but deliberately not by per-message expiries.
func (p *FixedDelay) Deadline() (time.Duration, bool) {
	if p.closed {
		return 0, false
	}
	end := p.periodStart + p.period
	if len(p.pending) == 0 {
		return end, true
	}
	at := p.firstAt + p.delay
	if at > end {
		at = end
	}
	return at, true
}

// Flush implements Policy.
func (p *FixedDelay) Flush(now time.Duration) []hbmsg.Heartbeat {
	if p.closed {
		return nil
	}
	if at, ok := p.Deadline(); ok {
		p.ins.observeFlush(len(p.pending), at-now)
	}
	out := p.pending
	p.pending = nil
	p.closed = true
	return out
}

// Pending implements Policy.
func (p *FixedDelay) Pending() int { return len(p.pending) }

// Accepting implements Policy.
func (p *FixedDelay) Accepting() bool { return !p.closed }

// PeriodAligned always waits for the relay's own heartbeat at the period
// end, maximizing batching but ignoring both capacity and expiration
// times — the opposite failure mode from Immediate.
type PeriodAligned struct {
	instrumented
	period      time.Duration
	periodStart time.Duration
	pending     []hbmsg.Heartbeat
	closed      bool
}

var _ Policy = (*PeriodAligned)(nil)

// NewPeriodAligned builds the period-aligned baseline.
func NewPeriodAligned(period time.Duration) (*PeriodAligned, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sched: period must be positive, got %v", period)
	}
	return &PeriodAligned{period: period, closed: true}, nil
}

// Kind implements Policy.
func (p *PeriodAligned) Kind() Kind { return KindPeriodAligned }

// StartPeriod implements Policy.
func (p *PeriodAligned) StartPeriod(at time.Duration) {
	p.periodStart = at
	p.pending = p.pending[:0]
	p.closed = false
}

// Collect implements Policy.
func (p *PeriodAligned) Collect(hb hbmsg.Heartbeat, now time.Duration) (bool, error) {
	if p.closed {
		p.ins.observeReject(ErrClosed)
		return false, ErrClosed
	}
	if hb.Expired(now) {
		p.ins.observeReject(ErrExpired)
		return false, ErrExpired
	}
	p.pending = append(p.pending, hb)
	p.ins.observeCollect(len(p.pending))
	return false, nil
}

// Deadline implements Policy: always the period end.
func (p *PeriodAligned) Deadline() (time.Duration, bool) {
	if p.closed {
		return 0, false
	}
	return p.periodStart + p.period, true
}

// Flush implements Policy.
func (p *PeriodAligned) Flush(now time.Duration) []hbmsg.Heartbeat {
	if p.closed {
		return nil
	}
	if at, ok := p.Deadline(); ok {
		p.ins.observeFlush(len(p.pending), at-now)
	}
	out := p.pending
	p.pending = nil
	p.closed = true
	return out
}

// Pending implements Policy.
func (p *PeriodAligned) Pending() int { return len(p.pending) }

// Accepting implements Policy.
func (p *PeriodAligned) Accepting() bool { return !p.closed }

// New builds a policy of the given kind with the relay period T. capacity
// applies to KindNagle; delay applies to KindFixedDelay.
func New(kind Kind, capacity int, period, delay time.Duration) (Policy, error) {
	switch kind {
	case KindNagle:
		return NewNagle(capacity, period)
	case KindImmediate:
		return NewImmediate(period)
	case KindFixedDelay:
		return NewFixedDelay(delay, period)
	case KindPeriodAligned:
		return NewPeriodAligned(period)
	default:
		return nil, fmt.Errorf("sched: unknown policy kind %d", int(kind))
	}
}
