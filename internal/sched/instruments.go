package sched

import (
	"time"

	"d2dhb/internal/telemetry"
)

// Instruments carries optional telemetry handles shared by every policy.
// All observations are derived from the instants callers already inject
// into Collect/Flush — never from the wall clock — so instrumented policies
// stay legal in simulation-clocked packages (the d2dvet walltime rule) and
// record virtual time under the simulator, wall time under the relay agent.
//
// A nil *Instruments (the default) makes every observation a no-op.
type Instruments struct {
	// Occupancy records the pending-buffer fill after each accepted
	// Collect — how close the window runs to the capacity M mirrored in
	// Capacity.
	Occupancy *telemetry.Histogram
	// FlushSize records the batch size handed back by each non-empty
	// Flush.
	FlushSize *telemetry.Histogram
	// FlushSlack records, in microseconds, how much deadline slack
	// remained when Flush ran: the gap between the flush instant and the
	// batch's binding deadline (0 when flushed exactly at — or past — it).
	FlushSlack *telemetry.Histogram
	// Capacity mirrors the policy's collection capacity M (0 when the
	// policy is unbounded).
	Capacity *telemetry.Gauge
	// RejectClosed counts Collect refusals after the window closed.
	RejectClosed *telemetry.Counter
	// RejectExpired counts heartbeats already dead on arrival.
	RejectExpired *telemetry.Counter
}

// observeCollect records buffer occupancy after an accepted Collect.
func (i *Instruments) observeCollect(pending int) {
	if i == nil {
		return
	}
	i.Occupancy.Record(uint64(pending))
}

// observeReject counts one Collect refusal.
func (i *Instruments) observeReject(err error) {
	if i == nil {
		return
	}
	switch err {
	case ErrClosed:
		i.RejectClosed.Inc()
	case ErrExpired:
		i.RejectExpired.Inc()
	}
}

// observeFlush records a non-empty flush: batch size and deadline slack.
func (i *Instruments) observeFlush(size int, slack time.Duration) {
	if i == nil || size == 0 {
		return
	}
	i.FlushSize.Record(uint64(size))
	if slack < 0 {
		slack = 0
	}
	i.FlushSlack.Record(uint64(slack / time.Microsecond))
}

// Instrumented is implemented by policies that accept telemetry handles.
// Every policy in this package implements it via the embedded instrumented
// struct; callers attach handles with:
//
//	if ip, ok := policy.(sched.Instrumented); ok { ip.SetInstruments(ins) }
type Instrumented interface {
	SetInstruments(*Instruments)
}

// instrumented is embedded by every policy to satisfy Instrumented.
type instrumented struct{ ins *Instruments }

// SetInstruments attaches telemetry handles; nil detaches them.
func (b *instrumented) SetInstruments(i *Instruments) { b.ins = i }
