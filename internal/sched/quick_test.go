package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"d2dhb/internal/hbmsg"
)

// arrival is a generated forwarded-heartbeat arrival for property tests.
type arrival struct {
	at     time.Duration
	expiry time.Duration
}

// driveNagle replays arrivals through a Nagle scheduler the way a relay
// would: flushing whenever Collect demands it or the deadline passes, and
// opening a new period after each period boundary. It returns every flushed
// batch together with its flush instant.
type flushRecord struct {
	at    time.Duration
	batch []hbmsg.Heartbeat
}

func driveNagle(capacity int, period time.Duration, arrivals []arrival) ([]flushRecord, error) {
	n, err := NewNagle(capacity, period)
	if err != nil {
		return nil, err
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].at < arrivals[j].at })

	var flushes []flushRecord
	periodStart := time.Duration(0)
	n.StartPeriod(periodStart)

	advance := func(to time.Duration) {
		// Fire any due deadline flushes and period rollovers before `to`.
		for {
			if at, ok := n.Deadline(); ok && at <= to {
				batch := n.Flush(at)
				if len(batch) > 0 {
					flushes = append(flushes, flushRecord{at: at, batch: batch})
				}
			}
			next := periodStart + period
			if next <= to {
				periodStart = next
				n.StartPeriod(periodStart)
				continue
			}
			return
		}
	}

	var seq uint64
	for _, a := range arrivals {
		advance(a.at)
		seq++
		hb := hbmsg.Heartbeat{App: "p", Src: "u", Seq: seq, Origin: a.at, Expiry: a.expiry, Size: 54}
		flushNow, err := n.Collect(hb, a.at)
		if err != nil {
			continue // expired-on-arrival or closed window: relay rejects
		}
		if flushNow {
			batch := n.Flush(a.at)
			flushes = append(flushes, flushRecord{at: a.at, batch: batch})
		}
	}
	// Drain the final window.
	if at, ok := n.Deadline(); ok {
		batch := n.Flush(at)
		if len(batch) > 0 {
			flushes = append(flushes, flushRecord{at: at, batch: batch})
		}
	}
	return flushes, nil
}

// TestQuickNagleInvariants property-checks Algorithm 1's three constraints
// over arbitrary arrival patterns:
//
//  1. no batch exceeds the capacity M,
//  2. no accepted message is flushed after its deadline,
//  3. every flush happens within the relay period that collected it.
func TestQuickNagleInvariants(t *testing.T) {
	const (
		capacity = 4
		period   = 270 * time.Second
	)
	prop := func(raw []uint16) bool {
		arrivals := make([]arrival, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			arrivals = append(arrivals, arrival{
				at:     time.Duration(raw[i]%2000) * time.Second,
				expiry: time.Duration(raw[i+1]%400+1) * time.Second,
			})
		}
		flushes, err := driveNagle(capacity, period, arrivals)
		if err != nil {
			return false
		}
		for _, f := range flushes {
			if len(f.batch) > capacity {
				return false
			}
			for _, hb := range f.batch {
				if hb.Expired(f.at) {
					return false // constraint t − t_k < T_k violated
				}
				// Flush must land inside the period that collected the
				// message: flush time − origin < period is implied by
				// t < periodEnd and origin >= periodStart.
				if f.at-hb.Origin > period {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNagleNoMessageLostOrDuplicated property-checks conservation:
// every accepted heartbeat appears in exactly one flushed batch.
func TestQuickNagleNoMessageLostOrDuplicated(t *testing.T) {
	const (
		capacity = 3
		period   = 100 * time.Second
	)
	prop := func(raw []uint16) bool {
		n, err := NewNagle(capacity, period)
		if err != nil {
			return false
		}
		periodStart := time.Duration(0)
		n.StartPeriod(periodStart)
		accepted := make(map[uint64]int)
		flushedCount := make(map[uint64]int)

		now := time.Duration(0)
		var seq uint64
		for _, r := range raw {
			now += time.Duration(r%50) * time.Second
			// Roll periods and fire deadlines up to now.
			for {
				if at, ok := n.Deadline(); ok && at <= now {
					for _, hb := range n.Flush(at) {
						flushedCount[hb.Seq]++
					}
				}
				if next := periodStart + period; next <= now {
					periodStart = next
					n.StartPeriod(periodStart)
					continue
				}
				break
			}
			seq++
			hb := hbmsg.Heartbeat{Src: "u", Seq: seq, Origin: now, Expiry: time.Duration(r%300+1) * time.Second, Size: 54}
			flushNow, err := n.Collect(hb, now)
			if err != nil {
				continue
			}
			accepted[seq] = 1
			if flushNow {
				for _, f := range n.Flush(now) {
					flushedCount[f.Seq]++
				}
			}
		}
		if at, ok := n.Deadline(); ok {
			for _, f := range n.Flush(at) {
				flushedCount[f.Seq]++
			}
		}
		for s := range accepted {
			if flushedCount[s] != 1 {
				return false
			}
		}
		for s := range flushedCount {
			if _, ok := accepted[s]; !ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNagleBatchesAtLeastAsLargeAsImmediate property-checks the
// batching advantage: over any arrival pattern, Nagle performs at most as
// many flushes (cellular connections) as the immediate policy would.
func TestQuickNagleBatchesAtLeastAsLargeAsImmediate(t *testing.T) {
	const (
		capacity = 8
		period   = 270 * time.Second
	)
	prop := func(raw []uint16) bool {
		arrivals := make([]arrival, 0, len(raw))
		for i, r := range raw {
			arrivals = append(arrivals, arrival{
				at:     time.Duration(int(r%1000)+i) * time.Second,
				expiry: time.Duration(r%200+30) * time.Second,
			})
		}
		flushes, err := driveNagle(capacity, period, arrivals)
		if err != nil {
			return false
		}
		accepted := 0
		for _, f := range flushes {
			accepted += len(f.batch)
		}
		// Immediate sends one connection per accepted message; Nagle must
		// not exceed that.
		return len(flushes) <= accepted || accepted == 0
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDriveNagleSmoke(t *testing.T) {
	// Two capacity-2 bursts in two different relay periods (period 270 s):
	// each burst flushes at capacity, and a straggler inside the first
	// period after its flush is rejected (window closed until next period).
	arrivals := []arrival{
		{at: 10 * time.Second, expiry: time.Minute},
		{at: 20 * time.Second, expiry: time.Minute},
		{at: 30 * time.Second, expiry: time.Minute}, // rejected: window closed
		{at: 300 * time.Second, expiry: time.Minute},
		{at: 320 * time.Second, expiry: time.Minute},
	}
	flushes, err := driveNagle(2, 270*time.Second, arrivals)
	if err != nil {
		t.Fatalf("driveNagle: %v", err)
	}
	if len(flushes) != 2 {
		t.Fatalf("flushes = %d, want 2", len(flushes))
	}
	total := 0
	for _, f := range flushes {
		total += len(f.batch)
	}
	if total != 4 {
		t.Fatalf("flushed %d messages, want 4", total)
	}
	if flushes[0].at != 20*time.Second || flushes[1].at != 320*time.Second {
		t.Fatalf("flush instants = %v/%v, want 20s/320s", flushes[0].at, flushes[1].at)
	}
}

// TestQuickNagleFlushNeverAfterMinDeadline property-checks that the
// scheduler's reported deadline never exceeds the earliest pending
// message deadline nor the period end.
func TestQuickNagleFlushNeverAfterMinDeadline(t *testing.T) {
	const period = 270 * time.Second
	prop := func(raw []uint16) bool {
		n, err := NewNagle(32, period)
		if err != nil {
			return false
		}
		n.StartPeriod(0)
		minDeadline := period // period end bound
		now := time.Duration(0)
		for _, r := range raw {
			now += time.Duration(r%40) * time.Second
			if now >= period {
				break
			}
			hb := hbmsg.Heartbeat{Src: "u", Seq: uint64(r), Origin: now,
				Expiry: time.Duration(r%300+1) * time.Second, Size: 54}
			flushNow, err := n.Collect(hb, now)
			if err != nil {
				continue
			}
			if d := hb.Deadline(); d < minDeadline {
				minDeadline = d
			}
			if flushNow {
				n.Flush(now)
				return true // capacity/deadline flush ends the scenario
			}
			at, ok := n.Deadline()
			if !ok {
				return false
			}
			if at > minDeadline {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
