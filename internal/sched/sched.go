// Package sched implements the paper's core contribution: the relay-side
// message scheduling algorithm (Algorithm 1), a Nagle-derived policy that
// delays the relay's own heartbeat and sends it together with the heartbeats
// forwarded by UEs in a single cellular connection, subject to three
// constraints: the collection capacity M, each forwarded message's
// expiration time T_k, and the relay's own heartbeat period T.
//
// Baseline policies (immediate send, fixed delay, period-aligned) are
// provided for the ablation benchmarks.
package sched

import (
	"errors"
	"fmt"
	"time"

	"d2dhb/internal/hbmsg"
)

// Sentinel errors returned by Collect.
var (
	// ErrClosed reports a collect attempt after the batch for the current
	// period was flushed ("once the heartbeat sent, the relay won't collect
	// forwarded heartbeat messages from UE(s) until the next period").
	ErrClosed = errors.New("sched: collection closed until next period")
	// ErrExpired reports a heartbeat that was already past its deadline on
	// arrival; scheduling it would waste a transmission.
	ErrExpired = errors.New("sched: heartbeat expired on arrival")
)

// Kind identifies a scheduling policy.
type Kind int

// Scheduling policies.
const (
	KindNagle         Kind = iota + 1 // Algorithm 1
	KindImmediate                     // flush every message at once (no batching)
	KindFixedDelay                    // flush a fixed delay after the first message
	KindPeriodAligned                 // always wait for the relay's period end
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNagle:
		return "nagle"
	case KindImmediate:
		return "immediate"
	case KindFixedDelay:
		return "fixed-delay"
	case KindPeriodAligned:
		return "period-aligned"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// FlushReason explains why a batch was released.
type FlushReason int

// Flush reasons.
const (
	ReasonCapacity  FlushReason = iota + 1 // k reached M
	ReasonDeadline                         // a collected message's T_k forced the send
	ReasonPeriodEnd                        // the relay's own period T elapsed
	ReasonPolicy                           // policy-specific (immediate / fixed delay)
)

// String implements fmt.Stringer.
func (r FlushReason) String() string {
	switch r {
	case ReasonCapacity:
		return "capacity"
	case ReasonDeadline:
		return "deadline"
	case ReasonPeriodEnd:
		return "period-end"
	case ReasonPolicy:
		return "policy"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Policy is a relay-side heartbeat scheduling strategy. The relay drives it:
// StartPeriod at each of its own heartbeat periods, Collect on every
// forwarded heartbeat, and Flush when Collect demands it or the Deadline
// arrives.
//
// Implementations are pure state machines with no timers of their own; this
// keeps them usable from both the discrete-event simulator and the real
// TCP relay agent.
type Policy interface {
	// Kind identifies the policy.
	Kind() Kind
	// StartPeriod opens a new collection window at the given instant; the
	// window closes at instant + the relay period.
	StartPeriod(at time.Duration)
	// Collect offers a forwarded heartbeat at instant now. It returns
	// flushNow = true when the batch must be sent immediately.
	Collect(hb hbmsg.Heartbeat, now time.Duration) (flushNow bool, err error)
	// Deadline returns the instant by which the pending batch must be
	// flushed, and whether a flush is scheduled at all.
	Deadline() (at time.Duration, ok bool)
	// Flush drains and returns the pending batch, closing collection until
	// the next period.
	Flush(now time.Duration) []hbmsg.Heartbeat
	// Pending reports how many heartbeats are waiting.
	Pending() int
	// Accepting reports whether Collect would currently admit a message.
	Accepting() bool
}

// Nagle is Algorithm 1. Within each relay heartbeat period it buffers
// forwarded heartbeats while
//
//	k < M  &&  t − t_k < T_k (for every collected message)  &&  t < T
//
// and flushes as soon as any bound is reached, sending everything in one
// cellular connection together with the relay's own heartbeat.
type Nagle struct {
	instrumented
	capacity int
	period   time.Duration

	periodStart time.Duration
	pending     []hbmsg.Heartbeat
	closed      bool
	lastReason  FlushReason
}

var _ Policy = (*Nagle)(nil)

// NewNagle builds the Algorithm 1 scheduler with collection capacity M and
// relay heartbeat period T. The scheduler starts closed; call StartPeriod to
// open the first collection window.
func NewNagle(capacity int, period time.Duration) (*Nagle, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sched: capacity must be positive, got %d", capacity)
	}
	if period <= 0 {
		return nil, fmt.Errorf("sched: period must be positive, got %v", period)
	}
	return &Nagle{capacity: capacity, period: period, closed: true}, nil
}

// Kind implements Policy.
func (n *Nagle) Kind() Kind { return KindNagle }

// Capacity returns M.
func (n *Nagle) Capacity() int { return n.capacity }

// Period returns T.
func (n *Nagle) Period() time.Duration { return n.period }

// StartPeriod implements Policy.
func (n *Nagle) StartPeriod(at time.Duration) {
	n.periodStart = at
	n.closed = false
	n.pending = n.pending[:0]
	n.lastReason = 0
}

// periodEnd returns the hard bound t < T for the current window.
func (n *Nagle) periodEnd() time.Duration { return n.periodStart + n.period }

// Collect implements Policy.
func (n *Nagle) Collect(hb hbmsg.Heartbeat, now time.Duration) (bool, error) {
	if n.closed {
		n.ins.observeReject(ErrClosed)
		return false, ErrClosed
	}
	if hb.Expired(now) {
		n.ins.observeReject(ErrExpired)
		return false, ErrExpired
	}
	n.pending = append(n.pending, hb)
	n.ins.observeCollect(len(n.pending))
	// Algorithm 1: pend only while k < M; reaching M sends now.
	if len(n.pending) >= n.capacity {
		n.lastReason = ReasonCapacity
		return true, nil
	}
	// If the message is already due (its deadline is now), send rather
	// than risk expiry.
	if at, ok := n.Deadline(); ok && at <= now {
		if at == n.periodEnd() {
			n.lastReason = ReasonPeriodEnd
		} else {
			n.lastReason = ReasonDeadline
		}
		return true, nil
	}
	return false, nil
}

// Deadline implements Policy: min(period end, earliest collected deadline).
// With no pending messages the deadline is the period end, when the relay's
// own heartbeat goes out regardless.
func (n *Nagle) Deadline() (time.Duration, bool) {
	if n.closed {
		return 0, false
	}
	at := n.periodEnd()
	for _, hb := range n.pending {
		if d := hb.Deadline(); d < at {
			at = d
		}
	}
	return at, true
}

// Flush implements Policy.
func (n *Nagle) Flush(now time.Duration) []hbmsg.Heartbeat {
	if n.closed {
		return nil
	}
	if at, ok := n.Deadline(); ok {
		n.ins.observeFlush(len(n.pending), at-now)
	}
	if n.lastReason == 0 {
		if now >= n.periodEnd() {
			n.lastReason = ReasonPeriodEnd
		} else {
			n.lastReason = ReasonDeadline
		}
	}
	out := n.pending
	n.pending = nil
	n.closed = true
	return out
}

// LastFlushReason reports why the most recent flush happened. It is zero
// before the first flush of a period.
func (n *Nagle) LastFlushReason() FlushReason { return n.lastReason }

// Pending implements Policy.
func (n *Nagle) Pending() int { return len(n.pending) }

// Accepting implements Policy.
func (n *Nagle) Accepting() bool { return !n.closed && len(n.pending) < n.capacity }
