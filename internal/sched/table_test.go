package sched

import (
	"errors"
	"testing"
	"time"

	"d2dhb/internal/hbmsg"
	"d2dhb/internal/telemetry"
)

// L shortens label construction in the instrument assertions.
func L(k, v string) telemetry.Label { return telemetry.L(k, v) }

// testInstruments builds a full Instruments set backed by a fresh registry.
func testInstruments(t *testing.T) (*Instruments, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	return &Instruments{
		Occupancy:     reg.Histogram("occ", "msgs", 1),
		FlushSize:     reg.Histogram("fsize", "msgs", 1),
		FlushSlack:    reg.Histogram("slack", "us", 1),
		Capacity:      reg.Gauge("cap"),
		RejectClosed:  reg.Counter("rejects", telemetry.L("reason", "closed")),
		RejectExpired: reg.Counter("rejects", telemetry.L("reason", "expired")),
	}, reg
}

// The shared policy table: every test below runs against all four kinds so
// the per-Kind Collect/Deadline/Flush contracts are pinned side by side.
// M=3, T=10s, fixed delay 2s throughout.
const (
	tblCapacity = 3
	tblPeriod   = 10 * time.Second
	tblDelay    = 2 * time.Second
)

func tblPolicy(t *testing.T, kind Kind) Policy {
	t.Helper()
	p, err := New(kind, tblCapacity, tblPeriod, tblDelay)
	if err != nil {
		t.Fatalf("New(%v): %v", kind, err)
	}
	return p
}

func tblHB(seq uint64, origin, expiry time.Duration) hbmsg.Heartbeat {
	return hbmsg.Heartbeat{Src: "ue", App: "app", Seq: seq, Origin: origin, Expiry: expiry}
}

func allKinds() []Kind {
	return []Kind{KindNagle, KindImmediate, KindFixedDelay, KindPeriodAligned}
}

// TestPolicyTableCapacityBoundary walks each policy through M-1, M and M+1
// collects: only Nagle enforces the capacity bound; Immediate flushes every
// message; the other baselines buffer without limit.
func TestPolicyTableCapacityBoundary(t *testing.T) {
	cases := []struct {
		kind Kind
		// flushNow expected from each of the first M-1 collects, the M-th
		// collect, and the M+1-th collect.
		underCap, atCap, overCap bool
		// acceptingAtCap is Accepting() right after the M-th collect
		// (before any flush).
		acceptingAtCap bool
	}{
		{KindNagle, false, true, false, false},
		{KindImmediate, true, true, true, true},
		{KindFixedDelay, false, false, false, true},
		{KindPeriodAligned, false, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			p := tblPolicy(t, tc.kind)
			p.StartPeriod(0)
			// Generous expiries keep T_k out of play: this test isolates M.
			for i := 0; i < tblCapacity-1; i++ {
				flush, err := p.Collect(tblHB(uint64(i), 0, tblPeriod), time.Duration(i))
				if err != nil {
					t.Fatalf("collect %d: %v", i, err)
				}
				if flush != tc.underCap {
					t.Fatalf("collect %d (under capacity): flushNow=%v, want %v", i, flush, tc.underCap)
				}
			}
			flush, err := p.Collect(tblHB(tblCapacity-1, 0, tblPeriod), time.Second)
			if err != nil {
				t.Fatalf("collect at capacity: %v", err)
			}
			if flush != tc.atCap {
				t.Fatalf("collect at capacity M=%d: flushNow=%v, want %v", tblCapacity, flush, tc.atCap)
			}
			if got := p.Accepting(); got != tc.acceptingAtCap {
				t.Fatalf("Accepting() at capacity = %v, want %v", got, tc.acceptingAtCap)
			}
			flush, err = p.Collect(tblHB(tblCapacity, 0, tblPeriod), time.Second)
			if tc.kind == KindNagle {
				// Nagle demanded a flush at M; without it the window is
				// over capacity but Collect itself still admits the
				// message and re-demands the flush.
				if err != nil || !flush {
					t.Fatalf("collect over capacity: flush=%v err=%v, want true,nil", flush, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("collect past M: %v", err)
			}
			if flush != tc.overCap {
				t.Fatalf("collect past M: flushNow=%v, want %v", flush, tc.overCap)
			}
		})
	}
}

// TestPolicyTableDeadline pins Deadline with one pending message whose T_k
// expires mid-period: Nagle tracks the message deadline, FixedDelay tracks
// first-arrival+delay, the others wait for the period end.
func TestPolicyTableDeadline(t *testing.T) {
	const (
		arrival = 1 * time.Second
		expiry  = 3 * time.Second // message deadline: 4s
	)
	cases := []struct {
		kind Kind
		want time.Duration
	}{
		{KindNagle, arrival + expiry},        // min(T_k deadline, period end)
		{KindImmediate, tblPeriod},           // period end only
		{KindFixedDelay, arrival + tblDelay}, // first arrival + delay
		{KindPeriodAligned, tblPeriod},       // period end only
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			p := tblPolicy(t, tc.kind)
			if _, ok := p.Deadline(); ok {
				t.Fatal("Deadline() reported a deadline before StartPeriod")
			}
			p.StartPeriod(0)
			if _, err := p.Collect(tblHB(1, arrival, expiry), arrival); err != nil {
				t.Fatalf("collect: %v", err)
			}
			at, ok := p.Deadline()
			if !ok || at != tc.want {
				t.Fatalf("Deadline() = %v,%v, want %v,true", at, ok, tc.want)
			}
		})
	}
}

// TestPolicyTableExpiryTies collects two messages sharing one deadline plus
// a later one: the tied earliest deadline must win for Nagle and must not
// perturb the baselines.
func TestPolicyTableExpiryTies(t *testing.T) {
	const tie = 4 * time.Second
	cases := []struct {
		kind Kind
		want time.Duration
	}{
		{KindNagle, tie},
		{KindImmediate, tblPeriod},
		{KindFixedDelay, 1*time.Second + tblDelay},
		{KindPeriodAligned, tblPeriod},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			p := tblPolicy(t, tc.kind)
			p.StartPeriod(0)
			// Two distinct messages with the same deadline (1s+3s and
			// 2s+2s → both 4s), then a later one (3s+5s → 8s).
			for i, hb := range []hbmsg.Heartbeat{
				tblHB(1, 1*time.Second, 3*time.Second),
				tblHB(2, 2*time.Second, 2*time.Second),
				tblHB(3, 3*time.Second, 5*time.Second),
			} {
				if _, err := p.Collect(hb, hb.Origin); err != nil {
					t.Fatalf("collect %d: %v", i, err)
				}
			}
			at, ok := p.Deadline()
			if !ok || at != tc.want {
				t.Fatalf("Deadline() = %v,%v, want %v,true", at, ok, tc.want)
			}
		})
	}
}

// TestPolicyTableArrivalExactlyAtDeadline pins the boundary semantics of
// Expired: now == Origin+Expiry is NOT expired (Expired uses >), so a
// heartbeat arriving exactly at its deadline is still admitted — and for
// Nagle it is immediately due, forcing a flush.
func TestPolicyTableArrivalExactlyAtDeadline(t *testing.T) {
	cases := []struct {
		kind     Kind
		flushNow bool
	}{
		{KindNagle, true}, // deadline ≤ now ⇒ send before it dies
		{KindImmediate, true},
		{KindFixedDelay, false},
		{KindPeriodAligned, false},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			p := tblPolicy(t, tc.kind)
			p.StartPeriod(0)
			hb := tblHB(1, 1*time.Second, 2*time.Second)
			now := hb.Deadline() // exactly at the boundary
			flush, err := p.Collect(hb, now)
			if err != nil {
				t.Fatalf("collect exactly at deadline rejected: %v", err)
			}
			if flush != tc.flushNow {
				t.Fatalf("flushNow = %v, want %v", flush, tc.flushNow)
			}
			// One instant later the same message must be rejected.
			p2 := tblPolicy(t, tc.kind)
			p2.StartPeriod(0)
			if _, err := p2.Collect(hb, now+1); !errors.Is(err, ErrExpired) {
				t.Fatalf("collect past deadline: err = %v, want ErrExpired", err)
			}
		})
	}
}

// TestPolicyTableFlushAfterClosed pins what Flush and Collect do once the
// window has already been flushed: the closing policies return nil and
// reject with ErrClosed until StartPeriod; Immediate never closes.
func TestPolicyTableFlushAfterClosed(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p := tblPolicy(t, kind)
			p.StartPeriod(0)
			if _, err := p.Collect(tblHB(1, 0, tblPeriod), 0); err != nil {
				t.Fatalf("collect: %v", err)
			}
			first := p.Flush(2 * time.Second)
			if len(first) != 1 {
				t.Fatalf("first flush returned %d messages, want 1", len(first))
			}
			second := p.Flush(3 * time.Second)
			if second != nil {
				t.Fatalf("second flush returned %v, want nil", second)
			}
			_, err := p.Collect(tblHB(2, 0, tblPeriod), 3*time.Second)
			if kind == KindImmediate {
				// Immediate keeps the window open all period.
				if err != nil {
					t.Fatalf("immediate rejected after flush: %v", err)
				}
			} else if !errors.Is(err, ErrClosed) {
				t.Fatalf("collect after flush: err = %v, want ErrClosed", err)
			}
			// A new period reopens every policy.
			p.StartPeriod(tblPeriod)
			if !p.Accepting() {
				t.Fatal("policy not accepting after StartPeriod")
			}
			if p.Pending() != 0 {
				t.Fatalf("pending = %d after StartPeriod, want 0", p.Pending())
			}
			if _, err := p.Collect(tblHB(3, tblPeriod, tblPeriod), tblPeriod); err != nil {
				t.Fatalf("collect in new period: %v", err)
			}
		})
	}
}

// TestPolicyTableFlushDrainsInOrder verifies every policy returns collected
// messages in arrival order and empties the buffer.
func TestPolicyTableFlushDrainsInOrder(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p := tblPolicy(t, kind)
			p.StartPeriod(0)
			want := []uint64{1, 2}
			for i, seq := range want {
				if _, err := p.Collect(tblHB(seq, 0, tblPeriod), time.Duration(i)); err != nil {
					t.Fatalf("collect %d: %v", seq, err)
				}
			}
			if p.Pending() != len(want) {
				t.Fatalf("pending = %d, want %d", p.Pending(), len(want))
			}
			out := p.Flush(3 * time.Second)
			if len(out) != len(want) {
				t.Fatalf("flush returned %d messages, want %d", len(out), len(want))
			}
			for i, hb := range out {
				if hb.Seq != want[i] {
					t.Fatalf("flush[%d].Seq = %d, want %d (arrival order)", i, hb.Seq, want[i])
				}
			}
			if p.Pending() != 0 {
				t.Fatalf("pending = %d after flush, want 0", p.Pending())
			}
		})
	}
}

// TestPolicyTableInstruments drives each instrumented policy through
// rejects, collects and a flush, asserting the counters and histograms see
// exactly the values derived from the injected instants.
func TestPolicyTableInstruments(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p := tblPolicy(t, kind)
			ins, reg := testInstruments(t)
			p.(Instrumented).SetInstruments(ins)

			p.StartPeriod(0)
			// One expired reject, two accepted collects, one flush.
			if _, err := p.Collect(tblHB(1, 0, time.Second), 2*time.Second); !errors.Is(err, ErrExpired) {
				t.Fatalf("want ErrExpired, got %v", err)
			}
			if _, err := p.Collect(tblHB(2, 0, tblPeriod), time.Second); err != nil {
				t.Fatalf("collect: %v", err)
			}
			if _, err := p.Collect(tblHB(3, 0, tblPeriod), time.Second); err != nil {
				t.Fatalf("collect: %v", err)
			}
			p.Flush(2 * time.Second)
			if kind != KindImmediate {
				// Collect on the closed window counts a closed reject.
				if _, err := p.Collect(tblHB(4, 0, tblPeriod), 3*time.Second); !errors.Is(err, ErrClosed) {
					t.Fatalf("want ErrClosed, got %v", err)
				}
			}

			d := reg.Dump()
			if got := d.Find("occ").Hist.Count; got != 2 {
				t.Fatalf("occupancy count = %d, want 2", got)
			}
			if got := d.Find("occ").Hist.Max; got != 2 {
				t.Fatalf("occupancy max = %d, want 2", got)
			}
			if got := d.Find("fsize").Hist.Count; got != 1 {
				t.Fatalf("flush size count = %d, want 1", got)
			}
			if got := d.Find("fsize").Hist.Max; got != 2 {
				t.Fatalf("flush size = %d, want 2", got)
			}
			if got := d.Find("rejects", L("reason", "expired")).Value; got != 1 {
				t.Fatalf("expired rejects = %v, want 1", got)
			}
			wantClosed := 1.0
			if kind == KindImmediate {
				wantClosed = 0
			}
			if got := d.Find("rejects", L("reason", "closed")).Value; got != wantClosed {
				t.Fatalf("closed rejects = %v, want %v", got, wantClosed)
			}
			// Slack is deadline−flushInstant in µs; every policy flushed at
			// 2s with its own deadline semantics, all ≥ the flush instant.
			if got := d.Find("slack").Hist.Count; got != 1 {
				t.Fatalf("slack count = %d, want 1", got)
			}
		})
	}
}
