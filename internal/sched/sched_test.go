package sched

import (
	"errors"
	"testing"
	"time"

	"d2dhb/internal/hbmsg"
)

// mkHB builds a heartbeat born at origin with the given expiry.
func mkHB(seq uint64, origin, expiry time.Duration) hbmsg.Heartbeat {
	return hbmsg.Heartbeat{
		App: "test", Src: "ue-1", Seq: seq,
		Origin: origin, Expiry: expiry, Size: 54,
	}
}

func newNagle(t *testing.T, capacity int, period time.Duration) *Nagle {
	t.Helper()
	n, err := NewNagle(capacity, period)
	if err != nil {
		t.Fatalf("NewNagle: %v", err)
	}
	return n
}

func TestNewNagleValidation(t *testing.T) {
	if _, err := NewNagle(0, time.Minute); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewNagle(-1, time.Minute); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewNagle(5, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestNagleStartsClosed(t *testing.T) {
	n := newNagle(t, 5, time.Minute)
	if n.Accepting() {
		t.Fatal("accepting before StartPeriod")
	}
	if _, err := n.Collect(mkHB(1, 0, time.Minute), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Collect before StartPeriod: err = %v, want ErrClosed", err)
	}
	if _, ok := n.Deadline(); ok {
		t.Fatal("deadline reported while closed")
	}
}

func TestNaglePendsWhileUnderAllBounds(t *testing.T) {
	// Algorithm 1: if k < M && t − t_k < T_k && t < T then pending.
	n := newNagle(t, 5, 270*time.Second)
	n.StartPeriod(0)
	flush, err := n.Collect(mkHB(1, 10*time.Second, 240*time.Second), 10*time.Second)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if flush {
		t.Fatal("flushed below capacity with slack deadline")
	}
	if n.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", n.Pending())
	}
}

func TestNagleCapacityForcesFlush(t *testing.T) {
	// Algorithm 1: reaching M ("k < M" fails) → "send data now".
	const m = 3
	n := newNagle(t, m, 270*time.Second)
	n.StartPeriod(0)
	for i := 1; i < m; i++ {
		flush, err := n.Collect(mkHB(uint64(i), 0, time.Hour), time.Duration(i)*time.Second)
		if err != nil || flush {
			t.Fatalf("msg %d: flush=%v err=%v, want pending", i, flush, err)
		}
	}
	flush, err := n.Collect(mkHB(m, 0, time.Hour), time.Duration(m)*time.Second)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !flush {
		t.Fatal("capacity reached but no flush")
	}
	batch := n.Flush(time.Duration(m) * time.Second)
	if len(batch) != m {
		t.Fatalf("batch size = %d, want %d", len(batch), m)
	}
	if n.LastFlushReason() != ReasonCapacity {
		t.Fatalf("reason = %v, want capacity", n.LastFlushReason())
	}
}

func TestNagleDeadlineIsMinOfExpiryAndPeriodEnd(t *testing.T) {
	n := newNagle(t, 10, 270*time.Second)
	n.StartPeriod(0)
	// No messages: deadline is the relay's own period end.
	if at, ok := n.Deadline(); !ok || at != 270*time.Second {
		t.Fatalf("empty deadline = %v/%v, want 270s", at, ok)
	}
	// A message with a deadline before period end pulls the flush forward.
	if _, err := n.Collect(mkHB(1, 10*time.Second, 100*time.Second), 10*time.Second); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if at, _ := n.Deadline(); at != 110*time.Second {
		t.Fatalf("deadline = %v, want 110s (origin+expiry)", at)
	}
	// A message with a later deadline must not push it back.
	if _, err := n.Collect(mkHB(2, 20*time.Second, time.Hour), 20*time.Second); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if at, _ := n.Deadline(); at != 110*time.Second {
		t.Fatalf("deadline moved to %v, want 110s", at)
	}
}

func TestNagleDeadlineCappedByPeriodEnd(t *testing.T) {
	// Algorithm 1: t < T even when all T_k allow more delay.
	n := newNagle(t, 10, 60*time.Second)
	n.StartPeriod(0)
	if _, err := n.Collect(mkHB(1, 0, time.Hour), 0); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if at, _ := n.Deadline(); at != 60*time.Second {
		t.Fatalf("deadline = %v, want period end 60s", at)
	}
}

func TestNagleRejectsExpiredOnArrival(t *testing.T) {
	n := newNagle(t, 5, 270*time.Second)
	n.StartPeriod(0)
	hb := mkHB(1, 0, 10*time.Second)
	if _, err := n.Collect(hb, 20*time.Second); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	if n.Pending() != 0 {
		t.Fatal("expired message was retained")
	}
}

func TestNagleImmediateDueMessageFlushes(t *testing.T) {
	// A message arriving exactly at its deadline must be sent now, not
	// parked past expiry.
	n := newNagle(t, 5, 270*time.Second)
	n.StartPeriod(0)
	hb := mkHB(1, 0, 30*time.Second)
	flush, err := n.Collect(hb, 30*time.Second)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !flush {
		t.Fatal("due message did not force flush")
	}
	if n.LastFlushReason() != ReasonDeadline {
		t.Fatalf("reason = %v, want deadline", n.LastFlushReason())
	}
}

func TestNagleClosesAfterFlushUntilNextPeriod(t *testing.T) {
	n := newNagle(t, 5, 270*time.Second)
	n.StartPeriod(0)
	if _, err := n.Collect(mkHB(1, 0, time.Hour), 0); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	got := n.Flush(100 * time.Second)
	if len(got) != 1 {
		t.Fatalf("flushed %d, want 1", len(got))
	}
	if n.Accepting() {
		t.Fatal("accepting after flush")
	}
	if _, err := n.Collect(mkHB(2, 100*time.Second, time.Hour), 100*time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// The next period reopens collection.
	n.StartPeriod(270 * time.Second)
	if !n.Accepting() {
		t.Fatal("not accepting after new period")
	}
	if n.Pending() != 0 {
		t.Fatal("stale pending after new period")
	}
}

func TestNagleFlushWhileClosedReturnsNil(t *testing.T) {
	n := newNagle(t, 5, time.Minute)
	if got := n.Flush(0); got != nil {
		t.Fatalf("Flush while closed = %v, want nil", got)
	}
}

func TestNagleFlushReasonPeriodEnd(t *testing.T) {
	n := newNagle(t, 5, 60*time.Second)
	n.StartPeriod(0)
	if _, err := n.Collect(mkHB(1, 0, time.Hour), 5*time.Second); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	n.Flush(60 * time.Second)
	if n.LastFlushReason() != ReasonPeriodEnd {
		t.Fatalf("reason = %v, want period-end", n.LastFlushReason())
	}
}

func TestNagleAccessors(t *testing.T) {
	n := newNagle(t, 7, 90*time.Second)
	if n.Capacity() != 7 || n.Period() != 90*time.Second {
		t.Fatalf("accessors = %d/%v", n.Capacity(), n.Period())
	}
	if n.Kind() != KindNagle {
		t.Fatalf("kind = %v", n.Kind())
	}
}

func TestImmediateFlushesEveryMessage(t *testing.T) {
	p, err := NewImmediate(270 * time.Second)
	if err != nil {
		t.Fatalf("NewImmediate: %v", err)
	}
	p.StartPeriod(0)
	for i := 1; i <= 3; i++ {
		flush, err := p.Collect(mkHB(uint64(i), 0, time.Hour), time.Duration(i)*time.Second)
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		if !flush {
			t.Fatalf("msg %d not flushed immediately", i)
		}
		batch := p.Flush(time.Duration(i) * time.Second)
		if len(batch) != 1 {
			t.Fatalf("batch = %d msgs, want 1", len(batch))
		}
		if !p.Accepting() {
			t.Fatal("immediate policy stopped accepting mid-period")
		}
	}
}

func TestImmediateValidationAndClosed(t *testing.T) {
	if _, err := NewImmediate(0); err == nil {
		t.Fatal("zero period accepted")
	}
	p, err := NewImmediate(time.Minute)
	if err != nil {
		t.Fatalf("NewImmediate: %v", err)
	}
	if _, err := p.Collect(mkHB(1, 0, time.Hour), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	p.StartPeriod(0)
	if _, err := p.Collect(mkHB(1, 0, time.Nanosecond), time.Minute); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	if at, ok := p.Deadline(); !ok || at != time.Minute {
		t.Fatalf("deadline = %v/%v, want 1m", at, ok)
	}
}

func TestFixedDelayWaitsExactDelay(t *testing.T) {
	p, err := NewFixedDelay(30*time.Second, 270*time.Second)
	if err != nil {
		t.Fatalf("NewFixedDelay: %v", err)
	}
	p.StartPeriod(0)
	if _, err := p.Collect(mkHB(1, 10*time.Second, time.Hour), 10*time.Second); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if at, _ := p.Deadline(); at != 40*time.Second {
		t.Fatalf("deadline = %v, want first+delay = 40s", at)
	}
	// Fixed delay ignores expiries — a message with a tighter T_k does not
	// move the deadline. That is exactly its weakness.
	if _, err := p.Collect(mkHB(2, 10*time.Second, 5*time.Second), 12*time.Second); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if at, _ := p.Deadline(); at != 40*time.Second {
		t.Fatalf("deadline moved to %v, want 40s (expiry ignored)", at)
	}
	batch := p.Flush(40 * time.Second)
	if len(batch) != 2 {
		t.Fatalf("batch = %d, want 2", len(batch))
	}
	// One of the two is now expired: the baseline's delivery failure.
	expired := 0
	for _, hb := range batch {
		if hb.Expired(40 * time.Second) {
			expired++
		}
	}
	if expired != 1 {
		t.Fatalf("expired in batch = %d, want 1", expired)
	}
}

func TestFixedDelayCappedByPeriodEnd(t *testing.T) {
	p, err := NewFixedDelay(500*time.Second, 270*time.Second)
	if err != nil {
		t.Fatalf("NewFixedDelay: %v", err)
	}
	p.StartPeriod(0)
	if _, err := p.Collect(mkHB(1, 0, time.Hour), 0); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if at, _ := p.Deadline(); at != 270*time.Second {
		t.Fatalf("deadline = %v, want period end", at)
	}
}

func TestFixedDelayValidation(t *testing.T) {
	if _, err := NewFixedDelay(0, time.Minute); err == nil {
		t.Fatal("zero delay accepted")
	}
	if _, err := NewFixedDelay(time.Second, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestPeriodAlignedWaitsForPeriodEnd(t *testing.T) {
	p, err := NewPeriodAligned(270 * time.Second)
	if err != nil {
		t.Fatalf("NewPeriodAligned: %v", err)
	}
	p.StartPeriod(0)
	for i := 1; i <= 10; i++ {
		flush, err := p.Collect(mkHB(uint64(i), 0, time.Hour), time.Duration(i)*time.Second)
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		if flush {
			t.Fatal("period-aligned flushed early")
		}
	}
	if at, _ := p.Deadline(); at != 270*time.Second {
		t.Fatalf("deadline = %v, want 270s", at)
	}
	if got := len(p.Flush(270 * time.Second)); got != 10 {
		t.Fatalf("batch = %d, want 10", got)
	}
	if p.Accepting() {
		t.Fatal("accepting after flush")
	}
}

func TestPeriodAlignedValidation(t *testing.T) {
	if _, err := NewPeriodAligned(0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestNewFactory(t *testing.T) {
	tests := []struct {
		kind Kind
		want Kind
	}{
		{KindNagle, KindNagle},
		{KindImmediate, KindImmediate},
		{KindFixedDelay, KindFixedDelay},
		{KindPeriodAligned, KindPeriodAligned},
	}
	for _, tt := range tests {
		p, err := New(tt.kind, 5, time.Minute, time.Second)
		if err != nil {
			t.Fatalf("New(%v): %v", tt.kind, err)
		}
		if p.Kind() != tt.want {
			t.Fatalf("kind = %v, want %v", p.Kind(), tt.want)
		}
	}
	if _, err := New(Kind(99), 5, time.Minute, time.Second); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindAndReasonStrings(t *testing.T) {
	if KindNagle.String() != "nagle" || KindImmediate.String() != "immediate" ||
		KindFixedDelay.String() != "fixed-delay" || KindPeriodAligned.String() != "period-aligned" {
		t.Fatal("kind strings wrong")
	}
	if Kind(77).String() != "kind(77)" {
		t.Fatal("unknown kind string wrong")
	}
	if ReasonCapacity.String() != "capacity" || ReasonDeadline.String() != "deadline" ||
		ReasonPeriodEnd.String() != "period-end" || ReasonPolicy.String() != "policy" {
		t.Fatal("reason strings wrong")
	}
	if FlushReason(88).String() != "reason(88)" {
		t.Fatal("unknown reason string wrong")
	}
}
