package hbproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// oldWriteFrame is the pre-codec encoder, kept verbatim as the reference
// implementation: AppendFrame must produce byte-identical frames.
func oldWriteFrame(w *bytes.Buffer, msg Message) error {
	if msg == nil {
		return errors.New("hbproto: nil message")
	}
	var body buffer
	msg.encode(&body)
	if len(body.data) > MaxFrameSize {
		return ErrFrameTooBig
	}
	header := make([]byte, 0, 8+len(body.data)+4)
	header = append(header, magic[0], magic[1], Version, byte(msg.Type()))
	header = binary.BigEndian.AppendUint32(header, uint32(len(body.data)))
	header = append(header, body.data...)
	header = binary.BigEndian.AppendUint32(header, crc32.ChecksumIEEE(body.data))
	_, err := w.Write(header)
	return err
}

// corpusMessages generates a deterministic spread of messages across all
// five types and a range of string lengths, batch sizes and field values.
func corpusMessages(seed int64, n int) []Message {
	rng := rand.New(rand.NewSource(seed))
	str := func() string {
		b := make([]byte, rng.Intn(24))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	hb := func() Heartbeat {
		return Heartbeat{
			Src: str(), Seq: rng.Uint64() >> uint(rng.Intn(64)),
			App:    str(),
			Origin: time.UnixMilli(rng.Int63n(1 << 45)).UTC(),
			Expiry: time.Duration(rng.Intn(1e9)),
			Pad:    rng.Intn(MaxFrameSize),
		}
	}
	refs := func() []Ref {
		out := make([]Ref, rng.Intn(40))
		for i := range out {
			out[i] = Ref{Src: str(), Seq: rng.Uint64()}
		}
		return out
	}
	msgs := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			msgs = append(msgs, &Register{
				ID: str(), Role: Role(1 + rng.Intn(2)), App: str(),
				Period: time.Duration(rng.Intn(1e9)), Expiry: time.Duration(rng.Intn(1e9)),
			})
		case 1:
			h := hb()
			msgs = append(msgs, &h)
		case 2:
			hbs := make([]Heartbeat, rng.Intn(40))
			for j := range hbs {
				hbs[j] = hb()
			}
			msgs = append(msgs, &Batch{Relay: str(), HBs: hbs})
		case 3:
			msgs = append(msgs, &Ack{Refs: refs()})
		default:
			msgs = append(msgs, &Feedback{Refs: refs()})
		}
	}
	return msgs
}

// TestAppendFrameMatchesWriteFrame proves the new encoder byte-identical
// to the old one over a generated corpus covering every message type.
func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	for i, msg := range corpusMessages(77, 200) {
		var want bytes.Buffer
		if err := oldWriteFrame(&want, msg); err != nil {
			t.Fatalf("msg %d: old encoder: %v", i, err)
		}
		got, err := AppendFrame(nil, msg)
		if err != nil {
			t.Fatalf("msg %d: AppendFrame: %v", i, err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("msg %d (%v): frames differ\n new %x\n old %x",
				i, msg.Type(), got, want.Bytes())
		}
		// The wrapper path must also match.
		var viaWrapper bytes.Buffer
		if err := WriteFrame(&viaWrapper, msg); err != nil {
			t.Fatalf("msg %d: WriteFrame: %v", i, err)
		}
		if !bytes.Equal(viaWrapper.Bytes(), want.Bytes()) {
			t.Fatalf("msg %d: WriteFrame wrapper diverges from old encoder", i)
		}
	}
}

// TestAppendFrameComposes appends several frames into one buffer and
// decodes them back through both ReadFrame and FrameReader.
func TestAppendFrameComposes(t *testing.T) {
	msgs := corpusMessages(78, 25)
	var buf []byte
	for _, m := range msgs {
		var err error
		if buf, err = AppendFrame(buf, m); err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
	}
	r := bytes.NewReader(buf)
	for i, want := range msgs {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, want := range msgs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("FrameReader frame %d: %v", i, err)
		}
		if got.Type() != want.Type() || !reflect.DeepEqual(got, want) {
			t.Fatalf("FrameReader frame %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestAppendFrameErrors covers the nil and oversize paths, and that an
// error leaves dst unextended.
func TestAppendFrameErrors(t *testing.T) {
	dst := []byte("prefix")
	out, err := AppendFrame(dst, nil)
	if err == nil {
		t.Fatal("nil message accepted")
	}
	if string(out) != "prefix" {
		t.Fatalf("dst extended on error: %q", out)
	}
	big := &Batch{Relay: "r", HBs: make([]Heartbeat, MaxFrameSize/8)}
	out, err = AppendFrame(dst, big)
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
	if string(out) != "prefix" {
		t.Fatal("dst extended on oversize frame")
	}
}

func TestErrTrailingBytesSentinel(t *testing.T) {
	// Hand-build a frame whose payload has valid content plus junk.
	var body buffer
	(&Ack{}).encode(&body)
	body.data = append(body.data, 0xAA)
	var frame bytes.Buffer
	frame.Write([]byte{'H', 'B', Version, byte(TypeAck)})
	frame.Write([]byte{0, 0, 0, byte(len(body.data))})
	frame.Write(body.data)
	sum := crc32.ChecksumIEEE(body.data)
	frame.Write([]byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
	raw := frame.Bytes()

	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("ReadFrame err = %v, want ErrTrailingBytes", err)
	}
	if _, err := NewFrameReader(bytes.NewReader(raw)).Next(); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("FrameReader err = %v, want ErrTrailingBytes", err)
	}
}

func TestFrameReaderReadInto(t *testing.T) {
	var buf []byte
	var err error
	want := &Ack{Refs: []Ref{{Src: "a", Seq: 1}, {Src: "b", Seq: 2}}}
	if buf, err = AppendFrame(buf, want); err != nil {
		t.Fatal(err)
	}
	if buf, err = AppendFrame(buf, &Heartbeat{Src: "x", Seq: 3, App: "std", Origin: time.UnixMilli(9).UTC(), Expiry: time.Second, Pad: 54}); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	var ack Ack
	if err := fr.ReadInto(&ack); err != nil {
		t.Fatalf("ReadInto: %v", err)
	}
	if !reflect.DeepEqual(&ack, want) {
		t.Fatalf("got %+v, want %+v", ack, want)
	}
	// Wrong expected type: sentinel error, stream positioned past frame.
	if err := fr.ReadInto(&ack); !errors.Is(err, ErrUnexpectedType) {
		t.Fatalf("err = %v, want ErrUnexpectedType", err)
	}
}

// TestFrameReaderReuseIsolation pins the documented aliasing contract:
// values from Next are only valid until the following call, and interned
// strings are stable across frames.
func TestFrameReaderReuseIsolation(t *testing.T) {
	var buf []byte
	var err error
	for seq := uint64(1); seq <= 3; seq++ {
		b := &Batch{Relay: "r-1", HBs: []Heartbeat{
			{Src: "ue-a", Seq: seq, App: "std", Origin: time.UnixMilli(int64(seq)).UTC(), Expiry: time.Second, Pad: 54},
		}}
		if buf, err = AppendFrame(buf, b); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	first, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	firstBatch := first.(*Batch)
	src1, relay1 := firstBatch.HBs[0].Src, firstBatch.Relay
	second, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	secondBatch := second.(*Batch)
	if firstBatch != secondBatch {
		t.Fatal("Batch value not reused across Next calls")
	}
	if secondBatch.HBs[0].Seq != 2 {
		t.Fatalf("seq = %d, want 2", secondBatch.HBs[0].Seq)
	}
	// Interned strings: same backing string handed out each time.
	if secondBatch.HBs[0].Src != src1 || secondBatch.Relay != relay1 {
		t.Fatal("interned strings changed across frames")
	}
}

// TestFrameReaderBuffered checks pipelining detection: with two frames in
// one buffer, Buffered is non-zero after the first read and zero after
// the second.
func TestFrameReaderBuffered(t *testing.T) {
	var buf []byte
	var err error
	for i := 0; i < 2; i++ {
		if buf, err = AppendFrame(buf, &Ack{Refs: []Ref{{Src: "a", Seq: uint64(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if fr.Buffered() == 0 {
		t.Fatal("second pipelined frame not visible in Buffered")
	}
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if got := fr.Buffered(); got != 0 {
		t.Fatalf("Buffered = %d after drain, want 0", got)
	}
}

// TestFrameReaderErrors routes each corrupted-header case through the
// streaming decoder.
func TestFrameReaderErrors(t *testing.T) {
	frame, err := AppendFrame(nil, &Ack{Refs: []Ref{{Src: "a", Seq: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(i int, v byte) []byte {
		raw := append([]byte(nil), frame...)
		raw[i] = v
		return raw
	}
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"bad magic", mutate(0, 'X'), ErrBadMagic},
		{"bad version", mutate(2, 99), ErrBadVersion},
		{"unknown type", mutate(3, 200), ErrUnknownType},
		{"bad checksum", mutate(len(frame)-1, frame[len(frame)-1]^0xFF), ErrBadChecksum},
		{"oversize", []byte{'H', 'B', Version, byte(TypeAck), 0xFF, 0xFF, 0xFF, 0xFF}, ErrFrameTooBig},
	}
	for _, tc := range cases {
		if _, err := NewFrameReader(bytes.NewReader(tc.raw)).Next(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Truncations all error and never panic.
	for cut := 0; cut < len(frame); cut++ {
		if _, err := NewFrameReader(bytes.NewReader(frame[:cut])).Next(); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestInternTableBounded pins the intern cache cap: beyond max entries it
// stops inserting but keeps returning correct strings.
func TestInternTableBounded(t *testing.T) {
	tbl := newInternTable(4)
	for i := 0; i < 16; i++ {
		s := fmt.Sprintf("id-%d", i)
		if got := tbl.get([]byte(s)); got != s {
			t.Fatalf("get(%q) = %q", s, got)
		}
	}
	if len(tbl.m) != 4 {
		t.Fatalf("intern table grew to %d entries, cap 4", len(tbl.m))
	}
	// Hits still served for cached entries.
	if got := tbl.get([]byte("id-0")); got != "id-0" {
		t.Fatalf("cached hit = %q", got)
	}
}

// steadyMessages is the fixed message set used by the alloc pins: one of
// each type, with the 32-entry batch the acceptance criteria call out.
func steadyMessages() []Message {
	hbs := make([]Heartbeat, 32)
	refs := make([]Ref, 32)
	for i := range hbs {
		src := fmt.Sprintf("ue-%04d", i)
		hbs[i] = Heartbeat{
			Src: src, Seq: uint64(i), App: "std",
			Origin: time.UnixMilli(int64(1700000000000 + i)).UTC(),
			Expiry: 270 * time.Second, Pad: 54,
		}
		refs[i] = Ref{Src: src, Seq: uint64(i)}
	}
	return []Message{
		&Register{ID: "ue-0001", Role: RoleUE, App: "std", Period: 270 * time.Second, Expiry: 270 * time.Second},
		&hbs[0],
		&Batch{Relay: "relay-1", HBs: hbs},
		&Ack{Refs: refs},
		&Feedback{Refs: refs},
	}
}

// TestEncodeZeroAllocs pins 0 steady-state allocations per encoded frame
// for every message type once the destination buffer has warmed up.
func TestEncodeZeroAllocs(t *testing.T) {
	for _, msg := range steadyMessages() {
		msg := msg
		buf := make([]byte, 0, 4096)
		var err error
		allocs := testing.AllocsPerRun(200, func() {
			if buf, err = AppendFrame(buf[:0], msg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v encode: %.1f allocs/frame, want 0", msg.Type(), allocs)
		}
	}
}

// TestDecodeZeroAllocs pins 0 steady-state allocations per decoded frame
// for every message type: after a warm-up frame the FrameReader's scratch
// buffer, message values, slices and intern table absorb everything.
func TestDecodeZeroAllocs(t *testing.T) {
	for _, msg := range steadyMessages() {
		frame, err := AppendFrame(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		r := bytes.NewReader(nil)
		fr := NewFrameReader(r)
		r.Reset(frame)
		if _, err := fr.Next(); err != nil { // warm-up: sizes scratch, interns strings
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			r.Reset(frame)
			if _, err := fr.Next(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v decode: %.1f allocs/frame, want 0", msg.Type(), allocs)
		}
	}
}

// TestWriteFramePooledZeroAllocs pins the wrapper path: pooled buffer
// reuse keeps the single-frame WriteFrame allocation-free too.
func TestWriteFramePooledZeroAllocs(t *testing.T) {
	msg := steadyMessages()[1]
	var sink bytes.Buffer
	sink.Grow(1 << 16)
	allocs := testing.AllocsPerRun(200, func() {
		sink.Reset()
		if err := WriteFrame(&sink, msg); err != nil {
			t.Fatal(err)
		}
	})
	// One alloc of slack: pool Get/Put may interact with GC mid-run.
	if allocs > 1 {
		t.Errorf("WriteFrame: %.1f allocs/frame, want <= 1", allocs)
	}
}
