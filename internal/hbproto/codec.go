package hbproto

// Zero-allocation codec for the live wire path.
//
// AppendFrame is the append-style encoder: it writes a frame into a
// caller-owned byte slice, so steady-state encoding reuses one buffer and
// several frames can be composed into a single Write (one syscall per
// flush instead of one per message). FrameReader is the streaming decoder
// counterpart: a buffered reader with a reusable payload scratch buffer,
// per-type reusable message values, and a per-connection string intern
// cache, so steady-state decoding of Heartbeat/Batch/Ack/Feedback frames
// performs zero heap allocations per frame.
//
// WriteFrame/ReadFrame in hbproto.go remain as thin compatible wrappers
// and produce byte-identical frames (see TestAppendFrameMatchesWriteFrame).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"sync"
)

// headerSize is magic (2) + version (1) + type (1) + length (4).
const headerSize = 8

// AppendFrame appends one encoded frame for msg to dst and returns the
// extended slice. The frame bytes are identical to what WriteFrame
// produces. On error dst is returned unextended.
func AppendFrame(dst []byte, msg Message) ([]byte, error) {
	if msg == nil {
		return dst, errors.New("hbproto: nil message")
	}
	base := len(dst)
	dst = append(dst, magic[0], magic[1], Version, byte(msg.Type()))
	dst = append(dst, 0, 0, 0, 0) // length back-patched below
	// The buffer escapes through the Message interface call, so a
	// stack-allocated value would cost one heap alloc per frame; pool it.
	b := bufPool.Get().(*buffer)
	b.data, b.pos, b.intern = dst, 0, nil
	msg.encode(b)
	dst = b.data
	b.data = nil
	bufPool.Put(b)
	payload := len(dst) - base - headerSize
	if payload > MaxFrameSize {
		return dst[:base], ErrFrameTooBig
	}
	binary.BigEndian.PutUint32(dst[base+4:base+8], uint32(payload))
	sum := crc32.ChecksumIEEE(dst[base+headerSize:])
	return binary.BigEndian.AppendUint32(dst, sum), nil
}

// framePool recycles encode buffers for the WriteFrame wrapper so the
// single-frame path stays allocation-free in steady state.
var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 512)} }}

type frameBuf struct{ b []byte }

// bufPool recycles the varint codec state shared by encode and decode.
var bufPool = sync.Pool{New: func() any { return new(buffer) }}

// internTable maps decoded string bytes to a canonical heap string. The
// lookup on the hit path (`m[string(b)]`) does not allocate, so a
// connection that sees a stable population of device/app IDs decodes
// strings for free. The table is bounded: once full it stops inserting
// but keeps serving hits, so a hostile peer cannot grow it without bound.
type internTable struct {
	m   map[string]string
	max int
}

// defaultInternCap bounds distinct strings cached per connection. A trunk
// connection multiplexes tens of thousands of UE IDs; 128k entries of
// short IDs is a few MB worst case.
const defaultInternCap = 128 << 10

func newInternTable(max int) *internTable {
	if max <= 0 {
		max = defaultInternCap
	}
	return &internTable{m: make(map[string]string), max: max}
}

func (t *internTable) get(b []byte) string {
	if s, ok := t.m[string(b)]; ok { // no alloc: compiler-optimized map lookup
		return s
	}
	s := string(b)
	if len(t.m) < t.max {
		t.m[s] = s
	}
	return s
}

// FrameReader reads frames from a stream with zero steady-state
// allocations per frame. Messages returned by Next share per-type
// reusable values and slices owned by the reader: they are valid only
// until the next Next/ReadInto call. Strings are interned per reader and
// safe to retain.
type FrameReader struct {
	r       *bufio.Reader
	scratch []byte
	head    [headerSize]byte
	intern  *internTable

	reg   Register
	hb    Heartbeat
	batch Batch
	ack   Ack
	fb    Feedback
}

// NewFrameReader wraps r for streaming decode. If r is already a
// *bufio.Reader it is used directly.
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &FrameReader{r: br, intern: newInternTable(0)}
}

// Buffered reports how many bytes beyond the current frame are already
// buffered — i.e. whether the peer pipelined more frames. Ack aggregators
// use this to defer flushing while more input is pending.
func (fr *FrameReader) Buffered() int { return fr.r.Buffered() }

// Next reads and decodes one frame. The returned Message is reused on the
// following call; callers must copy anything they retain (interned
// strings are stable and safe to keep).
func (fr *FrameReader) Next() (Message, error) {
	body, typ, err := fr.readPayload()
	if err != nil {
		return nil, err
	}
	var msg Message
	switch typ {
	case TypeRegister:
		msg = &fr.reg
	case TypeHeartbeat:
		msg = &fr.hb
	case TypeBatch:
		msg = &fr.batch
	case TypeAck:
		msg = &fr.ack
	case TypeFeedback:
		msg = &fr.fb
	default:
		return nil, errUnknownType(byte(typ))
	}
	if err := decodeBody(msg, body, fr.intern); err != nil {
		return nil, err
	}
	return msg, nil
}

// ReadInto reads the next frame and decodes it into msg. The wire type
// must match msg.Type(); a mismatch is a protocol error that leaves the
// stream positioned after the offending frame.
func (fr *FrameReader) ReadInto(msg Message) error {
	body, typ, err := fr.readPayload()
	if err != nil {
		return err
	}
	if typ != msg.Type() {
		return errUnexpectedType(typ, msg.Type())
	}
	return decodeBody(msg, body, fr.intern)
}

// readPayload reads one frame header + payload + CRC into the scratch
// buffer, validates it, and returns the payload bytes and wire type.
func (fr *FrameReader) readPayload() ([]byte, MsgType, error) {
	if _, err := io.ReadFull(fr.r, fr.head[:]); err != nil {
		return nil, 0, err
	}
	if fr.head[0] != magic[0] || fr.head[1] != magic[1] {
		return nil, 0, ErrBadMagic
	}
	if fr.head[2] != Version {
		return nil, 0, errBadVersion(fr.head[2])
	}
	length := binary.BigEndian.Uint32(fr.head[4:8])
	if length > MaxFrameSize {
		return nil, 0, ErrFrameTooBig
	}
	need := int(length) + 4
	if cap(fr.scratch) < need {
		fr.scratch = make([]byte, need)
	}
	payload := fr.scratch[:need]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, 0, err
	}
	body, sum := payload[:length], binary.BigEndian.Uint32(payload[length:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, ErrBadChecksum
	}
	return body, MsgType(fr.head[3]), nil
}

// decodeBody decodes a validated payload into msg, interning strings when
// a table is supplied, and rejects trailing bytes.
func decodeBody(msg Message, body []byte, intern *internTable) error {
	b := bufPool.Get().(*buffer)
	b.data, b.pos, b.intern = body, 0, intern
	err := msg.decode(b)
	trailing := len(b.data) - b.pos
	b.data, b.intern = nil, nil
	bufPool.Put(b)
	if err != nil {
		return err
	}
	if trailing != 0 {
		return errTrailing(trailing)
	}
	return nil
}
