// Package hbproto defines the wire protocol of the real (non-simulated)
// heartbeat relaying stack: a length-prefixed binary framing with CRC32
// integrity, carrying registrations, heartbeats, relay batches, server
// acknowledgements and relay→UE feedback.
//
// Frame layout:
//
//	magic   [2]byte  "HB"
//	version byte     1
//	type    byte     message type
//	length  uint32   payload length (big endian)
//	payload [length]byte
//	crc32   uint32   IEEE CRC over payload (big endian)
//
// Payload fields are encoded with uvarints and length-prefixed strings.
package hbproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// Protocol constants.
const (
	Version = 1
	// MaxFrameSize bounds payload length; heartbeats are tiny, so
	// anything bigger indicates corruption or abuse.
	MaxFrameSize = 1 << 20
)

var magic = [2]byte{'H', 'B'}

// Protocol errors.
var (
	ErrBadMagic    = errors.New("hbproto: bad magic")
	ErrBadVersion  = errors.New("hbproto: unsupported version")
	ErrBadChecksum = errors.New("hbproto: checksum mismatch")
	ErrFrameTooBig = errors.New("hbproto: frame exceeds size limit")
	ErrUnknownType = errors.New("hbproto: unknown message type")
	ErrTruncated   = errors.New("hbproto: truncated payload")
	// ErrTrailingBytes reports a frame whose payload decoded cleanly but
	// left unconsumed bytes — a framing bug or corruption that survived
	// the checksum.
	ErrTrailingBytes = errors.New("hbproto: trailing bytes in payload")
	// ErrUnexpectedType reports a frame whose wire type does not match
	// what the caller asked FrameReader.ReadInto to decode.
	ErrUnexpectedType = errors.New("hbproto: unexpected message type")
)

func errTrailing(n int) error {
	return fmt.Errorf("%w: %d", ErrTrailingBytes, n)
}

func errBadVersion(v byte) error {
	return fmt.Errorf("%w: %d", ErrBadVersion, v)
}

func errUnknownType(t byte) error {
	return fmt.Errorf("%w: %d", ErrUnknownType, t)
}

func errUnexpectedType(got, want MsgType) error {
	return fmt.Errorf("%w: got %v, want %v", ErrUnexpectedType, got, want)
}

// MsgType identifies a protocol message.
type MsgType byte

// Message types.
const (
	TypeRegister  MsgType = iota + 1 // device → server/relay: identity
	TypeHeartbeat                    // UE → relay or device → server
	TypeBatch                        // relay → server: aggregated heartbeats
	TypeAck                          // server → sender: heartbeats accepted
	TypeFeedback                     // relay → UE: heartbeats delivered
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeRegister:
		return "register"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeBatch:
		return "batch"
	case TypeAck:
		return "ack"
	case TypeFeedback:
		return "feedback"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

// Message is one decoded protocol message.
type Message interface {
	// Type returns the wire type tag.
	Type() MsgType
	encode(b *buffer)
	decode(b *buffer) error
}

// Role mirrors the framework roles on the wire.
type Role byte

// Wire roles.
const (
	RoleUE    Role = 1
	RoleRelay Role = 2
)

// Register announces a device to a server or relay.
type Register struct {
	ID     string
	Role   Role
	App    string
	Period time.Duration
	Expiry time.Duration
}

// Type implements Message.
func (*Register) Type() MsgType { return TypeRegister }

func (m *Register) encode(b *buffer) {
	b.str(m.ID)
	b.u64(uint64(m.Role))
	b.str(m.App)
	b.dur(m.Period)
	b.dur(m.Expiry)
}

func (m *Register) decode(b *buffer) (err error) {
	if m.ID, err = b.rstr(); err != nil {
		return err
	}
	role, err := b.ru64()
	if err != nil {
		return err
	}
	m.Role = Role(role)
	if m.App, err = b.rstr(); err != nil {
		return err
	}
	if m.Period, err = b.rdur(); err != nil {
		return err
	}
	m.Expiry, err = b.rdur()
	return err
}

// Heartbeat is one keep-alive on the wire. Pad declares the app's nominal
// heartbeat size so relays and servers can account wire bytes without
// shipping actual padding.
type Heartbeat struct {
	Src    string
	Seq    uint64
	App    string
	Origin time.Time
	Expiry time.Duration
	Pad    int
}

// Type implements Message.
func (*Heartbeat) Type() MsgType { return TypeHeartbeat }

// Deadline returns the instant by which the heartbeat must reach the
// server.
func (m *Heartbeat) Deadline() time.Time { return m.Origin.Add(m.Expiry) }

func (m *Heartbeat) encode(b *buffer) {
	b.str(m.Src)
	b.u64(m.Seq)
	b.str(m.App)
	b.i64(m.Origin.UnixMilli())
	b.dur(m.Expiry)
	b.u64(uint64(m.Pad))
}

func (m *Heartbeat) decode(b *buffer) (err error) {
	if m.Src, err = b.rstr(); err != nil {
		return err
	}
	if m.Seq, err = b.ru64(); err != nil {
		return err
	}
	if m.App, err = b.rstr(); err != nil {
		return err
	}
	ms, err := b.ri64()
	if err != nil {
		return err
	}
	m.Origin = time.UnixMilli(ms).UTC()
	if m.Expiry, err = b.rdur(); err != nil {
		return err
	}
	pad, err := b.ru64()
	if err != nil {
		return err
	}
	if pad > MaxFrameSize {
		return fmt.Errorf("%w: pad %d", ErrFrameTooBig, pad)
	}
	m.Pad = int(pad)
	return nil
}

// Batch carries aggregated heartbeats from a relay to the server.
type Batch struct {
	Relay string
	HBs   []Heartbeat
}

// Type implements Message.
func (*Batch) Type() MsgType { return TypeBatch }

func (m *Batch) encode(b *buffer) {
	b.str(m.Relay)
	b.u64(uint64(len(m.HBs)))
	for i := range m.HBs {
		m.HBs[i].encode(b)
	}
}

func (m *Batch) decode(b *buffer) (err error) {
	if m.Relay, err = b.rstr(); err != nil {
		return err
	}
	n, err := b.ru64()
	if err != nil {
		return err
	}
	if n > MaxFrameSize/8 {
		return fmt.Errorf("%w: batch of %d", ErrFrameTooBig, n)
	}
	// Reuse slice capacity on decode-into (FrameReader): a fresh Batch
	// has a nil slice and allocates exactly as before.
	if m.HBs != nil && uint64(cap(m.HBs)) >= n {
		m.HBs = m.HBs[:n]
	} else {
		m.HBs = make([]Heartbeat, n)
	}
	for i := range m.HBs {
		if err := m.HBs[i].decode(b); err != nil {
			return err
		}
	}
	return nil
}

// Ref identifies one heartbeat in an acknowledgement or feedback message.
type Ref struct {
	Src string
	Seq uint64
}

// Ack confirms heartbeats accepted by the server.
type Ack struct {
	Refs []Ref
}

// Type implements Message.
func (*Ack) Type() MsgType { return TypeAck }

func (m *Ack) encode(b *buffer)       { encodeRefs(b, m.Refs) }
func (m *Ack) decode(b *buffer) error { return decodeRefs(b, &m.Refs) }

// Feedback notifies a UE that its forwarded heartbeats were delivered.
type Feedback struct {
	Refs []Ref
}

// Type implements Message.
func (*Feedback) Type() MsgType { return TypeFeedback }

func (m *Feedback) encode(b *buffer)       { encodeRefs(b, m.Refs) }
func (m *Feedback) decode(b *buffer) error { return decodeRefs(b, &m.Refs) }

func encodeRefs(b *buffer, refs []Ref) {
	b.u64(uint64(len(refs)))
	for _, r := range refs {
		b.str(r.Src)
		b.u64(r.Seq)
	}
}

func decodeRefs(b *buffer, out *[]Ref) error {
	n, err := b.ru64()
	if err != nil {
		return err
	}
	if n > MaxFrameSize/4 {
		return fmt.Errorf("%w: %d refs", ErrFrameTooBig, n)
	}
	refs := *out
	if refs != nil && uint64(cap(refs)) >= n {
		refs = refs[:n]
	} else {
		refs = make([]Ref, n)
	}
	for i := range refs {
		if refs[i].Src, err = b.rstr(); err != nil {
			return err
		}
		if refs[i].Seq, err = b.ru64(); err != nil {
			return err
		}
	}
	*out = refs
	return nil
}

// WriteFrame encodes and writes one message as one Write. It is a thin
// wrapper over AppendFrame with a pooled buffer; multi-frame callers
// should compose AppendFrame output themselves to coalesce syscalls.
func WriteFrame(w io.Writer, msg Message) error {
	fb := framePool.Get().(*frameBuf)
	out, err := AppendFrame(fb.b[:0], msg)
	if err == nil {
		_, err = w.Write(out)
	}
	fb.b = out[:0]
	framePool.Put(fb)
	return err
}

// ReadFrame reads and decodes one message, allocating a fresh Message per
// call. Streaming consumers should use FrameReader, which reuses payload
// scratch and message values across frames.
func ReadFrame(r io.Reader) (Message, error) {
	var head [headerSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	if head[0] != magic[0] || head[1] != magic[1] {
		return nil, ErrBadMagic
	}
	if head[2] != Version {
		return nil, errBadVersion(head[2])
	}
	length := binary.BigEndian.Uint32(head[4:8])
	if length > MaxFrameSize {
		return nil, ErrFrameTooBig
	}
	payload := make([]byte, length+4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	body, sum := payload[:length], binary.BigEndian.Uint32(payload[length:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrBadChecksum
	}
	msg, err := newMessage(MsgType(head[3]))
	if err != nil {
		return nil, err
	}
	if err := decodeBody(msg, body, nil); err != nil {
		return nil, err
	}
	return msg, nil
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeRegister:
		return &Register{}, nil
	case TypeHeartbeat:
		return &Heartbeat{}, nil
	case TypeBatch:
		return &Batch{}, nil
	case TypeAck:
		return &Ack{}, nil
	case TypeFeedback:
		return &Feedback{}, nil
	default:
		return nil, errUnknownType(byte(t))
	}
}

// buffer is a simple append/consume byte buffer with varint helpers.
// When intern is set, decoded strings are canonicalized through it so
// steady-state decoding allocates nothing per frame.
type buffer struct {
	data   []byte
	pos    int
	intern *internTable
}

func (b *buffer) u64(v uint64) { b.data = binary.AppendUvarint(b.data, v) }

func (b *buffer) i64(v int64) { b.data = binary.AppendVarint(b.data, v) }

func (b *buffer) dur(d time.Duration) { b.i64(int64(d)) }

func (b *buffer) str(s string) {
	b.u64(uint64(len(s)))
	b.data = append(b.data, s...)
}

func (b *buffer) ru64() (uint64, error) {
	v, n := binary.Uvarint(b.data[b.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	b.pos += n
	return v, nil
}

func (b *buffer) ri64() (int64, error) {
	v, n := binary.Varint(b.data[b.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	b.pos += n
	return v, nil
}

func (b *buffer) rdur() (time.Duration, error) {
	v, err := b.ri64()
	return time.Duration(v), err
}

func (b *buffer) rstr() (string, error) {
	n, err := b.ru64()
	if err != nil {
		return "", err
	}
	if n > math.MaxInt32 || b.pos+int(n) > len(b.data) {
		return "", ErrTruncated
	}
	raw := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	if b.intern != nil {
		return b.intern.get(raw), nil
	}
	return string(raw), nil
}
