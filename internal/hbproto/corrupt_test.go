package hbproto

// Deterministic counterpart to FuzzReadFrame: walks the full corruption
// space faultnet injects during chaos runs — every truncation point and
// every single-bit flip of every valid frame — in ordinary `go test`, so
// decode robustness is checked on every CI run, not only under -fuzz.

import (
	"bytes"
	"testing"
	"time"
)

// corpusFrames returns one valid encoded frame per message type.
func corpusFrames(t testing.TB) [][]byte {
	t.Helper()
	msgs := []Message{
		&Register{ID: "relay-9", Role: RoleRelay, App: "WeChat", Period: 270 * time.Second, Expiry: 270 * time.Second},
		&Heartbeat{Src: "ue-1", Seq: 7, App: "QQ", Origin: time.UnixMilli(1500000000000).UTC(), Expiry: time.Minute, Pad: 378},
		&Batch{Relay: "r", HBs: []Heartbeat{
			{Src: "a", Seq: 1, App: "x", Origin: time.UnixMilli(1).UTC(), Expiry: time.Second, Pad: 54},
			{Src: "b", Seq: 2, App: "y", Origin: time.UnixMilli(2).UTC(), Expiry: time.Second, Pad: 54},
		}},
		&Ack{Refs: []Ref{{Src: "a", Seq: 1}, {Src: "b", Seq: 2}}},
		&Feedback{Refs: []Ref{{Src: "c", Seq: 3}}},
	}
	frames := make([][]byte, 0, len(msgs))
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("encode %v: %v", m.Type(), err)
		}
		frames = append(frames, buf.Bytes())
	}
	return frames
}

// decodeNoPanic runs ReadFrame and converts any panic into a test failure.
func decodeNoPanic(t *testing.T, data []byte) (Message, error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("ReadFrame panicked on %d-byte input %x: %v", len(data), data, r)
		}
	}()
	return ReadFrame(bytes.NewReader(data))
}

// TestReadFrameEveryTruncation feeds every prefix of every valid frame to
// the decoder: all must return an error (no prefix of a checksummed frame
// is itself valid) and none may panic.
func TestReadFrameEveryTruncation(t *testing.T) {
	for _, frame := range corpusFrames(t) {
		for cut := 0; cut < len(frame); cut++ {
			if _, err := decodeNoPanic(t, frame[:cut]); err == nil {
				t.Fatalf("truncation at %d/%d accepted", cut, len(frame))
			}
		}
	}
}

// TestReadFrameEveryBitFlip flips each bit of each valid frame in turn.
// The decoder must never panic; any frame it does accept must round-trip
// cleanly (a flip inside the pad/padding space can survive the checksum
// only if the checksum bytes themselves were flipped to match — with
// CRC32 over the payload a single flip is always caught, so acceptance
// here means the flip hit a byte outside the checksummed region).
func TestReadFrameEveryBitFlip(t *testing.T) {
	for fi, frame := range corpusFrames(t) {
		for i := range frame {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), frame...)
				mut[i] ^= 1 << uint(bit)
				msg, err := decodeNoPanic(t, mut)
				if err != nil {
					continue // rejected: fine
				}
				var buf bytes.Buffer
				if err := WriteFrame(&buf, msg); err != nil {
					t.Fatalf("frame %d bit %d.%d: accepted but re-encode failed: %v", fi, i, bit, err)
				}
				if _, err := ReadFrame(&buf); err != nil {
					t.Fatalf("frame %d bit %d.%d: accepted but re-decode failed: %v", fi, i, bit, err)
				}
			}
		}
	}
}

// TestReadFrameSingleBitFlipRejectedOutsideType pins the CRC guarantee the
// chaos suite leans on: faultnet's corrupt injector flips exactly one bit
// per write, and a flip anywhere in the payload or checksum must never
// yield a silently-wrong accepted message. The one known hole is the type
// byte: it sits in the header outside the CRC-covered payload, so a flip
// there can alias one valid type to another with the same payload shape
// (Ack ↔ Feedback, which both encode a ref list). Such a frame may decode,
// but only as a different valid type — never as a mangled payload.
func TestReadFrameSingleBitFlipRejectedOutsideType(t *testing.T) {
	const typeByte = 3 // "HB" magic (2) + version (1), then the type
	for fi, frame := range corpusFrames(t) {
		orig, err := ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("frame %d: pristine decode failed: %v", fi, err)
		}
		for i := range frame {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), frame...)
				mut[i] ^= 1 << uint(bit)
				msg, err := decodeNoPanic(t, mut)
				if err != nil {
					continue
				}
				if i != typeByte {
					t.Fatalf("frame %d: single-bit flip at byte %d bit %d accepted", fi, i, bit)
				}
				if msg.Type() == orig.Type() {
					t.Fatalf("frame %d: type-byte flip accepted without changing the type", fi)
				}
			}
		}
	}
}
