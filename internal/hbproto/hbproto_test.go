package hbproto

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return got
}

func TestRegisterRoundTrip(t *testing.T) {
	msg := &Register{
		ID: "ue-01", Role: RoleUE, App: "WeChat",
		Period: 270 * time.Second, Expiry: 270 * time.Second,
	}
	got := roundTrip(t, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	msg := &Heartbeat{
		Src: "ue-01", Seq: 42, App: "WhatsApp",
		Origin: time.UnixMilli(1700000000123).UTC(),
		Expiry: 240 * time.Second, Pad: 66,
	}
	got := roundTrip(t, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
	hb, ok := got.(*Heartbeat)
	if !ok {
		t.Fatalf("type = %T", got)
	}
	if want := msg.Origin.Add(msg.Expiry); !hb.Deadline().Equal(want) {
		t.Fatalf("Deadline = %v, want %v", hb.Deadline(), want)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	msg := &Batch{
		Relay: "relay-1",
		HBs: []Heartbeat{
			{Src: "a", Seq: 1, App: "QQ", Origin: time.UnixMilli(1000).UTC(), Expiry: time.Minute, Pad: 378},
			{Src: "b", Seq: 9, App: "WeChat", Origin: time.UnixMilli(2000).UTC(), Expiry: time.Second, Pad: 74},
		},
	}
	got := roundTrip(t, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func TestEmptyBatchRoundTrip(t *testing.T) {
	msg := &Batch{Relay: "r"}
	got, ok := roundTrip(t, msg).(*Batch)
	if !ok || got.Relay != "r" || len(got.HBs) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestAckAndFeedbackRoundTrip(t *testing.T) {
	ack := &Ack{Refs: []Ref{{Src: "a", Seq: 1}, {Src: "b", Seq: 2}}}
	if got := roundTrip(t, ack); !reflect.DeepEqual(got, ack) {
		t.Fatalf("ack: got %+v", got)
	}
	fb := &Feedback{Refs: []Ref{{Src: "c", Seq: 3}}}
	if got := roundTrip(t, fb); !reflect.DeepEqual(got, fb) {
		t.Fatalf("feedback: got %+v", got)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Register{ID: "x", Role: RoleRelay, App: "std", Period: time.Second, Expiry: time.Second},
		&Heartbeat{Src: "x", Seq: 1, App: "std", Origin: time.UnixMilli(5).UTC(), Expiry: time.Second, Pad: 54},
		&Ack{Refs: []Ref{{Src: "x", Seq: 1}}},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after drain: err = %v, want EOF", err)
	}
}

func TestCorruptedChecksumDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Heartbeat{Src: "x", Seq: 1, App: "a", Origin: time.UnixMilli(1).UTC(), Expiry: time.Second, Pad: 54}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()
	raw[10] ^= 0xFF // flip a payload byte
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Ack{}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	raw[0] = 'X'
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	raw = append([]byte(nil), buf.Bytes()...)
	raw[2] = 99
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Ack{}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()
	raw[3] = 200
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Register{ID: "abc", Role: RoleUE, App: "x", Period: time.Second, Expiry: time.Second}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	head := []byte{'H', 'B', Version, byte(TypeAck)}
	head = append(head, 0xFF, 0xFF, 0xFF, 0xFF) // absurd length
	if _, err := ReadFrame(bytes.NewReader(head)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestWriteNilMessage(t *testing.T) {
	if err := WriteFrame(io.Discard, nil); err == nil {
		t.Fatal("nil message accepted")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	// Hand-build a frame whose payload has valid content plus junk.
	var body buffer
	(&Ack{}).encode(&body)
	body.data = append(body.data, 0xAA)
	var frame bytes.Buffer
	frame.Write([]byte{'H', 'B', Version, byte(TypeAck)})
	frame.Write([]byte{0, 0, 0, byte(len(body.data))})
	frame.Write(body.data)
	sum := crc32.ChecksumIEEE(body.data)
	frame.Write([]byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
	if _, err := ReadFrame(&frame); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestQuickHeartbeatRoundTrip property-checks encode/decode over random
// heartbeats.
func TestQuickHeartbeatRoundTrip(t *testing.T) {
	prop := func(src, app string, seq uint64, originMs int64, expiryMs uint32, pad uint16) bool {
		msg := &Heartbeat{
			Src: src, Seq: seq, App: app,
			Origin: time.UnixMilli(originMs % (1 << 45)).UTC(),
			Expiry: time.Duration(expiryMs) * time.Millisecond,
			Pad:    int(pad),
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, msg)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(30))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRefsRoundTrip property-checks ack/feedback refs.
func TestQuickRefsRoundTrip(t *testing.T) {
	prop := func(srcs []string, seqs []uint64) bool {
		n := len(srcs)
		if len(seqs) < n {
			n = len(seqs)
		}
		refs := make([]Ref, n)
		for i := 0; i < n; i++ {
			refs[i] = Ref{Src: srcs[i], Seq: seqs[i]}
		}
		msg := &Feedback{Refs: refs}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		fb, ok := got.(*Feedback)
		if !ok || len(fb.Refs) != n {
			return false
		}
		for i := range refs {
			if fb.Refs[i] != refs[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomBytesNeverPanic feeds random garbage to ReadFrame.
func TestQuickRandomBytesNeverPanic(t *testing.T) {
	prop := func(junk []byte) bool {
		_, err := ReadFrame(bytes.NewReader(junk))
		return err != nil // garbage must always error, never panic
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	names := map[MsgType]string{
		TypeRegister: "register", TypeHeartbeat: "heartbeat",
		TypeBatch: "batch", TypeAck: "ack", TypeFeedback: "feedback",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if got := MsgType(77).String(); got != "type(77)" {
		t.Fatalf("unknown type string = %q", got)
	}
}
