package hbproto

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// FuzzReadFrame hardens the decoder against arbitrary input: it must never
// panic, and every frame it does accept must re-encode to an equivalent
// frame (decode/encode/decode fixed point).
func FuzzReadFrame(f *testing.F) {
	// Seed with every valid message type.
	seedMsgs := []Message{
		&Register{ID: "ue-1", Role: RoleUE, App: "WeChat", Period: 270 * time.Second, Expiry: 270 * time.Second},
		&Heartbeat{Src: "ue-1", Seq: 7, App: "QQ", Origin: time.UnixMilli(1500000000000).UTC(), Expiry: time.Minute, Pad: 378},
		&Batch{Relay: "r", HBs: []Heartbeat{{Src: "a", Seq: 1, App: "x", Origin: time.UnixMilli(1).UTC(), Expiry: time.Second, Pad: 54}}},
		&Ack{Refs: []Ref{{Src: "a", Seq: 1}}},
		&Feedback{Refs: []Ref{{Src: "b", Seq: 2}}},
	}
	for _, m := range seedMsgs {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{'H', 'B', Version, 99, 0, 0, 0, 0})

	// Seeded corpus of damaged real frames: every truncation point and a
	// spread of single-bit flips over each valid encoding. These are the
	// exact shapes faultnet's corrupt/reset injectors produce on the wire,
	// so the fuzzer starts from the corruption space chaos runs explore.
	rng := rand.New(rand.NewSource(99))
	for _, m := range seedMsgs {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		for cut := 0; cut < len(frame); cut += 3 {
			f.Add(append([]byte(nil), frame[:cut]...))
		}
		for i := 0; i < 8; i++ {
			flipped := append([]byte(nil), frame...)
			flipped[rng.Intn(len(flipped))] ^= 1 << uint(rng.Intn(8))
			f.Add(flipped)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		// Accepted frames must round-trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		again, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round-trip: %v vs %v", again.Type(), msg.Type())
		}
	})
}

// FuzzFrameReaderStream differentially fuzzes the zero-alloc streaming
// decoder against ReadFrame over coalesced multi-frame buffers — the
// exact byte layout AppendFrame-composed flushes put on the wire. Both
// decoders must accept/reject the same prefix of every input and agree
// on each decoded message.
func FuzzFrameReaderStream(f *testing.F) {
	mkFrame := func(m Message) []byte {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}
	hb := mkFrame(&Heartbeat{Src: "ue-1", Seq: 7, App: "QQ", Origin: time.UnixMilli(1500000000000).UTC(), Expiry: time.Minute, Pad: 378})
	batch := mkFrame(&Batch{Relay: "r", HBs: []Heartbeat{{Src: "a", Seq: 1, App: "x", Origin: time.UnixMilli(1).UTC(), Expiry: time.Second, Pad: 54}}})
	ack := mkFrame(&Ack{Refs: []Ref{{Src: "a", Seq: 1}}})
	fb := mkFrame(&Feedback{Refs: []Ref{{Src: "b", Seq: 2}}})
	reg := mkFrame(&Register{ID: "ue-1", Role: RoleUE, App: "WeChat", Period: 270 * time.Second, Expiry: 270 * time.Second})

	// Seed coalesced buffers: homogeneous runs, mixed pipelines, a stream
	// cut mid-frame, and one with a corrupted middle frame.
	concat := func(frames ...[]byte) []byte {
		var out []byte
		for _, fr := range frames {
			out = append(out, fr...)
		}
		return out
	}
	f.Add(concat(hb, hb, hb, hb))
	f.Add(concat(batch, ack, fb, reg, hb))
	f.Add(concat(ack, ack, ack[:len(ack)-3]))
	damaged := concat(hb, batch, hb)
	damaged[len(hb)+9] ^= 0x40
	f.Add(damaged)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		ref := bytes.NewReader(data)
		for i := 0; ; i++ {
			got, errNew := fr.Next()
			want, errOld := ReadFrame(ref)
			if (errNew == nil) != (errOld == nil) {
				t.Fatalf("frame %d: FrameReader err %v, ReadFrame err %v", i, errNew, errOld)
			}
			if errNew != nil {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("frame %d: FrameReader %+v != ReadFrame %+v", i, got, want)
			}
		}
	})
}
