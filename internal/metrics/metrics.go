// Package metrics provides small table and series types used to render
// experiment results in the same shape as the paper's tables and figures.
package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row. Short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated rows (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of a figure: y-values over shared x-values.
type Series struct {
	Name string
	Y    []float64
}

// Figure holds the data behind one paper figure: shared x-axis plus one or
// more series.
type Figure struct {
	Title  string
	XLabel string
	X      []float64
	Series []Series
}

// NewFigure builds a figure with the shared x-axis.
func NewFigure(title, xlabel string, x []float64) *Figure {
	return &Figure{Title: title, XLabel: xlabel, X: x}
}

// Add appends one series; y must be as long as the x-axis.
func (f *Figure) Add(name string, y []float64) error {
	if len(y) != len(f.X) {
		return fmt.Errorf("metrics: series %q has %d points, x-axis has %d", name, len(y), len(f.X))
	}
	f.Series = append(f.Series, Series{Name: name, Y: y})
	return nil
}

// Table renders the figure as a table with the x-axis as the first column.
func (f *Figure) Table() *Table {
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	t := NewTable(f.Title, header...)
	for i, x := range f.X {
		row := make([]string, 0, len(header))
		row = append(row, F(x))
		for _, s := range f.Series {
			row = append(row, F(s.Y[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// String renders the figure via its table form.
func (f *Figure) String() string { return f.Table().String() }

// F formats a float compactly: integers without decimals, otherwise two
// decimal places.
func F(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// Pct formats a ratio as a percentage with one decimal place.
func Pct(v float64) string {
	return strconv.FormatFloat(v*100, 'f', 1, 64) + "%"
}
