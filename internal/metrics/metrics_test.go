package metrics

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	out := tb.String()
	if !strings.HasPrefix(out, "T\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header wrong: %q", lines[1])
	}
	// Columns align: every data line has the same prefix width before col 2.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22")
	if idx1 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if got := len(tb.Rows[0]); got != 3 {
		t.Fatalf("row padded to %d cells, want 3", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `with "quotes"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"with \"\"quotes\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestFigureAddValidatesLength(t *testing.T) {
	f := NewFigure("fig", "x", []float64{1, 2, 3})
	if err := f.Add("s", []float64{1}); err == nil {
		t.Fatal("short series accepted")
	}
	if err := f.Add("s", []float64{1, 2, 3}); err != nil {
		t.Fatalf("Add: %v", err)
	}
}

func TestFigureTable(t *testing.T) {
	f := NewFigure("fig", "k", []float64{1, 2})
	if err := f.Add("ue", []float64{10, 20}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := f.Add("relay", []float64{30.5, 40}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	out := f.String()
	for _, want := range []string{"fig", "k", "ue", "relay", "30.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestF(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{3.5, "3.50"},
		{-2, "-2"},
		{0.123, "0.12"},
	}
	for _, tt := range tests {
		if got := F(tt.in); got != tt.want {
			t.Errorf("F(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.365); got != "36.5%" {
		t.Fatalf("Pct = %q, want 36.5%%", got)
	}
}
