package energy

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("DefaultModel invalid: %v", err)
	}
}

func TestValidateCatchesBadConstants(t *testing.T) {
	m := DefaultModel()
	m.CellularTxBase = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero CellularTxBase accepted")
	}
	m = DefaultModel()
	m.D2DDistanceSlope = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative distance slope accepted")
	}
	m = DefaultModel()
	m.TraceSampleEvery = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero sampling period accepted")
	}
}

func TestTable3Constants(t *testing.T) {
	// The default model must carry the paper's Table III values verbatim.
	m := DefaultModel()
	tests := []struct {
		name string
		got  MicroAmpHours
		want float64
	}{
		{"UE discovery", m.UEDiscovery, 132.24},
		{"UE connection", m.UEConnection, 63.74},
		{"UE forwarding", m.UED2DSend, 73.09},
		{"relay discovery", m.RelayDiscovery, 122.50},
		{"relay connection", m.RelayConnection, 60.29},
	}
	for _, tt := range tests {
		if math.Abs(float64(tt.got)-tt.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

func TestFirstPeriodUESavingIs55Percent(t *testing.T) {
	// Section V-A: the UE's first-period D2D total (discovery + connection
	// + one forward) is a ~55 % saving versus one cellular transmission.
	m := DefaultModel()
	d2dTotal := m.UEDiscovery + m.UEConnection + m.D2DSendCharge(ReferenceMessageSize, 1)
	cell := m.CellularTxCharge(1, ReferenceMessageSize)
	saving := 1 - float64(d2dTotal/cell)
	if saving < 0.50 || saving > 0.60 {
		t.Fatalf("first-period UE saving = %.1f%%, want ≈55%%", saving*100)
	}
}

func TestD2DSendChargeDistanceMonotonic(t *testing.T) {
	m := DefaultModel()
	// Flat at or below the 1 m reference distance of the measurements.
	if got, want := m.D2DSendCharge(ReferenceMessageSize, 1), m.UED2DSend; got != want {
		t.Fatalf("charge at 1 m = %v, want Table III value %v", got, want)
	}
	prev := m.D2DSendCharge(ReferenceMessageSize, 1)
	for _, d := range []float64{5, 10, 15} {
		c := m.D2DSendCharge(ReferenceMessageSize, d)
		if c <= prev {
			t.Fatalf("charge not increasing with distance: %v at %vm <= %v", c, d, prev)
		}
		prev = c
	}
}

func TestD2DSendChargeNegativeDistanceClamped(t *testing.T) {
	m := DefaultModel()
	if got, want := m.D2DSendCharge(ReferenceMessageSize, -5), m.D2DSendCharge(ReferenceMessageSize, 0); got != want {
		t.Fatalf("negative distance charge %v, want clamped %v", got, want)
	}
}

func TestD2DRecvChargeFirstVsSteady(t *testing.T) {
	m := DefaultModel()
	first := m.D2DRecvCharge(ReferenceMessageSize, 1, true)
	steady := m.D2DRecvCharge(ReferenceMessageSize, 1, false)
	if first <= steady {
		t.Fatalf("first-round recv %v should exceed steady %v", first, steady)
	}
	if math.Abs(float64(first)-123.22*m.distanceFactor(1)) > 1e-9 {
		t.Fatalf("first-round recv = %v, want Table IV 123.22×distance factor", first)
	}
}

func TestCellularTxChargeAggregationAmortizes(t *testing.T) {
	m := DefaultModel()
	one := m.CellularTxCharge(1, ReferenceMessageSize)
	two := m.CellularTxCharge(2, 2*ReferenceMessageSize)
	separate := 2 * one
	if two >= separate {
		t.Fatalf("aggregated 2-msg charge %v not cheaper than separate %v", two, separate)
	}
	// The marginal cost of aggregation must be small relative to a full
	// transmission ("slightly higher than original", Section V-A).
	marginal := two - one
	if marginal <= 0 || float64(marginal/one) > 0.10 {
		t.Fatalf("marginal aggregation charge %v out of expected range", marginal)
	}
}

func TestCellularTxChargeZeroMessages(t *testing.T) {
	m := DefaultModel()
	if got := m.CellularTxCharge(0, 0); got != 0 {
		t.Fatalf("zero messages charge = %v, want 0", got)
	}
}

func TestCellularTxChargeSizeEffectMinor(t *testing.T) {
	// Fig. 13: energy stays almost constant across 1×..5× message sizes.
	m := DefaultModel()
	small := m.CellularTxCharge(1, ReferenceMessageSize)
	big := m.CellularTxCharge(1, 5*ReferenceMessageSize)
	growth := float64(big-small) / float64(small)
	if growth < 0 || growth > 0.05 {
		t.Fatalf("5× size grew cellular charge by %.1f%%, want <5%%", growth*100)
	}
}

func TestLedgerAccumulates(t *testing.T) {
	l := NewLedger()
	l.Add(PhaseDiscovery, 10)
	l.Add(PhaseDiscovery, 5)
	l.Add(PhaseCellular, 100)
	if got := l.Phase(PhaseDiscovery); got != 15 {
		t.Fatalf("discovery = %v, want 15", got)
	}
	if got := l.Total(); got != 115 {
		t.Fatalf("total = %v, want 115", got)
	}
	if got := l.Events(PhaseDiscovery); got != 2 {
		t.Fatalf("events = %d, want 2", got)
	}
}

func TestLedgerNegativeClamped(t *testing.T) {
	l := NewLedger()
	l.Add(PhaseCellular, -50)
	if got := l.Total(); got != 0 {
		t.Fatalf("total = %v, want 0 after negative add", got)
	}
}

func TestLedgerSnapshotIsCopy(t *testing.T) {
	l := NewLedger()
	l.Add(PhaseD2DSend, 7)
	snap := l.Snapshot()
	snap[PhaseD2DSend] = 999
	if got := l.Phase(PhaseD2DSend); got != 7 {
		t.Fatalf("mutating snapshot changed ledger: %v", got)
	}
}

func TestLedgerAddFrom(t *testing.T) {
	a, b := NewLedger(), NewLedger()
	a.Add(PhaseCellular, 10)
	b.Add(PhaseCellular, 5)
	b.Add(PhaseD2DRecv, 3)
	a.AddFrom(b)
	if got := a.Phase(PhaseCellular); got != 15 {
		t.Fatalf("cellular = %v, want 15", got)
	}
	if got := a.Phase(PhaseD2DRecv); got != 3 {
		t.Fatalf("d2d-recv = %v, want 3", got)
	}
	a.AddFrom(nil) // must not panic
}

func TestLedgerConcurrentUse(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Add(PhaseD2DSend, 1)
			}
		}()
	}
	wg.Wait()
	if got := l.Phase(PhaseD2DSend); got != 8000 {
		t.Fatalf("concurrent total = %v, want 8000", got)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseDiscovery.String() != "discovery" {
		t.Fatalf("PhaseDiscovery.String() = %q", PhaseDiscovery.String())
	}
	if got := Phase(99).String(); got != "phase(99)" {
		t.Fatalf("unknown phase string = %q", got)
	}
}

// TestQuickCellularAggregationNeverWorse property-checks that aggregating n
// messages into one transmission never costs more than n separate
// transmissions — the core premise of the relaying framework.
func TestQuickCellularAggregationNeverWorse(t *testing.T) {
	m := DefaultModel()
	prop := func(n uint8, extraBytes uint16) bool {
		msgs := int(n%20) + 1
		payload := msgs*ReferenceMessageSize + int(extraBytes)
		agg := m.CellularTxCharge(msgs, payload)
		sep := MicroAmpHours(0)
		perMsg := payload / msgs
		for i := 0; i < msgs; i++ {
			sep += m.CellularTxCharge(1, perMsg)
		}
		return agg <= sep+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLedgerTotalIsSumOfPhases property-checks the ledger accounting
// identity under arbitrary add sequences.
func TestQuickLedgerTotalIsSumOfPhases(t *testing.T) {
	prop := func(adds []uint16) bool {
		l := NewLedger()
		var want float64
		phases := Phases()
		for i, a := range adds {
			p := phases[i%len(phases)]
			l.Add(p, MicroAmpHours(a))
			want += float64(a)
		}
		return math.Abs(float64(l.Total())-want) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBattery(t *testing.T) {
	b := GalaxyS4Battery()
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if b.CapacityMAh != 2600 {
		t.Fatalf("capacity = %v, want 2600", b.CapacityMAh)
	}
	// 260 mAh = 260000 µAh is 10% of a 2600 mAh battery.
	if got := b.DrainFraction(260000); math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("drain = %v, want 0.10", got)
	}
	var zero Battery
	if err := zero.Validate(); err == nil {
		t.Fatal("zero battery accepted")
	}
	if got := zero.DrainFraction(100); got != 0 {
		t.Fatalf("zero-capacity drain = %v, want 0", got)
	}
}
