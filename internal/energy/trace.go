package energy

import (
	"fmt"
	"strings"
	"time"
)

// Sample is one power-monitor reading: instant current at a virtual time
// offset from the start of the capture window.
type Sample struct {
	At time.Duration
	MA float64 // instant current in mA
}

// Trace is a sequence of current samples at a fixed sampling period,
// mirroring a Monsoon Power Monitor capture (0.1 s granularity, 3.7 V).
type Trace struct {
	Samples []Sample
	// BaselineMA is the idle platform draw underlying the capture.
	BaselineMA float64
}

// transferStart is where the transfer event begins inside the capture
// window, leaving some idle lead-in as in the paper's figures.
const transferStart = 500 * time.Millisecond

// D2DTransferTrace synthesizes the current trace of a single D2D (Wi-Fi
// Direct) transfer: the current spurts at the moment of transmission, then
// descends rapidly back to idle (Fig. 6).
func (m Model) D2DTransferTrace() Trace {
	return m.synthesize(m.D2DTraceWindow, func(t time.Duration) float64 {
		peakEnd := transferStart + m.D2DPeakHold
		decayEnd := peakEnd + m.D2DDecay
		switch {
		case t < transferStart:
			return m.IdleCurrentMA
		case t < peakEnd:
			return m.D2DPeakMA
		case t < decayEnd:
			frac := float64(t-peakEnd) / float64(m.D2DDecay)
			return m.D2DPeakMA - frac*(m.D2DPeakMA-m.IdleCurrentMA)
		default:
			return m.IdleCurrentMA
		}
	})
}

// CellularTransferTrace synthesizes the current trace of a single cellular
// transfer: the current spurts and then lingers in a high-power RRC tail for
// several seconds before release (Fig. 7).
func (m Model) CellularTransferTrace() Trace {
	return m.synthesize(m.CellularTraceWindow, func(t time.Duration) float64 {
		activeEnd := transferStart + m.CellActiveHold
		tailEnd := activeEnd + m.CellTailHold
		decayEnd := tailEnd + m.CellDecay
		switch {
		case t < transferStart:
			return m.IdleCurrentMA
		case t < activeEnd:
			return m.CellActiveMA
		case t < tailEnd:
			return m.CellTailMA
		case t < decayEnd:
			frac := float64(t-tailEnd) / float64(m.CellDecay)
			return m.CellTailMA - frac*(m.CellTailMA-m.IdleCurrentMA)
		default:
			return m.IdleCurrentMA
		}
	})
}

// synthesize samples the current function at the model's sampling period.
func (m Model) synthesize(window time.Duration, currentAt func(time.Duration) float64) Trace {
	n := int(window/m.TraceSampleEvery) + 1
	samples := make([]Sample, 0, n)
	for t := time.Duration(0); t <= window; t += m.TraceSampleEvery {
		samples = append(samples, Sample{At: t, MA: currentAt(t)})
	}
	return Trace{Samples: samples, BaselineMA: m.IdleCurrentMA}
}

// Duration returns the capture window length.
func (tr Trace) Duration() time.Duration {
	if len(tr.Samples) == 0 {
		return 0
	}
	return tr.Samples[len(tr.Samples)-1].At
}

// PeakMA returns the maximum instant current in the trace.
func (tr Trace) PeakMA() float64 {
	peak := 0.0
	for _, s := range tr.Samples {
		if s.MA > peak {
			peak = s.MA
		}
	}
	return peak
}

// Integrate returns the total charge of the trace via trapezoidal
// integration: µAh = ∫ i(t) dt with i in mA and t in hours, ×1000.
func (tr Trace) Integrate() MicroAmpHours {
	return tr.integrateAbove(0)
}

// IntegrateAboveBaseline returns the charge attributable to the transfer
// itself, i.e. the integral of current above the idle baseline. This is the
// quantity comparable to the per-phase constants of the Model.
func (tr Trace) IntegrateAboveBaseline() MicroAmpHours {
	return tr.integrateAbove(tr.BaselineMA)
}

func (tr Trace) integrateAbove(baseline float64) MicroAmpHours {
	var total float64
	for i := 1; i < len(tr.Samples); i++ {
		a, b := tr.Samples[i-1], tr.Samples[i]
		ia, ib := a.MA-baseline, b.MA-baseline
		if ia < 0 {
			ia = 0
		}
		if ib < 0 {
			ib = 0
		}
		dtHours := (b.At - a.At).Hours()
		total += (ia + ib) / 2 * dtHours
	}
	return MicroAmpHours(total * 1000)
}

// HighPowerTime returns how long the trace spends above the given current
// threshold, a proxy for "network interface lingering in a high power
// state" (Section I).
func (tr Trace) HighPowerTime(thresholdMA float64) time.Duration {
	var total time.Duration
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].MA > thresholdMA {
			total += tr.Samples[i].At - tr.Samples[i-1].At
		}
	}
	return total
}

// CSV renders the trace as "seconds,mA" rows with a header, matching the
// format the experiment CLIs emit for plotting.
func (tr Trace) CSV() string {
	var b strings.Builder
	b.WriteString("time_s,current_mA\n")
	for _, s := range tr.Samples {
		fmt.Fprintf(&b, "%.1f,%.1f\n", s.At.Seconds(), s.MA)
	}
	return b.String()
}
