package energy

import "fmt"

// Battery converts accumulated charge into battery-capacity fractions, the
// unit of the paper's motivating claim that "a smartphone spends at least
// 6% of its battery capacity in sending heartbeat messages even with only
// one IM app running" (Section I).
type Battery struct {
	// CapacityMAh is the battery capacity in mAh.
	CapacityMAh float64
}

// GalaxyS4Battery returns the battery of the evaluation device (Samsung
// Galaxy S4: 2600 mAh).
func GalaxyS4Battery() Battery {
	return Battery{CapacityMAh: 2600}
}

// Validate reports whether the battery is usable.
func (b Battery) Validate() error {
	if b.CapacityMAh <= 0 {
		return fmt.Errorf("energy: battery capacity must be positive, got %v", b.CapacityMAh)
	}
	return nil
}

// DrainFraction returns the fraction of the battery consumed by charge c.
func (b Battery) DrainFraction(c MicroAmpHours) float64 {
	if b.CapacityMAh <= 0 {
		return 0
	}
	return float64(c) / 1000 / b.CapacityMAh
}
