package energy

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestD2DTraceShape(t *testing.T) {
	// Fig. 6: the instant current spurts at the moment of transmission and
	// then descends rapidly.
	m := DefaultModel()
	tr := m.D2DTransferTrace()
	if got := tr.Duration(); got != m.D2DTraceWindow {
		t.Fatalf("window = %v, want %v", got, m.D2DTraceWindow)
	}
	if got := tr.PeakMA(); got != m.D2DPeakMA {
		t.Fatalf("peak = %v, want %v", got, m.D2DPeakMA)
	}
	// The trace must return to idle well before the window ends.
	last := tr.Samples[len(tr.Samples)-1]
	if last.MA != m.IdleCurrentMA {
		t.Fatalf("end current = %v, want idle %v", last.MA, m.IdleCurrentMA)
	}
	high := tr.HighPowerTime(300)
	if high > time.Second {
		t.Fatalf("D2D high-power time %v, want < 1s (fast descent)", high)
	}
}

func TestCellularTraceShape(t *testing.T) {
	// Fig. 7: the current spurts and lasts for a much longer period (tail).
	m := DefaultModel()
	tr := m.CellularTransferTrace()
	if got := tr.Duration(); got != m.CellularTraceWindow {
		t.Fatalf("window = %v, want %v", got, m.CellularTraceWindow)
	}
	high := tr.HighPowerTime(300)
	if high < 4*time.Second {
		t.Fatalf("cellular high-power time %v, want >= 4s (long tail)", high)
	}
	d2dHigh := m.D2DTransferTrace().HighPowerTime(300)
	if high <= d2dHigh*3 {
		t.Fatalf("cellular high-power time %v not ≫ D2D %v", high, d2dHigh)
	}
}

func TestTraceSamplingPeriod(t *testing.T) {
	// The paper captures instant current every 0.1 seconds.
	m := DefaultModel()
	tr := m.D2DTransferTrace()
	if len(tr.Samples) < 2 {
		t.Fatal("too few samples")
	}
	for i := 1; i < len(tr.Samples); i++ {
		if dt := tr.Samples[i].At - tr.Samples[i-1].At; dt != m.TraceSampleEvery {
			t.Fatalf("sample spacing %v, want %v", dt, m.TraceSampleEvery)
		}
	}
}

func TestTraceIntegralsMatchPhaseConstants(t *testing.T) {
	// The above-baseline integral of each synthesized trace approximates
	// the corresponding model constant, tying Figs. 6/7 to Table III.
	m := DefaultModel()

	d2d := float64(m.D2DTransferTrace().IntegrateAboveBaseline())
	wantD2D := float64(m.UED2DSend) * m.distanceFactor(1)
	if rel := math.Abs(d2d-wantD2D) / wantD2D; rel > 0.25 {
		t.Fatalf("D2D trace integral %.1f µAh vs constant %.1f µAh (%.0f%% off)",
			d2d, wantD2D, rel*100)
	}

	cell := float64(m.CellularTransferTrace().IntegrateAboveBaseline())
	wantCell := float64(m.CellularTxBase)
	if rel := math.Abs(cell-wantCell) / wantCell; rel > 0.15 {
		t.Fatalf("cellular trace integral %.1f µAh vs constant %.1f µAh (%.0f%% off)",
			cell, wantCell, rel*100)
	}
}

func TestCellularTransferCostsMoreThanD2D(t *testing.T) {
	m := DefaultModel()
	cell := m.CellularTransferTrace().IntegrateAboveBaseline()
	d2d := m.D2DTransferTrace().IntegrateAboveBaseline()
	if cell <= d2d {
		t.Fatalf("cellular %v not more expensive than D2D %v", cell, d2d)
	}
	if ratio := float64(cell / d2d); ratio < 3 {
		t.Fatalf("cellular/D2D charge ratio %.1f, want >= 3", ratio)
	}
}

func TestIntegrateEmptyTrace(t *testing.T) {
	var tr Trace
	if got := tr.Integrate(); got != 0 {
		t.Fatalf("empty trace integral = %v, want 0", got)
	}
	if got := tr.Duration(); got != 0 {
		t.Fatalf("empty trace duration = %v, want 0", got)
	}
}

func TestIntegrateKnownRectangle(t *testing.T) {
	// 1000 mA for exactly 3.6 s = 1 mAh = 1000 µAh.
	tr := Trace{Samples: []Sample{
		{At: 0, MA: 1000},
		{At: 3600 * time.Millisecond, MA: 1000},
	}}
	got := float64(tr.Integrate())
	if math.Abs(got-1000) > 1e-6 {
		t.Fatalf("integral = %v µAh, want 1000", got)
	}
}

func TestIntegrateAboveBaselineClampsNegative(t *testing.T) {
	tr := Trace{
		BaselineMA: 200,
		Samples: []Sample{
			{At: 0, MA: 100},
			{At: time.Second, MA: 100},
		},
	}
	if got := tr.IntegrateAboveBaseline(); got != 0 {
		t.Fatalf("below-baseline integral = %v, want 0", got)
	}
}

func TestTraceCSV(t *testing.T) {
	m := DefaultModel()
	csv := m.D2DTransferTrace().CSV()
	if !strings.HasPrefix(csv, "time_s,current_mA\n") {
		t.Fatalf("CSV missing header: %q", csv[:30])
	}
	lines := strings.Count(csv, "\n")
	wantLines := int(m.D2DTraceWindow/m.TraceSampleEvery) + 2 // header + samples
	if lines != wantLines {
		t.Fatalf("CSV has %d lines, want %d", lines, wantLines)
	}
}
