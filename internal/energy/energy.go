// Package energy models smartphone energy consumption for heartbeat
// transmissions. The paper measures instant current with a Monsoon Power
// Monitor at a constant 3.7 V and reports per-phase charge in µAh; this
// package mirrors that methodology: a Model holds per-phase charge constants
// calibrated against the paper's Tables III and IV, a Ledger accumulates
// charge per phase, and trace synthesis reproduces the current-versus-time
// shapes of Figs. 6 and 7.
package energy

import (
	"fmt"
	"slices"
	"sync"
	"time"
)

// MicroAmpHours is electric charge in µAh, the unit used throughout the
// paper's evaluation (at a fixed 3.7 V supply it is proportional to energy).
type MicroAmpHours float64

// String implements fmt.Stringer.
func (m MicroAmpHours) String() string { return fmt.Sprintf("%.2fµAh", float64(m)) }

// Phase identifies where in the heartbeat pipeline charge was spent.
type Phase int

// Phases of the D2D heartbeat framework, matching the breakdown of the
// paper's Table III plus the cellular and fallback paths.
const (
	PhaseDiscovery  Phase = iota + 1 // D2D peer discovery scan
	PhaseConnection                  // D2D group negotiation + connect
	PhaseD2DSend                     // UE forwarding a heartbeat over D2D
	PhaseD2DRecv                     // relay receiving a forwarded heartbeat
	PhaseCellular                    // cellular transmission incl. RRC tail
	PhaseFallback                    // duplicate cellular send after feedback loss
	PhaseIdleBase                    // baseline platform draw (trace analysis only)
)

var phaseNames = map[Phase]string{
	PhaseDiscovery:  "discovery",
	PhaseConnection: "connection",
	PhaseD2DSend:    "d2d-send",
	PhaseD2DRecv:    "d2d-recv",
	PhaseCellular:   "cellular",
	PhaseFallback:   "fallback",
	PhaseIdleBase:   "idle-base",
}

// String implements fmt.Stringer.
func (p Phase) String() string {
	if s, ok := phaseNames[p]; ok {
		return s
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Phases lists all accounting phases in display order.
func Phases() []Phase {
	return []Phase{
		PhaseDiscovery, PhaseConnection, PhaseD2DSend, PhaseD2DRecv,
		PhaseCellular, PhaseFallback, PhaseIdleBase,
	}
}

// ReferenceMessageSize is the standard heartbeat size used in the paper's
// experiments (Section V-A).
const ReferenceMessageSize = 54 // bytes

// Model holds the charge constants of the energy model. All per-event values
// are µAh at the reference message size and a 1 m link unless noted.
//
// The default calibration reproduces the paper's measurements; see
// DESIGN.md §2 for how the constants were derived and where the paper's own
// numbers are mutually inconsistent.
type Model struct {
	// D2D discovery + connection, one-time per D2D session (Table III).
	UEDiscovery     MicroAmpHours
	UEConnection    MicroAmpHours
	RelayDiscovery  MicroAmpHours
	RelayConnection MicroAmpHours

	// UED2DSend is the UE-side charge to forward one heartbeat (Table III,
	// "Forwarding" row).
	UED2DSend MicroAmpHours

	// RelayD2DRecvFirst is the relay-side charge to receive the first
	// heartbeat of a collection round from one UE, including the Wi-Fi
	// Direct group wake-up (Table IV: ≈ linear, ~123–130 µAh per UE).
	RelayD2DRecvFirst MicroAmpHours
	// RelayD2DRecvSteady is the marginal charge for subsequent receives in
	// an established, synchronized group.
	RelayD2DRecvSteady MicroAmpHours

	// CellularTxBase is the charge of one cellular transmission: RRC
	// promotion, transfer of one reference-size heartbeat, and the
	// high-power inactivity tail. Calibrated so that the UE's first-period
	// D2D total is a 55 % saving (Section V-A).
	CellularTxBase MicroAmpHours
	// CellularPerExtraMsg is the marginal charge per additional message
	// aggregated into the same cellular transmission.
	CellularPerExtraMsg MicroAmpHours
	// CellularPerExtraByte is the marginal charge per byte beyond the
	// reference message size, per message.
	CellularPerExtraByte MicroAmpHours

	// D2DDistanceSlope scales D2D send/recv charge with link distance
	// beyond the 1 m reference at which Table III was measured:
	// factor = 1 + D2DDistanceSlope × max(0, distance−1). Fig. 12 shows
	// Wi-Fi Direct consuming visibly more at 15 m than at 1 m.
	D2DDistanceSlope float64
	// D2DPerExtraByte is the marginal D2D charge per byte beyond the
	// reference size, per message (Fig. 13: nearly flat).
	D2DPerExtraByte MicroAmpHours

	// Trace-shape parameters (Figs. 6 and 7).
	IdleCurrentMA       float64       // baseline platform draw
	D2DPeakMA           float64       // D2D transfer spike
	D2DPeakHold         time.Duration // spike plateau
	D2DDecay            time.Duration // linear decay back to idle
	CellActiveMA        float64       // cellular transfer plateau
	CellActiveHold      time.Duration
	CellTailMA          float64 // high-power RRC tail
	CellTailHold        time.Duration
	CellDecay           time.Duration
	TraceSampleEvery    time.Duration // power-monitor sampling period
	D2DTraceWindow      time.Duration
	CellularTraceWindow time.Duration
}

// DefaultModel returns the paper-calibrated energy model.
func DefaultModel() Model {
	return Model{
		UEDiscovery:     132.24,
		UEConnection:    63.74,
		RelayDiscovery:  122.50,
		RelayConnection: 60.29,

		UED2DSend:          73.09,
		RelayD2DRecvFirst:  123.22,
		RelayD2DRecvSteady: 55.0,

		CellularTxBase:       598.0,
		CellularPerExtraMsg:  9.0,
		CellularPerExtraByte: 0.02,

		D2DDistanceSlope: 0.115,
		D2DPerExtraByte:  0.01,

		IdleCurrentMA:       120,
		D2DPeakMA:           750,
		D2DPeakHold:         250 * time.Millisecond,
		D2DDecay:            330 * time.Millisecond,
		CellActiveMA:        600,
		CellActiveHold:      1500 * time.Millisecond,
		CellTailMA:          450,
		CellTailHold:        4340 * time.Millisecond,
		CellDecay:           300 * time.Millisecond,
		TraceSampleEvery:    100 * time.Millisecond,
		D2DTraceWindow:      2500 * time.Millisecond,
		CellularTraceWindow: 8 * time.Second,
	}
}

// Validate reports whether the model's constants are usable.
func (m Model) Validate() error {
	type check struct {
		name string
		v    float64
	}
	checks := []check{
		{"UEDiscovery", float64(m.UEDiscovery)},
		{"UEConnection", float64(m.UEConnection)},
		{"RelayDiscovery", float64(m.RelayDiscovery)},
		{"RelayConnection", float64(m.RelayConnection)},
		{"UED2DSend", float64(m.UED2DSend)},
		{"RelayD2DRecvFirst", float64(m.RelayD2DRecvFirst)},
		{"RelayD2DRecvSteady", float64(m.RelayD2DRecvSteady)},
		{"CellularTxBase", float64(m.CellularTxBase)},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("energy: %s must be positive, got %v", c.name, c.v)
		}
	}
	if m.D2DDistanceSlope < 0 {
		return fmt.Errorf("energy: D2DDistanceSlope must be non-negative, got %v", m.D2DDistanceSlope)
	}
	if m.TraceSampleEvery <= 0 {
		return fmt.Errorf("energy: TraceSampleEvery must be positive, got %v", m.TraceSampleEvery)
	}
	return nil
}

// distanceFactor returns the multiplicative D2D charge penalty at the given
// link distance in meters, normalized to 1 at the 1 m reference distance of
// the paper's measurements.
func (m Model) distanceFactor(distM float64) float64 {
	if distM < 1 {
		return 1
	}
	return 1 + m.D2DDistanceSlope*(distM-1)
}

// sizeExtra returns the marginal per-message charge for bytes beyond the
// reference size.
func (m Model) sizeExtra(per MicroAmpHours, sizeBytes int) MicroAmpHours {
	extra := sizeBytes - ReferenceMessageSize
	if extra <= 0 {
		return 0
	}
	return per * MicroAmpHours(extra)
}

// D2DSendCharge returns the UE-side charge to forward one heartbeat of
// sizeBytes over a D2D link of distM meters.
func (m Model) D2DSendCharge(sizeBytes int, distM float64) MicroAmpHours {
	return (m.UED2DSend + m.sizeExtra(m.D2DPerExtraByte, sizeBytes)) *
		MicroAmpHours(m.distanceFactor(distM))
}

// D2DRecvCharge returns the relay-side charge to receive one forwarded
// heartbeat. firstOfRound selects the group wake-up cost (Table IV) versus
// the steady-state marginal cost.
func (m Model) D2DRecvCharge(sizeBytes int, distM float64, firstOfRound bool) MicroAmpHours {
	base := m.RelayD2DRecvSteady
	if firstOfRound {
		base = m.RelayD2DRecvFirst
	}
	return (base + m.sizeExtra(m.D2DPerExtraByte, sizeBytes)) *
		MicroAmpHours(m.distanceFactor(distM))
}

// CellularTxCharge returns the charge of one cellular transmission carrying
// msgs messages totalling payloadBytes. Aggregation amortizes the promotion
// and tail: extra messages cost only their marginal transfer charge.
func (m Model) CellularTxCharge(msgs, payloadBytes int) MicroAmpHours {
	if msgs <= 0 {
		return 0
	}
	c := m.CellularTxBase + m.CellularPerExtraMsg*MicroAmpHours(msgs-1)
	extraBytes := payloadBytes - msgs*ReferenceMessageSize
	if extraBytes > 0 {
		c += m.CellularPerExtraByte * MicroAmpHours(extraBytes)
	}
	return c
}

// Ledger accumulates charge per phase. It is safe for concurrent use so the
// real-protocol stack can share the same accounting type as the simulator.
type Ledger struct {
	mu     sync.Mutex
	phases map[Phase]MicroAmpHours
	events map[Phase]int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		phases: make(map[Phase]MicroAmpHours),
		events: make(map[Phase]int),
	}
}

// Add records charge c against phase p. Negative charge is rejected silently
// as zero; charge only ever accumulates.
func (l *Ledger) Add(p Phase, c MicroAmpHours) {
	if c < 0 {
		c = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.phases[p] += c
	l.events[p]++
}

// Phase returns the accumulated charge for phase p.
func (l *Ledger) Phase(p Phase) MicroAmpHours {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.phases[p]
}

// Events returns how many charge events were recorded for phase p.
func (l *Ledger) Events(p Phase) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events[p]
}

// Total returns the accumulated charge across all phases. Summation order
// is fixed so that floating-point rounding is reproducible across runs.
func (l *Ledger) Total() MicroAmpHours {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]int, 0, len(l.phases))
	for p := range l.phases {
		keys = append(keys, int(p))
	}
	slices.Sort(keys)
	var sum MicroAmpHours
	for _, p := range keys {
		sum += l.phases[Phase(p)]
	}
	return sum
}

// Snapshot returns a copy of the per-phase totals.
func (l *Ledger) Snapshot() map[Phase]MicroAmpHours {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[Phase]MicroAmpHours, len(l.phases))
	for p, c := range l.phases {
		out[p] = c
	}
	return out
}

// AddFrom merges the totals of other into l.
func (l *Ledger) AddFrom(other *Ledger) {
	if other == nil {
		return
	}
	for p, c := range other.Snapshot() {
		l.Add(p, c)
	}
}

// String renders the ledger as "phase=charge" pairs in stable order.
func (l *Ledger) String() string {
	snap := l.Snapshot()
	keys := make([]Phase, 0, len(snap))
	for p := range snap {
		keys = append(keys, p)
	}
	slices.Sort(keys)
	s := ""
	for i, p := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%.2f", p, float64(snap[p]))
	}
	return s
}
