package matching

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"d2dhb/internal/d2d"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	c := DefaultConfig()
	c.MaxDistance = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero distance accepted")
	}
	c = DefaultConfig()
	c.MinIntent = 16
	if err := c.Validate(); err == nil {
		t.Fatal("intent > 15 accepted")
	}
	c = DefaultConfig()
	c.MinIntent = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative intent accepted")
	}
}

func TestSelectNearestAvailable(t *testing.T) {
	peers := []d2d.PeerInfo{
		{ID: "near-full", EstDistance: 1, FreeCapacity: 0, Intent: 0},
		{ID: "mid", EstDistance: 5, FreeCapacity: 3, Intent: 10},
		{ID: "far", EstDistance: 9, FreeCapacity: 5, Intent: 15},
	}
	got, ok := Select(peers, DefaultConfig())
	if !ok || got.ID != "mid" {
		t.Fatalf("Select = %v/%v, want mid", got.ID, ok)
	}
}

func TestSelectPrejudgmentDistance(t *testing.T) {
	peers := []d2d.PeerInfo{
		{ID: "too-far", EstDistance: 20, FreeCapacity: 5, Intent: 15},
		{ID: "way-too-far", EstDistance: 25, FreeCapacity: 5, Intent: 15},
	}
	if _, ok := Select(peers, DefaultConfig()); ok {
		t.Fatal("selected a relay beyond the prejudgment distance")
	}
	// Without prejudgment the naive matcher takes it.
	cfg := DefaultConfig()
	cfg.Prejudgment = false
	got, ok := Select(peers, cfg)
	if !ok || got.ID != "too-far" {
		t.Fatalf("naive Select = %v/%v, want too-far", got.ID, ok)
	}
}

func TestSelectSkipsZeroIntent(t *testing.T) {
	peers := []d2d.PeerInfo{
		{ID: "loaded", EstDistance: 2, FreeCapacity: 1, Intent: 0},
		{ID: "fresh", EstDistance: 4, FreeCapacity: 5, Intent: 15},
	}
	got, ok := Select(peers, DefaultConfig())
	if !ok || got.ID != "fresh" {
		t.Fatalf("Select = %v/%v, want fresh", got.ID, ok)
	}
}

func TestSelectEmpty(t *testing.T) {
	if _, ok := Select(nil, DefaultConfig()); ok {
		t.Fatal("selected from empty list")
	}
}

// TestQuickSelectRespectsConstraints property-checks that any selected peer
// satisfies every enabled constraint and is the nearest such peer.
func TestQuickSelectRespectsConstraints(t *testing.T) {
	cfg := DefaultConfig()
	prop := func(dists []uint16, caps []uint8, intents []uint8) bool {
		n := len(dists)
		if len(caps) < n {
			n = len(caps)
		}
		if len(intents) < n {
			n = len(intents)
		}
		peers := make([]d2d.PeerInfo, 0, n)
		for i := 0; i < n; i++ {
			peers = append(peers, d2d.PeerInfo{
				ID:           "p",
				EstDistance:  float64(dists[i]%300) / 10, // 0..30 m
				FreeCapacity: int(caps[i] % 4),
				Intent:       int(intents[i] % 16),
			})
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i].EstDistance < peers[j].EstDistance })
		got, ok := Select(peers, cfg)
		if !ok {
			// Verify no peer actually qualified.
			for _, p := range peers {
				if p.FreeCapacity > 0 && p.EstDistance <= cfg.MaxDistance && p.Intent > cfg.MinIntent {
					return false
				}
			}
			return true
		}
		if got.FreeCapacity <= 0 || got.EstDistance > cfg.MaxDistance || got.Intent <= cfg.MinIntent {
			return false
		}
		// Must be the nearest qualifying peer.
		for _, p := range peers {
			if p.EstDistance >= got.EstDistance {
				break
			}
			if p.FreeCapacity > 0 && p.EstDistance <= cfg.MaxDistance && p.Intent > cfg.MinIntent {
				return false
			}
		}
		return true
	}
	qc := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(20))}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}
