// Package matching implements UE-side relay selection: from the discovery
// results, pick the nearest available relay, applying the prejudgment of
// Section III-C — reject relays that are too far (disconnection-prone,
// energy-inefficient) or out of collection capacity. When no relay
// qualifies, the UE sends directly over the cellular network.
package matching

import (
	"fmt"

	"d2dhb/internal/d2d"
)

// Config parameterizes relay selection.
type Config struct {
	// Prejudgment enables the distance/capacity pre-filter. Disabling it
	// reproduces the naive matcher for the ablation benchmark.
	Prejudgment bool
	// MaxDistance is the prejudgment distance threshold in meters:
	// candidates estimated farther away are rejected because
	// "disconnection is more likely to occur when the two devices with
	// longer distance" and D2D energy grows with distance (Fig. 12).
	MaxDistance float64
	// MinIntent rejects relays advertising a group-owner intent at or
	// below this bound; a relay whose intent decayed to zero is fully
	// loaded (Section IV-C).
	MinIntent int
}

// DefaultConfig returns the prototype's selection parameters. The 15 m
// bound matches the farthest distance the paper evaluates (Fig. 12), beyond
// which the UE is predicted to consume more energy than the original
// system.
func DefaultConfig() Config {
	return Config{
		Prejudgment: true,
		MaxDistance: 15,
		MinIntent:   0,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MaxDistance <= 0 {
		return fmt.Errorf("matching: MaxDistance must be positive, got %v", c.MaxDistance)
	}
	if c.MinIntent < 0 || c.MinIntent > d2d.MaxGroupOwnerIntent {
		return fmt.Errorf("matching: MinIntent must be in [0, %d], got %d",
			d2d.MaxGroupOwnerIntent, c.MinIntent)
	}
	return nil
}

// Select picks a relay from discovery results (which Scan returns
// nearest-first). It returns the chosen peer and true, or a zero PeerInfo
// and false when no candidate qualifies — the caller then "choose[s] to
// send the heartbeat messages via cellular network directly".
func Select(peers []d2d.PeerInfo, cfg Config) (d2d.PeerInfo, bool) {
	for _, p := range peers {
		if p.FreeCapacity <= 0 {
			continue
		}
		if cfg.Prejudgment {
			if p.EstDistance > cfg.MaxDistance {
				// Peers are sorted nearest-first: everything after this
				// one is even farther.
				break
			}
			if p.Intent <= cfg.MinIntent {
				continue
			}
		}
		return p, true
	}
	return d2d.PeerInfo{}, false
}
