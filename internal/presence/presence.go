// Package presence mirrors the IM server's expiration-timer table
// (Section II-A): every delivered heartbeat resets its sender's timer, and
// a client whose timer lapses is considered offline until the next
// heartbeat arrives. The tracker integrates per-client online time, which
// quantifies the "instantaneity" cost the paper warns about when heartbeats
// are delayed or lost (Section III).
package presence

import (
	"fmt"
	"time"

	"d2dhb/internal/hbmsg"
)

// state is one client's timer state.
type state struct {
	firstSeen time.Duration // first delivery (tracking anchor)
	lastEvent time.Duration // last delivery processed
	deadline  time.Duration // current expiration instant
	online    time.Duration // accumulated online time
	flaps     int           // offline→online transitions after the first
}

// Tracker integrates online time per client from delivered heartbeats.
// Deliveries must be fed in non-decreasing time order (the simulation's
// delivery stream already is).
type Tracker struct {
	clients map[hbmsg.DeviceID]*state
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{clients: make(map[hbmsg.DeviceID]*state)}
}

// Deliver processes one heartbeat arriving at the server at instant at.
// The sender's expiration timer is reset to at + expiry (reception-based
// reset, as IM servers do); if the previous timer had already lapsed, the
// gap counts as offline time and a presence flap.
func (t *Tracker) Deliver(hb hbmsg.Heartbeat, at time.Duration) error {
	if at < 0 {
		return fmt.Errorf("presence: negative delivery time %v", at)
	}
	s, ok := t.clients[hb.Src]
	if !ok {
		t.clients[hb.Src] = &state{
			firstSeen: at,
			lastEvent: at,
			deadline:  at + hb.Expiry,
		}
		return nil
	}
	if at < s.lastEvent {
		return fmt.Errorf("presence: delivery for %s at %v before last event %v", hb.Src, at, s.lastEvent)
	}
	if at <= s.deadline {
		// Timer still running: the whole interval was online.
		s.online += at - s.lastEvent
	} else {
		// Timer lapsed at s.deadline; the client was offline until now.
		s.online += s.deadline - s.lastEvent
		s.flaps++
	}
	s.lastEvent = at
	if d := at + hb.Expiry; d > s.deadline {
		s.deadline = d
	}
	return nil
}

// Stats reports a client's integrated presence up to the horizon: total
// online time since its first delivery, the number of offline flaps, and
// whether the client was ever seen.
func (t *Tracker) Stats(id hbmsg.DeviceID, horizon time.Duration) (online time.Duration, flaps int, seen bool) {
	s, ok := t.clients[id]
	if !ok {
		return 0, 0, false
	}
	online = s.online
	if horizon > s.lastEvent {
		end := s.deadline
		if horizon < end {
			end = horizon
		}
		if end > s.lastEvent {
			online += end - s.lastEvent
		}
	}
	return online, s.flaps, true
}

// Availability returns the fraction of time the client was online between
// its first delivery and the horizon. A client that was never seen has zero
// availability.
func (t *Tracker) Availability(id hbmsg.DeviceID, horizon time.Duration) float64 {
	s, ok := t.clients[id]
	if !ok || horizon <= s.firstSeen {
		return 0
	}
	online, _, _ := t.Stats(id, horizon)
	return float64(online) / float64(horizon-s.firstSeen)
}

// OnlineAt reports whether the client's timer is running at instant at
// (only meaningful for instants not before the last processed delivery).
func (t *Tracker) OnlineAt(id hbmsg.DeviceID, at time.Duration) bool {
	s, ok := t.clients[id]
	return ok && at >= s.firstSeen && at <= s.deadline
}

// Clients returns how many distinct clients have been seen.
func (t *Tracker) Clients() int { return len(t.clients) }
