package presence

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"d2dhb/internal/hbmsg"
)

func hb(src hbmsg.DeviceID, expiry time.Duration) hbmsg.Heartbeat {
	return hbmsg.Heartbeat{Src: src, Expiry: expiry, Size: 54}
}

func TestUnseenClient(t *testing.T) {
	tr := NewTracker()
	if _, _, seen := tr.Stats("ghost", time.Hour); seen {
		t.Fatal("unseen client reported seen")
	}
	if tr.Availability("ghost", time.Hour) != 0 {
		t.Fatal("unseen client has availability")
	}
	if tr.OnlineAt("ghost", 0) {
		t.Fatal("unseen client online")
	}
	if tr.Clients() != 0 {
		t.Fatal("phantom clients")
	}
}

func TestContinuousHeartbeatsFullAvailability(t *testing.T) {
	tr := NewTracker()
	const expiry = 100 * time.Second
	// Heartbeats every 90 s: the timer never lapses.
	for at := time.Duration(0); at <= 900*time.Second; at += 90 * time.Second {
		if err := tr.Deliver(hb("u", expiry), at); err != nil {
			t.Fatalf("Deliver: %v", err)
		}
	}
	online, flaps, seen := tr.Stats("u", 900*time.Second)
	if !seen || flaps != 0 {
		t.Fatalf("flaps = %d, want 0", flaps)
	}
	if online != 900*time.Second {
		t.Fatalf("online = %v, want 900s", online)
	}
	if got := tr.Availability("u", 900*time.Second); math.Abs(got-1) > 1e-9 {
		t.Fatalf("availability = %v, want 1", got)
	}
}

func TestGapCausesFlapAndOfflineTime(t *testing.T) {
	tr := NewTracker()
	const expiry = 100 * time.Second
	if err := tr.Deliver(hb("u", expiry), 0); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	// Next heartbeat 300 s later: offline from 100 s to 300 s.
	if err := tr.Deliver(hb("u", expiry), 300*time.Second); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	online, flaps, _ := tr.Stats("u", 400*time.Second)
	if flaps != 1 {
		t.Fatalf("flaps = %d, want 1", flaps)
	}
	if online != 200*time.Second { // [0,100] + [300,400]
		t.Fatalf("online = %v, want 200s", online)
	}
	if got := tr.Availability("u", 400*time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("availability = %v, want 0.5", got)
	}
}

func TestHorizonClampsTailOnlineTime(t *testing.T) {
	tr := NewTracker()
	if err := tr.Deliver(hb("u", 100*time.Second), 0); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	online, _, _ := tr.Stats("u", 40*time.Second)
	if online != 40*time.Second {
		t.Fatalf("online = %v, want 40s (clamped)", online)
	}
	online, _, _ = tr.Stats("u", time.Hour)
	if online != 100*time.Second {
		t.Fatalf("online = %v, want 100s (deadline bound)", online)
	}
}

func TestOnlineAt(t *testing.T) {
	tr := NewTracker()
	if err := tr.Deliver(hb("u", 60*time.Second), 10*time.Second); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if tr.OnlineAt("u", 5*time.Second) {
		t.Fatal("online before first delivery")
	}
	if !tr.OnlineAt("u", 30*time.Second) {
		t.Fatal("offline while timer running")
	}
	if tr.OnlineAt("u", 80*time.Second) {
		t.Fatal("online after timer lapsed")
	}
}

func TestDeliverValidation(t *testing.T) {
	tr := NewTracker()
	if err := tr.Deliver(hb("u", time.Minute), -1); err == nil {
		t.Fatal("negative time accepted")
	}
	if err := tr.Deliver(hb("u", time.Minute), 100*time.Second); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if err := tr.Deliver(hb("u", time.Minute), 50*time.Second); err == nil {
		t.Fatal("out-of-order delivery accepted")
	}
}

func TestShorterExpiryDoesNotShrinkDeadline(t *testing.T) {
	// Two apps on one device: a long-expiry heartbeat followed by a
	// short-expiry one must not cut presence short.
	tr := NewTracker()
	if err := tr.Deliver(hb("u", 300*time.Second), 0); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if err := tr.Deliver(hb("u", 10*time.Second), 5*time.Second); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if !tr.OnlineAt("u", 200*time.Second) {
		t.Fatal("short-expiry heartbeat shrank the deadline")
	}
}

// TestQuickAvailabilityBounds property-checks that availability is always
// within [0, 1] and that denser delivery schedules never reduce it.
func TestQuickAvailabilityBounds(t *testing.T) {
	prop := func(gaps []uint16) bool {
		tr := NewTracker()
		const expiry = 60 * time.Second
		at := time.Duration(0)
		times := []time.Duration{0}
		for _, g := range gaps {
			at += time.Duration(g%200) * time.Second
			times = append(times, at)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for _, tm := range times {
			if err := tr.Deliver(hb("u", expiry), tm); err != nil {
				return false
			}
		}
		horizon := times[len(times)-1] + time.Minute
		a := tr.Availability("u", horizon)
		return a >= 0 && a <= 1+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(40))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOnlinePlusOfflineEqualsSpan property-checks the accounting
// identity: online time plus implied offline time equals the tracked span.
func TestQuickOnlinePlusOfflineEqualsSpan(t *testing.T) {
	prop := func(gaps []uint16) bool {
		tr := NewTracker()
		const expiry = 45 * time.Second
		at := time.Duration(0)
		var deliveries []time.Duration
		deliveries = append(deliveries, 0)
		for _, g := range gaps {
			at += time.Duration(g%300+1) * time.Second
			deliveries = append(deliveries, at)
		}
		var offline time.Duration
		prevDeadline := deliveries[0] + expiry
		for _, tm := range deliveries {
			if err := tr.Deliver(hb("u", expiry), tm); err != nil {
				return false
			}
		}
		for _, tm := range deliveries[1:] {
			if tm > prevDeadline {
				offline += tm - prevDeadline
			}
			prevDeadline = tm + expiry
		}
		horizon := deliveries[len(deliveries)-1] // stop at last delivery
		online, _, _ := tr.Stats("u", horizon)
		span := horizon - deliveries[0]
		return online+offline == span
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
