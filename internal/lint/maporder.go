package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Maporder forbids map iteration whose body feeds an order-sensitive sink.
//
// Go randomizes map iteration order on purpose, so any value that flows
// from a `range someMap` into a trace event, a trace recording, a report
// table row or a digest input lands in a different order on every run —
// the exact bug class that breaks the golden-digest determinism suite the
// moment the kernel goes multi-threaded. The analyzer seeds the sink set
// with the project's ordered outputs (trace.Emit, rec.Recorder recording
// methods, metrics.Table.AddRow, hash.Hash.Write) plus config extras, and
// propagates "emits ordered output" through the module call graph the way
// lockheld propagates blockingness — a helper that records a trace event
// is as order-sensitive as rec.Recorder.Record itself. The fix is always
// the same: collect the keys, sort them, then range over the sorted slice
// (encoding/json is exempt — it sorts map keys itself).
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "no map iteration feeding trace events, recordings, report rows or digests without an intervening sort",
	Run:  runMaporder,
}

// hashIface resolves the hash.Hash interface from the loaded package
// graph (nil when the dependency closure never touches package hash).
func resolveHashIface(univ []*Package) *types.Interface {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Interface
	walk = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "hash" {
			if o := p.Scope().Lookup("Hash"); o != nil {
				iface, _ := o.Type().Underlying().(*types.Interface)
				return iface
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := walk(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	for _, pkg := range univ {
		if iface := walk(pkg.Types); iface != nil {
			return iface
		}
	}
	return nil
}

// seedOrderReason classifies calls that are order-sensitive sinks by
// themselves: project trace/recording/report APIs, digest writes and
// config-listed extras.
func seedOrderReason(fn *types.Func, call *ast.CallExpr, info *types.Info, module string, hashI *types.Interface, extra map[string]bool) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	full := fullFuncName(fn)
	if extra[full] {
		return "is listed as an ordered sink in the lint config"
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == module+"/internal/trace" && name == "Emit":
		return "emits a trace event"
	case path == module+"/internal/rec":
		switch full {
		case path + ".Recorder.Record":
			return "records a trace event"
		case path + ".Recorder.AddClient":
			return "appends to the trace client table"
		case path + ".Recorder.AddFault":
			return "appends a trace fault window"
		}
	case path == module+"/internal/metrics" && full == path+".Table.AddRow":
		return "appends a report-table row"
	}
	// A Write on anything implementing hash.Hash feeds a digest; the
	// static receiver type decides (the method itself usually resolves to
	// io.Writer.Write, which alone is too broad to seed).
	if name == "Write" && hashI != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := info.Selections[sel]; s != nil && implementsIface(s.Recv(), hashI) {
				return "feeds a digest"
			}
		}
	}
	return ""
}

// orderedFuncs computes (once per run) the module functions that emit
// ordered output, by the same fixed point lockheld uses for blockingness:
// a function is a sink if its body contains a seed sink call or a call to
// a known sink. Function literals and go statements are skipped — a
// literal emits for whoever calls it, on its own schedule.
func (p *Pass) orderedFuncs(module string, hashI *types.Interface, extra map[string]bool) map[*types.Func]string {
	if p.shared.ordered != nil {
		return p.shared.ordered
	}
	type declInfo struct {
		pkg  *Package
		body *ast.BlockStmt
	}
	decls := make(map[*types.Func]declInfo)
	for _, pkg := range p.Univ {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = declInfo{pkg: pkg, body: fd.Body}
				}
			}
		}
	}
	ordered := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for fn, di := range decls {
			if _, done := ordered[fn]; done {
				continue
			}
			if reason, _ := bodyOrderReason(di.pkg.Info, di.body, ordered, module, hashI, extra); reason != "" {
				ordered[fn] = reason
				changed = true
			}
		}
	}
	p.shared.ordered = ordered
	return ordered
}

// bodyOrderReason reports why executing the body emits order-sensitive
// output ("" if it does not), plus the call that proves it.
func bodyOrderReason(info *types.Info, body ast.Node, ordered map[*types.Func]string, module string, hashI *types.Interface, extra map[string]bool) (string, *ast.CallExpr) {
	reason := ""
	var culprit *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // emits on its caller's schedule, not this one
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			fn := callee(info, x)
			if fn == nil {
				return true
			}
			if r := seedOrderReason(fn, x, info, module, hashI, extra); r != "" {
				reason, culprit = r, x
			} else if r, ok := ordered[fn]; ok {
				reason, culprit = fmt.Sprintf("calls %s, which %s", fullFuncName(fn), r), x
			}
		}
		return reason == ""
	})
	return reason, culprit
}

func runMaporder(p *Pass) {
	hashI := resolveHashIface(p.Univ)
	extra := make(map[string]bool, len(p.Cfg.ExtraOrdered))
	for _, name := range p.Cfg.ExtraOrdered {
		extra[name] = true
	}
	ordered := p.orderedFuncs(p.Module, hashI, extra)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				reason, culprit := bodyOrderReason(p.Pkg.Info, rs.Body, ordered, p.Module, hashI, extra)
				if reason == "" {
					return true
				}
				cpos := p.Pkg.Fset.Position(culprit.Pos())
				p.Reportf(rs.For, "map iteration order is nondeterministic but this loop %s (line %d); collect and sort the keys first so traces, reports and digests stay bit-identical per seed", reason, cpos.Line)
				return true
			})
		}
	}
}
