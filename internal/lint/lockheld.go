package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockheld forbids blocking operations while a sync.Mutex/RWMutex is held.
//
// The sharded presence table and the relay batch paths stay fast only
// because their critical sections are tiny: a net.Conn read/write, a
// channel operation, a dial or a time.Sleep under a shard lock turns one
// slow peer into a server-wide stall (and with lock ordering, a
// deadlock). The analyzer tracks Lock/Unlock pairs through each function
// body and propagates "blockingness" through the module call graph, so a
// helper that dials is as forbidden under a lock as net.Dial itself.
var Lockheld = &Analyzer{
	Name: "lockheld",
	Doc:  "no blocking call (net IO, channel ops, sleeps, dials) while a sync.Mutex/RWMutex is held",
	Run:  runLockheld,
}

// shared carries per-run memoized state: the blocking-function fixed
// point (lockheld) and the ordered-sink fixed point (maporder) are each
// computed once per run, over every loaded module package.
type shared struct {
	blocking map[*types.Func]string
	ordered  map[*types.Func]string
}

// netIfaces resolves net.Conn and net.Listener from the loaded package
// graph (nil when the run never imports net).
type netIfaces struct {
	conn     *types.Interface
	listener *types.Interface
}

func resolveNetIfaces(univ []*Package) netIfaces {
	var out netIfaces
	for _, pkg := range univ {
		for _, imp := range pkg.Types.Imports() {
			if imp.Path() != "net" {
				continue
			}
			if o := imp.Scope().Lookup("Conn"); o != nil {
				out.conn, _ = o.Type().Underlying().(*types.Interface)
			}
			if o := imp.Scope().Lookup("Listener"); o != nil {
				out.listener, _ = o.Type().Underlying().(*types.Interface)
			}
			return out
		}
	}
	return out
}

// implementsIface reports whether t (or *t) implements the interface.
func implementsIface(t types.Type, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// fullFuncName renders "import/path.Func" or "import/path.Type.Method"
// for matching against AnalyzerConfig.ExtraBlocking.
func fullFuncName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	name := fn.Pkg().Path() + "."
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name += named.Obj().Name() + "."
		} else if iface, ok := t.(*types.Interface); ok {
			_ = iface
		}
	}
	return name + fn.Name()
}

// netDialFuncs are the package-level net functions that block on the
// network.
var netDialFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialIP": true, "DialTCP": true,
	"DialUDP": true, "DialUnix": true, "Listen": true, "ListenIP": true,
	"ListenTCP": true, "ListenUDP": true, "ListenUnix": true,
	"ListenUnixgram": true, "ListenPacket": true, "ListenMulticastUDP": true,
}

// seedBlockReason classifies calls that block by themselves, independent
// of any module code: net dials/listens, time.Sleep, WaitGroup.Wait,
// net.Conn IO, Listener.Accept and config-listed extras.
func seedBlockReason(fn *types.Func, ifaces netIfaces, extra map[string]bool) string {
	if fn.Pkg() == nil {
		return ""
	}
	full := fullFuncName(fn)
	if extra[full] {
		return "is listed as blocking in the lint config"
	}
	sig := fn.Type().(*types.Signature)
	path, name := fn.Pkg().Path(), fn.Name()
	if sig.Recv() == nil {
		switch {
		case path == "net" && netDialFuncs[name]:
			return "dials or listens on the network"
		case path == "time" && name == "Sleep":
			return "sleeps"
		}
		return ""
	}
	switch full {
	case "sync.WaitGroup.Wait":
		return "waits on a WaitGroup"
	case "sync.Cond.Wait":
		return "waits on a Cond"
	case "net.Dialer.Dial", "net.Dialer.DialContext":
		return "dials the network"
	}
	recv := sig.Recv().Type()
	switch name {
	case "Read", "Write":
		if implementsIface(recv, ifaces.conn) {
			return "performs network IO on a net.Conn"
		}
	case "Accept":
		if implementsIface(recv, ifaces.listener) {
			return "blocks in Accept"
		}
	}
	return ""
}

// callee resolves a call expression to the called *types.Func, if any.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// blockingFuncs computes (once per run) the set of module functions that
// can block, by fixed point: a function blocks if its body contains a
// blocking primitive or a call to a known-blocking function. Goroutine
// launches, deferred unlock patterns and nested function literals do not
// make the enclosing function blocking (a go statement returns
// immediately; a literal only blocks whoever eventually calls it).
func (p *Pass) blockingFuncs(ifaces netIfaces, extra map[string]bool) map[*types.Func]string {
	if p.shared.blocking != nil {
		return p.shared.blocking
	}
	type declInfo struct {
		pkg  *Package
		body *ast.BlockStmt
	}
	decls := make(map[*types.Func]declInfo)
	for _, pkg := range p.Univ {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = declInfo{pkg: pkg, body: fd.Body}
				}
			}
		}
	}
	blocking := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for fn, di := range decls {
			if _, done := blocking[fn]; done {
				continue
			}
			if reason := bodyBlockReason(di.pkg.Info, di.body, blocking, ifaces, extra); reason != "" {
				blocking[fn] = reason
				changed = true
			}
		}
	}
	p.shared.blocking = blocking
	return blocking
}

// bodyBlockReason reports why a function body can block the calling
// goroutine, or "" if it cannot (as far as the analysis sees).
func bodyBlockReason(info *types.Info, body *ast.BlockStmt, blocking map[*types.Func]string, ifaces netIfaces, extra map[string]bool) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // blocks its own caller, not this function
		case *ast.GoStmt:
			return false // launches and returns immediately
		case *ast.SendStmt:
			reason = "sends on a channel"
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				reason = "receives from a channel"
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					reason = "ranges over a channel"
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				reason = "blocks in a select"
			}
		case *ast.CallExpr:
			if fn := callee(info, x); fn != nil {
				if r := seedBlockReason(fn, ifaces, extra); r != "" {
					reason = r
				} else if _, ok := blocking[fn]; ok {
					reason = fmt.Sprintf("calls %s, which can block", fullFuncName(fn))
				}
			}
		}
		return reason == ""
	})
	return reason
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func runLockheld(p *Pass) {
	ifaces := resolveNetIfaces(p.Univ)
	extra := make(map[string]bool, len(p.Cfg.ExtraBlocking))
	for _, name := range p.Cfg.ExtraBlocking {
		extra[name] = true
	}
	w := &lockWalker{
		pass:     p,
		ifaces:   ifaces,
		extra:    extra,
		blocking: p.blockingFuncs(ifaces, extra),
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				w.block(fd.Body.List, map[string]token.Pos{})
			}
		}
	}
}

// lockWalker tracks which mutexes are held through one function body,
// statement by statement, and reports blocking operations inside critical
// sections. Branch bodies are analyzed with a copy of the entry state;
// after the branch the pre-branch state is restored (the common
// early-unlock-and-return pattern keeps the lock held on the fall-through
// path).
type lockWalker struct {
	pass     *Pass
	ifaces   netIfaces
	extra    map[string]bool
	blocking map[*types.Func]string
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, isLock, isUnlock := w.lockOp(call); isLock {
				held[key] = call.Pos()
				return
			} else if isUnlock {
				delete(held, key)
				return
			}
		}
		w.scanExpr(st.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.reportBlocked(st.Arrow, "channel send", held)
		}
		w.scanExpr(st.Chan, held)
		w.scanExpr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range st.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.scanExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.scanExpr(st.X, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// The deferred call runs at return, when the lock may already be
		// released (defer mu.Unlock() is the idiom) — only argument
		// evaluation happens now.
		w.scanCallArgs(st.Call, held)
	case *ast.GoStmt:
		// The spawned goroutine does not block this one; arguments are
		// still evaluated synchronously.
		w.scanCallArgs(st.Call, held)
	case *ast.BlockStmt:
		w.block(st.List, held)
	case *ast.IfStmt:
		w.stmt(st.Init, held)
		w.scanExpr(st.Cond, held)
		w.block(st.Body.List, cloneHeld(held))
		if st.Else != nil {
			w.stmt(st.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		w.stmt(st.Init, held)
		if st.Cond != nil {
			w.scanExpr(st.Cond, held)
		}
		inner := cloneHeld(held)
		w.block(st.Body.List, inner)
		w.stmt(st.Post, inner)
	case *ast.RangeStmt:
		if len(held) > 0 {
			if tv, ok := w.pass.Pkg.Info.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.reportBlocked(st.For, "range over a channel", held)
				}
			}
		}
		w.scanExpr(st.X, held)
		w.block(st.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		w.stmt(st.Init, held)
		if st.Tag != nil {
			w.scanExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanExpr(e, held)
				}
				w.block(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, held)
		w.stmt(st.Assign, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(st) {
			w.reportBlocked(st.Select, "select with no default case", held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				// The comm op's blockingness is the select's as a whole
				// (reported above); only pull nested literals out of it.
				if cc.Comm != nil {
					w.extractLits(cc.Comm)
				}
				w.block(cc.Body, cloneHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	}
}

// scanCallArgs analyzes a defer/go call: literals get fresh analysis, and
// argument expressions (evaluated synchronously) are scanned, but the
// call itself is not treated as blocking here.
func (w *lockWalker) scanCallArgs(call *ast.CallExpr, held map[string]token.Pos) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.block(lit.Body.List, map[string]token.Pos{})
	}
	for _, a := range call.Args {
		w.scanExpr(a, held)
	}
}

// extractLits analyzes function literals nested anywhere under n with a
// fresh (unlocked) state.
func (w *lockWalker) extractLits(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			w.block(lit.Body.List, map[string]token.Pos{})
			return false
		}
		return true
	})
}

// scanExpr walks an expression for blocking calls and channel receives
// under the current lock state. Function literals are analyzed separately
// with a fresh state — they run on their own schedule.
func (w *lockWalker) scanExpr(e ast.Expr, held map[string]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.block(x.Body.List, map[string]token.Pos{})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(held) > 0 {
				w.reportBlocked(x.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			fn := callee(w.pass.Pkg.Info, x)
			if fn == nil {
				return true
			}
			if r := seedBlockReason(fn, w.ifaces, w.extra); r != "" {
				w.reportBlocked(x.Pos(), fmt.Sprintf("call to %s (%s)", fullFuncName(fn), r), held)
			} else if r, ok := w.blocking[fn]; ok {
				w.reportBlocked(x.Pos(), fmt.Sprintf("call to %s, which %s", fullFuncName(fn), r), held)
			}
		}
		return true
	})
}

// lockOp classifies a call as a mutex Lock/RLock or Unlock/RUnlock and
// returns the canonical receiver expression ("s.mu") as the state key.
func (w *lockWalker) lockOp(call *ast.CallExpr) (key string, isLock, isUnlock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false, false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		if name := t.Obj().Name(); name != "Mutex" && name != "RWMutex" {
			return "", false, false
		}
	case *types.Interface: // sync.Locker
	default:
		return "", false, false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true, false
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

// reportBlocked emits one finding naming the operation and the held lock.
func (w *lockWalker) reportBlocked(pos token.Pos, what string, held map[string]token.Pos) {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lockPos := w.pass.Pkg.Fset.Position(held[keys[0]])
	w.pass.Reportf(pos, "%s while %s is held (locked at line %d); release the lock around blocking operations so one slow peer cannot stall every goroutine contending for it", what, strings.Join(keys, ", "), lockPos.Line)
}
