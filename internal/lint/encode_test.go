package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{
			Pos:      token.Position{Filename: "internal/a/a.go", Line: 12, Column: 3},
			Analyzer: "maporder",
			Message:  "map iteration feeds a digest",
		},
		{
			Pos:      token.Position{Filename: "internal/b/b.go", Line: 7},
			Analyzer: "lint",
			Message:  "stale //lint:allow, 100% dead\nsecond line",
		},
	}
}

// TestEncodeJSON pins the machine-readable form: a non-null array whose
// entries carry file/line/analyzer/message.
func TestEncodeJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, sampleFindings()); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("encoded %d findings, want 2", len(got))
	}
	if got[0]["file"] != "internal/a/a.go" || got[0]["line"] != float64(12) || got[0]["analyzer"] != "maporder" {
		t.Errorf("first finding encoded wrong: %v", got[0])
	}

	buf.Reset()
	if err := EncodeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty run encodes as %q, want []", s)
	}
}

// TestEncodeSARIF pins the SARIF 2.1.0 shape code scanning consumes: one
// run, a rule per analyzer (plus the driver's own), and results whose
// ruleId/locations match the findings.
func TestEncodeSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSARIF(&buf, sampleFindings()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 / 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "d2dvet" {
		t.Errorf("driver name %q, want d2dvet", run.Tool.Driver.Name)
	}
	if want := len(Analyzers) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rule table has %d rules, want %d (every analyzer + lint)", len(run.Tool.Driver.Rules), want)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result ruleId %q not in the rule table", res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result level %q, want error", res.Level)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2", len(run.Results))
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/a/a.go" || loc.Region.StartLine != 12 {
		t.Errorf("first location = %s:%d, want internal/a/a.go:12", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}

// TestEncodeGitHub pins the workflow-command format and its escaping: a
// multi-line message must stay one ::error line.
func TestEncodeGitHub(t *testing.T) {
	var buf bytes.Buffer
	EncodeGitHub(&buf, sampleFindings())
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2 (one per finding):\n%s", len(lines), buf.String())
	}
	if want := "::error file=internal/a/a.go,line=12,title=d2dvet/maporder::map iteration feeds a digest"; lines[0] != want {
		t.Errorf("line 1 = %q\nwant     %q", lines[0], want)
	}
	// %, newline and the comma in the message must be escaped; the comma
	// only in property values.
	if !strings.Contains(lines[1], "100%25 dead") || !strings.Contains(lines[1], "%0Asecond line") {
		t.Errorf("message escaping broken: %q", lines[1])
	}
	if !strings.HasPrefix(lines[1], "::error file=internal/b/b.go,line=7,title=d2dvet/lint::") {
		t.Errorf("line 2 properties wrong: %q", lines[1])
	}
}

// TestUnusedAllowAudit drives the stale-suppression audit through a
// testdata package holding one working directive (covers a real rawrand
// finding) and one stale directive.
func TestUnusedAllowAudit(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "staleallow"), "golden.test/staleallow")
	if err != nil {
		t.Fatal(err)
	}
	var findings []Finding
	Rawrand.Run(&Pass{
		Analyzer: Rawrand, Pkg: pkg, Cfg: AnalyzerConfig{}, Module: "d2dhb",
		Univ: []*Package{pkg}, shared: &shared{}, findings: &findings,
	})
	ds := collectDirectives([]*Package{pkg})
	findings = ds.applySuppressions(findings)
	if len(findings) != 0 {
		t.Fatalf("want every rawrand finding suppressed, got %v", findings)
	}
	stale := ds.staleFindings()
	if len(stale) != 1 {
		t.Fatalf("want exactly 1 stale directive, got %v", stale)
	}
	f := stale[0]
	if f.Analyzer != "lint" || !strings.Contains(f.Message, "stale //lint:allow walltime") {
		t.Errorf("stale finding wrong: %s", f)
	}
	if !strings.Contains(f.Message, "sim clock only, honest") {
		t.Errorf("stale finding should quote the directive's reason: %s", f)
	}
}
