package lint

import (
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// The directive silences matching findings on its own line and on the
// line directly below it (so it can trail the offending statement or sit
// on its own line above). The reason is mandatory.
const allowPrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	names  []string
	reason string
	pos    token.Position
	used   bool
}

// covers reports whether the directive suppresses the analyzer.
func (d *directive) covers(analyzer string) bool {
	for _, n := range d.names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// directiveSet indexes every well-formed //lint:allow in a package set by
// file and line, and carries one finding per malformed directive.
type directiveSet struct {
	byLine    map[string]map[int][]*directive
	all       []*directive
	malformed []Finding
}

// collectDirectives parses every //lint:allow comment in the packages.
func collectDirectives(pkgs []*Package) *directiveSet {
	ds := &directiveSet{byLine: make(map[string]map[int][]*directive)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
					if len(fields) < 2 {
						ds.malformed = append(ds.malformed, Finding{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed //lint:allow directive: need an analyzer name and a reason, e.g. //lint:allow walltime startup banner uses wall time by design",
						})
						continue
					}
					d := &directive{
						names:  strings.Split(fields[0], ","),
						reason: strings.Join(fields[1:], " "),
						pos:    pos,
					}
					lines := ds.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*directive)
						ds.byLine[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], d)
					ds.all = append(ds.all, d)
				}
			}
		}
	}
	return ds
}

// applySuppressions removes findings covered by a //lint:allow directive
// (marking the directive used) and appends a finding for every malformed
// (reason-less) directive.
func (ds *directiveSet) applySuppressions(findings []Finding) []Finding {
	out := findings[:0]
	for _, f := range findings {
		if !ds.suppressed(f) {
			out = append(out, f)
		}
	}
	return append(out, ds.malformed...)
}

// applySuppressions is the single-shot form used by tests.
func applySuppressions(findings []Finding, pkgs []*Package) []Finding {
	return collectDirectives(pkgs).applySuppressions(findings)
}

// suppressed reports whether a directive on the finding's line or the
// line above covers it, marking every covering directive as used.
func (ds *directiveSet) suppressed(f Finding) bool {
	lines := ds.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range lines[line] {
			if d.covers(f.Analyzer) {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// staleFindings reports every well-formed directive that suppressed
// nothing in this run: the violation it excused is gone, so the directive
// is dead weight that would silently mask the next real finding at that
// line.
func (ds *directiveSet) staleFindings() []Finding {
	var out []Finding
	for _, d := range ds.all {
		if d.used {
			continue
		}
		out = append(out, Finding{
			Pos:      d.pos,
			Analyzer: "lint",
			Message:  "stale //lint:allow " + strings.Join(d.names, ",") + " directive: it suppresses nothing in this run — delete it (its reason was: " + d.reason + ")",
		})
	}
	return out
}
