package lint

import (
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// The directive silences matching findings on its own line and on the
// line directly below it (so it can trail the offending statement or sit
// on its own line above). The reason is mandatory.
const allowPrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	names  []string
	reason string
}

// covers reports whether the directive suppresses the analyzer.
func (d *directive) covers(analyzer string) bool {
	for _, n := range d.names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// applySuppressions removes findings covered by a //lint:allow directive
// and appends a finding for every malformed (reason-less) directive.
func applySuppressions(findings []Finding, pkgs []*Package) []Finding {
	byLine := make(map[string]map[int][]*directive)
	var malformed []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
					if len(fields) < 2 {
						malformed = append(malformed, Finding{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed //lint:allow directive: need an analyzer name and a reason, e.g. //lint:allow walltime startup banner uses wall time by design",
						})
						continue
					}
					d := &directive{
						names:  strings.Split(fields[0], ","),
						reason: strings.Join(fields[1:], " "),
					}
					lines := byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*directive)
						byLine[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], d)
				}
			}
		}
	}
	out := findings[:0]
	for _, f := range findings {
		if !suppressed(byLine, f) {
			out = append(out, f)
		}
	}
	return append(out, malformed...)
}

// suppressed reports whether a directive on the finding's line or the
// line above covers it.
func suppressed(byLine map[string]map[int][]*directive, f Finding) bool {
	lines := byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range lines[line] {
			if d.covers(f.Analyzer) {
				return true
			}
		}
	}
	return false
}
