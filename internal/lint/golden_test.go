package lint

import (
	"path/filepath"
	"regexp"
	"testing"
)

// want is one "// want `regex`" expectation parsed from a testdata file.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regex %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("testdata package declares no // want expectations")
	}
	return wants
}

// TestGolden runs each analyzer over its testdata package and checks the
// surviving findings against the // want expectations: every expectation
// must fire, every finding must be expected, and every //lint:allow in the
// package must actually suppress (suppressed sites carry no want).
func TestGolden(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Analyzers {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			pkg, err := l.LoadDir(dir, "golden.test/"+a.Name)
			if err != nil {
				t.Fatal(err)
			}
			var findings []Finding
			a.Run(&Pass{
				Analyzer: a,
				Pkg:      pkg,
				Cfg:      AnalyzerConfig{},
				Module:   "d2dhb",
				Univ:     []*Package{pkg},
				shared:   &shared{},
				findings: &findings,
			})
			findings = applySuppressions(findings, []*Package{pkg})

			wants := parseWants(t, pkg)
			for _, f := range findings {
				if f.Analyzer != a.Name {
					t.Errorf("finding from foreign analyzer: %s", f)
					continue
				}
				covered := false
				for _, w := range wants {
					if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
						w.matched = true
						covered = true
					}
				}
				if !covered {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected finding matching %q never fired", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestMalformedAllowDirective checks that a //lint:allow without a reason
// is itself reported instead of silently suppressing.
func TestMalformedAllowDirective(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "badallow"), "golden.test/badallow")
	if err != nil {
		t.Fatal(err)
	}
	var findings []Finding
	Rawrand.Run(&Pass{
		Analyzer: Rawrand, Pkg: pkg, Cfg: AnalyzerConfig{}, Module: "d2dhb",
		Univ: []*Package{pkg}, shared: &shared{}, findings: &findings,
	})
	findings = applySuppressions(findings, []*Package{pkg})

	var malformed, rawrand int
	for _, f := range findings {
		switch f.Analyzer {
		case "lint":
			malformed++
		case "rawrand":
			rawrand++
		}
	}
	if malformed != 1 {
		t.Errorf("want exactly 1 malformed-directive finding, got %d: %v", malformed, findings)
	}
	// The reason-less directive must not suppress the underlying finding.
	if rawrand != 1 {
		t.Errorf("want the rawrand finding to survive the malformed directive, got %d: %v", rawrand, findings)
	}
}

// TestFindingString pins the canonical output format the CLI prints and CI
// greps.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "walltime", Message: "no"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 7
	if got, wantStr := f.String(), "a/b.go:7: [walltime] no"; got != wantStr {
		t.Errorf("String() = %q, want %q", got, wantStr)
	}
}

// TestConfigScoping pins pattern matching and file allowlisting.
func TestConfigScoping(t *testing.T) {
	c := AnalyzerConfig{Packages: []string{"m", "m/internal/core", "m/internal/sched/..."}}
	cases := []struct {
		path string
		in   bool
	}{
		{"m", true},
		{"m/internal/core", true},
		{"m/internal/core/sub", false},
		{"m/internal/sched", true},
		{"m/internal/sched/deep", true},
		{"other", false},
	}
	for _, tc := range cases {
		if got := c.appliesToPackage(tc.path); got != tc.in {
			t.Errorf("appliesToPackage(%q) = %v, want %v", tc.path, got, tc.in)
		}
	}
	af := AnalyzerConfig{AllowFiles: []string{"*_gen.go"}}
	if !af.allowsFile("foo_gen.go") || af.allowsFile("foo.go") {
		t.Error("AllowFiles glob matching broken")
	}
}
