package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Tracekey requires trace event kinds to be package-level constants.
//
// Every offline consumer of the JSONL trace stream — the analyzer CLI,
// the chaos suite's invariant checks, plot scripts — switches on the
// Kind string. A kind built at runtime (fmt.Sprintf, string
// concatenation, a raw literal at the emit site) cannot be grepped,
// cannot be exhaustively matched, and silently forks the schema. The
// analyzer accepts package-level constants of type trace.Kind, values
// that provably flow only from such constants (locals whose every
// assignment is a constant, parameters, conversions of the former), and
// nothing else.
var Tracekey = &Analyzer{
	Name: "tracekey",
	Doc:  "trace event kinds must be package-level constants of type trace.Kind, never ad-hoc strings",
	Run:  runTracekey,
}

func runTracekey(p *Pass) {
	tracePath := p.Module + "/internal/trace"
	if p.Pkg.Path == tracePath {
		return // the package that defines the constants
	}
	tk := &tracekeyPass{pass: p, tracePath: tracePath}
	for _, f := range p.Pkg.Files {
		tk.file = f
		ast.Inspect(f, tk.inspect)
	}
}

type tracekeyPass struct {
	pass      *Pass
	tracePath string
	file      *ast.File
}

// isKindType reports whether t is the trace package's Kind type.
func (tk *tracekeyPass) isKindType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Kind" && obj.Pkg() != nil && obj.Pkg().Path() == tk.tracePath
}

// isEventType reports whether t is the trace package's Event struct.
func (tk *tracekeyPass) isEventType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == tk.tracePath
}

func (tk *tracekeyPass) inspect(n ast.Node) bool {
	info := tk.pass.Pkg.Info
	switch x := n.(type) {
	case *ast.CompositeLit:
		tv, ok := info.Types[x]
		if !ok || !tk.isEventType(tv.Type) {
			return true
		}
		for _, elt := range x.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" {
				tk.checkValue(kv.Value)
			}
		}
	case *ast.AssignStmt:
		for i, lhs := range x.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Kind" || i >= len(x.Rhs) {
				continue
			}
			if tv, ok := info.Types[sel.X]; ok && tk.isEventType(tv.Type) {
				tk.checkValue(x.Rhs[i])
			}
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			return true // conversions are handled inside checkValue
		}
		fn := callee(info, x)
		if fn == nil {
			return true
		}
		sig := fn.Type().(*types.Signature)
		for i, arg := range x.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				slice, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
				if !ok {
					continue
				}
				pt = slice.Elem()
			case i < sig.Params().Len():
				pt = sig.Params().At(i).Type()
			default:
				continue
			}
			if tk.isKindType(pt) {
				tk.checkValue(arg)
			}
		}
	}
	return true
}

// checkValue reports the expression unless it provably enumerates to
// package-level trace.Kind constants.
func (tk *tracekeyPass) checkValue(e ast.Expr) {
	if !tk.enumerable(e, 0) {
		tk.pass.Reportf(e.Pos(), "trace event kind is not a package-level constant; define a Kind constant in internal/trace so offline consumers can match it exhaustively")
	}
}

const maxEnumDepth = 4

// enumerable reports whether the expression's value can only ever be one
// of a statically known set of package-level constants.
func (tk *tracekeyPass) enumerable(e ast.Expr, depth int) bool {
	if depth > maxEnumDepth {
		return false
	}
	info := tk.pass.Pkg.Info
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		return tk.enumerableObject(info.Uses[x], e, depth)
	case *ast.SelectorExpr:
		return tk.enumerableObject(info.Uses[x.Sel], e, depth)
	case *ast.CallExpr:
		// A conversion Kind(v) is as enumerable as its operand.
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return tk.enumerable(x.Args[0], depth+1)
		}
	}
	return false
}

// enumerableObject handles a name reference: package-level constants are
// the base case; parameters are trusted (the caller is checked at its own
// call sites); local variables are enumerable when every assignment to
// them in the enclosing function is.
func (tk *tracekeyPass) enumerableObject(obj types.Object, ref ast.Expr, depth int) bool {
	switch o := obj.(type) {
	case *types.Const:
		return o.Parent() == o.Pkg().Scope()
	case *types.Var:
		body := tk.enclosingBody(ref.Pos())
		if body == nil {
			return false
		}
		if tk.isParam(o, body) {
			return true
		}
		return tk.localAlwaysEnumerable(o, body, depth)
	}
	return false
}

// enclosingBody returns the innermost function body containing pos.
func (tk *tracekeyPass) enclosingBody(pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(tk.file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch x := n.(type) {
		case *ast.FuncDecl:
			body = x.Body
		case *ast.FuncLit:
			body = x.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			best = body // keep descending: innermost wins
		}
		return true
	})
	return best
}

// isParam reports whether v is declared as a parameter of the function
// owning body.
func (tk *tracekeyPass) isParam(v *types.Var, body *ast.BlockStmt) bool {
	info := tk.pass.Pkg.Info
	found := false
	ast.Inspect(tk.file, func(n ast.Node) bool {
		if found {
			return false
		}
		var ft *ast.FuncType
		var b *ast.BlockStmt
		switch x := n.(type) {
		case *ast.FuncDecl:
			ft, b = x.Type, x.Body
		case *ast.FuncLit:
			ft, b = x.Type, x.Body
		default:
			return true
		}
		if b != body || ft.Params == nil {
			return true
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if info.Defs[name] == v {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// localAlwaysEnumerable reports whether every assignment to the local
// variable within body has an enumerable right-hand side (and at least
// one assignment exists).
func (tk *tracekeyPass) localAlwaysEnumerable(v *types.Var, body *ast.BlockStmt, depth int) bool {
	info := tk.pass.Pkg.Info
	sawAssign := false
	allEnumerable := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !allEnumerable {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				// Multi-value unpacking: give up if it targets v.
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && tk.refersTo(info, id, v) {
						allEnumerable = false
					}
				}
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !tk.refersTo(info, id, v) {
					continue
				}
				sawAssign = true
				if !tk.enumerable(x.Rhs[i], depth+1) {
					allEnumerable = false
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if info.Defs[name] != v {
					continue
				}
				if i >= len(x.Values) {
					continue // zero value: Kind("") — not a named constant
				}
				sawAssign = true
				if !tk.enumerable(x.Values[i], depth+1) {
					allEnumerable = false
				}
			}
		case *ast.UnaryExpr:
			// &v escapes: any write could happen through the pointer.
			if x.Op == token.AND {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && tk.refersTo(info, id, v) {
					allEnumerable = false
				}
			}
		}
		return true
	})
	return sawAssign && allEnumerable
}

// refersTo reports whether the identifier defines or uses v.
func (tk *tracekeyPass) refersTo(info *types.Info, id *ast.Ident, v *types.Var) bool {
	return info.Defs[id] == v || info.Uses[id] == v
}
