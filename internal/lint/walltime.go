package lint

import (
	"go/ast"
	"go/types"
)

// Walltime forbids wall-clock timing in simulation-clocked packages.
//
// The deterministic kernel (internal/simtime) owns time in the simulation
// layer: every delay, timer and timestamp must come from the injected
// virtual clock. A single time.Now() or time.Sleep() in those packages
// silently couples a run to the host scheduler — results stop being
// bit-reproducible, resume-from-seed breaks, and the chaos suite's
// determinism guarantee (PR 2) is void. The compiler cannot catch this;
// this analyzer does.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "no time.Now/Sleep/After/NewTimer/NewTicker in simulation-clocked packages; use the injected simtime clock",
	Run:  runWalltime,
}

// wallClockFuncs are the package-level time functions that read or wait on
// the wall clock. Pure arithmetic (time.Duration, ParseDuration, Unix) is
// fine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

func runWalltime(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Methods like (time.Time).After or (*time.Timer).Reset are
			// pure given their receiver; only the package-level functions
			// touch the wall clock.
			if fn.Type().(*types.Signature).Recv() != nil || !wallClockFuncs[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in simulation-clocked package %s; route timing through the injected simtime clock so runs stay deterministic", fn.Name(), p.Pkg.Path)
			return true
		})
	}
}
