package lint

import (
	"go/ast"
	"go/types"
)

// Tickerstop forbids leaked time sources: a time.Ticker or time.Timer
// with no reachable Stop, time.After inside a loop, and time.Tick
// anywhere.
//
// An unstopped Ticker pins its goroutine and channel until the process
// exits; time.After in a loop allocates a fresh timer per iteration that
// the runtime cannot collect until it fires — in the relay reconnect and
// polling paths that is a steady leak under sustained failure. Locals
// need a Stop (usually deferred) in the same function; a ticker stored
// into a struct field needs a Stop reachable through some method of the
// package (typically its owner's Stop/Close). Values that escape — are
// returned or passed onward — are the callee's responsibility and out of
// scope.
var Tickerstop = &Analyzer{
	Name: "tickerstop",
	Doc:  "every time.Ticker/Timer needs a reachable Stop; no time.After in loops, no time.Tick",
	Run:  runTickerstop,
}

// timeFunc reports whether fn is the named function of package time.
func timeFunc(fn *types.Func, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
		fn.Type().(*types.Signature).Recv() == nil && fn.Name() == name
}

func runTickerstop(p *Pass) {
	// Pass 1: every field of type *time.Ticker/*time.Timer that some
	// function in the package calls Stop on (fields are package-visible,
	// so the Stop may live in any method).
	fieldStopped := make(map[*types.Var]bool)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Stop" {
				return true
			}
			if fv := fieldOf(p.Pkg.Info, sel.X); fv != nil {
				fieldStopped[fv] = true
			}
			return true
		})
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.tickWalk(fd.Body, fd.Body, false, fieldStopped)
		}
	}
}

// fieldOf resolves an expression to the struct field it names, or nil.
func fieldOf(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if ok && v.IsField() {
		return v
	}
	return nil
}

// tickWalk scans one statement tree: time.After/time.Tick misuse by loop
// depth, and NewTicker/NewTimer assignments checked for a reachable Stop.
func (p *Pass) tickWalk(n ast.Node, fnBody *ast.BlockStmt, inLoop bool, fieldStopped map[*types.Var]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.ForStmt:
			if st.Init != nil {
				p.tickWalk(st.Init, fnBody, inLoop, fieldStopped)
			}
			if st.Cond != nil {
				p.tickWalk(st.Cond, fnBody, true, fieldStopped)
			}
			if st.Post != nil {
				p.tickWalk(st.Post, fnBody, true, fieldStopped)
			}
			p.tickWalk(st.Body, fnBody, true, fieldStopped)
			return false
		case *ast.RangeStmt:
			p.tickWalk(st.X, fnBody, inLoop, fieldStopped)
			p.tickWalk(st.Body, fnBody, true, fieldStopped)
			return false
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				p.tickWalk(rhs, fnBody, inLoop, fieldStopped)
			}
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
				p.checkNewTimeSource(st.Lhs[0], st.Rhs[0], fnBody, fieldStopped)
			}
			return false
		case *ast.ValueSpec:
			for _, v := range st.Values {
				p.tickWalk(v, fnBody, inLoop, fieldStopped)
			}
			if len(st.Names) == 1 && len(st.Values) == 1 {
				p.checkNewTimeSource(st.Names[0], st.Values[0], fnBody, fieldStopped)
			}
			return false
		case *ast.CallExpr:
			fn := callee(p.Pkg.Info, st)
			switch {
			case timeFunc(fn, "Tick"):
				p.Reportf(st.Pos(), "time.Tick leaks its ticker forever; use time.NewTicker and Stop it")
			case timeFunc(fn, "After") && inLoop:
				p.Reportf(st.Pos(), "time.After inside a loop allocates an uncollectable timer per iteration; reuse one time.Timer (NewTimer + Reset) or a stopped Ticker")
			}
		}
		return true
	})
}

// checkNewTimeSource handles `lhs = time.NewTicker/NewTimer(...)`: a
// plain local needs a Stop in the same function unless it escapes; a
// field needs a Stop somewhere in the package.
func (p *Pass) checkNewTimeSource(lhs, rhs ast.Expr, fnBody *ast.BlockStmt, fieldStopped map[*types.Var]bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := callee(p.Pkg.Info, call)
	var kind string
	switch {
	case timeFunc(fn, "NewTicker"):
		kind = "time.Ticker"
	case timeFunc(fn, "NewTimer"):
		kind = "time.Timer"
	default:
		return
	}
	if fv := fieldOf(p.Pkg.Info, lhs); fv != nil {
		if !fieldStopped[fv] {
			p.Reportf(call.Pos(), "%s stored in field %s is never stopped by any function in this package; stop it in the owner's Stop/Close so its goroutine and channel are released", kind, fv.Name())
		}
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := p.Pkg.Info.Defs[id]
	if obj == nil {
		obj = p.Pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if !localStoppedOrEscapes(p.Pkg.Info, fnBody, v, id) {
		p.Reportf(call.Pos(), "%s assigned to %s has no reachable Stop in this function; defer %s.Stop() (or stop it on every exit path) so its goroutine and channel are released", kind, id.Name, id.Name)
	}
}

// localStoppedOrEscapes reports whether the local time source is stopped
// in the function, or escapes it (returned, stored elsewhere, or passed
// to a call — then the receiver owns it).
func localStoppedOrEscapes(info *types.Info, body *ast.BlockStmt, v *types.Var, def *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == v {
					found = true
					return false
				}
			}
			for _, a := range x.Args {
				if usesVar(info, a, v) {
					found = true // handed off; the callee owns the Stop
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesVar(info, r, v) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && id != def && info.Uses[id] == v {
					found = true // re-stored; tracked at its new home
					return false
				}
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && info.Uses[id] == v {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// usesVar reports whether the expression mentions the variable directly.
func usesVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			used = true
		}
		return !used
	})
	return used
}
